#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "data/rng.hpp"

namespace psclip::data {
namespace {

constexpr double kTau = 2.0 * std::numbers::pi;

std::vector<geom::Point> star_ring(Rng& rng, int n, double cx, double cy,
                                   double r) {
  std::vector<geom::Point> ring;
  ring.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double a = kTau * i / n + rng.uniform(0.0, 0.9 * kTau / n);
    const double rad = r * rng.uniform(0.3, 1.0);
    ring.push_back({cx + rad * std::cos(a), cy + rad * std::sin(a)});
  }
  return ring;
}

}  // namespace

geom::PolygonSet random_simple(std::uint64_t seed, int n, double cx,
                               double cy, double r) {
  Rng rng(seed);
  return geom::make_polygon(star_ring(rng, n, cx, cy, r));
}

geom::PolygonSet random_convex(std::uint64_t seed, int n, double cx,
                               double cy, double r) {
  Rng rng(seed);
  std::vector<geom::Point> ring;
  ring.reserve(static_cast<std::size_t>(n));
  // Vertices on a circle with slightly jittered radius stay convex as long
  // as the jitter is small relative to the angular step.
  const double jitter = 0.5 / static_cast<double>(n);
  for (int i = 0; i < n; ++i) {
    const double a = kTau * i / n;
    const double rad = r * (1.0 - rng.uniform(0.0, jitter));
    ring.push_back({cx + rad * std::cos(a), cy + rad * std::sin(a)});
  }
  return geom::make_polygon(std::move(ring));
}

geom::PolygonSet random_blob(std::uint64_t seed, int n, double cx,
                             double cy, double r) {
  Rng rng(seed);
  std::vector<geom::Point> ring;
  ring.reserve(static_cast<std::size_t>(n));
  double rad = r;
  for (int i = 0; i < n; ++i) {
    const double a = kTau * i / n;
    ring.push_back({cx + rad * std::cos(a), cy + rad * std::sin(a)});
    rad = std::clamp(rad + 0.03 * r * rng.gaussian(0, 1), 0.7 * r, 1.3 * r);
    if (i > (3 * n) / 4) rad += 0.2 * (r - rad);  // close smoothly
  }
  return geom::make_polygon(std::move(ring));
}

geom::PolygonSet random_self_intersecting(std::uint64_t seed, int n,
                                          double cx, double cy, double r) {
  Rng rng(seed);
  auto ring = star_ring(rng, n, cx, cy, r);
  for (int s = 0; s < n / 4 + 1; ++s) {
    const auto i = static_cast<std::size_t>(rng.index(ring.size()));
    const auto j = static_cast<std::size_t>(rng.index(ring.size()));
    std::swap(ring[i], ring[j]);
  }
  geom::PolygonSet p;
  p.add(std::move(ring));
  return p;
}

geom::PolygonSet star_polygram(int points, int step, double cx, double cy,
                               double r) {
  std::vector<geom::Point> ring;
  ring.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double a = kTau * ((i * step) % points) / points + 0.3;
    ring.push_back({cx + r * std::cos(a), cy + r * std::sin(a)});
  }
  return geom::make_polygon(std::move(ring));
}

SyntheticPair synthetic_pair(std::uint64_t seed, int edges) {
  SyntheticPair pair;
  pair.subject = random_blob(seed * 2 + 1, edges, 0.0, 0.0, 100.0);
  pair.clip = random_blob(seed * 2 + 2, edges, 35.0, -20.0, 90.0);
  return pair;
}

geom::PolygonSet polygon_field(std::uint64_t seed, int count, double world,
                               int vertices) {
  Rng rng(seed);
  geom::PolygonSet out;
  const int side = std::max(1, static_cast<int>(std::ceil(std::sqrt(
                                    static_cast<double>(count)))));
  const double cell = world / side;
  int placed = 0;
  for (int gy = 0; gy < side && placed < count; ++gy) {
    for (int gx = 0; gx < side && placed < count; ++gx) {
      const double cx = (gx + 0.5) * cell + rng.uniform(-0.1, 0.1) * cell;
      const double cy = (gy + 0.5) * cell + rng.uniform(-0.1, 0.1) * cell;
      // Radius < 0.4 * cell keeps neighbours disjoint even with jitter.
      const double r = cell * rng.uniform(0.15, 0.38);
      auto ring = star_ring(rng, vertices, cx, cy, r);
      out.add(std::move(ring));
      ++placed;
    }
  }
  return out;
}

}  // namespace psclip::data
