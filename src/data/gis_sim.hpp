#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "geom/polygon.hpp"

namespace psclip::data {

/// Target statistics of the paper's four real-world datasets (Table III
/// plus the edge-length statistics quoted in §V-B). The GML telecom
/// datasets publish no edge-length statistics; values chosen are typical
/// of parcel/coverage data at that polygon density.
struct DatasetSpec {
  const char* name;
  int polys;
  std::int64_t edges;
  double mean_edge_len;
  double sd_edge_len;
  const char* flavor;  ///< generator family: "clustered", "tiling", "parcels"
};

/// The Table III inventory.
const std::array<DatasetSpec, 4>& table3_specs();

/// Build the simulated counterpart of dataset `index` (1-based as in
/// Table III). `scale` shrinks polygon count (and thus edge count)
/// proportionally so the full pipeline stays laptop-friendly; scale=1
/// reproduces the paper's sizes. Deterministic in (index, scale).
///
/// Substitution note (DESIGN.md §3): the paper reads Natural Earth
/// shapefiles and GML telecom data. The simulator reproduces what the
/// algorithms are sensitive to — polygon count, edges per polygon,
/// edge-length distribution and spatial layout (clustered urban areas,
/// tiling provinces, dense parcel grids) — with polygons that are disjoint
/// within a layer, as GIS layers are. Datasets 1/2 overlap like urban
/// areas inside states; datasets 3/4 are two offset parcel layers over
/// the same metro region, so Intersect(3,4) is edge-intersection heavy.
geom::PolygonSet make_dataset(int index, double scale = 1.0);

/// Measured statistics of a generated (or any) polygon layer, for the
/// Table III reproduction.
struct LayerStats {
  std::size_t polys = 0;
  std::size_t edges = 0;
  double mean_edge_len = 0.0;
  double sd_edge_len = 0.0;
};
LayerStats measure(const geom::PolygonSet& layer);

}  // namespace psclip::data
