#include "data/gis_sim.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "data/rng.hpp"

namespace psclip::data {
namespace {

constexpr double kTau = 2.0 * std::numbers::pi;

/// One wiggly, simple polygon with ~`nedges` edges whose lengths come out
/// near `target_len` on average: a radial ring of radius
/// nedges * target_len / tau with bounded radial noise.
std::vector<geom::Point> wiggly_ring(Rng& rng, int nedges, double cx,
                                     double cy, double target_len,
                                     double len_sd) {
  const int n = std::max(4, nedges);
  const double r = static_cast<double>(n) * target_len / kTau;
  // Radius follows a bounded random walk so that the per-edge radial jump
  // is on the order of the requested edge-length spread (uncorrelated
  // noise would make the jumps, not the chords, dominate edge length).
  const double step_sd = 0.7 * std::min(len_sd, 1.5 * target_len);
  std::vector<geom::Point> ring;
  ring.reserve(static_cast<std::size_t>(n));
  double rad = r;
  for (int i = 0; i < n; ++i) {
    const double a = kTau * i / n;
    ring.push_back({cx + rad * std::cos(a), cy + rad * std::sin(a)});
    rad = std::clamp(rad + step_sd * rng.gaussian(0, 1), 0.75 * r, 1.25 * r);
    // Pull back toward the nominal radius near the end so the ring closes
    // without a long seam edge.
    if (i > (3 * n) / 4) rad += 0.25 * (r - rad);
  }
  return ring;
}

/// Disjoint polygons on a jittered grid with cell size tied to the ring
/// radius, so layer density is independent of the polygon count (the box
/// grows with sqrt(count) instead).
geom::PolygonSet grid_layer(Rng& rng, double x0, double y0, int nx, int ny,
                            double cell, int count, int edges_mean,
                            double len_mean, double len_sd) {
  geom::PolygonSet out;
  out.contours.reserve(static_cast<std::size_t>(count));
  int placed = 0;
  for (int gy = 0; gy < ny && placed < count; ++gy) {
    for (int gx = 0; gx < nx && placed < count; ++gx) {
      const double cx =
          x0 + (gx + 0.5) * cell + rng.uniform(-0.05, 0.05) * cell;
      const double cy =
          y0 + (gy + 0.5) * cell + rng.uniform(-0.05, 0.05) * cell;
      const int ne =
          std::max(4, static_cast<int>(edges_mean * rng.uniform(0.6, 1.4)));
      // Radius tracks the edge count so edge lengths stay near the target;
      // clamp into the cell (radius*1.25 + centre jitter must fit 0.5).
      double len = len_mean;
      const double want_r = ne * len / kTau;
      const double max_r = 0.32 * cell;
      if (want_r > max_r) len = max_r * kTau / ne;
      out.add(wiggly_ring(rng, ne, cx, cy, len, len_sd));
      ++placed;
    }
  }
  return out;
}

struct Grid {
  double x0, y0, cell;
  int nx, ny;
};

/// Grid for `count` polygons of ring radius `ring_r`, centred at (cx, cy).
Grid layout(double cx, double cy, int count, double ring_r,
            double spacing = 2.6) {
  Grid g;
  g.cell = spacing * std::max(ring_r, 1e-9);
  g.nx = std::max(1, static_cast<int>(std::ceil(
                         std::sqrt(static_cast<double>(count) * 1.4))));
  g.ny = std::max(1, (count + g.nx - 1) / g.nx);
  g.x0 = cx - 0.5 * g.nx * g.cell;
  g.y0 = cy - 0.5 * g.ny * g.cell;
  return g;
}

}  // namespace

const std::array<DatasetSpec, 4>& table3_specs() {
  static const std::array<DatasetSpec, 4> specs = {{
      {"ne_10m_urban_areas", 11878, 1153348, 0.00415, 0.0101, "clustered"},
      {"ne_10m_states_provinces", 4647, 1332830, 0.0282, 0.0546, "tiling"},
      {"GML_data_1", 101860, 4488080, 0.0020, 0.0040, "parcels"},
      {"GML_data_2", 128682, 6262858, 0.0018, 0.0036, "parcels"},
  }};
  return specs;
}

geom::PolygonSet make_dataset(int index, double scale) {
  const DatasetSpec& spec =
      table3_specs().at(static_cast<std::size_t>(std::clamp(index, 1, 4) - 1));
  const int polys =
      std::max(4, static_cast<int>(std::llround(spec.polys * scale)));
  const int edges_per =
      std::max(4, static_cast<int>(spec.edges / std::max(1, spec.polys)));
  const double ring_r = edges_per * spec.mean_edge_len / kTau;
  Rng rng(0xD5EA5EULL * static_cast<std::uint64_t>(index) + 17);

  switch (index) {
    case 1: {
      // Urban areas: heavy clustering inside the provinces' region
      // (dataset 2 is laid out around the same centre, so Intersect(1,2)
      // crosses province boundaries everywhere).
      geom::PolygonSet out;
      const int clusters = std::max(1, polys / 60);
      const int per_cluster = (polys + clusters - 1) / clusters;
      // The provinces' region radius, to scatter clusters inside it.
      const DatasetSpec& prov = table3_specs()[1];
      const int prov_polys =
          std::max(4, static_cast<int>(std::llround(prov.polys * scale)));
      const double prov_ring =
          (prov.edges / prov.polys) * prov.mean_edge_len / kTau;
      const Grid pg = layout(0.0, 0.0, prov_polys, prov_ring, 2.4);
      const double span_x = pg.nx * pg.cell, span_y = pg.ny * pg.cell;
      // Clusters sit on a coarse meta-grid (jittered) so clusters never
      // overlap each other and the layer stays disjoint.
      const double cluster_extent =
          std::ceil(std::sqrt(per_cluster * 1.4)) * 2.8 * ring_r;
      const int meta = std::max(
          1, static_cast<int>(std::ceil(std::sqrt(double(clusters)))));
      const double meta_cell = std::max(1.3 * cluster_extent,
                                        std::max(span_x, span_y) / meta);
      for (int c = 0; c < clusters; ++c) {
        const int mx = c % meta, my = c / meta;
        const double ccx = (mx - 0.5 * (meta - 1)) * meta_cell +
                           rng.uniform(-0.1, 0.1) * meta_cell;
        const double ccy = (my - 0.5 * (meta - 1)) * meta_cell +
                           rng.uniform(-0.1, 0.1) * meta_cell;
        const Grid g = layout(ccx, ccy, per_cluster, ring_r, 2.8);
        auto part = grid_layer(rng, g.x0, g.y0, g.nx, g.ny, g.cell,
                               per_cluster, edges_per, spec.mean_edge_len,
                               spec.sd_edge_len);
        for (auto& ct : part.contours) out.contours.push_back(std::move(ct));
        if (static_cast<int>(out.num_contours()) >= polys) break;
      }
      return out;
    }
    case 2: {
      // States/provinces: large wiggly polygons nearly tiling their region.
      const Grid g = layout(0.0, 0.0, polys, ring_r, 2.4);
      return grid_layer(rng, g.x0, g.y0, g.nx, g.ny, g.cell, polys,
                        edges_per, spec.mean_edge_len, spec.sd_edge_len);
    }
    case 3:
    case 4: {
      // Telecom parcel layers over one metro region. Dataset 4 reuses
      // dataset 3's grid geometry shifted by half a cell, so the two
      // layers' polygons interleave and Intersect(3,4) is intersection
      // heavy at any scale.
      const DatasetSpec& base = table3_specs()[2];
      const int base_polys =
          std::max(4, static_cast<int>(std::llround(base.polys * scale)));
      const double base_ring =
          (base.edges / base.polys) * base.mean_edge_len / kTau;
      Grid g = layout(0.0, 0.0, base_polys, base_ring, 2.0);
      if (index == 4) {
        g.x0 += 0.5 * g.cell;
        g.y0 += 0.5 * g.cell;
        // More polygons than dataset 3: extend the grid.
        g.ny = std::max(1, (polys + g.nx - 1) / g.nx);
      }
      return grid_layer(rng, g.x0, g.y0, g.nx, g.ny, g.cell, polys,
                        edges_per, spec.mean_edge_len, spec.sd_edge_len);
    }
    default:
      return {};
  }
}

LayerStats measure(const geom::PolygonSet& layer) {
  LayerStats st;
  st.polys = layer.num_contours();
  double sum = 0.0, sum2 = 0.0;
  for (const auto& c : layer.contours) {
    const std::size_t n = c.size();
    st.edges += n;
    for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
      const double len = geom::distance(c[j], c[i]);
      sum += len;
      sum2 += len * len;
    }
  }
  if (st.edges > 0) {
    st.mean_edge_len = sum / static_cast<double>(st.edges);
    const double var = sum2 / static_cast<double>(st.edges) -
                       st.mean_edge_len * st.mean_edge_len;
    st.sd_edge_len = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  return st;
}

}  // namespace psclip::data
