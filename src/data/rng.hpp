#pragma once

#include <cstdint>

namespace psclip::data {

/// Small deterministic generator (SplitMix64) so that every dataset in the
/// benchmark harness is reproducible from its seed across platforms —
/// std::mt19937 distributions are not guaranteed identical across standard
/// library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed * 0x9e3779b97f4a7c15ULL + 1) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * unit(); }

  /// Uniform integer in [0, n).
  std::uint64_t index(std::uint64_t n) { return n ? next() % n : 0; }

  /// Normal-ish sample (sum of uniforms; adequate for edge-length
  /// distributions, avoids libm differences).
  double gaussian(double mean, double sigma) {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += unit();
    return mean + sigma * (s - 6.0);
  }

 private:
  std::uint64_t state_;
};

}  // namespace psclip::data
