#pragma once

#include <cstdint>

#include "geom/polygon.hpp"

namespace psclip::data {

/// Seeded synthetic polygon generators — the counterpart of the paper's
/// "small test program to produce two polygons ... with different number
/// of edges" (§V-A). All generators are deterministic in the seed.

/// Star-shaped (hence simple) polygon with `n` vertices around
/// (cx, cy): radii jittered in [0.3r, r], angles jittered within their
/// sector. Arbitrary concave but never self-intersecting.
geom::PolygonSet random_simple(std::uint64_t seed, int n, double cx,
                               double cy, double r);

/// Convex polygon with `n` vertices on a jittered circle (sorted angles).
geom::PolygonSet random_convex(std::uint64_t seed, int n, double cx,
                               double cy, double r);

/// Smooth "blob": radius follows a bounded random walk around r, giving a
/// realistic wiggly boundary whose crossings with another blob grow
/// linearly (not quadratically) with the edge count — the profile used by
/// the scalability workloads.
geom::PolygonSet random_blob(std::uint64_t seed, int n, double cx, double cy,
                             double r);

/// Self-intersecting polygon: a random_simple ring with a fraction of
/// vertex positions swapped (the paper's "arbitrary polygons" include
/// self-intersecting ones; §I, §III).
geom::PolygonSet random_self_intersecting(std::uint64_t seed, int n,
                                          double cx, double cy, double r);

/// Star polygram (e.g. pentagram for points=5, step=2): the classic
/// heavily self-intersecting test shape.
geom::PolygonSet star_polygram(int points, int step, double cx, double cy,
                               double r);

/// A pair of large overlapping polygons with ~`edges` edges each, offset
/// so that the overlap region is substantial — the workload for the
/// synthetic scalability experiments (Figs. 7–9).
struct SyntheticPair {
  geom::PolygonSet subject, clip;
};
SyntheticPair synthetic_pair(std::uint64_t seed, int edges);

/// Field of `count` disjoint simple polygons placed on a jittered grid
/// over [0, world]^2 — a stand-in for a GIS polygon layer. `vertices` per
/// polygon (approximate).
geom::PolygonSet polygon_field(std::uint64_t seed, int count, double world,
                               int vertices);

}  // namespace psclip::data
