#pragma once

#include <cstdint>
#include <memory>

#include "geom/bool_op.hpp"
#include "geom/polygon.hpp"

namespace psclip::seq {

/// Counters reported by the sweep, used by tests and by the benchmark
/// harness (they correspond to the quantities n, k, m in the paper's
/// complexity analysis).
struct VattiStats {
  std::int64_t scanbeams = 0;       ///< m: number of scanbeams processed
  std::int64_t edges = 0;           ///< n: bound edges from both inputs
  std::int64_t intersections = 0;   ///< k: pairwise edge crossings handled
  std::int64_t output_vertices = 0; ///< vertices in the result contours
  std::int64_t max_aet = 0;         ///< peak active edge table size
  /// Beams whose AET was already in top-scanline x-order (no crossings):
  /// the cache-conscious kernel detects this in one O(|AET|) scan and skips
  /// the whole intersection machinery. The counter is maintained by both
  /// kernels (the reference kernel pays the full path regardless), so the
  /// hit rate is comparable across them.
  std::int64_t sorted_beams = 0;
  /// Suffix refreshes of the flat edge-id -> AET-index position array
  /// (tuned kernel only; one per structural AET edit batch, i.e. per
  /// minima merge and per local-maximum removal). The pre-PR kernel
  /// instead rebuilt a hash map once per beam with crossings.
  std::int64_t pos_rebuilds = 0;
  /// AET invariant violations seen by the validation hook (see
  /// VattiScratch::validate). Always 0 on a correct sweep; tests run the
  /// whole fuzz corpus with validation forced on and assert it stays 0.
  std::int64_t validate_failures = 0;
  /// Nanoseconds spent preparing contours and building the bound table
  /// (clean + coalesce + perturb + bound decomposition + minima sort).
  /// The fused slab partition pays this once globally; the materializing
  /// partition pays it again inside every slab — this counter is how the
  /// difference shows up in traces and BENCH_scaling.json.
  std::int64_t bound_build_ns = 0;
  /// Nanoseconds spent building the scanbeam schedule. Zero when the
  /// caller supplied a prebuilt schedule (vatti_sweep_prepared with
  /// prebuilt_schedule=true: the fused path slices one shared schedule
  /// instead of sorting per slab).
  std::int64_t schedule_ns = 0;
  /// Bound edges with an endpoint exactly on a slab-boundary scanline —
  /// the degeneracy-rich edges rect-clipping stitches in. Counted by the
  /// fused partition (seq::clip_bounds_to_slab); stays 0 for whole-input
  /// sweeps.
  std::int64_t boundary_edges = 0;
};

/// Which per-beam maintenance strategy the sweep uses. Both produce
/// byte-identical output on every input (asserted across the fuzz corpus);
/// kReference reproduces the pre-optimization cost profile and exists for
/// the bench_sweep_kernel ablation gate and the identity tests.
enum class SweepKernel : std::uint8_t {
  /// Cache-conscious kernel (default): flat position index maintained
  /// incrementally, O(|AET|) already-sorted beam detection, batched
  /// local-minima insertion via one merge pass, SoA beam-local x arrays
  /// rolled over with an O(1) swap, and a scanbeam schedule built by
  /// k-way merging the per-bound sorted y-lists.
  kTuned = 0,
  /// Pre-PR maintenance strategy: per-beam std::unordered_map position
  /// rebuild, one O(|AET|) mid-vector insert per local minimum, no sorted
  /// fast path, per-entry x copy at beam end, sort+unique schedule.
  kReference,
};

/// Reusable scratch for vatti_clip: the active edge table, the per-scanbeam
/// intersection-event buffers, the bound table and the scanbeam schedule
/// all live here and are cleared — capacity retained — instead of being
/// reallocated on every call (and, for the per-beam buffers, on every
/// scanbeam). A slab-arena worker keeps one VattiScratch alive across all
/// the slab tasks it executes; without it the per-slab allocation churn
/// dominates many-slab/oversubscribed Algorithm 2 runs.
///
/// Owned by exactly one thread at a time; reuse never changes results
/// (cleared buffers are indistinguishable from fresh ones).
struct VattiScratch {
  VattiScratch();
  ~VattiScratch();
  VattiScratch(VattiScratch&&) noexcept;
  VattiScratch& operator=(VattiScratch&&) noexcept;

  std::uint64_t runs = 0;  ///< vatti_clip calls that reused this scratch

  /// AET invariant checker (parity flags must equal the accumulated flips
  /// to the left; the AET must be x-ordered at every scanline). Violations
  /// print to stderr and count into VattiStats::validate_failures.
  ///   -1  inherit the PSCLIP_VALIDATE environment variable (read once per
  ///       process, not per sweep) — the default,
  ///    0  force off,  1  force on (deterministic hook for tests).
  int validate = -1;

  /// Approximate bytes resident in this scratch's buffers (capacities, not
  /// sizes — pooled buffers keep capacity across runs, and capacity is what
  /// the process actually holds). Powers SlabLoad::peak_arena_bytes and the
  /// memory-budget accounting of DESIGN.md §11.
  [[nodiscard]] std::size_t resident_bytes() const;

  struct Impl;  // buffer bundle, private to vatti.cpp
  std::unique_ptr<Impl> impl;
};

/// General polygon clipping with Vatti's scanline algorithm — the library's
/// sequential substrate, equivalent in role to the GPC library the paper
/// plugs into Algorithm 2 Step 6.
///
/// Handles arbitrary inputs: concave contours, multiple contours, holes
/// (even-odd), and self-intersecting contours. Horizontal edges are removed
/// internally by the paper's perturbation preprocessing (§III-C). Output
/// contours are oriented exterior-CCW / hole-CW and never self-intersect.
///
/// `scratch`, when given, supplies the sweep's working buffers and is
/// reset internally — pass a per-worker instance to amortize allocations
/// across calls; results are identical either way. `kernel` selects the
/// per-beam maintenance strategy (see SweepKernel); both settings produce
/// byte-identical output.
geom::PolygonSet vatti_clip(const geom::PolygonSet& subject,
                            const geom::PolygonSet& clip, geom::BoolOp op,
                            VattiStats* stats = nullptr,
                            VattiScratch* scratch = nullptr,
                            SweepKernel kernel = SweepKernel::kTuned);

// Forward declaration (seq/bounds.hpp owns the definition).
struct BoundTable;

/// The scratch's bound table / scanbeam schedule, exposed so the fused slab
/// partition can assemble them directly (prepared-contour fragments plus
/// slab-cropped pieces; a slice of the shared global schedule) and then run
/// the sweep via vatti_sweep_prepared without materializing intermediate
/// polygons.
BoundTable& scratch_bounds(VattiScratch& scratch);
std::vector<double>& scratch_schedule(VattiScratch& scratch);

/// Run the sweep over a bound table the caller already assembled in
/// `scratch` (via scratch_bounds; minima must be (y, x)-sorted — see
/// sort_minima). With `prebuilt_schedule`, scratch_schedule(scratch) must
/// hold the sorted distinct endpoint ys of that table and is consumed
/// as-is; otherwise the schedule is built here exactly as vatti_clip
/// builds it. Fault-injection site and output-corruption hook are the same
/// kVattiSweep sites vatti_clip fires, so the degradation-ladder behavior
/// is identical on both partition paths. Output is byte-identical to
/// vatti_clip on inputs whose prepared bounds/schedule match — the fused
/// partition's whole contract.
geom::PolygonSet vatti_sweep_prepared(geom::BoolOp op, VattiStats* stats,
                                      VattiScratch& scratch,
                                      SweepKernel kernel = SweepKernel::kTuned,
                                      bool prebuilt_schedule = false);

}  // namespace psclip::seq
