#pragma once

#include <cstdint>

#include "geom/bool_op.hpp"
#include "geom/polygon.hpp"

namespace psclip::seq {

/// Counters reported by the sweep, used by tests and by the benchmark
/// harness (they correspond to the quantities n, k, m in the paper's
/// complexity analysis).
struct VattiStats {
  std::int64_t scanbeams = 0;       ///< m: number of scanbeams processed
  std::int64_t edges = 0;           ///< n: bound edges from both inputs
  std::int64_t intersections = 0;   ///< k: pairwise edge crossings handled
  std::int64_t output_vertices = 0; ///< vertices in the result contours
  std::int64_t max_aet = 0;         ///< peak active edge table size
};

/// General polygon clipping with Vatti's scanline algorithm — the library's
/// sequential substrate, equivalent in role to the GPC library the paper
/// plugs into Algorithm 2 Step 6.
///
/// Handles arbitrary inputs: concave contours, multiple contours, holes
/// (even-odd), and self-intersecting contours. Horizontal edges are removed
/// internally by the paper's perturbation preprocessing (§III-C). Output
/// contours are oriented exterior-CCW / hole-CW and never self-intersect.
geom::PolygonSet vatti_clip(const geom::PolygonSet& subject,
                            const geom::PolygonSet& clip, geom::BoolOp op,
                            VattiStats* stats = nullptr);

}  // namespace psclip::seq
