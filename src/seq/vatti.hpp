#pragma once

#include <cstdint>
#include <memory>

#include "geom/bool_op.hpp"
#include "geom/polygon.hpp"

namespace psclip::seq {

/// Counters reported by the sweep, used by tests and by the benchmark
/// harness (they correspond to the quantities n, k, m in the paper's
/// complexity analysis).
struct VattiStats {
  std::int64_t scanbeams = 0;       ///< m: number of scanbeams processed
  std::int64_t edges = 0;           ///< n: bound edges from both inputs
  std::int64_t intersections = 0;   ///< k: pairwise edge crossings handled
  std::int64_t output_vertices = 0; ///< vertices in the result contours
  std::int64_t max_aet = 0;         ///< peak active edge table size
};

/// Reusable scratch for vatti_clip: the active edge table, the per-scanbeam
/// intersection-event buffers, the bound table and the scanbeam schedule
/// all live here and are cleared — capacity retained — instead of being
/// reallocated on every call (and, for the per-beam buffers, on every
/// scanbeam). A slab-arena worker keeps one VattiScratch alive across all
/// the slab tasks it executes; without it the per-slab allocation churn
/// dominates many-slab/oversubscribed Algorithm 2 runs.
///
/// Owned by exactly one thread at a time; reuse never changes results
/// (cleared buffers are indistinguishable from fresh ones).
struct VattiScratch {
  VattiScratch();
  ~VattiScratch();
  VattiScratch(VattiScratch&&) noexcept;
  VattiScratch& operator=(VattiScratch&&) noexcept;

  std::uint64_t runs = 0;  ///< vatti_clip calls that reused this scratch

  struct Impl;  // buffer bundle, private to vatti.cpp
  std::unique_ptr<Impl> impl;
};

/// General polygon clipping with Vatti's scanline algorithm — the library's
/// sequential substrate, equivalent in role to the GPC library the paper
/// plugs into Algorithm 2 Step 6.
///
/// Handles arbitrary inputs: concave contours, multiple contours, holes
/// (even-odd), and self-intersecting contours. Horizontal edges are removed
/// internally by the paper's perturbation preprocessing (§III-C). Output
/// contours are oriented exterior-CCW / hole-CW and never self-intersect.
///
/// `scratch`, when given, supplies the sweep's working buffers and is
/// reset internally — pass a per-worker instance to amortize allocations
/// across calls; results are identical either way.
geom::PolygonSet vatti_clip(const geom::PolygonSet& subject,
                            const geom::PolygonSet& clip, geom::BoolOp op,
                            VattiStats* stats = nullptr,
                            VattiScratch* scratch = nullptr);

}  // namespace psclip::seq
