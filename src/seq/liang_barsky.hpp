#pragma once

#include <optional>
#include <utility>

#include "geom/bbox.hpp"
#include "geom/polygon.hpp"

namespace psclip::seq {

/// Liang–Barsky parametric segment clipping against an axis-aligned
/// rectangle (paper §II-B baseline). Returns the clipped sub-segment, or
/// nullopt if the segment misses the rectangle.
std::optional<std::pair<geom::Point, geom::Point>> liang_barsky_segment(
    const geom::BBox& rect, const geom::Point& p0, const geom::Point& p1);

/// Polygon-against-rectangle clipping in the Liang–Barsky family:
/// each contour is clipped against the four rectangle half-planes with the
/// parametric entry/exit tests (corner vertices patched in as turning
/// points). Same output conventions as Sutherland–Hodgman on a rectangle.
geom::PolygonSet liang_barsky_polygon(const geom::PolygonSet& subject,
                                      const geom::BBox& rect);

}  // namespace psclip::seq
