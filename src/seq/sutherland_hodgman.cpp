#include "seq/sutherland_hodgman.hpp"

#include "geom/intersect.hpp"
#include "geom/predicates.hpp"

namespace psclip::seq {
namespace {

/// Clip `input` against the half-plane to the left of a -> b.
std::vector<geom::Point> clip_halfplane(const std::vector<geom::Point>& input,
                                        const geom::Point& a,
                                        const geom::Point& b) {
  std::vector<geom::Point> out;
  const std::size_t n = input.size();
  out.reserve(n + 4);
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Point& cur = input[i];
    const geom::Point& prev = input[(i + n - 1) % n];
    const bool cur_in = geom::orient2d(a, b, cur) >= 0.0;
    const bool prev_in = geom::orient2d(a, b, prev) >= 0.0;
    if (cur_in) {
      if (!prev_in) out.push_back(geom::line_intersection(a, b, prev, cur));
      out.push_back(cur);
    } else if (prev_in) {
      out.push_back(geom::line_intersection(a, b, prev, cur));
    }
  }
  return out;
}

}  // namespace

geom::Contour sutherland_hodgman(const geom::Contour& subject,
                                 const geom::Contour& convex_clip) {
  geom::Contour clip = convex_clip;
  if (geom::signed_area(clip) < 0.0) geom::reverse(clip);

  std::vector<geom::Point> poly = subject.pts;
  const std::size_t m = clip.size();
  for (std::size_t j = 0; j < m && !poly.empty(); ++j) {
    poly = clip_halfplane(poly, clip[j], clip[(j + 1) % m]);
  }
  geom::Contour out;
  out.pts = std::move(poly);
  return out;
}

geom::PolygonSet sutherland_hodgman(const geom::PolygonSet& subject,
                                    const geom::Contour& convex_clip) {
  geom::PolygonSet out;
  for (const auto& c : subject.contours) {
    geom::Contour clipped = sutherland_hodgman(c, convex_clip);
    if (clipped.size() >= 3) out.contours.push_back(std::move(clipped));
  }
  return out;
}

}  // namespace psclip::seq
