#pragma once

#include "geom/polygon.hpp"

namespace psclip::seq {

/// Sutherland–Hodgman re-entrant clipping (paper §II-B): clips a subject
/// contour against a *convex* clip contour by successive half-plane cuts.
///
/// Classic limitations apply (and motivate Vatti's algorithm): the clip
/// region must be convex, and a concave subject whose intersection is
/// disconnected comes back as one contour with zero-width bridges along
/// the clip boundary. Area and even-odd membership are still exact, which
/// is what the tests exercise. Orientation of the clip contour is
/// normalized internally.
geom::Contour sutherland_hodgman(const geom::Contour& subject,
                                 const geom::Contour& convex_clip);

/// Clip every contour of `subject` against the convex contour.
geom::PolygonSet sutherland_hodgman(const geom::PolygonSet& subject,
                                    const geom::Contour& convex_clip);

}  // namespace psclip::seq
