// Vatti scanline clipper.
//
// Structure follows the paper's description of the sequential algorithm
// (§III-B): local-minima table -> scanbeam schedule -> active edge table
// (AET) maintained bottom-to-top. Within a scanbeam, intersections are
// discovered by re-sorting the AET by x at the top scanline; every adjacent
// transposition performed by the insertion sort is exactly one edge
// crossing (the paper's inversion insight, Lemma 4), processed in a valid
// order precisely because only currently-adjacent edges ever swap.
//
// Vertex emission is derived from one uniform rule instead of Vatti's
// 16-way vertex classification: at any event point, evaluate in/out of the
// boolean result for the sectors around the point (from the even-odd parity
// flags carried by each AET entry, cf. Lemma 1-3); every maximal interior
// run of sectors is bounded by two contributing half-edges, which connect
// through the point — below+below closes a contour, above+above starts one,
// below+above continues one.

#include "seq/vatti.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <unordered_map>
#include <vector>

#include "geom/intersect.hpp"
#include "geom/perturb.hpp"
#include "parallel/fault.hpp"
#include "seq/bounds.hpp"
#include "seq/out_poly.hpp"
#include "seq/sweep_events.hpp"

namespace psclip::seq {
namespace {

using geom::BoolOp;
using geom::Point;
using geom::PolygonSet;

/// One AET entry: the shared sweep-status fields plus the beam-local
/// x positions used for ordering.
struct Active : SweepEntry {
  double xb = 0.0;  // x on the current beam's bottom scanline
  double xt = 0.0;  // x on the current beam's top scanline
};

/// One beam-internal crossing: eu is left of ev below the crossing point.
struct CrossEv {
  std::int32_t eu, ev;  // bound-edge ids
  Point p;
};

}  // namespace

/// All buffers the sweep works in. Owned by VattiScratch so that a
/// per-worker arena clears them (capacity retained) instead of paying a
/// fresh round of allocations per call — and, for the per-beam event
/// buffers, per scanbeam.
struct VattiScratch::Impl {
  BoundTable bt;
  std::vector<double> ys;         ///< scanbeam schedule
  std::vector<Active> aet;
  OutPolyPool pool;
  // process_intersections working set (cleared every beam):
  std::vector<CrossEv> events;
  std::vector<std::pair<double, std::int32_t>> keys;  ///< (xt, edge id)
  std::unordered_map<std::int32_t, std::size_t> pos;
  std::vector<CrossEv> pending, deferred;

  void begin_run() {
    aet.clear();
    pool.reset();
  }
};

VattiScratch::VattiScratch() : impl(std::make_unique<Impl>()) {}
VattiScratch::~VattiScratch() = default;
VattiScratch::VattiScratch(VattiScratch&&) noexcept = default;
VattiScratch& VattiScratch::operator=(VattiScratch&&) noexcept = default;

namespace {

class Sweep {
 public:
  Sweep(VattiScratch::Impl& sc, BoolOp op)
      : bt_(sc.bt), op_(op), sc_(sc), aet_(sc.aet), pool_(sc.pool) {}

  PolygonSet run(VattiStats* stats) {
    scanbeam_ys_into(bt_, sc_.ys);
    const std::vector<double>& ys = sc_.ys;
    std::size_t next_min = 0;
    for (std::size_t i = 0; i + 1 < ys.size(); ++i) {
      const double yb = ys[i];
      const double yt = ys[i + 1];
      insert_minima(yb, next_min);
      if (validate_) validate_flags(yb, "after-minima");
      process_intersections(yb, yt);
      process_top(yt);
      for (auto& a : aet_) a.xb = a.xt;
      if (validate_) validate_flags(yt, "after-beam");
      if (stats) {
        ++stats->scanbeams;
        stats->max_aet = std::max<std::int64_t>(
            stats->max_aet, static_cast<std::int64_t>(aet_.size()));
      }
    }
    if (stats) {
      stats->edges = static_cast<std::int64_t>(bt_.num_edges());
      stats->intersections = intersections_;
    }
    PolygonSet out = pool_.harvest();
    if (stats)
      stats->output_vertices =
          static_cast<std::int64_t>(out.num_vertices());
    return out;
  }

 private:
  const BoundTable& bt_;
  BoolOp op_;
  VattiScratch::Impl& sc_;
  std::vector<Active>& aet_;
  OutPolyPool& pool_;
  std::int64_t intersections_ = 0;
  bool validate_ = std::getenv("PSCLIP_VALIDATE") != nullptr;

  /// Debug self-check (enable with PSCLIP_VALIDATE=1): parity flags of
  /// every AET entry must equal the accumulated flips of the entries to
  /// its left, and the AET must be x-ordered at the given scanline.
  void validate_flags(double y, const char* where) {
    bool s = false, c = false;
    for (std::size_t i = 0; i < aet_.size(); ++i) {
      const Active& a = aet_[i];
      if (a.left_s != s || a.left_c != c) {
        std::fprintf(stderr,
                     "[psclip] flag mismatch %s y=%.17g idx=%zu "
                     "have=(%d,%d) want=(%d,%d)\n",
                     where, y, i, (int)a.left_s, (int)a.left_c, (int)s,
                     (int)c);
      }
      s ^= flip_s(a);
      c ^= flip_c(a);
    }
    for (std::size_t i = 1; i < aet_.size(); ++i) {
      const BoundEdge& ep = edge(aet_[i - 1]);
      const BoundEdge& ec = edge(aet_[i]);
      const double xp = ep.top.y == y ? ep.top.x : geom::x_at_y(ep.bot, ep.top, y);
      const double xc = ec.top.y == y ? ec.top.x : geom::x_at_y(ec.bot, ec.top, y);
      if (xc < xp - 1e-12)
        std::fprintf(stderr,
                     "[psclip] order violation %s y=%.17g idx=%zu "
                     "x[%zu]=%.17g > x[%zu]=%.17g\n",
                     where, y, i, i - 1, xp, i, xc);
    }
  }

  [[nodiscard]] const BoundEdge& edge(const Active& a) const {
    return bt_.edges[static_cast<std::size_t>(a.e)];
  }
  [[nodiscard]] bool flip_s(const Active& a) const { return !edge(a).is_clip; }
  [[nodiscard]] bool flip_c(const Active& a) const { return edge(a).is_clip; }
  [[nodiscard]] bool res(bool s, bool c) const {
    return geom::in_result(s, c, op_);
  }

  void insert_minima(double yb, std::size_t& next_min) {
    while (next_min < bt_.minima.size() &&
           bt_.minima[next_min].pt.y == yb) {
      const LocalMin& lm = bt_.minima[next_min++];
      const auto eL = lm.edge_left;
      const auto eR = lm.edge_right;
      const double slope_l =
          bt_.edges[static_cast<std::size_t>(eL)].dxdy;

      // Position by (x at this scanline, then slope).
      const auto pos_it = std::upper_bound(
          aet_.begin(), aet_.end(), std::make_pair(lm.pt.x, slope_l),
          [this](const std::pair<double, double>& key, const Active& a) {
            if (key.first != a.xb) return key.first < a.xb;
            return key.second < edge(a).dxdy;
          });
      const std::size_t pos =
          static_cast<std::size_t>(pos_it - aet_.begin());

      bool ls = false, lc = false;
      if (pos > 0) {
        const Active& prev = aet_[pos - 1];
        ls = prev.left_s ^ flip_s(prev);
        lc = prev.left_c ^ flip_c(prev);
      }
      const bool fs = !bt_.edges[static_cast<std::size_t>(eL)].is_clip;
      const bool fc = !fs;
      const bool outside = res(ls, lc);              // sector around the min
      const bool between = res(ls ^ fs, lc ^ fc);    // sector above, inside

      std::int32_t poly = -1;
      if (outside != between) {
        // Contributing minimum. If the wedge above is interior this starts
        // an exterior contour (left edge feeds the front); if the
        // surroundings are interior it opens a hole (roles swap).
        poly = between ? pool_.create(lm.pt, /*hole=*/false, eL, eR)
                       : pool_.create(lm.pt, /*hole=*/true, eR, eL);
      }

      Active left;
      left.e = eL;
      left.xb = lm.pt.x;
      left.left_s = ls;
      left.left_c = lc;
      left.poly = poly;
      Active right;
      right.e = eR;
      right.xb = lm.pt.x;
      right.left_s = ls ^ fs;
      right.left_c = lc ^ fc;
      right.poly = poly;
      aet_.insert(aet_.begin() + static_cast<std::ptrdiff_t>(pos),
                  {left, right});
    }
  }

  [[nodiscard]] double top_x(const Active& a, double yt) const {
    const BoundEdge& e = edge(a);
    if (e.top.y == yt) return e.top.x;
    return geom::x_at_y(e.bot, e.top, yt);
  }

  void process_intersections(double yb, double yt) {
    for (auto& a : aet_) a.xt = top_x(a, yt);

    // Phase 1 — enumerate the beam's crossings as the inversions between
    // the bottom and top x-orders (Lemma 4), on a scratch copy so that no
    // sweep state changes yet. The event and key buffers live in the
    // VattiScratch (cleared here, capacity retained): this loop runs once
    // per scanbeam, and per-beam reallocation is exactly the churn the
    // per-worker slab arenas exist to remove.
    std::vector<CrossEv>& events = sc_.events;
    events.clear();
    {
      auto& ks = sc_.keys;  // (xt, edge id)
      ks.clear();
      ks.reserve(aet_.size());
      for (const auto& a : aet_) ks.emplace_back(a.xt, a.e);
      for (std::size_t i = 1; i < ks.size(); ++i) {
        std::size_t j = i;
        while (j > 0 && ks[j].first < ks[j - 1].first) {
          const BoundEdge& eu =
              bt_.edges[static_cast<std::size_t>(ks[j - 1].second)];
          const BoundEdge& ev =
              bt_.edges[static_cast<std::size_t>(ks[j].second)];
          Point p =
              geom::line_intersection(eu.bot, eu.top, ev.bot, ev.top);
          // A genuine crossing lies inside the beam up to rounding; allow
          // one beam height of slack before distrusting the division.
          const double slack = yt - yb;
          if (!(p.y >= yb - slack && p.y <= yt + slack) ||
              !std::isfinite(p.x)) {
            // Nearly parallel edges (e.g. near-horizontals cut at a slab
            // boundary) can invert in rounded x-order while their analytic
            // intersection is far away or at infinity (cross(r,s)
            // underflows). The swap is still required to restore the top
            // x-order; emit at mid-beam, where the two edges sit within
            // rounding of each other.
            const double ym = 0.5 * (yb + yt);
            const double xu = geom::x_at_y(eu.bot, eu.top, ym);
            const double xv = geom::x_at_y(ev.bot, ev.top, ym);
            p = {0.5 * (xu + xv), ym};
          }
          events.push_back({ks[j - 1].second, ks[j].second, p});
          std::swap(ks[j - 1], ks[j]);
          --j;
        }
      }
    }
    if (events.empty()) return;

    // Phase 2 — process in ascending y of the crossing point. At its own
    // event time every crossing pair is adjacent in the AET (all lower
    // crossings have already swapped), which is what makes the sector
    // emission sound. Processing in enumeration order instead connects
    // boundaries wrongly when three edges cross pairwise in one beam.
    std::stable_sort(
        events.begin(), events.end(),
        [](const CrossEv& a, const CrossEv& b) { return a.p.y < b.p.y; });

    auto& pos = sc_.pos;
    pos.clear();
    pos.reserve(aet_.size() * 2);
    for (std::size_t i = 0; i < aet_.size(); ++i) pos[aet_[i].e] = i;

    std::vector<CrossEv>& pending = sc_.pending;
    pending.swap(events);  // hand over the enumerated crossings, no copy
    std::vector<CrossEv>& deferred = sc_.deferred;
    while (!pending.empty()) {
      bool progress = false;
      deferred.clear();
      for (const CrossEv& ev : pending) {
        std::size_t iu = pos[ev.eu];
        std::size_t iv = pos[ev.ev];
        if (iu > iv) std::swap(iu, iv);  // roles flip with current order
        if (iu + 1 == iv) {
          crossing_event(iu, iv, ev.p);
          std::swap(aet_[iu], aet_[iv]);
          pos[aet_[iu].e] = iu;
          pos[aet_[iv].e] = iv;
          progress = true;
        } else {
          deferred.push_back(ev);
        }
      }
      pending.swap(deferred);
      if (!progress && !pending.empty()) {
        // Degenerate ties interlocked (nearly coincident crossing points,
        // e.g. three edges through one point). Force-process the remaining
        // events in order: emit on the pair as if adjacent, swap, and
        // rebuild every parity flag from the array order — best-effort
        // emission at a degenerate point, but contours stay attached and
        // close (dropping emissions here loses whole output rings).
        for (const CrossEv& ev : pending) {
          std::size_t iu = pos[ev.eu];
          std::size_t iv = pos[ev.ev];
          if (iu > iv) std::swap(iu, iv);
          crossing_event(iu, iv, ev.p);
          std::swap(aet_[iu], aet_[iv]);
          pos[aet_[iu].e] = iu;
          pos[aet_[iv].e] = iv;
          bool s = false, c = false;
          for (auto& a : aet_) {
            a.left_s = s;
            a.left_c = c;
            s ^= flip_s(a);
            c ^= flip_c(a);
          }
        }
        break;
      }
    }
  }

  /// Handle the crossing of aet_[ui] (left) and aet_[vi] = aet_[ui+1] at
  /// point p; emission and flag updates are shared with Algorithm 1's
  /// per-scanbeam processing (seq/sweep_events.hpp). Does NOT swap the
  /// entries (caller does).
  void crossing_event(std::size_t ui, std::size_t vi, const Point& p) {
    Active& u = aet_[ui];
    Active& v = aet_[vi];
    ++intersections_;
    emit_crossing(pool_, u, edge(u).is_clip, v, edge(v).is_clip, p, op_);
  }

  void process_top(double yt) {
    for (std::size_t i = 0; i < aet_.size();) {
      Active& a = aet_[i];
      const BoundEdge e = edge(a);  // copy: aet_ may be mutated below
      if (e.top.y != yt) {
        ++i;
        continue;
      }
      if (e.next >= 0) {
        // Intermediate vertex: the bound continues with the next edge.
        const bool outside = res(a.left_s, a.left_c);
        const bool inside = res(a.left_s ^ flip_s(a), a.left_c ^ flip_c(a));
        if (outside != inside && a.poly >= 0)
          pool_.extend_reassign(a.poly, a.e, e.top, e.next);
        a.e = e.next;
        ++i;
        continue;
      }
      // Local maximum: find the partner bound ending at the same point.
      std::size_t j = i + 1;
      while (j < aet_.size()) {
        const BoundEdge& pe = edge(aet_[j]);
        if (pe.next < 0 && pe.top == e.top) break;
        ++j;
      }
      if (j == aet_.size()) {
        // No partner (degenerate input slipped through): drop the edge.
        aet_.erase(aet_.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      }
      // In general position the partner is adjacent. If ties in xt left
      // strays between them, repair their parity for the removal of `a`
      // (removing the partner on their right does not affect them).
      for (std::size_t t = i + 1; t < j; ++t) {
        aet_[t].left_s = aet_[t].left_s ^ flip_s(a);
        aet_[t].left_c = aet_[t].left_c ^ flip_c(a);
      }
      const bool outside = res(a.left_s, a.left_c);
      const bool between = res(a.left_s ^ flip_s(a), a.left_c ^ flip_c(a));
      if (outside != between && a.poly >= 0 && aet_[j].poly >= 0)
        pool_.close(a.poly, a.e, aet_[j].poly, aet_[j].e, e.top);
      aet_.erase(aet_.begin() + static_cast<std::ptrdiff_t>(j));
      aet_.erase(aet_.begin() + static_cast<std::ptrdiff_t>(i));
      // i now indexes the entry after the removed pair's position.
    }
  }
};

}  // namespace

PolygonSet vatti_clip(const PolygonSet& subject, const PolygonSet& clip,
                      BoolOp op, VattiStats* stats, VattiScratch* scratch) {
  par::fault::inject(par::fault::Site::kVattiSweep);
  PolygonSet s = geom::cleaned(subject);
  PolygonSet c = geom::cleaned(clip);
  geom::remove_horizontals(s);
  geom::remove_horizontals(c);
  VattiScratch local;
  VattiScratch& sc = scratch ? *scratch : local;
  build_bounds_into(sc.impl->bt, s, c);
  sc.impl->begin_run();
  ++sc.runs;
  Sweep sweep(*sc.impl, op);
  PolygonSet out = sweep.run(stats);
  if (par::fault::corrupt(par::fault::Site::kVattiSweep)) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    out.add({{nan, nan}, {0.0, 0.0}, {1.0, 1.0}});
  }
  return out;
}

}  // namespace psclip::seq
