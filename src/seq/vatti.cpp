// Vatti scanline clipper.
//
// Structure follows the paper's description of the sequential algorithm
// (§III-B): local-minima table -> scanbeam schedule -> active edge table
// (AET) maintained bottom-to-top. Within a scanbeam, intersections are
// discovered by re-sorting the AET by x at the top scanline; every adjacent
// transposition performed by the insertion sort is exactly one edge
// crossing (the paper's inversion insight, Lemma 4), processed in a valid
// order precisely because only currently-adjacent edges ever swap.
//
// Vertex emission is derived from one uniform rule instead of Vatti's
// 16-way vertex classification: at any event point, evaluate in/out of the
// boolean result for the sectors around the point (from the even-odd parity
// flags carried by each AET entry, cf. Lemma 1-3); every maximal interior
// run of sectors is bounded by two contributing half-edges, which connect
// through the point — below+below closes a contour, above+above starts one,
// below+above continues one.
//
// Data layout (DESIGN.md §9): the AET is SoA — the cold sweep-status fields
// (SweepEntry) in one array, the hot beam-local x positions in two parallel
// double arrays (xb = x at the beam bottom, xt = x at the beam top) — so
// the per-beam ordering scans stream through contiguous doubles and the
// beam rollover is one vector swap. A flat edge-id -> AET-index array
// replaces the per-beam hash-map rebuild; it is maintained incrementally
// across beams (O(1) per crossing swap, one suffix refresh per structural
// edit batch). Because the AET is nearly sorted between beams, an O(|AET|)
// adjacent scan detects the crossing-free common case and skips the
// intersection machinery entirely. SweepKernel::kReference retains the
// pre-optimization strategy; both kernels produce byte-identical output.

#include "seq/vatti.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <unordered_map>
#include <vector>

#include "geom/intersect.hpp"
#include "geom/perturb.hpp"
#include "obs/trace.hpp"
#include "parallel/cancel.hpp"
#include "parallel/fault.hpp"
#include "seq/bounds.hpp"
#include "seq/out_poly.hpp"
#include "seq/sweep_events.hpp"

namespace psclip::seq {
namespace {

using geom::BoolOp;
using geom::Point;
using geom::PolygonSet;

/// One beam-internal crossing: eu is left of ev below the crossing point.
struct CrossEv {
  std::int32_t eu, ev;  // bound-edge ids
  Point p;
};

/// One not-yet-merged AET insertion staged by the batched minima pass:
/// the pair's entries go immediately before old-AET index `base`.
struct StagedEntry {
  std::size_t base;
  SweepEntry ent;
  double x;  ///< beam-bottom x (the minimum's x)
};

/// PSCLIP_VALIDATE presence, read once per process (not per sweep).
bool env_validate_enabled() {
  static const bool on = std::getenv("PSCLIP_VALIDATE") != nullptr;
  return on;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

/// All buffers the sweep works in. Owned by VattiScratch so that a
/// per-worker arena clears them (capacity retained) instead of paying a
/// fresh round of allocations per call — and, for the per-beam event
/// buffers, per scanbeam.
struct VattiScratch::Impl {
  BoundTable bt;
  std::vector<double> ys;          ///< scanbeam schedule
  // SoA active edge table: cold sweep-status entries + hot x arrays.
  std::vector<SweepEntry> aet;
  std::vector<double> xb;          ///< x on the current beam's bottom scanline
  std::vector<double> xt;          ///< x on the current beam's top scanline
  std::vector<std::int32_t> pos;   ///< edge id -> AET index (tuned kernel)
  OutPolyPool pool;
  // process_intersections working set (cleared every beam):
  std::vector<CrossEv> events;
  std::vector<std::pair<double, std::int32_t>> keys;  ///< (xt, edge id)
  std::unordered_map<std::int32_t, std::size_t> posmap;  ///< reference kernel
  std::vector<CrossEv> pending, deferred;
  // insert_minima batch staging + merge targets (tuned kernel):
  std::vector<StagedEntry> staged;
  std::vector<SweepEntry> aet_merge;
  std::vector<double> xb_merge;

  void begin_run() {
    aet.clear();
    xb.clear();
    xt.clear();
    pool.reset();
  }
};

VattiScratch::VattiScratch() : impl(std::make_unique<Impl>()) {}
VattiScratch::~VattiScratch() = default;
VattiScratch::VattiScratch(VattiScratch&&) noexcept = default;
VattiScratch& VattiScratch::operator=(VattiScratch&&) noexcept = default;

std::size_t VattiScratch::resident_bytes() const {
  const Impl& s = *impl;
  auto vec = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  std::size_t b = vec(s.bt.edges) + vec(s.bt.minima) + vec(s.ys) +
                  vec(s.aet) + vec(s.xb) + vec(s.xt) + vec(s.pos) +
                  vec(s.events) + vec(s.keys) + vec(s.pending) +
                  vec(s.deferred) + vec(s.staged) + vec(s.aet_merge) +
                  vec(s.xb_merge);
  // Hash map (reference kernel only): buckets + one node per entry.
  b += s.posmap.bucket_count() * sizeof(void*) +
       s.posmap.size() *
           (sizeof(std::pair<std::int32_t, std::size_t>) + 2 * sizeof(void*));
  b += s.pool.resident_bytes();
  return b;
}

namespace {

class Sweep {
 public:
  Sweep(VattiScratch::Impl& sc, BoolOp op, SweepKernel kernel,
        int validate_mode, bool build_schedule = true)
      : bt_(sc.bt),
        op_(op),
        kernel_(kernel),
        sc_(sc),
        aet_(sc.aet),
        xb_(sc.xb),
        xt_(sc.xt),
        pos_(sc.pos),
        pool_(sc.pool),
        build_schedule_(build_schedule),
        validate_(validate_mode < 0 ? env_validate_enabled()
                                    : validate_mode != 0) {}

  PolygonSet run(VattiStats* stats) {
    const bool tuned = kernel_ == SweepKernel::kTuned;
    if (build_schedule_) {
      // Both constructions produce the same sorted distinct-value vector;
      // the split only decides which cost profile each kernel pays. A
      // caller-prebuilt schedule (fused slab partition: one shared global
      // schedule sliced per slab) therefore serves either kernel.
      const std::int64_t t0 = now_ns();
      if (tuned)
        scanbeam_ys_merged_into(bt_, sc_.ys);
      else
        scanbeam_ys_into(bt_, sc_.ys);
      if (stats) stats->schedule_ns += now_ns() - t0;
    }
    if (tuned) {
      // The flat position index is sized once per run; entries are written
      // before they are read (an edge's slot is set when it enters the AET),
      // so no per-run clear is needed.
      if (pos_.size() < bt_.num_edges()) pos_.resize(bt_.num_edges());
    }
    pool_.reserve(bt_.minima.size());
    const std::vector<double>& ys = sc_.ys;
    std::size_t next_min = 0;
    // Request governance (DESIGN.md §11): the scanbeam loop is the one
    // place whose trip count is output-sensitive, so it hosts the
    // cooperative cancellation checkpoint (amortized clock reads keep it
    // under the bench_governance_overhead 1% gate) and the preemptive
    // charge for output growth — the only structure a hostile input can
    // blow up beyond any input-proportional bound. The charge is a
    // watermark over the pool's O(1) vertex counter and releases with this
    // scope if the sweep unwinds.
    par::gov::ScopedCharge out_charge;
    for (std::size_t i = 0; i + 1 < ys.size(); ++i) {
      par::gov::checkpoint();
      out_charge.raise_to(pool_.total_vertices() * OutPolyPool::kVertexBytes);
      const double yb = ys[i];
      const double yt = ys[i + 1];
      if (tuned)
        insert_minima_batched(yb, next_min);
      else
        insert_minima_reference(yb, next_min);
      if (validate_) validate_flags(yb, "after-minima");
      process_intersections(yb, yt);
      process_top(yt);
      // Beam rollover: every entry's bottom x for the next beam is its top
      // x here. SoA makes this a buffer swap; the reference kernel pays the
      // per-entry copy the pre-PR AoS layout did.
      if (tuned)
        xb_.swap(xt_);
      else
        xb_.assign(xt_.begin(), xt_.end());
      if (validate_) validate_flags(yt, "after-beam");
      if (stats) {
        ++stats->scanbeams;
        stats->max_aet = std::max<std::int64_t>(
            stats->max_aet, static_cast<std::int64_t>(aet_.size()));
      }
    }
    if (stats) {
      stats->edges = static_cast<std::int64_t>(bt_.num_edges());
      stats->intersections = intersections_;
      stats->sorted_beams = sorted_beams_;
      stats->pos_rebuilds = pos_rebuilds_;
      stats->validate_failures = validate_failures_;
    }
    PolygonSet out = pool_.harvest();
    if (stats)
      stats->output_vertices =
          static_cast<std::int64_t>(out.num_vertices());
    return out;
  }

 private:
  const BoundTable& bt_;
  BoolOp op_;
  SweepKernel kernel_;
  VattiScratch::Impl& sc_;
  std::vector<SweepEntry>& aet_;
  std::vector<double>& xb_;
  std::vector<double>& xt_;
  std::vector<std::int32_t>& pos_;
  OutPolyPool& pool_;
  std::int64_t intersections_ = 0;
  std::int64_t sorted_beams_ = 0;
  std::int64_t pos_rebuilds_ = 0;
  std::int64_t validate_failures_ = 0;
  bool build_schedule_ = true;
  bool validate_ = false;

  /// Debug self-check (VattiScratch::validate or PSCLIP_VALIDATE): parity
  /// flags of every AET entry must equal the accumulated flips of the
  /// entries to its left, and the AET must be x-ordered at the given
  /// scanline. Violations print to stderr and count into
  /// VattiStats::validate_failures.
  void validate_flags(double y, const char* where) {
    bool s = false, c = false;
    for (std::size_t i = 0; i < aet_.size(); ++i) {
      const SweepEntry& a = aet_[i];
      if (a.left_s != s || a.left_c != c) {
        ++validate_failures_;
        std::fprintf(stderr,
                     "[psclip] flag mismatch %s y=%.17g idx=%zu "
                     "have=(%d,%d) want=(%d,%d)\n",
                     where, y, i, (int)a.left_s, (int)a.left_c, (int)s,
                     (int)c);
      }
      s ^= flip_s(a);
      c ^= flip_c(a);
    }
    for (std::size_t i = 1; i < aet_.size(); ++i) {
      const BoundEdge& ep = edge(aet_[i - 1]);
      const BoundEdge& ec = edge(aet_[i]);
      const double xp = ep.top.y == y ? ep.top.x : geom::x_at_y(ep.bot, ep.top, y);
      const double xc = ec.top.y == y ? ec.top.x : geom::x_at_y(ec.bot, ec.top, y);
      if (xc < xp - 1e-12) {
        ++validate_failures_;
        std::fprintf(stderr,
                     "[psclip] order violation %s y=%.17g idx=%zu "
                     "x[%zu]=%.17g > x[%zu]=%.17g\n",
                     where, y, i, i - 1, xp, i, xc);
      }
    }
  }

  [[nodiscard]] const BoundEdge& edge(const SweepEntry& a) const {
    return bt_.edges[static_cast<std::size_t>(a.e)];
  }
  [[nodiscard]] bool flip_s(const SweepEntry& a) const {
    return !edge(a).is_clip;
  }
  [[nodiscard]] bool flip_c(const SweepEntry& a) const {
    return edge(a).is_clip;
  }
  [[nodiscard]] bool res(bool s, bool c) const {
    return geom::in_result(s, c, op_);
  }

  /// Rewrite the flat position index for AET slots [from, end) after a
  /// structural edit shifted them. O(1) writes per shifted slot — the shift
  /// itself already paid the same traffic.
  void sync_pos(std::size_t from) {
    for (std::size_t i = from; i < aet_.size(); ++i)
      pos_[static_cast<std::size_t>(aet_[i].e)] = static_cast<std::int32_t>(i);
    ++pos_rebuilds_;
  }

  /// Bisection identical to std::upper_bound (same midpoint sequence) over
  /// an index range, with the minima comparator: key (x, slope) against an
  /// element's (xb, dxdy).
  template <typename XbAt, typename DxdyAt>
  std::size_t upper_bound_key(double x, double slope, std::size_t n,
                              XbAt xb_at, DxdyAt dxdy_at) const {
    std::size_t lo = 0, hi = n;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const double ex = xb_at(mid);
      const bool key_less = x != ex ? x < ex : slope < dxdy_at(mid);
      if (key_less)
        hi = mid;
      else
        lo = mid + 1;
    }
    return lo;
  }

  /// Build the Active-pair fields for one local minimum given the parity
  /// flags of the entry to its left in the (conceptual) post-insert AET.
  /// Shared by both insertion strategies so the emission logic cannot
  /// drift between them.
  std::pair<SweepEntry, SweepEntry> make_min_pair(const LocalMin& lm, bool ls,
                                                  bool lc) {
    const auto eL = lm.edge_left;
    const auto eR = lm.edge_right;
    const bool fs = !bt_.edges[static_cast<std::size_t>(eL)].is_clip;
    const bool fc = !fs;
    const bool outside = res(ls, lc);            // sector around the min
    const bool between = res(ls ^ fs, lc ^ fc);  // sector above, inside

    std::int32_t poly = -1;
    if (outside != between) {
      // Contributing minimum. If the wedge above is interior this starts
      // an exterior contour (left edge feeds the front); if the
      // surroundings are interior it opens a hole (roles swap).
      poly = between ? pool_.create(lm.pt, /*hole=*/false, eL, eR)
                     : pool_.create(lm.pt, /*hole=*/true, eR, eL);
    }

    SweepEntry left;
    left.e = eL;
    left.left_s = ls;
    left.left_c = lc;
    left.poly = poly;
    SweepEntry right;
    right.e = eR;
    right.left_s = ls ^ fs;
    right.left_c = lc ^ fc;
    right.poly = poly;
    return {left, right};
  }

  /// Pre-PR insertion strategy: one O(|AET|) mid-vector insert per minimum.
  void insert_minima_reference(double yb, std::size_t& next_min) {
    while (next_min < bt_.minima.size() &&
           bt_.minima[next_min].pt.y == yb) {
      const LocalMin& lm = bt_.minima[next_min++];
      const double slope_l =
          bt_.edges[static_cast<std::size_t>(lm.edge_left)].dxdy;

      // Position by (x at this scanline, then slope).
      const std::size_t pos = upper_bound_key(
          lm.pt.x, slope_l, aet_.size(), [&](std::size_t i) { return xb_[i]; },
          [&](std::size_t i) { return edge(aet_[i]).dxdy; });

      bool ls = false, lc = false;
      if (pos > 0) {
        const SweepEntry& prev = aet_[pos - 1];
        ls = prev.left_s ^ flip_s(prev);
        lc = prev.left_c ^ flip_c(prev);
      }
      const auto [left, right] = make_min_pair(lm, ls, lc);
      aet_.insert(aet_.begin() + static_cast<std::ptrdiff_t>(pos),
                  {left, right});
      xb_.insert(xb_.begin() + static_cast<std::ptrdiff_t>(pos), 2, lm.pt.x);
    }
  }

  /// Batched insertion strategy: stage every minimum of this scanline, then
  /// splice them into the AET with ONE merge pass instead of one O(|AET|)
  /// memmove each. Each minimum still bisects the same conceptual sequence
  /// the reference kernel searches (old entries + minima staged so far), so
  /// positions, neighbour flags and pool-creation order are identical.
  void insert_minima_batched(double yb, std::size_t& next_min) {
    if (next_min >= bt_.minima.size() || bt_.minima[next_min].pt.y != yb)
      return;
    std::vector<StagedEntry>& nb = sc_.staged;
    nb.clear();
    const std::size_t old_n = aet_.size();

    // Resolve a merged-view index to its element: staged entry t sits at
    // merged index nb[t].base + t (bases are non-decreasing, so the merged
    // indices are strictly increasing).
    auto resolve = [&](std::size_t idx) -> std::pair<bool, std::size_t> {
      // Returns {is_staged, index-into-nb-or-old}.
      std::size_t lo = 0, hi = nb.size();
      while (lo < hi) {  // first t with nb[t].base + t >= idx
        const std::size_t mid = lo + (hi - lo) / 2;
        if (nb[mid].base + mid >= idx)
          hi = mid;
        else
          lo = mid + 1;
      }
      if (lo < nb.size() && nb[lo].base + lo == idx) return {true, lo};
      return {false, idx - lo};  // lo staged entries precede idx
    };

    while (next_min < bt_.minima.size() &&
           bt_.minima[next_min].pt.y == yb) {
      const LocalMin& lm = bt_.minima[next_min++];
      const double slope_l =
          bt_.edges[static_cast<std::size_t>(lm.edge_left)].dxdy;

      // Bisect the merged view (old AET + staged pairs) — probe-for-probe
      // the same search the reference kernel runs on its physical array.
      const std::size_t p = upper_bound_key(
          lm.pt.x, slope_l, old_n + nb.size(),
          [&](std::size_t i) {
            const auto [st, k] = resolve(i);
            return st ? nb[k].x : xb_[k];
          },
          [&](std::size_t i) {
            const auto [st, k] = resolve(i);
            return st ? edge(nb[k].ent).dxdy : edge(aet_[k]).dxdy;
          });

      bool ls = false, lc = false;
      if (p > 0) {
        const auto [st, k] = resolve(p - 1);
        const SweepEntry& prev = st ? nb[k].ent : aet_[k];
        ls = prev.left_s ^ flip_s(prev);
        lc = prev.left_c ^ flip_c(prev);
      }
      const auto [left, right] = make_min_pair(lm, ls, lc);

      // Stage the pair at merged position p: staged entries before p keep
      // their slots, the rest shift right by two.
      std::size_t before = 0;  // staged entries strictly left of p
      while (before < nb.size() && nb[before].base + before < p) ++before;
      const std::size_t base = p - before;
      nb.insert(nb.begin() + static_cast<std::ptrdiff_t>(before),
                {StagedEntry{base, left, lm.pt.x},
                 StagedEntry{base, right, lm.pt.x}});
    }

    // One merge pass: splice the staged pairs (sorted by base) into the
    // AET and its bottom-x array.
    std::vector<SweepEntry>& am = sc_.aet_merge;
    std::vector<double>& xm = sc_.xb_merge;
    am.clear();
    xm.clear();
    am.reserve(old_n + nb.size());
    xm.reserve(old_n + nb.size());
    std::size_t oi = 0;
    for (const StagedEntry& ne : nb) {
      for (; oi < ne.base; ++oi) {
        am.push_back(aet_[oi]);
        xm.push_back(xb_[oi]);
      }
      am.push_back(ne.ent);
      xm.push_back(ne.x);
    }
    for (; oi < old_n; ++oi) {
      am.push_back(aet_[oi]);
      xm.push_back(xb_[oi]);
    }
    const std::size_t first_touched = nb.front().base;
    aet_.swap(am);
    xb_.swap(xm);
    sync_pos(first_touched);
  }

  [[nodiscard]] double top_x(const SweepEntry& a, double yt) const {
    const BoundEdge& e = edge(a);
    if (e.top.y == yt) return e.top.x;
    return geom::x_at_y(e.bot, e.top, yt);
  }

  void process_intersections(double yb, double yt) {
    const bool tuned = kernel_ == SweepKernel::kTuned;
    const std::size_t n = aet_.size();
    xt_.resize(n);
    // Fill the top-x array and detect the crossing-free common case in the
    // same streaming pass: the AET left the previous beam sorted by that
    // beam's top x, so between beams it is *nearly* sorted — most beams
    // have no adjacent inversion at all. The adjacent strict-< checks are
    // exactly the insertion sort's swap condition, so "no inversion here"
    // is precisely "the sort would perform zero swaps" (NaN included: both
    // comparisons are false, neither path swaps).
    bool any_inversion = false;
    for (std::size_t i = 0; i < n; ++i) {
      xt_[i] = top_x(aet_[i], yt);
      if (i > 0 && xt_[i] < xt_[i - 1]) any_inversion = true;
    }
    if (!any_inversion) {
      ++sorted_beams_;
      // Zero swaps => zero crossings => nothing to emit. Only the tuned
      // kernel gets to skip the machinery; the reference kernel still runs
      // the full pre-PR path (whose insertion sort performs zero swaps and
      // produces zero events), keeping its cost profile honest while the
      // counter stays comparable across kernels.
      if (tuned) return;
    }

    // Phase 1 — enumerate the beam's crossings as the inversions between
    // the bottom and top x-orders (Lemma 4), on a scratch copy so that no
    // sweep state changes yet. The event and key buffers live in the
    // VattiScratch (cleared here, capacity retained): this loop runs once
    // per scanbeam, and per-beam reallocation is exactly the churn the
    // per-worker slab arenas exist to remove.
    std::vector<CrossEv>& events = sc_.events;
    events.clear();
    {
      auto& ks = sc_.keys;  // (xt, edge id)
      ks.clear();
      ks.reserve(n);
      for (std::size_t i = 0; i < n; ++i) ks.emplace_back(xt_[i], aet_[i].e);
      for (std::size_t i = 1; i < ks.size(); ++i) {
        std::size_t j = i;
        while (j > 0 && ks[j].first < ks[j - 1].first) {
          const BoundEdge& eu =
              bt_.edges[static_cast<std::size_t>(ks[j - 1].second)];
          const BoundEdge& ev =
              bt_.edges[static_cast<std::size_t>(ks[j].second)];
          Point p =
              geom::line_intersection(eu.bot, eu.top, ev.bot, ev.top);
          // A genuine crossing lies inside the beam up to rounding; allow
          // one beam height of slack before distrusting the division.
          const double slack = yt - yb;
          if (!(p.y >= yb - slack && p.y <= yt + slack) ||
              !std::isfinite(p.x)) {
            // Nearly parallel edges (e.g. near-horizontals cut at a slab
            // boundary) can invert in rounded x-order while their analytic
            // intersection is far away or at infinity (cross(r,s)
            // underflows). The swap is still required to restore the top
            // x-order; emit at mid-beam, where the two edges sit within
            // rounding of each other.
            const double ym = 0.5 * (yb + yt);
            const double xu = geom::x_at_y(eu.bot, eu.top, ym);
            const double xv = geom::x_at_y(ev.bot, ev.top, ym);
            p = {0.5 * (xu + xv), ym};
          }
          events.push_back({ks[j - 1].second, ks[j].second, p});
          std::swap(ks[j - 1], ks[j]);
          --j;
        }
      }
    }
    if (events.empty()) return;

    // Phase 2 — process in ascending y of the crossing point. At its own
    // event time every crossing pair is adjacent in the AET (all lower
    // crossings have already swapped), which is what makes the sector
    // emission sound. Processing in enumeration order instead connects
    // boundaries wrongly when three edges cross pairwise in one beam.
    std::stable_sort(
        events.begin(), events.end(),
        [](const CrossEv& a, const CrossEv& b) { return a.p.y < b.p.y; });

    // Position lookup: the tuned kernel's flat index is already valid (it
    // is maintained across beams); the reference kernel rebuilds its hash
    // map here, once per crossing beam, as the pre-PR code did.
    if (!tuned) {
      auto& pos = sc_.posmap;
      pos.clear();
      pos.reserve(n * 2);
      for (std::size_t i = 0; i < n; ++i) pos[aet_[i].e] = i;
    }
    auto pos_of = [&](std::int32_t e) -> std::size_t {
      return tuned ? static_cast<std::size_t>(
                         pos_[static_cast<std::size_t>(e)])
                   : sc_.posmap[e];
    };
    auto swap_entries = [&](std::size_t iu, std::size_t iv) {
      std::swap(aet_[iu], aet_[iv]);
      std::swap(xt_[iu], xt_[iv]);
      if (tuned) {
        pos_[static_cast<std::size_t>(aet_[iu].e)] =
            static_cast<std::int32_t>(iu);
        pos_[static_cast<std::size_t>(aet_[iv].e)] =
            static_cast<std::int32_t>(iv);
      } else {
        sc_.posmap[aet_[iu].e] = iu;
        sc_.posmap[aet_[iv].e] = iv;
      }
    };

    std::vector<CrossEv>& pending = sc_.pending;
    pending.swap(events);  // hand over the enumerated crossings, no copy
    std::vector<CrossEv>& deferred = sc_.deferred;
    while (!pending.empty()) {
      bool progress = false;
      deferred.clear();
      for (const CrossEv& ev : pending) {
        std::size_t iu = pos_of(ev.eu);
        std::size_t iv = pos_of(ev.ev);
        if (iu > iv) std::swap(iu, iv);  // roles flip with current order
        if (iu + 1 == iv) {
          crossing_event(iu, iv, ev.p);
          swap_entries(iu, iv);
          progress = true;
        } else {
          deferred.push_back(ev);
        }
      }
      pending.swap(deferred);
      if (!progress && !pending.empty()) {
        // Degenerate ties interlocked (nearly coincident crossing points,
        // e.g. three edges through one point). Force-process the remaining
        // events in order: emit on the pair as if adjacent, swap, and
        // rebuild every parity flag from the array order — best-effort
        // emission at a degenerate point, but contours stay attached and
        // close (dropping emissions here loses whole output rings).
        for (const CrossEv& ev : pending) {
          std::size_t iu = pos_of(ev.eu);
          std::size_t iv = pos_of(ev.ev);
          if (iu > iv) std::swap(iu, iv);
          crossing_event(iu, iv, ev.p);
          swap_entries(iu, iv);
          bool s = false, c = false;
          for (auto& a : aet_) {
            a.left_s = s;
            a.left_c = c;
            s ^= flip_s(a);
            c ^= flip_c(a);
          }
        }
        break;
      }
    }
  }

  /// Handle the crossing of aet_[ui] (left) and aet_[vi] = aet_[ui+1] at
  /// point p; emission and flag updates are shared with Algorithm 1's
  /// per-scanbeam processing (seq/sweep_events.hpp). Does NOT swap the
  /// entries (caller does).
  void crossing_event(std::size_t ui, std::size_t vi, const Point& p) {
    SweepEntry& u = aet_[ui];
    SweepEntry& v = aet_[vi];
    ++intersections_;
    emit_crossing(pool_, u, edge(u).is_clip, v, edge(v).is_clip, p, op_);
  }

  /// Erase AET slot i, keeping the top-x array aligned (the beam rollover
  /// swap hands it to the next beam as xb). The flat position index is
  /// resynced by the caller after the whole structural edit.
  void erase_at(std::size_t i) {
    aet_.erase(aet_.begin() + static_cast<std::ptrdiff_t>(i));
    xt_.erase(xt_.begin() + static_cast<std::ptrdiff_t>(i));
  }

  void process_top(double yt) {
    const bool tuned = kernel_ == SweepKernel::kTuned;
    for (std::size_t i = 0; i < aet_.size();) {
      SweepEntry& a = aet_[i];
      const BoundEdge e = edge(a);  // copy: aet_ may be mutated below
      if (e.top.y != yt) {
        ++i;
        continue;
      }
      if (e.next >= 0) {
        // Intermediate vertex: the bound continues with the next edge.
        const bool outside = res(a.left_s, a.left_c);
        const bool inside = res(a.left_s ^ flip_s(a), a.left_c ^ flip_c(a));
        if (outside != inside && a.poly >= 0)
          pool_.extend_reassign(a.poly, a.e, e.top, e.next);
        a.e = e.next;
        if (tuned)
          pos_[static_cast<std::size_t>(e.next)] =
              static_cast<std::int32_t>(i);
        ++i;
        continue;
      }
      // Local maximum: find the partner bound ending at the same point.
      std::size_t j = i + 1;
      while (j < aet_.size()) {
        const BoundEdge& pe = edge(aet_[j]);
        if (pe.next < 0 && pe.top == e.top) break;
        ++j;
      }
      if (j == aet_.size()) {
        // No partner (degenerate input slipped through): drop the edge.
        erase_at(i);
        if (tuned) sync_pos(i);
        continue;
      }
      // In general position the partner is adjacent. If ties in xt left
      // strays between them, repair their parity for the removal of `a`
      // (removing the partner on their right does not affect them).
      for (std::size_t t = i + 1; t < j; ++t) {
        aet_[t].left_s = aet_[t].left_s ^ flip_s(a);
        aet_[t].left_c = aet_[t].left_c ^ flip_c(a);
      }
      const bool outside = res(a.left_s, a.left_c);
      const bool between = res(a.left_s ^ flip_s(a), a.left_c ^ flip_c(a));
      if (outside != between && a.poly >= 0 && aet_[j].poly >= 0)
        pool_.close(a.poly, a.e, aet_[j].poly, aet_[j].e, e.top);
      erase_at(j);
      erase_at(i);
      if (tuned) sync_pos(i);
      // i now indexes the entry after the removed pair's position.
    }
  }
};

}  // namespace

namespace {

/// Shared sweep tail of vatti_clip / vatti_sweep_prepared: the scratch's
/// bound table is ready (and, with `prebuilt_schedule`, its schedule too);
/// run the sweep, feed the trace sink, apply the kVattiSweep corruption
/// hook.
PolygonSet run_sweep(VattiScratch& sc, BoolOp op, VattiStats* stats,
                     SweepKernel kernel, bool prebuilt_schedule) {
  sc.impl->begin_run();
  ++sc.runs;
  obs::TraceSink* const sink = obs::global_sink();
  VattiStats sink_stats;
  VattiStats* st = stats ? stats : (sink ? &sink_stats : nullptr);
  Sweep sweep(*sc.impl, op, kernel, sc.validate,
              /*build_schedule=*/!prebuilt_schedule);
  PolygonSet out = sweep.run(st);
  if (sink && st) {
    sink->add_counter("vatti.scanbeams", st->scanbeams);
    sink->add_counter("vatti.sorted_beams", st->sorted_beams);
    sink->add_counter("vatti.pos_rebuilds", st->pos_rebuilds);
  }
  if (par::fault::corrupt(par::fault::Site::kVattiSweep)) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    out.add({{nan, nan}, {0.0, 0.0}, {1.0, 1.0}});
  }
  return out;
}

}  // namespace

PolygonSet vatti_clip(const PolygonSet& subject, const PolygonSet& clip,
                      BoolOp op, VattiStats* stats, VattiScratch* scratch,
                      SweepKernel kernel) {
  par::fault::inject(par::fault::Site::kVattiSweep);
  VattiScratch local;
  VattiScratch& sc = scratch ? *scratch : local;
  BoundTable& bt = sc.impl->bt;
  {
    const std::int64_t t0 = now_ns();
    bt.edges.clear();
    bt.minima.clear();
    // Per-contour preparation (clean -> coalesce -> perturb): every step is
    // a per-contour function, so preparing contours one at a time here is
    // bit-identical to whole-set preparation — and to the fused slab
    // partition preparing the same contours once globally.
    geom::Contour prep;
    for (const auto& c : subject.contours)
      if (prepare_contour_points(c, prep))
        append_bounds(bt, prep, /*is_clip=*/false);
    for (const auto& c : clip.contours)
      if (prepare_contour_points(c, prep))
        append_bounds(bt, prep, /*is_clip=*/true);
    sort_minima(bt);
    if (stats) stats->bound_build_ns += now_ns() - t0;
  }
  return run_sweep(sc, op, stats, kernel, /*prebuilt_schedule=*/false);
}

BoundTable& scratch_bounds(VattiScratch& scratch) {
  return scratch.impl->bt;
}

std::vector<double>& scratch_schedule(VattiScratch& scratch) {
  return scratch.impl->ys;
}

PolygonSet vatti_sweep_prepared(BoolOp op, VattiStats* stats,
                                VattiScratch& scratch, SweepKernel kernel,
                                bool prebuilt_schedule) {
  par::fault::inject(par::fault::Site::kVattiSweep);
  return run_sweep(scratch, op, stats, kernel, prebuilt_schedule);
}

}  // namespace psclip::seq
