#pragma once

#include "geom/bool_op.hpp"
#include "geom/polygon.hpp"

namespace psclip::seq {

/// Greiner–Hormann clipping of two *simple* contours (paper §IV uses it for
/// the rectangle-clipping steps of Algorithm 2, having found it faster than
/// GPC for that job).
///
/// Implementation of the classic three-phase algorithm: insert crossing
/// nodes into both circular vertex lists, mark them alternately entry/exit
/// starting from a point-in-polygon test, then trace result rings by
/// switching lists at each crossing. Requires general position (no
/// vertex-on-edge or overlapping-edge degeneracies; use geom::jitter for
/// degenerate data) and non-self-intersecting inputs — the limitations that
/// motivate Vatti's algorithm for the general case.
geom::PolygonSet greiner_hormann(const geom::Contour& subject,
                                 const geom::Contour& clip, geom::BoolOp op);

/// Clip every contour of `subject` independently against `clip`
/// (correct when subject contours are disjoint, e.g. a GIS polygon layer).
geom::PolygonSet greiner_hormann(const geom::PolygonSet& subject,
                                 const geom::Contour& clip, geom::BoolOp op);

}  // namespace psclip::seq
