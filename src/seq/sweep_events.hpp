#pragma once

#include <cstdint>

#include "geom/bool_op.hpp"
#include "geom/point.hpp"
#include "seq/out_poly.hpp"

namespace psclip::seq {

/// The sweep-status fields shared by the sequential Vatti sweep and by the
/// per-scanbeam processing of Algorithm 1: the current bound edge, the
/// even-odd parity flags to the entry's left (Lemma 1/3), and the output
/// polygon this edge currently extends.
struct SweepEntry {
  std::int32_t e = -1;     ///< bound edge id (index into a BoundTable)
  bool left_s = false;     ///< subject parity to the left
  bool left_c = false;     ///< clip parity to the left
  std::int32_t poly = -1;  ///< out-poly extended by this edge, -1 if none
};

/// Handle the crossing of sweep-status neighbours u (left) and v at point
/// p: emit output vertices by the interior-sector-run rule and leave the
/// two entries' parity flags and poly attachments in their post-swap
/// state. The caller performs the physical swap afterwards.
///
/// This one function replaces Vatti's intersection-vertex classification
/// table: the sectors around p (W, S, E, N) are classified in/out of the
/// boolean result from the parity flags; every maximal interior run of
/// sectors is bounded by two contributing half-edges which connect through
/// p — below+below closes a contour, above+above starts one (exterior ring
/// if the N wedge is interior, hole otherwise), below+above continues one.
/// Self-intersections (u, v from the same input polygon) need no special
/// case: their sector pattern automatically yields the paper's Fig. 5
/// left/right duplication.
void emit_crossing(OutPolyPool& pool, SweepEntry& u, bool u_is_clip,
                   SweepEntry& v, bool v_is_clip, const geom::Point& p,
                   geom::BoolOp op);

}  // namespace psclip::seq
