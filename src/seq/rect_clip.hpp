#pragma once

#include <cstdint>
#include <span>

#include "geom/bbox.hpp"
#include "geom/polygon.hpp"

namespace psclip::seq {

/// Method used for the rectangle-clipping steps of Algorithm 2 (the paper
/// evaluates Greiner–Hormann against GPC for this job and picks GH as the
/// faster option; we expose the same choice plus the baselines so it can
/// be ablated).
enum class RectClipMethod {
  kGreinerHormann,     ///< the paper's choice for Steps 4–5
  kVatti,              ///< general clipper on a rectangle (GPC's role)
  kSutherlandHodgman,  ///< half-plane cascade (bridged output)
};

const char* to_string(RectClipMethod m);

/// Clip `subject` to the axis-aligned rectangle.
///
/// Contours entirely inside are passed through untouched (common fast path
/// for slab partitioning), contours entirely outside are dropped, and only
/// boundary-straddling contours run through the selected clipper.
geom::PolygonSet rect_clip(const geom::PolygonSet& subject,
                           const geom::BBox& rect,
                           RectClipMethod method = RectClipMethod::kGreinerHormann);

/// Reusable scratch for rect_clip_subset: the straddling-contour staging
/// buffer survives between calls (a slab-arena worker resets it instead of
/// reallocating it for every slab task).
struct RectClipScratch {
  geom::PolygonSet straddling;
};

/// Clip a pre-selected subset of contours (a slab's overlap list, in input
/// order) to the rectangle. `inside[i]` marks contours[i] as lying fully
/// inside `rect` — precomputed from cached bounding boxes by the slab
/// index — and such contours are moved through untouched; the rest run
/// through the selected clipper together.
///
/// Produces output identical to rect_clip() on a PolygonSet holding exactly
/// these contours in this order, but without re-deriving any bounding box:
/// the caller's index already decided overlap and containment.
geom::PolygonSet rect_clip_subset(
    std::span<const geom::Contour* const> contours,
    std::span<const std::uint8_t> inside, const geom::BBox& rect,
    RectClipMethod method = RectClipMethod::kGreinerHormann,
    RectClipScratch* scratch = nullptr);

}  // namespace psclip::seq
