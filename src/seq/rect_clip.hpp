#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/polygon.hpp"
#include "seq/bounds.hpp"

namespace psclip::seq {

/// Method used for the rectangle-clipping steps of Algorithm 2 (the paper
/// evaluates Greiner–Hormann against GPC for this job and picks GH as the
/// faster option; we expose the same choice plus the baselines so it can
/// be ablated).
enum class RectClipMethod {
  kGreinerHormann,     ///< the paper's choice for Steps 4–5
  kVatti,              ///< general clipper on a rectangle (GPC's role)
  kSutherlandHodgman,  ///< half-plane cascade (bridged output)
};

const char* to_string(RectClipMethod m);

/// Clip `subject` to the axis-aligned rectangle.
///
/// Contours entirely inside are passed through untouched (common fast path
/// for slab partitioning), contours entirely outside are dropped, and only
/// boundary-straddling contours run through the selected clipper.
geom::PolygonSet rect_clip(const geom::PolygonSet& subject,
                           const geom::BBox& rect,
                           RectClipMethod method = RectClipMethod::kGreinerHormann);

/// Reusable scratch for rect_clip_subset / clip_bounds_to_slab: the
/// staging buffers survive between calls (a slab-arena worker resets them
/// instead of reallocating them for every slab task).
struct RectClipScratch {
  geom::PolygonSet straddling;
  geom::PolygonSet pieces;      ///< clip_bounds_to_slab: rect-clip output
  PreparedContour piece_prep;   ///< clip_bounds_to_slab: per-piece prep
};

/// Clip a pre-selected subset of contours (a slab's overlap list, in input
/// order) to the rectangle. `inside[i]` marks contours[i] as lying fully
/// inside `rect` — precomputed from cached bounding boxes by the slab
/// index — and such contours are moved through untouched; the rest run
/// through the selected clipper together.
///
/// Produces output identical to rect_clip() on a PolygonSet holding exactly
/// these contours in this order, but without re-deriving any bounding box:
/// the caller's index already decided overlap and containment.
geom::PolygonSet rect_clip_subset(
    std::span<const geom::Contour* const> contours,
    std::span<const std::uint8_t> inside, const geom::BBox& rect,
    RectClipMethod method = RectClipMethod::kGreinerHormann,
    RectClipScratch* scratch = nullptr);

/// Deterministic work counters of one clip_bounds_to_slab call.
struct FusedClipStats {
  /// Bound edges appended for this input (prepared fragments + piece
  /// fragments) — the fused analogue of SlabLoad::touched_edges' "vertices
  /// the partition read".
  std::int64_t touched_edges = 0;
  /// Piece edges lying exactly on the slab's bottom or top boundary line —
  /// the degeneracy-rich edges the rectangle clipper stitches in (before
  /// coalescing).
  std::int64_t boundary_edges = 0;
};

/// Fused partition path (Alg2Partition::kFused): rect-clip *bounds, not
/// contours*. For one input (subject or clip) of one slab, append directly
/// to `bt`:
///
///  - contours fully inside the slab (`inside[i]`): their globally prepared
///    bound fragment `prepared[i]` is copied in with index fixups
///    (append_prepared) — no re-clean, no re-perturbation, no per-slab
///    bound re-derivation. `prepared[i]` may be null (degenerate after
///    prep: contributes nothing, exactly as the set pipeline drops it).
///  - boundary-straddling contours: `originals[i]` runs through the
///    selected rectangle clipper (byte-identical pieces to
///    rect_clip/rect_clip_subset, same kRectClip fault sites), and each
///    piece is prepared and appended — after every inside fragment, which
///    is the emission order rect_clip_subset feeds the set pipeline.
///
/// The per-slab scanbeam schedule is assembled as sorted runs in
/// `ys`/`run_end` (see merge_sorted_runs_unique): one run per piece, plus
/// one run per inside contour whose schedule is NOT already covered by the
/// caller's shared global slice (`in_shared[i] == 0`). Minima are appended
/// unsorted; the caller finishes the table with sort_minima once both
/// inputs are in.
///
/// Returns false when any used fragment or piece carries a non-finite
/// vertex (the caller must fail the slab attempt exactly as the
/// materializing path's is_finite post-check does). Fires the kFusedBounds
/// fault-injection site on entry; the corruption hook poisons the piece
/// set, which surfaces through the same false return.
bool clip_bounds_to_slab(std::span<const PreparedContour* const> prepared,
                         std::span<const geom::Contour* const> originals,
                         std::span<const std::uint8_t> inside,
                         std::span<const std::uint8_t> in_shared,
                         const geom::BBox& rect, RectClipMethod method,
                         bool is_clip, RectClipScratch* scratch,
                         BoundTable& bt, std::vector<double>& ys,
                         std::vector<std::size_t>& run_end,
                         FusedClipStats* stats = nullptr);

}  // namespace psclip::seq
