#pragma once

#include "geom/bbox.hpp"
#include "geom/polygon.hpp"

namespace psclip::seq {

/// Method used for the rectangle-clipping steps of Algorithm 2 (the paper
/// evaluates Greiner–Hormann against GPC for this job and picks GH as the
/// faster option; we expose the same choice plus the baselines so it can
/// be ablated).
enum class RectClipMethod {
  kGreinerHormann,     ///< the paper's choice for Steps 4–5
  kVatti,              ///< general clipper on a rectangle (GPC's role)
  kSutherlandHodgman,  ///< half-plane cascade (bridged output)
};

const char* to_string(RectClipMethod m);

/// Clip `subject` to the axis-aligned rectangle.
///
/// Contours entirely inside are passed through untouched (common fast path
/// for slab partitioning), contours entirely outside are dropped, and only
/// boundary-straddling contours run through the selected clipper.
geom::PolygonSet rect_clip(const geom::PolygonSet& subject,
                           const geom::BBox& rect,
                           RectClipMethod method = RectClipMethod::kGreinerHormann);

}  // namespace psclip::seq
