#include "seq/out_poly.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace psclip::seq {

std::int32_t OutPolyPool::create(const geom::Point& p, bool hole,
                                 std::int32_t front_edge,
                                 std::int32_t back_edge) {
  Poly poly;
  poly.pts.push_back(p);
  ++total_vertices_;
  poly.hole = hole;
  poly.min_y = p.y;
  poly.front_owner = front_edge;
  poly.back_owner = back_edge;
  polys_.push_back(std::move(poly));
  return static_cast<std::int32_t>(polys_.size() - 1);
}

std::int32_t OutPolyPool::resolve(std::int32_t id) const {
  while (id >= 0 && polys_[static_cast<std::size_t>(id)].redirect >= 0)
    id = polys_[static_cast<std::size_t>(id)].redirect;
  return id;
}

bool OutPolyPool::owns_front(const Poly& p, std::int32_t edge) {
  assert(p.front_owner == edge || p.back_owner == edge);
  return p.front_owner == edge;
}

void OutPolyPool::extend(std::int32_t poly, std::int32_t edge,
                         const geom::Point& p) {
  Poly& pl = at(resolve(poly));
  ++total_vertices_;
  if (owns_front(pl, edge))
    pl.pts.push_front(p);
  else
    pl.pts.push_back(p);
}

void OutPolyPool::extend_reassign(std::int32_t poly, std::int32_t edge,
                                  const geom::Point& p,
                                  std::int32_t new_edge) {
  Poly& pl = at(resolve(poly));
  ++total_vertices_;
  if (owns_front(pl, edge)) {
    pl.pts.push_front(p);
    pl.front_owner = new_edge;
  } else {
    pl.pts.push_back(p);
    pl.back_owner = new_edge;
  }
}

void OutPolyPool::reassign(std::int32_t poly, std::int32_t edge,
                           std::int32_t new_edge) {
  Poly& pl = at(resolve(poly));
  if (owns_front(pl, edge))
    pl.front_owner = new_edge;
  else
    pl.back_owner = new_edge;
}

OutPolyPool::EndRef OutPolyPool::locate_end(std::int32_t poly,
                                            std::int32_t edge) const {
  const std::int32_t id = resolve(poly);
  const Poly& pl = polys_[static_cast<std::size_t>(id)];
  return {id, owns_front(pl, edge)};
}

void OutPolyPool::extend_reassign_end(EndRef ref, const geom::Point& p,
                                      std::int32_t new_edge) {
  Poly& pl = at(ref.poly);
  ++total_vertices_;
  if (ref.front) {
    pl.pts.push_front(p);
    pl.front_owner = new_edge;
  } else {
    pl.pts.push_back(p);
    pl.back_owner = new_edge;
  }
}

void OutPolyPool::close(std::int32_t poly_a, std::int32_t edge_a,
                        std::int32_t poly_b, std::int32_t edge_b,
                        const geom::Point& p) {
  const std::int32_t ida = resolve(poly_a);
  const std::int32_t idb = resolve(poly_b);

  if (ida == idb) {
    Poly& pl = at(ida);
    // Both ends of the same partial contour meet: the ring is complete.
    pl.pts.push_back(p);
    ++total_vertices_;
    pl.closed = true;
    pl.front_owner = pl.back_owner = -1;
    return;
  }

  Poly& a = at(ida);
  Poly& b = at(idb);
  const bool a_front = owns_front(a, edge_a);
  const bool b_front = owns_front(b, edge_b);

  // Normalize to the back(a) -- p -- front(b) case, reversing the shorter
  // list when the meeting ends have the same polarity (which legitimately
  // happens when contours have been grown from minima of either parity).
  auto reverse_poly = [](Poly& pl) {
    pl.pts.reverse();
    std::swap(pl.front_owner, pl.back_owner);
  };

  if (a_front && b_front) {
    if (a.pts.size() < b.pts.size()) reverse_poly(a); else reverse_poly(b);
  } else if (!a_front && !b_front) {
    if (a.pts.size() < b.pts.size()) reverse_poly(a); else reverse_poly(b);
  }

  // After normalization exactly one of the meeting ends is a front.
  Poly& tail = owns_front(a, edge_a) ? b : a;   // contributes its back
  Poly& head = owns_front(a, edge_a) ? a : b;   // contributes its front
  const std::int32_t tail_id = (&tail == &a) ? ida : idb;
  const std::int32_t head_id = (&tail == &a) ? idb : ida;

  tail.pts.push_back(p);
  ++total_vertices_;
  tail.pts.splice(tail.pts.end(), head.pts);
  tail.back_owner = head.back_owner;
  // The ring's hole-ness is decided at its *global* minimum: a partial
  // started at a concave notch inside the interior carries hole=true even
  // when the ring it ends up in is exterior. Keep the flag (and origin)
  // of the lower-origin partial.
  if (head.min_y < tail.min_y) {
    tail.hole = head.hole;
    tail.min_y = head.min_y;
  }
  head.redirect = tail_id;
  head.front_owner = head.back_owner = -1;
  (void)head_id;
}

geom::PolygonSet OutPolyPool::harvest(double min_area) const {
  geom::PolygonSet out;
  for (const auto& pl : polys_) {
    if (pl.redirect >= 0 || !pl.closed) continue;
    if (pl.pts.size() < 3) continue;
    geom::Contour c;
    c.hole = pl.hole;
    c.pts.assign(pl.pts.begin(), pl.pts.end());
    // Collapse consecutive duplicates (events at shared points can emit
    // the same vertex twice).
    auto last = std::unique(c.pts.begin(), c.pts.end());
    c.pts.erase(last, c.pts.end());
    while (c.pts.size() > 1 && c.pts.front() == c.pts.back())
      c.pts.pop_back();
    if (c.pts.size() < 3) continue;
    const double sa = geom::signed_area(c);
    if (std::abs(sa) <= min_area) continue;
    // Exterior contours counter-clockwise, holes clockwise.
    if ((!c.hole && sa < 0.0) || (c.hole && sa > 0.0)) geom::reverse(c);
    out.contours.push_back(std::move(c));
  }
  return out;
}

}  // namespace psclip::seq
