#include "seq/greiner_hormann.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "geom/intersect.hpp"
#include "geom/point_in_polygon.hpp"

namespace psclip::seq {
namespace {

using geom::BoolOp;
using geom::Contour;
using geom::Point;
using geom::PolygonSet;

struct Node {
  Point p;
  int next = -1, prev = -1;
  bool intersect = false;
  int neighbor = -1;  // matching node in the other list
  bool entry = false;
  bool visited = false;
  double alpha = 0.0;  // parametric position along the source edge
};

/// Builds the circular list for a ring; returns index of the first node.
int build_ring(std::vector<Node>& nodes, const Contour& c) {
  const int base = static_cast<int>(nodes.size());
  const int n = static_cast<int>(c.size());
  for (int i = 0; i < n; ++i) {
    Node nd;
    nd.p = c[static_cast<std::size_t>(i)];
    nd.next = base + (i + 1) % n;
    nd.prev = base + (i + n - 1) % n;
    nodes.push_back(nd);
  }
  return base;
}

/// Insert an intersection node after `from`, keeping alpha order among
/// consecutive intersection nodes on the same original edge.
int insert_sorted(std::vector<Node>& nodes, int from, int idx) {
  int cur = from;
  while (nodes[nodes[cur].next].intersect &&
         nodes[nodes[cur].next].alpha < nodes[idx].alpha)
    cur = nodes[cur].next;
  const int nxt = nodes[cur].next;
  nodes[idx].prev = cur;
  nodes[idx].next = nxt;
  nodes[cur].next = idx;
  nodes[nxt].prev = idx;
  return idx;
}

double param_along(const Point& a, const Point& b, const Point& p) {
  const double dx = b.x - a.x, dy = b.y - a.y;
  return std::fabs(dx) >= std::fabs(dy) ? (p.x - a.x) / dx : (p.y - a.y) / dy;
}

PolygonSet no_intersection_result(const Contour& subject, const Contour& clip,
                                  BoolOp op) {
  PolygonSet out;
  geom::PolygonSet cs;
  cs.contours.push_back(clip);
  geom::PolygonSet ss;
  ss.contours.push_back(subject);
  const bool s_in_c = geom::point_in_polygon(subject[0], cs);
  const bool c_in_s = geom::point_in_polygon(clip[0], ss);
  switch (op) {
    case BoolOp::kIntersection:
      if (s_in_c) out.contours.push_back(subject);
      else if (c_in_s) out.contours.push_back(clip);
      break;
    case BoolOp::kUnion:
      if (s_in_c) out.contours.push_back(clip);
      else if (c_in_s) out.contours.push_back(subject);
      else {
        out.contours.push_back(subject);
        out.contours.push_back(clip);
      }
      break;
    case BoolOp::kDifference:
      if (s_in_c) break;  // subject swallowed
      out.contours.push_back(subject);
      if (c_in_s) {
        Contour hole = clip;
        hole.hole = true;
        out.contours.push_back(hole);  // even-odd: clip ring voids interior
      }
      break;
    case BoolOp::kXor:
      out.contours.push_back(subject);
      out.contours.push_back(clip);
      break;
  }
  return out;
}

}  // namespace

PolygonSet greiner_hormann(const Contour& subject, const Contour& clip,
                           BoolOp op) {
  if (op == BoolOp::kXor) {
    // GH expresses XOR as the disjoint union of the two differences
    // (their interiors cannot overlap, so concatenation is exact under
    // the even-odd rule).
    PolygonSet out = greiner_hormann(subject, clip, BoolOp::kDifference);
    PolygonSet rev = greiner_hormann(clip, subject, BoolOp::kDifference);
    for (auto& c : rev.contours) out.contours.push_back(std::move(c));
    return out;
  }
  if (subject.size() < 3) return no_intersection_result(subject, clip, op);
  if (clip.size() < 3) {
    PolygonSet out;
    if (op != BoolOp::kIntersection) out.contours.push_back(subject);
    return out;
  }

  std::vector<Node> nodes;
  nodes.reserve(subject.size() + clip.size() + 16);
  const int s0 = build_ring(nodes, subject);
  const int c0 = build_ring(nodes, clip);
  const int sn = static_cast<int>(subject.size());
  const int cn = static_cast<int>(clip.size());

  // Phase 1: find proper crossings and link twin nodes into both rings.
  bool any = false;
  for (int i = 0; i < sn; ++i) {
    const Point& a1 = subject[static_cast<std::size_t>(i)];
    const Point& a2 = subject[static_cast<std::size_t>((i + 1) % sn)];
    for (int j = 0; j < cn; ++j) {
      const Point& b1 = clip[static_cast<std::size_t>(j)];
      const Point& b2 = clip[static_cast<std::size_t>((j + 1) % cn)];
      const auto x = geom::segment_intersection(a1, a2, b1, b2);
      if (x.relation != geom::SegmentRelation::kProper) continue;
      any = true;
      Node si;
      si.p = x.point;
      si.intersect = true;
      si.alpha = param_along(a1, a2, x.point);
      Node ci;
      ci.p = x.point;
      ci.intersect = true;
      ci.alpha = param_along(b1, b2, x.point);
      const int si_idx = static_cast<int>(nodes.size());
      nodes.push_back(si);
      const int ci_idx = static_cast<int>(nodes.size());
      nodes.push_back(ci);
      nodes[si_idx].neighbor = ci_idx;
      nodes[ci_idx].neighbor = si_idx;
      insert_sorted(nodes, s0 + i, si_idx);
      insert_sorted(nodes, c0 + j, ci_idx);
    }
  }
  if (!any) return no_intersection_result(subject, clip, op);

  // Phase 2: alternate entry/exit flags along each ring. The initial flag
  // per ring comes from a point-in-polygon test; the boolean operator is
  // realized by flipping the conventional intersection flags.
  geom::PolygonSet cs;
  cs.contours.push_back(clip);
  geom::PolygonSet ss;
  ss.contours.push_back(subject);
  // Entry/exit flag convention (Greiner & Hormann 1998): intersection
  // flips nothing, union flips both rings, A\B flips the subject ring.
  const bool flip_s = (op == BoolOp::kUnion || op == BoolOp::kDifference);
  const bool flip_c = (op == BoolOp::kUnion);

  bool status = !geom::point_in_polygon(subject[0], cs);
  if (flip_s) status = !status;
  for (int cur = s0;;) {
    if (nodes[cur].intersect) {
      nodes[cur].entry = status;
      status = !status;
    }
    cur = nodes[cur].next;
    if (cur == s0) break;
  }
  status = !geom::point_in_polygon(clip[0], ss);
  if (flip_c) status = !status;
  for (int cur = c0;;) {
    if (nodes[cur].intersect) {
      nodes[cur].entry = status;
      status = !status;
    }
    cur = nodes[cur].next;
    if (cur == c0) break;
  }

  // Phase 3: trace result rings.
  PolygonSet out;
  for (std::size_t seed = 0; seed < nodes.size(); ++seed) {
    if (!nodes[seed].intersect || nodes[seed].visited) continue;
    Contour ring;
    int cur = static_cast<int>(seed);
    do {
      nodes[cur].visited = true;
      nodes[nodes[cur].neighbor].visited = true;
      if (nodes[cur].entry) {
        do {
          cur = nodes[cur].next;
          ring.pts.push_back(nodes[cur].p);
        } while (!nodes[cur].intersect);
      } else {
        do {
          cur = nodes[cur].prev;
          ring.pts.push_back(nodes[cur].p);
        } while (!nodes[cur].intersect);
      }
      cur = nodes[cur].neighbor;
    } while (!nodes[cur].visited);
    if (ring.pts.size() >= 3) out.contours.push_back(std::move(ring));
  }
  return out;
}

PolygonSet greiner_hormann(const PolygonSet& subject, const Contour& clip,
                           BoolOp op) {
  PolygonSet out;
  for (const auto& c : subject.contours) {
    PolygonSet part = greiner_hormann(c, clip, op);
    for (auto& r : part.contours) out.contours.push_back(std::move(r));
  }
  return out;
}

}  // namespace psclip::seq
