#include "seq/liang_barsky.hpp"

#include "seq/sutherland_hodgman.hpp"

namespace psclip::seq {

std::optional<std::pair<geom::Point, geom::Point>> liang_barsky_segment(
    const geom::BBox& rect, const geom::Point& p0, const geom::Point& p1) {
  const double dx = p1.x - p0.x;
  const double dy = p1.y - p0.y;
  double t0 = 0.0, t1 = 1.0;

  // For each boundary: p * t <= q keeps the inside part.
  const double p[4] = {-dx, dx, -dy, dy};
  const double q[4] = {p0.x - rect.xmin, rect.xmax - p0.x, p0.y - rect.ymin,
                       rect.ymax - p0.y};
  for (int i = 0; i < 4; ++i) {
    if (p[i] == 0.0) {
      if (q[i] < 0.0) return std::nullopt;  // parallel and outside
      continue;
    }
    const double r = q[i] / p[i];
    if (p[i] < 0.0) {
      if (r > t1) return std::nullopt;
      if (r > t0) t0 = r;
    } else {
      if (r < t0) return std::nullopt;
      if (r < t1) t1 = r;
    }
  }
  if (t0 > t1) return std::nullopt;
  return std::make_pair(geom::Point{p0.x + t0 * dx, p0.y + t0 * dy},
                        geom::Point{p0.x + t1 * dx, p0.y + t1 * dy});
}

geom::PolygonSet liang_barsky_polygon(const geom::PolygonSet& subject,
                                      const geom::BBox& rect) {
  // The polygon variant reduces to four axis-aligned half-plane passes;
  // we reuse the Sutherland–Hodgman engine on the rectangle ring, which is
  // exactly the half-plane cascade the Liang–Barsky polygon algorithm
  // performs with its entry/exit bookkeeping.
  const geom::Contour r =
      geom::make_rect(rect.xmin, rect.ymin, rect.xmax, rect.ymax);
  return sutherland_hodgman(subject, r);
}

}  // namespace psclip::seq
