#pragma once

#include "geom/bool_op.hpp"
#include "geom/polygon.hpp"

namespace psclip::seq {

/// Boolean operations with the Martinez–Rueda–Feito algorithm
/// (Martinez et al., "A new algorithm for computing Boolean operations on
/// polygons", Computers & Geosciences 2009): a single left-to-right
/// Bentley–Ottmann sweep that subdivides edges at intersections, labels
/// every subdivided edge with in/out flags for both polygons, selects the
/// edges on the result boundary, and reconnects them into rings.
///
/// This is a completely independent algorithm from the Vatti scanline
/// clipper (different sweep direction, different status structure,
/// different output assembly); the test suite runs both against each
/// other and against the trapezoid-sweep area oracle as a three-way
/// differential. Same region semantics as vatti_clip: even-odd fill,
/// arbitrary (including self-intersecting) inputs, general position
/// (vertical edges are perturbed away internally, mirroring what the
/// scanline clippers do with horizontal ones).
geom::PolygonSet martinez_clip(const geom::PolygonSet& subject,
                               const geom::PolygonSet& clip, geom::BoolOp op);

}  // namespace psclip::seq
