#include "seq/rect_clip.hpp"

#include <cassert>
#include <limits>

#include "parallel/fault.hpp"
#include "seq/greiner_hormann.hpp"
#include "seq/sutherland_hodgman.hpp"
#include "seq/vatti.hpp"

namespace psclip::seq {
namespace {

/// Run the selected clipper on the boundary-straddling contours against the
/// rectangle ring and append the pieces to `out`. Shared by the broadcast
/// path (rect_clip) and the indexed path (rect_clip_subset) so the two
/// produce bit-identical output for the same straddling set.
void clip_straddling(const geom::PolygonSet& straddling,
                     const geom::BBox& rect, RectClipMethod method,
                     geom::PolygonSet& out) {
  par::fault::inject(par::fault::Site::kRectClip);
  const geom::Contour rring =
      geom::make_rect(rect.xmin, rect.ymin, rect.xmax, rect.ymax);
  geom::PolygonSet clipped;
  switch (method) {
    case RectClipMethod::kGreinerHormann:
      clipped = greiner_hormann(straddling, rring,
                                geom::BoolOp::kIntersection);
      break;
    case RectClipMethod::kVatti: {
      geom::PolygonSet rp;
      rp.contours.push_back(rring);
      clipped = vatti_clip(straddling, rp, geom::BoolOp::kIntersection);
      break;
    }
    case RectClipMethod::kSutherlandHodgman:
      clipped = sutherland_hodgman(straddling, rring);
      break;
  }
  for (auto& c : clipped.contours) out.contours.push_back(std::move(c));
  if (par::fault::corrupt(par::fault::Site::kRectClip)) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    out.add({{nan, nan}, {0.0, 0.0}, {1.0, 1.0}});
  }
}

}  // namespace

const char* to_string(RectClipMethod m) {
  switch (m) {
    case RectClipMethod::kGreinerHormann: return "GH";
    case RectClipMethod::kVatti: return "Vatti";
    case RectClipMethod::kSutherlandHodgman: return "SH";
  }
  return "?";
}

geom::PolygonSet rect_clip(const geom::PolygonSet& subject,
                           const geom::BBox& rect, RectClipMethod method) {
  geom::PolygonSet out;
  geom::PolygonSet straddling;
  for (const auto& c : subject.contours) {
    const geom::BBox cb = geom::bounds(c);
    if (!cb.overlaps(rect)) continue;  // fully outside
    if (cb.xmin >= rect.xmin && cb.xmax <= rect.xmax && cb.ymin >= rect.ymin &&
        cb.ymax <= rect.ymax) {
      out.contours.push_back(c);  // fully inside
      continue;
    }
    straddling.contours.push_back(c);
  }
  if (straddling.empty()) return out;
  clip_straddling(straddling, rect, method, out);
  return out;
}

geom::PolygonSet rect_clip_subset(
    std::span<const geom::Contour* const> contours,
    std::span<const std::uint8_t> inside, const geom::BBox& rect,
    RectClipMethod method, RectClipScratch* scratch) {
  assert(contours.size() == inside.size());
  geom::PolygonSet out;
  RectClipScratch local;
  RectClipScratch& sc = scratch ? *scratch : local;
  sc.straddling.contours.clear();
  for (std::size_t i = 0; i < contours.size(); ++i) {
    if (inside[i])
      out.contours.push_back(*contours[i]);  // move-not-clip fast path
    else
      sc.straddling.contours.push_back(*contours[i]);
  }
  if (sc.straddling.empty()) return out;
  clip_straddling(sc.straddling, rect, method, out);
  return out;
}

bool clip_bounds_to_slab(std::span<const PreparedContour* const> prepared,
                         std::span<const geom::Contour* const> originals,
                         std::span<const std::uint8_t> inside,
                         std::span<const std::uint8_t> in_shared,
                         const geom::BBox& rect, RectClipMethod method,
                         bool is_clip, RectClipScratch* scratch,
                         BoundTable& bt, std::vector<double>& ys,
                         std::vector<std::size_t>& run_end,
                         FusedClipStats* stats) {
  assert(prepared.size() == inside.size());
  assert(originals.size() == inside.size());
  assert(in_shared.size() == inside.size());
  assert(!run_end.empty() && run_end.back() == ys.size());
  par::fault::inject(par::fault::Site::kFusedBounds);
  RectClipScratch local;
  RectClipScratch& sc = scratch ? *scratch : local;
  bool finite = true;

  // Inside contours first, in list order — the emission order
  // rect_clip_subset hands the set pipeline, so the assembled table's
  // pre-sort minima sequence is identical to the materializing path's.
  sc.straddling.contours.clear();
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    if (!inside[i]) {
      sc.straddling.contours.push_back(*originals[i]);
      continue;
    }
    const PreparedContour* pc = prepared[i];
    if (pc == nullptr) continue;  // degenerate after prep: no bounds
    if (!pc->finite) {
      // The materializing path would carry the non-finite vertex into the
      // slab inputs and fail its is_finite pre-sweep check; report the same
      // condition without building on poisoned geometry.
      finite = false;
      continue;
    }
    append_prepared(bt, *pc);
    if (stats)
      stats->touched_edges += static_cast<std::int64_t>(pc->bt.edges.size());
    if (!in_shared[i] && !pc->ys.empty()) {
      // Stray: inside by the (closed-interval) index but not strictly
      // contained in this slab's open interval once prepared — its ys are
      // not covered by the shared global schedule slice, so merge them as
      // an explicit run.
      ys.insert(ys.end(), pc->ys.begin(), pc->ys.end());
      run_end.push_back(ys.size());
    }
  }

  // Straddling contours: identical pieces to rect_clip/rect_clip_subset
  // (same clipper, same straddling set, same kRectClip fault sites), but
  // each piece goes straight through the shared per-contour prep into the
  // bound table — never into an intermediate slab polygon set.
  sc.pieces.contours.clear();
  if (!sc.straddling.empty())
    clip_straddling(sc.straddling, rect, method, sc.pieces);
  if (par::fault::corrupt(par::fault::Site::kFusedBounds)) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    sc.pieces.add({{nan, nan}, {0.0, 0.0}, {1.0, 1.0}});
  }
  for (const geom::Contour& piece : sc.pieces.contours) {
    if (!geom::is_finite(piece)) {
      finite = false;
      continue;
    }
    if (stats) {
      // Boundary-degeneracy metric: piece edges lying exactly on the slab's
      // cut lines, counted before coalescing folds them away.
      const std::size_t n = piece.size();
      for (std::size_t a = 0, b = n - 1; a < n; b = a++) {
        const double y = piece[a].y;
        if (piece[b].y == y && (y == rect.ymin || y == rect.ymax))
          ++stats->boundary_edges;
      }
    }
    if (!prepare_contour(piece, is_clip, sc.piece_prep)) continue;
    append_prepared(bt, sc.piece_prep);
    if (stats)
      stats->touched_edges +=
          static_cast<std::int64_t>(sc.piece_prep.bt.edges.size());
    if (!sc.piece_prep.ys.empty()) {
      ys.insert(ys.end(), sc.piece_prep.ys.begin(), sc.piece_prep.ys.end());
      run_end.push_back(ys.size());
    }
  }
  return finite;
}

}  // namespace psclip::seq
