#include "seq/rect_clip.hpp"

#include <cassert>
#include <limits>

#include "parallel/fault.hpp"
#include "seq/greiner_hormann.hpp"
#include "seq/sutherland_hodgman.hpp"
#include "seq/vatti.hpp"

namespace psclip::seq {
namespace {

/// Run the selected clipper on the boundary-straddling contours against the
/// rectangle ring and append the pieces to `out`. Shared by the broadcast
/// path (rect_clip) and the indexed path (rect_clip_subset) so the two
/// produce bit-identical output for the same straddling set.
void clip_straddling(const geom::PolygonSet& straddling,
                     const geom::BBox& rect, RectClipMethod method,
                     geom::PolygonSet& out) {
  par::fault::inject(par::fault::Site::kRectClip);
  const geom::Contour rring =
      geom::make_rect(rect.xmin, rect.ymin, rect.xmax, rect.ymax);
  geom::PolygonSet clipped;
  switch (method) {
    case RectClipMethod::kGreinerHormann:
      clipped = greiner_hormann(straddling, rring,
                                geom::BoolOp::kIntersection);
      break;
    case RectClipMethod::kVatti: {
      geom::PolygonSet rp;
      rp.contours.push_back(rring);
      clipped = vatti_clip(straddling, rp, geom::BoolOp::kIntersection);
      break;
    }
    case RectClipMethod::kSutherlandHodgman:
      clipped = sutherland_hodgman(straddling, rring);
      break;
  }
  for (auto& c : clipped.contours) out.contours.push_back(std::move(c));
  if (par::fault::corrupt(par::fault::Site::kRectClip)) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    out.add({{nan, nan}, {0.0, 0.0}, {1.0, 1.0}});
  }
}

}  // namespace

const char* to_string(RectClipMethod m) {
  switch (m) {
    case RectClipMethod::kGreinerHormann: return "GH";
    case RectClipMethod::kVatti: return "Vatti";
    case RectClipMethod::kSutherlandHodgman: return "SH";
  }
  return "?";
}

geom::PolygonSet rect_clip(const geom::PolygonSet& subject,
                           const geom::BBox& rect, RectClipMethod method) {
  geom::PolygonSet out;
  geom::PolygonSet straddling;
  for (const auto& c : subject.contours) {
    const geom::BBox cb = geom::bounds(c);
    if (!cb.overlaps(rect)) continue;  // fully outside
    if (cb.xmin >= rect.xmin && cb.xmax <= rect.xmax && cb.ymin >= rect.ymin &&
        cb.ymax <= rect.ymax) {
      out.contours.push_back(c);  // fully inside
      continue;
    }
    straddling.contours.push_back(c);
  }
  if (straddling.empty()) return out;
  clip_straddling(straddling, rect, method, out);
  return out;
}

geom::PolygonSet rect_clip_subset(
    std::span<const geom::Contour* const> contours,
    std::span<const std::uint8_t> inside, const geom::BBox& rect,
    RectClipMethod method, RectClipScratch* scratch) {
  assert(contours.size() == inside.size());
  geom::PolygonSet out;
  RectClipScratch local;
  RectClipScratch& sc = scratch ? *scratch : local;
  sc.straddling.contours.clear();
  for (std::size_t i = 0; i < contours.size(); ++i) {
    if (inside[i])
      out.contours.push_back(*contours[i]);  // move-not-clip fast path
    else
      sc.straddling.contours.push_back(*contours[i]);
  }
  if (sc.straddling.empty()) return out;
  clip_straddling(sc.straddling, rect, method, out);
  return out;
}

}  // namespace psclip::seq
