#include "seq/rect_clip.hpp"

#include "seq/greiner_hormann.hpp"
#include "seq/sutherland_hodgman.hpp"
#include "seq/vatti.hpp"

namespace psclip::seq {

const char* to_string(RectClipMethod m) {
  switch (m) {
    case RectClipMethod::kGreinerHormann: return "GH";
    case RectClipMethod::kVatti: return "Vatti";
    case RectClipMethod::kSutherlandHodgman: return "SH";
  }
  return "?";
}

geom::PolygonSet rect_clip(const geom::PolygonSet& subject,
                           const geom::BBox& rect, RectClipMethod method) {
  const geom::Contour rring =
      geom::make_rect(rect.xmin, rect.ymin, rect.xmax, rect.ymax);

  geom::PolygonSet out;
  geom::PolygonSet straddling;
  for (const auto& c : subject.contours) {
    const geom::BBox cb = geom::bounds(c);
    if (!cb.overlaps(rect)) continue;  // fully outside
    if (cb.xmin >= rect.xmin && cb.xmax <= rect.xmax && cb.ymin >= rect.ymin &&
        cb.ymax <= rect.ymax) {
      out.contours.push_back(c);  // fully inside
      continue;
    }
    straddling.contours.push_back(c);
  }
  if (straddling.empty()) return out;

  geom::PolygonSet clipped;
  switch (method) {
    case RectClipMethod::kGreinerHormann:
      clipped = greiner_hormann(straddling, rring,
                                geom::BoolOp::kIntersection);
      break;
    case RectClipMethod::kVatti: {
      geom::PolygonSet rp;
      rp.contours.push_back(rring);
      clipped = vatti_clip(straddling, rp, geom::BoolOp::kIntersection);
      break;
    }
    case RectClipMethod::kSutherlandHodgman:
      clipped = sutherland_hodgman(straddling, rring);
      break;
  }
  for (auto& c : clipped.contours) out.contours.push_back(std::move(c));
  return out;
}

}  // namespace psclip::seq
