#include "seq/sweep_events.hpp"

#include <cstdio>
#include <cstdlib>

namespace psclip::seq {

void emit_crossing(OutPolyPool& pool, SweepEntry& u, bool u_is_clip,
                   SweepEntry& v, bool v_is_clip, const geom::Point& p,
                   geom::BoolOp op) {
  const bool fsu = !u_is_clip, fcu = u_is_clip;
  const bool fsv = !v_is_clip, fcv = v_is_clip;
  auto res = [op](bool s, bool c) { return geom::in_result(s, c, op); };

  // Sector occupancy around p, counter-clockwise from West:
  //   W (left of both), S (between, below), E (right of both),
  //   N (between, above). Boundary b separates sec[b] from sec[(b+1)%4]:
  //   0 = u-below, 1 = v-below, 2 = u-above, 3 = v-above.
  const bool sec[4] = {
      res(u.left_s, u.left_c),                          // W
      res(u.left_s ^ fsu, u.left_c ^ fcu),              // S
      res(u.left_s ^ fsu ^ fsv, u.left_c ^ fcu ^ fcv),  // E
      res(u.left_s ^ fsv, u.left_c ^ fcv),              // N
  };

  std::int32_t u_above = -1, v_above = -1;

  static const bool trace = std::getenv("PSCLIP_TRACE") != nullptr;
  if (trace)
    std::fprintf(stderr,
                 "[x] p=(%.9f,%.9f) u=%d v=%d uflags=(%d,%d) upoly=%d "
                 "vpoly=%d sec=%d%d%d%d\n",
                 p.x, p.y, u.e, v.e, (int)u.left_s, (int)u.left_c, u.poly,
                 v.poly, (int)sec[0], (int)sec[1], (int)sec[2], (int)sec[3]);

  struct Half {
    bool below;
    SweepEntry* ent;
  };
  const Half halves[4] = {{true, &u}, {true, &v}, {false, &u}, {false, &v}};

  // Continuations are resolved to physical list ends first and applied
  // afterwards: when both crossing edges extend the *same* partial contour
  // (its two ends meeting at a self-intersection), applying the first
  // reassignment would corrupt the owner lookup of the second.
  struct Continuation {
    OutPolyPool::EndRef ref;
    SweepEntry* above;
    std::int32_t below_poly;
  };
  Continuation conts[2];
  int n_conts = 0;

  for (int b = 0; b < 4; ++b) {
    const int after = (b + 1) % 4;
    if (sec[b] || !sec[after]) continue;  // b starts a run iff ext -> int
    int e2 = after;  // find the run's end boundary (int -> ext)
    while (sec[(e2 + 1) % 4]) e2 = (e2 + 1) % 4;
    const Half h1 = halves[b];
    const Half h2 = halves[e2];

    if (h1.below && h2.below) {
      // Local maximum of the result at p.
      if (h1.ent->poly >= 0 && h2.ent->poly >= 0)
        pool.close(h1.ent->poly, h1.ent->e, h2.ent->poly, h2.ent->e, p);
    } else if (!h1.below && !h2.below) {
      // Local minimum of the result at p. If N is the interior wedge the
      // new contour is exterior and v (left above the swap) feeds the
      // front; otherwise the interior surrounds p and a hole opens.
      const std::int32_t np = sec[3]
                                  ? pool.create(p, /*hole=*/false, v.e, u.e)
                                  : pool.create(p, /*hole=*/true, u.e, v.e);
      u_above = np;
      v_above = np;
    } else {
      const Half below = h1.below ? h1 : h2;
      const Half above = h1.below ? h2 : h1;
      if (below.ent->poly >= 0) {
        conts[n_conts++] = {pool.locate_end(below.ent->poly, below.ent->e),
                            above.ent, below.ent->poly};
      }
    }
  }
  for (int ci = 0; ci < n_conts; ++ci) {
    pool.extend_reassign_end(conts[ci].ref, p, conts[ci].above->e);
    (conts[ci].above == &u ? u_above : v_above) = conts[ci].below_poly;
  }

  // Post-swap parity flags: v moves left of u.
  const bool ls = u.left_s, lc = u.left_c;
  v.left_s = ls;
  v.left_c = lc;
  u.left_s = ls ^ fsv;
  u.left_c = lc ^ fcv;
  u.poly = u_above;
  v.poly = v_above;
}

}  // namespace psclip::seq
