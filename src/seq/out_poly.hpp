#pragma once

#include <cstdint>
#include <list>
#include <vector>

#include "geom/polygon.hpp"

namespace psclip::seq {

/// Incremental store for output polygons under construction.
///
/// Vatti's algorithm grows each output contour from both ends as the sweep
/// ascends: a contributing *left* edge extends one end, a *right* edge the
/// other, and local maxima of the result join two partial contours (or
/// close one). This pool owns the vertex lists, supports O(1) end
/// extension, O(1)+redirect merging (paper Fig. 6 "merging partial output
/// polygons" at the sequential level), and tracks, per list end, which
/// sweep edge currently owns it so that the event machinery never needs
/// left/right bookkeeping of its own.
///
/// Edges are identified by caller-chosen int32 ids (the clippers use the
/// BoundTable edge index).
class OutPolyPool {
 public:
  /// Start a new partial contour at point p (a local minimum of the
  /// result). `front_edge` / `back_edge` are the edges that will extend
  /// the respective ends. Returns the poly id.
  std::int32_t create(const geom::Point& p, bool hole, std::int32_t front_edge,
                      std::int32_t back_edge);

  /// Append p to the end of `poly` owned by `edge`.
  void extend(std::int32_t poly, std::int32_t edge, const geom::Point& p);

  /// Append p to the end of `poly` owned by `edge`, then hand that end to
  /// `new_edge` (intermediate vertices and intersection continuations).
  void extend_reassign(std::int32_t poly, std::int32_t edge,
                       const geom::Point& p, std::int32_t new_edge);

  /// Hand the end of `poly` owned by `edge` to `new_edge` without adding a
  /// vertex.
  void reassign(std::int32_t poly, std::int32_t edge, std::int32_t new_edge);

  /// A resolved physical list end. Two simultaneous events on the same
  /// partial contour (its two ends crossing each other, which happens with
  /// self-intersecting inputs) must resolve both ends *before* mutating
  /// either, or the first owner reassignment aliases the second lookup.
  struct EndRef {
    std::int32_t poly = -1;
    bool front = false;
  };
  [[nodiscard]] EndRef locate_end(std::int32_t poly, std::int32_t edge) const;

  /// Append p to the resolved end and hand it to `new_edge`.
  void extend_reassign_end(EndRef ref, const geom::Point& p,
                           std::int32_t new_edge);

  /// Local maximum of the result at p: the ends owned by `edge_a` (in
  /// `poly_a`) and `edge_b` (in `poly_b`) meet. If both ends belong to the
  /// same contour it is closed; otherwise the two partial contours are
  /// concatenated through p and the absorbed id redirected.
  void close(std::int32_t poly_a, std::int32_t edge_a, std::int32_t poly_b,
             std::int32_t edge_b, const geom::Point& p);

  /// Follow merge redirections to the surviving id.
  [[nodiscard]] std::int32_t resolve(std::int32_t id) const;

  /// Number of poly records created (including absorbed ones).
  [[nodiscard]] std::size_t size() const { return polys_.size(); }

  /// Total vertices appended since the last reset() (splices conserve the
  /// count; reversals don't touch it). O(1) — the per-scanbeam budget
  /// checkpoint reads this to charge output growth preemptively, the only
  /// structure whose size is output-sensitive rather than input-bounded.
  [[nodiscard]] std::size_t total_vertices() const { return total_vertices_; }

  /// Approximate resident bytes: record array capacity plus list nodes
  /// (vertex + two links + allocator header per node).
  [[nodiscard]] std::size_t resident_bytes() const {
    return polys_.capacity() * sizeof(Poly) + total_vertices_ * kVertexBytes;
  }

  /// Estimated heap cost of one list-node vertex.
  static constexpr std::size_t kVertexBytes =
      sizeof(geom::Point) + 3 * sizeof(void*);

  /// Drop all poly records, retaining the record array's capacity — lets a
  /// pooled sweep scratch reuse the same OutPolyPool across runs.
  void reset() {
    polys_.clear();
    total_vertices_ = 0;
  }

  /// Pre-size the record array (the sweep reserves one slot per local
  /// minimum up front, the upper bound on contributing minima).
  void reserve(std::size_t n) { polys_.reserve(n); }

  /// Extract final contours: closed contours with >= 3 vertices,
  /// orientation normalized (exterior counter-clockwise, holes clockwise).
  /// Contours with |signed area| <= min_area are dropped.
  [[nodiscard]] geom::PolygonSet harvest(double min_area = 0.0) const;

 private:
  struct Poly {
    std::list<geom::Point> pts;
    bool hole = false;
    double min_y = 0.0;  ///< y of the minimum this partial started at
    bool closed = false;
    std::int32_t redirect = -1;
    std::int32_t front_owner = -1;
    std::int32_t back_owner = -1;
  };
  std::vector<Poly> polys_;
  std::size_t total_vertices_ = 0;

  Poly& at(std::int32_t id) { return polys_[static_cast<std::size_t>(id)]; }
  /// True if `edge` owns the front end of `p` (asserts it owns some end).
  static bool owns_front(const Poly& p, std::int32_t edge);
};

}  // namespace psclip::seq
