#include "seq/bounds.hpp"

#include <algorithm>

#include "geom/perturb.hpp"

namespace psclip::seq {
namespace {

double slope(const geom::Point& bot, const geom::Point& top) {
  return (top.x - bot.x) / (top.y - bot.y);
}

}  // namespace

void append_bounds(BoundTable& bt, const geom::PolygonSet& p, bool is_clip) {
  for (const auto& c : p.contours) append_bounds(bt, c, is_clip);
}

void append_bounds(BoundTable& bt, const geom::Contour& c, bool is_clip) {
  const std::size_t n = c.size();
  if (n < 3) return;

  auto at = [&c, n](std::size_t i) -> const geom::Point& {
    return c[i % n];
  };
  auto ascending = [&](std::size_t from) {
    return at(from + 1).y > at(from).y;
  };

  // Walk one ascending chain starting with the edge from -> from+1;
  // returns the index of the first edge and links the chain.
  auto emit_chain_forward = [&](std::size_t from) -> std::int32_t {
    std::int32_t first = -1, prev = -1;
    std::size_t i = from;
    while (ascending(i)) {
      BoundEdge e;
      e.bot = at(i);
      e.top = at(i + 1);
      e.dxdy = slope(e.bot, e.top);
      e.is_clip = is_clip;
      const auto id = static_cast<std::int32_t>(bt.edges.size());
      bt.edges.push_back(e);
      if (prev >= 0) bt.edges[prev].next = id;
      if (first < 0) first = id;
      prev = id;
      i = (i + 1) % n;
    }
    return first;
  };
  // Same, walking the ring backwards (descending contour edges reversed
  // into ascending bound edges).
  auto emit_chain_backward = [&](std::size_t from) -> std::int32_t {
    std::int32_t first = -1, prev = -1;
    std::size_t i = from;
    auto prev_idx = [n](std::size_t k) { return (k + n - 1) % n; };
    while (at(prev_idx(i)).y > at(i).y) {
      BoundEdge e;
      e.bot = at(i);
      e.top = at(prev_idx(i));
      e.dxdy = slope(e.bot, e.top);
      e.is_clip = is_clip;
      const auto id = static_cast<std::int32_t>(bt.edges.size());
      bt.edges.push_back(e);
      if (prev >= 0) bt.edges[prev].next = id;
      if (first < 0) first = id;
      prev = id;
      i = prev_idx(i);
    }
    return first;
  };

  for (std::size_t i = 0; i < n; ++i) {
    const geom::Point& prev = at(i + n - 1);
    const geom::Point& cur = at(i);
    const geom::Point& next = at(i + 1);
    const bool is_min = prev.y > cur.y && next.y > cur.y;
    if (!is_min) continue;

    LocalMin lm;
    lm.pt = cur;
    const std::int32_t fwd = emit_chain_forward(i);
    const std::int32_t bwd = emit_chain_backward(i);
    // Order the two bound heads left/right by slope: going up from the
    // shared minimum, the edge with smaller dx/dy lies to the left.
    if (bt.edges[fwd].dxdy <= bt.edges[bwd].dxdy) {
      lm.edge_left = fwd;
      lm.edge_right = bwd;
    } else {
      lm.edge_left = bwd;
      lm.edge_right = fwd;
    }
    bt.minima.push_back(lm);
  }
}

BoundTable build_bounds(const geom::PolygonSet& subject,
                        const geom::PolygonSet& clip) {
  BoundTable bt;
  build_bounds_into(bt, subject, clip);
  return bt;
}

void sort_minima(BoundTable& bt) {
  std::sort(bt.minima.begin(), bt.minima.end(),
            [](const LocalMin& a, const LocalMin& b) {
              return a.pt.y < b.pt.y || (a.pt.y == b.pt.y && a.pt.x < b.pt.x);
            });
}

void build_bounds_into(BoundTable& bt, const geom::PolygonSet& subject,
                       const geom::PolygonSet& clip) {
  bt.edges.clear();
  bt.minima.clear();
  append_bounds(bt, subject, /*is_clip=*/false);
  append_bounds(bt, clip, /*is_clip=*/true);
  sort_minima(bt);
}

int coalesce_horizontal_runs(geom::Contour& c) {
  int removed = 0;
  // Restart after each removal: a drop can expose a new coalescable triple
  // spanning the gap. Runs are short (one vertex per boundary cut), so the
  // quadratic worst case never materializes in practice.
  for (bool changed = true; changed && c.pts.size() >= 3;) {
    changed = false;
    const std::size_t n = c.pts.size();
    for (std::size_t i = 0; i < n; ++i) {
      const geom::Point& prev = c[(i + n - 1) % n];
      const geom::Point& cur = c[i];
      const geom::Point& next = c[(i + 1) % n];
      if (prev.y == cur.y && cur.y == next.y &&
          ((prev.x < cur.x && cur.x < next.x) ||
           (next.x < cur.x && cur.x < prev.x))) {
        c.pts.erase(c.pts.begin() + static_cast<std::ptrdiff_t>(i));
        ++removed;
        changed = true;
        break;
      }
    }
  }
  return removed;
}

bool prepare_contour_points(const geom::Contour& in, geom::Contour& out) {
  out = geom::cleaned_contour(in);
  if (out.pts.size() < 3) return false;
  coalesce_horizontal_runs(out);
  if (out.pts.size() < 3) return false;
  geom::remove_horizontals(out);
  return true;
}

bool prepare_contour(const geom::Contour& in, bool is_clip,
                     PreparedContour& out) {
  out.bt.edges.clear();
  out.bt.minima.clear();
  out.ys.clear();
  out.box = geom::BBox{};
  out.finite = true;
  if (!prepare_contour_points(in, out.pts)) return false;
  out.box = geom::bounds(out.pts);
  out.finite = geom::is_finite(out.pts);
  append_bounds(out.bt, out.pts, is_clip);
  scanbeam_ys_merged_into(out.bt, out.ys);
  return true;
}

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t basis) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = basis;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

std::uint64_t contour_digest(const geom::Contour& c, bool is_clip) {
  // Hash the coordinate doubles' bit patterns, not the Point structs, so
  // padding bytes can never leak into the key. -0.0 and 0.0 digest
  // differently on purpose: perturbation is a function of the bit pattern.
  std::uint64_t h = kFnvBasis;
  for (const geom::Point& pt : c.pts) {
    h = fnv1a(&pt.x, sizeof pt.x, h);
    h = fnv1a(&pt.y, sizeof pt.y, h);
  }
  const std::uint64_t n = c.pts.size();
  h = fnv1a(&n, sizeof n, h);
  const unsigned char clip_byte = is_clip ? 1 : 0;
  h = fnv1a(&clip_byte, sizeof clip_byte, h);
  h = fnv1a(&kPrepareDigestVersion, sizeof kPrepareDigestVersion, h);
  return h;
}

void append_prepared(BoundTable& bt, const PreparedContour& pc) {
  // Grow geometrically: vector::reserve allocates exactly what is asked,
  // so an exact-size reserve per fragment would reallocate (and copy the
  // whole table) on every append — quadratic over a slab's contour list.
  const auto grow = [](auto& v, std::size_t need) {
    if (v.capacity() < need) v.reserve(std::max(need, v.capacity() * 2));
  };
  const auto base = static_cast<std::int32_t>(bt.edges.size());
  grow(bt.edges, bt.edges.size() + pc.bt.edges.size());
  for (BoundEdge e : pc.bt.edges) {
    if (e.next >= 0) e.next += base;
    bt.edges.push_back(e);
  }
  grow(bt.minima, bt.minima.size() + pc.bt.minima.size());
  for (LocalMin lm : pc.bt.minima) {
    lm.edge_left += base;
    lm.edge_right += base;
    bt.minima.push_back(lm);
  }
}

std::vector<double> scanbeam_ys(const BoundTable& bt) {
  std::vector<double> ys;
  scanbeam_ys_into(bt, ys);
  return ys;
}

void scanbeam_ys_into(const BoundTable& bt, std::vector<double>& ys) {
  ys.clear();
  ys.reserve(bt.edges.size() * 2);
  for (const auto& e : bt.edges) {
    ys.push_back(e.bot.y);
    ys.push_back(e.top.y);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
}

void scanbeam_ys_merged_into(const BoundTable& bt, std::vector<double>& ys) {
  ys.clear();
  ys.reserve(bt.edges.size() + bt.minima.size());
  // One sorted run per bound: the shared minimum's y, then the strictly
  // increasing edge tops along the chain (each edge's bot is the previous
  // edge's top, so interior bots add no distinct values).
  std::vector<std::size_t> run_end;  // run r = ys[run_end[r], run_end[r+1])
  run_end.reserve(bt.minima.size() * 2 + 1);
  run_end.push_back(0);
  for (const LocalMin& lm : bt.minima) {
    for (const std::int32_t head : {lm.edge_left, lm.edge_right}) {
      ys.push_back(bt.edges[static_cast<std::size_t>(head)].bot.y);
      for (std::int32_t e = head; e >= 0;
           e = bt.edges[static_cast<std::size_t>(e)].next)
        ys.push_back(bt.edges[static_cast<std::size_t>(e)].top.y);
      run_end.push_back(ys.size());
    }
  }
  merge_sorted_runs_unique(ys, run_end);
}

void merge_sorted_runs_unique(std::vector<double>& ys,
                              std::vector<std::size_t>& run_end) {
  // Bottom-up pairwise merges: O(total · log(runs)), mostly sequential
  // streaming passes over already-ordered data.
  std::vector<std::size_t> next_end;
  while (run_end.size() > 2) {
    next_end.clear();
    next_end.push_back(0);
    std::size_t i = 0;
    for (; i + 2 < run_end.size(); i += 2) {
      std::inplace_merge(ys.begin() + static_cast<std::ptrdiff_t>(run_end[i]),
                         ys.begin() + static_cast<std::ptrdiff_t>(run_end[i + 1]),
                         ys.begin() + static_cast<std::ptrdiff_t>(run_end[i + 2]));
      next_end.push_back(run_end[i + 2]);
    }
    if (i + 1 < run_end.size()) next_end.push_back(run_end[i + 1]);
    run_end.swap(next_end);
  }
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
}

}  // namespace psclip::seq
