#include "seq/martinez.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cassert>
#include <deque>
#include <queue>
#include <set>
#include <unordered_map>
#include <vector>

#include "geom/intersect.hpp"
#include "geom/predicates.hpp"

namespace psclip::seq {
namespace {

using geom::BoolOp;
using geom::Point;
using geom::PolygonSet;

struct SweepEvent;

/// Event ordering: left-to-right, bottom-to-top, right endpoints before
/// left endpoints at the same point (so a segment ends before another
/// begins), and at a shared left endpoint the lower segment first.
bool event_before(const SweepEvent* a, const SweepEvent* b);

struct SweepEvent {
  Point p;
  bool left = false;        // is p the left endpoint of the segment?
  bool subject = false;     // which input polygon the edge comes from
  SweepEvent* other = nullptr;  // the twin endpoint event

  // Flags valid on left events after insertion into the status:
  bool in_out = false;        // own polygon's interior lies below the edge
  bool other_in_out = false;  // other polygon's interior lies below
  bool result_above = false;  // boolean result occupies the region above
  bool result_below = false;

  // Iterator into the status line, stored so the right event can erase.
  std::set<SweepEvent*, bool (*)(SweepEvent*, SweepEvent*)>::iterator pos_it;
  bool in_status = false;

  [[nodiscard]] bool contributes() const {
    return result_above != result_below;
  }
  /// True if the SEGMENT lies above point q (q is right of the directed
  /// supporting line).
  [[nodiscard]] bool above(const Point& q) const {
    const Point& l = left ? p : other->p;
    const Point& r = left ? other->p : p;
    return geom::orient2d(l, r, q) < 0.0;
  }
  /// True if the SEGMENT lies below point q.
  [[nodiscard]] bool below(const Point& q) const {
    const Point& l = left ? p : other->p;
    const Point& r = left ? other->p : p;
    return geom::orient2d(l, r, q) > 0.0;
  }
};

bool event_before(const SweepEvent* a, const SweepEvent* b) {
  if (a->p.x != b->p.x) return a->p.x < b->p.x;
  if (a->p.y != b->p.y) return a->p.y < b->p.y;
  if (a->left != b->left) return !a->left;  // right endpoint first
  // Same point, same type: the segment whose twin is lower comes first.
  const int s = geom::orient2d_sign(a->p, a->other->p, b->other->p);
  if (s != 0) return s > 0;  // b's twin above a's line => a below => first
  return a < b;  // arbitrary but consistent
}

/// Priority queue comparator (reversed: top() = earliest).
struct EventQueueCmp {
  bool operator()(SweepEvent* a, SweepEvent* b) const {
    return event_before(b, a);
  }
};

/// Status ordering: segment a strictly below segment b at the sweep
/// position where the later of the two was inserted.
bool status_below(SweepEvent* a, SweepEvent* b) {
  if (a == b) return false;
  const bool collinear =
      geom::orient2d(a->p, a->other->p, b->p) == 0.0 &&
      geom::orient2d(a->p, a->other->p, b->other->p) == 0.0;
  if (!collinear) {
    if (a->p == b->p) return a->below(b->other->p);
    if (event_before(a, b)) return a->below(b->p);
    return b->above(a->p);
  }
  // Collinear segments (overlap degeneracy): consistent arbitrary order.
  if (a->p == b->p) return a < b;
  return event_before(a, b);
}

struct ResultEdge {
  Point from, to;  // directed so the result interior is on the LEFT
};

class MartinezSweep {
 public:
  MartinezSweep(BoolOp op) : op_(op), status_(&status_below) {}

  void add_polygon(const PolygonSet& poly, bool subject) {
    for (const auto& c : poly.contours) {
      const std::size_t n = c.size();
      if (n < 3) continue;
      for (std::size_t i = 0, j = n - 1; i < n; j = i++)
        add_segment(c[j], c[i], subject);
    }
  }

  std::vector<ResultEdge> run() {
    std::vector<ResultEdge> result;
    while (!queue_.empty()) {
      SweepEvent* e = queue_.top();
      queue_.pop();
      if (e->left) {
        auto [it, inserted] = status_.insert(e);
        if (!inserted) continue;  // exactly duplicated segment: ignore
        e->pos_it = it;
        e->in_status = true;
        compute_flags(e, it);
        auto next = std::next(it);
        if (next != status_.end()) possibly_divide(e, *next);
        if (it != status_.begin()) possibly_divide(*std::prev(it), e);
      } else {
        SweepEvent* le = e->other;
        if (!le->in_status) continue;  // stale (already erased)
        auto it = le->pos_it;
        auto next = std::next(it);
        auto prev = it == status_.begin() ? status_.end() : std::prev(it);
        status_.erase(it);
        le->in_status = false;
        if (prev != status_.end() && next != status_.end())
          possibly_divide(*prev, *next);
        if (std::getenv("PSCLIP_TRACE"))
          std::fprintf(stderr,
                       "[m] edge (%.3f,%.3f)-(%.3f,%.3f) subj=%d inout=%d "
                       "other=%d rb=%d ra=%d\n",
                       le->p.x, le->p.y, e->p.x, e->p.y, (int)le->subject,
                       (int)le->in_out, (int)le->other_in_out,
                       (int)le->result_below, (int)le->result_above);
        if (le->contributes()) {
          // Direct the edge so that the result interior is on its left:
          // interior above => travel left-to-right.
          if (le->result_above)
            result.push_back({le->p, e->p});
          else
            result.push_back({e->p, le->p});
        }
      }
    }
    return result;
  }

 private:
  BoolOp op_;
  std::deque<SweepEvent> pool_;
  std::priority_queue<SweepEvent*, std::vector<SweepEvent*>, EventQueueCmp>
      queue_;
  std::set<SweepEvent*, bool (*)(SweepEvent*, SweepEvent*)> status_;

  SweepEvent* make_event() {
    pool_.emplace_back();
    return &pool_.back();
  }

  void add_segment(const Point& a, const Point& b, bool subject) {
    if (a == b) return;
    SweepEvent* ea = make_event();
    SweepEvent* eb = make_event();
    ea->p = a;
    eb->p = b;
    ea->other = eb;
    eb->other = ea;
    ea->subject = eb->subject = subject;
    if (event_before(ea, eb)) {
      ea->left = true;
    } else {
      eb->left = true;
    }
    queue_.push(ea);
    queue_.push(eb);
  }

  /// Flag conventions: e->in_out = the edge's OWN polygon interior lies
  /// just below the edge; e->other_in_out = the OTHER polygon's interior
  /// is present at the edge (its parity does not change across the edge,
  /// so below == above for it).
  void compute_flags(SweepEvent* e, decltype(status_)::iterator it) {
    bool own_below, other_at;
    if (it == status_.begin()) {
      own_below = false;
      other_at = false;
    } else {
      SweepEvent* prev = *std::prev(it);
      // The strip between prev and e: prev's own-polygon parity flips
      // across prev; the other polygon's does not.
      if (prev->subject == e->subject) {
        own_below = !prev->in_out;
        other_at = prev->other_in_out;
      } else {
        own_below = prev->other_in_out;
        other_at = !prev->in_out;
      }
    }
    e->in_out = own_below;
    e->other_in_out = other_at;

    // Result membership on either side (crossing the edge flips only the
    // own polygon's even-odd parity).
    const bool subj_below = e->subject ? own_below : other_at;
    const bool clip_below = e->subject ? other_at : own_below;
    const bool subj_above = e->subject ? !own_below : other_at;
    const bool clip_above = e->subject ? other_at : !own_below;
    e->result_below = geom::in_result(subj_below, clip_below, op_);
    e->result_above = geom::in_result(subj_above, clip_above, op_);
  }

  /// Subdivide segment `e` (a left event) at interior point p.
  void divide(SweepEvent* e, const Point& p) {
    // e.p ---- p ---- e.other.p  becomes two segments sharing p.
    SweepEvent* r = make_event();  // right end of the left half
    SweepEvent* l = make_event();  // left end of the right half
    r->p = p;
    r->subject = e->subject;
    r->left = false;
    l->p = p;
    l->subject = e->subject;
    l->left = true;
    // Guard against rounding inversions: if the new point would not sort
    // strictly between the endpoints, skip the division.
    if (!event_before(e, r) || !event_before(l, e->other)) return;
    r->other = e;
    l->other = e->other;
    e->other->other = l;
    e->other = r;
    queue_.push(r);
    queue_.push(l);
  }

  void possibly_divide(SweepEvent* e1, SweepEvent* e2) {
    const Point a1 = e1->p, a2 = e1->other->p;
    const Point b1 = e2->p, b2 = e2->other->p;
    const auto x = geom::segment_intersection(a1, a2, b1, b2);
    if (x.relation == geom::SegmentRelation::kProper) {
      divide_if_interior(e1, x.point);
      divide_if_interior(e2, x.point);
    } else if (x.relation == geom::SegmentRelation::kTouch) {
      // Endpoint of one segment in the interior of the other.
      divide_if_interior(e1, x.point);
      divide_if_interior(e2, x.point);
    }
    // Collinear overlaps are outside the general-position contract.
  }

  void divide_if_interior(SweepEvent* e, const Point& p) {
    if (p == e->p || p == e->other->p) return;
    divide(e, p);
  }
};

/// Reconnect directed boundary edges into rings: every vertex has balanced
/// in/out degree, so greedy Eulerian tracing closes each walk. Ring
/// structure at pinch points is arbitrary but region- and area-exact.
PolygonSet connect_edges(std::vector<ResultEdge> edges) {
  PolygonSet out;
  std::unordered_map<Point, std::vector<std::size_t>, geom::PointHash>
      outgoing;
  outgoing.reserve(edges.size() * 2);
  for (std::size_t i = 0; i < edges.size(); ++i)
    outgoing[edges[i].from].push_back(i);

  std::vector<bool> used(edges.size(), false);
  for (std::size_t seed = 0; seed < edges.size(); ++seed) {
    if (used[seed]) continue;
    geom::Contour ring;
    std::size_t cur = seed;
    const Point start = edges[seed].from;
    std::size_t guard = 0;
    while (!used[cur] && guard++ <= edges.size()) {
      used[cur] = true;
      ring.pts.push_back(edges[cur].from);
      const Point& nxt = edges[cur].to;
      if (nxt == start) break;
      auto it = outgoing.find(nxt);
      std::size_t next_edge = edges.size();
      if (it != outgoing.end()) {
        for (std::size_t cand : it->second) {
          if (!used[cand]) {
            next_edge = cand;
            break;
          }
        }
      }
      if (next_edge == edges.size()) break;  // open walk (degenerate input)
      cur = next_edge;
    }
    if (ring.pts.size() >= 3) {
      // Drop collinear interior vertices introduced by subdivision.
      geom::Contour packed;
      const std::size_t n = ring.pts.size();
      for (std::size_t i = 0; i < n; ++i) {
        const Point& a = packed.pts.empty() ? ring.pts[(i + n - 1) % n]
                                            : packed.pts.back();
        const Point& v = ring.pts[i];
        const Point& b = ring.pts[(i + 1) % n];
        if (geom::orient2d(a, v, b) == 0.0 && !(a == v) &&
            geom::on_segment(a, b, v))
          continue;
        packed.pts.push_back(v);
      }
      if (packed.pts.size() >= 3) {
        packed.hole = geom::signed_area(packed) < 0.0;
        out.contours.push_back(std::move(packed));
      }
    }
  }
  return out;
}

/// Perturb exactly (and nearly) vertical edges, the transposed analogue of
/// geom::remove_horizontals for the x-directed sweep.
void remove_verticals(PolygonSet& p) {
  for (auto& c : p.contours) {
    const std::size_t n = c.size();
    const geom::BBox cb = geom::bounds(c);
    const double step = std::max(cb.width(), 1.0) * 1e-9;
    for (int pass = 0; pass < 64; ++pass) {
      bool changed = false;
      for (std::size_t i = 1; i <= n; ++i) {
        Point& prev = c[i - 1];
        Point& cur = c[i % n];
        if (std::fabs(prev.x - cur.x) < step) {
          cur.x = prev.x;
          const int salt =
              1 + static_cast<int>((static_cast<std::size_t>(pass) * 7 +
                                    i * 13) %
                                   17);
          cur.x += step * static_cast<double>(salt);
          changed = true;
        }
      }
      if (!changed) break;
    }
  }
}

}  // namespace

PolygonSet martinez_clip(const PolygonSet& subject, const PolygonSet& clip,
                         BoolOp op) {
  PolygonSet s = geom::cleaned(subject);
  PolygonSet c = geom::cleaned(clip);
  remove_verticals(s);
  remove_verticals(c);

  MartinezSweep sweep(op);
  sweep.add_polygon(s, /*subject=*/true);
  sweep.add_polygon(c, /*subject=*/false);
  return connect_edges(sweep.run());
}

}  // namespace psclip::seq
