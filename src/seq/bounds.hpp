#pragma once

#include <cstdint>
#include <vector>

#include "geom/polygon.hpp"

namespace psclip::seq {

/// A polygon edge directed upward (bot.y < top.y). Vatti's algorithm views
/// every contour as a set of *bounds*: maximal ascending chains of edges
/// running from a local minimum to a local maximum (§III-A).
struct BoundEdge {
  geom::Point bot, top;
  double dxdy = 0.0;       ///< slope dx/dy (finite: no horizontal edges)
  bool is_clip = false;    ///< false = subject polygon, true = clip polygon
  std::int32_t next = -1;  ///< next edge up the same bound; -1 at a local max
};

/// A local minimum vertex with the first edges of its two ascending bounds.
/// `edge_left` has the smaller slope dx/dy, i.e. it runs to the left of
/// `edge_right` immediately above the minimum.
struct LocalMin {
  geom::Point pt;
  std::int32_t edge_left = -1;
  std::int32_t edge_right = -1;
};

/// Vatti's "minima table": all edges of both inputs decomposed into bounds,
/// plus the local minima sorted by (y, x) — the event schedule from which
/// the active edge table is fed.
struct BoundTable {
  std::vector<BoundEdge> edges;
  std::vector<LocalMin> minima;  ///< sorted by (pt.y, pt.x)

  [[nodiscard]] std::size_t num_edges() const { return edges.size(); }
};

/// Decompose the contours of `p` into bounds and append them to `bt`.
/// Precondition: no horizontal edges (run geom::remove_horizontals first)
/// and every contour has >= 3 vertices. Degenerate contours are skipped.
void append_bounds(BoundTable& bt, const geom::PolygonSet& p, bool is_clip);

/// Build the full table for a subject/clip pair and sort the minima.
BoundTable build_bounds(const geom::PolygonSet& subject,
                        const geom::PolygonSet& clip);

/// As build_bounds, but reusing `bt`'s storage: the table is cleared with
/// capacity retained, so repeated clips (per-worker slab arenas) do not
/// reallocate the edge and minima arrays every time.
void build_bounds_into(BoundTable& bt, const geom::PolygonSet& subject,
                       const geom::PolygonSet& clip);

/// Collect the sorted distinct y-coordinates of all edge endpoints — the
/// scanbeam schedule (paper §III-B: "scanbeam table").
std::vector<double> scanbeam_ys(const BoundTable& bt);

/// As scanbeam_ys, but into a reused buffer (cleared, capacity retained).
void scanbeam_ys_into(const BoundTable& bt, std::vector<double>& ys);

/// As scanbeam_ys_into, but built by k-way merging the per-bound sorted
/// y-lists (each bound's ys — its minimum plus the edge tops along the
/// chain — are already ascending) with bottom-up pairwise in-place merges,
/// instead of a comparison sort over all 2·|edges| endpoints. Produces the
/// exact same schedule: the per-bound runs cover every distinct endpoint y,
/// and merge + unique yields the identical sorted distinct-value vector.
void scanbeam_ys_merged_into(const BoundTable& bt, std::vector<double>& ys);

}  // namespace psclip::seq
