#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "geom/polygon.hpp"

namespace psclip::seq {

/// A polygon edge directed upward (bot.y < top.y). Vatti's algorithm views
/// every contour as a set of *bounds*: maximal ascending chains of edges
/// running from a local minimum to a local maximum (§III-A).
struct BoundEdge {
  geom::Point bot, top;
  double dxdy = 0.0;       ///< slope dx/dy (finite: no horizontal edges)
  bool is_clip = false;    ///< false = subject polygon, true = clip polygon
  std::int32_t next = -1;  ///< next edge up the same bound; -1 at a local max
};

/// A local minimum vertex with the first edges of its two ascending bounds.
/// `edge_left` has the smaller slope dx/dy, i.e. it runs to the left of
/// `edge_right` immediately above the minimum.
struct LocalMin {
  geom::Point pt;
  std::int32_t edge_left = -1;
  std::int32_t edge_right = -1;
};

/// Vatti's "minima table": all edges of both inputs decomposed into bounds,
/// plus the local minima sorted by (y, x) — the event schedule from which
/// the active edge table is fed.
struct BoundTable {
  std::vector<BoundEdge> edges;
  std::vector<LocalMin> minima;  ///< sorted by (pt.y, pt.x)

  [[nodiscard]] std::size_t num_edges() const { return edges.size(); }
};

/// Decompose the contours of `p` into bounds and append them to `bt`.
/// Precondition: no horizontal edges (run geom::remove_horizontals first)
/// and every contour has >= 3 vertices. Degenerate contours are skipped.
void append_bounds(BoundTable& bt, const geom::PolygonSet& p, bool is_clip);

/// Per-contour form: decompose one contour into bounds and append them.
/// Emits edges and minima in exactly the order the set form would for this
/// contour, so building a table contour-by-contour is bit-identical to the
/// set pipeline.
void append_bounds(BoundTable& bt, const geom::Contour& c, bool is_clip);

/// Sort `bt.minima` by (y, x) — the final step of build_bounds_into,
/// exposed so callers that assemble tables from prepared fragments (the
/// fused slab partition) finish them identically.
void sort_minima(BoundTable& bt);

/// Drop interior vertices of exactly-horizontal collinear runs: vertex i
/// goes when prev.y == cur.y == next.y (exact compares) and cur.x lies
/// strictly between its neighbours' x. Rect-clipping against a slab stitches
/// chains of such vertices along the slab boundary line (one per crossing
/// cut); left in place, perturbation turns each into a separate
/// near-horizontal bound edge whose rounded x-order flips between beams and
/// breaks the tuned kernel's sorted-beam fast path. Dropping the interior
/// vertex of an exactly-collinear run never changes the even-odd region.
/// Runs before remove_horizontals in the shared per-contour prep
/// (prepare_contour_points). Returns the number of vertices removed.
int coalesce_horizontal_runs(geom::Contour& c);

/// Shared per-contour preparation: geom::cleaned_contour (exact duplicate
/// removal) -> coalesce_horizontal_runs -> per-contour
/// geom::remove_horizontals, into `out` (storage reused). Returns false
/// when fewer than 3 vertices survive — such contours contribute no bounds
/// anywhere. vatti_clip and the fused slab partition prepare every contour
/// through this one function; the fused path's bit-identity with
/// materialize-then-reclip rests on the prep being per-contour
/// deterministic.
bool prepare_contour_points(const geom::Contour& in, geom::Contour& out);

/// One globally prepared contour, ready to drop into any slab's BoundTable
/// without re-running clean/coalesce/perturb/bound-build: the prepared
/// vertices, the contour's own bound fragment (edge ids local to `bt`,
/// minima in emission order, unsorted), its sorted distinct endpoint ys
/// (a ready-made scanbeam-schedule run), prepared bbox and finiteness.
struct PreparedContour {
  geom::Contour pts;
  BoundTable bt;
  std::vector<double> ys;
  geom::BBox box;
  bool finite = true;
};

/// Fill `out` from `in` (storage reused). Returns false when the contour
/// degenerates (< 3 vertices after cleaning); `out`'s table and schedule
/// run are left empty in that case.
bool prepare_contour(const geom::Contour& in, bool is_clip,
                     PreparedContour& out);

/// Version salt folded into contour_digest. Bump whenever prepare_contour's
/// output changes for the same input bytes (a perturbation-policy change, a
/// new cleaning rule, ...), so persisted or long-lived caches keyed on the
/// digest can never serve a stale prepared fragment across versions.
inline constexpr std::uint64_t kPrepareDigestVersion = 1;

/// Content address of (contour bytes, prepare options): FNV-1a 64 over the
/// vertex coordinate bit patterns in order, the vertex count, `is_clip`, and
/// kPrepareDigestVersion. Two contours digest equal iff their vertex
/// sequences are bit-identical under the same options — exactly the
/// condition for prepare_contour to produce bit-identical output (the prep
/// pipeline is a pure function of those bytes). The `hole` flag is ignored,
/// as prepare_contour ignores it (even-odd fill).
std::uint64_t contour_digest(const geom::Contour& c, bool is_clip);

/// Raw FNV-1a 64 over `n` bytes, seeded with `basis` (pass kFnvBasis to
/// start a fresh digest). Exposed so caches can verify keys and tests can
/// manufacture collisions.
inline constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t basis);

/// Source of shared immutable prepared fragments — the seam between the
/// clip engines (mt::slab_clip / mt::multiset_clip, which only consume
/// prepared contours) and a cross-request cache (svc::PreparedCache, which
/// owns lifetime and eviction). Returns a fragment equal to what
/// prepare_contour(c, is_clip, out) would produce, or null when the contour
/// degenerates (prepare_contour returns false). Implementations must be
/// thread-safe: the engines call prepared() from every pool worker, and a
/// service calls into one source from many concurrent requests. Returned
/// fragments are immutable and may outlive the source's entry (shared_ptr
/// keeps an evicted fragment alive until its last reader drops it).
class PreparedSource {
 public:
  virtual ~PreparedSource() = default;
  virtual std::shared_ptr<const PreparedContour> prepared(
      const geom::Contour& c, bool is_clip) = 0;
};

/// Append a prepared fragment to `bt`: edges copied with their
/// intra-fragment `next` links rebased to the destination table, minima
/// with their edge ids rebased. Appending fragments in contour order
/// reproduces append_bounds over the same contour sequence byte for byte.
void append_prepared(BoundTable& bt, const PreparedContour& pc);

/// Merge sorted runs held back-to-back in `ys` (run r occupies
/// ys[run_end[r], run_end[r+1]); run_end.front() must be 0 and
/// run_end.back() == ys.size()) into one sorted distinct-value vector with
/// bottom-up pairwise in-place merges. `run_end` is consumed as scratch.
/// Factored out of scanbeam_ys_merged_into; the fused slab partition uses
/// it to combine the shared-schedule slice with per-contour and per-piece
/// runs.
void merge_sorted_runs_unique(std::vector<double>& ys,
                              std::vector<std::size_t>& run_end);

/// Build the full table for a subject/clip pair and sort the minima.
BoundTable build_bounds(const geom::PolygonSet& subject,
                        const geom::PolygonSet& clip);

/// As build_bounds, but reusing `bt`'s storage: the table is cleared with
/// capacity retained, so repeated clips (per-worker slab arenas) do not
/// reallocate the edge and minima arrays every time.
void build_bounds_into(BoundTable& bt, const geom::PolygonSet& subject,
                       const geom::PolygonSet& clip);

/// Collect the sorted distinct y-coordinates of all edge endpoints — the
/// scanbeam schedule (paper §III-B: "scanbeam table").
std::vector<double> scanbeam_ys(const BoundTable& bt);

/// As scanbeam_ys, but into a reused buffer (cleared, capacity retained).
void scanbeam_ys_into(const BoundTable& bt, std::vector<double>& ys);

/// As scanbeam_ys_into, but built by k-way merging the per-bound sorted
/// y-lists (each bound's ys — its minimum plus the edge tops along the
/// chain — are already ascending) with bottom-up pairwise in-place merges,
/// instead of a comparison sort over all 2·|edges| endpoints. Produces the
/// exact same schedule: the per-bound runs cover every distinct endpoint y,
/// and merge + unique yields the identical sorted distinct-value vector.
void scanbeam_ys_merged_into(const BoundTable& bt, std::vector<double>& ys);

}  // namespace psclip::seq
