#include "mt/multiset.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "error.hpp"
#include "mt/arena.hpp"
#include "obs/trace.hpp"
#include "parallel/cancel.hpp"
#include "parallel/fault.hpp"
#include "parallel/sort.hpp"
#include "parallel/timing.hpp"
#include "seq/bounds.hpp"
#include "seq/vatti.hpp"

namespace psclip::mt {
namespace {

struct PolyRec {
  const geom::Contour* contour;
  double ymin, ymax;
};

std::vector<PolyRec> records(const geom::PolygonSet& p) {
  std::vector<PolyRec> recs;
  recs.reserve(p.num_contours());
  for (const auto& c : p.contours) {
    const geom::BBox b = geom::bounds(c);
    if (b.empty()) continue;
    recs.push_back({&c, b.ymin, b.ymax});
  }
  return recs;
}

/// Descriptor for duplicate elimination: replicated pairs produce the same
/// output region in every slab containing all their generators;
/// coordinates can differ by perturbation noise, so matching is tolerant.
struct ContourSig {
  std::size_t index;
  std::size_t nverts;
  double area, cx, cy;
};

ContourSig signature(const geom::Contour& c, std::size_t index) {
  ContourSig s{index, c.size(), std::fabs(geom::signed_area(c)), 0.0, 0.0};
  for (const auto& p : c.pts) {
    s.cx += p.x;
    s.cy += p.y;
  }
  s.cx /= static_cast<double>(c.size());
  s.cy /= static_cast<double>(c.size());
  return s;
}

geom::PolygonSet drop_duplicates(geom::PolygonSet merged,
                                 std::int64_t* removed) {
  std::vector<ContourSig> sigs;
  sigs.reserve(merged.num_contours());
  for (std::size_t i = 0; i < merged.contours.size(); ++i)
    sigs.push_back(signature(merged.contours[i], i));
  std::sort(sigs.begin(), sigs.end(),
            [](const ContourSig& a, const ContourSig& b) {
              if (a.nverts != b.nverts) return a.nverts < b.nverts;
              return a.area < b.area;
            });
  std::vector<std::uint8_t> drop(merged.contours.size(), 0);
  std::int64_t dups = 0;
  const double eps = 1e-7;
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    if (drop[sigs[i].index]) continue;
    for (std::size_t j = i + 1; j < sigs.size(); ++j) {
      if (sigs[j].nverts != sigs[i].nverts) break;
      if (sigs[j].area - sigs[i].area > eps * (1.0 + std::fabs(sigs[i].area)))
        break;
      if (drop[sigs[j].index]) continue;
      const bool same =
          std::fabs(sigs[j].cx - sigs[i].cx) <=
              eps * (1.0 + std::fabs(sigs[i].cx)) &&
          std::fabs(sigs[j].cy - sigs[i].cy) <=
              eps * (1.0 + std::fabs(sigs[i].cy));
      if (same) {
        drop[sigs[j].index] = 1;
        ++dups;
      }
    }
  }
  geom::PolygonSet out;
  for (std::size_t i = 0; i < merged.contours.size(); ++i)
    if (!drop[i]) out.contours.push_back(std::move(merged.contours[i]));
  if (removed) *removed = dups;
  return out;
}

}  // namespace

const char* to_string(MultisetAssign a) {
  switch (a) {
    case MultisetAssign::kAuto: return "auto";
    case MultisetAssign::kSubjectOwner: return "subject-owner";
    case MultisetAssign::kReplicate: return "replicate";
    case MultisetAssign::kBlockClosure: return "block-closure";
  }
  return "?";
}

geom::PolygonSet multiset_clip(const geom::PolygonSet& subject,
                               const geom::PolygonSet& clip, geom::BoolOp op,
                               par::ThreadPool& pool,
                               const MultisetOptions& opts,
                               Alg2Stats* stats) {
  const unsigned p = opts.slabs ? opts.slabs : pool.size();
  MultisetAssign mode = opts.assign;
  if (mode == MultisetAssign::kAuto) {
    mode = (op == geom::BoolOp::kIntersection ||
            op == geom::BoolOp::kDifference)
               ? MultisetAssign::kSubjectOwner
               : MultisetAssign::kBlockClosure;
  }
  obs::TraceSink* const sink = opts.trace_sink;
  obs::ScopedSpan req_span(sink, "alg2.multiset_clip", obs::Cat::kRequest);
  par::WallTimer req_timer;
  // Install the request's governance token for the whole run (slab tasks
  // re-capture it through parallel_for); a null token inherits whatever the
  // caller installed on this thread (psclip::clip facade) or governs
  // nothing. Checkpoint immediately: an already-dead request does no work.
  std::optional<par::gov::ScopedToken> gov_scope;
  if (opts.cancel.valid()) gov_scope.emplace(opts.cancel);
  par::gov::checkpoint_now();
  obs::ScopedSpan events_span(sink, "multiset.events", obs::Cat::kPhase);
  par::WallTimer phase_timer;
  par::ThreadCpuTimer phase_cpu_timer;

  const auto srecs = records(subject);
  const auto crecs = records(clip);

  // Event list: both y-extents of every polygon MBR (paper §IV).
  std::vector<double> events;
  events.reserve(2 * (srecs.size() + crecs.size()));
  for (const auto* recs : {&srecs, &crecs}) {
    for (const auto& r : *recs) {
      events.push_back(r.ymin);
      events.push_back(r.ymax);
    }
  }
  if (events.empty()) return {};
  par::parallel_sort(pool, events);

  // Slab boundaries at equal event counts, between adjacent events.
  std::vector<double> bounds;
  bounds.push_back(events.front() - 1.0);
  for (unsigned t = 1; t < p; ++t) {
    const std::size_t cut = t * events.size() / p;
    if (cut == 0 || cut >= events.size()) continue;
    const double b = 0.5 * (events[cut - 1] + events[cut]);
    if (b > bounds.back()) bounds.push_back(b);
  }
  if (events.back() + 1.0 > bounds.back())
    bounds.push_back(events.back() + 1.0);
  const std::size_t nslabs = bounds.size() - 1;
  const double t_events = phase_timer.seconds();
  phase_timer.reset();
  events_span.arg("events", static_cast<std::int64_t>(events.size()));
  events_span.arg("slabs", static_cast<std::int64_t>(nslabs));
  events_span.end();
  req_span.arg("polygons",
               static_cast<std::int64_t>(srecs.size() + crecs.size()));
  req_span.arg("op", static_cast<std::int64_t>(op));
  obs::ScopedSpan assign_span(sink, "multiset.assign", obs::Cat::kPhase);

  // ---- Distribute polygons to slabs per the assignment mode. ----
  // Slabs hold *record-id lists* (indices into srecs/crecs), not contour
  // copies: replication assigns whole polygons, so an index is all a slab
  // needs, and the old copy-per-slab materialization — which duplicated a
  // polygon's vertices into every replicating slab — disappears. The
  // materializing rungs below rebuild a slab's PolygonSets from these lists
  // on demand.
  std::vector<std::vector<std::uint32_t>> slab_subject, slab_clip_in;
  // y-extent of every slab task, for PartialReport's missing ranges. Block
  // closure merges slabs into blocks, so the extent list is per *task*,
  // not per decomposition slab.
  std::vector<std::pair<double, double>> work_extent;
  bool need_dedup = false;

  switch (mode) {
    case MultisetAssign::kSubjectOwner: {
      // Each subject polygon goes to exactly one slab; the clip polygons
      // a subject can interact with are replicated into that slab. Every
      // subject (and so every interacting pair) is clipped exactly once.
      slab_subject.resize(nslabs);
      slab_clip_in.resize(nslabs);
      std::vector<std::pair<double, double>> reach(
          nslabs, {std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity()});
      auto slab_of = [&bounds](double y) -> std::size_t {
        const auto it =
            std::upper_bound(bounds.begin(), bounds.end(), y);
        const std::size_t i = static_cast<std::size_t>(it - bounds.begin());
        return std::min(i > 0 ? i - 1 : 0, bounds.size() - 2);
      };
      for (std::size_t i = 0; i < srecs.size(); ++i) {
        const PolyRec& r = srecs[i];
        const std::size_t t = slab_of(0.5 * (r.ymin + r.ymax));
        slab_subject[t].push_back(static_cast<std::uint32_t>(i));
        reach[t].first = std::min(reach[t].first, r.ymin);
        reach[t].second = std::max(reach[t].second, r.ymax);
      }
      pool.parallel_for(
          nslabs,
          [&](std::size_t t) {
            for (std::size_t i = 0; i < crecs.size(); ++i)
              if (crecs[i].ymin <= reach[t].second &&
                  crecs[i].ymax >= reach[t].first)
                slab_clip_in[t].push_back(static_cast<std::uint32_t>(i));
          },
          /*grain=*/1);
      break;
    }
    case MultisetAssign::kReplicate: {
      // The paper's scheme: y-overlap replication for both layers.
      slab_subject.resize(nslabs);
      slab_clip_in.resize(nslabs);
      pool.parallel_for(
          nslabs,
          [&](std::size_t t) {
            const double lo = bounds[t], hi = bounds[t + 1];
            for (std::size_t i = 0; i < srecs.size(); ++i)
              if (srecs[i].ymin <= hi && srecs[i].ymax >= lo)
                slab_subject[t].push_back(static_cast<std::uint32_t>(i));
            for (std::size_t i = 0; i < crecs.size(); ++i)
              if (crecs[i].ymin <= hi && crecs[i].ymax >= lo)
                slab_clip_in[t].push_back(static_cast<std::uint32_t>(i));
          },
          /*grain=*/1);
      need_dedup = true;
      break;
    }
    case MultisetAssign::kAuto:  // resolved above; silence the compiler
    case MultisetAssign::kBlockClosure: {
      // Merge MBR y-intervals into maximal blocks (transitive overlap),
      // extend each slab to whole blocks, and drop slabs whose closure
      // duplicates the previous one. Interacting groups are always fully
      // inside every slab that sees part of them, so per-slab outputs of
      // replicated groups are identical and dedup is exact for any op.
      std::vector<std::pair<double, double>> blocks;
      {
        std::vector<std::pair<double, double>> iv;
        iv.reserve(srecs.size() + crecs.size());
        for (const auto* recs : {&srecs, &crecs})
          for (const auto& r : *recs) iv.emplace_back(r.ymin, r.ymax);
        std::sort(iv.begin(), iv.end());
        for (const auto& [lo, hi] : iv) {
          if (!blocks.empty() && lo <= blocks.back().second)
            blocks.back().second = std::max(blocks.back().second, hi);
          else
            blocks.emplace_back(lo, hi);
        }
      }
      auto closure = [&blocks](double lo, double hi) {
        auto it = std::lower_bound(
            blocks.begin(), blocks.end(), lo,
            [](const std::pair<double, double>& b, double v) {
              return b.second < v;
            });
        double nlo = lo, nhi = hi;
        if (it != blocks.end() && it->first <= hi)
          nlo = std::min(nlo, it->first);
        while (it != blocks.end() && it->first <= hi) {
          nhi = std::max(nhi, it->second);
          ++it;
        }
        return std::make_pair(nlo, nhi);
      };
      std::vector<std::pair<double, double>> slab_range;
      for (std::size_t t = 0; t < nslabs; ++t) {
        const auto cl = closure(bounds[t], bounds[t + 1]);
        if (!slab_range.empty() && slab_range.back() == cl) continue;
        slab_range.push_back(cl);
      }
      slab_subject.resize(slab_range.size());
      slab_clip_in.resize(slab_range.size());
      pool.parallel_for(
          slab_range.size(),
          [&](std::size_t t) {
            const double lo = slab_range[t].first, hi = slab_range[t].second;
            for (std::size_t i = 0; i < srecs.size(); ++i)
              if (srecs[i].ymin <= hi && srecs[i].ymax >= lo)
                slab_subject[t].push_back(static_cast<std::uint32_t>(i));
            for (std::size_t i = 0; i < crecs.size(); ++i)
              if (crecs[i].ymin <= hi && crecs[i].ymax >= lo)
                slab_clip_in[t].push_back(static_cast<std::uint32_t>(i));
          },
          /*grain=*/1);
      work_extent = std::move(slab_range);
      need_dedup = true;
      break;
    }
  }
  const std::size_t nwork = slab_subject.size();
  if (work_extent.empty())
    for (std::size_t t = 0; t < nwork; ++t)
      work_extent.emplace_back(bounds[t], bounds[t + 1]);
  par::gov::checkpoint_now();

  // ---- Fused setup: prepare every polygon once, globally. ----
  // Each record gets its clean + coalesce + perturb + bound-decomposition
  // pass exactly once, no matter how many slabs replicate it; slab tasks
  // then concatenate the prepared fragments. Every prep step is
  // per-contour deterministic, so a fragment copy is bit for bit what a
  // materializing vatti_clip would have rebuilt inside the slab.
  // Ownership as in slab_clip's fused setup: fragments are either prepared
  // locally into the *_own vectors or fetched from
  // MultisetOptions::prepared_cache and held alive by the *_held
  // shared_ptrs; slab tasks read only the *_prep pointer views (null =
  // degenerate after cleaning).
  std::vector<seq::PreparedContour> sub_own, clip_own;
  std::vector<std::shared_ptr<const seq::PreparedContour>> sub_held, clip_held;
  std::vector<const seq::PreparedContour*> sub_prep, clip_prep;
  if (opts.fused) {
    obs::ScopedSpan prep_span(sink, "multiset.fused_prep", obs::Cat::kPhase);
    auto prep_recs = [&](const std::vector<PolyRec>& recs,
                         std::vector<seq::PreparedContour>& own,
                         std::vector<std::shared_ptr<
                             const seq::PreparedContour>>& held,
                         std::vector<const seq::PreparedContour*>& prep,
                         bool is_clip) {
      prep.assign(recs.size(), nullptr);
      if (opts.prepared_cache)
        held.resize(recs.size());
      else
        own.resize(recs.size());
      pool.parallel_for(
          recs.size(),
          [&](std::size_t i) {
            if (opts.prepared_cache) {
              held[i] =
                  opts.prepared_cache->prepared(*recs[i].contour, is_clip);
              prep[i] = held[i].get();
            } else if (seq::prepare_contour(*recs[i].contour, is_clip,
                                            own[i])) {
              prep[i] = &own[i];
            }
          },
          /*grain=*/16);
    };
    prep_recs(srecs, sub_own, sub_held, sub_prep, /*is_clip=*/false);
    prep_recs(crecs, clip_own, clip_held, clip_prep, /*is_clip=*/true);
  }
  const double t_assign = phase_timer.seconds();
  const double t_assign_cpu = phase_cpu_timer.seconds();
  phase_timer.reset();
  assign_span.arg("slab_tasks", static_cast<std::int64_t>(nwork));
  assign_span.end();

  // ---- Per-slab sequential clipping, all slabs in parallel. ----
  struct SlabOut {
    geom::PolygonSet result;
    SlabLoad load;
    DegradationReport report;
    bool exhausted = false;
    /// The slab's ladder ran to a verdict (success or exhausted). False
    /// means the scheduler never ran the body — a governance trip escaped
    /// through parallel_for's own chunk checkpoints — and the caller must
    /// finish the slab itself so it gets routed below.
    bool done = false;
  };
  std::vector<SlabOut> outs(nwork);

  // One attempt at one slab. The slab id lists are immutable during the
  // clip phase, so a retry simply re-reads them; the only state a rung
  // sheds is the worker-local arena. Throws on failure with outs[t] reset.
  //
  // Healthy + fused: concatenate the globally prepared bound fragments of
  // the slab's polygons into the arena's bound table, run-merge their
  // schedule ys, and sweep — no contour copies, no re-preparation, no
  // schedule sort. kRetrySafe (and fused off) materializes the slab's
  // PolygonSets from the id lists and runs the ordinary vatti_clip, which
  // rebuilds the same table bit for bit (per-contour deterministic prep).
  auto attempt_slab = [&](std::size_t t, Rung rung) {
    SlabOut& so = outs[t];
    so.result = geom::PolygonSet{};
    so.load = SlabLoad{};
    // Cooperative checkpoint at attempt entry, then a budget charge scoped
    // to this attempt: raised to the arena capacity watermark (fused) or
    // the materialized slab input size, released when the attempt ends —
    // concurrent attempts charge the sum of their live scratch.
    par::gov::checkpoint_now();
    par::gov::ScopedCharge arena_charge;
    par::WallTimer timer;
    par::ThreadCpuTimer cpu_timer;
    seq::VattiStats vs;
    if (rung == Rung::kHealthy && opts.fused) {
      par::fault::inject(par::fault::Site::kFusedBounds);
      SlabArena& arena = worker_arena();
      ++arena.tasks_served;
      seq::VattiScratch& scratch = arena.vatti;
      seq::BoundTable& bt = seq::scratch_bounds(scratch);
      bt.edges.clear();
      bt.minima.clear();
      std::vector<double>& ys = seq::scratch_schedule(scratch);
      ys.clear();
      arena.run_end.clear();
      arena.run_end.push_back(0);
      bool finite = true;
      auto append_ids = [&](const std::vector<std::uint32_t>& ids,
                            const std::vector<
                                const seq::PreparedContour*>& prep) {
        for (const std::uint32_t id : ids) {
          if (!prep[id]) continue;  // degenerate after cleaning: skipped,
                                    // same as the materializing prep loop
          const seq::PreparedContour& pc = *prep[id];
          if (!pc.finite) {
            finite = false;
            continue;
          }
          seq::append_prepared(bt, pc);
          so.load.touched_edges +=
              static_cast<std::int64_t>(pc.bt.edges.size());
          if (!pc.ys.empty()) {
            ys.insert(ys.end(), pc.ys.begin(), pc.ys.end());
            arena.run_end.push_back(ys.size());
          }
        }
      };
      append_ids(slab_subject[t], sub_prep);
      append_ids(slab_clip_in[t], clip_prep);
      seq::sort_minima(bt);
      arena_charge.raise_to(arena.resident_bytes());
      so.load.bound_build_ns =
          static_cast<std::int64_t>(timer.seconds() * 1e9);
      if (!finite)
        throw Error(ErrorCode::kNonFinite,
                    "non-finite vertex in multiset slab " +
                        std::to_string(t) + " input");
      par::WallTimer sched_timer;
      seq::merge_sorted_runs_unique(ys, arena.run_end);
      so.load.schedule_ns =
          static_cast<std::int64_t>(sched_timer.seconds() * 1e9);
      so.result = seq::vatti_sweep_prepared(op, &vs, scratch,
                                            opts.sweep_kernel,
                                            /*prebuilt_schedule=*/true);
      if (par::fault::corrupt(par::fault::Site::kArena)) {
        const double nan = std::numeric_limits<double>::quiet_NaN();
        so.result.add({{nan, nan}, {0.0, 0.0}, {1.0, 1.0}});
      }
    } else {
      geom::PolygonSet a_t, b_t;
      auto materialize = [](const std::vector<std::uint32_t>& ids,
                            const std::vector<PolyRec>& recs,
                            geom::PolygonSet& set) {
        set.contours.reserve(ids.size());
        for (const std::uint32_t id : ids)
          set.contours.push_back(*recs[id].contour);
      };
      materialize(slab_subject[t], srecs, a_t);
      materialize(slab_clip_in[t], crecs, b_t);
      arena_charge.raise_to(
          (a_t.num_vertices() + b_t.num_vertices()) * sizeof(geom::Point));
      so.load.touched_edges = static_cast<std::int64_t>(
          a_t.num_vertices() + b_t.num_vertices());
      if (rung == Rung::kHealthy) {
        SlabArena& arena = worker_arena();
        ++arena.tasks_served;
        so.result = seq::vatti_clip(a_t, b_t, op, &vs, &arena.vatti,
                                    opts.sweep_kernel);
        if (par::fault::corrupt(par::fault::Site::kArena)) {
          const double nan = std::numeric_limits<double>::quiet_NaN();
          so.result.add({{nan, nan}, {0.0, 0.0}, {1.0, 1.0}});
        }
      } else {  // kRetrySafe: fresh scratch, no arena — bit-identical rerun.
        so.result =
            seq::vatti_clip(a_t, b_t, op, &vs, nullptr, opts.sweep_kernel);
      }
      so.load.bound_build_ns = vs.bound_build_ns;
      so.load.schedule_ns = vs.schedule_ns;
    }
    so.load.seconds = timer.seconds();
    so.load.cpu_seconds = cpu_timer.seconds();
    so.load.input_edges = vs.edges;
    so.load.output_vertices = vs.output_vertices;
    if (rung == Rung::kHealthy) {
      // Both healthy branches ran on the worker arena; kRetrySafe uses
      // fresh scratch that is freed with the attempt and reports 0.
      so.load.peak_arena_bytes =
          static_cast<std::int64_t>(worker_arena().resident_bytes());
      if (sink)
        sink->observe("multiset.slab_peak_arena_bytes",
                      static_cast<double>(so.load.peak_arena_bytes));
    }
    if (sink) sink->observe("multiset.slab_clip_seconds", so.load.seconds);
    if (!geom::is_finite(so.result))
      throw Error(ErrorCode::kNonFinite,
                  "non-finite vertex in multiset slab " + std::to_string(t) +
                      " output");
  };

  obs::ScopedSpan clip_span(sink, "multiset.clip", obs::Cat::kPhase);
  const obs::SpanId clip_id = clip_span.id();

  const auto run_slab = [&](std::size_t t) {
        // Deterministic fault key: plans keyed on slab t fire for slab t
        // regardless of which worker the pool hands it to.
        par::fault::ScopedKey key(t);
        obs::ScopedSpan slab_span(sink, "multiset.slab", obs::Cat::kSlab,
                                  clip_id);
        slab_span.arg("slab", static_cast<std::int64_t>(t));
        if (!opts.isolate_faults) {
          attempt_slab(t, Rung::kHealthy);
          outs[t].done = true;
          return;
        }
        SlabOut& so = outs[t];
        so.done = true;
        so.report.attempts = 0;
        bool recorded = false;
        for (const Rung rung : {Rung::kHealthy, Rung::kRetrySafe}) {
          // Governance gate (same contract as slab_clip's run_ladder): a
          // cancelled request, expired deadline or sticky blown budget makes
          // every further rung hopeless — abandon the slab. A transient
          // budget failure passes and gets its byte-identical retry.
          try {
            par::gov::checkpoint_now();
          } catch (const Error& e) {
            if (!recorded) {
              so.report.cause = e.code();
              so.report.message = e.what();
              recorded = true;
            }
            break;
          }
          ++so.report.attempts;
          obs::ScopedSpan rung_span(sink, to_string(rung), obs::Cat::kRung);
          rung_span.arg("rung", static_cast<std::int64_t>(rung));
          try {
            attempt_slab(t, rung);
            so.report.rung = rung;
            slab_span.arg("rung", static_cast<std::int64_t>(rung));
            slab_span.arg("attempts", so.report.attempts);
            return;
          } catch (const Error& e) {
            rung_span.arg("failed", 1);
            if (!recorded) {
              so.report.cause = e.code();
              so.report.message = e.what();
              recorded = true;
            }
          } catch (const std::bad_alloc&) {
            rung_span.arg("failed", 1);
            if (!recorded) {
              so.report.cause = ErrorCode::kResource;
              so.report.message = "std::bad_alloc";
              recorded = true;
            }
          } catch (const std::exception& e) {
            rung_span.arg("failed", 1);
            if (!recorded) {
              so.report.cause = ErrorCode::kSlabFailure;
              so.report.message = e.what();
              recorded = true;
            }
          } catch (...) {
            rung_span.arg("failed", 1);
            if (!recorded) {
              so.report.cause = ErrorCode::kSlabFailure;
              so.report.message = "unknown exception";
              recorded = true;
            }
          }
        }
        so.result = geom::PolygonSet{};
        so.exhausted = true;
        slab_span.arg("exhausted", 1);
  };
  try {
    pool.parallel_for(nwork, run_slab, /*grain=*/1);
  } catch (...) {
    // The slab bodies themselves never throw under fault isolation, so
    // this is a governance trip that escaped through parallel_for's own
    // chunk-boundary checkpoints, skipping not-yet-started slabs. The
    // condition is sticky (cancel flag, expired deadline, blown budget),
    // so finishing the skipped slabs on the calling thread makes each
    // trip its ladder gate immediately and routes it below — partial
    // result or precise error, same as slabs the gate caught directly.
    if (!opts.isolate_faults) throw;  // fail-fast contract
    for (std::size_t t = 0; t < nwork; ++t)
      if (!outs[t].done) run_slab(t);
    bool any_exhausted = false;
    for (const auto& so : outs) any_exhausted = any_exhausted || so.exhausted;
    if (!any_exhausted) throw;  // not governance after all — don't swallow it
  }

  // Exhausted slabs split two ways (same policy as slab_clip): slabs the
  // governance gate abandoned must NOT reach the whole-input fallback —
  // recomputing everything sequentially is the most expensive possible
  // response to "stop spending resources". They become a partial result
  // (allow_partial) or fail the request with the precise governance code;
  // only fault-exhausted slabs take the whole-input rung.
  PartialReport partial;
  bool fault_exhausted = false, gov_exhausted = false;
  for (const auto& so : outs)
    if (so.exhausted) {
      if (is_governance(so.report.cause))
        gov_exhausted = true;
      else
        fault_exhausted = true;
    }
  if (gov_exhausted && !opts.allow_partial) {
    par::gov::rethrow_if_stopped();
    for (const auto& so : outs)
      if (so.exhausted && is_governance(so.report.cause))
        throw Error(so.report.cause, so.report.message);
  }
  if (gov_exhausted) {
    // Completed slabs keep their outputs (dedup still runs over them);
    // abandoned slabs are simply missing, named by task index and y-extent.
    partial.partial = true;
    for (const auto& so : outs)
      if (so.exhausted && is_governance(so.report.cause)) {
        partial.cause = so.report.cause;
        partial.message = so.report.message;
        break;
      }
    for (std::size_t t = 0; t < nwork; ++t) {
      SlabOut& so = outs[t];
      if (!so.exhausted) continue;
      so.report.rung = Rung::kPartialResult;
      if (!partial.missing.empty() && partial.missing.back().last + 1 == t) {
        partial.missing.back().last = t;
        partial.missing.back().y_hi = work_extent[t].second;
      } else {
        partial.missing.push_back(
            {t, t, work_extent[t].first, work_extent[t].second});
      }
    }
  } else if (fault_exhausted) {
    // Final rung: one sequential clip of the whole multisets, replacing
    // every per-slab output (same region; contours are no longer grouped
    // per slab and dedup becomes unnecessary). Runs keyless so slab-keyed
    // fault plans cannot follow the computation here.
    par::fault::ScopedKey key(par::fault::kNoKey);
    obs::ScopedSpan whole_span(sink, to_string(Rung::kWholeInput),
                               obs::Cat::kRung);
    whole_span.arg("rung", static_cast<std::int64_t>(Rung::kWholeInput));
    geom::PolygonSet whole = seq::vatti_clip(subject, clip, op, nullptr,
                                             nullptr, opts.sweep_kernel);
    for (auto& so : outs) {
      so.result = geom::PolygonSet{};
      so.report.rung = Rung::kWholeInput;
    }
    outs[0].result = std::move(whole);
    need_dedup = false;
  }
  const double t_clip = phase_timer.seconds();
  phase_timer.reset();
  clip_span.end();

  // ---- Post-processing: concatenate; drop replicated duplicates. ----
  // merge_cpu comes from the thread CPU clock (the merge runs on the caller
  // only; wall time also charges caller descheduling).
  obs::ScopedSpan merge_span(sink, "multiset.merge", obs::Cat::kPhase);
  par::ThreadCpuTimer merge_cpu_timer;
  geom::PolygonSet merged;
  for (auto& so : outs)
    for (auto& c : so.result.contours)
      merged.contours.push_back(std::move(c));
  std::int64_t dups = 0;
  geom::PolygonSet out = need_dedup
                             ? drop_duplicates(std::move(merged), &dups)
                             : std::move(merged);
  const double t_merge = phase_timer.seconds();
  const double t_merge_cpu = merge_cpu_timer.seconds();
  merge_span.arg("output_contours",
                 static_cast<std::int64_t>(out.num_contours()));
  merge_span.arg("duplicates_removed", dups);
  merge_span.end();

  if (sink) {
    std::int64_t degraded = 0;
    for (const auto& so : outs)
      if (so.report.rung != Rung::kHealthy) ++degraded;
    req_span.arg("degraded_slabs", degraded);
    sink->add_counter("multiset.requests", 1);
    sink->add_counter("multiset.slabs", static_cast<std::int64_t>(nwork));
    sink->add_counter("multiset.degraded_slabs", degraded);
    sink->observe("multiset.request_seconds", req_timer.seconds());
    if (partial.partial) {
      req_span.arg("partial", 1);
      req_span.arg("missing_slabs",
                   static_cast<std::int64_t>(partial.missing_slabs()));
      sink->add_counter("multiset.partial_requests", 1);
      sink->add_counter("multiset.missing_slabs",
                        static_cast<std::int64_t>(partial.missing_slabs()));
    }
    if (const par::ResourceBudget* b = opts.cancel.budget())
      sink->observe("gov.peak_budget_bytes", static_cast<double>(b->peak()));
  }

  if (stats) {
    stats->slabs.clear();
    stats->degradation.clear();
    for (const auto& so : outs) {
      stats->slabs.push_back(so.load);
      stats->degradation.push_back(so.report);
    }
    // Wall and CPU split (see PhaseTimes): the event/assignment/prep passes
    // run as caller-side sections (their CPU is the caller's thread CPU
    // clock over the same window); the clip phase is the parallel region,
    // so its cpu time is the per-slab sum of thread-CPU clip times, which
    // can exceed the region's wall time p-fold.
    double clip_cpu_in_slabs = 0.0;
    for (const auto& so : outs) clip_cpu_in_slabs += so.load.cpu_seconds;
    stats->phases.partition = t_events + t_assign;
    stats->phases.clip = t_clip;
    stats->phases.merge = t_merge;
    stats->phases.partition_cpu = t_assign_cpu;
    stats->phases.clip_cpu = clip_cpu_in_slabs;
    stats->phases.merge_cpu = t_merge_cpu;
    stats->output_contours = static_cast<std::int64_t>(out.num_contours());
    stats->duplicates_removed = dups;
    stats->partial = partial;
  }
  return out;
}

}  // namespace psclip::mt
