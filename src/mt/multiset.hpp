#pragma once

#include "geom/bool_op.hpp"
#include "geom/polygon.hpp"
#include "mt/stats.hpp"
#include "parallel/cancel.hpp"
#include "parallel/thread_pool.hpp"
#include "seq/vatti.hpp"

namespace psclip::obs {
class TraceSink;
}
namespace psclip::seq {
class PreparedSource;
}

namespace psclip::mt {

/// How polygons are distributed over slabs in the two-sets clipper.
enum class MultisetAssign {
  /// Choose per operator: kSubjectOwner for intersection/difference,
  /// kBlockClosure for union/xor. Always exact.
  kAuto,
  /// Each *subject* polygon is owned by exactly one slab (the slab of its
  /// MBR midpoint); clip polygons are replicated into every slab whose
  /// subjects they can reach. Exact for intersection and difference of
  /// GIS-style layers (no within-layer overlap), no duplicate outputs,
  /// and no work replication — each pair is clipped exactly once.
  kSubjectOwner,
  /// The paper's scheme: replicate any polygon into every slab its MBR
  /// y-range overlaps, clip per slab, drop duplicate outputs. Exact for
  /// intersection; for union, clusters of polygons that span a slab
  /// boundary can merge with different partners in different slabs (the
  /// same implicit assumption the paper's union runs make).
  kReplicate,
  /// Replication extended transitively ("the local event list is
  /// readjusted such that no polygon is partially contained in a given
  /// slab"): slabs grow to whole blocks of chained MBR y-intervals.
  /// Exact for every operator, but chained data (interleaved layers,
  /// tiling polygons) can collapse many slabs into one block, limiting
  /// parallelism — the price of exact parallel union under replication.
  kBlockClosure,
};

const char* to_string(MultisetAssign a);

/// Options for the two-sets-of-polygons variant of Algorithm 2 (paper
/// §IV, last paragraph).
struct MultisetOptions {
  unsigned slabs = 0;  ///< 0 = pool thread count
  MultisetAssign assign = MultisetAssign::kAuto;
  /// Fused slab-local bound construction (default on): every polygon is
  /// prepared (clean + coalesce + perturb + bound decomposition + schedule
  /// run) once globally, and each slab task concatenates the prepared
  /// fragments of its assigned polygons straight into the worker arena's
  /// bound table — no per-slab contour copies, no per-slab re-preparation,
  /// and the scanbeam schedule is a linear run merge instead of a sort.
  /// Replication assigns whole polygons (never split), so a slab's bound
  /// table is bit-identical to what a materializing vatti_clip would have
  /// rebuilt; output is byte-identical either way. Off reproduces the
  /// copy-then-rederive baseline for ablation.
  bool fused = true;
  /// Sweep kernel for the per-slab sequential clips (see seq::SweepKernel);
  /// both settings are byte-identical, kReference exists for ablations.
  seq::SweepKernel sweep_kernel = seq::SweepKernel::kTuned;
  /// Fault isolation (default on): each slab's clip runs behind a guard
  /// that catches exceptions and rejects non-finite output, retries the
  /// slab on safe settings (fresh scratch, no arena — bit-identical), and
  /// falls back to one sequential whole-input clip if a slab still cannot
  /// complete. Alg2Stats::degradation records the rung per slab. Off:
  /// the first slab failure propagates out of multiset_clip unchanged.
  bool isolate_faults = true;
  /// Trace + metrics sink for this run; null (default) = tracing off at the
  /// cost of one pointer test per site. Same contract as
  /// Alg2Options::trace_sink.
  obs::TraceSink* trace_sink = nullptr;
  /// Request governance handle (DESIGN.md §11), same contract as
  /// Alg2Options::cancel: a null token governs nothing and inherits any
  /// token already installed on the calling thread.
  par::CancelToken cancel;
  /// Partial-result contract, same as Alg2Options::allow_partial: slabs
  /// abandoned by a governance trip report Rung::kPartialResult and are
  /// recorded in Alg2Stats::partial instead of failing the request.
  bool allow_partial = false;
  /// Cross-request prepared-contour source, same contract as
  /// Alg2Options::prepared_cache: null prepares locally; non-null fetches
  /// shared immutable fragments from the source during the fused setup.
  /// Byte-identical output either way.
  seq::PreparedSource* prepared_cache = nullptr;
};

/// Clip two *sets* of polygons (e.g. two GIS layers) — the paper's
/// Pthreads version: MBR y-extents form the event list, it is cut into
/// p slabs with roughly equal event counts, polygons are distributed to
/// slabs per `MultisetAssign` (replicated, never split), each slab pair
/// is clipped sequentially with the Vatti clipper, all slabs in parallel,
/// and redundant outputs from replicated pairs are removed afterwards.
///
/// Assumes layers in the GIS sense: polygons within one input do not
/// overlap each other (their union interiors are disjoint).
geom::PolygonSet multiset_clip(const geom::PolygonSet& subject,
                               const geom::PolygonSet& clip, geom::BoolOp op,
                               par::ThreadPool& pool,
                               const MultisetOptions& opts = {},
                               Alg2Stats* stats = nullptr);

}  // namespace psclip::mt
