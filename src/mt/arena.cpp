#include "mt/arena.hpp"

#include "parallel/fault.hpp"
#include "parallel/worker_local.hpp"

namespace psclip::mt {
namespace {

par::WorkerLocal<SlabArena>& registry() {
  static par::WorkerLocal<SlabArena> r;
  return r;
}

}  // namespace

SlabArena& worker_arena() {
  par::fault::inject(par::fault::Site::kArena);
  return registry().local();
}

std::size_t worker_arena_count() { return registry().slots(); }

}  // namespace psclip::mt
