#include "mt/algorithm2.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "error.hpp"
#include "mt/arena.hpp"
#include "mt/slab_index.hpp"
#include "obs/trace.hpp"
#include "parallel/cancel.hpp"
#include "parallel/fault.hpp"
#include "parallel/sort.hpp"
#include "parallel/timing.hpp"
#include "seq/bounds.hpp"
#include "seq/vatti.hpp"

namespace psclip::mt {
namespace {

/// Record the in-flight exception's taxonomy code and message into a slab's
/// degradation report. Must be called from inside a catch block.
void classify_failure(DegradationReport& rep) {
  try {
    throw;
  } catch (const Error& e) {
    rep.cause = e.code();
    rep.message = e.what();
  } catch (const std::bad_alloc&) {
    rep.cause = ErrorCode::kResource;
    rep.message = "std::bad_alloc";
  } catch (const std::exception& e) {
    rep.cause = ErrorCode::kSlabFailure;
    rep.message = e.what();
  } catch (...) {
    rep.cause = ErrorCode::kSlabFailure;
    rep.message = "unknown exception";
  }
}

/// Slab boundaries with (nearly) equal event counts per slab, each placed
/// midway between two adjacent distinct event ordinates so that no input
/// vertex lies exactly on a boundary (keeps the Greiner–Hormann rectangle
/// clipping in general position).
std::vector<double> slab_bounds(const std::vector<double>& ys,
                                const geom::BBox& mbr, unsigned slabs) {
  std::vector<double> bounds;
  bounds.reserve(slabs + 1);
  const double margin = 0.5 * std::max(mbr.height(), 1e-9) * 1e-6 + 1e-12;
  bounds.push_back(mbr.ymin - margin);
  const std::size_t n = ys.size();
  for (unsigned t = 1; t < slabs; ++t) {
    const std::size_t cut = t * n / slabs;
    if (cut == 0 || cut >= n) continue;
    const double b = 0.5 * (ys[cut - 1] + ys[cut]);
    if (b > bounds.back()) bounds.push_back(b);
  }
  const double top = mbr.ymax + margin;
  if (top > bounds.back()) bounds.push_back(top);
  return bounds;
}

}  // namespace

geom::PolygonSet slab_clip(const geom::PolygonSet& subject,
                           const geom::PolygonSet& clip, geom::BoolOp op,
                           par::ThreadPool& pool, const Alg2Options& opts,
                           Alg2Stats* stats) {
  const unsigned p =
      opts.slabs ? opts.slabs
                 : pool.size() * std::max(1u, opts.oversubscribe);
  // Install the request's governance token for the whole run; a null token
  // inherits whatever the caller (psclip::clip facade) already installed.
  // TaskGroup/parallel_for re-install it inside every task they run, so
  // checkpoints fire on all workers.
  std::optional<par::gov::ScopedToken> gov_scope;
  if (opts.cancel.valid()) gov_scope.emplace(opts.cancel);
  par::gov::checkpoint_now();
  obs::TraceSink* const sink = opts.trace_sink;
  obs::ScopedSpan req_span(sink, "alg2.slab_clip", obs::Cat::kRequest);
  par::WallTimer req_timer;
  obs::ScopedSpan setup_span(sink, "alg2.setup", obs::Cat::kPhase);
  par::WallTimer phase_timer;
  par::ThreadCpuTimer phase_cpu_timer;

  // Steps 1-3: event ordinates, sorted, and the joint MBR.
  std::vector<double> ys;
  ys.reserve(subject.num_vertices() + clip.num_vertices());
  geom::BBox mbr;
  for (const auto* input : {&subject, &clip}) {
    for (const auto& c : input->contours) {
      for (const auto& pt : c.pts) {
        ys.push_back(pt.y);
        mbr.expand(pt);
      }
    }
  }
  if (ys.empty()) return {};
  par::parallel_sort(pool, ys);
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  const std::vector<double> bounds = slab_bounds(ys, mbr, p);
  const std::size_t nslabs = bounds.size() - 1;

  // Slab-overlap contour index (Alg2Partition::kIndexed and kFused): cache
  // each contour's bbox in one parallel pass, then build per-slab exact
  // overlap lists so slab t only ever reads its own contours. Under
  // kBroadcast the index is skipped and every slab scans both whole inputs
  // (the paper's O(p·n) formulation).
  const bool fused = opts.partition == Alg2Partition::kFused;
  const bool use_index = fused || opts.partition == Alg2Partition::kIndexed;
  std::vector<geom::BBox> sub_boxes, clip_boxes;
  SlabContourIndex sub_idx, clip_idx;
  if (use_index) {
    sub_boxes.resize(subject.num_contours());
    clip_boxes.resize(clip.num_contours());
    pool.parallel_for(
        subject.num_contours(),
        [&](std::size_t i) { sub_boxes[i] = geom::bounds(subject.contours[i]); },
        /*grain=*/64);
    pool.parallel_for(
        clip.num_contours(),
        [&](std::size_t i) { clip_boxes[i] = geom::bounds(clip.contours[i]); },
        /*grain=*/64);
    sub_idx = build_slab_index(pool, sub_boxes, bounds);
    clip_idx = build_slab_index(pool, clip_boxes, bounds);
  }

  // kFused setup: prepare every contour once, globally — clean + coalesce +
  // perturb + bound decomposition + per-contour schedule run. Every prep
  // step is per-contour deterministic, so a slab copying a fragment gets
  // bit for bit what the materializing path's per-slab re-preparation would
  // have rebuilt. Also classify contours as *well-contained* (overlap
  // exactly one slab by original bbox AND the prepared bbox sits strictly
  // inside that slab's open interval — perturbation can push a vertex past
  // a boundary, and a boundary-touching contour is "inside" two slabs):
  // their schedule ys go into one shared globally merged y-schedule that
  // slab tasks slice instead of re-sorting, and the strict containment is
  // what makes the slice exact.
  // Two ownership modes behind one pointer view: without a cache the
  // fragments live in the local *_own vectors (the pre-cache behavior);
  // with Alg2Options::prepared_cache they are shared immutable fragments
  // held alive for this run by the *_held shared_ptrs. Downstream code
  // reads only the *_prep pointer views (null = degenerate contour), so it
  // cannot tell the modes apart — the basis of the cache's byte-identity.
  std::vector<seq::PreparedContour> sub_own, clip_own;
  std::vector<std::shared_ptr<const seq::PreparedContour>> sub_held, clip_held;
  std::vector<const seq::PreparedContour*> sub_prep, clip_prep;
  std::vector<std::uint8_t> sub_well, clip_well;
  std::vector<double> shared_ys;
  if (fused) {
    obs::ScopedSpan prep_span(sink, "alg2.fused_prep", obs::Cat::kPhase);
    auto prep_input = [&](const geom::PolygonSet& input,
                          const std::vector<geom::BBox>& boxes,
                          std::vector<seq::PreparedContour>& own,
                          std::vector<std::shared_ptr<
                              const seq::PreparedContour>>& held,
                          std::vector<const seq::PreparedContour*>& prep,
                          std::vector<std::uint8_t>& well, bool is_clip) {
      const std::size_t n = input.num_contours();
      prep.assign(n, nullptr);
      well.assign(n, 0);
      if (opts.prepared_cache)
        held.resize(n);
      else
        own.resize(n);
      pool.parallel_for(
          n,
          [&](std::size_t i) {
            if (opts.prepared_cache) {
              held[i] =
                  opts.prepared_cache->prepared(input.contours[i], is_clip);
              prep[i] = held[i].get();
            } else if (seq::prepare_contour(input.contours[i], is_clip,
                                            own[i])) {
              prep[i] = &own[i];
            }
            if (!prep[i]) return;
            const SlabRange r =
                slab_range(boxes[i].ymin, boxes[i].ymax, bounds, nslabs);
            well[i] = r.lo <= r.hi && r.single() &&
                              bounds[r.lo] < prep[i]->box.ymin &&
                              prep[i]->box.ymax < bounds[r.lo + 1]
                          ? 1
                          : 0;
          },
          /*grain=*/16);
    };
    prep_input(subject, sub_boxes, sub_own, sub_held, sub_prep, sub_well,
               /*is_clip=*/false);
    prep_input(clip, clip_boxes, clip_own, clip_held, clip_prep, clip_well,
               /*is_clip=*/true);
    std::vector<std::size_t> runs{0};
    auto collect = [&](const std::vector<const seq::PreparedContour*>& prep,
                       const std::vector<std::uint8_t>& well) {
      for (std::size_t i = 0; i < prep.size(); ++i) {
        if (!well[i] || prep[i]->ys.empty()) continue;
        shared_ys.insert(shared_ys.end(), prep[i]->ys.begin(),
                         prep[i]->ys.end());
        runs.push_back(shared_ys.size());
      }
    };
    collect(sub_prep, sub_well);
    collect(clip_prep, clip_well);
    seq::merge_sorted_runs_unique(shared_ys, runs);
    prep_span.arg("shared_ys",
                  static_cast<std::int64_t>(shared_ys.size()));
  }
  // Steps 4-6 per slab, in parallel: rectangle-clip both inputs to the
  // slab, then run the sequential clipper on the slab pair.
  struct SlabOut {
    geom::PolygonSet result;
    SlabLoad load;
    DegradationReport report;
    double partition_seconds = 0.0;
    double partition_cpu = 0.0;  ///< thread CPU time of the partition step
    int worker = -1;  ///< pool worker that executed the slab (-1 = caller)
    bool done = false;       ///< slab task body ran (vs. lost to a group fault)
    bool exhausted = false;  ///< every per-slab ladder rung failed
  };
  std::vector<SlabOut> outs(nslabs);
  const double t_setup = phase_timer.seconds();
  const double t_setup_cpu = phase_cpu_timer.seconds();
  phase_timer.reset();
  setup_span.end();
  req_span.arg("slabs", static_cast<std::int64_t>(nslabs));
  req_span.arg("vertices", static_cast<std::int64_t>(
                               subject.num_vertices() + clip.num_vertices()));
  req_span.arg("op", static_cast<std::int64_t>(op));

  // Rectangle clipper for the kAltRectMethod rung: whichever of the two
  // full clippers the run was *not* configured with.
  const seq::RectClipMethod alt_method =
      opts.rect_method == seq::RectClipMethod::kVatti
          ? seq::RectClipMethod::kGreinerHormann
          : seq::RectClipMethod::kVatti;

  // One attempt at one slab on one ladder rung. Throws on any failure —
  // injected faults, resource exhaustion, or a non-finite coordinate caught
  // by the post-checks — with `so` reset so the next rung starts clean.
  auto attempt_slab = [&](std::size_t t, SlabOut& so, Rung rung) {
    par::gov::checkpoint_now();
    so.result = geom::PolygonSet{};
    so.load = SlabLoad{};
    so.partition_seconds = 0.0;
    so.partition_cpu = 0.0;
    // Memory budget (DESIGN.md §11): the attempt holds a charge for the
    // arena it grows, raised to the arena's capacity watermark after each
    // growth step and released when the attempt ends (success or unwind).
    // Concurrent attempts therefore charge the sum of their live arenas —
    // the process's actual slab-scratch footprint.
    par::gov::ScopedCharge arena_charge;
    obs::ScopedSpan part_span(sink, "alg2.slab_partition", obs::Cat::kPhase);
    par::WallTimer timer;
    par::ThreadCpuTimer cpu_timer;
    const geom::BBox rect{mbr.xmin - 1.0, bounds[t], mbr.xmax + 1.0,
                          bounds[t + 1]};

    if (rung == Rung::kHealthy && fused) {
      // Fused fast path: assemble the slab's bound table and scanbeam
      // schedule directly from the globally prepared fragments — no
      // intermediate slab polygon sets, no per-slab re-preparation, no
      // per-slab schedule sort. The degradation ladder's next rung
      // (kRetrySafe) is the materializing broadcast path, byte-identical
      // by the identity chain fused == indexed == broadcast.
      SlabArena& arena = worker_arena();
      ++arena.tasks_served;
      seq::VattiScratch& scratch = arena.vatti;
      seq::BoundTable& bt = seq::scratch_bounds(scratch);
      bt.edges.clear();
      bt.minima.clear();
      std::vector<double>& sched = seq::scratch_schedule(scratch);
      sched.clear();
      arena.run_end.clear();
      arena.run_end.push_back(0);
      // Shared-schedule slice: every well-contained contour's ys lie
      // strictly inside its home slab's open interval, so the values in
      // (bounds[t], bounds[t+1]) are exactly this slab's share.
      {
        const auto lo =
            std::upper_bound(shared_ys.begin(), shared_ys.end(), bounds[t]);
        const auto hi = std::lower_bound(lo, shared_ys.end(), bounds[t + 1]);
        sched.insert(sched.end(), lo, hi);
        arena.run_end.push_back(sched.size());
      }
      seq::FusedClipStats fstats;
      bool finite = true;
      auto fused_input = [&](const geom::PolygonSet& input,
                             const SlabContourIndex& idx,
                             const std::vector<
                                 const seq::PreparedContour*>& prep,
                             const std::vector<std::uint8_t>& well,
                             bool is_clip) {
        const std::span<const SlabEntry> list = idx.slab(t);
        arena.refs.clear();
        arena.inside.clear();
        arena.prep_refs.clear();
        arena.in_shared.clear();
        arena.refs.reserve(list.size());
        arena.inside.reserve(list.size());
        arena.prep_refs.reserve(list.size());
        arena.in_shared.reserve(list.size());
        for (const SlabEntry& e : list) {
          arena.refs.push_back(&input.contours[e.contour]);
          arena.inside.push_back(e.inside ? 1 : 0);
          arena.prep_refs.push_back(prep[e.contour]);
          arena.in_shared.push_back(well[e.contour] ? 1 : 0);
        }
        if (!seq::clip_bounds_to_slab(arena.prep_refs, arena.refs,
                                      arena.inside, arena.in_shared, rect,
                                      opts.rect_method, is_clip, &arena.rect,
                                      bt, sched, arena.run_end, &fstats))
          finite = false;
      };
      fused_input(subject, sub_idx, sub_prep, sub_well,
                  /*is_clip=*/false);
      fused_input(clip, clip_idx, clip_prep, clip_well,
                  /*is_clip=*/true);
      seq::sort_minima(bt);
      // The slab's bound table and schedule are fully assembled: raise the
      // attempt's budget charge to the arena watermark before committing to
      // the sweep (whose own per-beam checkpoint then charges output
      // growth).
      arena_charge.raise_to(arena.resident_bytes());
      so.load.touched_edges = fstats.touched_edges;
      so.load.boundary_edges = fstats.boundary_edges;
      so.load.bound_build_ns =
          static_cast<std::int64_t>(timer.seconds() * 1e9);
      so.partition_seconds = timer.seconds();
      so.partition_cpu = cpu_timer.seconds();
      part_span.arg("touched_edges", so.load.touched_edges);
      part_span.arg("boundary_edges", so.load.boundary_edges);
      part_span.end();
      if (!finite)
        throw Error(ErrorCode::kNonFinite,
                    "non-finite vertex in slab " + std::to_string(t) +
                        " partition output");
      obs::ScopedSpan sweep_span(sink, "alg2.slab_sweep", obs::Cat::kPhase);
      timer.reset();
      cpu_timer.reset();
      // Finish the schedule: one bottom-up merge of (shared slice, stray
      // runs, piece runs) — same sorted distinct vector either sweep
      // kernel would have built from this table.
      par::WallTimer sched_timer;
      seq::merge_sorted_runs_unique(sched, arena.run_end);
      so.load.schedule_ns =
          static_cast<std::int64_t>(sched_timer.seconds() * 1e9);
      seq::VattiStats vs;
      so.result = seq::vatti_sweep_prepared(op, &vs, scratch,
                                            opts.sweep_kernel,
                                            /*prebuilt_schedule=*/true);
      if (par::fault::corrupt(par::fault::Site::kArena)) {
        const double nan = std::numeric_limits<double>::quiet_NaN();
        so.result.add({{nan, nan}, {0.0, 0.0}, {1.0, 1.0}});
      }
      so.load.seconds = timer.seconds();
      so.load.cpu_seconds = cpu_timer.seconds();
      so.load.input_edges = vs.edges;
      so.load.output_vertices = vs.output_vertices;
      so.load.peak_arena_bytes =
          static_cast<std::int64_t>(arena.resident_bytes());
      sweep_span.arg("input_edges", vs.edges);
      sweep_span.arg("output_vertices", vs.output_vertices);
      sweep_span.arg("schedule_ns", so.load.schedule_ns);
      sweep_span.end();
      if (sink) {
        sink->observe("alg2.slab_clip_seconds", so.load.seconds);
        sink->observe("alg2.slab_peak_arena_bytes",
                      static_cast<double>(so.load.peak_arena_bytes));
      }
      if (!geom::is_finite(so.result))
        throw Error(ErrorCode::kNonFinite,
                    "non-finite vertex in slab " + std::to_string(t) +
                        " clip output");
      return;
    }

    geom::PolygonSet a_t, b_t;
    seq::VattiScratch* scratch = nullptr;
    if (rung == Rung::kHealthy) {
      SlabArena& arena = worker_arena();
      ++arena.tasks_served;
      scratch = &arena.vatti;
      // Materialize this slab's inputs. Indexed: walk the overlap list
      // (ascending contour order == the broadcast scan order) and hand
      // rect_clip_subset the precomputed inside flags; the slab only reads
      // the contours it overlaps. Broadcast: scan and classify everything.
      auto slab_input = [&](const geom::PolygonSet& input,
                            const SlabContourIndex& idx) {
        if (!use_index) {
          so.load.touched_edges +=
              static_cast<std::int64_t>(input.num_vertices());
          return seq::rect_clip(input, rect, opts.rect_method);
        }
        const std::span<const SlabEntry> list = idx.slab(t);
        arena.refs.clear();
        arena.inside.clear();
        arena.refs.reserve(list.size());
        arena.inside.reserve(list.size());
        for (const SlabEntry& e : list) {
          const geom::Contour& c = input.contours[e.contour];
          arena.refs.push_back(&c);
          arena.inside.push_back(e.inside ? 1 : 0);
          so.load.touched_edges += static_cast<std::int64_t>(c.size());
        }
        return seq::rect_clip_subset(arena.refs, arena.inside, rect,
                                     opts.rect_method, &arena.rect);
      };
      a_t = slab_input(subject, sub_idx);
      b_t = slab_input(clip, clip_idx);
    } else if (rung == Rung::kRetrySafe || rung == Rung::kAltRectMethod) {
      // Broadcast partition, fresh scratch, no arena: bit-identical to the
      // healthy path (kRetrySafe) or the same region via the alternate
      // rectangle clipper (kAltRectMethod).
      const seq::RectClipMethod m =
          rung == Rung::kRetrySafe ? opts.rect_method : alt_method;
      so.load.touched_edges =
          static_cast<std::int64_t>(subject.num_vertices() +
                                    clip.num_vertices());
      a_t = seq::rect_clip(subject, rect, m);
      b_t = seq::rect_clip(clip, rect, m);
    } else {  // kSlabSequential: no rect_clip fast path at all — clip the
              // slab rectangle as an ordinary polygon operand with the full
              // sequential Vatti clipper.
      geom::PolygonSet rp;
      rp.contours.push_back(
          geom::make_rect(rect.xmin, rect.ymin, rect.xmax, rect.ymax));
      so.load.touched_edges =
          static_cast<std::int64_t>(subject.num_vertices() +
                                    clip.num_vertices());
      a_t = seq::vatti_clip(subject, rp, geom::BoolOp::kIntersection, nullptr,
                            nullptr, opts.sweep_kernel);
      b_t = seq::vatti_clip(clip, rp, geom::BoolOp::kIntersection, nullptr,
                            nullptr, opts.sweep_kernel);
    }
    so.partition_seconds = timer.seconds();
    so.partition_cpu = cpu_timer.seconds();
    part_span.arg("touched_edges", so.load.touched_edges);
    part_span.end();
    // Charge the materialized slab inputs (the structures this attempt
    // retains until it returns); the sweep's own checkpoint charges output
    // growth on top.
    arena_charge.raise_to(
        (a_t.num_vertices() + b_t.num_vertices()) * sizeof(geom::Point));
    // Never hand a corrupted partition to the sweep: a NaN vertex can wedge
    // the event queue, not just skew the output.
    if (!geom::is_finite(a_t) || !geom::is_finite(b_t))
      throw Error(ErrorCode::kNonFinite,
                  "non-finite vertex in slab " + std::to_string(t) +
                      " partition output");
    obs::ScopedSpan sweep_span(sink, "alg2.slab_sweep", obs::Cat::kPhase);
    timer.reset();
    cpu_timer.reset();
    seq::VattiStats vs;
    so.result = seq::vatti_clip(a_t, b_t, op, &vs, scratch, opts.sweep_kernel);
    if (rung == Rung::kHealthy &&
        par::fault::corrupt(par::fault::Site::kArena)) {
      const double nan = std::numeric_limits<double>::quiet_NaN();
      so.result.add({{nan, nan}, {0.0, 0.0}, {1.0, 1.0}});
    }
    so.load.seconds = timer.seconds();
    so.load.cpu_seconds = cpu_timer.seconds();
    so.load.input_edges = vs.edges;
    so.load.output_vertices = vs.output_vertices;
    so.load.bound_build_ns = vs.bound_build_ns;
    so.load.schedule_ns = vs.schedule_ns;
    if (scratch)
      so.load.peak_arena_bytes =
          static_cast<std::int64_t>(worker_arena().resident_bytes());
    sweep_span.arg("input_edges", vs.edges);
    sweep_span.arg("output_vertices", vs.output_vertices);
    sweep_span.end();
    if (sink) {
      sink->observe("alg2.slab_clip_seconds", so.load.seconds);
      if (scratch)
        sink->observe("alg2.slab_peak_arena_bytes",
                      static_cast<double>(so.load.peak_arena_bytes));
    }
    if (!geom::is_finite(so.result))
      throw Error(ErrorCode::kNonFinite,
                  "non-finite vertex in slab " + std::to_string(t) +
                      " clip output");
  };

  // Walk one slab down the degradation ladder starting at `first`. Records
  // rung reached / attempt count / first cause in so.report; flags the slab
  // exhausted when every rung fails. Never throws.
  auto run_ladder = [&](std::size_t t, SlabOut& so, Rung first) {
    so.done = true;
    static constexpr Rung kLadder[] = {Rung::kHealthy, Rung::kRetrySafe,
                                       Rung::kAltRectMethod,
                                       Rung::kSlabSequential};
    bool recorded = !so.report.message.empty();
    for (const Rung rung : kLadder) {
      if (rung < first) continue;
      // Governance gate before burning a rung: a cancelled request, an
      // expired deadline, or a *sticky* blown budget (memory still
      // retained over the limit) makes every further attempt hopeless —
      // time and memory lost in this slab are lost globally, unlike the
      // slab-local faults the ladder exists for. A transient budget
      // failure (e.g. an allocation spike released with its attempt)
      // passes this gate and gets its retry on the next rung, preserving
      // byte-identical recovery.
      try {
        par::gov::checkpoint_now();
      } catch (...) {
        if (!recorded) classify_failure(so.report);
        so.result = geom::PolygonSet{};
        so.exhausted = true;
        return;
      }
      ++so.report.attempts;
      // One kRung span per ladder attempt, named after the rung; nests
      // under the enclosing slab span (same thread, implicit parent).
      obs::ScopedSpan rung_span(sink, to_string(rung), obs::Cat::kRung);
      rung_span.arg("rung", static_cast<std::int64_t>(rung));
      try {
        attempt_slab(t, so, rung);
        so.report.rung = rung;
        return;
      } catch (...) {
        rung_span.arg("failed", 1);
        if (!recorded) {
          classify_failure(so.report);
          recorded = true;
        }
      }
    }
    so.result = geom::PolygonSet{};  // a failed attempt may leave debris
    so.exhausted = true;
  };

  // One stealable task per slab. Every worker starts with its round-robin
  // share; whoever drains its deque first steals half of a busy worker's
  // queued slabs, so oversubscribed decompositions (nslabs > pool.size())
  // self-balance without any cost model. The slab decomposition is fixed
  // before scheduling and outs[] is indexed by slab, so the result is
  // byte-identical regardless of which worker runs which slab.
  const std::vector<par::StealStats> steal_before = pool.steal_stats();
  obs::ScopedSpan clip_span(sink, "alg2.clip", obs::Cat::kPhase);
  const obs::SpanId clip_id = clip_span.id();
  par::TaskGroup group(pool);
  for (std::size_t t = 0; t < nslabs; ++t) {
    group.run([&, t] {
      SlabOut& so = outs[t];
      so.worker = pool.current_worker();
      // The slab span parents to the clip-phase span *explicitly*: the
      // phase span lives on the calling thread while slab tasks run on
      // whichever worker steals them, so implicit (same-thread) nesting
      // cannot link them.
      obs::ScopedSpan slab_span(sink, "alg2.slab", obs::Cat::kSlab, clip_id);
      slab_span.arg("slab", static_cast<std::int64_t>(t));
      slab_span.arg("worker", so.worker);
      // Deterministic fault key: a plan keyed on slab index t fires for
      // this slab no matter which worker the scheduler hands it to.
      par::fault::ScopedKey key(t);
      if (opts.isolate_faults) {
        so.report.attempts = 0;
        run_ladder(t, so, Rung::kHealthy);
      } else {
        attempt_slab(t, so, Rung::kHealthy);
        so.done = true;
      }
      slab_span.arg("rung", static_cast<std::int64_t>(so.report.rung));
      slab_span.arg("attempts",
                    static_cast<std::int64_t>(so.report.attempts));
    });
  }
  PartialReport partial;
  if (!opts.isolate_faults) {
    group.wait();  // fail-fast: first slab failure propagates unchanged
  } else {
    DegradationReport group_rep;
    bool group_failed = false;
    try {
      group.wait();
    } catch (...) {
      // A fault fired in the scheduler wrapper itself (or several task
      // bodies were lost): TaskGroup aggregated it into one exception and
      // skipped not-yet-started tasks. Recover every lost slab here on the
      // calling thread, starting one rung down the ladder.
      group_failed = true;
      classify_failure(group_rep);
    }
    if (group_failed) {
      for (std::size_t t = 0; t < nslabs; ++t) {
        SlabOut& so = outs[t];
        if (so.done) continue;
        so.report = group_rep;
        so.report.attempts = 1;  // the task attempt the group aborted
        obs::ScopedSpan slab_span(sink, "alg2.slab", obs::Cat::kSlab,
                                  clip_id);
        slab_span.arg("slab", static_cast<std::int64_t>(t));
        slab_span.arg("worker", -1);  // recovered on the calling thread
        par::fault::ScopedKey key(t);
        run_ladder(t, so, Rung::kRetrySafe);
        slab_span.arg("rung", static_cast<std::int64_t>(so.report.rung));
        slab_span.arg("attempts",
                      static_cast<std::int64_t>(so.report.attempts));
      }
    }
    // Exhausted slabs split two ways. Governance-exhausted slabs (the
    // ladder gate tripped on cancel/deadline/budget) must NOT reach the
    // whole-input fallback — recomputing everything sequentially is the
    // most expensive possible response to "stop spending resources".
    // They either become a partial result (allow_partial) or fail the
    // request with the precise governance code. Only fault-exhausted
    // slabs (every rung genuinely failed) take the whole-input rung.
    bool fault_exhausted = false, gov_exhausted = false;
    for (const SlabOut& so : outs)
      if (so.exhausted) {
        if (is_governance(so.report.cause))
          gov_exhausted = true;
        else
          fault_exhausted = true;
      }
    if (gov_exhausted && !opts.allow_partial) {
      // Prefer the live token state (clean message); fall back to the
      // recorded first governance failure (e.g. a transient budget trip
      // whose sticky state has since cleared).
      par::gov::rethrow_if_stopped();
      for (const SlabOut& so : outs)
        if (so.exhausted && is_governance(so.report.cause))
          throw Error(so.report.cause, so.report.message);
    }
    if (gov_exhausted) {
      partial.partial = true;
      for (const SlabOut& so : outs)
        if (so.exhausted && is_governance(so.report.cause)) {
          partial.cause = so.report.cause;
          partial.message = so.report.message;
          break;
        }
      for (std::size_t t = 0; t < nslabs; ++t) {
        SlabOut& so = outs[t];
        if (!so.exhausted) continue;
        so.report.rung = Rung::kPartialResult;
        if (!partial.missing.empty() &&
            partial.missing.back().last + 1 == t) {
          partial.missing.back().last = t;
          partial.missing.back().y_hi = bounds[t + 1];
        } else {
          partial.missing.push_back({t, t, bounds[t], bounds[t + 1]});
        }
      }
    } else if (fault_exhausted) {
      // Final rung: abandon the slab decomposition and recompute the whole
      // request sequentially. Runs keyless so slab-keyed fault plans cannot
      // follow the computation here; a fault that still fires (kAnyKey plan
      // with shots left) means nothing can produce output, and propagates.
      obs::ScopedSpan whole_span(sink, to_string(Rung::kWholeInput),
                                 obs::Cat::kRung);
      whole_span.arg("rung", static_cast<std::int64_t>(Rung::kWholeInput));
      par::fault::ScopedKey key(par::fault::kNoKey);
      geom::PolygonSet whole = seq::vatti_clip(subject, clip, op, nullptr,
                                               nullptr, opts.sweep_kernel);
      for (SlabOut& so : outs) {
        so.result = geom::PolygonSet{};
        so.report.rung = Rung::kWholeInput;
      }
      outs[0].result = std::move(whole);
    }
  }

  const double t_par = phase_timer.seconds();
  phase_timer.reset();

  // Steal totals attributed to this run (pool-counter deltas).
  std::vector<par::StealStats> steal_after;
  if (stats || sink) steal_after = pool.steal_stats();
  if (sink) {
    std::int64_t steals = 0, stolen = 0;
    for (unsigned i = 0; i < pool.size(); ++i) {
      steals += static_cast<std::int64_t>(steal_after[i].steals -
                                          steal_before[i].steals);
      stolen += static_cast<std::int64_t>(steal_after[i].tasks_stolen -
                                          steal_before[i].tasks_stolen);
    }
    clip_span.arg("steals", steals);
    clip_span.arg("tasks_stolen", stolen);
    sink->add_counter("alg2.steals", steals);
  }
  clip_span.end();

  // Step 8 (sequential in the paper): concatenate the per-slab outputs.
  // merge_cpu is measured with the thread CPU clock, not copied from the
  // wall section: the merge runs on the caller only, but wall time still
  // charges any time the caller was descheduled while workers wound down.
  obs::ScopedSpan merge_span(sink, "alg2.merge", obs::Cat::kPhase);
  par::ThreadCpuTimer merge_cpu_timer;
  geom::PolygonSet out;
  for (auto& so : outs)
    for (auto& c : so.result.contours) out.contours.push_back(std::move(c));
  const double t_merge = phase_timer.seconds();
  const double t_merge_cpu = merge_cpu_timer.seconds();
  merge_span.arg("output_contours",
                 static_cast<std::int64_t>(out.num_contours()));
  merge_span.end();

  if (sink) {
    std::int64_t degraded = 0;
    for (const SlabOut& so : outs)
      if (so.report.rung != Rung::kHealthy) ++degraded;
    req_span.arg("degraded_slabs", degraded);
    sink->add_counter("alg2.requests", 1);
    sink->add_counter("alg2.slabs", static_cast<std::int64_t>(nslabs));
    sink->add_counter("alg2.degraded_slabs", degraded);
    sink->observe("alg2.request_seconds", req_timer.seconds());
    if (partial.partial) {
      req_span.arg("partial", 1);
      req_span.arg("missing_slabs",
                   static_cast<std::int64_t>(partial.missing_slabs()));
      sink->add_counter("alg2.partial_requests", 1);
      sink->add_counter("alg2.missing_slabs",
                        static_cast<std::int64_t>(partial.missing_slabs()));
    }
    if (const par::ResourceBudget* b = opts.cancel.budget())
      sink->observe("gov.peak_budget_bytes", static_cast<double>(b->peak()));
  }

  if (stats) {
    double partition_cpu_in_slabs = 0.0;
    stats->slabs.clear();
    stats->degradation.clear();
    for (const auto& so : outs) {
      stats->slabs.push_back(so.load);
      stats->degradation.push_back(so.report);
      partition_cpu_in_slabs += so.partition_cpu;
    }
    // Per-worker scheduling record: slot i < pool.size() is pool worker i,
    // the last slot is the calling thread (which helps while waiting).
    // Steal/idle numbers are pool-counter deltas, attributable to this run
    // only when the pool is not shared with concurrent work.
    stats->workers.assign(pool.size() + 1, WorkerLoad{});
    for (const auto& so : outs) {
      const std::size_t slot = so.worker >= 0
                                   ? static_cast<std::size_t>(so.worker)
                                   : pool.size();
      WorkerLoad& w = stats->workers[slot];
      ++w.slab_jobs;
      w.busy_seconds += so.partition_seconds + so.load.seconds;
    }
    for (unsigned i = 0; i < pool.size(); ++i) {
      WorkerLoad& w = stats->workers[i];
      w.steals = steal_after[i].steals - steal_before[i].steals;
      w.tasks_stolen =
          steal_after[i].tasks_stolen - steal_before[i].tasks_stolen;
      w.idle_seconds =
          steal_after[i].idle_seconds - steal_before[i].idle_seconds;
    }
    // Fig. 9's categories, in two consistent unit systems (see PhaseTimes):
    // wall = the calling thread's sections (setup / parallel region /
    // merge); cpu = per-worker time actually spent in the phase, summed
    // across workers. Mixing the two in one field made per-phase numbers
    // exceed the wall total whenever slabs ran concurrently — or, at
    // slabs = 1, made "clip" exceed the whole run.
    double clip_cpu_in_slabs = 0.0;
    for (const auto& so : outs) clip_cpu_in_slabs += so.load.cpu_seconds;
    stats->phases.partition = t_setup;
    stats->phases.clip = t_par;
    stats->phases.merge = t_merge;
    stats->phases.partition_cpu = t_setup_cpu + partition_cpu_in_slabs;
    stats->phases.clip_cpu = clip_cpu_in_slabs;
    stats->phases.merge_cpu = t_merge_cpu;
    stats->output_contours = static_cast<std::int64_t>(out.num_contours());
    stats->partial = partial;
  }
  return out;
}

}  // namespace psclip::mt
