#include "mt/algorithm2.hpp"

#include <algorithm>
#include <span>

#include "mt/arena.hpp"
#include "mt/slab_index.hpp"
#include "parallel/sort.hpp"
#include "parallel/timing.hpp"
#include "seq/vatti.hpp"

namespace psclip::mt {
namespace {

/// Slab boundaries with (nearly) equal event counts per slab, each placed
/// midway between two adjacent distinct event ordinates so that no input
/// vertex lies exactly on a boundary (keeps the Greiner–Hormann rectangle
/// clipping in general position).
std::vector<double> slab_bounds(const std::vector<double>& ys,
                                const geom::BBox& mbr, unsigned slabs) {
  std::vector<double> bounds;
  bounds.reserve(slabs + 1);
  const double margin = 0.5 * std::max(mbr.height(), 1e-9) * 1e-6 + 1e-12;
  bounds.push_back(mbr.ymin - margin);
  const std::size_t n = ys.size();
  for (unsigned t = 1; t < slabs; ++t) {
    const std::size_t cut = t * n / slabs;
    if (cut == 0 || cut >= n) continue;
    const double b = 0.5 * (ys[cut - 1] + ys[cut]);
    if (b > bounds.back()) bounds.push_back(b);
  }
  const double top = mbr.ymax + margin;
  if (top > bounds.back()) bounds.push_back(top);
  return bounds;
}

}  // namespace

geom::PolygonSet slab_clip(const geom::PolygonSet& subject,
                           const geom::PolygonSet& clip, geom::BoolOp op,
                           par::ThreadPool& pool, const Alg2Options& opts,
                           Alg2Stats* stats) {
  const unsigned p =
      opts.slabs ? opts.slabs
                 : pool.size() * std::max(1u, opts.oversubscribe);
  par::WallTimer phase_timer;

  // Steps 1-3: event ordinates, sorted, and the joint MBR.
  std::vector<double> ys;
  ys.reserve(subject.num_vertices() + clip.num_vertices());
  geom::BBox mbr;
  for (const auto* input : {&subject, &clip}) {
    for (const auto& c : input->contours) {
      for (const auto& pt : c.pts) {
        ys.push_back(pt.y);
        mbr.expand(pt);
      }
    }
  }
  if (ys.empty()) return {};
  par::parallel_sort(pool, ys);
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  const std::vector<double> bounds = slab_bounds(ys, mbr, p);
  const std::size_t nslabs = bounds.size() - 1;

  // Slab-overlap contour index (Alg2Partition::kIndexed): cache each
  // contour's bbox in one parallel pass, then build per-slab exact overlap
  // lists so slab t only ever reads its own contours. Under kBroadcast the
  // index is skipped and every slab scans both whole inputs (the paper's
  // O(p·n) formulation).
  const bool indexed = opts.partition == Alg2Partition::kIndexed;
  std::vector<geom::BBox> sub_boxes, clip_boxes;
  SlabContourIndex sub_idx, clip_idx;
  if (indexed) {
    sub_boxes.resize(subject.num_contours());
    clip_boxes.resize(clip.num_contours());
    pool.parallel_for(
        subject.num_contours(),
        [&](std::size_t i) { sub_boxes[i] = geom::bounds(subject.contours[i]); },
        /*grain=*/64);
    pool.parallel_for(
        clip.num_contours(),
        [&](std::size_t i) { clip_boxes[i] = geom::bounds(clip.contours[i]); },
        /*grain=*/64);
    sub_idx = build_slab_index(pool, sub_boxes, bounds);
    clip_idx = build_slab_index(pool, clip_boxes, bounds);
  }
  // Steps 4-6 per slab, in parallel: rectangle-clip both inputs to the
  // slab, then run the sequential clipper on the slab pair.
  struct SlabOut {
    geom::PolygonSet result;
    SlabLoad load;
    double partition_seconds = 0.0;
    int worker = -1;  ///< pool worker that executed the slab (-1 = caller)
  };
  std::vector<SlabOut> outs(nslabs);
  const double t_setup = phase_timer.seconds();
  phase_timer.reset();

  // One stealable task per slab. Every worker starts with its round-robin
  // share; whoever drains its deque first steals half of a busy worker's
  // queued slabs, so oversubscribed decompositions (nslabs > pool.size())
  // self-balance without any cost model. The slab decomposition is fixed
  // before scheduling and outs[] is indexed by slab, so the result is
  // byte-identical regardless of which worker runs which slab.
  const std::vector<par::StealStats> steal_before = pool.steal_stats();
  par::TaskGroup group(pool);
  for (std::size_t t = 0; t < nslabs; ++t) {
    group.run([&, t] {
      SlabOut& so = outs[t];
      so.worker = pool.current_worker();
      SlabArena& arena = worker_arena();
      ++arena.tasks_served;
      par::WallTimer timer;
      const geom::BBox rect{mbr.xmin - 1.0, bounds[t], mbr.xmax + 1.0,
                            bounds[t + 1]};
      // Materialize this slab's inputs. Indexed: walk the overlap list
      // (ascending contour order == the broadcast scan order) and hand
      // rect_clip_subset the precomputed inside flags; the slab only reads
      // the contours it overlaps. Broadcast: scan and classify everything.
      auto slab_input = [&](const geom::PolygonSet& input,
                            const SlabContourIndex& idx) {
        if (!indexed) {
          so.load.touched_edges +=
              static_cast<std::int64_t>(input.num_vertices());
          return seq::rect_clip(input, rect, opts.rect_method);
        }
        const std::span<const SlabEntry> list = idx.slab(t);
        arena.refs.clear();
        arena.inside.clear();
        arena.refs.reserve(list.size());
        arena.inside.reserve(list.size());
        for (const SlabEntry& e : list) {
          const geom::Contour& c = input.contours[e.contour];
          arena.refs.push_back(&c);
          arena.inside.push_back(e.inside ? 1 : 0);
          so.load.touched_edges += static_cast<std::int64_t>(c.size());
        }
        return seq::rect_clip_subset(arena.refs, arena.inside, rect,
                                     opts.rect_method, &arena.rect);
      };
      geom::PolygonSet a_t = slab_input(subject, sub_idx);
      geom::PolygonSet b_t = slab_input(clip, clip_idx);
      so.partition_seconds = timer.seconds();
      timer.reset();
      seq::VattiStats vs;
      so.result = seq::vatti_clip(a_t, b_t, op, &vs, &arena.vatti);
      so.load.seconds = timer.seconds();
      so.load.input_edges = vs.edges;
      so.load.output_vertices = vs.output_vertices;
    });
  }
  group.wait();

  const double t_par = phase_timer.seconds();
  phase_timer.reset();

  // Step 8 (sequential in the paper): concatenate the per-slab outputs.
  geom::PolygonSet out;
  for (auto& so : outs)
    for (auto& c : so.result.contours) out.contours.push_back(std::move(c));
  const double t_merge = phase_timer.seconds();

  if (stats) {
    double partition_in_slabs = 0.0;
    stats->slabs.clear();
    for (const auto& so : outs) {
      stats->slabs.push_back(so.load);
      partition_in_slabs += so.partition_seconds;
    }
    // Per-worker scheduling record: slot i < pool.size() is pool worker i,
    // the last slot is the calling thread (which helps while waiting).
    // Steal/idle numbers are pool-counter deltas, attributable to this run
    // only when the pool is not shared with concurrent work.
    const std::vector<par::StealStats> steal_after = pool.steal_stats();
    stats->workers.assign(pool.size() + 1, WorkerLoad{});
    for (const auto& so : outs) {
      const std::size_t slot = so.worker >= 0
                                   ? static_cast<std::size_t>(so.worker)
                                   : pool.size();
      WorkerLoad& w = stats->workers[slot];
      ++w.slab_jobs;
      w.busy_seconds += so.partition_seconds + so.load.seconds;
    }
    for (unsigned i = 0; i < pool.size(); ++i) {
      WorkerLoad& w = stats->workers[i];
      w.steals = steal_after[i].steals - steal_before[i].steals;
      w.tasks_stolen =
          steal_after[i].tasks_stolen - steal_before[i].tasks_stolen;
      w.idle_seconds =
          steal_after[i].idle_seconds - steal_before[i].idle_seconds;
    }
    // Attribute setup + the slabs' rectangle clipping to "partition",
    // the rest of the parallel section to "clip" (Fig. 9's categories).
    stats->phases.partition = t_setup + partition_in_slabs;
    stats->phases.clip = std::max(0.0, t_par - partition_in_slabs);
    stats->phases.merge = t_merge;
    stats->output_contours = static_cast<std::int64_t>(out.num_contours());
  }
  return out;
}

}  // namespace psclip::mt
