#pragma once

#include "geom/bool_op.hpp"
#include "geom/polygon.hpp"
#include "mt/stats.hpp"
#include "parallel/cancel.hpp"
#include "parallel/thread_pool.hpp"
#include "seq/rect_clip.hpp"
#include "seq/vatti.hpp"

namespace psclip::obs {
class TraceSink;
}
namespace psclip::seq {
class PreparedSource;
}

namespace psclip::mt {

/// How Algorithm 2's Steps 4–5 select the input handed to each slab task.
enum class Alg2Partition {
  /// Slab-overlap contour index (the default): one parallel pass caches the
  /// per-contour y-intervals, a sort + prefix-sum pass builds, for every
  /// slab, the exact list of contours overlapping it, and each slab task
  /// rect-clips only that list (fully-contained contours are moved, not
  /// clipped). Partition work drops from O(p·n) to O(n log n + Σ_t n_t) —
  /// output-sensitive in the slab overlap sizes n_t.
  kIndexed,
  /// The paper's formulation: every slab task scans both whole input sets
  /// and rectangle-clips them against its slab. O(p·n) partition work.
  /// Retained as the ablation baseline; produces byte-identical output.
  kBroadcast,
  /// Fused slab-local bound construction (the default): contours are
  /// prepared (clean + coalesce + perturb + bound decomposition) once
  /// globally, and each slab task rect-clips *bounds, not contours* —
  /// fully-inside contours drop their prepared bound fragment straight into
  /// the worker arena's BoundTable, straddling contours are rectangle-
  /// clipped and only their pieces re-prepared, and the per-slab scanbeam
  /// schedule is sliced from one shared globally merged y-schedule instead
  /// of re-sorted per slab (seq::clip_bounds_to_slab). Removes the
  /// materialize-then-rederive round trip that made per-slab sweep setup
  /// cost O(slab input) instead of output-sensitive. Byte-identical output
  /// to kIndexed/kBroadcast; the degradation ladder's kRetrySafe rung falls
  /// back to the materializing broadcast path.
  kFused,
};

/// Options for the multi-threaded slab clipper (Algorithm 2).
struct Alg2Options {
  /// Number of horizontal slabs (the paper uses one per thread). 0 = derive
  /// from the pool: oversubscribe × pool.size().
  unsigned slabs = 0;
  /// Adaptive over-partitioning factor used when `slabs == 0`: the input is
  /// cut into oversubscribe × p slabs and the slab jobs are scheduled on
  /// the pool's work-stealing deques, so idle workers steal queued slabs
  /// from busy ones. The paper's static one-slab-per-thread decomposition
  /// (oversubscribe = 1) leaves workers idle while the heaviest slab
  /// finishes (Fig. 11); a factor of ~4 trades a little extra rectangle
  /// clipping for a much tighter per-worker load distribution. The slab
  /// decomposition — and therefore the output — depends only on the
  /// resulting slab count, never on scheduling order.
  unsigned oversubscribe = 4;
  /// Clipper used for the rectangle-clipping Steps 4–5; the paper picks
  /// Greiner–Hormann after benchmarking it against GPC.
  seq::RectClipMethod rect_method = seq::RectClipMethod::kGreinerHormann;
  /// Partition-input selection strategy (see Alg2Partition). All settings
  /// produce byte-identical results; kIndexed/kBroadcast exist for
  /// ablation.
  Alg2Partition partition = Alg2Partition::kFused;
  /// Fault isolation (default on): every slab task runs behind a guard that
  /// catches exceptions and rejects non-finite output, then walks the
  /// degradation ladder (see mt::Rung) — retry on safe settings, alternate
  /// rectangle clipper, per-slab sequential Vatti, and finally a whole-input
  /// sequential recompute. A fault confined to one slab therefore degrades
  /// that slab only; Alg2Stats::degradation records how far each slab fell.
  /// Off: the first slab failure propagates out of slab_clip unchanged
  /// (fail-fast, the pre-isolation behavior).
  bool isolate_faults = true;
  /// Per-beam maintenance strategy of the sequential Vatti sweep that runs
  /// inside every slab (see seq::SweepKernel). Both settings produce
  /// byte-identical output; kReference reproduces the pre-optimization cost
  /// profile and exists for the bench_sweep_kernel ablation and the
  /// kernel-identity tests.
  seq::SweepKernel sweep_kernel = seq::SweepKernel::kTuned;
  /// Trace + metrics sink for this run (see obs/trace.hpp). Null — the
  /// default — is the null sink: every instrumentation site collapses to
  /// one pointer test, the same "free when off" discipline as the
  /// fault.hpp injection sites. Non-null: the run records a
  /// request → phase → slab → rung span hierarchy (slab spans carry slab
  /// id, executing worker, degradation rung and attempt count; the clip
  /// phase span carries the steal totals) plus alg2.* counters and latency
  /// histograms. The sink must outlive the call and be thread-safe
  /// (obs::TraceRecorder is).
  obs::TraceSink* trace_sink = nullptr;
  /// Request governance handle (DESIGN.md §11): cancel flag, deadline and
  /// memory budget checked at cooperative checkpoints throughout the run —
  /// phase boundaries, slab-attempt entries, parallel_for chunk boundaries
  /// and every scanbeam of the sweep. A default (null) token governs
  /// nothing and costs one null check per checkpoint; when slab_clip is
  /// called with a token already installed on the thread (psclip::clip
  /// facade), leaving this null inherits it.
  par::CancelToken cancel;
  /// Partial-result contract: when a slab is abandoned because the
  /// request's deadline, budget or cancellation tripped, return the
  /// completed slabs instead of failing the whole request. Abandoned slabs
  /// report Rung::kPartialResult and Alg2Stats::partial names the missing
  /// slab index ranges and their y-extents. Off (default): the first
  /// governance trip propagates out of slab_clip as its precise Error
  /// (kCancelled / kDeadlineExceeded / kBudgetExceeded).
  bool allow_partial = false;
  /// Cross-request prepared-contour source (svc::PreparedCache). Null — the
  /// default — prepares every contour locally inside this call, exactly the
  /// pre-cache behavior. Non-null: the kFused setup fetches each contour's
  /// prepared fragment from the source instead (a hit skips the whole
  /// clean + coalesce + perturb + bound-decomposition pass), holding the
  /// returned shared fragments alive for the duration of the run. Because
  /// prepare_contour is a pure per-contour function of the contour bytes,
  /// output is byte-identical with the cache on, off, hitting or missing.
  /// The source must be thread-safe and outlive the call.
  seq::PreparedSource* prepared_cache = nullptr;
};

/// The paper's Algorithm 2 for a pair of arbitrary polygons (also accepts
/// multi-contour inputs):
///
///   1–2  collect and sort the distinct vertex ordinates,
///   3    compute the minimum bounding rectangle of A ∪ B,
///   4–5  cut both inputs into p horizontal slabs with (nearly) equal
///        event-point counts; slab boundaries are placed *between*
///        adjacent event ordinates so no vertex lies on a boundary,
///   6    clip each slab pair with the sequential Vatti clipper
///        (our GPC stand-in), all slabs in parallel,
///   8    concatenate the per-slab outputs (the paper's sequential merge:
///        pieces have disjoint interiors, so concatenation is the even-odd
///        union; contours crossing slab boundaries remain split, exactly
///        as in the paper).
geom::PolygonSet slab_clip(const geom::PolygonSet& subject,
                           const geom::PolygonSet& clip, geom::BoolOp op,
                           par::ThreadPool& pool, const Alg2Options& opts = {},
                           Alg2Stats* stats = nullptr);

}  // namespace psclip::mt
