#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/bbox.hpp"
#include "parallel/thread_pool.hpp"

namespace psclip::mt {

/// One contour's membership in one slab of the interval index.
struct SlabEntry {
  std::uint32_t contour = 0;  ///< contour index in the input PolygonSet
  /// The contour's y-range lies fully inside [bounds[t], bounds[t+1]]: the
  /// slab moves the contour into its output untouched instead of running
  /// the rectangle clipper on it. (A zero-height contour sitting exactly on
  /// a slab boundary can be "fully inside" two adjacent slabs — closed
  /// intervals — which reproduces the broadcast rect_clip classification
  /// bit for bit.)
  bool inside = false;
};

/// Slab-overlap contour index: for every slab t, the exact list of contour
/// ids whose y-interval overlaps [bounds[t], bounds[t+1]] (closed, matching
/// geom::BBox::overlaps), in ascending contour order.
///
/// This is what makes Algorithm 2's partition phase output-sensitive: slab
/// t rect-clips only its overlapping contours, so total partition work is
/// O(n log n) to build the index once plus Σ_t n_t to consume it, instead
/// of the O(p·n) of broadcasting both whole input sets to every slab task.
/// (Skala's preprocessing-pays-for-itself line-clipping argument, applied
/// to the slab decomposition.)
struct SlabContourIndex {
  std::vector<std::int64_t> offsets;  ///< per-slab start, size nslabs + 1
  std::vector<SlabEntry> entries;     ///< grouped by slab, ascending contour

  [[nodiscard]] std::size_t num_slabs() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }

  /// Overlap list of slab t.
  [[nodiscard]] std::span<const SlabEntry> slab(std::size_t t) const {
    return {entries.data() + offsets[t],
            static_cast<std::size_t>(offsets[t + 1] - offsets[t])};
  }

  /// Σ_t n_t — the output-sensitive total the partition phase touches.
  [[nodiscard]] std::int64_t total_entries() const {
    return static_cast<std::int64_t>(entries.size());
  }
};

/// Slab range [lo, hi] (inclusive) a y-interval overlaps, or lo > hi when
/// it overlaps none. Closed-interval semantics on both ends, identical to
/// geom::BBox::overlaps against the slab rectangle [bounds[t], bounds[t+1]]:
///   overlaps slab t  <=>  ymin <= bounds[t+1] && ymax >= bounds[t].
struct SlabRange {
  std::size_t lo = 1, hi = 0;

  /// The interval overlaps exactly one slab. Combined with a strict
  /// containment test on the *prepared* bbox, this is how the fused
  /// partition decides a contour's schedule ys can come from the shared
  /// global slice (see Alg2Partition::kFused).
  [[nodiscard]] bool single() const { return lo == hi; }
};

/// Compute the slab range of one y-interval against the (strictly
/// increasing) slab boundary array — the classification primitive behind
/// build_slab_index, exported for the fused partition's well-contained
/// test.
SlabRange slab_range(double ymin, double ymax, std::span<const double> bounds,
                     std::size_t nslabs);

/// Build the index for one input set from its cached per-contour bounding
/// boxes and the (strictly increasing) slab boundary array.
///
/// Parallel over the pool: a bbox pass computed the boxes once upstream;
/// here each contour locates its slab range with two binary searches, the
/// blocked prefix sum (parallel/scan) turns per-contour overlap counts into
/// write offsets, the (slab, contour) records are emitted in parallel and
/// grouped with the parallel mergesort (parallel/sort). Contours with an
/// empty bbox, or entirely outside [bounds.front(), bounds.back()], produce
/// no entries.
SlabContourIndex build_slab_index(par::ThreadPool& pool,
                                  std::span<const geom::BBox> boxes,
                                  std::span<const double> bounds);

}  // namespace psclip::mt
