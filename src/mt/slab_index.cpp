#include "mt/slab_index.hpp"

#include <algorithm>

#include "parallel/scan.hpp"
#include "parallel/sort.hpp"

namespace psclip::mt {

SlabRange slab_range(double ymin, double ymax, std::span<const double> bounds,
                     std::size_t nslabs) {
  SlabRange r;
  if (!(ymin <= ymax)) return r;  // empty bbox (infinities compare false)
  // First t with bounds[t+1] >= ymin: lower_bound gives the first index i0
  // with bounds[i0] >= ymin, and bounds[i0 - 1] < ymin rules out t < i0-1.
  const auto it = std::lower_bound(bounds.begin(), bounds.end(), ymin);
  const auto i0 = static_cast<std::size_t>(it - bounds.begin());
  if (i0 == bounds.size()) return r;  // entirely above the top boundary
  r.lo = i0 == 0 ? 0 : i0 - 1;
  // Last t (<= nslabs-1) with bounds[t] <= ymax.
  const auto jt = std::upper_bound(bounds.begin(), bounds.end(), ymax);
  const auto j0 = static_cast<std::size_t>(jt - bounds.begin());
  if (j0 == 0) return SlabRange{};  // entirely below the bottom boundary
                                    // (r.lo is already set — discard it)
  r.hi = std::min(nslabs - 1, j0 - 1);
  return r;
}

namespace {

/// Sortable (slab, contour) record; `inside` rides along.
struct Rec {
  std::uint32_t slab = 0;
  SlabEntry entry;
};

}  // namespace

SlabContourIndex build_slab_index(par::ThreadPool& pool,
                                  std::span<const geom::BBox> boxes,
                                  std::span<const double> bounds) {
  SlabContourIndex idx;
  const std::size_t nslabs = bounds.size() >= 2 ? bounds.size() - 1 : 0;
  idx.offsets.assign(nslabs + 1, 0);
  if (nslabs == 0 || boxes.empty()) return idx;

  // Count phase: slabs overlapped per contour (two binary searches each).
  const std::size_t n = boxes.size();
  std::vector<std::int64_t> counts(n);
  pool.parallel_for(
      n,
      [&](std::size_t i) {
        const SlabRange r =
            slab_range(boxes[i].ymin, boxes[i].ymax, bounds, nslabs);
        counts[i] = r.lo <= r.hi
                        ? static_cast<std::int64_t>(r.hi - r.lo + 1)
                        : 0;
      },
      /*grain=*/256);

  // Allocate phase: the blocked prefix sum turns counts into write slots
  // (the paper's count/allocate/report pattern, Lemma 4's substrate).
  const par::Allocation alloc = par::allocate_from_counts(pool, counts);
  std::vector<Rec> recs(static_cast<std::size_t>(alloc.total));

  // Report phase: every contour writes its own disjoint slot range.
  pool.parallel_for(
      n,
      [&](std::size_t i) {
        if (counts[i] == 0) return;
        const SlabRange r =
            slab_range(boxes[i].ymin, boxes[i].ymax, bounds, nslabs);
        auto at = static_cast<std::size_t>(alloc.offsets[i]);
        for (std::size_t t = r.lo; t <= r.hi; ++t, ++at) {
          // `inside` is per (contour, slab): closed intervals let a
          // boundary-touching zero-height contour be inside two slabs.
          const bool inside =
              boxes[i].ymin >= bounds[t] && boxes[i].ymax <= bounds[t + 1];
          recs[at] = {static_cast<std::uint32_t>(t),
                      {static_cast<std::uint32_t>(i), inside}};
        }
      },
      /*grain=*/256);

  // Group by slab, ascending contour within a slab, with the parallel
  // mergesort. The fill above is contour-major, so records are already
  // nearly sorted by contour — the comparator makes the order explicit
  // rather than relying on stability.
  par::parallel_sort(pool, recs, [](const Rec& a, const Rec& b) {
    if (a.slab != b.slab) return a.slab < b.slab;
    return a.entry.contour < b.entry.contour;
  });

  idx.entries.resize(recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) idx.entries[i] = recs[i].entry;
  // Per-slab offsets from the sorted slab keys (p binary searches).
  for (std::size_t t = 1; t <= nslabs; ++t) {
    const auto it = std::lower_bound(
        recs.begin(), recs.end(), t,
        [](const Rec& r, std::size_t key) { return r.slab < key; });
    idx.offsets[t] = it - recs.begin();
  }
  return idx;
}

}  // namespace psclip::mt
