#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "geom/polygon.hpp"
#include "seq/rect_clip.hpp"
#include "seq/vatti.hpp"

namespace psclip::mt {

/// Reusable scratch owned by one executing thread, handed out by
/// worker_arena(). A slab task borrows the arena for its whole run —
/// rect-clip partition buffers, the Vatti sweep scratch (bound table,
/// scanbeam list, the SoA active edge table with its beam-bottom/beam-top
/// x arrays and flat edge-id position index, output pool, per-beam
/// intersection buffers, minima staging + merge buffers) and the
/// contour-ref staging vectors used to materialize a slab's entry list from
/// the SlabContourIndex. Because slab tasks on one thread run strictly one
/// after another, nothing here needs synchronization; buffers are cleared
/// (capacity retained) at each use site rather than reallocated, so a
/// worker that clips many slabs touches the allocator only while its
/// high-water marks are still growing.
struct SlabArena {
  seq::VattiScratch vatti;      ///< sweep-structure pools for vatti_clip
  seq::RectClipScratch rect;    ///< straddling-contour buffer for rect clips
  std::vector<const geom::Contour*> refs;  ///< slab's contours, index order
  std::vector<std::uint8_t> inside;        ///< 1 = fully inside, move as-is
  // Fused-partition staging (Alg2Partition::kFused), aligned with `refs`:
  // the contours' globally prepared fragments and whether each one's
  // schedule ys are covered by the shared global slice.
  std::vector<const seq::PreparedContour*> prep_refs;
  std::vector<std::uint8_t> in_shared;
  /// Schedule-run boundaries for the fused path's merge_sorted_runs_unique
  /// over the scratch schedule (scratch_schedule(vatti)).
  std::vector<std::size_t> run_end;
  std::uint64_t tasks_served = 0;          ///< slab tasks run on this arena

  /// Approximate bytes resident in this arena (capacity-based, like
  /// seq::VattiScratch::resident_bytes): the per-worker high-water mark the
  /// memory-budget model charges and SlabLoad::peak_arena_bytes reports.
  [[nodiscard]] std::size_t resident_bytes() const {
    auto vec = [](const auto& v) {
      return v.capacity() *
             sizeof(typename std::decay_t<decltype(v)>::value_type);
    };
    auto set_bytes = [&](const geom::PolygonSet& s) {
      std::size_t b = vec(s.contours);
      for (const auto& c : s.contours) b += vec(c.pts);
      return b;
    };
    return vatti.resident_bytes() + vec(refs) + vec(inside) + vec(prep_refs) +
           vec(in_shared) + vec(run_end) + set_bytes(rect.straddling) +
           set_bytes(rect.pieces) + vec(rect.piece_prep.pts.pts) +
           vec(rect.piece_prep.bt.edges) + vec(rect.piece_prep.bt.minima) +
           vec(rect.piece_prep.ys);
  }
};

/// The calling thread's slab arena (created on first use, then reused for
/// every subsequent slab task this thread executes, across all clips and
/// pools for the life of the process).
SlabArena& worker_arena();

/// Number of distinct arenas created so far == distinct threads that have
/// executed slab tasks. Exposed for tests.
std::size_t worker_arena_count();

}  // namespace psclip::mt
