#pragma once

#include <cstdint>
#include <vector>

namespace psclip::mt {

/// Per-phase wall-clock seconds for Algorithm 2, matching the breakdown
/// the paper reports in Fig. 9 (partitioning = Steps 4–5, clipping =
/// Step 6, merging = Step 8).
struct PhaseTimes {
  double partition = 0.0;
  double clip = 0.0;
  double merge = 0.0;

  [[nodiscard]] double total() const { return partition + clip + merge; }
};

/// Per-slab work record, the raw material for the paper's load-imbalance
/// discussion (Fig. 11).
struct SlabLoad {
  double seconds = 0.0;           ///< clip time of this slab
  std::int64_t input_edges = 0;   ///< edges fed to the sequential clipper
  std::int64_t output_vertices = 0;
};

/// Full instrumentation for one Algorithm 2 run.
struct Alg2Stats {
  PhaseTimes phases;
  std::vector<SlabLoad> slabs;
  std::int64_t output_contours = 0;
  std::int64_t duplicates_removed = 0;  ///< multiset variant only

  /// max(slab time) / mean(slab time): 1.0 = perfectly balanced.
  [[nodiscard]] double load_imbalance() const {
    if (slabs.empty()) return 1.0;
    double sum = 0.0, mx = 0.0;
    for (const auto& s : slabs) {
      sum += s.seconds;
      if (s.seconds > mx) mx = s.seconds;
    }
    const double mean = sum / static_cast<double>(slabs.size());
    return mean > 0.0 ? mx / mean : 1.0;
  }

  /// Clip-phase speedup the decomposition would achieve with one core per
  /// slab: sum(slab time) / max(slab time). Hardware-independent — this
  /// is the quantity whose *shape* must match the paper's scaling figures
  /// regardless of how many cores the host actually has.
  [[nodiscard]] double ideal_speedup() const {
    if (slabs.empty()) return 1.0;
    double sum = 0.0, mx = 0.0;
    for (const auto& s : slabs) {
      sum += s.seconds;
      if (s.seconds > mx) mx = s.seconds;
    }
    return mx > 0.0 ? sum / mx : 1.0;
  }
};

}  // namespace psclip::mt
