#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "error.hpp"

namespace psclip::mt {

/// Rung of the per-slab degradation ladder a slab ended on. Rungs are tried
/// in declaration order; each is strictly more conservative (and slower)
/// than the one before it.
enum class Rung : std::uint8_t {
  /// The configured fast path (indexed partition + worker arena) succeeded.
  kHealthy = 0,
  /// Retry on safe settings: broadcast partition (slab_clip) or re-read
  /// shared slab inputs (multiset_clip), fresh scratch, no arena. Produces
  /// bit-identical output to the healthy path — the recovery rung for every
  /// transient or state-corruption fault.
  kRetrySafe,
  /// slab_clip only: broadcast partition with the *alternate* rectangle
  /// clipper (Vatti if the configured method was Greiner–Hormann, and vice
  /// versa). Same region, possibly different vertex representation.
  kAltRectMethod,
  /// slab_clip only: the slab's rectangle re-clipped against both whole
  /// inputs with the full sequential Vatti clipper (rectangle as a polygon
  /// operand — no rect_clip fast path at all).
  kSlabSequential,
  /// Final rung: the entire request recomputed by the sequential Vatti
  /// clipper, abandoning the slab decomposition (result contours are no
  /// longer split at slab boundaries).
  kWholeInput,
  /// Terminal governance rung (Alg2Options::allow_partial): the slab was
  /// abandoned because the request's deadline, budget, or cancellation
  /// tripped — no further rung is attempted (time and memory lost in one
  /// slab are lost globally) and the slab's output is *missing* from the
  /// result, recorded in Alg2Stats::partial. Deliberately the deepest rung
  /// so worst_rung() surfaces partiality over any completed degradation.
  kPartialResult,
};

inline const char* to_string(Rung r) {
  switch (r) {
    case Rung::kHealthy: return "healthy";
    case Rung::kRetrySafe: return "retry-safe";
    case Rung::kAltRectMethod: return "alt-rect-method";
    case Rung::kSlabSequential: return "slab-sequential";
    case Rung::kWholeInput: return "whole-input";
    case Rung::kPartialResult: return "partial-result";
  }
  return "?";
}

/// Per-slab record of how far down the degradation ladder a slab went.
/// All-healthy runs record rung == kHealthy and attempts == 1 everywhere.
struct DegradationReport {
  Rung rung = Rung::kHealthy;
  /// Total attempts made for this slab, including the successful one.
  std::uint32_t attempts = 1;
  /// Code of the *first* failure (meaningful when rung != kHealthy).
  ErrorCode cause = ErrorCode::kSlabFailure;
  /// Message of the first failure (empty when healthy).
  std::string message;
};

/// Per-phase timings for Algorithm 2, matching the breakdown the paper
/// reports in Fig. 9 (partitioning = Steps 4–5, clipping = Step 6,
/// merging = Step 8).
///
/// Wall and CPU are reported separately because the phases run on many
/// workers at once: `partition`/`clip`/`merge` are *wall-clock* sections of
/// the calling thread (they sum to roughly the run's elapsed time), while
/// the `*_cpu` fields sum the per-thread CPU time actually spent in that
/// phase across all threads (clip_cpu == Σ SlabLoad::cpu_seconds), measured
/// with par::ThreadCpuTimer. The distinction matters twice over: earlier
/// schema-1 reports mixed the units in one column (per-phase numbers
/// exceeded the total at slabs = 1), and schema-2 measured the per-slab
/// "CPU" with wall timers inside the slab tasks — which double-charges
/// whenever workers timeshare cores, the artifact behind the committed
/// clip-CPU "doubling" from 1 to 4 slabs while touched edges grew 4%.
struct PhaseTimes {
  double partition = 0.0;  ///< wall: slab placement + partition index build
  double clip = 0.0;       ///< wall: the whole parallel slab section
  double merge = 0.0;      ///< wall: result concatenation
  double partition_cpu = 0.0;  ///< cpu: setup + Σ per-slab partition work
  double clip_cpu = 0.0;       ///< cpu: Σ per-slab sequential clip time
  double merge_cpu = 0.0;      ///< cpu: merge runs on the caller only

  /// Wall-clock total (the paper's Fig. 9 stack height).
  [[nodiscard]] double total() const { return partition + clip + merge; }
  /// Total CPU seconds charged to the three phases.
  [[nodiscard]] double total_cpu() const {
    return partition_cpu + clip_cpu + merge_cpu;
  }
};

/// Per-slab work record, the raw material for the paper's load-imbalance
/// discussion (Fig. 11).
struct SlabLoad {
  double seconds = 0.0;      ///< clip wall time of this slab
  /// Clip CPU time of this slab: thread CPU clock (par::ThreadCpuTimer), so
  /// time the worker was descheduled — other workers timesharing the core —
  /// is not charged. This, not `seconds`, is what sums into
  /// PhaseTimes::clip_cpu and what the bench_slab_scaling inflation gate
  /// measures.
  double cpu_seconds = 0.0;
  /// Bound edges the sequential clipper actually swept for this slab — the
  /// post-partition, post-cleaning edge count (VattiStats::edges), i.e. the
  /// work the slab's Step 6 really did, not the raw vertex count handed in.
  std::int64_t input_edges = 0;
  std::int64_t output_vertices = 0;
  /// Input vertices the *partition* step read for this slab. Broadcast
  /// partitioning scans every contour of both inputs per slab; the indexed
  /// partition only reads contours whose y-interval overlaps the slab; the
  /// fused partition counts the bound edges it appends (prepared fragments
  /// are copied, not re-derived). Deterministic (no timing noise), which
  /// makes it the CI-gateable ablation metric.
  std::int64_t touched_edges = 0;
  /// Nanoseconds this slab spent building bounds (fused: fragment copies +
  /// piece prep inside clip_bounds_to_slab; materializing paths: the
  /// clean/coalesce/perturb/decompose pass inside vatti_clip).
  std::int64_t bound_build_ns = 0;
  /// Nanoseconds this slab spent on its scanbeam schedule (fused: slicing
  /// the shared global schedule + merging stray/piece runs; materializing
  /// paths: the per-slab sort or k-way merge inside the sweep).
  std::int64_t schedule_ns = 0;
  /// Piece edges stitched exactly onto this slab's boundary lines by the
  /// rectangle clipper (fused partition only; see FusedClipStats).
  std::int64_t boundary_edges = 0;
  /// Approximate peak bytes resident in the scratch arena that served this
  /// slab's successful attempt (seq::VattiScratch::resident_bytes plus the
  /// rect-clip scratch), sampled right after the attempt. Capacity-based:
  /// pooled worker arenas keep capacity across slabs, so one worker's
  /// arena reports the high-water mark of everything it served so far —
  /// exactly the number the memory-budget model charges (DESIGN.md §11).
  std::int64_t peak_arena_bytes = 0;
};

/// Per-worker scheduling record for one Algorithm 2 run under the
/// work-stealing slab scheduler: how much slab work each worker actually
/// executed and how it got it. The last entry (index == pool size) is the
/// calling thread, which helps drain the queue while it waits.
struct WorkerLoad {
  std::uint64_t slab_jobs = 0;     ///< slab tasks this worker executed
  std::uint64_t steals = 0;        ///< steal-half operations (pool delta)
  std::uint64_t tasks_stolen = 0;  ///< tasks acquired through those steals
  double busy_seconds = 0.0;       ///< sum of executed slab partition+clip time
  double idle_seconds = 0.0;       ///< pool idle-time delta over the run
};

/// Contiguous run of slabs missing from a partial result, plus the y-range
/// they cover — enough for a caller to re-issue exactly the missing strip
/// as a follow-up request.
struct MissingSlabRange {
  std::size_t first = 0;  ///< first missing slab index (inclusive)
  std::size_t last = 0;   ///< last missing slab index (inclusive)
  double y_lo = 0.0;      ///< bottom of the missing strip
  double y_hi = 0.0;      ///< top of the missing strip
};

/// What a partial result (Rung::kPartialResult under
/// Alg2Options::allow_partial) is missing and why. `partial` is false for
/// every complete result, including degraded-but-complete ones.
struct PartialReport {
  bool partial = false;
  std::vector<MissingSlabRange> missing;
  /// Governance code that stopped the first abandoned slab (kCancelled,
  /// kDeadlineExceeded or kBudgetExceeded).
  ErrorCode cause = ErrorCode::kDeadlineExceeded;
  std::string message;  ///< first governance failure's message

  [[nodiscard]] std::size_t missing_slabs() const {
    std::size_t n = 0;
    for (const auto& r : missing) n += r.last - r.first + 1;
    return n;
  }
};

/// Full instrumentation for one Algorithm 2 run.
struct Alg2Stats {
  PhaseTimes phases;
  std::vector<SlabLoad> slabs;
  std::vector<WorkerLoad> workers;  ///< slab scheduler only (see WorkerLoad)
  /// Per-slab fault-isolation record, index-aligned with `slabs`. When the
  /// whole-input fallback fired, every entry reports Rung::kWholeInput.
  std::vector<DegradationReport> degradation;
  /// Governance outcome: which slabs (if any) are missing from the result.
  PartialReport partial;
  std::int64_t output_contours = 0;
  std::int64_t duplicates_removed = 0;  ///< multiset variant only

  /// Number of slabs that did not complete on the healthy fast path.
  [[nodiscard]] std::int64_t degraded_slabs() const {
    std::int64_t n = 0;
    for (const auto& d : degradation)
      if (d.rung != Rung::kHealthy) ++n;
    return n;
  }

  /// Deepest ladder rung any slab reached in this run.
  [[nodiscard]] Rung worst_rung() const {
    Rung worst = Rung::kHealthy;
    for (const auto& d : degradation)
      if (d.rung > worst) worst = d.rung;
    return worst;
  }

  /// max(slab time) / mean(slab time): 1.0 = perfectly balanced.
  [[nodiscard]] double load_imbalance() const {
    if (slabs.empty()) return 1.0;
    double sum = 0.0, mx = 0.0;
    for (const auto& s : slabs) {
      sum += s.seconds;
      if (s.seconds > mx) mx = s.seconds;
    }
    const double mean = sum / static_cast<double>(slabs.size());
    return mean > 0.0 ? mx / mean : 1.0;
  }

  /// Clip-phase speedup the decomposition would achieve with one core per
  /// slab: sum(slab time) / max(slab time). Hardware-independent — this
  /// is the quantity whose *shape* must match the paper's scaling figures
  /// regardless of how many cores the host actually has.
  [[nodiscard]] double ideal_speedup() const {
    if (slabs.empty()) return 1.0;
    double sum = 0.0, mx = 0.0;
    for (const auto& s : slabs) {
      sum += s.seconds;
      if (s.seconds > mx) mx = s.seconds;
    }
    return mx > 0.0 ? sum / mx : 1.0;
  }

  /// max(worker busy time) / mean(worker busy time) over workers that could
  /// run slab jobs: 1.0 = every worker spent the same time clipping. This is
  /// the quantity the work-stealing scheduler improves — slab times stay
  /// skewed (Fig. 11), but oversubscription + stealing spreads them evenly
  /// across workers.
  [[nodiscard]] double worker_imbalance() const {
    if (workers.empty()) return 1.0;
    double sum = 0.0, mx = 0.0;
    for (const auto& w : workers) {
      sum += w.busy_seconds;
      if (w.busy_seconds > mx) mx = w.busy_seconds;
    }
    const double mean = sum / static_cast<double>(workers.size());
    return mean > 0.0 ? mx / mean : 1.0;
  }

  /// Total successful steal-half operations across workers for this run.
  [[nodiscard]] std::uint64_t total_steals() const {
    std::uint64_t s = 0;
    for (const auto& w : workers) s += w.steals;
    return s;
  }
};

}  // namespace psclip::mt
