#include "geom/intersect.hpp"

#include <algorithm>
#include <cmath>

#include "geom/predicates.hpp"

namespace psclip::geom {

Point line_intersection(const Point& a1, const Point& a2, const Point& b1,
                        const Point& b2) {
  const Point r = a2 - a1;
  const Point s = b2 - b1;
  const double denom = cross(r, s);
  const double t = cross(b1 - a1, s) / denom;
  return {a1.x + t * r.x, a1.y + t * r.y};
}

bool segments_intersect(const Point& a1, const Point& a2, const Point& b1,
                        const Point& b2) {
  const int o1 = orient2d_sign(a1, a2, b1);
  const int o2 = orient2d_sign(a1, a2, b2);
  const int o3 = orient2d_sign(b1, b2, a1);
  const int o4 = orient2d_sign(b1, b2, a2);
  if (o1 != o2 && o3 != o4) return true;
  if (o1 == 0 && on_segment(a1, a2, b1)) return true;
  if (o2 == 0 && on_segment(a1, a2, b2)) return true;
  if (o3 == 0 && on_segment(b1, b2, a1)) return true;
  if (o4 == 0 && on_segment(b1, b2, a2)) return true;
  return false;
}

SegmentIntersection segment_intersection(const Point& a1, const Point& a2,
                                         const Point& b1, const Point& b2) {
  SegmentIntersection out;
  const int o1 = orient2d_sign(a1, a2, b1);
  const int o2 = orient2d_sign(a1, a2, b2);
  const int o3 = orient2d_sign(b1, b2, a1);
  const int o4 = orient2d_sign(b1, b2, a2);

  if (o1 == 0 && o2 == 0) {
    // Collinear. Project on the dominant axis and intersect ranges.
    const bool use_x = std::fabs(a2.x - a1.x) >= std::fabs(a2.y - a1.y);
    auto key = [use_x](const Point& p) { return use_x ? p.x : p.y; };
    Point alo = a1, ahi = a2, blo = b1, bhi = b2;
    if (key(ahi) < key(alo)) std::swap(alo, ahi);
    if (key(bhi) < key(blo)) std::swap(blo, bhi);
    const Point lo = key(alo) > key(blo) ? alo : blo;
    const Point hi = key(ahi) < key(bhi) ? ahi : bhi;
    if (key(lo) > key(hi)) return out;  // disjoint
    if (key(lo) == key(hi)) {
      out.relation = SegmentRelation::kTouch;
      out.point = lo;
      return out;
    }
    out.relation = SegmentRelation::kOverlap;
    out.point = lo;
    out.point2 = hi;
    return out;
  }

  if (o1 != o2 && o3 != o4) {
    const bool endpoint = o1 == 0 || o2 == 0 || o3 == 0 || o4 == 0;
    out.relation =
        endpoint ? SegmentRelation::kTouch : SegmentRelation::kProper;
    if (o1 == 0) out.point = b1;
    else if (o2 == 0) out.point = b2;
    else if (o3 == 0) out.point = a1;
    else if (o4 == 0) out.point = a2;
    else out.point = line_intersection(a1, a2, b1, b2);
    return out;
  }

  // One endpoint may still lie on the other segment.
  if (o1 == 0 && on_segment(a1, a2, b1)) {
    out.relation = SegmentRelation::kTouch;
    out.point = b1;
  } else if (o2 == 0 && on_segment(a1, a2, b2)) {
    out.relation = SegmentRelation::kTouch;
    out.point = b2;
  } else if (o3 == 0 && on_segment(b1, b2, a1)) {
    out.relation = SegmentRelation::kTouch;
    out.point = a1;
  } else if (o4 == 0 && on_segment(b1, b2, a2)) {
    out.relation = SegmentRelation::kTouch;
    out.point = a2;
  }
  return out;
}

}  // namespace psclip::geom
