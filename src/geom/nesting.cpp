#include "geom/nesting.hpp"

#include <algorithm>
#include <cmath>

#include "geom/point_in_polygon.hpp"

namespace psclip::geom {
namespace {

/// Containment test between rings: every ring vertex strictly inside, by
/// testing one representative vertex (valid for disjoint clipper output
/// rings which never cross).
bool ring_inside(const Contour& inner, const Contour& outer) {
  if (inner.empty() || outer.empty()) return false;
  // A vertex of a ring may lie on the outer ring at touch points; average
  // two consecutive vertices to get an interior boundary point instead.
  const Point probe{0.5 * (inner[0].x + inner[1 % inner.size()].x),
                    0.5 * (inner[0].y + inner[1 % inner.size()].y)};
  return point_in_contour(probe, outer);
}

}  // namespace

std::vector<NestedPolygon> nest_contours(const PolygonSet& p) {
  const std::size_t n = p.contours.size();
  // Depth of each ring = number of rings properly containing it. Even
  // depth => shell, odd depth => hole of the deepest containing shell.
  std::vector<int> depth(n, 0);
  std::vector<int> parent(n, -1);  // smallest-area containing ring
  std::vector<double> abs_area(n);
  for (std::size_t i = 0; i < n; ++i)
    abs_area[i] = std::fabs(signed_area(p.contours[i]));

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      if (abs_area[j] <= abs_area[i]) continue;  // container must be larger
      if (!ring_inside(p.contours[i], p.contours[j])) continue;
      ++depth[i];
      if (parent[i] < 0 ||
          abs_area[j] < abs_area[static_cast<std::size_t>(parent[i])])
        parent[i] = static_cast<int>(j);
    }
  }

  std::vector<NestedPolygon> out;
  std::vector<int> shell_index(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    if (depth[i] % 2 != 0) continue;  // holes attached below
    NestedPolygon np;
    np.shell = p.contours[i];
    np.shell.hole = false;
    if (signed_area(np.shell) < 0.0) reverse(np.shell);
    shell_index[i] = static_cast<int>(out.size());
    out.push_back(std::move(np));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (depth[i] % 2 == 0) continue;
    Contour hole = p.contours[i];
    hole.hole = true;
    if (signed_area(hole) > 0.0) reverse(hole);
    const int par = parent[i];
    if (par >= 0 && shell_index[static_cast<std::size_t>(par)] >= 0) {
      out[static_cast<std::size_t>(
              shell_index[static_cast<std::size_t>(par)])]
          .holes.push_back(std::move(hole));
    }
  }
  return out;
}

PolygonSet flatten(const std::vector<NestedPolygon>& polys) {
  PolygonSet out;
  for (const auto& np : polys) {
    out.contours.push_back(np.shell);
    for (const auto& h : np.holes) out.contours.push_back(h);
  }
  return out;
}

}  // namespace psclip::geom
