#pragma once

#include <cmath>

namespace psclip::geom {

/// Central place for the library's floating-point tolerances. Orientation
/// *decisions* never use these (they go through the exact predicates);
/// tolerances are only used where coordinates are compared for coincidence,
/// e.g. stitching virtual vertices on a shared scanline.
inline constexpr double kEps = 1e-9;

/// Approximate equality with absolute tolerance `eps`.
inline bool nearly_equal(double a, double b, double eps = kEps) {
  return std::fabs(a - b) <= eps;
}

/// Approximate equality scaled by magnitude (relative + absolute floor).
inline bool nearly_equal_rel(double a, double b, double eps = kEps) {
  double scale = std::fmax(1.0, std::fmax(std::fabs(a), std::fabs(b)));
  return std::fabs(a - b) <= eps * scale;
}

}  // namespace psclip::geom
