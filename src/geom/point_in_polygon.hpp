#pragma once

#include "geom/point.hpp"
#include "geom/polygon.hpp"

namespace psclip::geom {

/// Even-odd (parity) point-in-region test over all contours of `p`,
/// the fill rule used throughout the paper (Lemma 3's parity argument).
/// Points exactly on the boundary are classified as inside.
bool point_in_polygon(const Point& q, const PolygonSet& p);

/// Parity test against a single contour.
bool point_in_contour(const Point& q, const Contour& c);

/// Number of edges of `p` strictly to the left of `q` on the horizontal
/// line through `q` — the quantity whose parity Lemma 3 computes with a
/// prefix sum. Exposed for tests.
int crossings_left_of(const Point& q, const PolygonSet& p);

}  // namespace psclip::geom
