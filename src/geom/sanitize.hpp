#pragma once

#include <vector>

#include "geom/polygon.hpp"
#include "geom/validate.hpp"

namespace psclip::geom {

/// Opt-in input repair for data of uncertain provenance — the permissive
/// counterpart to the strict parsers. The parsers reject malformed
/// documents outright; sanitize() takes a structurally well-formed polygon
/// set and drops exactly the vertices/contours that could destabilize the
/// clippers, keeping everything else bit-unchanged:
///
///   1. strip vertices with a non-finite coordinate (kNonFiniteVertex),
///   2. collapse runs of consecutive identical vertices, including the
///      implicit closing edge (kDuplicateVertex),
///   3. drop contours left with fewer than 3 vertices (kTooFewVertices).
///
/// Passes run in that order on each contour, so a contour reduced below 3
/// vertices by steps 1–2 is removed by step 3. Self-intersections, spikes
/// and orientation issues are left alone: even-odd clipping semantics
/// handles them, and "repairing" them would change the described region.
///
/// When `issues` is non-null, one ValidationIssue per repair is appended
/// (same taxonomy as validate(), with contour/vertex indices referring to
/// the *input* polygon set).
PolygonSet sanitize(const PolygonSet& p,
                    std::vector<ValidationIssue>* issues = nullptr);

}  // namespace psclip::geom
