#pragma once

#include <string>
#include <vector>

#include "geom/polygon.hpp"

namespace psclip::geom {

/// One defect found by validate().
struct ValidationIssue {
  enum class Kind {
    kTooFewVertices,       ///< contour with < 3 vertices
    kDuplicateVertex,      ///< consecutive identical vertices
    kSelfIntersection,     ///< two edges of one contour properly cross
    kCrossContourCrossing, ///< edges of two different contours cross
    kSpike,                ///< zero-area excursion (v[i-1] == v[i+1])
    kZeroArea,             ///< contour with (near) zero area
    kHoleOrientation,      ///< hole flag inconsistent with orientation
    kNonFiniteVertex,      ///< NaN/Inf coordinate (never valid anywhere)
  };
  Kind kind;
  std::size_t contour = 0;   ///< index of the (first) offending contour
  std::size_t vertex = 0;    ///< index of the offending vertex/edge
  std::size_t contour2 = 0;  ///< second contour for cross-contour issues
  std::string detail;
};

const char* to_string(ValidationIssue::Kind k);

/// Structural validation of a polygon set against the *output* contract of
/// the clippers: simple contours that do not cross each other, no
/// degenerate vertices, exterior rings counter-clockwise and holes
/// clockwise. Inputs to the clippers are allowed to violate most of this
/// (even-odd semantics embraces self-intersection), so validate() is a
/// quality gate for results, not a precondition check.
/// O(edges^2) crossing scan — intended for tests and debugging.
std::vector<ValidationIssue> validate(const PolygonSet& p,
                                      double zero_area_eps = 0.0);

/// Convenience: true when validate() finds nothing.
bool is_valid_output(const PolygonSet& p);

/// Human-readable report (one line per issue; empty string when valid).
std::string validation_report(const PolygonSet& p);

}  // namespace psclip::geom
