#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace psclip::geom {

/// A point (or 2-D vector) in the plane. Plain aggregate; all clipping code
/// treats coordinates as exact doubles and routes orientation decisions
/// through the robust predicates in predicates.hpp.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend constexpr bool operator!=(const Point& a, const Point& b) {
    return !(a == b);
  }
  /// Lexicographic y-then-x order: the sweep order used throughout the
  /// library (scanlines advance in +y; ties resolved by x).
  friend constexpr bool operator<(const Point& a, const Point& b) {
    return a.y < b.y || (a.y == b.y && a.x < b.x);
  }

  friend constexpr Point operator+(const Point& a, const Point& b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point operator-(const Point& a, const Point& b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point operator*(double s, const Point& p) {
    return {s * p.x, s * p.y};
  }
};

/// Dot product of two vectors.
constexpr double dot(const Point& a, const Point& b) {
  return a.x * b.x + a.y * b.y;
}

/// z-component of the cross product (non-robust; use orient2d for decisions).
constexpr double cross(const Point& a, const Point& b) {
  return a.x * b.y - a.y * b.x;
}

/// Euclidean distance between two points.
inline double distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

/// Hash suitable for unordered containers keyed by exact coordinates.
struct PointHash {
  std::size_t operator()(const Point& p) const noexcept {
    auto h = std::hash<double>{};
    std::size_t a = h(p.x), b = h(p.y);
    return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  }
};

}  // namespace psclip::geom
