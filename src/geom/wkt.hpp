#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "geom/polygon.hpp"

namespace psclip::geom {

/// Serialize a polygon set as WKT. Every contour becomes one single-ring
/// POLYGON inside a MULTIPOLYGON (hole nesting is not reconstructed; the
/// even-odd fill rule makes the flat form equivalent).
std::string to_wkt(const PolygonSet& p);

/// Parse `POLYGON ((...), (...))` or `MULTIPOLYGON (((...)), ...)` text.
/// All rings (shells and holes alike) become contours. Returns nullopt on
/// malformed input.
std::optional<PolygonSet> from_wkt(std::string_view wkt);

}  // namespace psclip::geom
