#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "error.hpp"
#include "geom/polygon.hpp"

namespace psclip::geom {

/// Serialize a polygon set as WKT. Every contour becomes one single-ring
/// POLYGON inside a MULTIPOLYGON (hole nesting is not reconstructed; the
/// even-odd fill rule makes the flat form equivalent).
std::string to_wkt(const PolygonSet& p);

/// Parse `POLYGON ((...), (...))` or `MULTIPOLYGON (((...)), ...)` text.
/// All rings (shells and holes alike) become contours.
///
/// Hardened against hostile input: non-finite coordinates ("inf"/"nan"
/// spellings, values that overflow double), truncated documents, rings with
/// fewer than 3 distinct vertices, and trailing bytes after the geometry
/// are all rejected — a successful parse never hands the clippers a
/// non-finite vertex. Returns nullopt on malformed input; when `err` is
/// non-null it receives a psclip::Error whose offset() is the byte position
/// of the first problem (code kParse for syntax, kNonFinite for coordinate
/// problems).
std::optional<PolygonSet> from_wkt(std::string_view wkt, Error* err = nullptr);

}  // namespace psclip::geom
