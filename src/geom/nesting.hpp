#pragma once

#include <vector>

#include "geom/polygon.hpp"

namespace psclip::geom {

/// One polygon in the conventional GIS sense: an exterior shell plus the
/// hole rings directly contained in it.
struct NestedPolygon {
  Contour shell;               ///< counter-clockwise exterior ring
  std::vector<Contour> holes;  ///< clockwise hole rings inside the shell
};

/// Group clipper output contours into shell+holes polygons.
///
/// Clipper results are flat contour lists with orientation/hole flags
/// (even-odd equivalent); many consumers (GeoJSON, shapefiles, renderers)
/// want the nested form instead. Each hole ring is attached to the
/// smallest exterior ring containing it; islands inside holes become
/// separate polygons, arbitrarily deep. O(n_rings^2) point-in-polygon
/// containment tests — fine for clipper outputs, not meant for bulk data.
std::vector<NestedPolygon> nest_contours(const PolygonSet& p);

/// Flatten nested polygons back into a PolygonSet (inverse of
/// nest_contours up to ring order).
PolygonSet flatten(const std::vector<NestedPolygon>& polys);

}  // namespace psclip::geom
