#pragma once

#include <algorithm>
#include <limits>

#include "geom/point.hpp"

namespace psclip::geom {

/// Axis-aligned bounding box ("minimum bounding rectangle" in the paper,
/// represented by its bottom-left and top-right corners as in §IV).
struct BBox {
  double xmin = std::numeric_limits<double>::infinity();
  double ymin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();

  /// True if no point has ever been added.
  [[nodiscard]] bool empty() const { return xmin > xmax || ymin > ymax; }

  void expand(const Point& p) {
    xmin = std::min(xmin, p.x);
    ymin = std::min(ymin, p.y);
    xmax = std::max(xmax, p.x);
    ymax = std::max(ymax, p.y);
  }

  void expand(const BBox& o) {
    xmin = std::min(xmin, o.xmin);
    ymin = std::min(ymin, o.ymin);
    xmax = std::max(xmax, o.xmax);
    ymax = std::max(ymax, o.ymax);
  }

  [[nodiscard]] double width() const { return xmax - xmin; }
  [[nodiscard]] double height() const { return ymax - ymin; }

  [[nodiscard]] bool contains(const Point& p) const {
    return p.x >= xmin && p.x <= xmax && p.y >= ymin && p.y <= ymax;
  }

  /// Closed-interval overlap test (touching boxes count as overlapping).
  [[nodiscard]] bool overlaps(const BBox& o) const {
    return xmin <= o.xmax && o.xmin <= xmax && ymin <= o.ymax && o.ymin <= ymax;
  }

  /// Overlap in the y-range only, used by slab assignment in Algorithm 2.
  [[nodiscard]] bool overlaps_y(double lo, double hi) const {
    return ymin <= hi && lo <= ymax;
  }

  friend bool operator==(const BBox& a, const BBox& b) {
    return a.xmin == b.xmin && a.ymin == b.ymin && a.xmax == b.xmax &&
           a.ymax == b.ymax;
  }
};

}  // namespace psclip::geom
