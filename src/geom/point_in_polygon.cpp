#include "geom/point_in_polygon.hpp"

#include "geom/predicates.hpp"

namespace psclip::geom {
namespace {

/// Counts parity of crossings of the leftward horizontal ray from q with
/// contour c, using the half-open rule [ymin, ymax) per edge so that
/// vertices are counted exactly once. Returns -1 if q is on the boundary.
int contour_parity(const Point& q, const Contour& c) {
  const std::size_t n = c.size();
  int parity = 0;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = c[j];
    const Point& b = c[i];
    if (on_segment(a, b, q)) return -1;
    // Half-open in y: edge spans [min(a.y,b.y), max(a.y,b.y)).
    const bool spans = (a.y <= q.y) != (b.y <= q.y);
    if (!spans) continue;
    // Crossing is strictly left of q iff q is on the right side of the
    // upward-directed edge.
    const Point lo = a.y < b.y ? a : b;
    const Point hi = a.y < b.y ? b : a;
    if (orient2d(lo, hi, q) < 0.0) parity ^= 1;
  }
  return parity;
}

}  // namespace

bool point_in_contour(const Point& q, const Contour& c) {
  const int par = contour_parity(q, c);
  return par != 0;  // boundary counts as inside
}

bool point_in_polygon(const Point& q, const PolygonSet& p) {
  int parity = 0;
  for (const auto& c : p.contours) {
    const int par = contour_parity(q, c);
    if (par < 0) return true;  // on boundary
    parity ^= par;
  }
  return parity != 0;
}

int crossings_left_of(const Point& q, const PolygonSet& p) {
  int count = 0;
  for (const auto& c : p.contours) {
    const std::size_t n = c.size();
    for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
      const Point& a = c[j];
      const Point& b = c[i];
      const bool spans = (a.y <= q.y) != (b.y <= q.y);
      if (!spans) continue;
      const Point lo = a.y < b.y ? a : b;
      const Point hi = a.y < b.y ? b : a;
      if (orient2d(lo, hi, q) < 0.0) ++count;
    }
  }
  return count;
}

}  // namespace psclip::geom
