#pragma once

namespace psclip::geom {

/// Boolean operators supported by all clippers in this library
/// (the paper's op ∈ {∩, ∪, −}; XOR is the natural fourth).
enum class BoolOp {
  kIntersection,
  kUnion,
  kDifference,  ///< subject minus clip (A \ B)
  kXor,
};

/// Short human-readable operator name ("INT", "UNION", ...).
const char* to_string(BoolOp op);

/// Membership of a point in the boolean result given membership in each
/// input (even-odd region semantics). Every vertex-emission decision in the
/// clippers reduces to evaluating this on the sectors around an event point.
constexpr bool in_result(bool in_subject, bool in_clip, BoolOp op) {
  switch (op) {
    case BoolOp::kIntersection: return in_subject && in_clip;
    case BoolOp::kUnion: return in_subject || in_clip;
    case BoolOp::kDifference: return in_subject && !in_clip;
    case BoolOp::kXor: return in_subject != in_clip;
  }
  return false;
}

/// All four operators, for parameterized tests and benches.
inline constexpr BoolOp kAllOps[] = {BoolOp::kIntersection, BoolOp::kUnion,
                                     BoolOp::kDifference, BoolOp::kXor};

}  // namespace psclip::geom
