#include "geom/geojson.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>
#include <utility>

#include "geom/nesting.hpp"
#include "obs/trace.hpp"

namespace psclip::geom {
namespace {

void write_ring(std::ostringstream& os, const Contour& c) {
  os << '[';
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i) os << ',';
    os << '[' << c[i].x << ',' << c[i].y << ']';
  }
  if (!c.empty()) os << ",[" << c[0].x << ',' << c[0].y << ']';
  os << ']';
}

/// Minimal recursive-descent parser for the geometry subset we emit.
/// Records the first failure with its byte offset so hostile input is
/// rejected with a position, not just "nullopt".
struct Cursor {
  std::string_view s;
  std::size_t pos = 0;
  bool failed = false;
  ErrorCode code = ErrorCode::kParse;
  std::string msg;
  std::size_t err_pos = 0;

  bool fail(ErrorCode c, std::string m, std::size_t at) {
    if (!failed) {
      failed = true;
      code = c;
      msg = std::move(m);
      err_pos = at;
    }
    return false;
  }
  bool fail(ErrorCode c, std::string m) { return fail(c, std::move(m), pos); }

  void ws() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
      ++pos;
  }
  bool eat(char c) {
    ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return fail(ErrorCode::kParse, std::string("expected '") + c + "'");
  }
  bool peek(char c) {
    ws();
    return pos < s.size() && s[pos] == c;
  }
  /// `eat` without recording a failure — for optional separators.
  bool accept(char c) {
    ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool number(double& out) {
    ws();
    const std::size_t start = pos;
    const char* begin = s.data() + pos;
    auto [ptr, ec] = std::from_chars(begin, s.data() + s.size(), out);
    if (ec == std::errc::result_out_of_range)
      return fail(ErrorCode::kNonFinite, "coordinate overflows double", start);
    if (ec != std::errc{})
      return fail(ErrorCode::kParse, "expected number", start);
    pos += static_cast<std::size_t>(ptr - begin);
    // from_chars accepts "inf"/"nan" spellings; a clipper input must not
    // (JSON forbids them anyway, but the parser is the trust boundary).
    if (!std::isfinite(out))
      return fail(ErrorCode::kNonFinite, "non-finite coordinate", start);
    return true;
  }
  bool string_lit(std::string& out) {
    ws();
    if (!eat('"')) return false;
    out.clear();
    while (pos < s.size() && s[pos] != '"') out.push_back(s[pos++]);
    return eat('"');
  }
  /// Skip any JSON value (for members we don't care about).
  bool skip_value() {
    ws();
    if (pos >= s.size())
      return fail(ErrorCode::kParse, "truncated document");
    const char c = s[pos];
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      const std::size_t start = pos;
      ++pos;
      int depth = 1;
      bool in_str = false;
      while (pos < s.size() && depth > 0) {
        const char ch = s[pos++];
        if (in_str) {
          if (ch == '\\') ++pos;
          else if (ch == '"') in_str = false;
        } else if (ch == '"') {
          in_str = true;
        } else if (ch == c) {
          ++depth;
        } else if (ch == close) {
          --depth;
        }
      }
      if (depth != 0)
        return fail(ErrorCode::kParse, "unterminated value", start);
      return true;
    }
    if (c == '"') {
      std::string tmp;
      return string_lit(tmp);
    }
    // number / literal
    while (pos < s.size() && s[pos] != ',' && s[pos] != '}' && s[pos] != ']')
      ++pos;
    return true;
  }
};

bool parse_position(Cursor& c, Point& out) {
  if (!c.eat('[')) return false;
  if (!c.number(out.x)) return false;
  if (!c.eat(',')) return false;
  if (!c.number(out.y)) return false;
  // Optional altitude and beyond: skip extra members.
  while (c.accept(',')) {
    double z;
    if (!c.number(z)) return false;
  }
  return c.eat(']');
}

bool parse_ring(Cursor& c, Contour& ring) {
  const std::size_t start = c.pos;
  if (!c.eat('[')) return false;
  while (true) {
    Point p;
    if (!parse_position(c, p)) return false;
    ring.pts.push_back(p);
    if (c.accept(',')) continue;
    break;
  }
  if (!c.eat(']')) return false;
  if (ring.pts.size() > 1 && ring.pts.front() == ring.pts.back())
    ring.pts.pop_back();
  if (ring.pts.size() < 3)
    return c.fail(ErrorCode::kParse, "ring needs at least 3 distinct vertices",
                  start);
  return true;
}

bool parse_polygon_rings(Cursor& c, PolygonSet& out) {
  if (!c.eat('[')) return false;
  bool first = true;
  while (true) {
    Contour ring;
    if (!parse_ring(c, ring)) return false;
    ring.hole = !first;  // GeoJSON: first ring is the shell
    first = false;
    out.contours.push_back(std::move(ring));
    if (c.accept(',')) continue;
    break;
  }
  return c.eat(']');
}

std::optional<PolygonSet> report(Cursor& c, Error* err) {
  if (err) {
    if (!c.failed) c.fail(ErrorCode::kParse, "malformed GeoJSON");
    *err = Error(c.code, c.msg, c.err_pos);
  }
  return std::nullopt;
}

}  // namespace

std::string to_geojson(const PolygonSet& p) {
  const auto nested = nest_contours(p);
  std::ostringstream os;
  os.precision(17);
  os << R"({"type":"MultiPolygon","coordinates":[)";
  for (std::size_t i = 0; i < nested.size(); ++i) {
    if (i) os << ',';
    os << '[';
    write_ring(os, nested[i].shell);
    for (const auto& h : nested[i].holes) {
      os << ',';
      write_ring(os, h);
    }
    os << ']';
  }
  os << "]}";
  return os.str();
}

std::optional<PolygonSet> from_geojson(std::string_view json, Error* err) {
  obs::ScopedSpan parse_span(obs::global_sink(), "parse.geojson",
                             obs::Cat::kParse);
  parse_span.arg("bytes", static_cast<std::int64_t>(json.size()));
  Cursor c{json};
  if (!c.eat('{')) return report(c, err);
  std::string type;
  bool have_coords = false;
  PolygonSet out;

  // First pass over members: remember type, parse coordinates when the
  // type is already known; otherwise remember where coordinates start.
  std::size_t coords_pos = std::string::npos;
  while (true) {
    std::string key;
    if (!c.string_lit(key)) return report(c, err);
    if (!c.eat(':')) return report(c, err);
    if (key == "type") {
      if (!c.string_lit(type)) return report(c, err);
    } else if (key == "coordinates") {
      coords_pos = c.pos;
      if (!c.skip_value()) return report(c, err);
      have_coords = true;
    } else {
      if (!c.skip_value()) return report(c, err);
    }
    if (c.accept(',')) continue;
    break;
  }
  if (!c.eat('}')) return report(c, err);
  // Reject trailing bytes after the object: a truncated or concatenated
  // document is hostile input, not a geometry.
  c.ws();
  if (c.pos != c.s.size()) {
    c.fail(ErrorCode::kParse, "trailing characters after geometry");
    return report(c, err);
  }
  if (!have_coords) {
    c.fail(ErrorCode::kParse, "missing \"coordinates\" member", 0);
    return report(c, err);
  }

  Cursor coords{json, coords_pos};
  if (type == "Polygon") {
    if (!parse_polygon_rings(coords, out)) return report(coords, err);
    return out;
  }
  if (type == "MultiPolygon") {
    if (!coords.eat('[')) return report(coords, err);
    if (coords.peek(']')) {  // empty MultiPolygon
      coords.accept(']');
      return out;
    }
    while (true) {
      if (!parse_polygon_rings(coords, out)) return report(coords, err);
      if (coords.accept(',')) continue;
      break;
    }
    if (!coords.eat(']')) return report(coords, err);
    return out;
  }
  c.fail(ErrorCode::kParse,
         "unsupported geometry type \"" + type + "\" (Polygon/MultiPolygon)",
         0);
  return report(c, err);
}

}  // namespace psclip::geom
