#include "geom/geojson.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

#include "geom/nesting.hpp"

namespace psclip::geom {
namespace {

void write_ring(std::ostringstream& os, const Contour& c) {
  os << '[';
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (i) os << ',';
    os << '[' << c[i].x << ',' << c[i].y << ']';
  }
  if (!c.empty()) os << ",[" << c[0].x << ',' << c[0].y << ']';
  os << ']';
}

/// Minimal recursive-descent parser for the geometry subset we emit.
struct Cursor {
  std::string_view s;
  std::size_t pos = 0;

  void ws() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
      ++pos;
  }
  bool eat(char c) {
    ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    ws();
    return pos < s.size() && s[pos] == c;
  }
  bool number(double& out) {
    ws();
    const char* begin = s.data() + pos;
    auto [ptr, ec] = std::from_chars(begin, s.data() + s.size(), out);
    if (ec != std::errc{}) return false;
    pos += static_cast<std::size_t>(ptr - begin);
    return true;
  }
  bool string_lit(std::string& out) {
    ws();
    if (!eat('"')) return false;
    out.clear();
    while (pos < s.size() && s[pos] != '"') out.push_back(s[pos++]);
    return eat('"');
  }
  /// Skip any JSON value (for members we don't care about).
  bool skip_value() {
    ws();
    if (pos >= s.size()) return false;
    const char c = s[pos];
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos;
      int depth = 1;
      bool in_str = false;
      while (pos < s.size() && depth > 0) {
        const char ch = s[pos++];
        if (in_str) {
          if (ch == '\\') ++pos;
          else if (ch == '"') in_str = false;
        } else if (ch == '"') {
          in_str = true;
        } else if (ch == c) {
          ++depth;
        } else if (ch == close) {
          --depth;
        }
      }
      return depth == 0;
    }
    if (c == '"') {
      std::string tmp;
      return string_lit(tmp);
    }
    // number / literal
    while (pos < s.size() && s[pos] != ',' && s[pos] != '}' && s[pos] != ']')
      ++pos;
    return true;
  }
};

bool parse_position(Cursor& c, Point& out) {
  if (!c.eat('[')) return false;
  if (!c.number(out.x)) return false;
  if (!c.eat(',')) return false;
  if (!c.number(out.y)) return false;
  // Optional altitude and beyond: skip extra members.
  while (c.eat(',')) {
    double z;
    if (!c.number(z)) return false;
  }
  return c.eat(']');
}

bool parse_ring(Cursor& c, Contour& ring) {
  if (!c.eat('[')) return false;
  while (true) {
    Point p;
    if (!parse_position(c, p)) return false;
    ring.pts.push_back(p);
    if (c.eat(',')) continue;
    break;
  }
  if (!c.eat(']')) return false;
  if (ring.pts.size() > 1 && ring.pts.front() == ring.pts.back())
    ring.pts.pop_back();
  return ring.pts.size() >= 3;
}

bool parse_polygon_rings(Cursor& c, PolygonSet& out) {
  if (!c.eat('[')) return false;
  bool first = true;
  while (true) {
    Contour ring;
    if (!parse_ring(c, ring)) return false;
    ring.hole = !first;  // GeoJSON: first ring is the shell
    first = false;
    out.contours.push_back(std::move(ring));
    if (c.eat(',')) continue;
    break;
  }
  return c.eat(']');
}

}  // namespace

std::string to_geojson(const PolygonSet& p) {
  const auto nested = nest_contours(p);
  std::ostringstream os;
  os.precision(17);
  os << R"({"type":"MultiPolygon","coordinates":[)";
  for (std::size_t i = 0; i < nested.size(); ++i) {
    if (i) os << ',';
    os << '[';
    write_ring(os, nested[i].shell);
    for (const auto& h : nested[i].holes) {
      os << ',';
      write_ring(os, h);
    }
    os << ']';
  }
  os << "]}";
  return os.str();
}

std::optional<PolygonSet> from_geojson(std::string_view json) {
  Cursor c{json};
  if (!c.eat('{')) return std::nullopt;
  std::string type;
  bool have_coords = false;
  PolygonSet out;

  // First pass over members: remember type, parse coordinates when the
  // type is already known; otherwise remember where coordinates start.
  std::size_t coords_pos = std::string::npos;
  while (true) {
    std::string key;
    if (!c.string_lit(key)) return std::nullopt;
    if (!c.eat(':')) return std::nullopt;
    if (key == "type") {
      if (!c.string_lit(type)) return std::nullopt;
    } else if (key == "coordinates") {
      coords_pos = c.pos;
      if (!c.skip_value()) return std::nullopt;
      have_coords = true;
    } else {
      if (!c.skip_value()) return std::nullopt;
    }
    if (c.eat(',')) continue;
    break;
  }
  if (!c.eat('}')) return std::nullopt;
  if (!have_coords) return std::nullopt;

  Cursor coords{json, coords_pos};
  if (type == "Polygon") {
    if (!parse_polygon_rings(coords, out)) return std::nullopt;
    return out;
  }
  if (type == "MultiPolygon") {
    if (!coords.eat('[')) return std::nullopt;
    if (coords.peek(']')) {  // empty MultiPolygon
      coords.eat(']');
      return out;
    }
    while (true) {
      if (!parse_polygon_rings(coords, out)) return std::nullopt;
      if (coords.eat(',')) continue;
      break;
    }
    if (!coords.eat(']')) return std::nullopt;
    return out;
  }
  return std::nullopt;
}

}  // namespace psclip::geom
