#include "geom/perturb.hpp"

#include <cmath>

namespace psclip::geom {
namespace {

/// SplitMix64: small, seedable, high-quality 64-bit mixer.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double unit_double(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

bool has_horizontal_edges(const PolygonSet& p) {
  for (const auto& c : p.contours) {
    const std::size_t n = c.size();
    for (std::size_t i = 0, j = n - 1; i < n; j = i++)
      if (c[j].y == c[i].y) return true;
  }
  return false;
}

int remove_horizontals(Contour& c, double magnitude) {
  int moved = 0;
  const std::size_t n = c.size();
  // Repeated passes: a nudge can in principle create a new horizontal edge
  // with the *next* neighbour, so iterate to a fixpoint (bounded). The
  // perturbation is entirely per-contour — the nudge quantum comes from the
  // contour's own bbox and the salt from (pass, vertex index) — so a
  // contour perturbs identically whether it travels alone (the fused slab
  // partition prepares contours one by one), in a whole input set, or in a
  // replicated multiset copy. The fused path's bit-identity with the
  // materializing path rests on exactly this independence.
  for (int pass = 0; pass < 64; ++pass) {
    bool changed = false;
    const BBox cb = bounds(c);
    const double step =
        std::fmax(cb.height(), 1.0) * std::fmax(magnitude, 1e-15);
    for (std::size_t i = 1; i <= n; ++i) {
      Point& prev = c[i - 1];
      Point& cur = c[i % n];
      // Near-horizontal edges (|dy| below the nudge quantum, typically
      // floating-point noise in upstream intersection points) are as
      // degenerate for the sweep as exactly horizontal ones: their
      // slope explodes and the scanbeam between their endpoints is
      // thinner than the arithmetic can resolve. Perturb both kinds.
      if (std::fabs(prev.y - cur.y) < step) {
        cur.y = prev.y;
        // Deterministic per (pass, vertex-in-contour) so that the same
        // contour perturbs identically regardless of which polygon set
        // it travels in (the multiset clipper's duplicate elimination
        // relies on replicated pairs producing identical output).
        const int salt =
            1 + static_cast<int>((static_cast<std::size_t>(pass) * 7 +
                                  i * 13) %
                                 17);
        cur.y += step * static_cast<double>(salt);
        ++moved;
        changed = true;
      }
    }
    if (!changed) return moved;
  }
  return moved;
}

int remove_horizontals(PolygonSet& p, double magnitude) {
  // A converged contour stays converged (further passes are no-ops), so
  // iterating each contour to its own fixpoint is equivalent to the old
  // whole-set pass loop — each contour sees the same pass sequence either
  // way.
  int moved = 0;
  for (auto& c : p.contours) moved += remove_horizontals(c, magnitude);
  return moved;
}

void jitter(PolygonSet& p, double magnitude, std::uint64_t seed) {
  std::uint64_t state = seed * 0x2545f4914f6cdd1dULL + 1;
  for (auto& c : p.contours) {
    for (auto& pt : c.pts) {
      pt.x += (unit_double(state) - 0.5) * 2.0 * magnitude;
      pt.y += (unit_double(state) - 0.5) * 2.0 * magnitude;
    }
  }
}

}  // namespace psclip::geom
