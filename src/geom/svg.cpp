#include "geom/svg.hpp"

#include <fstream>
#include <sstream>

namespace psclip::geom {

void SvgWriter::add_layer(const PolygonSet& p, const std::string& fill,
                          const std::string& stroke, double fill_opacity) {
  layers_.push_back({p, fill, stroke, fill_opacity});
}

std::string SvgWriter::str() const {
  BBox bb;
  for (const auto& l : layers_) bb.expand(bounds(l.polys));
  if (bb.empty()) bb = {0, 0, 1, 1};
  const double pad = 0.02 * std::max(bb.width(), bb.height());
  bb.xmin -= pad;
  bb.ymin -= pad;
  bb.xmax += pad;
  bb.ymax += pad;
  const double scale = width_ / std::max(bb.width(), 1e-30);
  const int height =
      static_cast<int>(bb.height() * scale) + 1;

  std::ostringstream os;
  os.precision(8);
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
     << "\" height=\"" << height << "\">\n";
  for (const auto& l : layers_) {
    os << "  <path fill-rule=\"evenodd\" fill=\"" << l.fill
       << "\" fill-opacity=\"" << l.opacity << "\" stroke=\"" << l.stroke
       << "\" stroke-width=\"1\" d=\"";
    for (const auto& c : l.polys.contours) {
      for (std::size_t i = 0; i < c.size(); ++i) {
        const double x = (c[i].x - bb.xmin) * scale;
        const double y = (bb.ymax - c[i].y) * scale;  // flip y for screen
        os << (i == 0 ? 'M' : 'L') << x << ' ' << y << ' ';
      }
      if (!c.empty()) os << "Z ";
    }
    os << "\"/>\n";
  }
  os << "</svg>\n";
  return os.str();
}

bool SvgWriter::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << str();
  return static_cast<bool>(f);
}

}  // namespace psclip::geom
