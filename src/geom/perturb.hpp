#pragma once

#include <cstdint>

#include "geom/polygon.hpp"

namespace psclip::geom {

/// Remove horizontal edges by perturbing vertex y-coordinates, implementing
/// the preprocessing assumption of the paper (§III-C): "if horizontal edges
/// are present then ... the edges are preprocessed by slightly perturbing
/// the vertices to make them non-horizontal."
///
/// `magnitude` is the per-step nudge relative to the polygon's height
/// (default a few ULP-scale fractions). The perturbation is deterministic.
/// Returns the number of vertices moved.
int remove_horizontals(PolygonSet& p, double magnitude = 1e-9);

/// Per-contour form. The nudge quantum (contour bbox height) and the salt
/// schedule are both per-contour quantities, so perturbing a contour alone
/// is bit-identical to perturbing it as part of any set — the fused slab
/// partition prepares contours one at a time and relies on this.
int remove_horizontals(Contour& c, double magnitude = 1e-9);

/// Deterministic pseudo-random jitter of all vertices by up to `magnitude`
/// (absolute units), used to put degenerate datasets into general position
/// before clipping. The same seed always produces the same jitter.
void jitter(PolygonSet& p, double magnitude, std::uint64_t seed);

/// True if any edge of `p` is exactly horizontal.
bool has_horizontal_edges(const PolygonSet& p);

}  // namespace psclip::geom
