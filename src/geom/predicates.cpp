// Adaptive-precision orientation predicate, after Jonathan Shewchuk's
// "Adaptive Precision Floating-Point Arithmetic and Fast Robust Geometric
// Predicates" (1997). Implements the two-stage orient2d: a filtered double
// evaluation, then exact expansion arithmetic when the filter cannot decide.

#include "geom/predicates.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace psclip::geom {
namespace {

// Machine epsilon related constants, computed once. `splitter` is used by
// two_product; error bounds follow Shewchuk's derivation.
struct Constants {
  double epsilon;
  double splitter;
  double ccwerrboundA, ccwerrboundB, ccwerrboundC, resulterrbound;
  Constants() {
    double half = 0.5;
    epsilon = 1.0;
    splitter = 1.0;
    bool every_other = true;
    double check = 1.0, lastcheck;
    do {
      lastcheck = check;
      epsilon *= half;
      if (every_other) splitter *= 2.0;
      every_other = !every_other;
      check = 1.0 + epsilon;
    } while (check != 1.0 && check != lastcheck);
    splitter += 1.0;
    resulterrbound = (3.0 + 8.0 * epsilon) * epsilon;
    ccwerrboundA = (3.0 + 16.0 * epsilon) * epsilon;
    ccwerrboundB = (2.0 + 12.0 * epsilon) * epsilon;
    ccwerrboundC = (9.0 + 64.0 * epsilon) * epsilon * epsilon;
  }
};
const Constants kC;

inline void fast_two_sum(double a, double b, double& x, double& y) {
  x = a + b;
  double bvirt = x - a;
  y = b - bvirt;
}

inline void two_sum(double a, double b, double& x, double& y) {
  x = a + b;
  double bvirt = x - a;
  double avirt = x - bvirt;
  double bround = b - bvirt;
  double around = a - avirt;
  y = around + bround;
}

inline void two_diff(double a, double b, double& x, double& y) {
  x = a - b;
  double bvirt = a - x;
  double avirt = x + bvirt;
  double bround = bvirt - b;
  double around = a - avirt;
  y = around + bround;
}

inline void split(double a, double& hi, double& lo) {
  double c = kC.splitter * a;
  double abig = c - a;
  hi = c - abig;
  lo = a - hi;
}

inline void two_product(double a, double b, double& x, double& y) {
  x = a * b;
  double ahi, alo, bhi, blo;
  split(a, ahi, alo);
  split(b, bhi, blo);
  double err1 = x - (ahi * bhi);
  double err2 = err1 - (alo * bhi);
  double err3 = err2 - (ahi * blo);
  y = (alo * blo) - err3;
}

// Sum two expansions with zero elimination; result length returned.
int fast_expansion_sum_zeroelim(int elen, const double* e, int flen,
                                const double* f, double* h) {
  double Q, Qnew, hh;
  int eindex = 0, findex = 0, hindex = 0;
  double enow = e[0], fnow = f[0];
  if ((fnow > enow) == (fnow > -enow)) {
    Q = enow;
    enow = e[++eindex];
  } else {
    Q = fnow;
    fnow = f[++findex];
  }
  if (eindex < elen && findex < flen) {
    if ((fnow > enow) == (fnow > -enow)) {
      fast_two_sum(enow, Q, Qnew, hh);
      enow = e[++eindex];
    } else {
      fast_two_sum(fnow, Q, Qnew, hh);
      fnow = f[++findex];
    }
    Q = Qnew;
    if (hh != 0.0) h[hindex++] = hh;
    while (eindex < elen && findex < flen) {
      if ((fnow > enow) == (fnow > -enow)) {
        two_sum(Q, enow, Qnew, hh);
        enow = e[++eindex];
      } else {
        two_sum(Q, fnow, Qnew, hh);
        fnow = f[++findex];
      }
      Q = Qnew;
      if (hh != 0.0) h[hindex++] = hh;
    }
  }
  while (eindex < elen) {
    two_sum(Q, enow, Qnew, hh);
    enow = e[++eindex];
    Q = Qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  while (findex < flen) {
    two_sum(Q, fnow, Qnew, hh);
    fnow = f[++findex];
    Q = Qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  if (Q != 0.0 || hindex == 0) h[hindex++] = Q;
  return hindex;
}

double estimate(int elen, const double* e) {
  double Q = e[0];
  for (int i = 1; i < elen; ++i) Q += e[i];
  return Q;
}

double orient2d_adapt(const Point& pa, const Point& pb, const Point& pc,
                      double detsum) {
  double acx = pa.x - pc.x;
  double bcx = pb.x - pc.x;
  double acy = pa.y - pc.y;
  double bcy = pb.y - pc.y;

  double detleft, detlefttail, detright, detrighttail;
  two_product(acx, bcy, detleft, detlefttail);
  two_product(acy, bcx, detright, detrighttail);

  // B = two_two_diff((detleft, detlefttail), (detright, detrighttail))
  double B[4];
  {
    double _i, _j, _0;
    two_diff(detlefttail, detrighttail, _i, B[0]);
    two_sum(detleft, _i, _j, _0);
    two_diff(_0, detright, _i, B[1]);
    two_sum(_j, _i, B[3], B[2]);
  }

  double det = estimate(4, B);
  double errbound = kC.ccwerrboundB * detsum;
  if (det >= errbound || -det >= errbound) return det;

  double acxtail, bcxtail, acytail, bcytail;
  {
    double x;
    two_diff(pa.x, pc.x, x, acxtail);
    two_diff(pb.x, pc.x, x, bcxtail);
    two_diff(pa.y, pc.y, x, acytail);
    two_diff(pb.y, pc.y, x, bcytail);
  }
  if (acxtail == 0.0 && acytail == 0.0 && bcxtail == 0.0 && bcytail == 0.0)
    return det;

  errbound = kC.ccwerrboundC * detsum + kC.resulterrbound * std::fabs(det);
  det += (acx * bcytail + bcy * acxtail) - (acy * bcxtail + bcx * acytail);
  if (det >= errbound || -det >= errbound) return det;

  auto two_two_diff = [](double a1, double a0, double b1, double b0,
                         double* x) {
    double _i, _j, _0;
    two_diff(a0, b0, _i, x[0]);
    two_sum(a1, _i, _j, _0);
    two_diff(_0, b1, _i, x[1]);
    two_sum(_j, _i, x[3], x[2]);
  };

  double u[4];
  double C1[8], C2[12], D[16];
  double s1, s0, t1, t0;

  two_product(acxtail, bcy, s1, s0);
  two_product(acytail, bcx, t1, t0);
  two_two_diff(s1, s0, t1, t0, u);
  int C1length = fast_expansion_sum_zeroelim(4, B, 4, u, C1);

  two_product(acx, bcytail, s1, s0);
  two_product(acy, bcxtail, t1, t0);
  two_two_diff(s1, s0, t1, t0, u);
  int C2length = fast_expansion_sum_zeroelim(C1length, C1, 4, u, C2);

  two_product(acxtail, bcytail, s1, s0);
  two_product(acytail, bcxtail, t1, t0);
  two_two_diff(s1, s0, t1, t0, u);
  int Dlength = fast_expansion_sum_zeroelim(C2length, C2, 4, u, D);

  return D[Dlength - 1];
}

}  // namespace

double orient2d(const Point& pa, const Point& pb, const Point& pc) {
  double detleft = (pa.x - pc.x) * (pb.y - pc.y);
  double detright = (pa.y - pc.y) * (pb.x - pc.x);
  double det = detleft - detright;
  double detsum;

  if (detleft > 0.0) {
    if (detright <= 0.0) return det;
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det;
    detsum = -detleft - detright;
  } else {
    return det;
  }

  double errbound = kC.ccwerrboundA * detsum;
  if (det >= errbound || -det >= errbound) return det;
  return orient2d_adapt(pa, pb, pc, detsum);
}

int orient2d_sign(const Point& a, const Point& b, const Point& c) {
  double d = orient2d(a, b, c);
  return (d > 0.0) - (d < 0.0);
}

bool on_segment(const Point& a, const Point& b, const Point& p) {
  if (orient2d(a, b, p) != 0.0) return false;
  return std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y);
}

}  // namespace psclip::geom
