#include "geom/wkt.hpp"

#include <cctype>
#include <charconv>
#include <sstream>

namespace psclip::geom {

std::string to_wkt(const PolygonSet& p) {
  if (p.empty()) return "MULTIPOLYGON EMPTY";
  std::ostringstream os;
  os.precision(17);
  os << "MULTIPOLYGON (";
  bool first_c = true;
  for (const auto& c : p.contours) {
    if (!first_c) os << ", ";
    first_c = false;
    os << "((";
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (i) os << ", ";
      os << c[i].x << ' ' << c[i].y;
    }
    // WKT rings repeat the first vertex at the end.
    if (!c.empty()) os << ", " << c[0].x << ' ' << c[0].y;
    os << "))";
  }
  os << ")";
  return os.str();
}

namespace {

struct Cursor {
  std::string_view s;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
      ++pos;
  }
  bool eat(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return pos < s.size() && s[pos] == c;
  }
  bool number(double& out) {
    skip_ws();
    const char* begin = s.data() + pos;
    const char* end = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec != std::errc{}) return false;
    pos += static_cast<std::size_t>(ptr - begin);
    return true;
  }
};

bool parse_ring(Cursor& c, Contour& out) {
  if (!c.eat('(')) return false;
  while (true) {
    double x, y;
    if (!c.number(x) || !c.number(y)) return false;
    out.pts.push_back({x, y});
    if (c.eat(',')) continue;
    break;
  }
  if (!c.eat(')')) return false;
  if (out.pts.size() > 1 && out.pts.front() == out.pts.back())
    out.pts.pop_back();
  return out.pts.size() >= 3;
}

bool parse_polygon_body(Cursor& c, PolygonSet& out) {
  if (!c.eat('(')) return false;
  while (true) {
    Contour ring;
    if (!parse_ring(c, ring)) return false;
    out.contours.push_back(std::move(ring));
    if (c.eat(',')) continue;
    break;
  }
  return c.eat(')');
}

bool match_keyword(Cursor& c, std::string_view kw) {
  c.skip_ws();
  if (c.s.size() - c.pos < kw.size()) return false;
  for (std::size_t i = 0; i < kw.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(c.s[c.pos + i])) != kw[i])
      return false;
  }
  c.pos += kw.size();
  return true;
}

}  // namespace

std::optional<PolygonSet> from_wkt(std::string_view wkt) {
  Cursor c{wkt};
  PolygonSet out;
  if (match_keyword(c, "MULTIPOLYGON")) {
    if (match_keyword(c, "EMPTY")) return out;
    if (!c.eat('(')) return std::nullopt;
    while (true) {
      if (!parse_polygon_body(c, out)) return std::nullopt;
      if (c.eat(',')) continue;
      break;
    }
    if (!c.eat(')')) return std::nullopt;
    return out;
  }
  if (match_keyword(c, "POLYGON")) {
    if (match_keyword(c, "EMPTY")) return out;
    if (!parse_polygon_body(c, out)) return std::nullopt;
    return out;
  }
  return std::nullopt;
}

}  // namespace psclip::geom
