#include "geom/wkt.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>
#include <utility>

#include "obs/trace.hpp"

namespace psclip::geom {

std::string to_wkt(const PolygonSet& p) {
  if (p.empty()) return "MULTIPOLYGON EMPTY";
  std::ostringstream os;
  os.precision(17);
  os << "MULTIPOLYGON (";
  bool first_c = true;
  for (const auto& c : p.contours) {
    if (!first_c) os << ", ";
    first_c = false;
    os << "((";
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (i) os << ", ";
      os << c[i].x << ' ' << c[i].y;
    }
    // WKT rings repeat the first vertex at the end.
    if (!c.empty()) os << ", " << c[0].x << ' ' << c[0].y;
    os << "))";
  }
  os << ")";
  return os.str();
}

namespace {

struct Cursor {
  std::string_view s;
  std::size_t pos = 0;
  // First failure, reported to the caller with its byte offset so hostile
  // or truncated input is rejected with a position, not just "nullopt".
  bool failed = false;
  ErrorCode code = ErrorCode::kParse;
  std::string msg;
  std::size_t err_pos = 0;

  bool fail(ErrorCode c, std::string m, std::size_t at) {
    if (!failed) {
      failed = true;
      code = c;
      msg = std::move(m);
      err_pos = at;
    }
    return false;
  }
  bool fail(ErrorCode c, std::string m) { return fail(c, std::move(m), pos); }

  void skip_ws() {
    while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos])))
      ++pos;
  }
  bool eat(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return fail(ErrorCode::kParse, std::string("expected '") + c + "'");
  }
  bool peek(char c) {
    skip_ws();
    return pos < s.size() && s[pos] == c;
  }
  /// `eat` without recording a failure — for optional separators.
  bool accept(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool number(double& out) {
    skip_ws();
    const std::size_t start = pos;
    const char* begin = s.data() + pos;
    const char* end = s.data() + s.size();
    auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec == std::errc::result_out_of_range)
      return fail(ErrorCode::kNonFinite, "coordinate overflows double", start);
    if (ec != std::errc{})
      return fail(ErrorCode::kParse, "expected number", start);
    pos += static_cast<std::size_t>(ptr - begin);
    // from_chars accepts "inf"/"nan" spellings; a clipper input must not.
    if (!std::isfinite(out))
      return fail(ErrorCode::kNonFinite, "non-finite coordinate", start);
    return true;
  }
};

bool parse_ring(Cursor& c, Contour& out) {
  const std::size_t start = c.pos;
  if (!c.eat('(')) return false;
  while (true) {
    double x, y;
    if (!c.number(x) || !c.number(y)) return false;
    out.pts.push_back({x, y});
    if (c.accept(',')) continue;
    break;
  }
  if (!c.eat(')')) return false;
  if (out.pts.size() > 1 && out.pts.front() == out.pts.back())
    out.pts.pop_back();
  if (out.pts.size() < 3)
    return c.fail(ErrorCode::kParse, "ring needs at least 3 distinct vertices",
                  start);
  return true;
}

bool parse_polygon_body(Cursor& c, PolygonSet& out) {
  if (!c.eat('(')) return false;
  while (true) {
    Contour ring;
    if (!parse_ring(c, ring)) return false;
    out.contours.push_back(std::move(ring));
    if (c.accept(',')) continue;
    break;
  }
  return c.eat(')');
}

bool match_keyword(Cursor& c, std::string_view kw) {
  c.skip_ws();
  if (c.s.size() - c.pos < kw.size()) return false;
  for (std::size_t i = 0; i < kw.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(c.s[c.pos + i])) != kw[i])
      return false;
  }
  c.pos += kw.size();
  return true;
}

std::optional<PolygonSet> report(Cursor& c, Error* err) {
  if (err) {
    if (!c.failed) c.fail(ErrorCode::kParse, "malformed WKT");
    *err = Error(c.code, c.msg, c.err_pos);
  }
  return std::nullopt;
}

/// Success only if nothing but whitespace follows the geometry — trailing
/// bytes mean a truncated/concatenated/hostile document, not a geometry.
std::optional<PolygonSet> finish(Cursor& c, PolygonSet out, Error* err) {
  c.skip_ws();
  if (c.pos != c.s.size()) {
    c.fail(ErrorCode::kParse, "trailing characters after geometry");
    return report(c, err);
  }
  return out;
}

}  // namespace

std::optional<PolygonSet> from_wkt(std::string_view wkt, Error* err) {
  obs::ScopedSpan parse_span(obs::global_sink(), "parse.wkt",
                             obs::Cat::kParse);
  parse_span.arg("bytes", static_cast<std::int64_t>(wkt.size()));
  Cursor c{wkt};
  PolygonSet out;
  if (match_keyword(c, "MULTIPOLYGON")) {
    if (match_keyword(c, "EMPTY")) return finish(c, std::move(out), err);
    if (!c.eat('(')) return report(c, err);
    while (true) {
      if (!parse_polygon_body(c, out)) return report(c, err);
      if (c.accept(',')) continue;
      break;
    }
    if (!c.eat(')')) return report(c, err);
    return finish(c, std::move(out), err);
  }
  if (match_keyword(c, "POLYGON")) {
    if (match_keyword(c, "EMPTY")) return finish(c, std::move(out), err);
    if (!parse_polygon_body(c, out)) return report(c, err);
    return finish(c, std::move(out), err);
  }
  c.fail(ErrorCode::kParse, "expected POLYGON or MULTIPOLYGON", 0);
  return report(c, err);
}

}  // namespace psclip::geom
