#pragma once

#include <string>
#include <vector>

#include "geom/polygon.hpp"

namespace psclip::geom {

/// Minimal SVG writer used by the example programs to visualize inputs and
/// clip results. Each layer is drawn as one <path> with the even-odd fill
/// rule, so self-intersecting inputs render exactly as the clippers
/// interpret them.
class SvgWriter {
 public:
  /// `width` is the output pixel width; height follows the data aspect.
  explicit SvgWriter(int width = 800) : width_(width) {}

  /// Add a polygon layer drawn with the given fill/stroke CSS colors.
  void add_layer(const PolygonSet& p, const std::string& fill,
                 const std::string& stroke, double fill_opacity = 0.5);

  /// Render to an SVG document string.
  [[nodiscard]] std::string str() const;

  /// Write the document to a file; returns false on I/O failure.
  bool save(const std::string& path) const;

 private:
  struct Layer {
    PolygonSet polys;
    std::string fill, stroke;
    double opacity;
  };
  int width_;
  std::vector<Layer> layers_;
};

}  // namespace psclip::geom
