#include "geom/area_oracle.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "geom/intersect.hpp"

namespace psclip::geom {
namespace {

struct TaggedEdge {
  Point lo, hi;   // lo.y < hi.y (horizontal edges are skipped: zero area)
  bool from_clip; // false = subject, true = clip
};

std::vector<TaggedEdge> collect_edges(const PolygonSet& p, bool from_clip,
                                      std::vector<double>& ys) {
  std::vector<TaggedEdge> edges;
  for (const auto& c : p.contours) {
    const std::size_t n = c.size();
    for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
      const Point& a = c[j];
      const Point& b = c[i];
      ys.push_back(a.y);
      if (a.y == b.y) continue;  // horizontal: no area contribution
      TaggedEdge e;
      e.lo = a.y < b.y ? a : b;
      e.hi = a.y < b.y ? b : a;
      e.from_clip = from_clip;
      edges.push_back(e);
    }
  }
  return edges;
}

double sweep_area(const std::vector<TaggedEdge>& edges, std::vector<double> ys,
                  BoolOp op, bool single_input) {
  // Split scanbeams at every pairwise intersection so that within a beam
  // edges are linearly ordered (no crossings inside a beam).
  for (std::size_t i = 0; i < edges.size(); ++i) {
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      const auto xi = segment_intersection(edges[i].lo, edges[i].hi,
                                           edges[j].lo, edges[j].hi);
      if (xi.relation == SegmentRelation::kProper ||
          xi.relation == SegmentRelation::kTouch) {
        ys.push_back(xi.point.y);
      } else if (xi.relation == SegmentRelation::kOverlap) {
        ys.push_back(xi.point.y);
        ys.push_back(xi.point2.y);
      }
    }
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  struct Crossing {
    double x_lo, x_hi;  // x at beam bottom / top
    bool from_clip;
  };

  double total = 0.0;
  std::vector<Crossing> xs;
  for (std::size_t b = 0; b + 1 < ys.size(); ++b) {
    const double y0 = ys[b], y1 = ys[b + 1];
    if (!(y1 > y0)) continue;
    const double ymid = 0.5 * (y0 + y1);
    xs.clear();
    for (const auto& e : edges) {
      if (e.lo.y <= y0 && e.hi.y >= y1) {
        xs.push_back({x_at_y(e.lo, e.hi, y0), x_at_y(e.lo, e.hi, y1),
                      e.from_clip});
      }
    }
    std::sort(xs.begin(), xs.end(), [ymid](const Crossing& a,
                                           const Crossing& c) {
      return 0.5 * (a.x_lo + a.x_hi) < 0.5 * (c.x_lo + c.x_hi);
    });
    bool in_s = false, in_c = false;
    for (std::size_t i = 0; i + 1 <= xs.size(); ++i) {
      if (xs[i].from_clip) in_c = !in_c;
      else in_s = !in_s;
      const bool inside =
          single_input ? in_s : in_result(in_s, in_c, op);
      if (inside && i + 1 < xs.size()) {
        const double w0 = xs[i + 1].x_lo - xs[i].x_lo;
        const double w1 = xs[i + 1].x_hi - xs[i].x_hi;
        total += 0.5 * (w0 + w1) * (y1 - y0);
      }
    }
  }
  return total;
}

}  // namespace

const char* to_string(BoolOp op) {
  switch (op) {
    case BoolOp::kIntersection: return "INT";
    case BoolOp::kUnion: return "UNION";
    case BoolOp::kDifference: return "DIFF";
    case BoolOp::kXor: return "XOR";
  }
  return "?";
}

double boolean_area_oracle(const PolygonSet& subject, const PolygonSet& clip,
                           BoolOp op) {
  std::vector<double> ys;
  auto edges = collect_edges(subject, false, ys);
  auto clip_edges = collect_edges(clip, true, ys);
  edges.insert(edges.end(), clip_edges.begin(), clip_edges.end());
  return sweep_area(edges, std::move(ys), op, /*single_input=*/false);
}

double even_odd_area(const PolygonSet& p) {
  std::vector<double> ys;
  auto edges = collect_edges(p, false, ys);
  return sweep_area(edges, std::move(ys), BoolOp::kUnion,
                    /*single_input=*/true);
}

}  // namespace psclip::geom
