#pragma once

#include "geom/bool_op.hpp"
#include "geom/polygon.hpp"

namespace psclip::geom {

/// Reference implementation: the exact area of `subject op clip` under the
/// even-odd fill rule, computed by trapezoid decomposition WITHOUT building
/// any output polygon. O((n + k) * n) time — intended as a test/bench
/// oracle that is completely independent of every clipper in src/seq and
/// src/core, not for production use.
double boolean_area_oracle(const PolygonSet& subject, const PolygonSet& clip,
                           BoolOp op);

/// Even-odd area of a single (possibly self-intersecting) polygon set,
/// via the same trapezoid decomposition.
double even_odd_area(const PolygonSet& p);

}  // namespace psclip::geom
