#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "geom/bbox.hpp"
#include "geom/point.hpp"

namespace psclip::geom {

/// One closed chain of vertices. The edge i runs from pts[i] to
/// pts[(i+1) % size]; the closing edge is implicit (the first vertex is not
/// repeated at the end). Contours may be concave and may self-intersect;
/// the clipping operators interpret regions with the even-odd fill rule,
/// matching the paper's parity-based formulation (Lemma 3).
struct Contour {
  std::vector<Point> pts;
  /// Set on *output* contours that bound a hole of the result region.
  /// Ignored on inputs (even-odd fill makes explicit hole flags redundant).
  bool hole = false;

  [[nodiscard]] std::size_t size() const { return pts.size(); }
  [[nodiscard]] bool empty() const { return pts.empty(); }
  Point& operator[](std::size_t i) { return pts[i]; }
  const Point& operator[](std::size_t i) const { return pts[i]; }
};

/// A polygon in the general sense of the paper: zero or more contours, with
/// region membership defined by even-odd parity over all contours. This also
/// models the paper's "two sets of input polygons" case (§IV): a set of
/// polygons is simply a PolygonSet with many contours.
struct PolygonSet {
  std::vector<Contour> contours;

  [[nodiscard]] bool empty() const { return contours.empty(); }
  [[nodiscard]] std::size_t num_contours() const { return contours.size(); }
  /// Total number of vertices (== number of edges) across all contours.
  [[nodiscard]] std::size_t num_vertices() const;

  void add(Contour c) { contours.push_back(std::move(c)); }
  void add(std::vector<Point> ring, bool hole = false) {
    contours.push_back(Contour{std::move(ring), hole});
  }
};

/// Shoelace signed area of one contour (positive = counter-clockwise).
double signed_area(const Contour& c);

/// Sum of contour signed areas. For clipper *output* (disjoint correctly
/// oriented contours, holes clockwise) this equals the region area.
double signed_area(const PolygonSet& p);

/// Absolute value of signed_area.
double area(const PolygonSet& p);

/// Bounding box of a contour / polygon set (empty box if no vertices).
BBox bounds(const Contour& c);
BBox bounds(const PolygonSet& p);

/// Per-contour bounding boxes, computed in one pass: out[i] == bounds of
/// contour i. Slab partitioning caches this so each contour's vertices are
/// touched once, instead of once per slab that tests the contour.
std::vector<BBox> contour_bounds(const PolygonSet& p);

/// Reverse vertex order of a contour in place (flips orientation).
void reverse(Contour& c);

/// Make a rectangle contour (counter-clockwise).
Contour make_rect(double xmin, double ymin, double xmax, double ymax);

/// Make a PolygonSet holding a single ring.
PolygonSet make_polygon(std::vector<Point> ring);

/// Uniform affine transform: p -> scale * p + offset, applied to all
/// vertices.
PolygonSet transformed(const PolygonSet& p, double scale, Point offset);

/// Drop contours with fewer than 3 vertices and collapse consecutive
/// duplicate vertices; returns the cleaned polygon.
PolygonSet cleaned(const PolygonSet& p, double eps = 0.0);

/// Per-contour form of cleaned(): removes consecutive (and closing)
/// duplicate vertices of one contour. May return a contour with fewer than
/// 3 vertices — cleaned() drops those from the set; callers operating
/// contour-by-contour (the fused slab partition) must apply the same skip
/// themselves to stay bit-identical with the set pipeline.
Contour cleaned_contour(const Contour& c, double eps = 0.0);

/// True when every coordinate of every vertex is finite (no NaN/Inf). The
/// slab guards post-check clipper output with this; the parsers and
/// geom::sanitize() use it to keep hostile coordinates out of the clippers.
bool is_finite(const Contour& c);
bool is_finite(const PolygonSet& p);

/// Human-readable one-line summary ("3 contours, 1204 vertices, area=...").
std::string describe(const PolygonSet& p);

}  // namespace psclip::geom
