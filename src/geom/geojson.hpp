#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "error.hpp"
#include "geom/polygon.hpp"

namespace psclip::geom {

/// Serialize a polygon set as a GeoJSON MultiPolygon geometry. Contours
/// are first grouped into shell+holes polygons (see nesting.hpp), so the
/// output follows the GeoJSON winding convention (shells counter-
/// clockwise, holes clockwise, first position repeated at the end).
std::string to_geojson(const PolygonSet& p);

/// Parse a GeoJSON `Polygon` or `MultiPolygon` geometry object (the
/// subset used in GIS polygon layers — no Feature wrapper, no foreign
/// members required). All rings become contours; hole rings keep their
/// `hole` flag.
///
/// Hardened against hostile input: non-finite coordinates (including
/// "inf"/"nan" spellings and values that overflow double), truncated or
/// concatenated documents, rings with fewer than 3 distinct vertices, and
/// unknown geometry types are rejected — a successful parse never hands
/// the clippers a non-finite vertex. Returns nullopt on malformed input;
/// when `err` is non-null it receives a psclip::Error whose offset() is
/// the byte position of the first problem (kParse for syntax, kNonFinite
/// for coordinate problems).
std::optional<PolygonSet> from_geojson(std::string_view json,
                                       Error* err = nullptr);

}  // namespace psclip::geom
