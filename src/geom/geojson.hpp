#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "geom/polygon.hpp"

namespace psclip::geom {

/// Serialize a polygon set as a GeoJSON MultiPolygon geometry. Contours
/// are first grouped into shell+holes polygons (see nesting.hpp), so the
/// output follows the GeoJSON winding convention (shells counter-
/// clockwise, holes clockwise, first position repeated at the end).
std::string to_geojson(const PolygonSet& p);

/// Parse a GeoJSON `Polygon` or `MultiPolygon` geometry object (the
/// subset used in GIS polygon layers — no Feature wrapper, no foreign
/// members required). All rings become contours; hole rings keep their
/// `hole` flag. Returns nullopt on malformed input.
std::optional<PolygonSet> from_geojson(std::string_view json);

}  // namespace psclip::geom
