#include "geom/sanitize.hpp"

#include <cmath>
#include <utility>

namespace psclip::geom {

PolygonSet sanitize(const PolygonSet& p,
                    std::vector<ValidationIssue>* issues) {
  using Kind = ValidationIssue::Kind;
  PolygonSet out;
  out.contours.reserve(p.num_contours());
  for (std::size_t ci = 0; ci < p.contours.size(); ++ci) {
    const Contour& c = p.contours[ci];
    Contour nc;
    nc.hole = c.hole;
    nc.pts.reserve(c.size());
    for (std::size_t vi = 0; vi < c.size(); ++vi) {
      const Point& pt = c[vi];
      if (!std::isfinite(pt.x) || !std::isfinite(pt.y)) {
        if (issues) issues->push_back({Kind::kNonFiniteVertex, ci, vi, 0, ""});
        continue;
      }
      if (!nc.pts.empty() && nc.pts.back() == pt) {
        if (issues) issues->push_back({Kind::kDuplicateVertex, ci, vi, 0, ""});
        continue;
      }
      nc.pts.push_back(pt);
    }
    // The closing edge is implicit: a trailing vertex equal to the first is
    // the same defect as a consecutive duplicate.
    while (nc.pts.size() > 1 && nc.pts.back() == nc.pts.front()) {
      if (issues)
        issues->push_back({Kind::kDuplicateVertex, ci, nc.pts.size() - 1, 0,
                           "duplicates the first vertex"});
      nc.pts.pop_back();
    }
    if (nc.pts.size() < 3) {
      if (issues) issues->push_back({Kind::kTooFewVertices, ci, 0, 0, ""});
      continue;
    }
    out.contours.push_back(std::move(nc));
  }
  return out;
}

}  // namespace psclip::geom
