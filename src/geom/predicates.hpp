#pragma once

#include "geom/point.hpp"

namespace psclip::geom {

/// Robust orientation test (Shewchuk-style adaptive precision).
///
/// Returns a value whose *sign* is exact:
///   > 0  if a, b, c make a counter-clockwise turn,
///   < 0  if clockwise,
///   = 0  if exactly collinear.
///
/// The fast path is a plain double determinant guarded by a static error
/// bound; only near-degenerate inputs fall through to exact expansion
/// arithmetic.
double orient2d(const Point& a, const Point& b, const Point& c);

/// Sign of orient2d as -1 / 0 / +1.
int orient2d_sign(const Point& a, const Point& b, const Point& c);

/// True if point p lies strictly to the left of the directed line a -> b.
inline bool left_of(const Point& a, const Point& b, const Point& p) {
  return orient2d(a, b, p) > 0.0;
}

/// True if p lies on the closed segment [a, b] (collinear and within range).
bool on_segment(const Point& a, const Point& b, const Point& p);

}  // namespace psclip::geom
