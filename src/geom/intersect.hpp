#pragma once

#include <optional>

#include "geom/point.hpp"

namespace psclip::geom {

/// Classification of how two closed segments meet.
enum class SegmentRelation {
  kDisjoint,   ///< no common point
  kProper,     ///< a single interior-interior crossing
  kTouch,      ///< a single common point involving an endpoint
  kOverlap,    ///< collinear with a shared sub-segment
};

/// Result of a segment/segment intersection query.
struct SegmentIntersection {
  SegmentRelation relation = SegmentRelation::kDisjoint;
  /// Intersection point for kProper / kTouch; first overlap endpoint for
  /// kOverlap (second in `point2`).
  Point point{};
  Point point2{};
};

/// Robustly classify the intersection of segments [a1,a2] and [b1,b2] and
/// compute the intersection point(s). Classification uses exact orientation
/// predicates; the returned coordinates are the usual double-precision
/// parametric evaluation.
SegmentIntersection segment_intersection(const Point& a1, const Point& a2,
                                         const Point& b1, const Point& b2);

/// True if the two closed segments share at least one point.
bool segments_intersect(const Point& a1, const Point& a2, const Point& b1,
                        const Point& b2);

/// Intersection point of the two *lines* through (a1,a2) and (b1,b2).
/// Precondition: the lines are not parallel (caller has established a
/// crossing, e.g. from an inversion in the scanbeam order).
Point line_intersection(const Point& a1, const Point& a2, const Point& b1,
                        const Point& b2);

/// x-coordinate of the segment (p, q) at height y, where p.y != q.y.
inline double x_at_y(const Point& p, const Point& q, double y) {
  return p.x + (q.x - p.x) * ((y - p.y) / (q.y - p.y));
}

}  // namespace psclip::geom
