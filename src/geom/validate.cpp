#include "geom/validate.hpp"

#include <cmath>
#include <sstream>

#include "geom/intersect.hpp"

namespace psclip::geom {

const char* to_string(ValidationIssue::Kind k) {
  switch (k) {
    case ValidationIssue::Kind::kTooFewVertices: return "too-few-vertices";
    case ValidationIssue::Kind::kDuplicateVertex: return "duplicate-vertex";
    case ValidationIssue::Kind::kSelfIntersection: return "self-intersection";
    case ValidationIssue::Kind::kCrossContourCrossing:
      return "cross-contour-crossing";
    case ValidationIssue::Kind::kSpike: return "spike";
    case ValidationIssue::Kind::kZeroArea: return "zero-area";
    case ValidationIssue::Kind::kHoleOrientation: return "hole-orientation";
    case ValidationIssue::Kind::kNonFiniteVertex: return "non-finite-vertex";
  }
  return "?";
}

std::vector<ValidationIssue> validate(const PolygonSet& p,
                                      double zero_area_eps) {
  std::vector<ValidationIssue> issues;
  using Kind = ValidationIssue::Kind;

  for (std::size_t ci = 0; ci < p.contours.size(); ++ci) {
    const Contour& c = p.contours[ci];
    const std::size_t n = c.size();
    // Non-finite coordinates poison every other predicate (NaN compares
    // false everywhere), so report and skip the rest for this contour.
    if (!is_finite(c)) {
      std::size_t v = 0;
      while (v < n && std::isfinite(c[v].x) && std::isfinite(c[v].y)) ++v;
      issues.push_back({Kind::kNonFiniteVertex, ci, v, 0, ""});
      continue;
    }
    if (n < 3) {
      issues.push_back({Kind::kTooFewVertices, ci, 0, 0, ""});
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (c[i] == c[(i + 1) % n])
        issues.push_back({Kind::kDuplicateVertex, ci, i, 0, ""});
      if (n >= 3 && c[(i + n - 1) % n] == c[(i + 1) % n])
        issues.push_back({Kind::kSpike, ci, i, 0, ""});
    }
    const double sa = signed_area(c);
    if (std::fabs(sa) <= zero_area_eps)
      issues.push_back({Kind::kZeroArea, ci, 0, 0, ""});
    if (c.hole ? sa > 0.0 : sa < 0.0)
      issues.push_back({Kind::kHoleOrientation, ci, 0, 0, ""});

    // Self-intersections (proper crossings only: touching at shared
    // vertices is legitimate for clipper output at pinch points).
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const auto x = segment_intersection(c[i], c[(i + 1) % n], c[j],
                                            c[(j + 1) % n]);
        if (x.relation == SegmentRelation::kProper) {
          std::ostringstream os;
          os << "edges " << i << " and " << j << " cross at (" << x.point.x
             << ", " << x.point.y << ")";
          issues.push_back({Kind::kSelfIntersection, ci, i, 0, os.str()});
        }
      }
    }
  }

  // Cross-contour proper crossings (contours may nest or touch, never
  // cross).
  for (std::size_t a = 0; a < p.contours.size(); ++a) {
    for (std::size_t b = a + 1; b < p.contours.size(); ++b) {
      const Contour& ca = p.contours[a];
      const Contour& cb = p.contours[b];
      if (ca.size() < 3 || cb.size() < 3) continue;
      if (!bounds(ca).overlaps(bounds(cb))) continue;
      for (std::size_t i = 0; i < ca.size(); ++i) {
        for (std::size_t j = 0; j < cb.size(); ++j) {
          const auto x = segment_intersection(
              ca[i], ca[(i + 1) % ca.size()], cb[j],
              cb[(j + 1) % cb.size()]);
          if (x.relation == SegmentRelation::kProper)
            issues.push_back(
                {ValidationIssue::Kind::kCrossContourCrossing, a, i, b, ""});
        }
      }
    }
  }
  return issues;
}

bool is_valid_output(const PolygonSet& p) { return validate(p).empty(); }

std::string validation_report(const PolygonSet& p) {
  std::ostringstream os;
  for (const auto& issue : validate(p)) {
    os << to_string(issue.kind) << " contour=" << issue.contour
       << " vertex=" << issue.vertex;
    if (issue.kind == ValidationIssue::Kind::kCrossContourCrossing)
      os << " other=" << issue.contour2;
    if (!issue.detail.empty()) os << " (" << issue.detail << ")";
    os << '\n';
  }
  return os.str();
}

}  // namespace psclip::geom
