#include "geom/polygon.hpp"

#include <cmath>
#include <sstream>

#include "geom/eps.hpp"

namespace psclip::geom {

std::size_t PolygonSet::num_vertices() const {
  std::size_t n = 0;
  for (const auto& c : contours) n += c.size();
  return n;
}

double signed_area(const Contour& c) {
  const std::size_t n = c.size();
  if (n < 3) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    s += (c[j].x + c[i].x) * (c[i].y - c[j].y);
  }
  return 0.5 * s;
}

double signed_area(const PolygonSet& p) {
  double s = 0.0;
  for (const auto& c : p.contours) s += signed_area(c);
  return s;
}

double area(const PolygonSet& p) { return std::fabs(signed_area(p)); }

BBox bounds(const Contour& c) {
  BBox b;
  for (const auto& pt : c.pts) b.expand(pt);
  return b;
}

BBox bounds(const PolygonSet& p) {
  BBox b;
  for (const auto& c : p.contours) b.expand(bounds(c));
  return b;
}

std::vector<BBox> contour_bounds(const PolygonSet& p) {
  std::vector<BBox> out;
  out.reserve(p.num_contours());
  for (const auto& c : p.contours) out.push_back(bounds(c));
  return out;
}

void reverse(Contour& c) {
  std::reverse(c.pts.begin(), c.pts.end());
}

Contour make_rect(double xmin, double ymin, double xmax, double ymax) {
  return Contour{{{xmin, ymin}, {xmax, ymin}, {xmax, ymax}, {xmin, ymax}},
                 false};
}

PolygonSet make_polygon(std::vector<Point> ring) {
  PolygonSet p;
  p.add(std::move(ring));
  return p;
}

PolygonSet transformed(const PolygonSet& p, double scale, Point offset) {
  PolygonSet out = p;
  for (auto& c : out.contours)
    for (auto& pt : c.pts) pt = scale * pt + offset;
  return out;
}

Contour cleaned_contour(const Contour& c, double eps) {
  Contour nc;
  nc.hole = c.hole;
  for (const auto& pt : c.pts) {
    if (!nc.pts.empty() && nearly_equal(nc.pts.back().x, pt.x, eps) &&
        nearly_equal(nc.pts.back().y, pt.y, eps))
      continue;
    nc.pts.push_back(pt);
  }
  while (nc.pts.size() > 1 &&
         nearly_equal(nc.pts.front().x, nc.pts.back().x, eps) &&
         nearly_equal(nc.pts.front().y, nc.pts.back().y, eps))
    nc.pts.pop_back();
  return nc;
}

PolygonSet cleaned(const PolygonSet& p, double eps) {
  PolygonSet out;
  for (const auto& c : p.contours) {
    Contour nc = cleaned_contour(c, eps);
    if (nc.pts.size() >= 3) out.contours.push_back(std::move(nc));
  }
  return out;
}

bool is_finite(const Contour& c) {
  for (const auto& pt : c.pts)
    if (!std::isfinite(pt.x) || !std::isfinite(pt.y)) return false;
  return true;
}

bool is_finite(const PolygonSet& p) {
  for (const auto& c : p.contours)
    if (!is_finite(c)) return false;
  return true;
}

std::string describe(const PolygonSet& p) {
  std::ostringstream os;
  os << p.num_contours() << " contours, " << p.num_vertices()
     << " vertices, signed_area=" << signed_area(p);
  return os.str();
}

}  // namespace psclip::geom
