#include "obs/recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace psclip::obs {

std::int64_t TraceRecorder::Span::arg(const char* key,
                                      std::int64_t missing) const {
  for (std::uint8_t i = 0; i < nargs; ++i)
    if (std::strcmp(args[i].first, key) == 0) return args[i].second;
  return missing;
}

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder::ThreadBuf& TraceRecorder::buf() {
  ThreadBuf& b = bufs_.local();
  if (!b.tid_assigned) {
    b.tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    b.tid_assigned = true;
  }
  return b;
}

std::uint64_t TraceRecorder::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceRecorder::Span* TraceRecorder::find_open(ThreadBuf& b, std::uint64_t id) {
  for (auto it = b.open.rbegin(); it != b.open.rend(); ++it)
    if (it->id == id) return &*it;
  return nullptr;
}

SpanId TraceRecorder::begin_span(const char* name, Cat cat, SpanId parent) {
  ThreadBuf& b = buf();
  if (b.done.size() + b.open.size() >= kMaxSpansPerThread) {
    ++b.dropped;
    return SpanId{0};
  }
  Span s;
  s.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  // Explicit parent wins (cross-thread lineage, e.g. slab → clip phase);
  // otherwise nest under the calling thread's innermost open span.
  s.parent = parent.v ? parent.v : (b.open.empty() ? 0 : b.open.back().id);
  s.name = name;
  s.cat = cat;
  s.tid = b.tid;
  s.t_start_ns = now_ns();
  b.open.push_back(s);
  return SpanId{s.id};
}

void TraceRecorder::end_span(SpanId id) {
  if (!id.v) return;  // span was dropped at begin
  ThreadBuf& b = buf();
  const std::uint64_t t = now_ns();
  // RAII discipline makes the target the innermost open span; tolerate
  // out-of-order closes by searching downward.
  for (auto it = b.open.rbegin(); it != b.open.rend(); ++it) {
    if (it->id != id.v) continue;
    it->t_end_ns = t;
    b.done.push_back(*it);
    b.open.erase(std::next(it).base());
    return;
  }
}

void TraceRecorder::span_arg(SpanId id, const char* key, std::int64_t value) {
  if (!id.v) return;
  ThreadBuf& b = buf();
  Span* s = find_open(b, id.v);
  if (!s || s->nargs >= kMaxArgs) return;
  s->args[s->nargs++] = {key, value};
}

void TraceRecorder::add_counter(const char* name, std::int64_t delta) {
  metrics_.counter(name).add(delta);
}

void TraceRecorder::observe(const char* histogram, double seconds) {
  metrics_.histogram(histogram).observe(seconds);
}

void TraceRecorder::set_gauge(const char* name, std::int64_t value) {
  metrics_.gauge(name).set(value);
}

std::vector<TraceRecorder::Span> TraceRecorder::spans() const {
  std::vector<Span> all;
  bufs_.for_each([&](const ThreadBuf& b) {
    all.insert(all.end(), b.done.begin(), b.done.end());
  });
  std::sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.t_start_ns != b.t_start_ns) return a.t_start_ns < b.t_start_ns;
    return a.id < b.id;
  });
  return all;
}

std::uint64_t TraceRecorder::dropped_spans() const {
  std::uint64_t n = 0;
  bufs_.for_each([&](const ThreadBuf& b) { n += b.dropped; });
  return n;
}

std::string TraceRecorder::chrome_trace_json() const {
  const std::vector<Span> all = spans();
  std::string out = "{\"traceEvents\":[";
  char buf_[256];
  bool first = true;
  for (const Span& s : all) {
    std::snprintf(buf_, sizeof buf_,
                  "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,\"args\":{"
                  "\"id\":%llu,\"parent\":%llu",
                  first ? "" : ",", s.name, to_string(s.cat),
                  static_cast<double>(s.t_start_ns) * 1e-3,
                  static_cast<double>(s.t_end_ns - s.t_start_ns) * 1e-3,
                  s.tid, static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent));
    out += buf_;
    for (std::uint8_t i = 0; i < s.nargs; ++i) {
      std::snprintf(buf_, sizeof buf_, ",\"%s\":%lld", s.args[i].first,
                    static_cast<long long>(s.args[i].second));
      out += buf_;
    }
    out += "}}";
    first = false;
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = chrome_trace_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace psclip::obs
