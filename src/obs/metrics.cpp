#include "obs/metrics.hpp"

#include <cstdio>

namespace psclip::obs {

namespace {

std::string fmt_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

double MetricsSnapshot::HistogramRow::quantile(double q) const {
  if (count == 0) return 0.0;
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > target)
      return Histogram::kBounds[std::min(i, Histogram::kBounds.size() - 1)];
  }
  return Histogram::kBounds.back();
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    out += name;
    out += " = ";
    out += std::to_string(v);
    out += "\n";
  }
  for (const auto& [name, v] : gauges) {
    out += name;
    out += " = ";
    out += std::to_string(v);
    out += " (gauge)\n";
  }
  for (const auto& h : histograms) {
    char line[160];
    std::snprintf(line, sizeof line,
                  "%s: count=%llu sum=%.6fs p50<=%.6fs p99<=%.6fs\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  h.sum_seconds, h.quantile(0.50), h.quantile(0.99));
    out += line;
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(v);
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + std::to_string(v);
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& h : histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + h.name + "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum_seconds\": " + fmt_num(h.sum_seconds) + ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(h.buckets[i]);
    }
    out += "]}";
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += "\n}\n";
  return out;
}

Counter& Metrics::counter(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Metrics::gauge(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Metrics::histogram(const std::string& name) {
  std::lock_guard lk(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Metrics::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lk(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.emplace_back(name, c->value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.emplace_back(name, g->value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.sum_seconds = h->sum_seconds();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      row.buckets[i] = h->bucket_count(i);
      row.count += row.buckets[i];
    }
    snap.histograms.push_back(std::move(row));
  }
  return snap;
}

}  // namespace psclip::obs
