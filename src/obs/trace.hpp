#pragma once

#include <cstdint>

namespace psclip::obs {

/// Category of a span — mirrors the pipeline's hierarchy (request → phase →
/// slab → rung) plus the two cross-cutting families (parsing, scheduling).
/// The Chrome exporter writes it as the event's `cat` so traces can be
/// filtered per layer in chrome://tracing.
enum class Cat : std::uint8_t {
  kRequest = 0,  ///< one public-API clip call, end to end
  kPhase,        ///< one algorithm phase (partition / clip / merge / …)
  kSlab,         ///< one slab task of Algorithm 2
  kRung,         ///< one attempt on one degradation-ladder rung
  kParse,        ///< WKT / GeoJSON parsing
  kSchedule,     ///< thread-pool / task-group scheduling sections
};

const char* to_string(Cat c);

/// Opaque span identifier. 0 = "no span" (the null id); real ids are
/// process-unique for the lifetime of the sink that allocated them.
struct SpanId {
  std::uint64_t v = 0;
  explicit operator bool() const { return v != 0; }
};

/// Abstract trace + metrics consumer. Instrumentation sites hold a
/// `TraceSink*`; a null pointer is the null sink and every site guards with
/// one branch, so disabled tracing costs a pointer test and nothing else —
/// no clock reads, no allocation, no virtual dispatch (the same "free when
/// off" discipline as the fault.hpp injection sites).
///
/// Contract for implementations:
///   * begin_span / span_arg / end_span for one span are always called from
///     the same thread (RAII usage), but many threads record concurrently —
///     all five entry points must be thread-safe.
///   * `name` and `key` are static strings (string literals or other
///     pointers that outlive the sink); sinks store the pointer, not a copy.
///   * `parent` may name a span begun on a *different* thread (a slab span's
///     parent is the clip-phase span of the calling thread). A null parent
///     means "infer from the calling thread's innermost open span".
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Open a span. Returns its id (never null for a live sink).
  virtual SpanId begin_span(const char* name, Cat cat, SpanId parent) = 0;
  /// Close a span begun on this thread. Timestamps are taken here.
  virtual void end_span(SpanId id) = 0;
  /// Attach `key = value` to a span begun on this thread and not yet ended.
  virtual void span_arg(SpanId id, const char* key, std::int64_t value) = 0;

  /// Add `delta` to the named monotonic counter.
  virtual void add_counter(const char* name, std::int64_t delta) = 0;
  /// Record one latency observation (seconds) into the named fixed-bucket
  /// histogram.
  virtual void observe(const char* histogram, double seconds) = 0;
  /// Set the named last-value gauge (cache residency, queue depth, ...).
  /// Non-pure with a no-op default so sinks written against the original
  /// five-method contract (tests, external consumers) keep compiling.
  virtual void set_gauge(const char* name, std::int64_t value) {
    (void)name;
    (void)value;
  }
};

/// Process-wide default sink, used by instrumentation sites that have no
/// options struct to ride on (parsers, thread-pool scheduling sections) and
/// by the psclip::clip facade to populate per-call options. Null (tracing
/// off) until set_global_sink installs a recorder; the CLI does that for
/// --trace-out/--metrics. The pointed-to sink must outlive all traced calls.
TraceSink* global_sink();
void set_global_sink(TraceSink* sink);

/// RAII span. With a null sink every member is a no-op behind one branch —
/// cheap enough for hot paths. Movable so instrumented scopes can return it.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceSink* sink, const char* name, Cat cat, SpanId parent = {})
      : sink_(sink) {
    if (sink_) id_ = sink_->begin_span(name, cat, parent);
  }
  ~ScopedSpan() { end(); }

  ScopedSpan(ScopedSpan&& o) noexcept : sink_(o.sink_), id_(o.id_) {
    o.sink_ = nullptr;
  }
  ScopedSpan& operator=(ScopedSpan&& o) noexcept {
    if (this != &o) {
      end();
      sink_ = o.sink_;
      id_ = o.id_;
      o.sink_ = nullptr;
    }
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach an argument (no-op when the sink is null or the span ended).
  void arg(const char* key, std::int64_t value) {
    if (sink_) sink_->span_arg(id_, key, value);
  }

  /// Close the span early (idempotent; the destructor does the same).
  void end() {
    if (sink_) sink_->end_span(id_);
    sink_ = nullptr;
  }

  [[nodiscard]] SpanId id() const { return id_; }

 private:
  TraceSink* sink_ = nullptr;
  SpanId id_;
};

}  // namespace psclip::obs
