#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/worker_local.hpp"

namespace psclip::obs {

/// In-memory TraceSink: spans land in per-thread buffers (the
/// worker_local.hpp pattern — one buffer per recording thread, touched only
/// by its owner, so recording takes no lock and no cross-thread cache
/// traffic), timestamps come from one shared steady_clock epoch, and
/// counters/histograms go to an embedded Metrics registry.
///
/// Recording is wait-free against other recorders (span ids are one relaxed
/// fetch_add); export (spans(), chrome_trace_json(), write_chrome_trace())
/// walks every thread buffer under the registry lock and must run at a
/// quiescent point — after the traced calls return — exactly like
/// WorkerLocal::for_each.
class TraceRecorder final : public TraceSink {
 public:
  static constexpr std::size_t kMaxArgs = 6;
  /// Per-thread completed-span cap; beyond it new spans are counted in
  /// dropped_spans() instead of recorded, bounding a runaway trace.
  static constexpr std::size_t kMaxSpansPerThread = 1u << 20;

  /// One completed span.
  struct Span {
    std::uint64_t id = 0;
    std::uint64_t parent = 0;  ///< 0 = root
    const char* name = nullptr;
    Cat cat = Cat::kRequest;
    std::uint64_t t_start_ns = 0;  ///< since the recorder's epoch
    std::uint64_t t_end_ns = 0;
    std::uint32_t tid = 0;  ///< recorder-assigned recording-thread slot
    std::array<std::pair<const char*, std::int64_t>, kMaxArgs> args{};
    std::uint8_t nargs = 0;

    /// Value of the named arg, or `missing` when absent.
    [[nodiscard]] std::int64_t arg(const char* key,
                                   std::int64_t missing = -1) const;
  };

  TraceRecorder();

  SpanId begin_span(const char* name, Cat cat, SpanId parent) override;
  void end_span(SpanId id) override;
  void span_arg(SpanId id, const char* key, std::int64_t value) override;
  void add_counter(const char* name, std::int64_t delta) override;
  void observe(const char* histogram, double seconds) override;
  void set_gauge(const char* name, std::int64_t value) override;

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  /// All completed spans from all threads, in (tid, start time) order.
  /// Quiescent-point only (see class comment).
  [[nodiscard]] std::vector<Span> spans() const;

  /// Spans discarded because a thread hit kMaxSpansPerThread.
  [[nodiscard]] std::uint64_t dropped_spans() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}, complete "X" events,
  /// microsecond timestamps) — loadable in chrome://tracing / Perfetto.
  /// Span args appear as event args, plus "id" and "parent" for explicit
  /// cross-thread lineage. Quiescent-point only.
  [[nodiscard]] std::string chrome_trace_json() const;
  bool write_chrome_trace(const std::string& path) const;

 private:
  struct ThreadBuf {
    std::vector<Span> done;
    std::vector<Span> open;  ///< stack: innermost span last
    std::uint32_t tid = 0;
    bool tid_assigned = false;
    std::uint64_t dropped = 0;
  };

  ThreadBuf& buf();
  std::uint64_t now_ns() const;
  /// Innermost open span of the calling thread matching `id`, or null.
  static Span* find_open(ThreadBuf& b, std::uint64_t id);

  par::WorkerLocal<ThreadBuf> bufs_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint32_t> next_tid_{0};
  std::chrono::steady_clock::time_point epoch_;
  Metrics metrics_;
};

}  // namespace psclip::obs
