#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace psclip::obs {

/// Monotonic counter. Relaxed atomics: counters are statistics, not
/// synchronization.
class Counter {
 public:
  void add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-value gauge (cache residency, queue depth, in-flight requests).
/// Relaxed atomics, same discipline as Counter: a gauge is a statistic.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket latency histogram. Bucket boundaries are a hard-coded
/// 1-2-5 ladder from 1 µs to 1 s — wide enough for everything from one
/// rect-clip to a whole multi-million-vertex request — so recording is one
/// linear scan over 19 constants plus two relaxed fetch_adds; no allocation,
/// no locks, safe from any thread.
class Histogram {
 public:
  /// Upper bounds (seconds) of each bucket; the last bucket is unbounded.
  static constexpr std::array<double, 19> kBounds = {
      1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3,
      2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 2e-1, 5e-1, 1.0};
  static constexpr std::size_t kBuckets = kBounds.size() + 1;

  void observe(double seconds) {
    std::size_t b = kBuckets - 1;
    for (std::size_t i = 0; i < kBounds.size(); ++i) {
      if (seconds <= kBounds[i]) {
        b = i;
        break;
      }
    }
    counts_[b].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(static_cast<std::int64_t>(seconds * 1e9),
                      std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_count() const {
    std::uint64_t n = 0;
    for (const auto& c : counts_) n += c.load(std::memory_order_relaxed);
    return n;
  }
  [[nodiscard]] double sum_seconds() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::int64_t> sum_ns_{0};
};

/// Point-in-time copy of a Metrics registry, with text and JSON renderers.
struct MetricsSnapshot {
  struct HistogramRow {
    std::string name;
    std::uint64_t count = 0;
    double sum_seconds = 0.0;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};

    /// Upper-bound estimate of the q-quantile (q in [0,1]) from the bucket
    /// counts; returns the bucket's upper bound (last bound for overflow).
    [[nodiscard]] double quantile(double q) const;
  };

  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramRow> histograms;

  /// Human-readable table (one counter or histogram per line).
  [[nodiscard]] std::string to_text() const;
  /// Compact machine-readable object:
  /// {"counters":{...},"histograms":{name:{count,sum_seconds,buckets:[..]}}}
  [[nodiscard]] std::string to_json() const;
};

/// Named-metric registry. Lookup takes a mutex (registration is rare and
/// callers cache the returned reference); recording through the returned
/// Counter&/Histogram& is lock-free. References stay valid for the life of
/// the Metrics object.
class Metrics {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Copy out every metric. Safe to call while other threads record (values
  /// are torn only across metrics, never within one atomic).
  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace psclip::obs
