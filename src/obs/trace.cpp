#include "obs/trace.hpp"

#include <atomic>

namespace psclip::obs {

const char* to_string(Cat c) {
  switch (c) {
    case Cat::kRequest: return "request";
    case Cat::kPhase: return "phase";
    case Cat::kSlab: return "slab";
    case Cat::kRung: return "rung";
    case Cat::kParse: return "parse";
    case Cat::kSchedule: return "schedule";
  }
  return "?";
}

namespace {
std::atomic<TraceSink*> g_sink{nullptr};
}  // namespace

TraceSink* global_sink() { return g_sink.load(std::memory_order_acquire); }

void set_global_sink(TraceSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

}  // namespace psclip::obs
