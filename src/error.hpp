#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace psclip {

/// Error taxonomy for the whole library. Every failure that crosses a
/// module boundary is reported as a psclip::Error carrying one of these
/// codes, so callers can route on the class of failure (reject the
/// request, degrade the slab, shed load) without string-matching messages.
enum class ErrorCode {
  kParse,          ///< malformed/truncated WKT or GeoJSON input
  kNonFinite,      ///< a NaN/Inf/overflowing coordinate was produced or read
  kSlabFailure,    ///< a slab task of Algorithm 2 failed (see Alg2Stats)
  kResource,       ///< allocation or thread-resource exhaustion
  kTaskFailure,    ///< aggregated parallel task failures (TaskGroup/parallel_for)
  kInjected,       ///< deterministic test fault (PSCLIP_FAULT_INJECTION builds)
  kCancelled,        ///< request cancelled via par::CancelToken::cancel()
  kDeadlineExceeded, ///< request deadline expired at a cooperative checkpoint
  kBudgetExceeded,   ///< request memory budget exceeded (par::ResourceBudget)
};

inline const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kNonFinite: return "non-finite-coordinate";
    case ErrorCode::kSlabFailure: return "slab-failure";
    case ErrorCode::kResource: return "resource";
    case ErrorCode::kTaskFailure: return "task-failure";
    case ErrorCode::kInjected: return "injected";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kBudgetExceeded: return "budget-exceeded";
  }
  return "?";
}

/// True for the error classes raised by request governance (cancellation,
/// deadline, budget). The degradation ladder treats these differently from
/// slab-local faults: cancellation/deadline abort the whole request (time
/// lost in one slab is lost globally, retrying cannot help), while budget
/// errors may retry once (a transient hog's spike releases with its
/// attempt) before the slab is reported missing or the request fails.
inline bool is_governance(ErrorCode c) {
  return c == ErrorCode::kCancelled || c == ErrorCode::kDeadlineExceeded ||
         c == ErrorCode::kBudgetExceeded;
}

/// Structured library error: an error code plus, where it applies, the byte
/// offset into the input that triggered it (parsers). Derives from
/// std::runtime_error so call sites that only know std::exception still see
/// a fully formatted message.
class Error : public std::runtime_error {
 public:
  /// Sentinel for "no byte offset applies to this error".
  static constexpr std::size_t kNoOffset = static_cast<std::size_t>(-1);

  Error(ErrorCode code, const std::string& message,
        std::size_t offset = kNoOffset)
      : std::runtime_error(format(code, message, offset)),
        code_(code),
        offset_(offset) {}

  [[nodiscard]] ErrorCode code() const { return code_; }

  /// Byte offset into the offending input, or kNoOffset.
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  static std::string format(ErrorCode code, const std::string& message,
                            std::size_t offset) {
    std::string s = "psclip:";
    s += to_string(code);
    s += ": ";
    s += message;
    if (offset != kNoOffset) {
      s += " (byte ";
      s += std::to_string(offset);
      s += ')';
    }
    return s;
  }

  ErrorCode code_;
  std::size_t offset_;
};

}  // namespace psclip
