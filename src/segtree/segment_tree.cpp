#include "segtree/segment_tree.hpp"

#include <algorithm>
#include <atomic>

namespace psclip::segtree {

SegmentTree::SegmentTree(std::vector<double> breakpoints)
    : breaks_(std::move(breakpoints)) {
  std::sort(breaks_.begin(), breaks_.end());
  breaks_.erase(std::unique(breaks_.begin(), breaks_.end()), breaks_.end());
  m_ = breaks_.size() >= 2 ? breaks_.size() - 1 : 0;
  leaves_ = 1;
  while (leaves_ < std::max<std::size_t>(m_, 1)) leaves_ *= 2;
  cover_.resize(2 * leaves_);
  cover_size_.assign(2 * leaves_, 0);
}

std::size_t SegmentTree::locate(double y) const {
  if (m_ == 0) return 0;
  // First breakpoint strictly greater than y, minus one.
  auto it = std::upper_bound(breaks_.begin(), breaks_.end(), y);
  if (it == breaks_.begin()) return 0;
  std::size_t iv = static_cast<std::size_t>(it - breaks_.begin()) - 1;
  return std::min(iv, m_ - 1);
}

void SegmentTree::canonical_nodes(std::size_t lo, std::size_t hi,
                                  std::vector<std::size_t>& out) const {
  // Iterative bottom-up canonical decomposition over [lo, hi] inclusive.
  std::size_t l = lo + leaves_;
  std::size_t r = hi + leaves_ + 1;  // exclusive
  while (l < r) {
    if (l & 1) out.push_back(l++);
    if (r & 1) out.push_back(--r);
    l >>= 1;
    r >>= 1;
  }
}

void SegmentTree::insert(std::int32_t id, std::size_t lo_iv,
                         std::size_t hi_iv) {
  if (m_ == 0 || lo_iv > hi_iv) return;
  hi_iv = std::min(hi_iv, m_ - 1);
  std::vector<std::size_t> nodes;
  canonical_nodes(lo_iv, hi_iv, nodes);
  for (std::size_t v : nodes) {
    cover_[v].push_back(id);
    ++cover_size_[v];
  }
}

void SegmentTree::insert_range(std::int32_t id, double ylo, double yhi) {
  if (m_ == 0) return;
  if (yhi < ylo) std::swap(ylo, yhi);
  if (yhi <= breaks_.front() || ylo >= breaks_.back()) return;
  // First covered interval: the one containing ylo (an item overlapping a
  // partial interval still spans the scanbeam slice it intersects; for
  // vertex-aligned polygon edges ylo is itself a breakpoint).
  const std::size_t lo_iv = locate(std::max(ylo, breaks_.front()));
  // Last covered interval: the last one starting strictly below yhi.
  auto hi_it = std::lower_bound(breaks_.begin(), breaks_.end(), yhi);
  const std::size_t hi_excl =
      static_cast<std::size_t>(hi_it - breaks_.begin());
  if (hi_excl == 0) return;
  const std::size_t hi_iv = std::min(hi_excl - 1, m_ - 1);
  if (lo_iv > hi_iv) return;
  insert(id, lo_iv, hi_iv);
}

SegmentTree SegmentTree::build(
    par::ThreadPool& pool, std::vector<double> breakpoints,
    std::span<const std::pair<double, double>> ranges) {
  SegmentTree t(std::move(breakpoints));
  if (t.m_ == 0) return t;

  // Phase 1: per-node counts via atomics (the PRAM "count" phase).
  const std::size_t num_nodes = 2 * t.leaves_;
  std::vector<std::atomic<std::int64_t>> counts(num_nodes);
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);

  auto canonical_of = [&t](double ylo, double yhi,
                           std::vector<std::size_t>& nodes) {
    nodes.clear();
    if (yhi < ylo) std::swap(ylo, yhi);
    if (yhi <= t.breaks_.front() || ylo >= t.breaks_.back()) return;
    const std::size_t lo_iv = t.locate(std::max(ylo, t.breaks_.front()));
    // Last interval whose start is strictly below yhi:
    auto hi_it =
        std::lower_bound(t.breaks_.begin(), t.breaks_.end(), yhi);
    std::size_t hi_excl = static_cast<std::size_t>(hi_it - t.breaks_.begin());
    if (hi_excl == 0) return;
    const std::size_t hi_iv = std::min(hi_excl - 1, t.m_ - 1);
    if (lo_iv > hi_iv) return;
    t.canonical_nodes(lo_iv, hi_iv, nodes);
  };

  pool.parallel_for(
      ranges.size(),
      [&](std::size_t i) {
        thread_local std::vector<std::size_t> nodes;
        canonical_of(ranges[i].first, ranges[i].second, nodes);
        for (std::size_t v : nodes)
          counts[v].fetch_add(1, std::memory_order_relaxed);
      },
      /*grain=*/256);

  // Allocate cover lists.
  pool.parallel_for(
      num_nodes,
      [&](std::size_t v) {
        const auto c = counts[v].load(std::memory_order_relaxed);
        t.cover_[v].resize(static_cast<std::size_t>(c));
        t.cover_size_[v] = c;
        counts[v].store(0, std::memory_order_relaxed);  // reuse as cursor
      },
      /*grain=*/1024);

  // Phase 2: report ids into their slots.
  pool.parallel_for(
      ranges.size(),
      [&](std::size_t i) {
        thread_local std::vector<std::size_t> nodes;
        canonical_of(ranges[i].first, ranges[i].second, nodes);
        for (std::size_t v : nodes) {
          const auto slot = counts[v].fetch_add(1, std::memory_order_relaxed);
          t.cover_[v][static_cast<std::size_t>(slot)] =
              static_cast<std::int32_t>(i);
        }
      },
      /*grain=*/256);

  return t;
}

std::int64_t SegmentTree::stab_count(std::size_t iv) const {
  if (iv >= m_) return 0;
  std::int64_t total = 0;
  for (std::size_t v = iv + leaves_; v >= 1; v >>= 1) total += cover_size_[v];
  return total;
}

void SegmentTree::stab(std::size_t iv, std::vector<std::int32_t>& out) const {
  if (iv >= m_) return;
  for (std::size_t v = iv + leaves_; v >= 1; v >>= 1)
    out.insert(out.end(), cover_[v].begin(), cover_[v].end());
}

SegmentTree::StabAll SegmentTree::stab_all(par::ThreadPool& pool) const {
  StabAll res;
  res.offsets.assign(m_ + 1, 0);
  if (m_ == 0) return res;

  // Counting phase: per-interval totals from node sizes only.
  pool.parallel_for(
      m_, [&](std::size_t iv) { res.offsets[iv + 1] = stab_count(iv); },
      /*grain=*/512);
  for (std::size_t i = 1; i <= m_; ++i) res.offsets[i] += res.offsets[i - 1];

  // Reporting phase into preallocated slots.
  res.ids.resize(static_cast<std::size_t>(res.offsets[m_]));
  pool.parallel_for(
      m_,
      [&](std::size_t iv) {
        std::size_t w = static_cast<std::size_t>(res.offsets[iv]);
        for (std::size_t v = iv + leaves_; v >= 1; v >>= 1)
          for (std::int32_t id : cover_[v]) res.ids[w++] = id;
      },
      /*grain=*/512);
  return res;
}

std::int64_t SegmentTree::total_cover_size() const {
  std::int64_t total = 0;
  for (auto s : cover_size_) total += s;
  return total;
}

unsigned SegmentTree::height() const {
  unsigned h = 0;
  for (std::size_t v = leaves_; v > 1; v >>= 1) ++h;
  return h + 1;
}

}  // namespace psclip::segtree
