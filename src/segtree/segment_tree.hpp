#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace psclip::segtree {

/// Cover-list segment tree over the elementary intervals induced by a
/// sorted breakpoint sequence (paper §II-C, Fig. 1). Interval i is
/// [breakpoints[i], breakpoints[i+1]); an inserted item covering a y-range
/// lands on the O(log m) canonical nodes whose ranges it spans but whose
/// parents it does not.
///
/// Beyond the textbook structure, every node also stores the *size* of its
/// cover list, which lets Step 2 of the paper's Algorithm 1 count the edges
/// of a scanbeam in O(log m) without touching the lists — the prerequisite
/// for output-sensitive processor allocation (§III-E).
class SegmentTree {
 public:
  /// `breakpoints` must be sorted and contain at least 2 distinct values;
  /// duplicates are removed. m = breakpoints.size() - 1 elementary
  /// intervals result.
  explicit SegmentTree(std::vector<double> breakpoints);

  /// Number of elementary intervals m.
  [[nodiscard]] std::size_t num_intervals() const { return m_; }

  /// Index of the elementary interval containing y
  /// (clamped to [0, m-1]; y below/above the range maps to the ends).
  [[nodiscard]] std::size_t locate(double y) const;

  /// Insert item `id` covering elementary intervals [lo_iv, hi_iv]
  /// (inclusive). Sequential variant.
  void insert(std::int32_t id, std::size_t lo_iv, std::size_t hi_iv);

  /// Insert item `id` covering the y-range [ylo, yhi]. Ranges that do not
  /// overlap any elementary interval are ignored.
  void insert_range(std::int32_t id, double ylo, double yhi);

  /// Parallel bulk construction: builds the tree and inserts every range in
  /// `ranges` (item id = position) using the two-phase count/fill pattern
  /// with one atomic cursor per node.
  static SegmentTree build(par::ThreadPool& pool,
                           std::vector<double> breakpoints,
                           std::span<const std::pair<double, double>> ranges);

  /// Number of items covering elementary interval `iv` — O(log m), reads
  /// per-node cover sizes only (the paper's counting phase).
  [[nodiscard]] std::int64_t stab_count(std::size_t iv) const;

  /// Append the ids of all items covering interval `iv` to `out`
  /// (O(log m + answer), the reporting phase).
  void stab(std::size_t iv, std::vector<std::int32_t>& out) const;

  /// Batched stab for every elementary interval, in parallel: CSR layout
  /// with `offsets[iv] .. offsets[iv+1]` indexing into `ids`. This is the
  /// paper's Step 2: count per scanbeam, prefix-sum, allocate, report.
  struct StabAll {
    std::vector<std::int64_t> offsets;  // size m+1
    std::vector<std::int32_t> ids;      // size k' (total reported edges)
  };
  [[nodiscard]] StabAll stab_all(par::ThreadPool& pool) const;

  /// Total cover-list entries (== k' when items are polygon edges).
  [[nodiscard]] std::int64_t total_cover_size() const;

  /// Tree height (levels from root to leaves), exposed for tests.
  [[nodiscard]] unsigned height() const;

 private:
  std::size_t m_ = 0;        // elementary interval count
  std::size_t leaves_ = 1;   // padded power of two >= m_
  std::vector<double> breaks_;
  std::vector<std::vector<std::int32_t>> cover_;  // per node, size 2*leaves_
  std::vector<std::int64_t> cover_size_;          // |cover_[v]| (kept explicit)

  void canonical_nodes(std::size_t lo, std::size_t hi,
                       std::vector<std::size_t>& out) const;
};

}  // namespace psclip::segtree
