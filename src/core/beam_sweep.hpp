#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/bool_op.hpp"
#include "geom/polygon.hpp"
#include "seq/bounds.hpp"

namespace psclip::core {

/// Partial output polygons of one scanbeam (Algorithm 1 Step 3).
struct BeamResult {
  /// Closed partial rings: material pieces counter-clockwise, hole pockets
  /// (exterior wedges opened and closed by crossings strictly inside the
  /// beam) clockwise with `hole` set. Horizontal sides of material rings
  /// lie exactly on the beam's two scanlines and carry the virtual
  /// vertices the merge phase welds away.
  std::vector<geom::Contour> rings;
  std::int64_t intersections = 0;  ///< crossings handled in this beam
};

/// Process one scanbeam independently of all others — the heart of the
/// paper's Algorithm 1. `edge_ids` are the bound edges spanning the beam
/// [yb, yt] (from the Step 2 partition); no other sweep state is consulted.
///
/// Internally this performs, exactly as Lemmas 1–4 prescribe:
///  1. sort edges by x on the lower scanline (local left/right labeling —
///     Lemma 1: labels alternate, derived from the sorted position),
///  2. a parity prefix pass that classifies every edge's neighbourhood as
///     contributing or not (Lemma 2/3's prefix-sum test),
///  3. crossing discovery as the inversions between the lower- and
///     upper-scanline x orders via the extended-mergesort reporter
///     (Lemma 4), processed in ascending y with the shared sector-emission
///     rule,
///  4. partial-polygon assembly with virtual vertices on both scanlines
///     (Step 3.4's bound concatenation, realized by the out-poly pool).
BeamResult process_beam(const seq::BoundTable& bt,
                        std::span<const std::int32_t> edge_ids, double yb,
                        double yt, geom::BoolOp op);

}  // namespace psclip::core
