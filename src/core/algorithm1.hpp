#pragma once

#include <cstdint>

#include "core/merge.hpp"
#include "geom/bool_op.hpp"
#include "geom/polygon.hpp"
#include "parallel/thread_pool.hpp"

namespace psclip::obs {
class TraceSink;
}

namespace psclip::core {

/// Instrumentation for the paper's complexity quantities and per-stage
/// timings (used by tests and by bench_alg1_stages).
struct Alg1Stats {
  std::int64_t edges = 0;          ///< n: bound edges from both inputs
  std::int64_t scanbeams = 0;      ///< m
  std::int64_t k_prime = 0;        ///< extra edge pieces from partitioning
  std::int64_t intersections = 0;  ///< k: crossings over all beams
  std::int64_t partial_polys = 0;  ///< partial rings before merging
  int merge_phases = 0;            ///< log(m) phases for the tree strategy
  double t_sort_partition = 0.0;   ///< Steps 1–2 seconds
  double t_beams = 0.0;            ///< Step 3 seconds
  double t_merge = 0.0;            ///< Step 4 seconds
};

/// Options for scanbeam_clip.
struct Alg1Options {
  MergeStrategy merge = MergeStrategy::kTree;
  /// Use the segment tree for Step 2 (paper §III-E); false = direct
  /// binning (ablation).
  bool use_segment_tree = true;
  /// Trace + metrics sink for this run; null (default) = tracing off at the
  /// cost of one pointer test per site. Same contract as
  /// Alg2Options::trace_sink. Records an alg1 request span with
  /// partition/beams/merge phase children plus alg1.* counters.
  obs::TraceSink* trace_sink = nullptr;
};

/// The paper's Algorithm 1: output-sensitive multi-way divide-and-conquer
/// polygon clipping.
///
///  Step 1  sort the event ordinates (parallel mergesort),
///  Step 2  partition the edges into scanbeams (segment tree, two-phase
///          count/report — the processor allocation is output-sensitive in
///          k'),
///  Step 3  process every scanbeam independently in parallel (Lemmas 1–4:
///          local labeling, prefix-sum contributing test, intersections by
///          inversion reporting, partial-polygon assembly),
///  Step 4  merge partial polygons across beams (reduction tree, Fig. 6)
///          and remove virtual vertices by array packing.
///
/// Produces the same region as seq::vatti_clip for all four operators,
/// including self-intersecting inputs.
geom::PolygonSet scanbeam_clip(const geom::PolygonSet& subject,
                               const geom::PolygonSet& clip, geom::BoolOp op,
                               par::ThreadPool& pool,
                               Alg1Stats* stats = nullptr,
                               const Alg1Options& opts = {});

}  // namespace psclip::core
