#include "core/merge.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "geom/predicates.hpp"

namespace psclip::core {

const char* to_string(MergeStrategy s) {
  switch (s) {
    case MergeStrategy::kTree: return "tree";
    case MergeStrategy::kFlat: return "flat";
  }
  return "?";
}

void WeldArena::add_ring(const geom::Contour& ring) {
  const std::size_t n = ring.size();
  if (n < 3) return;
  const auto base = static_cast<std::int32_t>(pt_.size());
  for (std::size_t i = 0; i < n; ++i) {
    pt_.push_back(ring[i]);
    next_.push_back(base + static_cast<std::int32_t>((i + 1) % n));
    cancelled_.push_back(0);
    twin_.push_back(-1);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const geom::Point& a = ring[i];
    const geom::Point& b = ring[(i + 1) % n];
    if (a.y == b.y && a.x != b.x)
      horiz_[a.y].push_back(base + static_cast<std::int32_t>(i));
  }
}

WeldArena::ScanPlan WeldArena::plan_scanline(double y) const {
  ScanPlan plan;
  plan.y = y;
  const auto it = horiz_.find(y);
  if (it == horiz_.end()) return plan;
  plan.slots.reserve(it->second.size());
  for (const std::int32_t a : it->second) {
    if (cancelled_[static_cast<std::size_t>(a)]) continue;
    plan.slots.push_back(a);
  }
  if (plan.slots.size() < 2) {
    plan.slots.clear();
    return plan;
  }
  // Subdivide every horizontal edge at all endpoints present on the line,
  // so coincident opposite pieces match exactly (the virtual-vertex
  // coordinates come from identical formulas on both sides of a scanline
  // and compare equal as doubles).
  plan.xs.reserve(plan.slots.size() * 2);
  for (const std::int32_t a : plan.slots) {
    plan.xs.push_back(pt_[static_cast<std::size_t>(a)].x);
    plan.xs.push_back(pt_[static_cast<std::size_t>(next_[a])].x);
  }
  std::sort(plan.xs.begin(), plan.xs.end());
  plan.xs.erase(std::unique(plan.xs.begin(), plan.xs.end()), plan.xs.end());
  // Count the chain slots the apply phase will create (the "count" half of
  // the paper's count/allocate/report pattern).
  for (const std::int32_t a : plan.slots) {
    const double x1 = pt_[static_cast<std::size_t>(a)].x;
    const double x2 = pt_[static_cast<std::size_t>(next_[a])].x;
    const double lo = std::min(x1, x2), hi = std::max(x1, x2);
    const std::size_t lo_idx = static_cast<std::size_t>(
        std::lower_bound(plan.xs.begin(), plan.xs.end(), lo) -
        plan.xs.begin());
    const std::size_t hi_idx = static_cast<std::size_t>(
        std::lower_bound(plan.xs.begin(), plan.xs.end(), hi) -
        plan.xs.begin());
    plan.new_slots += hi_idx - lo_idx - 1;
  }
  return plan;
}

void WeldArena::apply_scanline(const ScanPlan& plan) {
  if (plan.slots.size() < 2) return;
  const double y = plan.y;
  const std::vector<double>& xs = plan.xs;

  // For each elementary sub-interval [xs[k], xs[k+1]] remember the slot of
  // the rightward and of the leftward sub-edge covering it.
  std::unordered_map<std::size_t, std::int32_t> right_half, left_half;
  std::vector<std::pair<std::int32_t, std::int32_t>> welds;  // (A, C)

  auto register_subedge = [&](std::int32_t from, std::size_t key,
                              bool rightward) {
    auto& mine = rightward ? right_half : left_half;
    auto& other = rightward ? left_half : right_half;
    const auto match = other.find(key);
    if (match == other.end()) {
      mine[key] = from;
      return;
    }
    const std::int32_t A = rightward ? from : match->second;  // rightward
    const std::int32_t C = rightward ? match->second : from;  // leftward
    welds.emplace_back(A, C);
    other.erase(match);
  };

  // Chain slots are written into this scanline's preallocated range; when
  // called sequentially (base == npos) they are appended instead.
  std::size_t cursor = plan.base;
  auto new_slot = [&](double x) -> std::int32_t {
    if (plan.base == kAppend) {
      const auto ns = static_cast<std::int32_t>(pt_.size());
      pt_.push_back({x, y});
      next_.push_back(-1);
      cancelled_.push_back(0);
      twin_.push_back(-1);
      return ns;
    }
    const auto ns = static_cast<std::int32_t>(cursor++);
    pt_[static_cast<std::size_t>(ns)] = {x, y};
    cancelled_[static_cast<std::size_t>(ns)] = 0;
    twin_[static_cast<std::size_t>(ns)] = -1;
    return ns;
  };

  for (const std::int32_t a : plan.slots) {
    const double x1 = pt_[static_cast<std::size_t>(a)].x;
    const double x2 = pt_[static_cast<std::size_t>(next_[a])].x;
    const bool rightward = x1 < x2;
    const double lo = rightward ? x1 : x2;
    const double hi = rightward ? x2 : x1;
    const std::size_t lo_idx = static_cast<std::size_t>(
        std::lower_bound(xs.begin(), xs.end(), lo) - xs.begin());
    const std::size_t hi_idx = static_cast<std::size_t>(
        std::lower_bound(xs.begin(), xs.end(), hi) - xs.begin());

    if (hi_idx == lo_idx + 1) {
      register_subedge(a, lo_idx, rightward);
      continue;
    }
    // Split into hi_idx - lo_idx sub-edges by inserting chain slots.
    std::int32_t cur = a;
    const std::int32_t tail = next_[a];
    if (rightward) {
      for (std::size_t k = lo_idx + 1; k < hi_idx; ++k) {
        const std::int32_t ns = new_slot(xs[k]);
        next_[ns] = tail;
        next_[cur] = ns;
        register_subedge(cur, k - 1, true);
        cur = ns;
      }
      register_subedge(cur, hi_idx - 1, true);
    } else {
      for (std::size_t k = hi_idx - 1; k > lo_idx; --k) {
        const std::int32_t ns = new_slot(xs[k]);
        next_[ns] = tail;
        next_[cur] = ns;
        register_subedge(cur, k, false);
        cur = ns;
      }
      register_subedge(cur, lo_idx, false);
    }
  }

  // Cancel each opposite pair A->B / C->D (pt[A]==pt[D], pt[B]==pt[C]).
  // Instead of rewriting next_ (which is order-dependent when adjacent
  // sub-edges also weld), mark the edge cancelled and record the twin
  // continuation vertex: a traversal reaching A resumes from D, one
  // reaching C resumes from B — resolved transitively at extraction.
  for (const auto& [A, C] : welds) {
    cancelled_[static_cast<std::size_t>(A)] = 1;
    twin_[static_cast<std::size_t>(A)] = next_[C];  // D
    cancelled_[static_cast<std::size_t>(C)] = 1;
    twin_[static_cast<std::size_t>(C)] = next_[A];  // B
  }
}

void WeldArena::weld_scanline(double y) {
  ScanPlan plan = plan_scanline(y);
  plan.base = kAppend;
  apply_scanline(plan);
}

void WeldArena::weld_parallel(par::ThreadPool& pool,
                              std::span<const std::size_t> boundary_idx,
                              std::span<const double> ys) {
  // Count / allocate / report (the same PRAM pattern as Step 2): plan all
  // scanlines read-only in parallel, allocate every chain slot with one
  // prefix sum and a single resize, then apply the welds in parallel —
  // welds of distinct scanlines touch disjoint slots.
  std::vector<ScanPlan> plans(boundary_idx.size());
  pool.parallel_for(
      boundary_idx.size(),
      [&](std::size_t i) { plans[i] = plan_scanline(ys[boundary_idx[i]]); },
      /*grain=*/4);
  std::size_t base = pt_.size();
  for (auto& plan : plans) {
    plan.base = base;
    base += plan.new_slots;
  }
  pt_.resize(base);
  next_.resize(base, -1);
  cancelled_.resize(base, 0);
  twin_.resize(base, -1);
  pool.parallel_for(
      plans.size(), [&](std::size_t i) { apply_scanline(plans[i]); },
      /*grain=*/4);
}

void WeldArena::weld_flat(par::ThreadPool& pool, std::span<const double> ys) {
  if (ys.size() < 3) return;
  std::vector<std::size_t> boundaries;
  boundaries.reserve(ys.size() - 2);
  for (std::size_t i = 1; i + 1 < ys.size(); ++i) boundaries.push_back(i);
  weld_parallel(pool, boundaries, ys);
}

int WeldArena::weld_tree(par::ThreadPool& pool, std::span<const double> ys) {
  if (ys.size() < 3) return 0;
  const std::size_t m = ys.size() - 1;  // beams; interior boundaries 1..m-1
  int phases = 0;
  for (std::size_t width = 1; width < m; width *= 2) {
    std::vector<std::size_t> boundaries;
    for (std::size_t b = width; b < m; b += 2 * width) boundaries.push_back(b);
    if (boundaries.empty()) break;
    weld_parallel(pool, boundaries, ys);
    ++phases;
  }
  return phases;
}

std::vector<std::tuple<double, double, double>> WeldArena::debug_unwelded()
    const {
  std::vector<std::tuple<double, double, double>> out;
  for (const auto& [y, slots] : horiz_) {
    for (const std::int32_t a : slots) {
      if (cancelled_[static_cast<std::size_t>(a)]) continue;
      const geom::Point& pa = pt_[static_cast<std::size_t>(a)];
      const geom::Point& pb = pt_[static_cast<std::size_t>(next_[a])];
      if (pa.y == y && pb.y == y && pa.x != pb.x)
        out.emplace_back(y, pa.x, pb.x);
    }
  }
  return out;
}

geom::PolygonSet WeldArena::extract(bool pack_virtuals) const {
  geom::PolygonSet out;
  std::vector<std::uint8_t> visited(pt_.size(), 0);

  // Next live vertex after `x`, resolving cancelled edges through their
  // twin continuations. Every slot the resolution passes through —
  // including the final live slot whose outgoing edge we consume — is
  // marked visited: its continuation now belongs to the current ring, and
  // leaving it unvisited would let the outer loop re-trace the same arc
  // as a spurious duplicate ring.
  auto successor = [this, &visited](std::int32_t x) -> std::int32_t {
    std::size_t guard = 0;
    while (cancelled_[static_cast<std::size_t>(x)] &&
           guard++ <= pt_.size()) {
      x = twin_[static_cast<std::size_t>(x)];
      visited[static_cast<std::size_t>(x)] = 1;
    }
    return next_[x];
  };

  for (std::size_t start = 0; start < pt_.size(); ++start) {
    if (visited[start] || cancelled_[start]) continue;
    geom::Contour ring;
    std::int32_t cur = static_cast<std::int32_t>(start);
    std::size_t guard = 0;
    while (!visited[static_cast<std::size_t>(cur)] &&
           guard++ <= pt_.size()) {
      visited[static_cast<std::size_t>(cur)] = 1;
      // Cancelled slots still contribute their coordinate: the boundary
      // turns there (all slots of a twin chain share one coordinate, and
      // unique() collapses the repeats).
      ring.pts.push_back(pt_[static_cast<std::size_t>(cur)]);
      cur = successor(cur);
    }
    auto last = std::unique(ring.pts.begin(), ring.pts.end());
    ring.pts.erase(last, ring.pts.end());
    while (ring.pts.size() > 1 && ring.pts.front() == ring.pts.back())
      ring.pts.pop_back();
    if (ring.pts.size() < 3) continue;

    if (!pack_virtuals) {
      ring.hole = geom::signed_area(ring) < 0.0;
      out.contours.push_back(std::move(ring));
      continue;
    }
    // Drop virtual (collinear) vertices — the paper's "array packing".
    // Two traps to avoid: (1) crossing/virtual vertices can land within
    // ~1e-15 of a real corner, and testing each against *raw* neighbours
    // then drops both representatives, cutting the corner — so collapse
    // near-duplicates first; (2) collinearity must be evaluated against
    // the *effective* (already packed) neighbours, or chains of drops can
    // bridge real turns.
    auto near_dup = [](const geom::Point& a, const geom::Point& b) {
      const double tol =
          1e-12 * (1.0 + std::fabs(a.x) + std::fabs(a.y));
      return std::fabs(a.x - b.x) <= tol && std::fabs(a.y - b.y) <= tol;
    };
    geom::Contour dedup;
    for (const auto& v : ring.pts) {
      if (!dedup.pts.empty() && near_dup(dedup.pts.back(), v)) continue;
      dedup.pts.push_back(v);
    }
    while (dedup.pts.size() > 1 &&
           near_dup(dedup.pts.front(), dedup.pts.back()))
      dedup.pts.pop_back();

    auto thin = [](const geom::Point& a, const geom::Point& v,
                   const geom::Point& b) {
      const double area2 = std::fabs(geom::cross(v - a, b - a));
      const double scale = std::fabs(b.x - a.x) + std::fabs(b.y - a.y) +
                           std::fabs(v.x - a.x) + std::fabs(v.y - a.y);
      return area2 <= 1e-12 * scale * scale;
    };
    geom::Contour packed;
    for (const auto& v : dedup.pts) {
      while (packed.pts.size() >= 2 &&
             thin(packed.pts[packed.pts.size() - 2], packed.pts.back(), v))
        packed.pts.pop_back();
      packed.pts.push_back(v);
    }
    // Wrap-around: the seam vertices also need the effective-neighbour test.
    while (packed.pts.size() >= 3 &&
           thin(packed.pts[packed.pts.size() - 2], packed.pts.back(),
                packed.pts.front()))
      packed.pts.pop_back();
    while (packed.pts.size() >= 3 &&
           thin(packed.pts.back(), packed.pts.front(), packed.pts[1]))
      packed.pts.erase(packed.pts.begin());
    if (packed.pts.size() >= 3) {
      packed.hole = geom::signed_area(packed) < 0.0;
      out.contours.push_back(std::move(packed));
    }
  }
  return out;
}

}  // namespace psclip::core
