#pragma once

#include <cstdint>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "segtree/segment_tree.hpp"
#include "seq/bounds.hpp"

namespace psclip::core {

/// Result of Algorithm 1 Steps 1–2: the scanbeam schedule and, for every
/// scanbeam, the edges passing through it (CSR layout). The total number
/// of edge-in-beam incidences is the paper's k' (each incidence beyond an
/// edge's first beam corresponds to one virtual vertex pair introduced by
/// partitioning).
struct ScanbeamPartition {
  std::vector<double> ys;  ///< m+1 scanline ordinates; beam i = [ys[i], ys[i+1])
  std::vector<std::int64_t> offsets;  ///< size m+1, CSR offsets into edge_ids
  std::vector<std::int32_t> edge_ids; ///< bound-edge ids per beam

  [[nodiscard]] std::size_t num_beams() const {
    return ys.size() >= 2 ? ys.size() - 1 : 0;
  }
  /// Total edge-in-beam incidences (k' + n in the paper's terms).
  [[nodiscard]] std::int64_t total_incidences() const {
    return offsets.empty() ? 0 : offsets.back();
  }
  /// The paper's k': extra (virtual) edge pieces created by partitioning.
  [[nodiscard]] std::int64_t k_prime(std::size_t num_edges) const {
    return total_incidences() - static_cast<std::int64_t>(num_edges);
  }
};

/// Step 1 (parallel sort of event ordinates) + Step 2 (partition the edges
/// into scanbeams with a cover-list segment tree, two-phase count/report).
ScanbeamPartition partition_scanbeams(par::ThreadPool& pool,
                                      const seq::BoundTable& bt);

/// Reference implementation of Step 2 by direct binning (each edge walks
/// its beam range) — used by tests and by the partition-strategy ablation
/// bench; produces the same CSR contents up to per-beam order.
ScanbeamPartition partition_scanbeams_direct(par::ThreadPool& pool,
                                             const seq::BoundTable& bt);

}  // namespace psclip::core
