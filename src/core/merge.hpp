#pragma once

#include <cstdint>
#include <span>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "geom/polygon.hpp"
#include "parallel/thread_pool.hpp"

namespace psclip::core {

/// How the partial polygons of the scanbeams are merged (Step 4, Fig. 6).
enum class MergeStrategy {
  kTree,  ///< the paper's reduction tree: log(m) phases, pairwise unions
  kFlat,  ///< one phase welding every shared scanline (ablation variant)
};

const char* to_string(MergeStrategy s);

/// Merges per-beam partial polygons into the final result by *welding*
/// away the shared horizontal boundaries.
///
/// Every partial ring is counter-clockwise, so the top side of a beam
/// piece runs right-to-left and the bottom side of the piece above it runs
/// left-to-right over the same interval: after subdividing the horizontal
/// edges on a scanline at all endpoints present there, every sub-edge
/// appears exactly twice in opposite directions. Cancelling such a pair
/// and re-linking the rings implements the paper's partial-polygon union;
/// the virtual vertices left behind are removed during extraction (the
/// paper's "array packing"). Welds of distinct scanlines touch disjoint
/// slots, so the tree reduction runs its per-phase welds in parallel.
class WeldArena {
 public:
  /// Add one counter-clockwise partial ring (first vertex not repeated).
  void add_ring(const geom::Contour& ring);

  /// Cancel opposite coincident horizontal sub-edges on scanline y
  /// (sequential entry point).
  void weld_scanline(double y);

  /// Weld several scanlines in parallel using the PRAM count/allocate/
  /// report pattern: read-only planning per scanline, one prefix-sum slot
  /// allocation, then parallel application (welds of distinct scanlines
  /// touch disjoint slots). `boundary_idx` indexes into `ys`.
  void weld_parallel(par::ThreadPool& pool,
                     std::span<const std::size_t> boundary_idx,
                     std::span<const double> ys);

  /// Flat strategy: weld the interior scanlines ys[1..m-1] in one parallel
  /// phase.
  void weld_flat(par::ThreadPool& pool, std::span<const double> ys);

  /// Tree strategy (Fig. 6): phase h welds the boundaries that are odd
  /// multiples of 2^h, in parallel within the phase. Returns the number
  /// of phases executed.
  int weld_tree(par::ThreadPool& pool, std::span<const double> ys);

  /// Trace the remaining rings, drop virtual (collinear) vertices
  /// (disable with pack_virtuals=false for diagnostics), set hole flags
  /// from orientation (welded exteriors stay counter-clockwise, holes come
  /// out clockwise).
  [[nodiscard]] geom::PolygonSet extract(bool pack_virtuals = true) const;

  [[nodiscard]] std::size_t num_slots() const { return pt_.size(); }

  /// Diagnostics: horizontal edges on registered scanlines that remain
  /// uncancelled after welding (tuples of y, x_from, x_to). A correct
  /// weld of a beam tiling leaves none.
  [[nodiscard]] std::vector<std::tuple<double, double, double>>
  debug_unwelded() const;

 private:
  static constexpr std::size_t kAppend = static_cast<std::size_t>(-1);
  struct ScanPlan {
    double y = 0.0;
    std::vector<std::int32_t> slots;  // live horizontal edges on the line
    std::vector<double> xs;           // subdivision ordinates
    std::size_t new_slots = 0;        // chain slots the apply phase creates
    std::size_t base = kAppend;       // preallocated slot range start
  };
  [[nodiscard]] ScanPlan plan_scanline(double y) const;
  void apply_scanline(const ScanPlan& plan);

  std::vector<geom::Point> pt_;
  std::vector<std::int32_t> next_;
  std::vector<std::uint8_t> cancelled_;  ///< slot's outgoing edge welded away
  std::vector<std::int32_t> twin_;       ///< continuation vertex if cancelled
  /// scanline y -> slots whose outgoing edge is horizontal on that line
  std::unordered_map<double, std::vector<std::int32_t>> horiz_;
};

}  // namespace psclip::core
