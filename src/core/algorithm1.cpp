#include "core/algorithm1.hpp"

#include <mutex>

#include "core/beam_sweep.hpp"
#include "core/scanbeam.hpp"
#include "geom/perturb.hpp"
#include "obs/trace.hpp"
#include "parallel/cancel.hpp"
#include "parallel/timing.hpp"

namespace psclip::core {

geom::PolygonSet scanbeam_clip(const geom::PolygonSet& subject,
                               const geom::PolygonSet& clip, geom::BoolOp op,
                               par::ThreadPool& pool, Alg1Stats* stats,
                               const Alg1Options& opts) {
  obs::TraceSink* const sink = opts.trace_sink;
  obs::ScopedSpan req_span(sink, "alg1.scanbeam_clip", obs::Cat::kRequest);
  par::WallTimer req_timer;
  // Phase-boundary governance checkpoints (DESIGN.md §11): inherited from
  // the token the caller installed; free when none is.
  par::gov::checkpoint_now();
  geom::PolygonSet s = geom::cleaned(subject);
  geom::PolygonSet c = geom::cleaned(clip);
  geom::remove_horizontals(s);
  geom::remove_horizontals(c);
  const seq::BoundTable bt = seq::build_bounds(s, c);

  obs::ScopedSpan part_span(sink, "alg1.partition", obs::Cat::kPhase);
  par::WallTimer timer;
  const ScanbeamPartition part = opts.use_segment_tree
                                     ? partition_scanbeams(pool, bt)
                                     : partition_scanbeams_direct(pool, bt);
  const double t_partition = timer.seconds();

  const std::size_t m = part.num_beams();
  par::gov::checkpoint_now();
  timer.reset();
  part_span.arg("edges", static_cast<std::int64_t>(bt.num_edges()));
  part_span.arg("scanbeams", static_cast<std::int64_t>(m));
  part_span.arg("k_prime", part.k_prime(bt.num_edges()));
  part_span.end();
  obs::ScopedSpan beams_span(sink, "alg1.beams", obs::Cat::kPhase);

  // Step 3: all scanbeams in parallel. Results land in per-beam slots, so
  // no cross-beam synchronization is needed beyond the final collection.
  std::vector<BeamResult> beams(m);
  pool.parallel_for(
      m,
      [&](std::size_t b) {
        const auto lo = static_cast<std::size_t>(part.offsets[b]);
        const auto hi = static_cast<std::size_t>(part.offsets[b + 1]);
        beams[b] = process_beam(
            bt, std::span<const std::int32_t>(part.edge_ids).subspan(lo, hi - lo),
            part.ys[b], part.ys[b + 1], op);
      },
      /*grain=*/1);
  const double t_beams = timer.seconds();
  beams_span.end();

  timer.reset();
  par::gov::checkpoint_now();
  obs::ScopedSpan merge_span(sink, "alg1.merge", obs::Cat::kPhase);
  WeldArena arena;
  std::int64_t k = 0, partials = 0;
  for (const auto& br : beams) {
    k += br.intersections;
    partials += static_cast<std::int64_t>(br.rings.size());
    for (const auto& r : br.rings) arena.add_ring(r);
  }
  int phases = 0;
  if (opts.merge == MergeStrategy::kTree)
    phases = arena.weld_tree(pool, part.ys);
  else
    arena.weld_flat(pool, part.ys);
  geom::PolygonSet out = arena.extract();
  const double t_merge = timer.seconds();
  merge_span.arg("partial_polys", partials);
  merge_span.arg("merge_phases", phases);
  merge_span.end();

  if (sink) {
    req_span.arg("edges", static_cast<std::int64_t>(bt.num_edges()));
    req_span.arg("intersections", k);
    req_span.arg("op", static_cast<std::int64_t>(op));
    sink->add_counter("alg1.requests", 1);
    sink->add_counter("alg1.scanbeams", static_cast<std::int64_t>(m));
    sink->add_counter("alg1.intersections", k);
    sink->observe("alg1.request_seconds", req_timer.seconds());
  }

  if (stats) {
    stats->edges = static_cast<std::int64_t>(bt.num_edges());
    stats->scanbeams = static_cast<std::int64_t>(m);
    stats->k_prime = part.k_prime(bt.num_edges());
    stats->intersections = k;
    stats->partial_polys = partials;
    stats->merge_phases = phases;
    stats->t_sort_partition = t_partition;
    stats->t_beams = t_beams;
    stats->t_merge = t_merge;
  }
  return out;
}

}  // namespace psclip::core
