#include "core/scanbeam.hpp"

#include <algorithm>
#include <atomic>

#include "parallel/sort.hpp"

namespace psclip::core {
namespace {

std::vector<double> sorted_event_ys(par::ThreadPool& pool,
                                    const seq::BoundTable& bt) {
  std::vector<double> ys;
  ys.reserve(bt.edges.size() * 2);
  for (const auto& e : bt.edges) {
    ys.push_back(e.bot.y);
    ys.push_back(e.top.y);
  }
  par::parallel_sort(pool, ys);
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  return ys;
}

}  // namespace

ScanbeamPartition partition_scanbeams(par::ThreadPool& pool,
                                      const seq::BoundTable& bt) {
  ScanbeamPartition part;
  part.ys = sorted_event_ys(pool, bt);
  if (part.ys.size() < 2) {
    part.offsets.assign(1, 0);
    return part;
  }

  std::vector<std::pair<double, double>> ranges(bt.edges.size());
  pool.parallel_for(
      bt.edges.size(),
      [&](std::size_t i) {
        ranges[i] = {bt.edges[i].bot.y, bt.edges[i].top.y};
      },
      /*grain=*/1024);

  const auto tree =
      segtree::SegmentTree::build(pool, part.ys, ranges);
  auto stab = tree.stab_all(pool);
  part.offsets = std::move(stab.offsets);
  part.edge_ids = std::move(stab.ids);
  return part;
}

ScanbeamPartition partition_scanbeams_direct(par::ThreadPool& pool,
                                             const seq::BoundTable& bt) {
  ScanbeamPartition part;
  part.ys = sorted_event_ys(pool, bt);
  const std::size_t m = part.num_beams();
  part.offsets.assign(m + 1, 0);
  if (m == 0) return part;

  auto beam_of = [&part](double y) {
    auto it = std::lower_bound(part.ys.begin(), part.ys.end(), y);
    return static_cast<std::size_t>(it - part.ys.begin());
  };

  // Count phase.
  std::vector<std::atomic<std::int64_t>> counts(m);
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);
  pool.parallel_for(
      bt.edges.size(),
      [&](std::size_t i) {
        const std::size_t lo = beam_of(bt.edges[i].bot.y);
        const std::size_t hi = beam_of(bt.edges[i].top.y);
        for (std::size_t b = lo; b < hi; ++b)
          counts[b].fetch_add(1, std::memory_order_relaxed);
      },
      /*grain=*/256);
  for (std::size_t b = 0; b < m; ++b)
    part.offsets[b + 1] =
        part.offsets[b] + counts[b].load(std::memory_order_relaxed);
  for (auto& c : counts) c.store(0, std::memory_order_relaxed);

  // Report phase.
  part.edge_ids.resize(static_cast<std::size_t>(part.offsets[m]));
  pool.parallel_for(
      bt.edges.size(),
      [&](std::size_t i) {
        const std::size_t lo = beam_of(bt.edges[i].bot.y);
        const std::size_t hi = beam_of(bt.edges[i].top.y);
        for (std::size_t b = lo; b < hi; ++b) {
          const auto slot = counts[b].fetch_add(1, std::memory_order_relaxed);
          part.edge_ids[static_cast<std::size_t>(part.offsets[b] + slot)] =
              static_cast<std::int32_t>(i);
        }
      },
      /*grain=*/256);
  return part;
}

}  // namespace psclip::core
