#include "core/beam_sweep.hpp"

#include <algorithm>
#include <unordered_map>

#include "geom/intersect.hpp"
#include "parallel/inversions.hpp"
#include "seq/out_poly.hpp"
#include "seq/sweep_events.hpp"

namespace psclip::core {
namespace {

using geom::Point;

struct Entry : seq::SweepEntry {
  double xb = 0.0, xt = 0.0;
};

double x_on(const seq::BoundEdge& e, double y) {
  if (e.bot.y == y) return e.bot.x;
  if (e.top.y == y) return e.top.x;
  return geom::x_at_y(e.bot, e.top, y);
}

}  // namespace

BeamResult process_beam(const seq::BoundTable& bt,
                        std::span<const std::int32_t> edge_ids, double yb,
                        double yt, geom::BoolOp op) {
  BeamResult result;
  if (edge_ids.size() < 2) return result;

  auto edge = [&bt](const Entry& en) -> const seq::BoundEdge& {
    return bt.edges[static_cast<std::size_t>(en.e)];
  };
  auto res = [op](bool s, bool c) { return geom::in_result(s, c, op); };

  // --- Lemma 1: order edges on the lower scanline. ---
  std::vector<Entry> ents(edge_ids.size());
  for (std::size_t i = 0; i < edge_ids.size(); ++i) {
    ents[i].e = edge_ids[i];
    const auto& be = bt.edges[static_cast<std::size_t>(edge_ids[i])];
    ents[i].xb = x_on(be, yb);
    ents[i].xt = x_on(be, yt);
  }
  std::sort(ents.begin(), ents.end(), [&](const Entry& a, const Entry& b) {
    if (a.xb != b.xb) return a.xb < b.xb;
    return edge(a).dxdy < edge(b).dxdy;
  });

  // --- Lemma 2/3: parity prefix classifies contributing spans. ---
  {
    bool s = false, c = false;
    for (auto& en : ents) {
      en.left_s = s;
      en.left_c = c;
      s ^= !edge(en).is_clip;
      c ^= edge(en).is_clip;
    }
  }

  // --- Open partial polygons along the lower scanline: each interior
  // stretch runs between two consecutive *contributing* edges (edges
  // across which result membership flips); non-contributing edges inside
  // an interior stretch are not boundary and own nothing. ---
  seq::OutPolyPool pool;
  {
    Entry* open_left = nullptr;
    for (auto& en : ents) {
      const bool lhs = res(en.left_s, en.left_c);
      const bool rhs = res(en.left_s ^ !edge(en).is_clip,
                           en.left_c ^ edge(en).is_clip);
      if (lhs == rhs) continue;  // not contributing
      if (rhs) {
        open_left = &en;  // interior opens to the right of this edge
      } else if (open_left != nullptr) {
        const Point pl{open_left->xb, yb};
        const Point pr{en.xb, yb};
        const std::int32_t id =
            pool.create(pl, /*hole=*/false, open_left->e, en.e);
        if (!(pr == pl)) pool.extend(id, en.e, pr);
        open_left->poly = id;
        en.poly = id;
        open_left = nullptr;
      }
    }
  }

  // --- Lemma 4: crossings = inversions between lower and upper orders,
  // reported by the extended-mergesort machinery. ---
  {
    // Rank of each entry in the upper-scanline order.
    std::vector<std::int32_t> idx(ents.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
      idx[i] = static_cast<std::int32_t>(i);
    std::stable_sort(idx.begin(), idx.end(),
                     [&](std::int32_t a, std::int32_t b) {
                       return ents[static_cast<std::size_t>(a)].xt <
                              ents[static_cast<std::size_t>(b)].xt;
                     });
    std::vector<std::int32_t> rank(ents.size());
    for (std::size_t r2 = 0; r2 < idx.size(); ++r2)
      rank[static_cast<std::size_t>(idx[r2])] = static_cast<std::int32_t>(r2);

    auto pairs = par::report_inversions(rank);
    result.intersections = static_cast<std::int64_t>(pairs.size());

    if (!pairs.empty()) {
      struct Ev {
        std::int32_t eu, ev;
        Point p;
      };
      std::vector<Ev> events;
      events.reserve(pairs.size());
      for (const auto& [i, j] : pairs) {
        const auto& eu = edge(ents[static_cast<std::size_t>(i)]);
        const auto& ev = edge(ents[static_cast<std::size_t>(j)]);
        events.push_back({ents[static_cast<std::size_t>(i)].e,
                          ents[static_cast<std::size_t>(j)].e,
                          geom::line_intersection(eu.bot, eu.top, ev.bot,
                                                  ev.top)});
      }
      std::stable_sort(events.begin(), events.end(),
                       [](const Ev& a, const Ev& b) { return a.p.y < b.p.y; });

      std::unordered_map<std::int32_t, std::size_t> pos;
      pos.reserve(ents.size() * 2);
      for (std::size_t i = 0; i < ents.size(); ++i) pos[ents[i].e] = i;

      std::vector<Ev> pending(std::move(events));
      std::vector<Ev> deferred;
      while (!pending.empty()) {
        bool progress = false;
        deferred.clear();
        for (const Ev& ev : pending) {
          std::size_t iu = pos[ev.eu];
          std::size_t iv = pos[ev.ev];
          if (iu > iv) std::swap(iu, iv);
          if (iu + 1 == iv) {
            seq::emit_crossing(pool, ents[iu], edge(ents[iu]).is_clip,
                               ents[iv], edge(ents[iv]).is_clip, ev.p, op);
            std::swap(ents[iu], ents[iv]);
            pos[ents[iu].e] = iu;
            pos[ents[iv].e] = iv;
            progress = true;
          } else {
            deferred.push_back(ev);
          }
        }
        pending.swap(deferred);
        if (!progress && !pending.empty()) {
          // Coincident-crossing tie (e.g. three nearly concurrent edges):
          // force-process each remaining event as if adjacent and rebuild
          // the parity flags wholesale, so partial contours stay attached
          // and close.
          for (const Ev& ev : pending) {
            std::size_t iu = pos[ev.eu];
            std::size_t iv = pos[ev.ev];
            if (iu > iv) std::swap(iu, iv);
            seq::emit_crossing(pool, ents[iu], edge(ents[iu]).is_clip,
                               ents[iv], edge(ents[iv]).is_clip, ev.p, op);
            std::swap(ents[iu], ents[iv]);
            pos[ents[iu].e] = iu;
            pos[ents[iv].e] = iv;
            bool s = false, c = false;
            for (auto& en : ents) {
              en.left_s = s;
              en.left_c = c;
              s ^= !edge(en).is_clip;
              c ^= edge(en).is_clip;
            }
          }
          break;
        }
      }
    }
  }

  // --- Close partial polygons along the upper scanline, again pairing
  // consecutive contributing edges. ---
  {
    Entry* open_left = nullptr;
    for (auto& en : ents) {
      const bool lhs = res(en.left_s, en.left_c);
      const bool rhs = res(en.left_s ^ !edge(en).is_clip,
                           en.left_c ^ edge(en).is_clip);
      if (lhs == rhs) continue;
      if (rhs) {
        open_left = &en;
      } else if (open_left != nullptr) {
        Entry& l = *open_left;
        open_left = nullptr;
        if (l.poly < 0 || en.poly < 0) continue;  // degenerate-tie fallback
        const Point pl{l.xt, yt};
        const Point pr{en.xt, yt};
        if (!(pl == pr)) pool.extend(l.poly, l.e, pl);
        pool.close(l.poly, l.e, en.poly, en.e, pr);
      }
    }
  }

  // --- Harvest rings. The pool orients material rings counter-clockwise
  // and holes clockwise. Holes arise when an exterior pocket opens at a
  // crossing and closes at another crossing strictly inside the beam
  // (pockets that reach a scanline merge into the material ring there);
  // they carry no scanline-horizontal edges, so the merge phase passes
  // them through and their negative signed area keeps even-odd accounting
  // exact.
  geom::PolygonSet raw = pool.harvest();
  result.rings.reserve(raw.contours.size());
  for (auto& c : raw.contours) result.rings.push_back(std::move(c));
  return result;
}

}  // namespace psclip::core
