#include "parallel/scan.hpp"

#include <numeric>

namespace psclip::par {

void inclusive_scan_seq(std::span<const std::int64_t> in,
                        std::span<std::int64_t> out) {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc += in[i];
    out[i] = acc;
  }
}

std::int64_t exclusive_scan_seq(std::span<const std::int64_t> in,
                                std::span<std::int64_t> out) {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::int64_t v = in[i];  // read before write: allows aliasing
    out[i] = acc;
    acc += v;
  }
  return acc;
}

void inclusive_scan(ThreadPool& pool, std::span<const std::int64_t> in,
                    std::span<std::int64_t> out) {
  const std::size_t n = in.size();
  if (n < 4096 || pool.size() == 1) {
    inclusive_scan_seq(in, out);
    return;
  }
  std::vector<std::int64_t> block_total(pool.size(), 0);
  // Pass 1: block-local inclusive scans.
  pool.parallel_blocks(n, [&](unsigned b, std::size_t begin, std::size_t end) {
    std::int64_t acc = 0;
    for (std::size_t i = begin; i < end; ++i) {
      acc += in[i];
      out[i] = acc;
    }
    block_total[b] = acc;
  });
  // Scan of block totals (tiny, sequential).
  std::int64_t acc = 0;
  for (auto& t : block_total) {
    const std::int64_t v = t;
    t = acc;
    acc += v;
  }
  // Pass 2: add block prefix back.
  pool.parallel_blocks(n, [&](unsigned b, std::size_t begin, std::size_t end) {
    const std::int64_t add = block_total[b];
    if (add == 0) return;
    for (std::size_t i = begin; i < end; ++i) out[i] += add;
  });
}

std::int64_t exclusive_scan(ThreadPool& pool,
                            std::span<const std::int64_t> in,
                            std::span<std::int64_t> out) {
  const std::size_t n = in.size();
  if (n == 0) return 0;
  inclusive_scan(pool, in, out);
  const std::int64_t total = out[n - 1];
  // Shift right by one. Walk backwards so `out` may alias `in`.
  for (std::size_t i = n - 1; i > 0; --i) out[i] = out[i - 1];
  out[0] = 0;
  return total;
}

Allocation allocate_from_counts(ThreadPool& pool,
                                std::span<const std::int64_t> counts) {
  Allocation a;
  a.offsets.resize(counts.size());
  a.total = exclusive_scan(pool, counts, a.offsets);
  return a;
}

}  // namespace psclip::par
