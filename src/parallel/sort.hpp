#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace psclip::par {

/// Parallel stable mergesort.
///
/// This is the practical multicore counterpart of Cole's pipelined
/// mergesort used by the paper's PRAM analysis (§III-E Step 1): blocks are
/// sorted independently, then merged pairwise level by level, giving
/// O((n log n)/p + log p * n/p) work per thread. Stability matters for the
/// scanbeam machinery, where ties are broken by prior order.
template <typename T, typename Compare = std::less<T>>
void parallel_sort(ThreadPool& pool, std::vector<T>& data,
                   Compare cmp = Compare{}) {
  const std::size_t n = data.size();
  const unsigned threads = pool.size();
  if (n < 4096 || threads == 1) {
    std::stable_sort(data.begin(), data.end(), cmp);
    return;
  }

  // Round block count down to a power of two so the merge tree is complete.
  unsigned blocks = 1;
  while (blocks * 2 <= threads) blocks *= 2;
  const std::size_t chunk = (n + blocks - 1) / blocks;

  std::vector<std::size_t> bounds(blocks + 1);
  for (unsigned b = 0; b <= blocks; ++b)
    bounds[b] = std::min<std::size_t>(n, b * chunk);

  pool.parallel_for(blocks, [&](std::size_t b) {
    std::stable_sort(data.begin() + bounds[b], data.begin() + bounds[b + 1],
                     cmp);
  });

  std::vector<T> buf(n);
  T* src = data.data();
  T* dst = buf.data();
  for (unsigned width = 1; width < blocks; width *= 2) {
    const unsigned pairs = blocks / (2 * width);
    pool.parallel_for(pairs, [&](std::size_t pidx) {
      const std::size_t lo = bounds[pidx * 2 * width];
      const std::size_t mid = bounds[pidx * 2 * width + width];
      const std::size_t hi = bounds[pidx * 2 * width + 2 * width];
      std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, cmp);
    });
    std::swap(src, dst);
  }
  if (src != data.data())
    std::copy(src, src + n, data.data());
}

}  // namespace psclip::par
