#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace psclip::par {

/// Inversion machinery (paper Lemma 4 and Table I).
///
/// Within a scanbeam, edges sorted by x on the lower scanline acquire a
/// permutation of ranks on the upper scanline; each *inversion* of that
/// permutation is exactly one pairwise edge crossing inside the beam.
/// The paper extends Cole's pipelined mergesort to (a) count inversions in
/// O(log n) PRAM time and (b) report them output-sensitively after
/// allocating K extra processors. This module is the multicore
/// realization: a bottom-up mergesort that counts per merge-node, an
/// exclusive scan over node counts (the paper's Cnt/Sum arrays), and a
/// second merge pass that writes each inversion into its preallocated slot.

/// A reported inversion: pair of *original positions* (p, q) with p < q and
/// values[p] > values[q]. For scanbeam edges in bottom-scanline order this
/// is precisely the pair of edges that cross inside the beam.
using InversionPair = std::pair<std::int32_t, std::int32_t>;

/// Count inversions of `values` sequentially in O(n log n).
std::int64_t count_inversions(std::span<const std::int32_t> values);

/// Count inversions using the pool (merge nodes of one level in parallel).
std::int64_t count_inversions(ThreadPool& pool,
                              std::span<const std::int32_t> values);

/// Report all inversions via the two-phase count-then-fill pattern.
/// Output order groups pairs by the merge node that discovered them
/// (deterministic but not sorted). O(n log n + K).
std::vector<InversionPair> report_inversions(
    std::span<const std::int32_t> values);

/// Parallel report: same two-phase structure with merge nodes of one level
/// processed in parallel and slots assigned by a prefix sum over node
/// counts.
std::vector<InversionPair> report_inversions(
    ThreadPool& pool, std::span<const std::int32_t> values);

/// One merge step of the extended mergesort, exposed for the Table I
/// reproduction: merges two sorted lists and returns the inversions as
/// *value* pairs (a_value, b_value) in discovery order, mirroring the
/// table's "(7,1), (7,2), ..." notation.
struct MergeTrace {
  std::vector<std::int32_t> merged;
  std::vector<std::pair<std::int32_t, std::int32_t>> inversions;
};
MergeTrace merge_with_inversions(std::span<const std::int32_t> left,
                                 std::span<const std::int32_t> right);

}  // namespace psclip::par
