#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace psclip::par {

/// Sequential inclusive prefix sum: out[i] = in[0] + ... + in[i].
/// `out` may alias `in`.
void inclusive_scan_seq(std::span<const std::int64_t> in,
                        std::span<std::int64_t> out);

/// Sequential exclusive prefix sum: out[i] = in[0] + ... + in[i-1], out[0]=0.
/// Returns the grand total. `out` may alias `in`.
std::int64_t exclusive_scan_seq(std::span<const std::int64_t> in,
                                std::span<std::int64_t> out);

/// Parallel inclusive prefix sum — the blocked two-pass algorithm
/// (block-local scans, scan of block totals, add-back). This is the
/// multicore realization of the PRAM prefix-sum primitive that Lemma 3's
/// parity test and the output-sensitive processor allocation both rest on.
void inclusive_scan(ThreadPool& pool, std::span<const std::int64_t> in,
                    std::span<std::int64_t> out);

/// Parallel exclusive prefix sum; returns the grand total.
std::int64_t exclusive_scan(ThreadPool& pool,
                            std::span<const std::int64_t> in,
                            std::span<std::int64_t> out);

/// Output-sensitive two-phase allocation helper: given per-item output
/// counts, returns the offset array (exclusive scan) and total size —
/// exactly the paper's "count, allocate processors, then report" pattern
/// (§III-E Step 2, Lemma 4).
struct Allocation {
  std::vector<std::int64_t> offsets;  ///< offsets[i] = start slot of item i
  std::int64_t total = 0;             ///< sum of all counts
};
Allocation allocate_from_counts(ThreadPool& pool,
                                std::span<const std::int64_t> counts);

}  // namespace psclip::par
