#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace psclip::par {

/// Per-thread slot store for reusable scratch arenas.
///
/// `local()` returns a T owned by the pair (this WorkerLocal instance,
/// calling thread). ThreadPool workers are long-lived threads, so a worker
/// that executes many slab tasks gets the same T back every time and its
/// internal buffers stay warm across tasks — including stolen ones, since
/// ownership follows the *executing* thread, not the submitting one.
/// External threads (e.g. a TaskGroup waiter helping to drain the queues)
/// get their own slot, so two pools, or two concurrent parallel regions on
/// one pool, never hand the same T to two threads: no synchronization is
/// needed inside T and no locks are taken on the local() fast path beyond
/// one thread-local hash lookup.
///
/// Intended for instances with program lifetime (function-local statics):
/// a slot created by a thread stays registered until the WorkerLocal dies,
/// and a thread keeps its map entry until the thread exits.
template <typename T>
class WorkerLocal {
 public:
  /// The calling thread's T, created on first use.
  T& local() {
    thread_local std::unordered_map<std::uint64_t, std::shared_ptr<T>> slots;
    std::shared_ptr<T>& slot = slots[id_];
    if (!slot) {
      slot = std::make_shared<T>();
      std::lock_guard lk(mu_);
      all_.push_back(slot);
    }
    return *slot;
  }

  /// Number of distinct threads that have called local() so far.
  [[nodiscard]] std::size_t slots() const {
    std::lock_guard lk(mu_);
    return all_.size();
  }

  /// Visit every slot created so far (for aggregate statistics). Takes the
  /// registry lock; must not race with owners mutating their slots — call
  /// from quiescent points (e.g. after TaskGroup::wait).
  template <typename F>
  void for_each(F&& f) const {
    std::lock_guard lk(mu_);
    for (const auto& s : all_) f(*s);
  }

 private:
  static std::uint64_t next_id() {
    static std::atomic<std::uint64_t> n{0};
    return n.fetch_add(1, std::memory_order_relaxed);
  }

  const std::uint64_t id_ = next_id();
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<T>> all_;
};

}  // namespace psclip::par
