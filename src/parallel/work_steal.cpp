#include "parallel/work_steal.hpp"

#include <exception>
#include <thread>
#include <utility>

#include "error.hpp"
#include "obs/trace.hpp"
#include "parallel/cancel.hpp"
#include "parallel/fault.hpp"
#include "parallel/thread_pool.hpp"

namespace psclip::par {

void StealDeque::push(std::function<void()> task) {
  std::lock_guard lk(mu_);
  q_.push_back(std::move(task));
}

bool StealDeque::pop(std::function<void()>& task) {
  std::lock_guard lk(mu_);
  if (q_.empty()) return false;
  task = std::move(q_.back());
  q_.pop_back();
  return true;
}

std::vector<std::function<void()>> StealDeque::steal_half() {
  std::lock_guard lk(mu_);
  std::vector<std::function<void()>> out;
  if (q_.empty()) return out;
  const std::size_t take = (q_.size() + 1) / 2;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  return out;
}

bool StealDeque::steal_one(std::function<void()>& task) {
  std::lock_guard lk(mu_);
  if (q_.empty()) return false;
  task = std::move(q_.front());
  q_.pop_front();
  return true;
}

std::size_t StealDeque::size() const {
  std::lock_guard lk(mu_);
  return q_.size();
}

TaskGroup::~TaskGroup() { drain(); }

void TaskGroup::record_failure() {
  failures_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard lk(eptr_mu_);
  if (!failed_.exchange(true, std::memory_order_acq_rel)) {
    eptr_ = std::current_exception();
    try {
      std::rethrow_exception(std::current_exception());
    } catch (const std::exception& e) {
      first_message_ = e.what();
    } catch (...) {
      first_message_ = "unknown exception";
    }
  }
}

void TaskGroup::run(std::function<void()> task) {
  const std::uint64_t idx = seq_.fetch_add(1, std::memory_order_relaxed);
  // The submitter's governance token travels with the task: whichever
  // worker steals it re-installs the token, so checkpoints inside the body
  // observe the request's cancel/deadline/budget no matter where it runs.
  const gov::CapturedToken tok;
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_.submit_stealable([this, idx, tok, task = std::move(task)] {
    // After a failure the not-yet-started group tasks are skipped, not run
    // — the same early exit parallel_for applies to its chunks. Tasks
    // already in flight can still throw; every throw is recorded.
    if (!failed_.load(std::memory_order_acquire)) {
      try {
        fault::ScopedKey key(idx);
        gov::ScopedState gov_state(tok.state());
        gov::checkpoint_now();
        fault::inject(fault::Site::kTaskGroup);
        task();
      } catch (...) {
        record_failure();
      }
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  });
}

void TaskGroup::drain() {
  // Help-first waiting: run queued tasks (any group's) instead of parking,
  // so a group waited on from inside a pool task cannot deadlock the pool.
  // The wait span (process-wide sink; null = one relaxed load) makes time
  // spent helping vs. yielding visible in traces.
  if (pending_.load(std::memory_order_acquire) == 0) return;
  obs::ScopedSpan wait_span(obs::global_sink(), "taskgroup.wait",
                            obs::Cat::kSchedule);
  std::int64_t helped = 0;
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (pool_.help_one())
      ++helped;
    else
      std::this_thread::yield();
  }
  wait_span.arg("helped", helped);
}

void TaskGroup::wait() {
  drain();
  if (failed_.load(std::memory_order_acquire)) {
    std::exception_ptr e;
    std::string msg;
    {
      std::lock_guard lk(eptr_mu_);
      e = std::exchange(eptr_, nullptr);
      msg = std::exchange(first_message_, {});
    }
    const std::uint64_t n = failures_.exchange(0, std::memory_order_acq_rel);
    failed_.store(false, std::memory_order_release);  // group is reusable
    // If the waiter's installed token tripped, report the precise
    // governance code instead of folding the (possibly many) resulting
    // task failures into an opaque kTaskFailure.
    if (n > 0) gov::rethrow_if_stopped();
    if (n > 1)
      throw Error(ErrorCode::kTaskFailure,
                  std::to_string(n) + " tasks failed; first: " + msg);
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace psclip::par
