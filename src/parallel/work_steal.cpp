#include "parallel/work_steal.hpp"

#include <thread>
#include <utility>

#include "parallel/thread_pool.hpp"

namespace psclip::par {

void StealDeque::push(std::function<void()> task) {
  std::lock_guard lk(mu_);
  q_.push_back(std::move(task));
}

bool StealDeque::pop(std::function<void()>& task) {
  std::lock_guard lk(mu_);
  if (q_.empty()) return false;
  task = std::move(q_.back());
  q_.pop_back();
  return true;
}

std::vector<std::function<void()>> StealDeque::steal_half() {
  std::lock_guard lk(mu_);
  std::vector<std::function<void()>> out;
  if (q_.empty()) return out;
  const std::size_t take = (q_.size() + 1) / 2;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(std::move(q_.front()));
    q_.pop_front();
  }
  return out;
}

bool StealDeque::steal_one(std::function<void()>& task) {
  std::lock_guard lk(mu_);
  if (q_.empty()) return false;
  task = std::move(q_.front());
  q_.pop_front();
  return true;
}

std::size_t StealDeque::size() const {
  std::lock_guard lk(mu_);
  return q_.size();
}

TaskGroup::~TaskGroup() { drain(); }

void TaskGroup::run(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_.submit_stealable([this, task = std::move(task)] {
    // After a failure the remaining group tasks are skipped, not run —
    // the same early-exit parallel_for applies to its chunks.
    if (!failed_.load(std::memory_order_acquire)) {
      try {
        task();
      } catch (...) {
        std::lock_guard lk(eptr_mu_);
        if (!failed_.exchange(true, std::memory_order_acq_rel))
          eptr_ = std::current_exception();
      }
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  });
}

void TaskGroup::drain() {
  // Help-first waiting: run queued tasks (any group's) instead of parking,
  // so a group waited on from inside a pool task cannot deadlock the pool.
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (!pool_.help_one()) std::this_thread::yield();
  }
}

void TaskGroup::wait() {
  drain();
  if (failed_.load(std::memory_order_acquire)) {
    std::exception_ptr e;
    {
      std::lock_guard lk(eptr_mu_);
      e = std::exchange(eptr_, nullptr);
    }
    failed_.store(false, std::memory_order_release);  // group is reusable
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace psclip::par
