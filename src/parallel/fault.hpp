#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <new>
#include <string>
#include <thread>

#include "error.hpp"
#include "parallel/cancel.hpp"

namespace psclip::par::fault {

/// Deterministic fault-injection framework.
///
/// Production builds compile every site down to nothing (the whole state
/// machine below is gated on the PSCLIP_FAULT_INJECTION compile definition,
/// set by the CMake option of the same name). Injection builds let a test
/// arm exactly one Plan at a time: a site, a fault kind, a key selecting
/// *which* execution context fires (slab index, task index, or any), and a
/// fire count. Each matching site evaluation consumes one firing until the
/// count is exhausted, so a test can force a failure at attempt 1 only
/// (exercising the first degradation rung), attempts 1..k (driving the
/// ladder k rungs deep), or every attempt within one slab (forcing the
/// whole-input fallback) — all bit-reproducibly, with no timing dependence.
///
/// Keys make targeting deterministic under the work-stealing scheduler: a
/// slab task installs ScopedKey(slab) for its whole attempt, so a plan
/// keyed on a slab fires in that slab no matter which worker runs it.

/// Where a fault can be injected.
enum class Site : int {
  kRectClip = 0,  ///< seq::rect_clip / rect_clip_subset straddling path
  kVattiSweep,    ///< seq::vatti_clip entry / output
  kArena,         ///< mt::worker_arena() borrow (throw kinds only on entry)
  kTaskGroup,     ///< par::TaskGroup task wrapper, before the body runs
  kFusedBounds,   ///< seq::clip_bounds_to_slab entry / piece output
};
inline constexpr int kSiteCount = 5;

inline const char* to_string(Site s) {
  switch (s) {
    case Site::kRectClip: return "rect-clip";
    case Site::kVattiSweep: return "vatti-sweep";
    case Site::kArena: return "arena";
    case Site::kTaskGroup: return "task-group";
    case Site::kFusedBounds: return "fused-bounds";
  }
  return "?";
}

/// What the fault does when it fires.
enum class Kind : int {
  kThrow = 0,  ///< throw psclip::Error(kInjected)
  kBadAlloc,   ///< throw std::bad_alloc (resource-exhaustion class)
  kCorrupt,    ///< silently poison the site's output with a non-finite vertex
  kStall,      ///< sleep Plan::magnitude ms — a slow site, not a broken one
  kHog,        ///< transient Plan::magnitude-byte spike against the installed
               ///< gov budget; throws kBudgetExceeded only if it doesn't fit
};
/// Count of the *throwing/corrupting* kinds seeded_plan draws from. The
/// governance kinds (kStall/kHog) have their own generator so the original
/// fuzz lane's plans — and its fired ⟹ degraded invariant, which a stall
/// would violate — are unchanged.
inline constexpr int kKindCount = 3;
inline constexpr int kGovernanceKindCount = 2;

inline const char* to_string(Kind k) {
  switch (k) {
    case Kind::kThrow: return "throw";
    case Kind::kBadAlloc: return "bad-alloc";
    case Kind::kCorrupt: return "corrupt";
    case Kind::kStall: return "stall";
    case Kind::kHog: return "hog";
  }
  return "?";
}

/// Matches every key (and contexts that installed no key at all).
inline constexpr std::uint64_t kAnyKey = ~std::uint64_t{0};
/// Thread-local key value outside any ScopedKey scope. Distinct from every
/// real slab/task index, so a keyed plan can never fire in the whole-input
/// sequential fallback (which deliberately runs keyless).
inline constexpr std::uint64_t kNoKey = ~std::uint64_t{0} - 1;

struct Plan {
  Site site = Site::kVattiSweep;
  Kind kind = Kind::kThrow;
  /// Context key the plan fires in: a slab index (sites inside slab
  /// attempts), a TaskGroup submission index (kTaskGroup), or kAnyKey.
  std::uint64_t key = kAnyKey;
  /// Number of matching site evaluations that fault before the plan goes
  /// quiet (it stays armed so `fired()` keeps reporting).
  std::uint64_t fire_count = 1;
  /// Kind-specific size: milliseconds slept per kStall firing, bytes spiked
  /// per kHog firing. 0 selects the kind's default (5 ms / 1 GiB).
  std::uint64_t magnitude = 0;
};

/// Default magnitudes, exposed so tests can assert against them.
inline constexpr std::uint64_t kDefaultStallMs = 5;
inline constexpr std::uint64_t kDefaultHogBytes = 1ull << 30;

/// Derive a pseudo-random single-shot plan from a seed — the fuzz lane's
/// source of fault diversity. kCorrupt is only meaningful at sites that
/// produce geometry, so kTaskGroup faults are always kThrow.
inline Plan seeded_plan(std::uint64_t seed, std::uint64_t max_key) {
  // SplitMix64 finalizer: decorrelate the consecutive corpus seeds.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  Plan p;
  p.site = static_cast<Site>(z % kSiteCount);
  p.kind = p.site == Site::kTaskGroup
               ? Kind::kThrow
               : static_cast<Kind>((z >> 8) % kKindCount);
  p.key = max_key ? (z >> 16) % max_key : kAnyKey;
  p.fire_count = 1;
  return p;
}

/// Governance-kind sibling of seeded_plan: single-shot kStall or kHog at a
/// pseudo-random site/key. Stalls stay short (1..8 ms) so fuzz lanes remain
/// fast; hogs spike large (1 GiB) so any installed finite budget trips.
inline Plan seeded_governance_plan(std::uint64_t seed, std::uint64_t max_key) {
  std::uint64_t z = (seed ^ 0xa5a5a5a5a5a5a5a5ull) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  Plan p;
  p.site = static_cast<Site>(z % kSiteCount);
  p.kind = ((z >> 8) % kGovernanceKindCount) == 0 ? Kind::kStall : Kind::kHog;
  p.key = max_key ? (z >> 16) % max_key : kAnyKey;
  p.fire_count = 1;
  p.magnitude = p.kind == Kind::kStall ? 1 + ((z >> 32) % 8) : kDefaultHogBytes;
  return p;
}

#ifdef PSCLIP_FAULT_INJECTION

namespace detail {
inline std::atomic<bool> g_armed{false};
inline Plan g_plan;  // written only while disarmed
inline std::atomic<std::uint64_t> g_remaining{0};
inline std::atomic<std::uint64_t> g_fired{0};
inline thread_local std::uint64_t t_key = kNoKey;

/// Claim one firing if the armed plan matches this site/kind/key.
inline bool claim(Site site, Kind kind) {
  if (!g_armed.load(std::memory_order_acquire)) return false;
  const Plan& p = g_plan;
  if (p.site != site || p.kind != kind) return false;
  if (p.key != kAnyKey && p.key != t_key) return false;
  std::uint64_t r = g_remaining.load(std::memory_order_relaxed);
  while (r > 0) {
    if (g_remaining.compare_exchange_weak(r, r - 1,
                                          std::memory_order_acq_rel)) {
      g_fired.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}
}  // namespace detail

/// Install the fault key for the current thread for the current scope
/// (slab attempts install their slab index; TaskGroup installs the
/// submission index around each task body).
class ScopedKey {
 public:
  explicit ScopedKey(std::uint64_t key) : prev_(detail::t_key) {
    detail::t_key = key;
  }
  ~ScopedKey() { detail::t_key = prev_; }
  ScopedKey(const ScopedKey&) = delete;
  ScopedKey& operator=(const ScopedKey&) = delete;

 private:
  std::uint64_t prev_;
};

inline void arm(const Plan& p) {
  detail::g_armed.store(false, std::memory_order_release);
  detail::g_plan = p;
  detail::g_fired.store(0, std::memory_order_relaxed);
  detail::g_remaining.store(p.fire_count, std::memory_order_relaxed);
  detail::g_armed.store(true, std::memory_order_release);
}

inline void disarm() { detail::g_armed.store(false, std::memory_order_release); }

/// Total faults fired since the last arm().
inline std::uint64_t fired() {
  return detail::g_fired.load(std::memory_order_relaxed);
}

/// Throw-type injection point. Call at a site's entry; throws when an armed
/// kThrow/kBadAlloc plan matches, otherwise free.
inline void inject(Site site) {
  if (detail::claim(site, Kind::kThrow))
    throw Error(ErrorCode::kInjected,
                std::string("injected fault at ") + to_string(site));
  if (detail::claim(site, Kind::kBadAlloc)) throw std::bad_alloc();
  if (detail::claim(site, Kind::kStall)) {
    const std::uint64_t ms =
        detail::g_plan.magnitude ? detail::g_plan.magnitude : kDefaultStallMs;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
  if (detail::claim(site, Kind::kHog)) {
    // Transient allocation spike: probe the installed budget and release
    // immediately (the hog's memory does not outlive the site). Without a
    // budget the spike is unobservable; with one that it doesn't fit, the
    // site fails exactly like a real OOM would — preemptively.
    const std::uint64_t bytes =
        detail::g_plan.magnitude ? detail::g_plan.magnitude : kDefaultHogBytes;
    if (ResourceBudget* b = gov::current_budget())
      if (!b->charge_transient(bytes))
        throw Error(ErrorCode::kBudgetExceeded,
                    std::string("injected allocation spike at ") +
                        to_string(site) + " (" + std::to_string(bytes) +
                        " bytes)");
  }
}

/// Corruption-type injection point. Call where a site can poison its
/// geometric output; returns true when the caller must emit a non-finite
/// vertex (simulating the silent-corruption failure mode the fuzz harness
/// caught in the wild).
inline bool corrupt(Site site) { return detail::claim(site, Kind::kCorrupt); }

inline constexpr bool kEnabled = true;

#else  // !PSCLIP_FAULT_INJECTION — everything compiles to nothing.

class ScopedKey {
 public:
  explicit ScopedKey(std::uint64_t) {}
  ScopedKey(const ScopedKey&) = delete;
  ScopedKey& operator=(const ScopedKey&) = delete;
};

inline void arm(const Plan&) {}
inline void disarm() {}
inline std::uint64_t fired() { return 0; }
inline void inject(Site) {}
inline bool corrupt(Site) { return false; }

inline constexpr bool kEnabled = false;

#endif  // PSCLIP_FAULT_INJECTION

}  // namespace psclip::par::fault
