#pragma once

#include <chrono>
#include <ctime>

namespace psclip::par {

/// Monotonic wall-clock stopwatch used by the benchmark harness and the
/// per-phase instrumentation in Algorithm 2 (Figs. 9 and 11).
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Per-thread CPU-time stopwatch: counts only time the *calling thread*
/// actually executed, excluding time it was descheduled. This is the clock
/// the per-phase `*_cpu` fields of Alg2Stats::PhaseTimes are measured with;
/// wall timers inside slab tasks double-charge whenever workers timeshare
/// cores (on an oversubscribed or small machine a slab's wall time includes
/// every other runnable worker's slice, which is how the schema-2 reports
/// came to show clip "CPU" doubling from 1 to 4 slabs while the work grew
/// 4%). Falls back to the wall clock where the POSIX per-thread clock is
/// unavailable.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}

  void reset() { start_ = now(); }

  /// CPU seconds this thread consumed since construction / last reset().
  [[nodiscard]] double seconds() const { return now() - start_; }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  static double now() {
#ifdef CLOCK_THREAD_CPUTIME_ID
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  double start_;
};

}  // namespace psclip::par
