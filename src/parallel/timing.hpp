#pragma once

#include <chrono>

namespace psclip::par {

/// Monotonic wall-clock stopwatch used by the benchmark harness and the
/// per-phase instrumentation in Algorithm 2 (Figs. 9 and 11).
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace psclip::par
