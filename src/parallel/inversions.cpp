#include "parallel/inversions.hpp"

#include <algorithm>
#include <numeric>

#include "parallel/scan.hpp"

namespace psclip::par {
namespace {

struct Item {
  std::int32_t value;
  std::int32_t pos;  // original index
};

/// Merge [lo,mid) and [mid,hi) from src into dst. If `out` is non-null,
/// append discovered inversion pairs (left_pos, right_pos) at *cursor.
/// Returns the number of inversions in this node.
std::int64_t merge_node(const Item* src, Item* dst, std::size_t lo,
                        std::size_t mid, std::size_t hi, InversionPair* out,
                        std::int64_t* cursor) {
  std::int64_t inv = 0;
  std::size_t i = lo, j = mid, k = lo;
  while (i < mid && j < hi) {
    if (src[j].value < src[i].value) {
      // Every remaining left element forms an inversion with src[j].
      inv += static_cast<std::int64_t>(mid - i);
      if (out) {
        for (std::size_t t = i; t < mid; ++t)
          out[(*cursor)++] = {src[t].pos, src[j].pos};
      }
      dst[k++] = src[j++];
    } else {
      dst[k++] = src[i++];
    }
  }
  while (i < mid) dst[k++] = src[i++];
  while (j < hi) dst[k++] = src[j++];
  return inv;
}

std::vector<Item> make_items(std::span<const std::int32_t> values) {
  std::vector<Item> items(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    items[i] = {values[i], static_cast<std::int32_t>(i)};
  return items;
}

/// Bottom-up extended mergesort. Phase 1 (out == nullptr): count only,
/// filling `node_counts` with one entry per merge node in traversal order.
/// Phase 2 (out != nullptr): identical traversal, writing pairs at offsets
/// taken from `node_offsets` (the paper's Sum array).
std::int64_t run_mergesort(ThreadPool* pool,
                           std::span<const std::int32_t> values,
                           std::vector<std::int64_t>* node_counts,
                           const std::vector<std::int64_t>* node_offsets,
                           InversionPair* out) {
  const std::size_t n = values.size();
  std::vector<Item> a = make_items(values);
  std::vector<Item> b(n);
  Item* src = a.data();
  Item* dst = b.data();

  std::int64_t total = 0;
  std::size_t node_index = 0;
  for (std::size_t width = 1; width < n; width *= 2) {
    const std::size_t nodes = (n + 2 * width - 1) / (2 * width);
    auto do_node = [&](std::size_t nd) -> std::int64_t {
      const std::size_t lo = nd * 2 * width;
      const std::size_t mid = std::min(n, lo + width);
      const std::size_t hi = std::min(n, lo + 2 * width);
      std::int64_t cursor = 0;
      InversionPair* slot = nullptr;
      if (out) {
        cursor = (*node_offsets)[node_index + nd];
        slot = out;
      }
      return merge_node(src, dst, lo, mid, hi, slot, &cursor);
    };

    if (pool && nodes > 1) {
      std::vector<std::int64_t> level_inv(nodes, 0);
      pool->parallel_for(nodes, [&](std::size_t nd) {
        level_inv[nd] = do_node(nd);
      });
      for (std::size_t nd = 0; nd < nodes; ++nd) {
        total += level_inv[nd];
        if (node_counts) node_counts->push_back(level_inv[nd]);
      }
    } else {
      for (std::size_t nd = 0; nd < nodes; ++nd) {
        const std::int64_t inv = do_node(nd);
        total += inv;
        if (node_counts) node_counts->push_back(inv);
      }
    }
    node_index += nodes;
    std::swap(src, dst);
  }
  return total;
}

std::vector<InversionPair> report_impl(ThreadPool* pool,
                                       std::span<const std::int32_t> values) {
  if (values.size() < 2) return {};
  // Phase 1: count per merge node (the paper's Cnt array).
  std::vector<std::int64_t> counts;
  const std::int64_t total = run_mergesort(pool, values, &counts, nullptr,
                                           nullptr);
  // Paper's Sum array: where each node writes its pairs.
  std::vector<std::int64_t> offsets(counts.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    offsets[i] = acc;
    acc += counts[i];
  }
  // Phase 2: repeat the merges, reporting into preallocated slots.
  std::vector<InversionPair> out(static_cast<std::size_t>(total));
  run_mergesort(pool, values, nullptr, &offsets, out.data());
  return out;
}

}  // namespace

std::int64_t count_inversions(std::span<const std::int32_t> values) {
  if (values.size() < 2) return 0;
  return run_mergesort(nullptr, values, nullptr, nullptr, nullptr);
}

std::int64_t count_inversions(ThreadPool& pool,
                              std::span<const std::int32_t> values) {
  if (values.size() < 2) return 0;
  return run_mergesort(&pool, values, nullptr, nullptr, nullptr);
}

std::vector<InversionPair> report_inversions(
    std::span<const std::int32_t> values) {
  return report_impl(nullptr, values);
}

std::vector<InversionPair> report_inversions(
    ThreadPool& pool, std::span<const std::int32_t> values) {
  return report_impl(&pool, values);
}

MergeTrace merge_with_inversions(std::span<const std::int32_t> left,
                                 std::span<const std::int32_t> right) {
  MergeTrace tr;
  tr.merged.reserve(left.size() + right.size());
  std::size_t i = 0, j = 0;
  while (i < left.size() && j < right.size()) {
    if (right[j] < left[i]) {
      for (std::size_t t = i; t < left.size(); ++t)
        tr.inversions.emplace_back(left[t], right[j]);
      tr.merged.push_back(right[j++]);
    } else {
      tr.merged.push_back(left[i++]);
    }
  }
  while (i < left.size()) tr.merged.push_back(left[i++]);
  while (j < right.size()) tr.merged.push_back(right[j++]);
  return tr;
}

}  // namespace psclip::par
