#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "error.hpp"
#include "parallel/cancel.hpp"

namespace psclip::par {

/// FIFO admission gate for a serving layer: at most `max_in_flight` holders
/// run concurrently, at most `max_waiting` callers queue behind them, and
/// anything beyond that is rejected immediately with Error(kResource) — the
/// backpressure contract a caller can retry against, never an unbounded
/// line that hides overload as latency (DESIGN.md §12).
///
/// Waiters are served strictly in arrival order (a ticket queue, not a
/// bare condition variable whose wakeup order the OS picks), so a stream of
/// small fast requests cannot indefinitely overtake — and thereby starve —
/// an earlier large one at the door. A waiting caller's own governance
/// token keeps working while it queues: cancellation, deadline expiry or a
/// blown budget abandons the wait and surfaces the precise governance code
/// instead of blocking on capacity that may never free up.
class AdmissionGate {
 public:
  /// `max_in_flight` == 0 means unlimited (the gate only counts).
  explicit AdmissionGate(unsigned max_in_flight, unsigned max_waiting = 0)
      : limit_(max_in_flight), max_waiting_(max_waiting) {}

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// Acquire one slot, FIFO. Throws Error(kResource) when both the
  /// in-flight limit and the waiting line are full at entry, and the
  /// token's precise governance Error if it trips while waiting.
  void acquire(const CancelToken& token = {}) {
    std::unique_lock lk(mu_);
    if (limit_ == 0) {
      ++in_flight_;
      return;
    }
    if (in_flight_ < limit_ && queue_.empty()) {
      ++in_flight_;
      return;
    }
    if (queue_.size() >= max_waiting_)
      throw Error(ErrorCode::kResource,
                  "admission queue full (" + std::to_string(in_flight_) +
                      " in flight, " + std::to_string(queue_.size()) +
                      " waiting)");
    const std::uint64_t my = next_ticket_++;
    queue_.push_back(my);
    // Poll-wait: a trip on `token` has no hook into this cv, so bound the
    // sleep and re-check. 10 ms keeps governance responsive against an
    // event that is rare by construction (waiting here means the service
    // is saturated).
    while (!(in_flight_ < limit_ && !queue_.empty() && queue_.front() == my)) {
      if (token.stopped()) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          if (*it == my) {
            queue_.erase(it);
            break;
          }
        }
        cv_.notify_all();  // the next ticket may now be at the front
        token.rethrow_if_stopped();
      }
      cv_.wait_for(lk, std::chrono::milliseconds(10));
    }
    queue_.pop_front();
    ++in_flight_;
    cv_.notify_all();
  }

  /// Release a slot acquired by this thread or any other.
  void release() {
    {
      std::lock_guard lk(mu_);
      if (in_flight_ > 0) --in_flight_;
    }
    cv_.notify_all();
  }

  /// RAII slot: acquire in the constructor, release in the destructor.
  class Slot {
   public:
    explicit Slot(AdmissionGate& gate, const CancelToken& token = {})
        : gate_(&gate) {
      gate_->acquire(token);
    }
    ~Slot() {
      if (gate_) gate_->release();
    }
    Slot(Slot&& o) noexcept : gate_(o.gate_) { o.gate_ = nullptr; }
    Slot& operator=(Slot&&) = delete;
    Slot(const Slot&) = delete;
    Slot& operator=(const Slot&) = delete;

   private:
    AdmissionGate* gate_;
  };

  [[nodiscard]] unsigned in_flight() const {
    std::lock_guard lk(mu_);
    return in_flight_;
  }
  [[nodiscard]] unsigned waiting() const {
    std::lock_guard lk(mu_);
    return static_cast<unsigned>(queue_.size());
  }
  [[nodiscard]] unsigned limit() const { return limit_; }

 private:
  const unsigned limit_;
  const unsigned max_waiting_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::uint64_t> queue_;
  std::uint64_t next_ticket_ = 0;
  unsigned in_flight_ = 0;
};

}  // namespace psclip::par
