#pragma once

// Request governance: cooperative cancellation, deadlines, and memory
// budgets (DESIGN.md §11).
//
// The paper's central claim — output-sensitive cost — cuts both ways for a
// service: the cost of a request is unknowable before running it, so the
// only way to bound tail latency and memory is to govern the request *while
// it runs*. This header provides the three primitives and the propagation
// machinery:
//
//   Deadline        an absolute steady_clock expiry (or "none").
//   ResourceBudget  a relaxed-atomic byte meter with a hard limit; charging
//                   past the limit trips a sticky "blown" flag.
//   CancelToken     a copyable handle bundling an explicit cancel flag, a
//                   Deadline, and a ResourceBudget*. A default token governs
//                   nothing and costs one null check per checkpoint.
//
// Propagation mirrors fault::ScopedKey: a thread installs the token state
// in a thread_local via ScopedToken, so checkpoints deep in the sequential
// kernels (per scanbeam in the Vatti sweep) need no plumbed parameter.
// ThreadPool::parallel_for and TaskGroup::run capture the submitter's
// installed token and re-install it inside each task body, so governance
// survives work stealing exactly like fault keys do.
//
// checkpoint() is the single cooperative preemption point. Hot path: one
// thread_local load + null test. With a token installed: one relaxed load
// of the cancel flag, and an amortized (1-in-32) steady_clock read for the
// deadline, keeping per-scanbeam use under the 1% overhead gate
// (bench_governance_overhead). Tripping throws psclip::Error with the
// precise code (kCancelled / kDeadlineExceeded / kBudgetExceeded) so the
// degradation ladder can route on it.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "error.hpp"

namespace psclip::par {

/// Absolute expiry on the steady clock. Default-constructed = no deadline.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;
  explicit Deadline(Clock::time_point at) : at_(at), armed_(true) {}

  /// Deadline `ms` milliseconds from now.
  static Deadline in_ms(std::int64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }

  [[nodiscard]] bool armed() const { return armed_; }
  [[nodiscard]] Clock::time_point at() const { return at_; }
  [[nodiscard]] bool expired() const { return armed_ && Clock::now() >= at_; }

  /// Milliseconds until expiry (negative once past due); 0 when unarmed.
  [[nodiscard]] std::int64_t remaining_ms() const {
    if (!armed_) return 0;
    return std::chrono::duration_cast<std::chrono::milliseconds>(at_ -
                                                                 Clock::now())
        .count();
  }

 private:
  Clock::time_point at_{};
  bool armed_ = false;
};

/// Relaxed-atomic byte meter. Accounting is approximate and structural
/// (container capacities, not malloc telemetry): charges are made where the
/// library grows its big structures — slab scratch arenas, bound tables,
/// prepared-fragment assembly, output-polygon growth — and released when
/// the structure is returned or the attempt unwinds. `limit == 0` means
/// unlimited (the meter still tracks peak for reporting).
///
/// Over-limit charging is detected at try_charge(); the first failure sets
/// a sticky `blown` flag so every subsequent checkpoint on any thread trips
/// too (one slab blowing the budget cancels the whole request's appetite,
/// not just that slab's attempt — unless the charge is released first, see
/// charge_transient()).
class ResourceBudget {
 public:
  ResourceBudget() = default;
  explicit ResourceBudget(std::uint64_t limit_bytes) : limit_(limit_bytes) {}

  [[nodiscard]] std::uint64_t limit() const { return limit_; }
  [[nodiscard]] std::uint64_t used() const {
    return used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t peak() const {
    return peak_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool blown() const {
    return blown_.load(std::memory_order_relaxed);
  }

  /// Charge `bytes`; returns false (and marks the budget blown) when the
  /// charge would exceed the limit. The failed charge is NOT recorded.
  [[nodiscard]] bool try_charge(std::uint64_t bytes) {
    const std::uint64_t now =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (limit_ != 0 && now > limit_) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      blown_.store(true, std::memory_order_relaxed);
      return false;
    }
    // Peak is a monotonic max; racing relaxed CAS is fine (reporting only).
    std::uint64_t p = peak_.load(std::memory_order_relaxed);
    while (now > p &&
           !peak_.compare_exchange_weak(p, now, std::memory_order_relaxed)) {
    }
    return true;
  }

  void release(std::uint64_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Probe a transient spike: charge then immediately release, reporting
  /// whether it fit. Peak still records the spike; a failed probe does NOT
  /// set the sticky flag (the memory was never retained), letting the
  /// degradation ladder retry the attempt that hogged.
  [[nodiscard]] bool charge_transient(std::uint64_t bytes) {
    const std::uint64_t now =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    const bool fits = limit_ == 0 || now <= limit_;
    if (fits) {
      std::uint64_t p = peak_.load(std::memory_order_relaxed);
      while (now > p &&
             !peak_.compare_exchange_weak(p, now, std::memory_order_relaxed)) {
      }
    }
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return fits;
  }

  /// Zero the meter (between requests; not thread-safe vs. active charges).
  void reset() {
    used_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
    blown_.store(false, std::memory_order_relaxed);
  }

 private:
  std::uint64_t limit_ = 0;  // 0 = unlimited
  std::atomic<std::uint64_t> used_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<bool> blown_{false};
};

namespace detail {
/// Shared state behind CancelToken copies. Lives as long as any copy does,
/// so a worker checkpointing after the submitter returned is safe.
struct TokenState {
  std::atomic<bool> cancelled{false};
  Deadline deadline;
  std::shared_ptr<ResourceBudget> budget;  // may be null
};
}  // namespace detail

/// Copyable cancellation/deadline/budget handle. A default-constructed
/// token is "null": it governs nothing and every check is free. Tokens are
/// value types over shared state — copies observe the same cancel flag and
/// budget, and keeping any copy alive keeps the state alive.
class CancelToken {
 public:
  CancelToken() = default;

  static CancelToken make() {
    CancelToken t;
    t.state_ = std::make_shared<detail::TokenState>();
    return t;
  }
  static CancelToken with_deadline(Deadline d) {
    CancelToken t = make();
    t.state_->deadline = d;
    return t;
  }

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// Request cancellation; every checkpoint on every thread trips next time
  /// it runs. Safe from any thread, idempotent. No-op on a null token.
  void cancel() const {
    if (state_) state_->cancelled.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancel_requested() const {
    return state_ && state_->cancelled.load(std::memory_order_relaxed);
  }

  void set_deadline(Deadline d) {
    if (state_) state_->deadline = d;
  }
  [[nodiscard]] Deadline deadline() const {
    return state_ ? state_->deadline : Deadline{};
  }

  void set_budget(std::shared_ptr<ResourceBudget> b) {
    if (state_) state_->budget = std::move(b);
  }
  [[nodiscard]] ResourceBudget* budget() const {
    return state_ ? state_->budget.get() : nullptr;
  }

  /// True once any governance condition has tripped.
  [[nodiscard]] bool stopped() const {
    if (!state_) return false;
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    if (state_->budget && state_->budget->blown()) return true;
    return state_->deadline.expired();
  }

  /// Throw the precise governance Error if a condition has tripped. The
  /// check order (cancel, budget, deadline) makes the reported code
  /// deterministic when several conditions hold at once.
  void rethrow_if_stopped() const {
    if (!state_) return;
    if (state_->cancelled.load(std::memory_order_relaxed))
      throw Error(ErrorCode::kCancelled, "request cancelled");
    if (state_->budget && state_->budget->blown())
      throw Error(ErrorCode::kBudgetExceeded,
                  "memory budget exceeded (limit " +
                      std::to_string(state_->budget->limit()) + " bytes)");
    if (state_->deadline.expired())
      throw Error(ErrorCode::kDeadlineExceeded, "deadline exceeded");
  }

  [[nodiscard]] const detail::TokenState* state() const {
    return state_.get();
  }

 private:
  std::shared_ptr<detail::TokenState> state_;
};

namespace gov {

namespace detail {
using psclip::par::detail::TokenState;
// The installed token state for the current thread plus the amortization
// counter for clock reads. Raw pointer: ScopedToken guarantees the owning
// CancelToken outlives the installation scope, and the parallel layer
// captures tokens by value into task closures.
inline thread_local const TokenState* t_state = nullptr;
inline thread_local std::uint32_t t_tick = 0;

/// Clock-read stride: cancel/budget flags are checked every checkpoint
/// (one relaxed load each), the deadline every kStride-th. At ~1 µs per
/// scanbeam this bounds deadline overshoot to tens of microseconds while
/// keeping steady_clock::now() off the per-beam path.
inline constexpr std::uint32_t kStride = 32;

[[noreturn]] inline void throw_stopped(const TokenState* s) {
  if (s->cancelled.load(std::memory_order_relaxed))
    throw Error(ErrorCode::kCancelled, "request cancelled");
  if (s->budget && s->budget->blown())
    throw Error(ErrorCode::kBudgetExceeded,
                "memory budget exceeded (limit " +
                    std::to_string(s->budget->limit()) + " bytes)");
  throw Error(ErrorCode::kDeadlineExceeded, "deadline exceeded");
}
}  // namespace detail

/// Install `t`'s state for the current thread for the current scope.
/// Mirrors fault::ScopedKey; the parallel layer installs the submitter's
/// token inside every task body it runs.
class ScopedToken {
 public:
  explicit ScopedToken(const CancelToken& t) : prev_(detail::t_state) {
    detail::t_state = t.state();
  }
  ~ScopedToken() { detail::t_state = prev_; }
  ScopedToken(const ScopedToken&) = delete;
  ScopedToken& operator=(const ScopedToken&) = delete;

 private:
  const detail::TokenState* prev_;
};

/// The token installed on this thread, as a null-or-not test. Used by the
/// parallel layer to capture the current governance context into tasks.
[[nodiscard]] inline const psclip::par::detail::TokenState* current_state() {
  return detail::t_state;
}

/// Re-wrap an installed state for capture into a task closure. The shared
/// ownership lives in the CancelToken held by the caller of slab_clip et
/// al., which by contract outlives the parallel region.
class CapturedToken {
 public:
  CapturedToken() : state_(detail::t_state) {}
  [[nodiscard]] const psclip::par::detail::TokenState* state() const {
    return state_;
  }

 private:
  const psclip::par::detail::TokenState* state_;
};

/// Install a raw captured state (parallel-layer internal).
class ScopedState {
 public:
  explicit ScopedState(const psclip::par::detail::TokenState* s)
      : prev_(detail::t_state) {
    detail::t_state = s;
  }
  ~ScopedState() { detail::t_state = prev_; }
  ScopedState(const ScopedState&) = delete;
  ScopedState& operator=(const ScopedState&) = delete;

 private:
  const psclip::par::detail::TokenState* prev_;
};

/// Cooperative preemption point. Free (one thread_local load + null test)
/// when no token is installed; throws the precise governance Error when the
/// installed token has tripped. Deadline clock reads are amortized 1-in-32.
inline void checkpoint() {
  const auto* s = detail::t_state;
  if (!s) return;
  if (s->cancelled.load(std::memory_order_relaxed))
    detail::throw_stopped(s);
  if (s->budget && s->budget->blown()) detail::throw_stopped(s);
  if (s->deadline.armed() && ++detail::t_tick >= detail::kStride) {
    detail::t_tick = 0;
    if (s->deadline.expired()) detail::throw_stopped(s);
  }
}

/// Like checkpoint() but never skips the clock read — for coarse sites
/// (phase boundaries, slab-attempt entry) where precision beats amortizing.
inline void checkpoint_now() {
  const auto* s = detail::t_state;
  if (!s) return;
  if (s->cancelled.load(std::memory_order_relaxed))
    detail::throw_stopped(s);
  if (s->budget && s->budget->blown()) detail::throw_stopped(s);
  if (s->deadline.expired()) detail::throw_stopped(s);
}

/// True when the installed token has tripped (no throw). Cheap enough for
/// catch-block use: lets failure aggregation convert an arbitrary task
/// failure into the precise governance error when governance caused it.
[[nodiscard]] inline bool stopped() {
  const auto* s = detail::t_state;
  if (!s) return false;
  if (s->cancelled.load(std::memory_order_relaxed)) return true;
  if (s->budget && s->budget->blown()) return true;
  return s->deadline.expired();
}

/// Throw the precise governance error for the installed token, if tripped.
inline void rethrow_if_stopped() {
  const auto* s = detail::t_state;
  if (!s) return;
  if (s->cancelled.load(std::memory_order_relaxed) ||
      (s->budget && s->budget->blown()) || s->deadline.expired())
    detail::throw_stopped(s);
}

/// Same, for an explicitly captured state (parallel-layer aggregation: a
/// governance trip must surface as its precise error code, not be mangled
/// into the kTaskFailure fold when several workers tripped concurrently).
inline void rethrow_if_stopped(const psclip::par::detail::TokenState* s) {
  if (!s) return;
  if (s->cancelled.load(std::memory_order_relaxed) ||
      (s->budget && s->budget->blown()) || s->deadline.expired())
    detail::throw_stopped(s);
}

/// The budget installed on this thread, or nullptr. Growth sites (arena
/// borrow, bound-table append, output-pool growth) charge against it.
[[nodiscard]] inline ResourceBudget* current_budget() {
  const auto* s = detail::t_state;
  return s ? s->budget.get() : nullptr;
}

/// Charge `bytes` against the installed budget (no-op without one); throws
/// Error(kBudgetExceeded) when the charge does not fit. The caller owns the
/// matching release (see ScopedCharge).
inline void charge(std::uint64_t bytes) {
  ResourceBudget* b = current_budget();
  if (!b || bytes == 0) return;
  if (!b->try_charge(bytes))
    throw Error(ErrorCode::kBudgetExceeded,
                "memory budget exceeded charging " + std::to_string(bytes) +
                    " bytes (limit " + std::to_string(b->limit()) + ")");
}

/// RAII charge against the thread's installed budget: charges up front,
/// releases on destruction (including unwind), and supports growing the
/// charge as the governed structure grows. Charging failures throw
/// Error(kBudgetExceeded).
class ScopedCharge {
 public:
  ScopedCharge() : budget_(current_budget()) {}
  explicit ScopedCharge(std::uint64_t bytes) : budget_(current_budget()) {
    add(bytes);
  }
  ~ScopedCharge() {
    if (budget_ && held_) budget_->release(held_);
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  /// Grow the held charge by `bytes`.
  void add(std::uint64_t bytes) {
    if (!budget_ || bytes == 0) return;
    if (!budget_->try_charge(bytes))
      throw Error(ErrorCode::kBudgetExceeded,
                  "memory budget exceeded charging " + std::to_string(bytes) +
                      " bytes (limit " + std::to_string(budget_->limit()) +
                      ")");
    held_ += bytes;
  }

  /// Growth quantum for raise_to(): watermark raises touch the shared
  /// budget atomics only when they cross a 64 KiB boundary, so per-scanbeam
  /// output charging stays off the contended path (the 1% overhead gate of
  /// bench_governance_overhead). Worst-case over-charge: one granule per
  /// live ScopedCharge — noise at MB-scale budget limits.
  static constexpr std::uint64_t kGranule = 64 * 1024;

  /// Raise the held charge to at least `bytes` (monotonic watermark),
  /// quantized up to kGranule.
  void raise_to(std::uint64_t bytes) {
    if (bytes <= held_ || !budget_) return;
    add((bytes - held_ + kGranule - 1) / kGranule * kGranule);
  }

  [[nodiscard]] std::uint64_t held() const { return held_; }

 private:
  ResourceBudget* budget_;
  std::uint64_t held_ = 0;
};

}  // namespace gov
}  // namespace psclip::par
