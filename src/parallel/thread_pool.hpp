#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psclip::par {

/// Fixed-size worker pool. This is the library's stand-in for the paper's
/// PRAM processor set: "allocate p processors" maps to "run p-way
/// parallel_for on the pool". Workers are started once and reused, so
/// per-call overhead is one lock + wakeup per task batch.
class ThreadPool {
 public:
  /// Creates `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers (>= 1). The calling thread also participates in
  /// parallel_for, so the effective parallelism is size().
  [[nodiscard]] unsigned size() const { return num_threads_; }

  /// Run `body(i)` for every i in [0, n). Work is distributed dynamically
  /// in chunks of `grain` indices, so irregular per-item cost (the norm for
  /// polygon workloads, cf. Fig. 11) still balances. Blocks until done.
  /// Exceptions from `body` propagate to the caller (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Run `body(begin, end)` over [0, n) split into size()-many nearly equal
  /// contiguous blocks — the static decomposition used where block identity
  /// matters (e.g. the blocked prefix sum). Blocks until done.
  void parallel_blocks(
      std::size_t n,
      const std::function<void(unsigned block, std::size_t begin,
                               std::size_t end)>& body);

  /// Enqueue one fire-and-forget task (used by the recursive parallel
  /// mergesort). Caller synchronizes through wait_idle or its own latch.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and all workers are idle.
  void wait_idle();

 private:
  void worker_loop();

  unsigned num_threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Process-wide default pool (lazily constructed with hardware
/// concurrency). Most library entry points take an explicit thread count
/// and build their own decomposition; the default pool serves primitives
/// that want parallelism without plumbing a pool through every call.
ThreadPool& default_pool();

}  // namespace psclip::par
