#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/work_steal.hpp"

namespace psclip::par {

/// Fixed-size worker pool. This is the library's stand-in for the paper's
/// PRAM processor set: "allocate p processors" maps to "run p-way
/// parallel_for on the pool". Workers are started once and reused, so
/// per-call overhead is one lock + wakeup per task batch.
///
/// Two queue families feed the workers:
///   * a central FIFO (`submit`) for fire-and-forget tasks, and
///   * per-worker steal deques (`submit_stealable`) with steal-half
///     semantics, used by TaskGroup and the slab scheduler of Algorithm 2
///     so that idle workers take queued slab jobs from busy ones instead of
///     waiting out Fig. 11's load imbalance.
class ThreadPool {
 public:
  /// Creates `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers (>= 1). The calling thread also participates in
  /// parallel_for, so the effective parallelism is size().
  [[nodiscard]] unsigned size() const { return num_threads_; }

  /// Run `body(i)` for every i in [0, n). Work is distributed dynamically
  /// in chunks of `grain` indices, so irregular per-item cost (the norm for
  /// polygon workloads, cf. Fig. 11) still balances. Blocks until done.
  /// Exceptions from `body` propagate to the caller: a single failure is
  /// rethrown unchanged; concurrent failures are all counted and folded
  /// into one psclip::Error (kTaskFailure, count + first message). Chunks
  /// not yet started when a failure lands are skipped.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Run `body(begin, end)` over [0, n) split into size()-many nearly equal
  /// contiguous blocks — the static decomposition used where block identity
  /// matters (e.g. the blocked prefix sum). Blocks until done.
  void parallel_blocks(
      std::size_t n,
      const std::function<void(unsigned block, std::size_t begin,
                               std::size_t end)>& body);

  /// Enqueue one fire-and-forget task on the central FIFO (used by the
  /// recursive parallel mergesort). Caller synchronizes through wait_idle
  /// or its own latch.
  void submit(std::function<void()> task);

  /// Enqueue one stealable task. If the calling thread is a worker of this
  /// pool the task lands on its own deque (hot end); otherwise it is
  /// round-robined across worker deques. Idle workers steal half of a
  /// victim's deque at a time. Prefer TaskGroup over calling this raw —
  /// the group also handles completion and exceptions.
  void submit_stealable(std::function<void()> task);

  /// Run one queued task (central queue first, then the steal deques) on
  /// the *calling* thread. Returns false if nothing was available. This is
  /// the help-first primitive TaskGroup::wait uses so that blocked waiters
  /// contribute cycles instead of sleeping.
  bool help_one();

  /// Block until both queue families are empty and all workers are idle.
  /// Stealable tasks count: wait_idle cannot return while a stolen task is
  /// still in flight on any worker.
  void wait_idle();

  /// Index of the calling thread within this pool: 0..size()-1 for pool
  /// workers, -1 for external threads (including parallel_for callers).
  [[nodiscard]] int current_worker() const;

  /// Per-worker scheduler counters (index = worker id). Counters accumulate
  /// across the pool's lifetime; diff two snapshots to attribute steals and
  /// idle time to one parallel region.
  [[nodiscard]] std::vector<StealStats> steal_stats() const;

  /// Zero all per-worker scheduler counters. Only meaningful while the pool
  /// is quiescent (counters are relaxed atomics).
  void reset_steal_stats();

 private:
  /// One cache-line-sized bundle of per-worker counters (relaxed atomics:
  /// they are statistics, not synchronization).
  struct WorkerCounters {
    std::atomic<std::uint64_t> tasks_run{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> tasks_stolen{0};
    std::atomic<std::uint64_t> idle_ns{0};
  };

  void worker_loop(unsigned id);
  /// Pop from `self`'s deque or steal half of a victim's; `self < 0` means
  /// an external helper (steals a single task, owns no deque).
  bool acquire_stealable(int self, std::function<void()>& task);
  void notify_workers(std::size_t tasks);
  void finish_task();

  unsigned num_threads_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::unique_ptr<StealDeque>> deques_;
  std::vector<std::unique_ptr<WorkerCounters>> counters_;
  /// Tasks currently resident in any steal deque. Incremented before the
  /// push and read under mu_ by sleep/idle predicates, so a task is never
  /// invisible to both; transiently over-counts during a push, never under.
  std::atomic<std::size_t> stealable_{0};
  std::atomic<unsigned> rr_{0};  ///< round-robin cursor for external submits
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Process-wide default pool (lazily constructed with hardware
/// concurrency). Most library entry points take an explicit thread count
/// and build their own decomposition; the default pool serves primitives
/// that want parallelism without plumbing a pool through every call.
ThreadPool& default_pool();

}  // namespace psclip::par
