#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace psclip::par {

class ThreadPool;

/// Per-worker double-ended task queue for the work-stealing scheduler.
///
/// The owning worker pushes and pops at the back (hot end, LIFO — the most
/// recently produced task is the most cache-warm), thieves remove from the
/// front (cold end, FIFO — the oldest task is the least likely to share
/// state with what the owner is doing). Stealing takes *half* the queue in
/// one operation: with irregular task costs (the norm for slab clipping,
/// cf. Fig. 11) a thief that grabbed a single task would be back at the
/// victim's lock immediately, so steal-half amortizes the contention to
/// O(log n) steals per n tasks.
///
/// A mutex per deque keeps the implementation obviously correct under TSan;
/// the deques are only contended when a worker runs dry, which is exactly
/// when it has nothing better to do than wait for the lock.
class StealDeque {
 public:
  /// Owner side: enqueue at the hot end.
  void push(std::function<void()> task);

  /// Owner side: dequeue from the hot end. Returns false if empty.
  bool pop(std::function<void()>& task);

  /// Thief side: remove up to ceil(size/2) tasks from the cold end and
  /// return them in submission order. Empty result = nothing to steal.
  std::vector<std::function<void()>> steal_half();

  /// Thief side: remove exactly one task from the cold end (used by
  /// external helper threads that have no deque to stash a batch in).
  bool steal_one(std::function<void()>& task);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::deque<std::function<void()>> q_;
};

/// Snapshot of one worker's scheduler counters (see
/// ThreadPool::steal_stats). Counters accumulate from pool construction or
/// the last reset_steal_stats(); callers interested in one parallel region
/// diff two snapshots.
struct StealStats {
  std::uint64_t tasks_run = 0;     ///< tasks executed (both queue families)
  std::uint64_t steals = 0;        ///< successful steal-half operations
  std::uint64_t tasks_stolen = 0;  ///< tasks acquired through those steals
  double idle_seconds = 0.0;       ///< time spent parked waiting for work
};

/// A group of stealable tasks with structured-concurrency semantics:
/// every task submitted through run() has finished (or was skipped after a
/// failure) by the time wait() returns. The waiting thread is not parked —
/// it helps drain the pool's queues, so a TaskGroup can be used from inside
/// another task without deadlocking the pool.
///
/// Exceptions: after the first task throws, tasks that have not yet started
/// are skipped (their bodies never run), but tasks already in flight may
/// still throw — every such exception is *counted*, none is dropped. wait()
/// rethrows the first exception unchanged when it was the only one, and
/// otherwise throws one aggregated psclip::Error (kTaskFailure) carrying
/// the failure count and the first failure's message. This mirrors
/// ThreadPool::parallel_for's contract.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  /// Blocks (helping) until all tasks have drained; does NOT rethrow — call
  /// wait() explicitly if you care about task exceptions.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submit one task to the pool's stealable queues. Thread-safe; may be
  /// called from inside other tasks of the same group.
  void run(std::function<void()> task);

  /// Block until every submitted task has completed, helping to execute
  /// queued tasks meanwhile. Rethrows the first task exception if it was
  /// the only one, else one aggregated psclip::Error (see class comment).
  /// May be called at most once per quiescent group, but run()/wait()
  /// cycles may repeat.
  void wait();

 private:
  void drain();
  void record_failure();

  ThreadPool& pool_;
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<bool> failed_{false};
  std::atomic<std::uint64_t> failures_{0};  ///< tasks that actually threw
  std::atomic<std::uint64_t> seq_{0};       ///< submission index (fault key)
  std::mutex eptr_mu_;
  std::exception_ptr eptr_;    ///< first exception (guarded by eptr_mu_)
  std::string first_message_;  ///< its message (guarded by eptr_mu_)
};

}  // namespace psclip::par
