#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <string>

#include "error.hpp"
#include "obs/trace.hpp"
#include "parallel/cancel.hpp"
#include "parallel/timing.hpp"

namespace psclip::par {
namespace {

/// Identity of the calling thread inside its owning pool. A plain pointer
/// comparison keeps multiple pools (tests build many) independent.
thread_local const void* t_pool = nullptr;
thread_local unsigned t_worker = 0;

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  num_threads_ = threads;
  deques_.reserve(threads);
  counters_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    deques_.push_back(std::make_unique<StealDeque>());
    counters_.push_back(std::make_unique<WorkerCounters>());
  }
  // The caller participates in parallel_for, so spawn size()-1 workers for
  // batch work plus enough to serve submit()-style tasks; we keep it simple
  // with size() dedicated workers (idle workers cost nothing measurable).
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::current_worker() const {
  return t_pool == this ? static_cast<int>(t_worker) : -1;
}

void ThreadPool::worker_loop(unsigned id) {
  t_pool = this;
  t_worker = id;
  WorkerCounters& ctr = *counters_[id];
  for (;;) {
    std::function<void()> task;
    bool have = false;
    bool from_deque = false;
    {
      std::unique_lock lk(mu_);
      if (queue_.empty() &&
          stealable_.load(std::memory_order_relaxed) == 0 && !stop_) {
        const WallTimer idle;
        cv_task_.wait(lk, [this] {
          return stop_ || !queue_.empty() ||
                 stealable_.load(std::memory_order_relaxed) > 0;
        });
        ctr.idle_ns.fetch_add(static_cast<std::uint64_t>(idle.seconds() * 1e9),
                              std::memory_order_relaxed);
      }
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
        have = true;
        ++active_;  // covers the task until finish_task()
      } else if (stealable_.load(std::memory_order_relaxed) > 0) {
        from_deque = true;
        ++active_;  // covers the not-yet-acquired deque task (see wait_idle)
      } else if (stop_) {
        return;  // both queue families drained
      } else {
        continue;  // spurious wakeup
      }
    }
    if (from_deque) {
      have = acquire_stealable(static_cast<int>(id), task);
      if (!have) {
        // The deques were drained between the check and the steal (or a
        // push is still in flight); release the active slot and re-check.
        finish_task();
        std::this_thread::yield();
        continue;
      }
    }
    task();
    ctr.tasks_run.fetch_add(1, std::memory_order_relaxed);
    finish_task();
  }
}

bool ThreadPool::acquire_stealable(int self, std::function<void()>& task) {
  if (self < 0) {
    // External helper: no home deque to stash a batch in, take one task.
    for (unsigned v = 0; v < num_threads_; ++v) {
      if (deques_[v]->steal_one(task)) {
        stealable_.fetch_sub(1, std::memory_order_acq_rel);
        return true;
      }
    }
    return false;
  }
  const auto id = static_cast<unsigned>(self);
  if (deques_[id]->pop(task)) {
    stealable_.fetch_sub(1, std::memory_order_acq_rel);
    return true;
  }
  WorkerCounters& ctr = *counters_[id];
  for (unsigned k = 1; k < num_threads_; ++k) {
    const unsigned v = (id + k) % num_threads_;
    auto batch = deques_[v]->steal_half();
    if (batch.empty()) continue;
    ctr.steals.fetch_add(1, std::memory_order_relaxed);
    ctr.tasks_stolen.fetch_add(batch.size(), std::memory_order_relaxed);
    task = std::move(batch.front());
    stealable_.fetch_sub(1, std::memory_order_acq_rel);
    // The rest of the batch moves to our own deque; it stays counted in
    // stealable_ throughout, so wait_idle/sleep predicates never miss it.
    for (std::size_t i = 1; i < batch.size(); ++i)
      deques_[id]->push(std::move(batch[i]));
    if (batch.size() > 1) cv_task_.notify_one();
    return true;
  }
  return false;
}

void ThreadPool::finish_task() {
  std::lock_guard lk(mu_);
  --active_;
  if (active_ == 0 && queue_.empty() &&
      stealable_.load(std::memory_order_relaxed) == 0)
    cv_idle_.notify_all();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::submit_stealable(std::function<void()> task) {
  const unsigned target =
      t_pool == this
          ? t_worker
          : rr_.fetch_add(1, std::memory_order_relaxed) % num_threads_;
  // Count first, push second: sleep/idle predicates read stealable_ under
  // mu_, so over-counting during the window is safe (a waker may spin once)
  // while under-counting could strand the task until the next wakeup.
  stealable_.fetch_add(1, std::memory_order_release);
  deques_[target]->push(std::move(task));
  {
    // Empty critical section: a worker that evaluated its sleep predicate
    // before our fetch_add cannot be *between* predicate and sleep here —
    // it holds mu_ until the wait parks it. Pairs with the wait in
    // worker_loop.
    std::lock_guard lk(mu_);
  }
  cv_task_.notify_one();
}

bool ThreadPool::help_one() {
  std::function<void()> task;
  bool have = false;
  {
    std::lock_guard lk(mu_);
    if (!queue_.empty()) {
      task = std::move(queue_.front());
      queue_.pop_front();
      have = true;
      ++active_;
    } else if (stealable_.load(std::memory_order_relaxed) > 0) {
      ++active_;
    } else {
      return false;
    }
  }
  if (!have) {
    have = acquire_stealable(current_worker(), task);
    if (!have) {
      finish_task();
      return false;
    }
  }
  task();
  if (t_pool == this)
    counters_[t_worker]->tasks_run.fetch_add(1, std::memory_order_relaxed);
  finish_task();
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] {
    return queue_.empty() && active_ == 0 &&
           stealable_.load(std::memory_order_relaxed) == 0;
  });
}

std::vector<StealStats> ThreadPool::steal_stats() const {
  std::vector<StealStats> out(num_threads_);
  for (unsigned i = 0; i < num_threads_; ++i) {
    const WorkerCounters& c = *counters_[i];
    out[i].tasks_run = c.tasks_run.load(std::memory_order_relaxed);
    out[i].steals = c.steals.load(std::memory_order_relaxed);
    out[i].tasks_stolen = c.tasks_stolen.load(std::memory_order_relaxed);
    out[i].idle_seconds =
        static_cast<double>(c.idle_ns.load(std::memory_order_relaxed)) * 1e-9;
  }
  return out;
}

void ThreadPool::reset_steal_stats() {
  for (auto& c : counters_) {
    c->tasks_run.store(0, std::memory_order_relaxed);
    c->steals.store(0, std::memory_order_relaxed);
    c->tasks_stolen.store(0, std::memory_order_relaxed);
    c->idle_ns.store(0, std::memory_order_relaxed);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  if (num_threads_ == 1 || n <= grain) {
    for (std::size_t i = 0; i < n; ++i) {
      gov::checkpoint();
      body(i);
    }
    return;
  }

  // Scheduling span via the process-wide sink (option structs don't reach
  // here); null sink = one relaxed atomic load.
  obs::ScopedSpan sched_span(obs::global_sink(), "pool.parallel_for",
                             obs::Cat::kSchedule);
  sched_span.arg("n", static_cast<std::int64_t>(n));
  sched_span.arg("grain", static_cast<std::int64_t>(grain));

  // Failure bookkeeping shared by all drivers: the first exception is kept
  // whole, later ones are counted (never silently dropped) and folded into
  // one aggregated psclip::Error when more than one driver threw.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto pending = std::make_shared<std::atomic<unsigned>>(0);
  auto error = std::make_shared<std::atomic<bool>>(false);
  auto failures = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto eptr = std::make_shared<std::exception_ptr>();
  auto first_msg = std::make_shared<std::string>();
  auto eptr_mu = std::make_shared<std::mutex>();

  // The submitter's governance token rides into every driver (pool workers
  // have none of their own) and is re-checked at each chunk boundary, so a
  // cancel/deadline/budget trip stops the region even when `body` itself
  // never checkpoints.
  const gov::CapturedToken tok;

  auto drive = [next, pending, error, failures, eptr, first_msg, eptr_mu, n,
                grain, tok, &body] {
    gov::ScopedState gov_state(tok.state());
    try {
      for (;;) {
        gov::checkpoint();
        const std::size_t begin = next->fetch_add(grain);
        if (begin >= n || error->load(std::memory_order_relaxed)) break;
        const std::size_t end = std::min(n, begin + grain);
        for (std::size_t i = begin; i < end; ++i) body(i);
      }
    } catch (...) {
      failures->fetch_add(1, std::memory_order_acq_rel);
      std::lock_guard lk(*eptr_mu);
      if (!error->exchange(true)) {
        *eptr = std::current_exception();
        try {
          std::rethrow_exception(std::current_exception());
        } catch (const std::exception& e) {
          *first_msg = e.what();
        } catch (...) {
          *first_msg = "unknown exception";
        }
      }
    }
    pending->fetch_sub(1, std::memory_order_acq_rel);
  };

  const unsigned helpers = std::min<std::size_t>(num_threads_ - 1,
                                                 (n + grain - 1) / grain);
  pending->store(helpers + 1);
  for (unsigned i = 0; i < helpers; ++i) submit(drive);
  drive();  // caller participates
  while (pending->load(std::memory_order_acquire) != 0)
    std::this_thread::yield();
  const std::uint64_t nfail = failures->load(std::memory_order_acquire);
  // A tripped token outranks the aggregation fold: concurrent failures
  // caused by governance must surface with their precise code, not as an
  // opaque kTaskFailure.
  if (nfail > 0) gov::rethrow_if_stopped(tok.state());
  if (nfail > 1)
    throw Error(ErrorCode::kTaskFailure, std::to_string(nfail) +
                                             " tasks failed; first: " +
                                             *first_msg);
  if (nfail == 1 && *eptr) std::rethrow_exception(*eptr);
}

void ThreadPool::parallel_blocks(
    std::size_t n, const std::function<void(unsigned, std::size_t,
                                            std::size_t)>& body) {
  if (n == 0) return;
  const unsigned blocks =
      static_cast<unsigned>(std::min<std::size_t>(num_threads_, n));
  const std::size_t chunk = (n + blocks - 1) / blocks;
  parallel_for(
      blocks,
      [&](std::size_t b) {
        const std::size_t begin = b * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        if (begin < end) body(static_cast<unsigned>(b), begin, end);
      },
      /*grain=*/1);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace psclip::par
