#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace psclip::par {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  num_threads_ = threads;
  // The caller participates in parallel_for, so spawn size()-1 workers for
  // batch work plus enough to serve submit()-style tasks; we keep it simple
  // with size() dedicated workers (idle workers cost nothing measurable).
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  if (num_threads_ == 1 || n <= grain) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto pending = std::make_shared<std::atomic<unsigned>>(0);
  auto error = std::make_shared<std::atomic<bool>>(false);
  auto eptr = std::make_shared<std::exception_ptr>();
  auto eptr_mu = std::make_shared<std::mutex>();

  auto drive = [next, pending, error, eptr, eptr_mu, n, grain, &body] {
    try {
      for (;;) {
        const std::size_t begin = next->fetch_add(grain);
        if (begin >= n || error->load(std::memory_order_relaxed)) break;
        const std::size_t end = std::min(n, begin + grain);
        for (std::size_t i = begin; i < end; ++i) body(i);
      }
    } catch (...) {
      std::lock_guard lk(*eptr_mu);
      if (!error->exchange(true)) *eptr = std::current_exception();
    }
    pending->fetch_sub(1, std::memory_order_acq_rel);
  };

  const unsigned helpers = std::min<std::size_t>(num_threads_ - 1,
                                                 (n + grain - 1) / grain);
  pending->store(helpers + 1);
  for (unsigned i = 0; i < helpers; ++i) submit(drive);
  drive();  // caller participates
  while (pending->load(std::memory_order_acquire) != 0)
    std::this_thread::yield();
  if (error->load() && *eptr) std::rethrow_exception(*eptr);
}

void ThreadPool::parallel_blocks(
    std::size_t n, const std::function<void(unsigned, std::size_t,
                                            std::size_t)>& body) {
  if (n == 0) return;
  const unsigned blocks =
      static_cast<unsigned>(std::min<std::size_t>(num_threads_, n));
  const std::size_t chunk = (n + blocks - 1) / blocks;
  parallel_for(
      blocks,
      [&](std::size_t b) {
        const std::size_t begin = b * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        if (begin < end) body(static_cast<unsigned>(b), begin, end);
      },
      /*grain=*/1);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace psclip::par
