#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "psclip.hpp"
#include "parallel/admission.hpp"
#include "svc/prepared_cache.hpp"

namespace psclip::svc {

/// Configuration for ClipService.
struct ServiceOptions {
  /// Maximum requests executing concurrently. 0 (default) = 2 × pool size:
  /// enough admitted requests to keep every worker busy while one request
  /// is in a serial phase, few enough that per-request setup state stays
  /// bounded. Requests beyond it wait in FIFO order.
  unsigned max_in_flight = 0;
  /// Maximum requests waiting behind the in-flight limit; one more is
  /// rejected immediately with Error(kResource) — overload surfaces as
  /// backpressure the caller can retry, never as unbounded queueing.
  unsigned max_queued = 64;
  /// Share prepared contours across requests through a PreparedCache
  /// (default on). Off: every request prepares locally, byte-identical.
  bool enable_cache = true;
  /// Cache tuning (byte budget, external ResourceBudget, digest seam).
  /// `cache.sink` defaults to `trace_sink` when left null.
  PreparedCacheConfig cache;
  /// Service-wide trace + metrics sink: per-request svc.request spans,
  /// svc.* counters and latency histograms, cache meters. Null = off.
  obs::TraceSink* trace_sink = nullptr;
  /// Dispatcher threads serving submit_async futures. 0 (default) = match
  /// max_in_flight (every admitted request can have a dispatcher driving
  /// it). Started lazily on the first submit_async.
  unsigned async_workers = 0;
};

/// One clip request. Inputs are copied in by submit_async (the caller may
/// free them immediately) and borrowed by the synchronous submit().
struct ClipRequest {
  geom::PolygonSet subject;
  geom::PolygonSet clip;
  geom::BoolOp op = geom::BoolOp::kIntersection;
  /// Engine selection, resolved by psclip::resolve_engine — identical to
  /// what a direct psclip::clip call on the service's pool would pick.
  Engine engine = Engine::kAuto;
  /// Route through mt::multiset_clip (two GIS layers) instead of the
  /// single-pair facade.
  bool multiset = false;
  /// Per-request governance (deadline / budget / cancellation): checked
  /// while the request waits at admission and propagated to every worker
  /// that touches the request, exactly as psclip::clip does.
  par::CancelToken cancel;
  /// Return completed slabs instead of failing on a governance trip
  /// (ClipResult::partial reports what is missing).
  bool allow_partial = false;
  /// Per-request sink override; null inherits the service's trace_sink.
  obs::TraceSink* trace_sink = nullptr;
};

/// Result of one request.
struct ClipResult {
  geom::PolygonSet output;
  mt::PartialReport partial;
  double queue_seconds = 0.0;  ///< time spent waiting at admission
  double run_seconds = 0.0;    ///< time spent clipping
};

/// Multi-request serving layer over one shared ThreadPool (DESIGN.md §12).
///
/// Concurrency model: a request is admitted through a FIFO AdmissionGate
/// (max_in_flight running, max_queued waiting, reject beyond — kResource),
/// then executes through the exact psclip::clip / mt::multiset_clip path a
/// direct caller would run, on the service's pool. Slab tasks of all
/// admitted requests interleave on the pool's work-stealing deques:
/// submit_stealable round-robins each request's slabs across workers and
/// owners pop LIFO, so a small request's handful of slabs starts promptly
/// even while a million-vertex request's slabs queue — fair share without
/// a priority scheduler. Each request's CancelToken and trace span
/// propagate to exactly the workers executing its slabs, as PR 9's
/// governance does for a single call.
///
/// Identity guarantee: every result is byte-identical to a serial
/// psclip::clip call with the same inputs, options and pool — cached or
/// not, under any interleaving. This holds because the service adds no
/// geometry code: engine choice goes through resolve_engine, execution
/// through the library entry points, and the cache only memoizes
/// seq::prepare_contour, a pure per-contour function.
class ClipService {
 public:
  explicit ClipService(par::ThreadPool& pool, ServiceOptions opts = {});
  ~ClipService();

  ClipService(const ClipService&) = delete;
  ClipService& operator=(const ClipService&) = delete;

  /// Synchronous: admit (FIFO, may wait), execute on the caller's thread
  /// (slab tasks still fan out to the pool), return the result. Throws
  /// Error(kResource) when admission overflows, the precise governance
  /// Error when req.cancel trips, and whatever the engines throw.
  ClipResult submit(const ClipRequest& req);

  /// Asynchronous: enqueue for a dispatcher thread and return a future.
  /// Rejects immediately (throws kResource) when the dispatch queue is at
  /// max_queued; every other failure is delivered through the future.
  std::future<ClipResult> submit_async(ClipRequest req);

  /// Batch form: one admission slot, one prepared-contour pass shared by
  /// every pair in the batch. With the service cache on, the shared clip
  /// layer of a many-subjects-one-clip-layer batch is prepared once and
  /// hit by every subsequent pair; with the cache off a batch-local cache
  /// provides the same single-pass sharing for just this call. Results are
  /// positionally matched to `reqs`; the first failure aborts the batch.
  std::vector<ClipResult> submit_batch(const std::vector<ClipRequest>& reqs);

  /// The cross-request cache, or null when enable_cache is off.
  [[nodiscard]] PreparedCache* cache() { return cache_.get(); }
  [[nodiscard]] par::ThreadPool& pool() { return pool_; }

  // Meters.
  [[nodiscard]] std::uint64_t submitted() const { return submitted_.load(); }
  [[nodiscard]] std::uint64_t completed() const { return completed_.load(); }
  [[nodiscard]] std::uint64_t rejected() const { return rejected_.load(); }
  [[nodiscard]] std::uint64_t failed() const { return failed_.load(); }
  [[nodiscard]] unsigned in_flight() const { return gate_.in_flight(); }

 private:
  struct Job {
    ClipRequest req;
    std::promise<ClipResult> promise;
  };

  /// Admission + execution, shared by every submit path. `cache_override`
  /// non-null substitutes the request's prepared source (submit_batch's
  /// batch-local cache).
  ClipResult run_one(const ClipRequest& req,
                     seq::PreparedSource* cache_override);
  ClipResult execute(const ClipRequest& req, seq::PreparedSource* prep_src);
  void ensure_dispatchers();
  void dispatcher_loop();

  par::ThreadPool& pool_;
  ServiceOptions opts_;
  par::AdmissionGate gate_;
  std::unique_ptr<PreparedCache> cache_;

  std::mutex qmu_;
  std::condition_variable qcv_;
  std::deque<Job> jobs_;
  bool stop_ = false;
  std::vector<std::thread> dispatchers_;

  std::atomic<std::uint64_t> submitted_{0}, completed_{0}, rejected_{0},
      failed_{0};
};

}  // namespace psclip::svc
