#include "svc/clip_service.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "parallel/timing.hpp"

namespace psclip::svc {

ClipService::ClipService(par::ThreadPool& pool, ServiceOptions opts)
    : pool_(pool),
      opts_(opts),
      gate_(opts.max_in_flight != 0
                ? opts.max_in_flight
                : static_cast<unsigned>(2 * std::max<std::size_t>(
                                                1, pool.size())),
            opts.max_queued) {
  if (opts_.enable_cache) {
    PreparedCacheConfig cfg = opts_.cache;
    if (!cfg.sink) cfg.sink = opts_.trace_sink;
    cache_ = std::make_unique<PreparedCache>(std::move(cfg));
  }
}

ClipService::~ClipService() {
  {
    std::lock_guard lk(qmu_);
    stop_ = true;
  }
  qcv_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
  // Requests still queued never ran: fail their futures precisely rather
  // than dropping the promises (which would surface as broken_promise).
  for (Job& j : jobs_)
    j.promise.set_exception(std::make_exception_ptr(
        Error(ErrorCode::kCancelled, "ClipService destroyed")));
}

ClipResult ClipService::run_one(const ClipRequest& req,
                                seq::PreparedSource* cache_override) {
  obs::TraceSink* const sink =
      req.trace_sink ? req.trace_sink : opts_.trace_sink;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (sink) sink->add_counter("svc.requests", 1);
  par::WallTimer queue_timer;
  try {
    gate_.acquire(req.cancel);
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kResource) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      if (sink) sink->add_counter("svc.rejected", 1);
    }
    throw;
  }
  const double queued = queue_timer.seconds();
  if (sink) sink->observe("svc.queue_seconds", queued);
  try {
    ClipResult res = execute(req, cache_override ? cache_override
                                                 : cache_.get());
    res.queue_seconds = queued;
    gate_.release();
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (sink) sink->add_counter("svc.completed", 1);
    return res;
  } catch (...) {
    gate_.release();
    failed_.fetch_add(1, std::memory_order_relaxed);
    if (sink) sink->add_counter("svc.failed", 1);
    throw;
  }
}

ClipResult ClipService::execute(const ClipRequest& req,
                                seq::PreparedSource* prep_src) {
  obs::TraceSink* const sink =
      req.trace_sink ? req.trace_sink : opts_.trace_sink;
  obs::ScopedSpan span(sink, "svc.request", obs::Cat::kRequest);
  span.arg("vertices", static_cast<std::int64_t>(
                           req.subject.num_vertices() +
                           req.clip.num_vertices()));
  par::WallTimer timer;
  ClipResult res;
  if (req.multiset) {
    // The facade has no multiset path; install governance and dispatch the
    // same way it would.
    std::optional<par::gov::ScopedToken> gov;
    if (req.cancel.valid()) gov.emplace(req.cancel);
    par::gov::checkpoint_now();
    mt::MultisetOptions mo;
    mo.trace_sink = sink;
    mo.cancel = req.cancel;
    mo.allow_partial = req.allow_partial;
    mo.prepared_cache = prep_src;
    mt::Alg2Stats stats;
    res.output =
        mt::multiset_clip(req.subject, req.clip, req.op, pool_, mo, &stats);
    res.partial = std::move(stats.partial);
  } else {
    // The identity guarantee rests on this being literally the facade:
    // same engine resolution, same pool, same options.
    ClipOptions copts;
    copts.engine = req.engine;
    copts.cancel = req.cancel;
    copts.allow_partial = req.allow_partial;
    copts.partial = &res.partial;
    copts.pool = &pool_;
    copts.trace_sink = sink;
    copts.prepared_cache = prep_src;
    res.output = psclip::clip(req.subject, req.clip, req.op, copts);
  }
  res.run_seconds = timer.seconds();
  if (sink) sink->observe("svc.request_seconds", res.run_seconds);
  return res;
}

ClipResult ClipService::submit(const ClipRequest& req) {
  return run_one(req, nullptr);
}

std::future<ClipResult> ClipService::submit_async(ClipRequest req) {
  ensure_dispatchers();
  Job job;
  job.req = std::move(req);
  std::future<ClipResult> fut = job.promise.get_future();
  {
    std::lock_guard lk(qmu_);
    if (stop_)
      throw Error(ErrorCode::kCancelled, "ClipService destroyed");
    // The dispatch queue shares the admission bound: when no execution
    // capacity remains AND the queue already holds max_queued jobs the
    // service is saturated past its waiting line, so reject synchronously —
    // the same backpressure contract as the gate, surfaced before any copy
    // sits in a queue. (The capacity clause keeps max_queued = 0 usable:
    // an idle service still admits, it just refuses to build a backlog.)
    const bool capacity_left =
        gate_.in_flight() + jobs_.size() < gate_.limit();
    if (!capacity_left && jobs_.size() >= opts_.max_queued) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      if (opts_.trace_sink) opts_.trace_sink->add_counter("svc.rejected", 1);
      throw Error(ErrorCode::kResource,
                  "async dispatch queue full (" +
                      std::to_string(jobs_.size()) + " queued)");
    }
    jobs_.push_back(std::move(job));
  }
  qcv_.notify_one();
  return fut;
}

std::vector<ClipResult> ClipService::submit_batch(
    const std::vector<ClipRequest>& reqs) {
  if (reqs.empty()) return {};
  obs::TraceSink* const sink = opts_.trace_sink;
  obs::ScopedSpan span(sink, "svc.batch", obs::Cat::kRequest);
  span.arg("requests", static_cast<std::int64_t>(reqs.size()));
  // One admission slot covers the whole batch: the batch is one caller's
  // unit of work, and admitting each pair separately could deadlock a
  // full service against itself.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (sink) sink->add_counter("svc.requests", 1);
  gate_.acquire(reqs.front().cancel);
  // Shared prepare pass: the service cache if on, else a batch-local one,
  // so repeated contours (the common shared clip layer) are prepared once
  // per batch no matter what.
  std::optional<PreparedCache> local;
  seq::PreparedSource* prep_src = cache_.get();
  if (!prep_src) prep_src = &local.emplace();
  try {
    std::vector<ClipResult> out;
    out.reserve(reqs.size());
    for (const ClipRequest& r : reqs) out.push_back(execute(r, prep_src));
    gate_.release();
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (sink) sink->add_counter("svc.completed", 1);
    return out;
  } catch (...) {
    gate_.release();
    failed_.fetch_add(1, std::memory_order_relaxed);
    if (sink) sink->add_counter("svc.failed", 1);
    throw;
  }
}

void ClipService::ensure_dispatchers() {
  std::lock_guard lk(qmu_);
  if (!dispatchers_.empty() || stop_) return;
  const unsigned n =
      opts_.async_workers != 0 ? opts_.async_workers : gate_.limit();
  dispatchers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
}

void ClipService::dispatcher_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lk(qmu_);
      qcv_.wait(lk, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ and drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    try {
      job.promise.set_value(run_one(job.req, nullptr));
    } catch (...) {
      job.promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace psclip::svc
