#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "geom/polygon.hpp"
#include "obs/trace.hpp"
#include "parallel/cancel.hpp"
#include "seq/bounds.hpp"

namespace psclip::svc {

/// Configuration for PreparedCache.
struct PreparedCacheConfig {
  /// Resident-byte ceiling the LRU enforces itself: inserting past it
  /// evicts least-recently-used entries first. 0 disables caching entirely
  /// (every lookup prepares locally and stores nothing) — the cache-off
  /// mode with the same code path.
  std::uint64_t byte_limit = 64ull << 20;
  /// Optional external meter the resident bytes are charged through
  /// (ResourceBudget, DESIGN.md §11): entries release their charge on
  /// eviction, so the meter always reads the cache's true residency. When
  /// the budget is tighter than `byte_limit`, the cache evicts down to what
  /// fits BEFORE committing a charge — a dedicated cache budget is never
  /// blown; an entry that cannot fit even in an empty cache is served
  /// uncached (a bypass), not an error.
  std::shared_ptr<par::ResourceBudget> budget;
  /// Hit/miss/eviction/bypass counters and the resident-bytes gauge are
  /// exported here (svc.cache.*). Null = metrics off.
  obs::TraceSink* sink = nullptr;
  /// Digest override (tests only): defaults to seq::contour_digest. The
  /// collision-hygiene tests install a truncated digest to force distinct
  /// contours onto one key and assert the byte comparison still misses.
  std::uint64_t (*digest_fn)(const geom::Contour&, bool is_clip) = nullptr;
};

/// Content-addressed cross-request cache of prepared contours — the
/// seq::PreparedSource the clip engines consume (Alg2Options /
/// MultisetOptions::prepared_cache) and the reuse layer of svc::ClipService.
///
/// Keying: FNV-1a digest of the contour's coordinate bit patterns plus the
/// prepare options (seq::contour_digest). A digest match alone is never
/// trusted: the entry stores the original vertex bytes and a lookup
/// compares them exactly, so a 64-bit collision degrades to a miss, never
/// to wrong geometry. Values are shared immutable seq::PreparedContour
/// fragments — concurrent requests append the same fragment into their
/// slab tables while the LRU evicts freely, the shared_ptr keeping any
/// still-referenced fragment alive past its entry.
///
/// Thread-safety: all state is guarded by one mutex; preparation on a miss
/// runs outside it so concurrent misses on different contours prepare in
/// parallel (two racing misses on the SAME contour both prepare and the
/// loser adopts the winner's entry — identical bytes by determinism of
/// seq::prepare_contour, so no reader can observe a difference).
class PreparedCache final : public seq::PreparedSource {
 public:
  explicit PreparedCache(PreparedCacheConfig cfg = {});
  ~PreparedCache() override;

  PreparedCache(const PreparedCache&) = delete;
  PreparedCache& operator=(const PreparedCache&) = delete;

  /// seq::PreparedSource: the fragment prepare_contour(c, is_clip) would
  /// produce, from cache or freshly prepared; null when the contour
  /// degenerates (negative results are cached too).
  std::shared_ptr<const seq::PreparedContour> prepared(
      const geom::Contour& c, bool is_clip) override;

  /// Drop every entry (and release the budget charges).
  void clear();

  // Meter accessors (tests, bench, CLI reporting).
  [[nodiscard]] std::uint64_t hits() const { return hits_.load(); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.load(); }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_.load(); }
  /// Lookups whose digest matched an entry with different bytes (the
  /// collision-hygiene path; counted inside misses() too).
  [[nodiscard]] std::uint64_t collisions() const { return collisions_.load(); }
  /// Prepared-but-not-stored results (entry larger than the budget/limit
  /// allows even after evicting everything).
  [[nodiscard]] std::uint64_t bypasses() const { return bypasses_.load(); }
  [[nodiscard]] std::uint64_t resident_bytes() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const PreparedCacheConfig& config() const { return cfg_; }

 private:
  struct Entry {
    std::uint64_t digest = 0;
    std::vector<geom::Point> key_pts;  ///< original bytes, collision check
    bool is_clip = false;
    std::shared_ptr<const seq::PreparedContour> value;  ///< null = degenerate
    std::uint64_t bytes = 0;
  };
  using Lru = std::list<Entry>;

  /// Evict the LRU tail entry. Caller holds mu_.
  void evict_one_locked();
  /// Update the resident-bytes gauge. Caller holds mu_.
  void publish_gauge_locked();

  PreparedCacheConfig cfg_;
  mutable std::mutex mu_;
  Lru lru_;  ///< front = most recently used
  std::unordered_multimap<std::uint64_t, Lru::iterator> index_;
  std::uint64_t resident_ = 0;
  std::atomic<std::uint64_t> hits_{0}, misses_{0}, evictions_{0},
      collisions_{0}, bypasses_{0};
};

}  // namespace psclip::svc
