#include "svc/prepared_cache.hpp"

#include <cstring>
#include <utility>

namespace psclip::svc {

namespace {

/// Structural size of one cache entry: the prepared fragment's containers,
/// the key bytes kept for collision verification, and the bookkeeping
/// structs. Same approximate-but-structural accounting discipline as the
/// arena charges (DESIGN.md §11).
std::uint64_t entry_cost(const std::vector<geom::Point>& key_pts,
                         const seq::PreparedContour* pc) {
  // 160 ≈ list node + index node + Entry header overhead per entry.
  std::uint64_t b = key_pts.size() * sizeof(geom::Point) + 160;
  if (pc) {
    b += sizeof(seq::PreparedContour);
    b += pc->pts.pts.size() * sizeof(geom::Point);
    b += pc->bt.edges.size() * sizeof(seq::BoundEdge);
    b += pc->bt.minima.size() * sizeof(seq::LocalMin);
    b += pc->ys.size() * sizeof(double);
  }
  return b;
}

bool same_bytes(const std::vector<geom::Point>& a,
                const std::vector<geom::Point>& b) {
  if (a.size() != b.size()) return false;
  if (a.empty()) return true;
  // Exact bit comparison (memcmp over the coordinate pairs): the digest
  // hashes bit patterns, so verification must compare them too — operator==
  // would conflate 0.0 with -0.0 and miscompare NaNs.
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(geom::Point)) == 0;
}

}  // namespace

PreparedCache::PreparedCache(PreparedCacheConfig cfg) : cfg_(std::move(cfg)) {}

PreparedCache::~PreparedCache() { clear(); }

void PreparedCache::clear() {
  std::lock_guard lk(mu_);
  if (cfg_.budget && resident_ > 0) cfg_.budget->release(resident_);
  resident_ = 0;
  index_.clear();
  lru_.clear();
  publish_gauge_locked();
}

std::uint64_t PreparedCache::resident_bytes() const {
  std::lock_guard lk(mu_);
  return resident_;
}

std::size_t PreparedCache::size() const {
  std::lock_guard lk(mu_);
  return lru_.size();
}

void PreparedCache::evict_one_locked() {
  Entry& victim = lru_.back();
  auto [lo, hi] = index_.equal_range(victim.digest);
  for (auto it = lo; it != hi; ++it) {
    if (&*it->second == &victim) {
      index_.erase(it);
      break;
    }
  }
  resident_ -= victim.bytes;
  if (cfg_.budget) cfg_.budget->release(victim.bytes);
  lru_.pop_back();
  evictions_.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.sink) cfg_.sink->add_counter("svc.cache.evictions", 1);
}

void PreparedCache::publish_gauge_locked() {
  if (cfg_.sink)
    cfg_.sink->set_gauge("svc.cache.resident_bytes",
                         static_cast<std::int64_t>(resident_));
}

std::shared_ptr<const seq::PreparedContour> PreparedCache::prepared(
    const geom::Contour& c, bool is_clip) {
  const auto digest_fn = cfg_.digest_fn ? cfg_.digest_fn : seq::contour_digest;
  const std::uint64_t digest = digest_fn(c, is_clip);

  bool collided = false;
  {
    std::lock_guard lk(mu_);
    auto [lo, hi] = index_.equal_range(digest);
    for (auto it = lo; it != hi; ++it) {
      Entry& e = *it->second;
      if (e.is_clip == is_clip && same_bytes(e.key_pts, c.pts)) {
        lru_.splice(lru_.begin(), lru_, it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        if (cfg_.sink) cfg_.sink->add_counter("svc.cache.hits", 1);
        return e.value;
      }
    }
    collided = lo != hi;
  }

  // Miss: prepare outside the lock so concurrent misses run in parallel.
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (cfg_.sink) cfg_.sink->add_counter("svc.cache.misses", 1);
  if (collided) {
    collisions_.fetch_add(1, std::memory_order_relaxed);
    if (cfg_.sink) cfg_.sink->add_counter("svc.cache.collisions", 1);
  }
  auto pc = std::make_shared<seq::PreparedContour>();
  std::shared_ptr<const seq::PreparedContour> value;
  if (seq::prepare_contour(c, is_clip, *pc)) value = std::move(pc);

  Entry entry;
  entry.digest = digest;
  entry.key_pts = c.pts;
  entry.is_clip = is_clip;
  entry.value = value;
  entry.bytes = entry_cost(entry.key_pts, value.get());

  std::lock_guard lk(mu_);
  // A racing miss on the same contour may have inserted while we prepared;
  // adopt its entry so both callers share one fragment (the bytes are
  // identical by determinism of prepare_contour either way).
  {
    auto [lo, hi] = index_.equal_range(digest);
    for (auto it = lo; it != hi; ++it) {
      Entry& e = *it->second;
      if (e.is_clip == is_clip && same_bytes(e.key_pts, c.pts)) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return e.value;
      }
    }
  }
  if (cfg_.byte_limit == 0 || entry.bytes > cfg_.byte_limit) {
    // Caching disabled, or the entry alone exceeds the cache's own limit.
    if (cfg_.byte_limit != 0) {
      bypasses_.fetch_add(1, std::memory_order_relaxed);
      if (cfg_.sink) cfg_.sink->add_counter("svc.cache.bypasses", 1);
    }
    return value;
  }
  // Enforce the cache's own limit, then fit the external budget — evicting
  // BEFORE committing the charge (charge_transient probes without the
  // sticky blown flag), so a dedicated cache budget never blows: residency
  // shrinks to what fits instead.
  while (resident_ + entry.bytes > cfg_.byte_limit && !lru_.empty())
    evict_one_locked();
  if (cfg_.budget) {
    bool fits = cfg_.budget->charge_transient(entry.bytes);
    while (!fits && !lru_.empty()) {
      evict_one_locked();
      fits = cfg_.budget->charge_transient(entry.bytes);
    }
    // try_charge only after a successful probe: a failed try_charge sets
    // the sticky blown flag, and "can't cache" must stay a bypass, not a
    // request-killing governance trip. (With a cache-dedicated budget the
    // probe's verdict holds — every charge serializes under mu_.)
    if (!fits || !cfg_.budget->try_charge(entry.bytes)) {
      bypasses_.fetch_add(1, std::memory_order_relaxed);
      if (cfg_.sink) cfg_.sink->add_counter("svc.cache.bypasses", 1);
      publish_gauge_locked();
      return value;
    }
  }
  resident_ += entry.bytes;
  lru_.push_front(std::move(entry));
  index_.emplace(digest, lru_.begin());
  publish_gauge_locked();
  return value;
}

}  // namespace psclip::svc
