#pragma once

/// psclip — output-sensitive parallel polygon clipping.
///
/// Umbrella header: include this to get the whole public API. The library
/// reproduces Puri & Prasad, "Output-Sensitive Parallel Algorithm for
/// Polygon Clipping" (ICPP 2014); see README.md and DESIGN.md.
///
/// Quick map:
///   psclip::clip(a, b, op [, engine])   one-call facade (below)
///   seq::vatti_clip                     sequential scanline clipper
///   seq::martinez_clip                  independent x-sweep clipper
///   core::scanbeam_clip                 the paper's parallel Algorithm 1
///   mt::slab_clip / mt::multiset_clip   the paper's Algorithm 2

#include <optional>
#include <utility>

#include "core/algorithm1.hpp"
#include "error.hpp"
#include "geom/area_oracle.hpp"
#include "geom/bool_op.hpp"
#include "geom/geojson.hpp"
#include "geom/nesting.hpp"
#include "geom/perturb.hpp"
#include "geom/point_in_polygon.hpp"
#include "geom/polygon.hpp"
#include "geom/sanitize.hpp"
#include "geom/svg.hpp"
#include "geom/validate.hpp"
#include "geom/wkt.hpp"
#include "mt/algorithm2.hpp"
#include "mt/multiset.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "parallel/cancel.hpp"
#include "parallel/thread_pool.hpp"
#include "seq/bounds.hpp"
#include "seq/greiner_hormann.hpp"
#include "seq/liang_barsky.hpp"
#include "seq/martinez.hpp"
#include "seq/rect_clip.hpp"
#include "seq/sutherland_hodgman.hpp"
#include "seq/vatti.hpp"

namespace psclip {

/// Which implementation the clip() facade dispatches to.
enum class Engine {
  kAuto,       ///< sequential for small inputs, Algorithm 2 for large ones
  kVatti,      ///< sequential scanline clipper
  kMartinez,   ///< sequential x-sweep clipper
  kScanbeam,   ///< parallel Algorithm 1 (paper's PRAM algorithm)
  kSlab,       ///< parallel Algorithm 2 (paper's practical algorithm)
};

/// Request-governance options for the governed clip() overload.
struct ClipOptions {
  Engine engine = Engine::kAuto;
  /// Deadline / memory-budget / cancellation token (DESIGN.md §11). Null
  /// (default) governs nothing. Installed for the whole request: the
  /// parallel engines propagate it to every worker, and the sequential
  /// engines inherit it through the thread-local governance state (the
  /// Vatti sweep checks every scanbeam; Martinez checks at entry only).
  par::CancelToken cancel;
  /// Parallel slab engine only: return the completed slabs instead of
  /// failing when `cancel` trips mid-run (see Alg2Options::allow_partial).
  /// Sequential engines have no partial contract — they fail precisely.
  bool allow_partial = false;
  /// Out-parameter: when non-null, receives the run's partial-result
  /// report (PartialReport::partial == false for every complete result).
  mt::PartialReport* partial = nullptr;
  /// Thread pool for the parallel engines AND the kAuto selection's thread
  /// count. Null (default) = the process-wide par::default_pool(). A
  /// serving layer passes its own pool so every request — and the byte-
  /// identical serial reference recomputation of a request — runs on the
  /// same decomposition (slab count derives from pool size).
  par::ThreadPool* pool = nullptr;
  /// Trace + metrics sink for this call. Null (default) = the process-wide
  /// obs::global_sink(), the pre-existing behavior; a serving layer passes
  /// its per-service (or per-request) recorder here.
  obs::TraceSink* trace_sink = nullptr;
  /// Cross-request prepared-contour cache for the slab engine (see
  /// Alg2Options::prepared_cache). Null = prepare locally. Byte-identical
  /// output either way.
  seq::PreparedSource* prepared_cache = nullptr;
};

/// Vertex-count threshold at which kAuto hands a clip to the parallel slab
/// engine: below it the partition overhead outweighs the parallel win
/// (cf. bench_fig8). Exposed so the facade tests pin the boundary.
inline constexpr std::size_t kAutoSlabMinVertices = 20000;

/// Resolve the engine a clip of `total_vertices` input vertices will run
/// on, given the executing pool's thread count. Pure function of its
/// arguments — the facade and svc::ClipService both dispatch through it,
/// which is what makes a service result reproducible by a serial
/// psclip::clip call with the same pool. Never returns kAuto: kAuto picks
/// kSlab once the input amortizes partitioning AND the pool can actually
/// run slabs in parallel (> 1 thread), else the sequential Vatti clipper.
[[nodiscard]] constexpr Engine resolve_engine(Engine requested,
                                              std::size_t total_vertices,
                                              std::size_t pool_threads) {
  if (requested != Engine::kAuto) return requested;
  return total_vertices >= kAutoSlabMinVertices && pool_threads > 1
             ? Engine::kSlab
             : Engine::kVatti;
}

/// One-call general polygon clipping with request governance. Even-odd
/// semantics, arbitrary inputs (see README "Semantics and contract").
/// Parallel engines use the process-wide default thread pool. When a
/// process-wide trace sink is installed (obs::set_global_sink), the call
/// records a psclip.clip request span and the parallel engines trace their
/// phase/slab/rung breakdown into the same sink.
inline geom::PolygonSet clip(const geom::PolygonSet& subject,
                             const geom::PolygonSet& clip_poly,
                             geom::BoolOp op, const ClipOptions& copts) {
  obs::TraceSink* const sink =
      copts.trace_sink ? copts.trace_sink : obs::global_sink();
  par::ThreadPool& pool = copts.pool ? *copts.pool : par::default_pool();
  obs::ScopedSpan req_span(sink, "psclip.clip", obs::Cat::kRequest);
  // Install the token for the whole request; a request that is already
  // cancelled or past its deadline does no work at all.
  std::optional<par::gov::ScopedToken> gov_scope;
  if (copts.cancel.valid()) gov_scope.emplace(copts.cancel);
  par::gov::checkpoint_now();
  if (copts.partial) *copts.partial = mt::PartialReport{};
  const std::size_t n = subject.num_vertices() + clip_poly.num_vertices();
  switch (resolve_engine(copts.engine, n, pool.size())) {
    case Engine::kVatti:
      return seq::vatti_clip(subject, clip_poly, op);
    case Engine::kMartinez:
      return seq::martinez_clip(subject, clip_poly, op);
    case Engine::kScanbeam: {
      core::Alg1Options opts;
      opts.trace_sink = sink;
      return core::scanbeam_clip(subject, clip_poly, op, pool, nullptr, opts);
    }
    case Engine::kSlab:
    case Engine::kAuto:  // resolve_engine never returns kAuto
      break;
  }
  mt::Alg2Options opts;
  opts.trace_sink = sink;
  opts.cancel = copts.cancel;
  opts.allow_partial = copts.allow_partial;
  opts.prepared_cache = copts.prepared_cache;
  mt::Alg2Stats stats;
  geom::PolygonSet out = mt::slab_clip(subject, clip_poly, op, pool, opts,
                                       copts.partial ? &stats : nullptr);
  if (copts.partial) *copts.partial = std::move(stats.partial);
  return out;
}

/// Ungoverned convenience form: clip(a, b, op [, engine]).
inline geom::PolygonSet clip(const geom::PolygonSet& subject,
                             const geom::PolygonSet& clip_poly,
                             geom::BoolOp op, Engine engine = Engine::kAuto) {
  ClipOptions copts;
  copts.engine = engine;
  return clip(subject, clip_poly, op, copts);
}

}  // namespace psclip
