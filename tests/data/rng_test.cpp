#include "data/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace psclip::data {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i)
    if (a2.next() != c.next()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, IndexBoundedAndCoversRange) {
  Rng r(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(r.index(0), 0u);
}

TEST(Rng, GaussianMomentsRoughlyRight) {
  Rng r(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian(2.0, 3.0);
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.15);
}

}  // namespace
}  // namespace psclip::data
