#include "data/gis_sim.hpp"

#include <gtest/gtest.h>

#include "geom/area_oracle.hpp"

namespace psclip::data {
namespace {

TEST(GisSim, SpecTableHasFourDatasets) {
  const auto& specs = table3_specs();
  EXPECT_STREQ(specs[0].name, "ne_10m_urban_areas");
  EXPECT_EQ(specs[0].polys, 11878);
  EXPECT_EQ(specs[0].edges, 1153348);
  EXPECT_STREQ(specs[1].name, "ne_10m_states_provinces");
  EXPECT_EQ(specs[3].polys, 128682);
}

class GisDatasets : public ::testing::TestWithParam<int> {};

TEST_P(GisDatasets, ScaledCountsTrackTheSpec) {
  const int index = GetParam();
  const DatasetSpec& spec = table3_specs()[static_cast<std::size_t>(index - 1)];
  const double scale = 0.01;
  const auto layer = make_dataset(index, scale);
  const LayerStats st = measure(layer);
  const double want_polys = spec.polys * scale;
  EXPECT_GT(st.polys, want_polys * 0.5) << spec.name;
  EXPECT_LT(st.polys, want_polys * 1.5) << spec.name;
  // Edges per polygon mirror the spec's ratio.
  const double want_epp =
      static_cast<double>(spec.edges) / static_cast<double>(spec.polys);
  const double got_epp =
      static_cast<double>(st.edges) / static_cast<double>(st.polys);
  EXPECT_GT(got_epp, want_epp * 0.6) << spec.name;
  EXPECT_LT(got_epp, want_epp * 1.5) << spec.name;
}

TEST_P(GisDatasets, EdgeLengthsNearSpec) {
  const int index = GetParam();
  const DatasetSpec& spec = table3_specs()[static_cast<std::size_t>(index - 1)];
  const auto layer = make_dataset(index, 0.01);
  const LayerStats st = measure(layer);
  EXPECT_GT(st.mean_edge_len, spec.mean_edge_len * 0.3) << spec.name;
  EXPECT_LT(st.mean_edge_len, spec.mean_edge_len * 3.0) << spec.name;
}

TEST_P(GisDatasets, Deterministic) {
  const int index = GetParam();
  const auto a = make_dataset(index, 0.005);
  const auto b = make_dataset(index, 0.005);
  ASSERT_EQ(a.num_contours(), b.num_contours());
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_DOUBLE_EQ(geom::signed_area(a), geom::signed_area(b));
}

TEST_P(GisDatasets, LayerPolygonsAreDisjoint) {
  const auto layer = make_dataset(GetParam(), 0.004);
  // GIS layers don't self-overlap; our generators use grid placement.
  // Verify pairwise bbox disjointness on a sample.
  const auto& cs = layer.contours;
  int overlaps = 0;
  for (std::size_t i = 0; i < cs.size(); ++i)
    for (std::size_t j = i + 1; j < cs.size(); ++j)
      if (geom::bounds(cs[i]).overlaps(geom::bounds(cs[j]))) ++overlaps;
  EXPECT_EQ(overlaps, 0);
}

INSTANTIATE_TEST_SUITE_P(Table3, GisDatasets, ::testing::Values(1, 2, 3, 4));

TEST(GisSim, Datasets3And4Overlap) {
  const auto d3 = make_dataset(3, 0.002);
  const auto d4 = make_dataset(4, 0.002);
  EXPECT_GT(
      geom::boolean_area_oracle(d3, d4, geom::BoolOp::kIntersection), 0.0);
}

TEST(GisSim, Datasets1And2Overlap) {
  const auto d1 = make_dataset(1, 0.004);
  const auto d2 = make_dataset(2, 0.02);
  EXPECT_GT(
      geom::boolean_area_oracle(d1, d2, geom::BoolOp::kIntersection), 0.0);
}

TEST(GisSim, MeasureEmptyLayer) {
  const LayerStats st = measure({});
  EXPECT_EQ(st.polys, 0u);
  EXPECT_EQ(st.edges, 0u);
  EXPECT_EQ(st.mean_edge_len, 0.0);
}

}  // namespace
}  // namespace psclip::data
