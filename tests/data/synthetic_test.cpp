#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include "geom/area_oracle.hpp"
#include "geom/intersect.hpp"

namespace psclip::data {
namespace {

int self_crossings(const geom::Contour& c) {
  int count = 0;
  const std::size_t n = c.size();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const auto x = geom::segment_intersection(c[i], c[(i + 1) % n], c[j],
                                                c[(j + 1) % n]);
      if (x.relation == geom::SegmentRelation::kProper) ++count;
    }
  return count;
}

TEST(Synthetic, DeterministicInSeed) {
  const auto a = random_simple(42, 20, 0, 0, 10);
  const auto b = random_simple(42, 20, 0, 0, 10);
  const auto c = random_simple(43, 20, 0, 0, 10);
  ASSERT_EQ(a.contours[0].size(), b.contours[0].size());
  for (std::size_t i = 0; i < a.contours[0].size(); ++i)
    EXPECT_EQ(a.contours[0][i], b.contours[0][i]);
  EXPECT_NE(geom::signed_area(a), geom::signed_area(c));
}

TEST(Synthetic, SimplePolygonsAreSimple) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto p = random_simple(seed, 24, 0, 0, 10);
    EXPECT_EQ(self_crossings(p.contours[0]), 0) << "seed " << seed;
    EXPECT_GT(geom::signed_area(p), 0.0);
  }
}

TEST(Synthetic, ConvexPolygonsAreConvex) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto p = random_convex(seed, 16, 0, 0, 10);
    const auto& c = p.contours[0];
    const std::size_t n = c.size();
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(geom::cross(c[(i + 1) % n] - c[i], c[(i + 2) % n] - c[(i + 1) % n]),
                0.0)
          << "seed " << seed << " at " << i;
    }
  }
}

TEST(Synthetic, SelfIntersectingActuallySelfIntersects) {
  int with_crossings = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto p = random_self_intersecting(seed, 20, 0, 0, 10);
    if (self_crossings(p.contours[0]) > 0) ++with_crossings;
  }
  EXPECT_GE(with_crossings, 8);  // the shuffle virtually always crosses
}

TEST(Synthetic, StarPolygramPentagram) {
  const auto p = star_polygram(5, 2, 0, 0, 10);
  EXPECT_EQ(p.contours[0].size(), 5u);
  EXPECT_EQ(self_crossings(p.contours[0]), 5);  // pentagram: 5 crossings
}

TEST(Synthetic, SyntheticPairOverlaps) {
  for (int edges : {16, 64, 256}) {
    const SyntheticPair pair = synthetic_pair(7, edges);
    EXPECT_EQ(pair.subject.num_vertices(), static_cast<std::size_t>(edges));
    EXPECT_EQ(pair.clip.num_vertices(), static_cast<std::size_t>(edges));
    EXPECT_GT(geom::boolean_area_oracle(pair.subject, pair.clip,
                                        geom::BoolOp::kIntersection),
              0.0)
        << edges;
  }
}

TEST(Synthetic, PolygonFieldDisjointAndCounted) {
  const auto field = polygon_field(5, 25, 100.0, 8);
  EXPECT_EQ(field.num_contours(), 25u);
  // Grid placement with radius < 0.4 cell keeps bounding boxes disjoint.
  for (std::size_t i = 0; i < field.contours.size(); ++i) {
    for (std::size_t j = i + 1; j < field.contours.size(); ++j) {
      EXPECT_FALSE(geom::bounds(field.contours[i])
                       .overlaps(geom::bounds(field.contours[j])))
          << i << " vs " << j;
    }
  }
}

TEST(Synthetic, PolygonFieldInsideWorld) {
  const auto field = polygon_field(9, 40, 50.0, 6);
  const geom::BBox bb = geom::bounds(field);
  EXPECT_GE(bb.xmin, -5.0);
  EXPECT_LE(bb.xmax, 55.0);
}

}  // namespace
}  // namespace psclip::data
