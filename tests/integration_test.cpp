// End-to-end integration: datasets -> both parallel algorithms -> areas
// cross-checked against the sequential clipper and the oracle, plus the
// WKT/SVG output pipeline the examples use.

#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "data/gis_sim.hpp"
#include "data/synthetic.hpp"
#include "geom/area_oracle.hpp"
#include "geom/svg.hpp"
#include "geom/wkt.hpp"
#include "mt/algorithm2.hpp"
#include "mt/multiset.hpp"
#include "seq/vatti.hpp"
#include "test_support.hpp"

namespace psclip {
namespace {

using geom::BoolOp;
using geom::PolygonSet;

TEST(Integration, SyntheticPairThroughAllThreeClippers) {
  par::ThreadPool pool(4);
  const data::SyntheticPair pair = data::synthetic_pair(3, 200);
  for (const BoolOp op : geom::kAllOps) {
    const double seq_area =
        geom::signed_area(seq::vatti_clip(pair.subject, pair.clip, op));
    const double a1 = geom::signed_area(
        core::scanbeam_clip(pair.subject, pair.clip, op, pool));
    mt::Alg2Options o;
    o.slabs = 4;
    const double a2 = geom::signed_area(
        mt::slab_clip(pair.subject, pair.clip, op, pool, o));
    EXPECT_TRUE(test::areas_match(a1, seq_area, 1e-5)) << geom::to_string(op);
    EXPECT_TRUE(test::areas_match(a2, seq_area, 1e-5)) << geom::to_string(op);
  }
}

TEST(Integration, GisLayersIntersectConsistently) {
  par::ThreadPool pool(4);
  const PolygonSet d3 = data::make_dataset(3, 0.002);
  const PolygonSet d4 = data::make_dataset(4, 0.002);
  seq::VattiStats st;
  const double seq_area = geom::signed_area(
      seq::vatti_clip(d3, d4, BoolOp::kIntersection, &st));
  EXPECT_GT(seq_area, 0.0);
  EXPECT_GT(st.intersections, 0);

  mt::MultisetOptions mo;
  mo.slabs = 4;
  mt::Alg2Stats mst;
  const double par_area = geom::signed_area(
      mt::multiset_clip(d3, d4, BoolOp::kIntersection, pool, mo, &mst));
  EXPECT_TRUE(test::areas_match(par_area, seq_area, 1e-5))
      << " par=" << par_area << " seq=" << seq_area;
}

TEST(Integration, UnionOfGisLayersConsistent) {
  par::ThreadPool pool(4);
  const PolygonSet d1 = data::make_dataset(1, 0.002);
  const PolygonSet d2 = data::make_dataset(2, 0.01);
  const double seq_area =
      geom::signed_area(seq::vatti_clip(d1, d2, BoolOp::kUnion));
  mt::MultisetOptions mo;
  mo.slabs = 3;
  const double par_area = geom::signed_area(
      mt::multiset_clip(d1, d2, BoolOp::kUnion, pool, mo));
  EXPECT_TRUE(test::areas_match(par_area, seq_area, 1e-5));
}

TEST(Integration, WktRoundTripThroughClipper) {
  const PolygonSet a = test::random_polygon(1001, 12, 0, 0, 10);
  const PolygonSet b = test::random_polygon(1002, 10, 2, 1, 8);
  const auto a2 = geom::from_wkt(geom::to_wkt(a));
  const auto b2 = geom::from_wkt(geom::to_wkt(b));
  ASSERT_TRUE(a2 && b2);
  const double direct = geom::signed_area(
      seq::vatti_clip(a, b, BoolOp::kIntersection));
  const double roundtrip = geom::signed_area(
      seq::vatti_clip(*a2, *b2, BoolOp::kIntersection));
  EXPECT_DOUBLE_EQ(direct, roundtrip);
}

TEST(Integration, SvgRendersClipResult) {
  const PolygonSet a = test::random_polygon(2001, 16, 0, 0, 10);
  const PolygonSet b = test::random_polygon(2002, 12, 1, 1, 8);
  const PolygonSet r = seq::vatti_clip(a, b, BoolOp::kIntersection);
  geom::SvgWriter svg;
  svg.add_layer(a, "#8da0cb", "#36405a");
  svg.add_layer(b, "#fc8d62", "#7a3f27");
  svg.add_layer(r, "#66c2a5", "#2a5446", 0.9);
  const std::string doc = svg.str();
  EXPECT_GT(doc.size(), 200u);
  EXPECT_NE(doc.find("evenodd"), std::string::npos);
}

TEST(Integration, Algorithm1StatsConsistentWithVatti) {
  par::ThreadPool pool(4);
  const data::SyntheticPair pair = data::synthetic_pair(9, 120);
  core::Alg1Stats a1;
  core::scanbeam_clip(pair.subject, pair.clip, BoolOp::kIntersection, pool,
                      &a1);
  seq::VattiStats vs;
  seq::vatti_clip(pair.subject, pair.clip, BoolOp::kIntersection, &vs);
  EXPECT_EQ(a1.edges, vs.edges);
  EXPECT_EQ(a1.intersections, vs.intersections);  // same k by Lemma 4
  EXPECT_EQ(a1.scanbeams, vs.scanbeams);
}

}  // namespace
}  // namespace psclip
