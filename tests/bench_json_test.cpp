// Schema contract for the bench harness JSON reports: every report written
// through bench::JsonReport carries "schema_version" (the gate scripts and
// the perf-smoke CI job keys on it), scalar fields and row arrays survive
// round-tripping, and a caller-supplied version is not duplicated. Also
// pins the PhaseTimes wall/cpu unit split the schema-2 reports expose:
// per-slab phase sums must land in the *_cpu fields and may never exceed
// them, and single-slab runs may not report more cpu clip time than wall.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "geom/bool_op.hpp"
#include "mt/algorithm2.hpp"
#include "parallel/thread_pool.hpp"

namespace psclip {
namespace {

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (!f) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::size_t count_key(const std::string& doc, const std::string& key) {
  std::size_t n = 0;
  for (std::size_t pos = doc.find('"' + key + '"'); pos != std::string::npos;
       pos = doc.find('"' + key + '"', pos + 1))
    ++n;
  return n;
}

TEST(BenchJson, SchemaVersionIsStamped) {
  bench::JsonReport r;
  r.field("threads", 4LL);
  r.field("dataset", std::string("synthetic"));
  r.row("phases");
  r.cell("name", std::string("partition"));
  r.cell("seconds", 0.25);
  const std::string path = ::testing::TempDir() + "/bench_json_test.json";
  ASSERT_TRUE(r.write_file(path));
  const std::string doc = slurp(path);
  std::remove(path.c_str());

  // Required keys for every report.
  EXPECT_EQ(count_key(doc, "schema_version"), 1u) << doc;
  EXPECT_NE(doc.find("\"schema_version\": " +
                     std::to_string(bench::kReportSchemaVersion)),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"threads\": 4"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"dataset\": \"synthetic\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"phases\": ["), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"name\": \"partition\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"seconds\": 0.25"), std::string::npos) << doc;
  // Balanced braces/brackets — cheap structural sanity without a parser.
  std::ptrdiff_t braces = 0, brackets = 0;
  for (const char ch : doc) {
    braces += (ch == '{') - (ch == '}');
    brackets += (ch == '[') - (ch == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(BenchJson, CallerVersionIsNotDuplicated) {
  bench::JsonReport r;
  r.field("schema_version", 7LL);
  const std::string path = ::testing::TempDir() + "/bench_json_test2.json";
  ASSERT_TRUE(r.write_file(path));
  const std::string doc = slurp(path);
  std::remove(path.c_str());
  EXPECT_EQ(count_key(doc, "schema_version"), 1u) << doc;
  EXPECT_NE(doc.find("\"schema_version\": 7"), std::string::npos) << doc;
}

// The schema-1 reports mixed wall-clock section times and per-worker cpu
// sums in one column, which made "clip" exceed the run total at slabs = 1
// (indexed_clip_ms 333 > indexed_ms 300 in the committed report). Schema 2
// split the columns but still filled the cpu side from wall timers inside
// the slab tasks, double-charging time the worker was descheduled — the
// artifact behind the committed clip-cpu "doubling" from 1 to 4 slabs. The
// schema-3 contract checked here: wall fields are calling-thread sections,
// cpu fields come from the thread CPU clock (par::ThreadCpuTimer), and a
// section's cpu time can never meaningfully exceed its wall time.
TEST(BenchJson, PhaseWallCpuInvariants) {
  const auto pair = data::synthetic_pair(77, 1200);
  par::ThreadPool pool(4);

  // CLOCK_THREAD_CPUTIME_ID granularity + a little scheduler slop.
  const double tol = 2e-3;

  for (const unsigned slabs : {1u, 4u, 8u}) {
    SCOPED_TRACE("slabs=" + std::to_string(slabs));
    mt::Alg2Options o;
    o.slabs = slabs;
    mt::Alg2Stats st;
    (void)mt::slab_clip(pair.subject, pair.clip, geom::BoolOp::kUnion, pool,
                        o, &st);

    // clip_cpu is exactly the per-slab thread-CPU sum (same summation
    // order, so bitwise equal — this is what "phase sums land in the cpu
    // column" means).
    double cpu_sum = 0.0, wall_sum = 0.0;
    for (const auto& s : st.slabs) {
      cpu_sum += s.cpu_seconds;
      wall_sum += s.seconds;
      // One slab's clip section runs on one thread: its CPU time cannot
      // exceed its own wall time (the schema-2 bug made them equal by
      // construction; now cpu <= wall is a real measurement invariant).
      EXPECT_LE(s.cpu_seconds, s.seconds + tol);
    }
    EXPECT_DOUBLE_EQ(st.phases.clip_cpu, cpu_sum);
    EXPECT_LE(st.phases.clip_cpu, wall_sum + tol);

    // merge runs on the caller only: its CPU time is bounded by the wall
    // section (equality only when the caller was never descheduled).
    EXPECT_LE(st.phases.merge_cpu, st.phases.merge + tol);

    // Every slab's clip section ran strictly inside the parallel region,
    // so at one slab the cpu time cannot exceed the region's wall time.
    if (slabs == 1) EXPECT_LE(st.phases.clip_cpu, st.phases.clip + tol);

    // CPU fields are real measurements, never negative.
    EXPECT_GE(st.phases.partition_cpu, 0.0);
    EXPECT_GE(st.phases.clip_cpu, 0.0);
    EXPECT_GE(st.phases.merge_cpu, 0.0);

    // Wall phases are sections of the same run: each is <= the total.
    EXPECT_LE(st.phases.partition, st.phases.total());
    EXPECT_LE(st.phases.clip, st.phases.total());
    EXPECT_LE(st.phases.merge, st.phases.total());
  }
}

TEST(BenchJson, EmptyReportIsValidObject) {
  bench::JsonReport r;
  const std::string path = ::testing::TempDir() + "/bench_json_test3.json";
  ASSERT_TRUE(r.write_file(path));
  const std::string doc = slurp(path);
  std::remove(path.c_str());
  EXPECT_EQ(count_key(doc, "schema_version"), 1u) << doc;
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc[doc.size() - 2], '}');  // trailing newline after the object
}

}  // namespace
}  // namespace psclip
