// Schema contract for the bench harness JSON reports: every report written
// through bench::JsonReport carries "schema_version" (the gate scripts and
// the perf-smoke CI job key on it), scalar fields and row arrays survive
// round-tripping, and a caller-supplied version is not duplicated.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bench_util.hpp"

namespace psclip {
namespace {

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (!f) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::size_t count_key(const std::string& doc, const std::string& key) {
  std::size_t n = 0;
  for (std::size_t pos = doc.find('"' + key + '"'); pos != std::string::npos;
       pos = doc.find('"' + key + '"', pos + 1))
    ++n;
  return n;
}

TEST(BenchJson, SchemaVersionIsStamped) {
  bench::JsonReport r;
  r.field("threads", 4LL);
  r.field("dataset", std::string("synthetic"));
  r.row("phases");
  r.cell("name", std::string("partition"));
  r.cell("seconds", 0.25);
  const std::string path = ::testing::TempDir() + "/bench_json_test.json";
  ASSERT_TRUE(r.write_file(path));
  const std::string doc = slurp(path);
  std::remove(path.c_str());

  // Required keys for every report.
  EXPECT_EQ(count_key(doc, "schema_version"), 1u) << doc;
  EXPECT_NE(doc.find("\"schema_version\": " +
                     std::to_string(bench::kReportSchemaVersion)),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"threads\": 4"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"dataset\": \"synthetic\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"phases\": ["), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"name\": \"partition\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"seconds\": 0.25"), std::string::npos) << doc;
  // Balanced braces/brackets — cheap structural sanity without a parser.
  std::ptrdiff_t braces = 0, brackets = 0;
  for (const char ch : doc) {
    braces += (ch == '{') - (ch == '}');
    brackets += (ch == '[') - (ch == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(BenchJson, CallerVersionIsNotDuplicated) {
  bench::JsonReport r;
  r.field("schema_version", 7LL);
  const std::string path = ::testing::TempDir() + "/bench_json_test2.json";
  ASSERT_TRUE(r.write_file(path));
  const std::string doc = slurp(path);
  std::remove(path.c_str());
  EXPECT_EQ(count_key(doc, "schema_version"), 1u) << doc;
  EXPECT_NE(doc.find("\"schema_version\": 7"), std::string::npos) << doc;
}

TEST(BenchJson, EmptyReportIsValidObject) {
  bench::JsonReport r;
  const std::string path = ::testing::TempDir() + "/bench_json_test3.json";
  ASSERT_TRUE(r.write_file(path));
  const std::string doc = slurp(path);
  std::remove(path.c_str());
  EXPECT_EQ(count_key(doc, "schema_version"), 1u) << doc;
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc[doc.size() - 2], '}');  // trailing newline after the object
}

}  // namespace
}  // namespace psclip
