// Fault-injection fuzz lane (requires -DPSCLIP_FAULT_INJECTION=ON).
//
// Reuses the exact 216-case corpus of the cross-engine differential
// harness (tests/fuzz_cases.hpp). For every case: run Algorithm 2 clean,
// then arm a single-shot fault plan derived from the case seed
// (fault::seeded_plan picks site, kind and slab key pseudo-randomly) and
// run again. A single-shot fault is always recovered on the kRetrySafe
// rung — broadcast repartition with fresh scratch, which PR 2's
// indexed≡broadcast guarantee makes bit-equal to the healthy path — so
// the faulted run must be BYTE-IDENTICAL to the clean run, not merely
// area-equal, on every corpus case. Degradation accounting must show
// nothing deeper than kRetrySafe.
//
// Some seeded plans target a slab/site combination the case never reaches
// (an out-of-range key, a rect-clip site when a slab has no straddling
// contours). Those plans simply never fire; the identity requirement
// holds either way, and the harness logs how many plans actually fired so
// a generator regression that silences the whole lane is visible.

#include <gtest/gtest.h>

#include <cstdint>

#include "fuzz_cases.hpp"
#include "mt/algorithm2.hpp"
#include "mt/stats.hpp"
#include "parallel/fault.hpp"
#include "parallel/thread_pool.hpp"

namespace psclip {
namespace {

using fuzz::canonical_vertices;
using fuzz::FuzzCase;
using fuzz::Inputs;
using fuzz::make_inputs;
using geom::PolygonSet;

static_assert(par::fault::kEnabled,
              "fault_fuzz_test requires PSCLIP_FAULT_INJECTION=ON");

constexpr unsigned kSlabs = 6;

class FaultFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FaultFuzz, SingleShotFaultIsInvisible) {
  const FuzzCase c = GetParam();
  const par::fault::Plan plan = par::fault::seeded_plan(c.seed, kSlabs);
  SCOPED_TRACE("repro: " + c.repro() +
               " fault=" + par::fault::to_string(plan.site) + "/" +
               par::fault::to_string(plan.kind) +
               " key=" + std::to_string(plan.key));
  const Inputs in = make_inputs(c);

  static par::ThreadPool pool(4);
  mt::Alg2Options o;
  o.slabs = kSlabs;
  // Self-intersecting corpus shapes need the Vatti rectangle clipper.
  o.rect_method = seq::RectClipMethod::kVatti;

  par::fault::disarm();
  const PolygonSet want = mt::slab_clip(in.a, in.b, c.op, pool, o);

  par::fault::arm(plan);
  mt::Alg2Stats stats;
  PolygonSet got;
  try {
    got = mt::slab_clip(in.a, in.b, c.op, pool, o, &stats);
  } catch (...) {
    par::fault::disarm();
    throw;
  }
  const std::uint64_t fired = par::fault::fired();
  par::fault::disarm();

  // Byte identity, fired or not: a fault that never fires trivially
  // preserves the output, one that does must be absorbed at kRetrySafe.
  EXPECT_EQ(canonical_vertices(got), canonical_vertices(want))
      << "single-shot fault changed the output (fired=" << fired << ")";
  EXPECT_LE(stats.worst_rung(), mt::Rung::kRetrySafe)
      << "single-shot fault drove a slab below the safe-retry rung";
  if (fired == 0) {
    EXPECT_EQ(stats.degraded_slabs(), 0);
  } else {
    EXPECT_GE(stats.degraded_slabs(), 1)
        << "a fault fired but no degradation was recorded";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeded, FaultFuzz,
                         ::testing::ValuesIn(fuzz::make_cases()));

}  // namespace
}  // namespace psclip
