// Fault-injection fuzz lane (requires -DPSCLIP_FAULT_INJECTION=ON).
//
// Reuses the exact 216-case corpus of the cross-engine differential
// harness (tests/fuzz_cases.hpp). For every case: run Algorithm 2 clean,
// then arm a single-shot fault plan derived from the case seed
// (fault::seeded_plan picks site, kind and slab key pseudo-randomly) and
// run again. A single-shot fault is always recovered on the kRetrySafe
// rung — broadcast repartition with fresh scratch, which PR 2's
// indexed≡broadcast guarantee makes bit-equal to the healthy path — so
// the faulted run must be BYTE-IDENTICAL to the clean run, not merely
// area-equal, on every corpus case. Degradation accounting must show
// nothing deeper than kRetrySafe.
//
// Some seeded plans target a slab/site combination the case never reaches
// (an out-of-range key, a rect-clip site when a slab has no straddling
// contours). Those plans simply never fire; the identity requirement
// holds either way, and the harness logs how many plans actually fired so
// a generator regression that silences the whole lane is visible.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "fuzz_cases.hpp"
#include "mt/algorithm2.hpp"
#include "mt/stats.hpp"
#include "parallel/cancel.hpp"
#include "parallel/fault.hpp"
#include "parallel/thread_pool.hpp"

namespace psclip {
namespace {

using fuzz::canonical_vertices;
using fuzz::FuzzCase;
using fuzz::Inputs;
using fuzz::make_inputs;
using geom::PolygonSet;

static_assert(par::fault::kEnabled,
              "fault_fuzz_test requires PSCLIP_FAULT_INJECTION=ON");

constexpr unsigned kSlabs = 6;

class FaultFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FaultFuzz, SingleShotFaultIsInvisible) {
  const FuzzCase c = GetParam();
  const par::fault::Plan plan = par::fault::seeded_plan(c.seed, kSlabs);
  SCOPED_TRACE("repro: " + c.repro() +
               " fault=" + par::fault::to_string(plan.site) + "/" +
               par::fault::to_string(plan.kind) +
               " key=" + std::to_string(plan.key));
  const Inputs in = make_inputs(c);

  static par::ThreadPool pool(4);
  mt::Alg2Options o;
  o.slabs = kSlabs;
  // Self-intersecting corpus shapes need the Vatti rectangle clipper.
  o.rect_method = seq::RectClipMethod::kVatti;

  par::fault::disarm();
  const PolygonSet want = mt::slab_clip(in.a, in.b, c.op, pool, o);

  par::fault::arm(plan);
  mt::Alg2Stats stats;
  PolygonSet got;
  try {
    got = mt::slab_clip(in.a, in.b, c.op, pool, o, &stats);
  } catch (...) {
    par::fault::disarm();
    throw;
  }
  const std::uint64_t fired = par::fault::fired();
  par::fault::disarm();

  // Byte identity, fired or not: a fault that never fires trivially
  // preserves the output, one that does must be absorbed at kRetrySafe.
  EXPECT_EQ(canonical_vertices(got), canonical_vertices(want))
      << "single-shot fault changed the output (fired=" << fired << ")";
  EXPECT_LE(stats.worst_rung(), mt::Rung::kRetrySafe)
      << "single-shot fault drove a slab below the safe-retry rung";
  if (fired == 0) {
    EXPECT_EQ(stats.degraded_slabs(), 0);
  } else {
    EXPECT_GE(stats.degraded_slabs(), 1)
        << "a fault fired but no degradation was recorded";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeded, FaultFuzz,
                         ::testing::ValuesIn(fuzz::make_cases()));

// ---- Governance-kind lanes (kStall / kHog). ----
//
// These kinds deliberately violate the original lane's "fired ⟹ degraded"
// invariant — a stall is a slow site, not a broken one — so they get their
// own lanes with their own invariants:
//   * a stall with no deadline armed is completely invisible: byte-equal
//     output, zero degradation (nothing threw, nothing retried);
//   * an allocation hog under a finite budget is a *transient* failure —
//     the spike is released with the attempt, the sticky flag stays clear,
//     and the ladder recovers on kRetrySafe with byte-identical output.

class GovernanceFaultFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(GovernanceFaultFuzz, StallWithoutDeadlineIsInvisible) {
  const FuzzCase c = GetParam();
  par::fault::Plan plan = par::fault::seeded_governance_plan(c.seed, kSlabs);
  plan.kind = par::fault::Kind::kStall;
  plan.magnitude = 1;  // 1 ms keeps 216 cases fast
  SCOPED_TRACE("repro: " + c.repro() +
               " stall@" + par::fault::to_string(plan.site) +
               " key=" + std::to_string(plan.key));
  const Inputs in = make_inputs(c);

  static par::ThreadPool pool(4);
  mt::Alg2Options o;
  o.slabs = kSlabs;
  o.rect_method = seq::RectClipMethod::kVatti;

  par::fault::disarm();
  const PolygonSet want = mt::slab_clip(in.a, in.b, c.op, pool, o);

  par::fault::arm(plan);
  mt::Alg2Stats stats;
  PolygonSet got;
  try {
    got = mt::slab_clip(in.a, in.b, c.op, pool, o, &stats);
  } catch (...) {
    par::fault::disarm();
    throw;
  }
  par::fault::disarm();

  EXPECT_EQ(canonical_vertices(got), canonical_vertices(want));
  EXPECT_EQ(stats.degraded_slabs(), 0)
      << "a stall is slow, not broken: nothing may throw or retry";
  EXPECT_FALSE(stats.partial.partial);
}

TEST_P(GovernanceFaultFuzz, HogUnderBudgetRecoversByteIdentical) {
  const FuzzCase c = GetParam();
  par::fault::Plan plan = par::fault::seeded_governance_plan(c.seed, kSlabs);
  plan.kind = par::fault::Kind::kHog;
  plan.magnitude = 0;  // default 1 GiB spike — never fits the budget below
  SCOPED_TRACE("repro: " + c.repro() +
               " hog@" + par::fault::to_string(plan.site) +
               " key=" + std::to_string(plan.key));
  const Inputs in = make_inputs(c);

  static par::ThreadPool pool(4);
  mt::Alg2Options o;
  o.slabs = kSlabs;
  o.rect_method = seq::RectClipMethod::kVatti;

  par::fault::disarm();
  const PolygonSet want = mt::slab_clip(in.a, in.b, c.op, pool, o);

  // Generous for the corpus's real footprint, far smaller than the spike.
  auto budget = std::make_shared<par::ResourceBudget>(256ull << 20);
  o.cancel = par::CancelToken::make();
  o.cancel.set_budget(budget);

  par::fault::arm(plan);
  mt::Alg2Stats stats;
  PolygonSet got;
  try {
    got = mt::slab_clip(in.a, in.b, c.op, pool, o, &stats);
  } catch (...) {
    par::fault::disarm();
    throw;
  }
  const std::uint64_t fired = par::fault::fired();
  par::fault::disarm();

  EXPECT_EQ(canonical_vertices(got), canonical_vertices(want))
      << "hog recovery changed the output (fired=" << fired << ")";
  EXPECT_LE(stats.worst_rung(), mt::Rung::kRetrySafe)
      << "a transient spike must retry, not abandon the slab";
  EXPECT_FALSE(stats.partial.partial);
  EXPECT_FALSE(budget->blown())
      << "a released spike must not leave the budget sticky-blown";
  EXPECT_EQ(budget->used(), 0u);
  if (fired > 0) {
    EXPECT_GE(stats.degraded_slabs(), 1)
        << "a hog fired against a finite budget but nothing degraded";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeded, GovernanceFaultFuzz,
                         ::testing::ValuesIn(fuzz::make_cases()));

}  // namespace
}  // namespace psclip
