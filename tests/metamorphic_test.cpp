// Metamorphic invariant suite.
//
// Where cross_engine_fuzz_test checks that independent engines agree with
// each other, this harness checks that each engine agrees with *algebra*:
// properties of regularized boolean operations that hold for any correct
// clipper, evaluated over the same 216-case corpus (tests/fuzz_cases.hpp)
// for both sequential engines (Vatti and Martinez).
//
//   * commutativity     A ∩ B == B ∩ A and A ∪ B == B ∪ A
//   * De Morgan         M \ (A ∪ B) == (M \ A) ∩ (M \ B) within the MBR M
//   * area conservation area(A∩B) + area(A∪B) == area(A) + area(B)
//   * idempotence       A ∩ A == A (after geom::sanitize)
//
// Region equality is decided by the trapezoid-sweep oracle (which shares
// no code with any engine): two outputs cover the same region iff the
// even-odd area of their symmetric difference is ~0. This sidesteps
// vertex-order and contour-splitting differences that make exact output
// comparison meaningless across argument orders.
//
// MutationIsCaught demonstrates the suite has teeth: displacing a single
// vertex of an engine output breaks area conservation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "fuzz_cases.hpp"
#include "geom/area_oracle.hpp"
#include "geom/perturb.hpp"
#include "geom/sanitize.hpp"
#include "seq/martinez.hpp"
#include "seq/vatti.hpp"
#include "test_support.hpp"

namespace psclip {
namespace {

using fuzz::FuzzCase;
using fuzz::Inputs;
using fuzz::make_inputs;
using geom::BoolOp;
using geom::PolygonSet;

using ClipFn = PolygonSet (*)(const PolygonSet&, const PolygonSet&, BoolOp);

PolygonSet vatti(const PolygonSet& a, const PolygonSet& b, BoolOp op) {
  return seq::vatti_clip(a, b, op);
}
PolygonSet martinez(const PolygonSet& a, const PolygonSet& b, BoolOp op) {
  return seq::martinez_clip(a, b, op);
}

struct Engine {
  const char* name;
  ClipFn clip;
};

const Engine kEngines[] = {{"vatti", &vatti}, {"martinez", &martinez}};

/// Characteristic scale of a case: relative tolerances need a reference
/// larger than any area the invariants compare, and robust to zero-area
/// (empty-input) cases.
double scale_of(const Inputs& in) {
  return 1.0 + std::fabs(geom::even_odd_area(in.a)) +
         std::fabs(geom::even_odd_area(in.b));
}

/// Regions equal <=> even-odd area of the symmetric difference is ~0,
/// measured by the engine-independent oracle.
void expect_same_region(const PolygonSet& p, const PolygonSet& q,
                        double scale, const char* what) {
  const double xor_area =
      std::fabs(geom::boolean_area_oracle(p, q, BoolOp::kXor));
  EXPECT_LE(xor_area, 1e-5 * scale) << what;
}

/// Axis-aligned frame strictly containing both inputs; the universe for
/// complements in the De Morgan identity. `grow` inflates the margin:
/// the identity below uses two *nested* frames so the two complement
/// results never present coincident frame edges to the final intersection
/// (coincident edges are the degeneracy the paper's §III-C perturbation
/// exists to remove, not something any engine promises to digest).
PolygonSet mbr_frame(const Inputs& in, double grow) {
  geom::BBox bb;
  for (const PolygonSet* p : {&in.a, &in.b})
    for (const auto& c : p->contours)
      for (const auto& pt : c.pts) bb.expand(pt);
  if (bb.empty()) bb = {0.0, 0.0, 1.0, 1.0};
  const double mx = grow * (1.0 + 0.1 * (bb.xmax - bb.xmin));
  const double my = grow * (1.0 + 0.1 * (bb.ymax - bb.ymin));
  PolygonSet m;
  m.add({{bb.xmin - mx, bb.ymin - my},
         {bb.xmax + mx, bb.ymin - my},
         {bb.xmax + mx, bb.ymax + my},
         {bb.xmin - mx, bb.ymax + my}});
  return m;
}

class Metamorphic : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(Metamorphic, Commutativity) {
  const FuzzCase c = GetParam();
  SCOPED_TRACE("repro: " + c.repro());
  const Inputs in = make_inputs(c);
  const double scale = scale_of(in);
  for (const Engine& e : kEngines) {
    SCOPED_TRACE(e.name);
    for (const BoolOp op : {BoolOp::kIntersection, BoolOp::kUnion}) {
      const PolygonSet ab = e.clip(in.a, in.b, op);
      const PolygonSet ba = e.clip(in.b, in.a, op);
      expect_same_region(ab, ba, scale,
                         op == BoolOp::kIntersection ? "A∩B vs B∩A"
                                                     : "A∪B vs B∪A");
    }
  }
}

TEST_P(Metamorphic, DeMorgan) {
  const FuzzCase c = GetParam();
  SCOPED_TRACE("repro: " + c.repro());
  Inputs in = make_inputs(c);
  // The identity below holds exactly for *any* A and B, so restoring
  // general position first (paper §III-C) costs nothing: the corpus'
  // snap-degraded cases put A and B on one shared grid, and the two
  // complements then present near-coincident hole boundaries to the final
  // intersection (a live-lock for the Martinez sweep). Independent jitters
  // decorrelate the grids; the invariant is then evaluated on the
  // perturbed pair, for which it is still exact.
  geom::jitter(in.a, 1e-5, c.seed * 7 + 3);
  geom::jitter(in.b, 1e-5, c.seed * 7 + 4);
  // Nested universes M ⊆ M': with A's complement taken in M and B's in the
  // strictly larger M', the identity
  //   M \ (A ∪ B) == (M \ A) ∩ (M' \ B)
  // holds exactly (M ⊆ M'), and the final intersection never sees the
  // coincident frame edges a single shared universe would produce.
  const PolygonSet m = mbr_frame(in, 1.0);
  const PolygonSet m_outer = mbr_frame(in, 2.0);
  const double scale = scale_of(in) + std::fabs(geom::even_odd_area(m));
  for (const Engine& e : kEngines) {
    SCOPED_TRACE(e.name);
    const PolygonSet lhs =
        e.clip(m, e.clip(in.a, in.b, BoolOp::kUnion), BoolOp::kDifference);
    const PolygonSet rhs = e.clip(e.clip(m, in.a, BoolOp::kDifference),
                                  e.clip(m_outer, in.b, BoolOp::kDifference),
                                  BoolOp::kIntersection);
    expect_same_region(lhs, rhs, scale, "M\\(A∪B) vs (M\\A)∩(M'\\B)");
  }
}

TEST_P(Metamorphic, AreaConservation) {
  const FuzzCase c = GetParam();
  SCOPED_TRACE("repro: " + c.repro());
  const Inputs in = make_inputs(c);
  // Inputs may self-intersect; their measure under the clipping semantics
  // is the even-odd area. Engine outputs are even-odd decompositions with
  // oriented holes, so signed_area is their measure.
  const double a = geom::even_odd_area(in.a);
  const double b = geom::even_odd_area(in.b);
  const double scale = 1.0 + std::fabs(a) + std::fabs(b);
  for (const Engine& e : kEngines) {
    SCOPED_TRACE(e.name);
    const double inter =
        geom::signed_area(e.clip(in.a, in.b, BoolOp::kIntersection));
    const double uni = geom::signed_area(e.clip(in.a, in.b, BoolOp::kUnion));
    EXPECT_LE(std::fabs((inter + uni) - (a + b)), 1e-5 * scale)
        << "area(A∩B)+area(A∪B)=" << inter + uni
        << " area(A)+area(B)=" << a + b;
  }
}

TEST_P(Metamorphic, Idempotence) {
  const FuzzCase c = GetParam();
  SCOPED_TRACE("repro: " + c.repro());
  const Inputs in = make_inputs(c);
  const PolygonSet a = geom::sanitize(in.a);
  // Two bit-identical copies put every edge exactly on top of its twin —
  // the coincident-edge degeneracy no sweep engine contracts to handle
  // (under even-odd, doubled coverage even cancels the region). The
  // paper's §III-C answer applies: restore general position by
  // perturbation. The invariant quantifies over general-position
  // perturbations, and no *fixed* magnitude delivers one for every corpus
  // case — each resonates with the snap grid of ~1% of the degenerate
  // inputs — so each engine gets three independent magnitudes and must
  // satisfy A ∩ jitter(A) == A for at least one. A genuinely wrong engine
  // fails all three (the error is in the clip, not the perturbation); a
  // single miss just means that realization was not in general position.
  double perimeter = 0.0;
  for (const auto& ct : a.contours)
    for (std::size_t i = 0; i < ct.pts.size(); ++i) {
      const auto& p0 = ct.pts[i];
      const auto& p1 = ct.pts[(i + 1) % ct.pts.size()];
      perimeter += std::hypot(p1.x - p0.x, p1.y - p0.y);
    }
  const double scale = 1.0 + std::fabs(geom::even_odd_area(a));
  constexpr double kEps[] = {1e-5, 1.3e-5, 1.7e-5};
  for (const Engine& e : kEngines) {
    SCOPED_TRACE(e.name);
    bool ok = false;
    double last_xor = 0.0, last_tol = 0.0;
    for (const double eps : kEps) {
      PolygonSet a2 = a;
      geom::jitter(a2, eps, c.seed * 5 + 1);
      const PolygonSet out = e.clip(a, a2, BoolOp::kIntersection);
      // jitter(A) differs from A by at most perimeter x displacement of
      // swept area (x4 margin: both coordinates move, plus oracle
      // rounding).
      last_xor = std::fabs(geom::boolean_area_oracle(out, a, BoolOp::kXor));
      last_tol = 1e-5 * scale + 4.0 * perimeter * eps;
      if (last_xor <= last_tol) {
        ok = true;
        break;
      }
    }
    EXPECT_TRUE(ok) << "A∩jitter(A) vs A: xor_area=" << last_xor
                    << " tol=" << last_tol << " for all perturbations";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeded, Metamorphic,
                         ::testing::ValuesIn(fuzz::make_cases()));

// The invariants must have teeth: seed a one-vertex mutation into an
// engine output and check area conservation flags it. The displacement
// (0.5 in a ~10x10 case) is far above the 1e-5 relative tolerance, so a
// pass here means the oracle genuinely measures the output, and a clipper
// bug of this magnitude cannot slip through the parameterized suite.
TEST(MetamorphicMutation, MutationIsCaught) {
  const FuzzCase c{424200, fuzz::Shape::kBlobPair, fuzz::Degenerate::kNone,
                   BoolOp::kIntersection};
  const Inputs in = make_inputs(c);
  const double a = geom::even_odd_area(in.a);
  const double b = geom::even_odd_area(in.b);
  const double scale = 1.0 + std::fabs(a) + std::fabs(b);

  PolygonSet inter = seq::vatti_clip(in.a, in.b, BoolOp::kIntersection);
  const PolygonSet uni = seq::vatti_clip(in.a, in.b, BoolOp::kUnion);

  // Untouched outputs satisfy conservation...
  const double before =
      std::fabs((geom::signed_area(inter) + geom::signed_area(uni)) - (a + b));
  ASSERT_LE(before, 1e-5 * scale);

  // ...the mutated one does not.
  ASSERT_FALSE(inter.contours.empty());
  ASSERT_FALSE(inter.contours[0].pts.empty());
  inter.contours[0].pts[0].x += 0.5;
  const double after =
      std::fabs((geom::signed_area(inter) + geom::signed_area(uni)) - (a + b));
  EXPECT_GT(after, 1e-5 * scale)
      << "a displaced vertex went unnoticed: invariant has no teeth";
}

}  // namespace
}  // namespace psclip
