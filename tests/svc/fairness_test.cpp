// Fairness and governance regressions for svc::ClipService.
//
// Deterministic by construction, not by sleeping: the "large request in
// flight" condition is manufactured with a trace sink that blocks exactly
// one of the large request's slab tasks on a latch (the same sink
// technique governance_test uses to cancel mid-slab). The blocked task is
// *running* on a pool worker — not sitting in a deque where a helping
// thread could steal it — so the large request provably cannot finish
// until the test releases it, while the pool's remaining workers and the
// admission gate stay live for the small request.

#include "svc/clip_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <future>
#include <mutex>
#include <thread>

#include "data/synthetic.hpp"
#include "obs/trace.hpp"
#include "parallel/cancel.hpp"
#include "parallel/thread_pool.hpp"
#include "psclip.hpp"

namespace psclip {
namespace {

using geom::PolygonSet;
using svc::ClipRequest;
using svc::ClipResult;
using svc::ClipService;
using svc::ServiceOptions;

bool bit_identical(const PolygonSet& a, const PolygonSet& b) {
  if (a.contours.size() != b.contours.size()) return false;
  for (std::size_t i = 0; i < a.contours.size(); ++i) {
    const auto& ca = a.contours[i];
    const auto& cb = b.contours[i];
    if (ca.hole != cb.hole || ca.pts.size() != cb.pts.size()) return false;
    for (std::size_t j = 0; j < ca.pts.size(); ++j)
      if (ca.pts[j].x != cb.pts[j].x || ca.pts[j].y != cb.pts[j].y)
        return false;
  }
  return true;
}

template <typename Fn>
ErrorCode thrown_code(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.code();
  } catch (...) {
    ADD_FAILURE() << "threw something other than psclip::Error";
    return ErrorCode::kTaskFailure;
  }
  ADD_FAILURE() << "expected an Error, none thrown";
  return ErrorCode::kTaskFailure;
}

/// Trace sink that parks the FIRST alg2.slab task it sees on a latch.
/// entered() becomes ready once the task is parked; release() lets it run.
class BlockOneSlabSink final : public obs::TraceSink {
 public:
  obs::SpanId begin_span(const char* name, obs::Cat,
                         obs::SpanId) override {
    if (std::strcmp(name, "alg2.slab") == 0 &&
        !tripped_.exchange(true, std::memory_order_acq_rel)) {
      entered_.set_value();
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return released_; });
    }
    return obs::SpanId{next_.fetch_add(1, std::memory_order_relaxed)};
  }
  void end_span(obs::SpanId) override {}
  void span_arg(obs::SpanId, const char*, std::int64_t) override {}
  void add_counter(const char*, std::int64_t) override {}
  void observe(const char*, double) override {}

  [[nodiscard]] std::future<void> entered() { return entered_.get_future(); }
  void release() {
    {
      std::lock_guard lk(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::atomic<bool> tripped_{false};
  std::atomic<std::uint64_t> next_{1};
  std::promise<void> entered_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

struct Fixture {
  par::ThreadPool pool{4};
  PolygonSet big_subject, big_clip;    // enough slabs to park one and go on
  PolygonSet small_subject, small_clip;
  PolygonSet big_ref, small_ref;

  Fixture() {
    const auto big = data::synthetic_pair(61, 600);
    big_subject = big.subject;
    big_clip = big.clip;
    const auto small = data::synthetic_pair(7, 40);
    small_subject = small.subject;
    small_clip = small.clip;
    ClipOptions copts;
    copts.engine = Engine::kSlab;
    copts.pool = &pool;
    big_ref = clip(big_subject, big_clip, geom::BoolOp::kUnion, copts);
    small_ref = clip(small_subject, small_clip, geom::BoolOp::kUnion, copts);
  }

  [[nodiscard]] ClipRequest big_request(obs::TraceSink* sink = nullptr) const {
    ClipRequest r;
    r.subject = big_subject;
    r.clip = big_clip;
    r.op = geom::BoolOp::kUnion;
    r.engine = Engine::kSlab;
    r.trace_sink = sink;
    return r;
  }
  [[nodiscard]] ClipRequest small_request() const {
    ClipRequest r;
    r.subject = small_subject;
    r.clip = small_clip;
    r.op = geom::BoolOp::kUnion;
    r.engine = Engine::kSlab;
    return r;
  }
};

Fixture& fx() {
  static Fixture f;
  return f;
}

TEST(Fairness, SmallRequestFinishesWhileLargeRequestOccupiesTheService) {
  auto& f = fx();
  ClipService service(f.pool, {});

  BlockOneSlabSink sink;
  auto entered = sink.entered();
  ClipResult big_res;
  std::thread big_client(
      [&] { big_res = service.submit(f.big_request(&sink)); });
  // The large request now provably holds a pool worker hostage.
  entered.wait();

  // The small request must run to completion on the remaining capacity —
  // work-stealing interleaves its slab tasks with the parked request's —
  // within a deadline generous for sanitizer builds yet far below "after
  // the big request" (which never finishes until released below).
  ClipRequest small = f.small_request();
  small.cancel = par::CancelToken::with_deadline(par::Deadline::in_ms(30'000));
  const ClipResult small_res = service.submit(small);
  EXPECT_TRUE(bit_identical(small_res.output, f.small_ref));
  EXPECT_FALSE(small_res.partial.partial);

  sink.release();
  big_client.join();
  EXPECT_TRUE(bit_identical(big_res.output, f.big_ref))
      << "parking a slab mid-run must not change the large request's bytes";
  EXPECT_EQ(service.completed(), 2u);
  EXPECT_EQ(service.failed(), 0u);
}

TEST(Fairness, PreTrippedTokensFailFastWithPreciseCodesAndFreeTheirSlots) {
  auto& f = fx();
  ServiceOptions opts;
  opts.max_in_flight = 1;  // a leaked slot would wedge the follow-up submit
  opts.max_queued = 1;
  ClipService service(f.pool, opts);

  ClipRequest cancelled = f.small_request();
  cancelled.cancel = par::CancelToken::make();
  cancelled.cancel.cancel();
  EXPECT_EQ(thrown_code([&] { service.submit(cancelled); }),
            ErrorCode::kCancelled);

  ClipRequest expired = f.small_request();
  expired.cancel = par::CancelToken::with_deadline(
      par::Deadline(par::Deadline::Clock::now()));
  EXPECT_EQ(thrown_code([&] { service.submit(expired); }),
            ErrorCode::kDeadlineExceeded);

  EXPECT_EQ(service.failed(), 2u);
  EXPECT_EQ(service.in_flight(), 0u) << "failed requests leaked gate slots";
  const ClipResult ok = service.submit(f.small_request());
  EXPECT_TRUE(bit_identical(ok.output, f.small_ref));
}

TEST(Fairness, AdmissionOverflowRejectsImmediatelyInsteadOfHanging) {
  auto& f = fx();
  ServiceOptions opts;
  opts.max_in_flight = 1;
  opts.max_queued = 0;  // no waiting line at all
  ClipService service(f.pool, opts);

  BlockOneSlabSink sink;
  auto entered = sink.entered();
  ClipResult big_res;
  std::thread big_client(
      [&] { big_res = service.submit(f.big_request(&sink)); });
  entered.wait();

  // Capacity is genuinely exhausted and no queueing is allowed: the
  // overload answer is a synchronous kResource, never a hang.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(thrown_code([&] { service.submit(f.small_request()); }),
            ErrorCode::kResource);
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 10) << "rejection must not wait for the slot";
  EXPECT_EQ(service.rejected(), 1u);

  sink.release();
  big_client.join();
  EXPECT_TRUE(bit_identical(big_res.output, f.big_ref));
  // With the slot free again the same request is admitted.
  EXPECT_TRUE(
      bit_identical(service.submit(f.small_request()).output, f.small_ref));
}

TEST(Fairness, DeadlineWhileWaitingAtAdmissionSurfacesAsDeadlineNotResource) {
  auto& f = fx();
  ServiceOptions opts;
  opts.max_in_flight = 1;
  opts.max_queued = 2;  // a waiting line exists, so this request queues
  ClipService service(f.pool, opts);

  BlockOneSlabSink sink;
  auto entered = sink.entered();
  ClipResult big_res;
  std::thread big_client(
      [&] { big_res = service.submit(f.big_request(&sink)); });
  entered.wait();

  ClipRequest starved = f.small_request();
  starved.cancel =
      par::CancelToken::with_deadline(par::Deadline::in_ms(100));
  // The slot never frees while the sink holds the big request, so the
  // queued request's own governance must cut the wait with the precise
  // code — queueing does not suspend a request's deadline.
  EXPECT_EQ(thrown_code([&] { service.submit(starved); }),
            ErrorCode::kDeadlineExceeded);
  EXPECT_EQ(service.in_flight(), 1u) << "only the big request holds a slot";

  sink.release();
  big_client.join();
  EXPECT_TRUE(bit_identical(big_res.output, f.big_ref));
}

TEST(Fairness, AsyncBackpressureRejectsTheOverflowingSubmission) {
  auto& f = fx();
  ServiceOptions opts;
  opts.max_in_flight = 1;
  opts.max_queued = 1;
  ClipService service(f.pool, opts);

  BlockOneSlabSink sink;
  auto entered = sink.entered();
  std::future<ClipResult> big_fut = service.submit_async(f.big_request(&sink));
  entered.wait();  // dispatcher is executing the big request; queue empty

  std::future<ClipResult> queued_fut =
      service.submit_async(f.small_request());  // fills the waiting line
  EXPECT_EQ(thrown_code([&] { service.submit_async(f.small_request()); }),
            ErrorCode::kResource)
      << "the submission past the waiting line must be rejected "
         "synchronously, not parked in an unbounded queue";
  EXPECT_EQ(service.rejected(), 1u);

  sink.release();
  EXPECT_TRUE(bit_identical(big_fut.get().output, f.big_ref));
  EXPECT_TRUE(bit_identical(queued_fut.get().output, f.small_ref))
      << "the admitted queued request must still run after the rejection";
}

TEST(Fairness, CancellingAQueuedRequestFreesItsTicket) {
  auto& f = fx();
  ServiceOptions opts;
  opts.max_in_flight = 1;
  opts.max_queued = 4;
  ClipService service(f.pool, opts);

  BlockOneSlabSink sink;
  auto entered = sink.entered();
  ClipResult big_res;
  std::thread big_client(
      [&] { big_res = service.submit(f.big_request(&sink)); });
  entered.wait();

  ClipRequest waiting = f.small_request();
  waiting.cancel = par::CancelToken::make();
  std::promise<ErrorCode> code_out;
  std::thread waiter([&] {
    code_out.set_value(thrown_code([&] { service.submit(waiting); }));
  });
  // Cancel while the request sits in the admission queue; it must leave
  // promptly with kCancelled even though the slot never frees.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  waiting.cancel.cancel();
  EXPECT_EQ(code_out.get_future().get(), ErrorCode::kCancelled);
  waiter.join();

  sink.release();
  big_client.join();
  EXPECT_TRUE(bit_identical(big_res.output, f.big_ref));
  // The abandoned ticket must not block later admissions.
  EXPECT_TRUE(
      bit_identical(service.submit(f.small_request()).output, f.small_ref));
}

}  // namespace
}  // namespace psclip
