// Cross-request determinism battery for svc::ClipService (DESIGN.md §12).
//
// The service's contract is byte-identity: whatever interleaving the
// admission gate and the pool's work stealing produce, every result must
// equal the serial psclip::clip call a direct caller would have made with
// the same inputs, engine and pool. The battery runs the full 216-case
// fuzz corpus through the service from several client threads at once, in
// per-thread randomized order, with the prepared-contour cache on and off,
// and compares every output bit for bit against references computed up
// front on a single thread.

#include "svc/clip_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <future>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "fuzz_cases.hpp"
#include "mt/multiset.hpp"
#include "parallel/thread_pool.hpp"
#include "psclip.hpp"

namespace psclip {
namespace {

using fuzz::FuzzCase;
using fuzz::Inputs;
using geom::PolygonSet;
using svc::ClipRequest;
using svc::ClipResult;
using svc::ClipService;
using svc::ServiceOptions;

bool bit_identical(const PolygonSet& a, const PolygonSet& b) {
  if (a.contours.size() != b.contours.size()) return false;
  for (std::size_t i = 0; i < a.contours.size(); ++i) {
    const auto& ca = a.contours[i];
    const auto& cb = b.contours[i];
    if (ca.hole != cb.hole || ca.pts.size() != cb.pts.size()) return false;
    for (std::size_t j = 0; j < ca.pts.size(); ++j)
      if (ca.pts[j].x != cb.pts[j].x || ca.pts[j].y != cb.pts[j].y)
        return false;
  }
  return true;
}

/// Corpus plus serial references, computed once. References force the slab
/// engine (the only engine the cache and the slab interleaving touch) on
/// the same shared pool the service runs on — slab decomposition derives
/// from pool size, so service results must reproduce these bytes exactly.
struct Corpus {
  par::ThreadPool pool{4};
  std::vector<FuzzCase> cases = fuzz::make_cases();
  std::vector<Inputs> inputs;
  std::vector<PolygonSet> refs;

  Corpus() {
    inputs.reserve(cases.size());
    refs.reserve(cases.size());
    for (const FuzzCase& c : cases) {
      inputs.push_back(fuzz::make_inputs(c));
      ClipOptions copts;
      copts.engine = Engine::kSlab;
      copts.pool = &pool;
      refs.push_back(clip(inputs.back().a, inputs.back().b, c.op, copts));
    }
  }
};

Corpus& corpus() {
  static Corpus c;
  return c;
}

ClipRequest request_for(const Corpus& c, std::size_t i) {
  ClipRequest req;
  req.subject = c.inputs[i].a;
  req.clip = c.inputs[i].b;
  req.op = c.cases[i].op;
  req.engine = Engine::kSlab;
  return req;
}

/// Drive the whole corpus through `service` from `clients` threads, each
/// submitting every case in its own seeded shuffle, and count mismatches.
void run_battery(ClipService& service, int clients, std::uint64_t seed) {
  const Corpus& c = corpus();
  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::size_t> order(c.cases.size());
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::mt19937_64 rng(seed + static_cast<std::uint64_t>(t));
      std::shuffle(order.begin(), order.end(), rng);
      for (const std::size_t i : order) {
        try {
          const ClipResult res = service.submit(request_for(c, i));
          if (!bit_identical(res.output, c.refs[i])) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
            ADD_FAILURE() << "service result diverged from the serial "
                             "reference: "
                          << c.cases[i].repro();
          }
          if (res.partial.partial)
            errors.fetch_add(1, std::memory_order_relaxed);
        } catch (const Error& e) {
          errors.fetch_add(1, std::memory_order_relaxed);
          ADD_FAILURE() << "ungoverned request failed (" << e.what()
                        << "): " << c.cases[i].repro();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(errors.load(), 0);
}

TEST(ServiceBattery, ConcurrentCorpusIsByteIdenticalWithCacheOn) {
  Corpus& c = corpus();
  ServiceOptions opts;
  opts.enable_cache = true;
  ClipService service(c.pool, opts);
  constexpr int kClients = 4;
  run_battery(service, kClients, /*seed=*/424200);
  EXPECT_EQ(service.completed(),
            static_cast<std::uint64_t>(kClients) * c.cases.size());
  EXPECT_EQ(service.failed(), 0u);
  EXPECT_EQ(service.rejected(), 0u);
  ASSERT_NE(service.cache(), nullptr);
  // Four clients replaying one corpus: reuse must actually happen.
  EXPECT_GT(service.cache()->hits(), 0u);
}

TEST(ServiceBattery, ConcurrentCorpusIsByteIdenticalWithCacheOff) {
  Corpus& c = corpus();
  ServiceOptions opts;
  opts.enable_cache = false;
  ClipService service(c.pool, opts);
  EXPECT_EQ(service.cache(), nullptr);
  run_battery(service, /*clients=*/2, /*seed=*/17);
}

TEST(ServiceBattery, AsyncFuturesMatchTheSameReferences) {
  Corpus& c = corpus();
  ServiceOptions opts;
  opts.max_queued = 256;  // hold the whole burst without backpressure
  ClipService service(c.pool, opts);
  constexpr std::size_t kBurst = 48;
  std::vector<std::future<ClipResult>> futs;
  futs.reserve(kBurst);
  for (std::size_t i = 0; i < kBurst; ++i)
    futs.push_back(service.submit_async(request_for(c, i * 4)));
  for (std::size_t i = 0; i < kBurst; ++i) {
    const ClipResult res = futs[i].get();
    EXPECT_TRUE(bit_identical(res.output, c.refs[i * 4]))
        << c.cases[i * 4].repro();
  }
  EXPECT_EQ(service.completed(), kBurst);
}

TEST(ServiceBattery, MixedSyncAndAsyncClientsInterleaveSafely) {
  Corpus& c = corpus();
  ClipService service(c.pool, {});
  std::atomic<int> failures{0};
  std::thread sync_client([&] {
    for (std::size_t i = 0; i < c.cases.size(); i += 3) {
      const ClipResult res = service.submit(request_for(c, i));
      if (!bit_identical(res.output, c.refs[i]))
        failures.fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 1; i < c.cases.size(); i += 9) {
    auto fut = service.submit_async(request_for(c, i));
    if (!bit_identical(fut.get().output, c.refs[i]))
      failures.fetch_add(1, std::memory_order_relaxed);
  }
  sync_client.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ServiceBattery, BatchSharesOnePreparePassAcrossRequests) {
  Corpus& c = corpus();
  ServiceOptions opts;
  opts.enable_cache = true;
  ClipService service(c.pool, opts);

  // Many subjects against one shared clip layer: the batch contract is
  // that the common layer is prepared once and reused by every pair.
  constexpr std::size_t kPairs = 6;
  const PolygonSet& shared_clip = c.inputs[0].b;
  std::vector<ClipRequest> batch;
  std::vector<PolygonSet> want;
  for (std::size_t i = 0; i < kPairs; ++i) {
    ClipRequest req;
    req.subject = c.inputs[i * 7].a;
    req.clip = shared_clip;
    req.op = geom::BoolOp::kIntersection;
    req.engine = Engine::kSlab;
    batch.push_back(req);
    ClipOptions copts;
    copts.engine = Engine::kSlab;
    copts.pool = &c.pool;
    want.push_back(
        clip(req.subject, req.clip, req.op, copts));
  }

  const std::vector<ClipResult> got = service.submit_batch(batch);
  ASSERT_EQ(got.size(), kPairs);
  for (std::size_t i = 0; i < kPairs; ++i)
    EXPECT_TRUE(bit_identical(got[i].output, want[i])) << "pair " << i;

  // The shared clip layer misses once per contour and hits on every later
  // pair: at least (kPairs - 1) × its contour count hits.
  ASSERT_NE(service.cache(), nullptr);
  EXPECT_GE(service.cache()->hits(),
            (kPairs - 1) * shared_clip.num_contours());
}

TEST(ServiceBattery, BatchWithCacheOffStillSharesWithinTheBatch) {
  Corpus& c = corpus();
  ServiceOptions opts;
  opts.enable_cache = false;
  ClipService service(c.pool, opts);
  std::vector<ClipRequest> batch;
  for (std::size_t i = 0; i < 4; ++i) batch.push_back(request_for(c, i * 11));
  const std::vector<ClipResult> got = service.submit_batch(batch);
  ASSERT_EQ(got.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_TRUE(bit_identical(got[i].output, c.refs[i * 11])) << "pair " << i;
}

TEST(ServiceBattery, MultisetRequestsMatchTheDirectEntryPoint) {
  Corpus& c = corpus();
  ClipService service(c.pool, {});
  for (const std::size_t i : {5u, 40u, 111u}) {
    const PolygonSet want = mt::multiset_clip(c.inputs[i].a, c.inputs[i].b,
                                              c.cases[i].op, c.pool);
    ClipRequest req = request_for(c, i);
    req.multiset = true;
    const ClipResult res = service.submit(req);
    EXPECT_TRUE(bit_identical(res.output, want)) << c.cases[i].repro();
  }
}

TEST(ServiceBattery, AutoEngineRequestsMatchTheFacade) {
  // Small corpus inputs resolve kAuto to the sequential clipper on both
  // sides; the service must not second-guess the shared resolution.
  Corpus& c = corpus();
  ClipService service(c.pool, {});
  for (const std::size_t i : {0u, 60u, 190u}) {
    ClipOptions copts;
    copts.pool = &c.pool;
    const PolygonSet want =
        clip(c.inputs[i].a, c.inputs[i].b, c.cases[i].op, copts);
    ClipRequest req = request_for(c, i);
    req.engine = Engine::kAuto;
    EXPECT_TRUE(bit_identical(service.submit(req).output, want))
        << c.cases[i].repro();
  }
}

}  // namespace
}  // namespace psclip
