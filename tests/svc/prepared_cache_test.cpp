#include "svc/prepared_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "geom/polygon.hpp"
#include "obs/recorder.hpp"
#include "parallel/cancel.hpp"
#include "seq/bounds.hpp"

namespace psclip {
namespace {

using geom::Contour;
using geom::Point;
using svc::PreparedCache;
using svc::PreparedCacheConfig;

Contour square(double x0, double y0, double side) {
  Contour c;
  c.pts = {{x0, y0}, {x0 + side, y0}, {x0 + side, y0 + side}, {x0, y0 + side}};
  return c;
}

/// n-gon ring: distinct vertex counts give distinct entry costs.
Contour ring(std::size_t n, double cx, double cy, double r) {
  Contour c;
  c.pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = 2.0 * 3.141592653589793 * static_cast<double>(i) /
                     static_cast<double>(n);
    c.pts.push_back({cx + r * std::cos(t), cy + r * std::sin(t)});
  }
  return c;
}

bool same_prepared(const seq::PreparedContour& a,
                   const seq::PreparedContour& b) {
  if (a.pts.pts.size() != b.pts.pts.size() || a.ys != b.ys ||
      a.finite != b.finite || a.bt.edges.size() != b.bt.edges.size() ||
      a.bt.minima.size() != b.bt.minima.size())
    return false;
  return a.pts.pts.empty() ||
         std::memcmp(a.pts.pts.data(), b.pts.pts.data(),
                     a.pts.pts.size() * sizeof(Point)) == 0;
}

TEST(ContourDigest, StableAndDiscriminating) {
  const Contour a = square(0, 0, 2);
  EXPECT_EQ(seq::contour_digest(a, false), seq::contour_digest(a, false));
  // is_clip is part of the key: subject and clip prepares differ.
  EXPECT_NE(seq::contour_digest(a, false), seq::contour_digest(a, true));
  // Any coordinate change changes the digest.
  Contour b = a;
  b.pts[2].x += 1e-9;
  EXPECT_NE(seq::contour_digest(a, false), seq::contour_digest(b, false));
  // Bit patterns, not values: 0.0 and -0.0 are distinct content.
  Contour z1 = square(0, 0, 2), z2 = z1;
  z2.pts[0].x = -0.0;
  EXPECT_NE(seq::contour_digest(z1, false), seq::contour_digest(z2, false));
}

TEST(PreparedCache, HitMissAccountingAndFragmentSharing) {
  PreparedCache cache;
  const Contour a = square(0, 0, 2);

  const auto first = cache.prepared(a, false);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GT(cache.resident_bytes(), 0u);

  const auto second = cache.prepared(a, false);
  EXPECT_EQ(second.get(), first.get()) << "hit must share the fragment";
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // Same bytes prepared as clip is a different key (different bound table).
  const auto as_clip = cache.prepared(a, true);
  ASSERT_NE(as_clip, nullptr);
  EXPECT_NE(as_clip.get(), first.get());
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PreparedCache, ValueMatchesDirectPrepare) {
  PreparedCache cache;
  for (const bool is_clip : {false, true}) {
    const Contour c = ring(9, 1.5, -2.0, 3.0);
    seq::PreparedContour want;
    ASSERT_TRUE(seq::prepare_contour(c, is_clip, want));
    const auto got = cache.prepared(c, is_clip);
    ASSERT_NE(got, nullptr);
    EXPECT_TRUE(same_prepared(*got, want)) << "is_clip=" << is_clip;
  }
}

TEST(PreparedCache, DegenerateContoursCacheTheNegativeResult) {
  PreparedCache cache;
  Contour bad;
  bad.pts = {{0, 0}, {1, 1}};  // < 3 vertices: prepare_contour returns false
  EXPECT_EQ(cache.prepared(bad, false), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.prepared(bad, false), nullptr);
  EXPECT_EQ(cache.hits(), 1u) << "the negative result must be cached too";
}

TEST(PreparedCache, EvictsLeastRecentlyUsedAtTheByteLimit) {
  // Calibrate: same-shape squares cost the same per entry.
  std::uint64_t per_entry = 0;
  {
    PreparedCache probe;
    (void)probe.prepared(square(0, 0, 1), false);
    per_entry = probe.resident_bytes();
    ASSERT_GT(per_entry, 0u);
  }

  PreparedCacheConfig cfg;
  cfg.byte_limit = 2 * per_entry + per_entry / 2;  // fits exactly two
  PreparedCache cache(cfg);
  const Contour a = square(0, 0, 1), b = square(10, 0, 1), c = square(20, 0, 1);

  (void)cache.prepared(a, false);
  (void)cache.prepared(b, false);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);

  (void)cache.prepared(a, false);  // touch: A becomes MRU, B is now LRU
  (void)cache.prepared(c, false);  // insert: evicts B
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_LE(cache.resident_bytes(), cfg.byte_limit);

  const std::uint64_t misses_before = cache.misses();
  (void)cache.prepared(a, false);
  (void)cache.prepared(c, false);
  EXPECT_EQ(cache.misses(), misses_before) << "A and C must still be resident";
  (void)cache.prepared(b, false);
  EXPECT_EQ(cache.misses(), misses_before + 1) << "B was the evicted entry";
}

TEST(PreparedCache, BudgetTighterThanLimitEvictsBeforeBlowing) {
  std::uint64_t per_entry = 0;
  {
    PreparedCache probe;
    (void)probe.prepared(square(0, 0, 1), false);
    per_entry = probe.resident_bytes();
  }

  PreparedCacheConfig cfg;
  cfg.byte_limit = 64ull << 20;  // cache's own limit is generous...
  cfg.budget = std::make_shared<par::ResourceBudget>(2 * per_entry +
                                                     per_entry / 2);
  PreparedCache cache(cfg);  // ...the external budget is the binding one

  for (int i = 0; i < 6; ++i)
    ASSERT_NE(cache.prepared(square(10.0 * i, 0, 1), false), nullptr);

  EXPECT_GE(cache.evictions(), 4u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cfg.budget->blown())
      << "a dedicated cache budget must be held below the trip line by "
         "eviction, never blown";
  EXPECT_EQ(cfg.budget->used(), cache.resident_bytes())
      << "budget charges must mirror residency exactly";
  EXPECT_LE(cfg.budget->peak(), cfg.budget->limit());

  cache.clear();
  EXPECT_EQ(cache.resident_bytes(), 0u);
  EXPECT_EQ(cfg.budget->used(), 0u) << "clear() must release every charge";
}

TEST(PreparedCache, EntryLargerThanBudgetBypassesInsteadOfErroring) {
  PreparedCacheConfig cfg;
  cfg.budget = std::make_shared<par::ResourceBudget>(64);  // nothing fits
  PreparedCache cache(cfg);

  const Contour c = ring(12, 0, 0, 5);
  seq::PreparedContour want;
  ASSERT_TRUE(seq::prepare_contour(c, false, want));
  const auto got = cache.prepared(c, false);
  ASSERT_NE(got, nullptr) << "bypass still serves the prepared fragment";
  EXPECT_TRUE(same_prepared(*got, want));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_GE(cache.bypasses(), 1u);
  EXPECT_FALSE(cfg.budget->blown())
      << "an unfittable entry is a bypass, not a governance trip";
  EXPECT_EQ(cfg.budget->used(), 0u);
}

TEST(PreparedCache, ZeroByteLimitDisablesResidency) {
  PreparedCacheConfig cfg;
  cfg.byte_limit = 0;
  PreparedCache cache(cfg);
  const Contour c = square(0, 0, 3);
  ASSERT_NE(cache.prepared(c, false), nullptr);
  ASSERT_NE(cache.prepared(c, false), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PreparedCache, DigestCollisionDegradesToMissNeverWrongGeometry) {
  PreparedCacheConfig cfg;
  // Force every contour onto one digest: the byte comparison alone must
  // keep distinct contours apart.
  cfg.digest_fn = [](const Contour&, bool) -> std::uint64_t { return 42; };
  PreparedCache cache(cfg);

  const Contour a = square(0, 0, 2), b = ring(7, 5, 5, 2);
  seq::PreparedContour want_a, want_b;
  ASSERT_TRUE(seq::prepare_contour(a, false, want_a));
  ASSERT_TRUE(seq::prepare_contour(b, false, want_b));

  const auto got_a = cache.prepared(a, false);
  const auto got_b = cache.prepared(b, false);  // same digest, other bytes
  ASSERT_NE(got_a, nullptr);
  ASSERT_NE(got_b, nullptr);
  EXPECT_EQ(cache.misses(), 2u) << "equal digest + unequal bytes is a miss";
  EXPECT_GE(cache.collisions(), 1u);
  EXPECT_TRUE(same_prepared(*got_a, want_a));
  EXPECT_TRUE(same_prepared(*got_b, want_b));

  // Both entries coexist under the shared digest and hit independently.
  EXPECT_EQ(cache.prepared(a, false).get(), got_a.get());
  EXPECT_EQ(cache.prepared(b, false).get(), got_b.get());
  EXPECT_EQ(cache.hits(), 2u);
}

TEST(PreparedCache, CountersFlowIntoTheTraceSink) {
  obs::TraceRecorder rec;
  PreparedCacheConfig cfg;
  cfg.sink = &rec;
  PreparedCache cache(cfg);
  const Contour c = square(0, 0, 1);
  (void)cache.prepared(c, false);
  (void)cache.prepared(c, false);
  const obs::MetricsSnapshot snap = rec.metrics().snapshot();
  std::int64_t hits = 0, misses = 0, resident = -1;
  for (const auto& [name, v] : snap.counters) {
    if (name == "svc.cache.hits") hits = v;
    if (name == "svc.cache.misses") misses = v;
  }
  for (const auto& [name, v] : snap.gauges)
    if (name == "svc.cache.resident_bytes") resident = v;
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(misses, 1);
  EXPECT_EQ(resident, static_cast<std::int64_t>(cache.resident_bytes()));
}

TEST(PreparedCache, ConcurrentLookupsStayConsistentUnderChurn) {
  constexpr int kThreads = 8;
  constexpr int kIters = 250;
  constexpr std::size_t kContours = 24;

  std::vector<Contour> contours;
  std::vector<seq::PreparedContour> want(kContours);
  for (std::size_t i = 0; i < kContours; ++i) {
    contours.push_back(ring(5 + i, static_cast<double>(i), 0.0, 2.5));
    ASSERT_TRUE(seq::prepare_contour(contours[i], (i % 2) != 0, want[i]));
  }

  // Size the cache to hold only a handful of entries so insert, hit and
  // eviction all race constantly.
  std::uint64_t per_entry = 0;
  {
    PreparedCache probe;
    (void)probe.prepared(contours[0], false);
    per_entry = probe.resident_bytes();
  }
  PreparedCacheConfig cfg;
  cfg.byte_limit = 4 * per_entry;
  cfg.budget = std::make_shared<par::ResourceBudget>(6 * per_entry);
  PreparedCache cache(cfg);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t rng = 0x9e3779b97f4a7c15ull * (t + 1);
      for (int it = 0; it < kIters; ++it) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        const std::size_t i = rng % kContours;
        const auto got = cache.prepared(contours[i], (i % 2) != 0);
        if (!got || !same_prepared(*got, want[i]))
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  // Every lookup resolved to exactly one of hit/miss.
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_GT(cache.evictions(), 0u) << "the limit was sized to force churn";
  EXPECT_LE(cache.resident_bytes(), cfg.byte_limit);
  EXPECT_FALSE(cfg.budget->blown());
  EXPECT_EQ(cfg.budget->used(), cache.resident_bytes());
}

}  // namespace
}  // namespace psclip
