#pragma once

// Shared helpers for the psclip test suite: deterministic random polygon
// construction (mirroring the paper's synthetic workloads) and the area /
// point-classification referees used by the differential tests.

#include <cmath>
#include <random>
#include <vector>

#include "geom/area_oracle.hpp"
#include "geom/point.hpp"
#include "geom/point_in_polygon.hpp"
#include "geom/polygon.hpp"

namespace psclip::test {

/// Star-shaped simple polygon with jittered radii/angles; optionally
/// shuffled into a self-intersecting one.
inline geom::PolygonSet random_polygon(std::uint64_t seed, int n, double cx,
                                       double cy, double r,
                                       bool self_intersecting = false) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.3, 1.0);
  std::uniform_real_distribution<double> ang(0.0, 0.9 * 2.0 * M_PI / n);
  std::vector<geom::Point> ring;
  ring.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n + ang(rng);
    const double rad = r * u(rng);
    ring.push_back({cx + rad * std::cos(a), cy + rad * std::sin(a)});
  }
  if (self_intersecting) {
    std::uniform_int_distribution<std::size_t> pick(0, ring.size() - 1);
    for (int s = 0; s < n / 4 + 1; ++s)
      std::swap(ring[pick(rng)], ring[pick(rng)]);
  }
  geom::PolygonSet p;
  p.add(std::move(ring));
  return p;
}

/// Relative-tolerance area agreement used by all differential tests.
inline bool areas_match(double got, double want, double tol = 1e-6) {
  return std::fabs(got - want) <= tol * (1.0 + std::fabs(want));
}

/// Monte-Carlo point-classification agreement between a clipper result and
/// the definition `in_result(pip(A), pip(B), op)`. Returns the fraction of
/// agreeing samples in [0, 1].
inline double pip_agreement(const geom::PolygonSet& a,
                            const geom::PolygonSet& b, geom::BoolOp op,
                            const geom::PolygonSet& result, int samples,
                            std::uint64_t seed) {
  geom::BBox box = geom::bounds(a);
  box.expand(geom::bounds(b));
  if (box.empty()) return 1.0;
  const double pad = 0.05 * std::max(box.width(), box.height());
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> ux(box.xmin - pad, box.xmax + pad);
  std::uniform_real_distribution<double> uy(box.ymin - pad, box.ymax + pad);
  int agree = 0;
  for (int i = 0; i < samples; ++i) {
    const geom::Point p{ux(rng), uy(rng)};
    const bool want = geom::in_result(geom::point_in_polygon(p, a),
                                      geom::point_in_polygon(p, b), op);
    if (want == geom::point_in_polygon(p, result)) ++agree;
  }
  return static_cast<double>(agree) / samples;
}

}  // namespace psclip::test
