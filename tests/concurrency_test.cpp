// Concurrency: the clippers keep no mutable global state, so independent
// clips may run from many threads at once — including the parallel
// algorithms sharing one pool.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/algorithm1.hpp"
#include "geom/area_oracle.hpp"
#include "mt/algorithm2.hpp"
#include "seq/martinez.hpp"
#include "seq/vatti.hpp"
#include "test_support.hpp"

namespace psclip {
namespace {

using geom::BoolOp;
using geom::PolygonSet;

TEST(Concurrency, SequentialClippersAreReentrant) {
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([t, &failures] {
      for (int i = 0; i < 12; ++i) {
        const auto seed = static_cast<std::uint64_t>(t * 100 + i);
        const PolygonSet a =
            test::random_polygon(seed * 2 + 1, 12 + i, 0, 0, 10, i % 3 == 0);
        const PolygonSet b =
            test::random_polygon(seed * 2 + 2, 10 + i, 1, 1, 8, false);
        const BoolOp op = geom::kAllOps[i % 4];
        const double want = geom::boolean_area_oracle(a, b, op);
        if (!test::areas_match(geom::signed_area(seq::vatti_clip(a, b, op)),
                               want))
          ++failures;
        if (!test::areas_match(
                geom::signed_area(seq::martinez_clip(a, b, op)), want))
          ++failures;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Concurrency, ParallelAlgorithmsShareOnePool) {
  par::ThreadPool pool(4);
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([t, &pool, &failures] {
      for (int i = 0; i < 6; ++i) {
        const auto seed = static_cast<std::uint64_t>(9000 + t * 50 + i);
        const PolygonSet a =
            test::random_polygon(seed * 2 + 1, 16, 0, 0, 10);
        const PolygonSet b =
            test::random_polygon(seed * 2 + 2, 12, 2, 0, 8);
        const BoolOp op = geom::kAllOps[(t + i) % 4];
        const double want = geom::boolean_area_oracle(a, b, op);
        const double a1 = geom::signed_area(
            core::scanbeam_clip(a, b, op, pool));
        const double a2 =
            geom::signed_area(mt::slab_clip(a, b, op, pool));
        if (!test::areas_match(a1, want) || !test::areas_match(a2, want))
          ++failures;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace psclip
