#include "psclip.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>

#include "test_support.hpp"

namespace psclip {
namespace {

using geom::BoolOp;
using geom::PolygonSet;

TEST(Facade, AllEnginesAgree) {
  const PolygonSet a = test::random_polygon(4001, 20, 0, 0, 10);
  const PolygonSet b = test::random_polygon(4002, 16, 1, 1, 8);
  for (const BoolOp op : geom::kAllOps) {
    const double want = geom::boolean_area_oracle(a, b, op);
    for (const Engine e : {Engine::kAuto, Engine::kVatti, Engine::kMartinez,
                           Engine::kScanbeam, Engine::kSlab}) {
      const double got = geom::signed_area(clip(a, b, op, e));
      EXPECT_TRUE(test::areas_match(got, want, 1e-5))
          << geom::to_string(op) << " engine=" << static_cast<int>(e)
          << " got=" << got << " want=" << want;
    }
  }
}

TEST(Facade, AutoPicksSomethingSaneForEmptyInput) {
  EXPECT_TRUE(clip({}, {}, BoolOp::kUnion).empty());
}

// The kAuto dispatch rule is part of the public contract now that a serving
// layer reproduces results by re-running the facade: the threshold, the
// single-thread fallback, and the pass-through of explicit requests are all
// pinned at compile time.
TEST(Facade, ResolveEnginePinsTheAutoSelectionRule) {
  static_assert(kAutoSlabMinVertices == 20000,
                "moving the kAuto threshold invalidates every cached "
                "reproduction recipe; bump deliberately");
  // Threshold boundary, multi-threaded pool.
  static_assert(resolve_engine(Engine::kAuto, 19999, 8) == Engine::kVatti);
  static_assert(resolve_engine(Engine::kAuto, 20000, 8) == Engine::kSlab);
  static_assert(resolve_engine(Engine::kAuto, 20000, 2) == Engine::kSlab);
  // A 1-thread pool can never run slabs in parallel: sequential fallback
  // regardless of size.
  static_assert(resolve_engine(Engine::kAuto, 20000, 1) == Engine::kVatti);
  static_assert(resolve_engine(Engine::kAuto, std::size_t{1} << 30, 1) ==
                Engine::kVatti);
  static_assert(resolve_engine(Engine::kAuto, 0, 64) == Engine::kVatti);
  // Explicit requests pass through untouched.
  static_assert(resolve_engine(Engine::kVatti, 1 << 30, 64) == Engine::kVatti);
  static_assert(resolve_engine(Engine::kMartinez, 1 << 30, 64) ==
                Engine::kMartinez);
  static_assert(resolve_engine(Engine::kScanbeam, 3, 1) == Engine::kScanbeam);
  static_assert(resolve_engine(Engine::kSlab, 3, 1) == Engine::kSlab);
  // resolve_engine never returns kAuto.
  static_assert(resolve_engine(Engine::kAuto, 5, 4) != Engine::kAuto);
  static_assert(resolve_engine(Engine::kAuto, 1 << 21, 4) != Engine::kAuto);
}

/// Counts alg2.slab spans — the observable signature of the slab engine.
class SlabSpanCounter final : public obs::TraceSink {
 public:
  obs::SpanId begin_span(const char* name, obs::Cat, obs::SpanId) override {
    if (std::strcmp(name, "alg2.slab") == 0)
      slabs_.fetch_add(1, std::memory_order_relaxed);
    return obs::SpanId{next_.fetch_add(1, std::memory_order_relaxed)};
  }
  void end_span(obs::SpanId) override {}
  void span_arg(obs::SpanId, const char*, std::int64_t) override {}
  void add_counter(const char*, std::int64_t) override {}
  void observe(const char*, double) override {}

  [[nodiscard]] int slabs() const { return slabs_.load(); }

 private:
  std::atomic<int> slabs_{0};
  std::atomic<std::uint64_t> next_{1};
};

TEST(Facade, AutoDispatchFollowsResolveEngineEndToEnd) {
  const auto ring = [](std::size_t n, double cx, double r) {
    geom::Contour c;
    c.pts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = 2.0 * 3.141592653589793 * static_cast<double>(i) /
                       static_cast<double>(n);
      c.pts.push_back({cx + r * std::cos(t), r * std::sin(t)});
    }
    PolygonSet p;
    p.add(std::move(c));
    return p;
  };

  par::ThreadPool pool4(4), pool1(1);
  const PolygonSet big_a = ring(10000, 0, 10), big_b = ring(10000, 5, 10);
  const PolygonSet just_under = ring(9999, 0, 10);

  {  // 20000 vertices on a parallel pool: kAuto must run the slab engine.
    SlabSpanCounter sink;
    ClipOptions copts;
    copts.pool = &pool4;
    copts.trace_sink = &sink;
    (void)clip(big_a, big_b, BoolOp::kIntersection, copts);
    EXPECT_GT(sink.slabs(), 0) << "kAuto at the threshold must go parallel";
  }
  {  // Same input, 1-thread pool: sequential fallback, no slab spans.
    SlabSpanCounter sink;
    ClipOptions copts;
    copts.pool = &pool1;
    copts.trace_sink = &sink;
    (void)clip(big_a, big_b, BoolOp::kIntersection, copts);
    EXPECT_EQ(sink.slabs(), 0) << "a 1-thread pool must fall back to Vatti";
  }
  {  // 19999 vertices: one vertex under the threshold stays sequential.
    SlabSpanCounter sink;
    ClipOptions copts;
    copts.pool = &pool4;
    copts.trace_sink = &sink;
    (void)clip(just_under, big_b, BoolOp::kIntersection, copts);
    EXPECT_EQ(sink.slabs(), 0) << "below the threshold kAuto stays serial";
  }
}

TEST(Facade, UmbrellaHeaderExposesEverything) {
  // Spot-check that one symbol from each subsystem is reachable through
  // the single include.
  const PolygonSet sq =
      geom::make_polygon({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_TRUE(geom::point_in_polygon({1, 1}, sq));
  EXPECT_FALSE(geom::to_wkt(sq).empty());
  EXPECT_FALSE(geom::to_geojson(sq).empty());
  EXPECT_EQ(geom::nest_contours(sq).size(), 1u);
  EXPECT_GE(par::default_pool().size(), 1u);
  seq::VattiStats st;
  (void)seq::vatti_clip(sq, sq, BoolOp::kUnion, &st);
}

}  // namespace
}  // namespace psclip
