#include "psclip.hpp"

#include <gtest/gtest.h>

#include "test_support.hpp"

namespace psclip {
namespace {

using geom::BoolOp;
using geom::PolygonSet;

TEST(Facade, AllEnginesAgree) {
  const PolygonSet a = test::random_polygon(4001, 20, 0, 0, 10);
  const PolygonSet b = test::random_polygon(4002, 16, 1, 1, 8);
  for (const BoolOp op : geom::kAllOps) {
    const double want = geom::boolean_area_oracle(a, b, op);
    for (const Engine e : {Engine::kAuto, Engine::kVatti, Engine::kMartinez,
                           Engine::kScanbeam, Engine::kSlab}) {
      const double got = geom::signed_area(clip(a, b, op, e));
      EXPECT_TRUE(test::areas_match(got, want, 1e-5))
          << geom::to_string(op) << " engine=" << static_cast<int>(e)
          << " got=" << got << " want=" << want;
    }
  }
}

TEST(Facade, AutoPicksSomethingSaneForEmptyInput) {
  EXPECT_TRUE(clip({}, {}, BoolOp::kUnion).empty());
}

TEST(Facade, UmbrellaHeaderExposesEverything) {
  // Spot-check that one symbol from each subsystem is reachable through
  // the single include.
  const PolygonSet sq =
      geom::make_polygon({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_TRUE(geom::point_in_polygon({1, 1}, sq));
  EXPECT_FALSE(geom::to_wkt(sq).empty());
  EXPECT_FALSE(geom::to_geojson(sq).empty());
  EXPECT_EQ(geom::nest_contours(sq).size(), 1u);
  EXPECT_GE(par::default_pool().size(), 1u);
  seq::VattiStats st;
  (void)seq::vatti_clip(sq, sq, BoolOp::kUnion, &st);
}

}  // namespace
}  // namespace psclip
