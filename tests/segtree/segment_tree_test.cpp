#include "segtree/segment_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

namespace psclip::segtree {
namespace {

TEST(SegmentTree, ElementaryIntervalsAndLocate) {
  SegmentTree t({0.0, 1.0, 2.0, 5.0});
  EXPECT_EQ(t.num_intervals(), 3u);
  EXPECT_EQ(t.locate(0.5), 0u);
  EXPECT_EQ(t.locate(1.0), 1u);   // intervals are [lo, hi)
  EXPECT_EQ(t.locate(4.99), 2u);
  EXPECT_EQ(t.locate(-3.0), 0u);  // clamped
  EXPECT_EQ(t.locate(99.0), 2u);  // clamped
}

TEST(SegmentTree, InsertAndStabSingle) {
  SegmentTree t({0.0, 1.0, 2.0, 3.0, 4.0});
  t.insert(7, 1, 2);  // covers intervals [1,2] and [2,3]
  EXPECT_EQ(t.stab_count(0), 0);
  EXPECT_EQ(t.stab_count(1), 1);
  EXPECT_EQ(t.stab_count(2), 1);
  EXPECT_EQ(t.stab_count(3), 0);
  std::vector<std::int32_t> out;
  t.stab(1, out);
  EXPECT_EQ(out, std::vector<std::int32_t>{7});
}

TEST(SegmentTree, InsertRangeByValue) {
  SegmentTree t({0.0, 1.0, 2.0, 3.0, 4.0});
  t.insert_range(3, 1.0, 3.0);   // vertex-aligned: intervals 1 and 2
  EXPECT_EQ(t.stab_count(0), 0);
  EXPECT_EQ(t.stab_count(1), 1);
  EXPECT_EQ(t.stab_count(2), 1);
  EXPECT_EQ(t.stab_count(3), 0);
  t.insert_range(4, -10.0, 10.0);  // clipped to the whole domain
  for (std::size_t iv = 0; iv < 4; ++iv) EXPECT_EQ(t.stab_count(iv), iv == 1 || iv == 2 ? 2 : 1);
  t.insert_range(5, 7.0, 9.0);  // outside: ignored
  EXPECT_EQ(t.total_cover_size(), t.total_cover_size());
}

TEST(SegmentTree, DuplicateBreakpointsAreMerged) {
  SegmentTree t({0.0, 1.0, 1.0, 2.0});
  EXPECT_EQ(t.num_intervals(), 2u);
}

TEST(SegmentTree, DegenerateDomains) {
  SegmentTree empty({});
  EXPECT_EQ(empty.num_intervals(), 0u);
  EXPECT_EQ(empty.stab_count(0), 0);
  SegmentTree single({3.0});
  EXPECT_EQ(single.num_intervals(), 0u);
}

TEST(SegmentTree, CoverListsAreLogarithmic) {
  // One item spanning everything lands on O(log m) canonical nodes, and
  // stab_count never walks a cover list (counts only).
  std::vector<double> breaks;
  for (int i = 0; i <= 1024; ++i) breaks.push_back(i);
  SegmentTree t(breaks);
  t.insert(1, 0, 1023);
  EXPECT_EQ(t.total_cover_size(), 1);  // root only
  t.insert(2, 1, 1022);                // worst case: 2 per level
  EXPECT_LE(t.total_cover_size(), 1 + 2 * static_cast<int>(t.height()));
  EXPECT_EQ(t.stab_count(512), 2);
}

class SegmentTreeRandom : public ::testing::TestWithParam<int> {};

TEST_P(SegmentTreeRandom, StabMatchesBruteForce) {
  std::mt19937_64 rng(GetParam() * 7 + 1);
  const int m = 1 + static_cast<int>(rng() % 60);
  std::vector<double> breaks;
  double y = 0;
  for (int i = 0; i <= m; ++i) {
    breaks.push_back(y);
    y += 0.1 + static_cast<double>(rng() % 100) / 50.0;
  }
  const int items = 1 + static_cast<int>(rng() % 100);
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  SegmentTree t(breaks);
  for (int i = 0; i < items; ++i) {
    std::size_t lo = rng() % static_cast<std::size_t>(m);
    std::size_t hi = rng() % static_cast<std::size_t>(m);
    if (lo > hi) std::swap(lo, hi);
    ranges.emplace_back(lo, hi);
    t.insert(i, lo, hi);
  }
  for (std::size_t iv = 0; iv < static_cast<std::size_t>(m); ++iv) {
    std::set<std::int32_t> want;
    for (int i = 0; i < items; ++i)
      if (ranges[static_cast<std::size_t>(i)].first <= iv &&
          iv <= ranges[static_cast<std::size_t>(i)].second)
        want.insert(i);
    std::vector<std::int32_t> got;
    t.stab(iv, got);
    EXPECT_EQ(std::set<std::int32_t>(got.begin(), got.end()), want);
    EXPECT_EQ(t.stab_count(iv), static_cast<std::int64_t>(want.size()));
  }
}

TEST_P(SegmentTreeRandom, ParallelBuildMatchesSequentialInsert) {
  par::ThreadPool pool(4);
  std::mt19937_64 rng(GetParam() * 13 + 5);
  const int m = 2 + static_cast<int>(rng() % 40);
  std::vector<double> breaks;
  for (int i = 0; i <= m; ++i) breaks.push_back(i * 1.5);
  std::vector<std::pair<double, double>> ranges;
  const int items = 1 + static_cast<int>(rng() % 200);
  for (int i = 0; i < items; ++i) {
    double lo = static_cast<double>(rng() % (m + 1)) * 1.5;
    double hi = static_cast<double>(rng() % (m + 1)) * 1.5;
    if (lo > hi) std::swap(lo, hi);
    ranges.emplace_back(lo, hi);
  }
  SegmentTree built = SegmentTree::build(pool, breaks, ranges);
  SegmentTree seq(breaks);
  for (int i = 0; i < items; ++i)
    seq.insert_range(i, ranges[static_cast<std::size_t>(i)].first,
                     ranges[static_cast<std::size_t>(i)].second);
  for (std::size_t iv = 0; iv < built.num_intervals(); ++iv) {
    std::vector<std::int32_t> a, b;
    built.stab(iv, a);
    seq.stab(iv, b);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "interval " << iv;
  }
}

TEST_P(SegmentTreeRandom, StabAllMatchesPerIntervalStab) {
  par::ThreadPool pool(4);
  std::mt19937_64 rng(GetParam() * 37 + 2);
  const int m = 2 + static_cast<int>(rng() % 50);
  std::vector<double> breaks;
  for (int i = 0; i <= m; ++i) breaks.push_back(i);
  SegmentTree t(breaks);
  const int items = static_cast<int>(rng() % 150);
  for (int i = 0; i < items; ++i) {
    std::size_t lo = rng() % static_cast<std::size_t>(m);
    std::size_t hi = rng() % static_cast<std::size_t>(m);
    if (lo > hi) std::swap(lo, hi);
    t.insert(i, lo, hi);
  }
  const auto all = t.stab_all(pool);
  ASSERT_EQ(all.offsets.size(), t.num_intervals() + 1);
  EXPECT_EQ(all.offsets.back(),
            static_cast<std::int64_t>(all.ids.size()));
  for (std::size_t iv = 0; iv < t.num_intervals(); ++iv) {
    std::vector<std::int32_t> want;
    t.stab(iv, want);
    std::vector<std::int32_t> got(
        all.ids.begin() + static_cast<std::ptrdiff_t>(all.offsets[iv]),
        all.ids.begin() + static_cast<std::ptrdiff_t>(all.offsets[iv + 1]));
    std::sort(want.begin(), want.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SegmentTreeRandom, ::testing::Range(0, 12));

}  // namespace
}  // namespace psclip::segtree
