// src/obs tracing + metrics unit tests: span nesting and parent inference,
// cross-thread lineage under the work-stealing scheduler, histogram bucket
// accounting, the null-sink zero-allocation guarantee, and a concurrent
// recording stress that must run clean under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstdio>
#include <new>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "mt/algorithm2.hpp"
#include "mt/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

// Allocation counter for the null-sink test: every global new in this
// binary bumps it, so a region that must not allocate can assert a zero
// delta.
namespace {
std::atomic<std::int64_t> g_allocs{0};
}

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace psclip {
namespace {

using obs::Cat;
using obs::ScopedSpan;
using obs::TraceRecorder;

const TraceRecorder::Span* find_span(const std::vector<TraceRecorder::Span>& v,
                                     const std::string& name) {
  for (const auto& s : v)
    if (name == s.name) return &s;
  return nullptr;
}

TEST(TraceRecorder, NestingAndImplicitParent) {
  TraceRecorder rec;
  {
    ScopedSpan outer(&rec, "outer", Cat::kRequest);
    outer.arg("answer", 42);
    {
      ScopedSpan inner(&rec, "inner", Cat::kPhase);  // parent inferred
      ScopedSpan innermost(&rec, "innermost", Cat::kSlab);
    }
    ScopedSpan sibling(&rec, "sibling", Cat::kPhase);
  }
  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 4u);
  const auto* outer = find_span(spans, "outer");
  const auto* inner = find_span(spans, "inner");
  const auto* innermost = find_span(spans, "innermost");
  const auto* sibling = find_span(spans, "sibling");
  ASSERT_TRUE(outer && inner && innermost && sibling);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(innermost->parent, inner->id);
  EXPECT_EQ(sibling->parent, outer->id);
  EXPECT_EQ(outer->arg("answer"), 42);
  EXPECT_EQ(outer->arg("absent", -7), -7);
  // Time containment: children start no earlier and end no later.
  for (const auto* s : {inner, innermost, sibling}) {
    EXPECT_GE(s->t_start_ns, outer->t_start_ns);
    EXPECT_LE(s->t_end_ns, outer->t_end_ns);
    EXPECT_LE(s->t_start_ns, s->t_end_ns);
  }
  EXPECT_EQ(rec.dropped_spans(), 0u);
}

TEST(TraceRecorder, ExplicitCrossThreadParent) {
  TraceRecorder rec;
  obs::SpanId root_id;
  {
    ScopedSpan root(&rec, "root", Cat::kRequest);
    root_id = root.id();
    std::thread t([&] {
      ScopedSpan child(&rec, "child", Cat::kSlab, root_id);
    });
    t.join();
  }
  const auto spans = rec.spans();
  const auto* root = find_span(spans, "root");
  const auto* child = find_span(spans, "child");
  ASSERT_TRUE(root && child);
  EXPECT_EQ(child->parent, root->id);
  EXPECT_NE(child->tid, root->tid);
}

// End-to-end through Algorithm 2: the recorder must show the documented
// request -> phase -> slab hierarchy with per-slab rung/worker args and
// steal totals on the clip phase, even though slab tasks migrate across
// worker threads.
TEST(TraceRecorder, Alg2HierarchyUnderWorkStealing) {
  const auto pair = data::synthetic_pair(7, 60);
  par::ThreadPool pool(4);
  TraceRecorder rec;
  mt::Alg2Options o;
  o.slabs = 8;
  o.trace_sink = &rec;
  mt::slab_clip(pair.subject, pair.clip, geom::BoolOp::kIntersection, pool, o);
  pool.wait_idle();

  const auto spans = rec.spans();
  const auto* req = find_span(spans, "alg2.slab_clip");
  const auto* clip = find_span(spans, "alg2.clip");
  const auto* merge = find_span(spans, "alg2.merge");
  ASSERT_TRUE(req && clip && merge);
  EXPECT_EQ(req->parent, 0u);
  EXPECT_EQ(clip->parent, req->id);
  EXPECT_EQ(merge->parent, req->id);
  EXPECT_EQ(req->arg("slabs"), 8);
  EXPECT_GE(clip->arg("steals"), 0);

  // Every slab id exactly once, each span a child of the clip phase with
  // its degradation rung recorded (healthy in a fault-free run).
  std::set<std::int64_t> slab_ids;
  for (const auto& s : spans) {
    if (std::string(s.name) != "alg2.slab") continue;
    EXPECT_EQ(s.parent, clip->id);
    EXPECT_EQ(s.arg("rung"), static_cast<std::int64_t>(mt::Rung::kHealthy));
    EXPECT_TRUE(slab_ids.insert(s.arg("slab")).second);
  }
  std::set<std::int64_t> want;
  for (std::int64_t t = 0; t < 8; ++t) want.insert(t);
  EXPECT_EQ(slab_ids, want);

  // Counters and histograms made it into the embedded registry.
  const auto snap = rec.metrics().snapshot();
  bool saw_requests = false, saw_hist = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "alg2.requests") {
      saw_requests = true;
      EXPECT_EQ(value, 1);
    }
  }
  for (const auto& h : snap.histograms)
    if (h.name == "alg2.request_seconds") {
      saw_hist = true;
      EXPECT_EQ(h.count, 1u);
    }
  EXPECT_TRUE(saw_requests);
  EXPECT_TRUE(saw_hist);

  // The Chrome export is well-formed enough for chrome://tracing to load:
  // one complete event per span, with the lineage args present.
  const std::string json = rec.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"alg2.slab_clip\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\""), std::string::npos);
}

TEST(Histogram, BucketAccounting) {
  obs::Histogram h;
  h.observe(1.5e-6);  // bucket 1 (1e-6, 2e-6]
  h.observe(1.5e-6);
  h.observe(3e-3);    // bucket 11 (2e-3, 5e-3]
  h.observe(10.0);    // overflow bucket
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(11), 1u);
  EXPECT_EQ(h.bucket_count(obs::Histogram::kBuckets - 1), 1u);
  EXPECT_NEAR(h.sum_seconds(), 1.5e-6 + 1.5e-6 + 3e-3 + 10.0, 1e-6);
}

TEST(Metrics, SnapshotQuantileAndRenderers) {
  obs::Metrics m;
  m.counter("n").add(3);
  obs::Histogram& h = m.histogram("lat");
  for (int i = 0; i < 9; ++i) h.observe(1.5e-6);
  h.observe(0.3);  // one outlier
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& row = snap.histograms[0];
  EXPECT_EQ(row.count, 10u);
  // Median lands in the (1e-6, 2e-6] bucket; p99 in the outlier's.
  EXPECT_DOUBLE_EQ(row.quantile(0.5), 2e-6);
  EXPECT_DOUBLE_EQ(row.quantile(0.99), 5e-1);
  const std::string text = snap.to_text();
  EXPECT_NE(text.find("n"), std::string::npos);
  EXPECT_NE(text.find("lat"), std::string::npos);
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
}

// The "free when off" contract: with a null sink, a fully-instrumented
// region performs no allocation and no sink call — each site is one branch.
TEST(NullSink, ZeroAllocation) {
  ASSERT_EQ(obs::global_sink(), nullptr);
  const std::int64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    ScopedSpan s(nullptr, "off", Cat::kPhase);
    s.arg("k", i);
    ScopedSpan g(obs::global_sink(), "off2", Cat::kParse);
    g.arg("k", i);
  }
  const std::int64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

// Many threads hammer one recorder (spans with args, counters, histogram
// observations) — must be race-free under TSan, and every event must be
// accounted for afterwards.
TEST(TraceRecorder, ConcurrentStress) {
  TraceRecorder rec;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 2000;
  {
    ScopedSpan root(&rec, "stress", Cat::kRequest);
    const obs::SpanId root_id = root.id();
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&rec, root_id, t] {
        for (int i = 0; i < kSpansPerThread; ++i) {
          ScopedSpan s(&rec, "work", Cat::kSlab, root_id);
          s.arg("thread", t);
          s.arg("i", i);
          rec.add_counter("stress.events", 1);
          rec.observe("stress.seconds", 1e-6 * (i % 50));
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const auto spans = rec.spans();
  std::size_t work = 0;
  std::set<std::uint64_t> ids;
  for (const auto& s : spans) {
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id";
    if (std::string(s.name) == "work") ++work;
  }
  EXPECT_EQ(work, static_cast<std::size_t>(kThreads) * kSpansPerThread);
  const auto snap = rec.metrics().snapshot();
  for (const auto& [name, value] : snap.counters)
    if (name == "stress.events")
      EXPECT_EQ(value, static_cast<std::int64_t>(kThreads) * kSpansPerThread);
  for (const auto& h : snap.histograms)
    if (h.name == "stress.seconds")
      EXPECT_EQ(h.count, static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(rec.dropped_spans(), 0u);
}

TEST(TraceRecorder, WriteChromeTraceFile) {
  TraceRecorder rec;
  { ScopedSpan s(&rec, "only", Cat::kRequest); }
  const std::string path =
      ::testing::TempDir() + "/psclip_trace_test.json";
  ASSERT_TRUE(rec.write_chrome_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(content.find("\"only\""), std::string::npos);
}

}  // namespace
}  // namespace psclip
