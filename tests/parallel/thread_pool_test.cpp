#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "error.hpp"

namespace psclip::par {
namespace {

TEST(ThreadPool, SizeDefaultsToAtLeastOne) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4u);
}

TEST(ThreadPool, ParallelForVisitsEachIndexExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t n : {0u, 1u, 7u, 100u, 4096u, 100001u}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " i=" << i;
  }
}

TEST(ThreadPool, ParallelForHonorsGrain) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(
      1000, [&](std::size_t i) { sum += static_cast<long>(i); },
      /*grain=*/64);
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, ParallelBlocksPartitionContiguously) {
  ThreadPool pool(4);
  const std::size_t n = 1003;
  std::vector<int> owner(n, -1);
  std::atomic<int> blocks_seen{0};
  pool.parallel_blocks(n, [&](unsigned block, std::size_t b, std::size_t e) {
    ++blocks_seen;
    ASSERT_LT(b, e);
    for (std::size_t i = b; i < e; ++i) owner[i] = static_cast<int>(block);
  });
  // Every element covered, and block ids non-decreasing over the range.
  for (std::size_t i = 0; i < n; ++i) ASSERT_GE(owner[i], 0);
  for (std::size_t i = 1; i < n; ++i) ASSERT_GE(owner[i], owner[i - 1]);
  EXPECT_LE(blocks_seen.load(), 4);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [&](std::size_t i) {
                          if (i == 437) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForSingleFailureRethrownUnchanged) {
  ThreadPool pool(4);
  // Exactly one index throws: the original exception must come back as-is,
  // not wrapped in the aggregation error.
  try {
    pool.parallel_for(
        1000,
        [&](std::size_t i) {
          if (i == 437) throw std::runtime_error("boom 437");
        },
        /*grain=*/64);
    FAIL() << "parallel_for must rethrow";
  } catch (const Error&) {
    FAIL() << "single failure must not be wrapped";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 437");
  }
}

TEST(ThreadPool, ParallelForAggregatesConcurrentFailures) {
  ThreadPool pool(4);
  // Every index throws, tiny grain: with 4 drivers racing over 1000
  // chunks, more than one driver fails essentially always. The contract:
  // N>1 concurrent failures fold into one psclip::Error(kTaskFailure)
  // carrying the count and the first message; a single failure comes back
  // unchanged (legal here, just unlikely).
  std::atomic<int> threw{0};
  try {
    pool.parallel_for(
        1000,
        [&](std::size_t i) {
          threw.fetch_add(1, std::memory_order_relaxed);
          throw std::runtime_error("item " + std::to_string(i));
        },
        /*grain=*/1);
    FAIL() << "parallel_for must rethrow";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTaskFailure);
    EXPECT_NE(std::string(e.what()).find("tasks failed; first: item "),
              std::string::npos)
        << e.what();
    EXPECT_GE(threw.load(), 2);
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(threw.load(), 1) << e.what();
  }
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) pool.submit([&done] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  long sum = 0;  // no synchronization needed: must run on calling thread
  pool.parallel_for(100, [&](std::size_t i) { sum += static_cast<long>(i); });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, DefaultPoolIsSingleton) {
  ThreadPool& a = default_pool();
  ThreadPool& b = default_pool();
  EXPECT_EQ(&a, &b);
  std::atomic<int> n{0};
  a.parallel_for(10, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 10);
}

}  // namespace
}  // namespace psclip::par
