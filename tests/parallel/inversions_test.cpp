#include "parallel/inversions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

namespace psclip::par {
namespace {

std::int64_t brute_count(const std::vector<std::int32_t>& v) {
  std::int64_t n = 0;
  for (std::size_t i = 0; i < v.size(); ++i)
    for (std::size_t j = i + 1; j < v.size(); ++j)
      if (v[i] > v[j]) ++n;
  return n;
}

std::set<InversionPair> brute_pairs(const std::vector<std::int32_t>& v) {
  std::set<InversionPair> out;
  for (std::size_t i = 0; i < v.size(); ++i)
    for (std::size_t j = i + 1; j < v.size(); ++j)
      if (v[i] > v[j])
        out.insert({static_cast<std::int32_t>(i), static_cast<std::int32_t>(j)});
  return out;
}

TEST(Inversions, CountBasics) {
  EXPECT_EQ(count_inversions(std::vector<std::int32_t>{}), 0);
  EXPECT_EQ(count_inversions(std::vector<std::int32_t>{5}), 0);
  EXPECT_EQ(count_inversions(std::vector<std::int32_t>{1, 2, 3}), 0);
  EXPECT_EQ(count_inversions(std::vector<std::int32_t>{3, 2, 1}), 3);
  EXPECT_EQ(count_inversions(std::vector<std::int32_t>{2, 2, 2}), 0);  // ties
}

TEST(Inversions, PaperFigure4Example) {
  // Fig. 4: the lower-scanline order {3,2,4,1} has inversion pairs
  // (3,1), (3,2), (4,1), (2,1) — exactly the intersecting edge pairs.
  const std::vector<std::int32_t> order{3, 2, 4, 1};
  EXPECT_EQ(count_inversions(order), 4);
  auto pairs = report_inversions(order);
  std::set<std::pair<std::int32_t, std::int32_t>> by_value;
  for (const auto& [i, j] : pairs)
    by_value.insert({order[static_cast<std::size_t>(i)],
                     order[static_cast<std::size_t>(j)]});
  const std::set<std::pair<std::int32_t, std::int32_t>> want{
      {3, 1}, {3, 2}, {4, 1}, {2, 1}};
  EXPECT_EQ(by_value, want);
}

TEST(Inversions, TableIMergeTrace) {
  // Table I merges A_l = {5,6,7,9} with A_r = {1,2,3,4}; every element of
  // A_r inverts with every remaining element of A_l: 16 value pairs.
  const std::vector<std::int32_t> left{5, 6, 7, 9};
  const std::vector<std::int32_t> right{1, 2, 3, 4};
  const MergeTrace tr = merge_with_inversions(left, right);
  EXPECT_EQ(tr.merged,
            (std::vector<std::int32_t>{1, 2, 3, 4, 5, 6, 7, 9}));
  EXPECT_EQ(tr.inversions.size(), 16u);
  std::set<std::pair<std::int32_t, std::int32_t>> got(tr.inversions.begin(),
                                                      tr.inversions.end());
  for (std::int32_t l : left)
    for (std::int32_t r : right)
      EXPECT_TRUE(got.count({l, r})) << l << "," << r;
}

class InversionSizes : public ::testing::TestWithParam<int> {};

TEST_P(InversionSizes, CountMatchesBruteForce) {
  std::mt19937_64 rng(GetParam() * 17 + 3);
  std::vector<std::int32_t> v(static_cast<std::size_t>(GetParam()));
  for (auto& x : v) x = static_cast<std::int32_t>(rng() % 64);
  EXPECT_EQ(count_inversions(v), brute_count(v));
}

TEST_P(InversionSizes, ReportMatchesBruteForce) {
  std::mt19937_64 rng(GetParam() * 29 + 11);
  std::vector<std::int32_t> v(static_cast<std::size_t>(GetParam()));
  for (auto& x : v) x = static_cast<std::int32_t>(rng() % 1000);
  auto pairs = report_inversions(v);
  const std::set<InversionPair> got(pairs.begin(), pairs.end());
  EXPECT_EQ(got.size(), pairs.size()) << "duplicate pairs reported";
  EXPECT_EQ(got, brute_pairs(v));
}

TEST_P(InversionSizes, ParallelAgreesWithSequential) {
  ThreadPool pool(4);
  std::mt19937_64 rng(GetParam() * 41 + 1);
  std::vector<std::int32_t> v(static_cast<std::size_t>(GetParam()));
  for (auto& x : v) x = static_cast<std::int32_t>(rng() % 500);
  EXPECT_EQ(count_inversions(pool, v), count_inversions(v));
  auto ps = report_inversions(pool, v);
  auto ss = report_inversions(v);
  EXPECT_EQ(std::set<InversionPair>(ps.begin(), ps.end()),
            std::set<InversionPair>(ss.begin(), ss.end()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, InversionSizes,
                         ::testing::Values(2, 3, 7, 16, 33, 100, 257, 1000));

TEST(Inversions, WorstCaseQuadraticOutput) {
  // Strictly decreasing sequence: n(n-1)/2 inversions, all reported.
  std::vector<std::int32_t> v(200);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<std::int32_t>(v.size() - i);
  const auto pairs = report_inversions(v);
  EXPECT_EQ(pairs.size(), 200u * 199u / 2u);
}

TEST(Inversions, OutputSensitive) {
  // Nearly sorted input: report size equals the small inversion count.
  std::vector<std::int32_t> v(10000);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = static_cast<std::int32_t>(i);
  std::swap(v[17], v[18]);
  std::swap(v[5000], v[5001]);
  EXPECT_EQ(report_inversions(v).size(), 2u);
}

}  // namespace
}  // namespace psclip::par
