// Unit + race coverage for the governance primitives (parallel/cancel.hpp).
//
// The single-thread half pins down the exact semantics every layer above
// relies on: null tokens are free, checkpoint() amortizes only the clock
// read (cancel and budget flags trip immediately), budgets release on
// unwind, transient probes never stick, charge watermarks are quantized.
//
// The racing half is the TSan target for this subsystem: cancellation is
// delivered from a foreign thread while workers are stealing tasks and a
// waiter is blocked in TaskGroup::wait / parallel_for. The assertions are
// about *delivery* (the precise error code surfaces, the pool stays
// reusable); TSan supplies the data-race verdict on the token state shared
// across submitter, workers, and canceller.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "error.hpp"
#include "parallel/cancel.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_steal.hpp"

namespace psclip::par {
namespace {

TEST(Deadline, UnarmedNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.armed());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0);
}

TEST(Deadline, SignOfRemaining) {
  EXPECT_TRUE(Deadline::in_ms(-5).expired());
  EXPECT_LE(Deadline::in_ms(-5).remaining_ms(), 0);
  const Deadline far = Deadline::in_ms(60 * 1000);
  EXPECT_FALSE(far.expired());
  EXPECT_GT(far.remaining_ms(), 0);
}

TEST(ResourceBudget, ChargeReleasePeak) {
  ResourceBudget b(1000);
  EXPECT_TRUE(b.try_charge(600));
  EXPECT_EQ(b.used(), 600u);
  EXPECT_EQ(b.peak(), 600u);
  b.release(600);
  EXPECT_EQ(b.used(), 0u);
  EXPECT_EQ(b.peak(), 600u) << "peak is a high-water mark";
  EXPECT_FALSE(b.blown());
}

TEST(ResourceBudget, OverchargeIsStickyAndNotRecorded) {
  ResourceBudget b(1000);
  EXPECT_TRUE(b.try_charge(900));
  EXPECT_FALSE(b.try_charge(200));
  EXPECT_TRUE(b.blown());
  EXPECT_EQ(b.used(), 900u) << "the failed charge must not be retained";
  b.reset();
  EXPECT_FALSE(b.blown());
  EXPECT_EQ(b.used(), 0u);
  EXPECT_EQ(b.peak(), 0u);
}

TEST(ResourceBudget, TransientProbeNeverSticks) {
  ResourceBudget b(1000);
  EXPECT_FALSE(b.charge_transient(5000));
  EXPECT_FALSE(b.blown()) << "a released spike must not poison the request";
  EXPECT_EQ(b.used(), 0u);
  EXPECT_TRUE(b.try_charge(500));
  EXPECT_TRUE(b.charge_transient(400));
  EXPECT_EQ(b.peak(), 900u) << "a fitting spike still records peak";
  EXPECT_EQ(b.used(), 500u);
}

TEST(ResourceBudget, UnlimitedStillTracksPeak) {
  ResourceBudget b;  // limit 0 = unlimited
  EXPECT_TRUE(b.try_charge(1ull << 40));
  EXPECT_EQ(b.peak(), 1ull << 40);
  EXPECT_FALSE(b.blown());
  b.release(1ull << 40);
}

TEST(CancelToken, NullTokenIsInert) {
  CancelToken t;
  EXPECT_FALSE(t.valid());
  t.cancel();  // no-op, no crash
  EXPECT_FALSE(t.stopped());
  t.rethrow_if_stopped();
  gov::checkpoint();      // nothing installed
  gov::checkpoint_now();  // ditto
  EXPECT_EQ(gov::current_budget(), nullptr);
}

TEST(CancelToken, CopiesShareState) {
  CancelToken a = CancelToken::make();
  CancelToken b = a;
  b.cancel();
  EXPECT_TRUE(a.stopped());
  EXPECT_TRUE(a.cancel_requested());
}

TEST(CancelToken, RethrowPrecedence) {
  // Cancel outranks budget outranks deadline, so concurrent trips report a
  // deterministic code.
  CancelToken t = CancelToken::with_deadline(Deadline::in_ms(-1));
  auto blown = std::make_shared<ResourceBudget>(1);
  EXPECT_FALSE(blown->try_charge(2));
  t.set_budget(blown);
  try {
    t.rethrow_if_stopped();
    FAIL() << "tripped token did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBudgetExceeded);
  }
  t.cancel();
  try {
    t.rethrow_if_stopped();
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
}

TEST(Checkpoint, CancelTripsWithoutClockStride) {
  CancelToken t = CancelToken::make();
  gov::ScopedToken scope(t);
  gov::checkpoint();  // fine
  t.cancel();
  EXPECT_THROW(gov::checkpoint(), Error)
      << "cancel is checked every checkpoint, not 1-in-kStride";
}

TEST(Checkpoint, DeadlineTripsWithinOneStride) {
  CancelToken t = CancelToken::with_deadline(Deadline::in_ms(-1));
  gov::ScopedToken scope(t);
  EXPECT_THROW(gov::checkpoint_now(), Error);
  bool threw = false;
  // The thread-local tick survives across tests, so allow two full strides.
  for (std::uint32_t i = 0; i < 2 * 32 && !threw; ++i) {
    try {
      gov::checkpoint();
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
}

TEST(Checkpoint, ScopedTokenNestsAndRestores) {
  EXPECT_EQ(gov::current_state(), nullptr);
  CancelToken outer = CancelToken::make();
  auto outer_budget = std::make_shared<ResourceBudget>(100);
  outer.set_budget(outer_budget);
  {
    gov::ScopedToken s1(outer);
    EXPECT_EQ(gov::current_budget(), outer_budget.get());
    CancelToken inner = CancelToken::make();
    {
      gov::ScopedToken s2(inner);
      EXPECT_EQ(gov::current_state(), inner.state());
      EXPECT_EQ(gov::current_budget(), nullptr);
    }
    EXPECT_EQ(gov::current_state(), outer.state());
  }
  EXPECT_EQ(gov::current_state(), nullptr);
}

TEST(ScopedCharge, WatermarkIsQuantizedAndReleased) {
  CancelToken t = CancelToken::make();
  auto budget = std::make_shared<ResourceBudget>(1ull << 30);
  t.set_budget(budget);
  gov::ScopedToken scope(t);
  {
    gov::ScopedCharge c;
    c.raise_to(1);
    EXPECT_EQ(c.held(), gov::ScopedCharge::kGranule);
    c.raise_to(gov::ScopedCharge::kGranule);  // within the held watermark
    EXPECT_EQ(c.held(), gov::ScopedCharge::kGranule);
    c.raise_to(gov::ScopedCharge::kGranule + 1);
    EXPECT_EQ(c.held(), 2 * gov::ScopedCharge::kGranule);
    EXPECT_EQ(budget->used(), c.held());
  }
  EXPECT_EQ(budget->used(), 0u);
  EXPECT_EQ(budget->peak(), 2 * gov::ScopedCharge::kGranule);
}

TEST(ScopedCharge, ReleasesOnUnwind) {
  CancelToken t = CancelToken::make();
  auto budget = std::make_shared<ResourceBudget>(1000);
  t.set_budget(budget);
  gov::ScopedToken scope(t);
  try {
    gov::ScopedCharge c(512);
    gov::ScopedCharge doomed(1024);  // over limit
    FAIL() << "overcharge did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBudgetExceeded);
  }
  EXPECT_EQ(budget->used(), 0u) << "both charges must unwind";
  EXPECT_TRUE(budget->blown());
}

// ---- Races: foreign-thread cancellation vs. the work-stealing pool. ----

TEST(CancelRace, ParallelForThrowsPreciseCodeAndPoolSurvives) {
  ThreadPool pool(4);
  CancelToken t = CancelToken::make();
  std::atomic<bool> started{false};
  std::thread canceller([&] {
    while (!started.load(std::memory_order_acquire)) std::this_thread::yield();
    t.cancel();
  });
  try {
    gov::ScopedToken scope(t);
    pool.parallel_for(100000, [&](std::size_t) {
      started.store(true, std::memory_order_release);
      // Spin until the foreign cancel lands, then checkpoint: at least one
      // running chunk is guaranteed to observe the flag.
      while (!t.cancel_requested()) std::this_thread::yield();
      gov::checkpoint();
    });
    FAIL() << "cancelled parallel_for returned normally";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled)
        << "aggregation must preserve the precise governance code";
  }
  canceller.join();
  // The pool must be fully reusable after a cancelled region (the dead
  // token is no longer installed here).
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(1000,
                    [&](std::size_t i) {
                      sum.fetch_add(i, std::memory_order_relaxed);
                    },
                    16);
  EXPECT_EQ(sum.load(), 1000u * 999u / 2);
}

TEST(CancelRace, TaskGroupWaitThrowsCancelled) {
  ThreadPool pool(4);
  CancelToken t = CancelToken::make();
  std::atomic<bool> started{false};
  std::thread canceller([&] {
    while (!started.load(std::memory_order_acquire)) std::this_thread::yield();
    t.cancel();
  });
  {
    gov::ScopedToken scope(t);
    TaskGroup group(pool);
    for (int i = 0; i < 64; ++i)
      group.run([&] {
        started.store(true, std::memory_order_release);
        while (!t.cancel_requested()) std::this_thread::yield();
        gov::checkpoint();
      });
    try {
      group.wait();
      FAIL() << "cancelled TaskGroup::wait returned normally";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCancelled);
    }
  }
  canceller.join();
  // Fresh group on the same pool still works.
  std::atomic<int> ran{0};
  TaskGroup again(pool);
  for (int i = 0; i < 32; ++i)
    again.run([&] { ran.fetch_add(1, std::memory_order_relaxed); });
  again.wait();
  EXPECT_EQ(ran.load(), 32);
}

TEST(CancelRace, StolenTasksInheritTheSubmitterToken) {
  // Tasks observe the token through the captured state even when executed
  // by a worker that never installed it: every task sees stopped() after a
  // foreign cancel, none before the canary is set.
  ThreadPool pool(4);
  CancelToken t = CancelToken::make();
  std::atomic<int> governed{0};
  {
    gov::ScopedToken scope(t);
    TaskGroup group(pool);
    for (int i = 0; i < 128; ++i)
      group.run([&] {
        if (gov::current_state() == t.state()) {
          governed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    group.wait();
  }
  EXPECT_EQ(governed.load(), 128)
      << "every task body must run with the submitter's token installed";
}

TEST(CancelRace, ConcurrentChargesBalance) {
  ThreadPool pool(4);
  CancelToken t = CancelToken::make();
  auto budget = std::make_shared<ResourceBudget>(1ull << 30);
  t.set_budget(budget);
  gov::ScopedToken scope(t);
  pool.parallel_for(
      2000,
      [&](std::size_t) {
        gov::ScopedCharge c(4096);
        (void)budget->charge_transient(64 * 1024);
        gov::checkpoint();
      },
      8);
  EXPECT_EQ(budget->used(), 0u);
  EXPECT_FALSE(budget->blown());
  EXPECT_GE(budget->peak(), 4096u + 64u * 1024u);
  EXPECT_LE(budget->peak(), budget->limit());
}

}  // namespace
}  // namespace psclip::par
