#include "parallel/scan.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace psclip::par {
namespace {

std::vector<std::int64_t> random_values(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> d(-100, 100);
  std::vector<std::int64_t> v(n);
  for (auto& x : v) x = d(rng);
  return v;
}

TEST(Scan, InclusiveSequentialBasic) {
  const std::vector<std::int64_t> in{1, 2, 3, 4};
  std::vector<std::int64_t> out(4);
  inclusive_scan_seq(in, out);
  EXPECT_EQ(out, (std::vector<std::int64_t>{1, 3, 6, 10}));
}

TEST(Scan, ExclusiveSequentialBasicAndAliasing) {
  std::vector<std::int64_t> v{5, 1, 2};
  const std::int64_t total = exclusive_scan_seq(v, v);  // in-place
  EXPECT_EQ(total, 8);
  EXPECT_EQ(v, (std::vector<std::int64_t>{0, 5, 6}));
}

class ScanSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanSizes, ParallelMatchesSequentialInclusive) {
  ThreadPool pool(4);
  const auto in = random_values(GetParam(), GetParam() * 7 + 1);
  std::vector<std::int64_t> want(in.size()), got(in.size());
  inclusive_scan_seq(in, want);
  inclusive_scan(pool, in, got);
  EXPECT_EQ(got, want);
}

TEST_P(ScanSizes, ParallelMatchesSequentialExclusive) {
  ThreadPool pool(4);
  const auto in = random_values(GetParam(), GetParam() * 13 + 5);
  std::vector<std::int64_t> want(in.size()), got(in.size());
  const auto wt = exclusive_scan_seq(in, want);
  const auto gt = exclusive_scan(pool, in, got);
  EXPECT_EQ(gt, wt);
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScanSizes,
                         ::testing::Values(0, 1, 2, 100, 4095, 4096, 4097,
                                           50000, 262144));

TEST(Scan, AllocateFromCountsIsTheOutputSensitivePattern) {
  ThreadPool pool(4);
  // The paper's two-phase allocation: counts -> offsets + total.
  const std::vector<std::int64_t> counts{3, 0, 5, 1, 0, 2};
  const Allocation a = allocate_from_counts(pool, counts);
  EXPECT_EQ(a.total, 11);
  EXPECT_EQ(a.offsets, (std::vector<std::int64_t>{0, 3, 3, 8, 9, 9}));
}

TEST(Scan, AllocateFromCountsEmpty) {
  ThreadPool pool(2);
  const Allocation a = allocate_from_counts(pool, std::vector<std::int64_t>{});
  EXPECT_EQ(a.total, 0);
  EXPECT_TRUE(a.offsets.empty());
}

TEST(Scan, LargeValuesDoNotOverflowIntermediate) {
  ThreadPool pool(4);
  std::vector<std::int64_t> in(10000, 1'000'000'000LL);
  std::vector<std::int64_t> out(in.size());
  inclusive_scan(pool, in, out);
  EXPECT_EQ(out.back(), 10'000'000'000'000LL);
}

}  // namespace
}  // namespace psclip::par
