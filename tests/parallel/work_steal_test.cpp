// Property tests for the work-stealing slab scheduler: per-worker deques
// with steal-half semantics behind ThreadPool, driven through the
// TaskGroup structured-concurrency interface. The properties here are the
// scheduler's contract with Algorithm 2: exactly-once execution under
// forced contention, first-one-wins exception propagation, and wait_idle
// never returning while stolen tasks are still in flight.

#include "parallel/work_steal.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "error.hpp"
#include "parallel/thread_pool.hpp"

namespace psclip::par {
namespace {

/// Busy-wait long enough for other workers to contend for the deques.
void spin_for(std::chrono::microseconds us) {
  const auto until = std::chrono::steady_clock::now() + us;
  while (std::chrono::steady_clock::now() < until) std::this_thread::yield();
}

TEST(WorkSteal, EveryTaskRunsExactlyOnceUnderContention) {
  // Tiny grain, many workers on few cores: maximal interleaving of pushes,
  // pops and steals.
  ThreadPool pool(8);
  const std::size_t n = 5000;
  std::vector<std::atomic<int>> hits(n);
  TaskGroup group(pool);
  for (std::size_t i = 0; i < n; ++i)
    group.run([&hits, i] { hits[i].fetch_add(1, std::memory_order_relaxed); });
  group.wait();
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(WorkSteal, TasksSubmittedFromInsideTasksRunExactlyOnce) {
  // A producer task fans out onto its *own* deque (the hot end); the other
  // workers can only get at that work by stealing half the queue at a time.
  ThreadPool pool(4);
  const std::size_t n = 512;
  std::vector<std::atomic<int>> hits(n);
  TaskGroup group(pool);
  group.run([&] {
    for (std::size_t i = 0; i < n; ++i)
      group.run([&hits, i] {
        spin_for(std::chrono::microseconds(20));
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
  });
  group.wait();
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(WorkSteal, SingleProducerQueueGetsStolenFrom) {
  ThreadPool pool(4);
  const auto before = pool.steal_stats();
  TaskGroup group(pool);
  // All tasks funnel through one producer task, so they all land on one
  // worker's deque; with 4 workers and slow tasks, the others must steal.
  group.run([&] {
    for (int i = 0; i < 256; ++i)
      group.run([] { spin_for(std::chrono::microseconds(100)); });
  });
  group.wait();
  const auto after = pool.steal_stats();
  std::uint64_t steals = 0, stolen = 0;
  for (unsigned i = 0; i < pool.size(); ++i) {
    steals += after[i].steals - before[i].steals;
    stolen += after[i].tasks_stolen - before[i].tasks_stolen;
  }
  EXPECT_GT(steals, 0u);
  EXPECT_GE(stolen, steals);  // steal-half takes >= 1 task per operation
}

TEST(WorkSteal, ExceptionsAggregateNeverDropped) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i)
    group.run([&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("task " + std::to_string(i));
    });
  // Contract: exactly one task threw -> its exception is rethrown
  // unchanged; several threw concurrently -> one psclip::Error(kTaskFailure)
  // carrying the count and the first message. Either way nothing is
  // silently dropped.
  try {
    group.wait();
    FAIL() << "wait() must rethrow";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTaskFailure);
    EXPECT_NE(std::string(e.what()).find("tasks failed; first: task "),
              std::string::npos)
        << e.what();
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()).rfind("task ", 0), 0u) << e.what();
  }
  // After the first failure the remaining bodies are skipped, never run.
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 64);
}

TEST(WorkSteal, ConcurrentFailuresFoldIntoOneError) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  // Rendezvous: each task waits (with a deadline, in case two tasks land
  // on one worker) until all four entered, then throws — so several
  // failures are recorded before any skip flag can help.
  std::atomic<int> arrived{0};
  std::atomic<int> threw{0};
  for (int i = 0; i < 4; ++i)
    group.run([&arrived, &threw, i] {
      arrived.fetch_add(1, std::memory_order_acq_rel);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(2);
      while (arrived.load(std::memory_order_acquire) < 4 &&
             std::chrono::steady_clock::now() < deadline)
        std::this_thread::yield();
      threw.fetch_add(1, std::memory_order_acq_rel);
      throw std::runtime_error("boom " + std::to_string(i));
    });
  try {
    group.wait();
    FAIL() << "wait() must rethrow";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTaskFailure);
    EXPECT_NE(std::string(e.what()).find(
                  std::to_string(threw.load()) + " tasks failed"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("boom "), std::string::npos)
        << e.what();
  } catch (const std::runtime_error& e) {
    // Legal only if the rendezvous timed out and one task threw alone.
    EXPECT_EQ(threw.load(), 1) << e.what();
  }
}

TEST(WorkSteal, GroupIsReusableAfterExceptionAndAfterWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.run([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(group.wait(), std::runtime_error);

  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) group.run([&done] { ++done; });
  group.wait();  // must not rethrow the already-consumed exception
  EXPECT_EQ(done.load(), 16);
}

TEST(WorkSteal, WaitIdleCannotReturnWithStolenTasksInFlight) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> completed{0};
    const int n = 64;
    // Raw submit_stealable (no TaskGroup): wait_idle is the only fence.
    // Tasks are slow enough that several are still queued (and being
    // stolen) when wait_idle is entered.
    for (int i = 0; i < n; ++i)
      pool.submit_stealable([&completed] {
        spin_for(std::chrono::microseconds(50));
        completed.fetch_add(1, std::memory_order_release);
      });
    pool.wait_idle();
    ASSERT_EQ(completed.load(std::memory_order_acquire), n)
        << "wait_idle returned with tasks in flight (round " << round << ")";
  }
}

TEST(WorkSteal, ExternalThreadsCanSubmitAndHelp) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  const int per_thread = 200;
  std::vector<std::thread> submitters;
  TaskGroup group(pool);
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < per_thread; ++i)
        group.run([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  for (auto& s : submitters) s.join();
  group.wait();  // the external caller helps drain via help_one
  EXPECT_EQ(done.load(), 4 * per_thread);
}

TEST(WorkSteal, HelpOneReturnsFalseOnQuiescentPool) {
  ThreadPool pool(2);
  pool.wait_idle();
  EXPECT_FALSE(pool.help_one());
}

TEST(WorkSteal, NestedGroupInsideTaskDoesNotDeadlock) {
  // A slab job that itself fans out and waits: the inner wait() helps run
  // queued tasks instead of parking, so this must finish even when every
  // worker is blocked in an inner wait.
  ThreadPool pool(2);
  std::atomic<int> inner_done{0};
  TaskGroup outer(pool);
  for (int i = 0; i < 4; ++i) {
    outer.run([&] {
      TaskGroup inner(pool);
      for (int j = 0; j < 8; ++j)
        inner.run([&inner_done] {
          inner_done.fetch_add(1, std::memory_order_relaxed);
        });
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(inner_done.load(), 32);
}

TEST(WorkSteal, CurrentWorkerIdentifiesPoolThreads) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.current_worker(), -1);  // the test thread is external
  std::atomic<int> bad{0};
  TaskGroup group(pool);
  for (int i = 0; i < 128; ++i)
    group.run([&] {
      const int w = pool.current_worker();
      // Tasks run on pool workers or on the helping (external) caller.
      if (w < -1 || w >= static_cast<int>(pool.size())) ++bad;
    });
  group.wait();
  EXPECT_EQ(bad.load(), 0);
}

TEST(WorkSteal, StealStatsAccumulateAndReset) {
  ThreadPool pool(2);
  // wait_idle parks the caller (unlike TaskGroup::wait, which helps), so
  // every task must be accounted for by a pool worker.
  for (int i = 0; i < 64; ++i) pool.submit_stealable([] {});
  pool.wait_idle();
  std::uint64_t run = 0;
  for (const auto& s : pool.steal_stats()) run += s.tasks_run;
  EXPECT_EQ(run, 64u);
  pool.reset_steal_stats();
  for (const auto& s : pool.steal_stats()) {
    EXPECT_EQ(s.tasks_run, 0u);
    EXPECT_EQ(s.steals, 0u);
    EXPECT_EQ(s.tasks_stolen, 0u);
    EXPECT_EQ(s.idle_seconds, 0.0);
  }
}

TEST(WorkSteal, MixesWithParallelForOnOnePool) {
  // The central FIFO (parallel_for) and the steal deques (TaskGroup) share
  // workers; running both concurrently must not lose tasks either way.
  ThreadPool pool(4);
  std::atomic<int> group_done{0};
  std::atomic<int> for_done{0};
  TaskGroup group(pool);
  for (int i = 0; i < 128; ++i)
    group.run([&group_done] {
      spin_for(std::chrono::microseconds(10));
      group_done.fetch_add(1, std::memory_order_relaxed);
    });
  pool.parallel_for(1000, [&for_done](std::size_t) {
    for_done.fetch_add(1, std::memory_order_relaxed);
  });
  group.wait();
  EXPECT_EQ(group_done.load(), 128);
  EXPECT_EQ(for_done.load(), 1000);
}

}  // namespace
}  // namespace psclip::par
