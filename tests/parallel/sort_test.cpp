#include "parallel/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

namespace psclip::par {
namespace {

class SortSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortSizes, MatchesStdSort) {
  ThreadPool pool(4);
  std::mt19937_64 rng(GetParam() * 31 + 7);
  std::vector<std::int64_t> v(GetParam());
  for (auto& x : v) x = static_cast<std::int64_t>(rng() % 1000000);
  std::vector<std::int64_t> want = v;
  std::sort(want.begin(), want.end());
  parallel_sort(pool, v);
  EXPECT_EQ(v, want);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSizes,
                         ::testing::Values(0, 1, 2, 17, 4095, 4096, 5000,
                                           65536, 100001));

TEST(ParallelSort, CustomComparatorDescending) {
  ThreadPool pool(4);
  std::vector<int> v(20000);
  std::mt19937 rng(5);
  for (auto& x : v) x = static_cast<int>(rng() % 1000);
  parallel_sort(pool, v, std::greater<int>{});
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end(), std::greater<int>{}));
}

TEST(ParallelSort, StableForEqualKeys) {
  // Sort pairs by first component only; second component records original
  // order and must stay ascending within equal keys.
  ThreadPool pool(4);
  std::vector<std::pair<int, int>> v;
  std::mt19937 rng(9);
  for (int i = 0; i < 50000; ++i)
    v.emplace_back(static_cast<int>(rng() % 50), i);
  parallel_sort(pool, v, [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_LE(v[i - 1].first, v[i].first);
    if (v[i - 1].first == v[i].first) ASSERT_LT(v[i - 1].second, v[i].second);
  }
}

TEST(ParallelSort, AlreadySortedAndReverse) {
  ThreadPool pool(4);
  std::vector<int> asc(50000);
  std::iota(asc.begin(), asc.end(), 0);
  std::vector<int> desc(asc.rbegin(), asc.rend());
  parallel_sort(pool, desc);
  EXPECT_EQ(desc, asc);
  parallel_sort(pool, asc);
  EXPECT_TRUE(std::is_sorted(asc.begin(), asc.end()));
}

TEST(ParallelSort, Doubles) {
  ThreadPool pool(4);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(-1e6, 1e6);
  std::vector<double> v(30000);
  for (auto& x : v) x = u(rng);
  parallel_sort(pool, v);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(ParallelSort, SingleThreadPool) {
  ThreadPool pool(1);
  std::vector<int> v{5, 3, 9, 1, 1, 8};
  parallel_sort(pool, v);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

}  // namespace
}  // namespace psclip::par
