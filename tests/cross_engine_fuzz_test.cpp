// Seeded cross-engine differential fuzz harness.
//
// Every case builds a deterministic polygon pair from a seed (smooth blobs,
// jagged stars, convex rings, self-intersecting rings, star polygrams,
// multi-contour fields — including degenerate variants with collinear and
// duplicate vertices restored to general position via geom::jitter, the
// paper's §III-C preprocessing) and pushes it through every clipping engine
// the library has:
//
//   * seq::vatti            — the GPC-equivalent scanline substrate,
//   * seq::martinez         — an independent x-directed sweep,
//   * seq::greiner_hormann  — where its preconditions hold (simple,
//                             single-contour, general-position inputs),
//   * mt::slab_clip         — Algorithm 2 on the work-stealing scheduler.
//
// Canonicalized outputs must agree: every engine's area against the
// trapezoid-sweep area oracle (which shares no code with any engine), and
// the parallel engine's canonicalized vertex set must be identical across
// different pool sizes (scheduling invariance — sweep-line clippers
// silently diverging on degenerate input is exactly the failure mode
// Foster & Overfelt document).
//
// Seeds are FIXED: a failure prints its full case descriptor and can be
// replayed with  ctest -R CrossEngineFuzz  or
// ./tests/cross_engine_fuzz_test --gtest_filter='*/<case-index>'
// (see README "Cross-engine fuzz harness").

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "data/synthetic.hpp"
#include "geom/area_oracle.hpp"
#include "geom/perturb.hpp"
#include "mt/algorithm2.hpp"
#include "seq/greiner_hormann.hpp"
#include "seq/martinez.hpp"
#include "seq/vatti.hpp"
#include "test_support.hpp"

namespace psclip {
namespace {

using geom::BoolOp;
using geom::PolygonSet;

enum class Shape {
  kBlobPair,      // synthetic_pair: two large overlapping blobs
  kSimplePair,    // jagged concave stars
  kConvexVsBlob,  // convex ring against a blob
  kSelfIntersecting,  // self-intersecting subject (GH ineligible)
  kPolygram,      // star polygram subject (GH ineligible)
  kFieldVsBlob,   // multi-contour subject layer (GH ineligible: union/xor
                  // of an independent per-contour clip is not the set op)
};

enum class Degenerate {
  kNone,      // generator output as-is
  kSnapJitter,  // snap to a coarse grid (collinear runs, duplicate
                // vertices), clean, then jitter back to general position
  kJitterTiny,  // near-degenerate: vertices moved by ~1e-7
};

struct FuzzCase {
  std::uint64_t seed;
  Shape shape;
  Degenerate degen;
  BoolOp op;

  [[nodiscard]] std::string repro() const {
    std::ostringstream os;
    os << "seed=" << seed << " shape=" << static_cast<int>(shape)
       << " degen=" << static_cast<int>(degen) << " op=" << geom::to_string(op);
    return os.str();
  }
};

/// Snap coordinates to a coarse grid. This manufactures exactly the inputs
/// sweep-line clippers dislike: collinear edge runs, duplicate vertices,
/// shared ordinates across both polygons.
void snap_to_grid(PolygonSet& p, double cell) {
  for (auto& c : p.contours)
    for (auto& pt : c.pts) {
      pt.x = std::round(pt.x / cell) * cell;
      pt.y = std::round(pt.y / cell) * cell;
    }
}

struct Inputs {
  PolygonSet a, b;
  bool gh_eligible = false;  // simple single-contour subject AND clip
};

Inputs make_inputs(const FuzzCase& c) {
  Inputs in;
  const std::uint64_t s = c.seed;
  switch (c.shape) {
    case Shape::kBlobPair: {
      const auto pair = data::synthetic_pair(s, 24 + static_cast<int>(s % 5) * 12);
      in.a = pair.subject;
      in.b = pair.clip;
      in.gh_eligible = true;
      break;
    }
    case Shape::kSimplePair:
      in.a = data::random_simple(s * 2 + 1, 10 + static_cast<int>(s % 7) * 5, 0,
                                 0, 10);
      in.b = data::random_simple(s * 2 + 2, 8 + static_cast<int>(s % 5) * 4, 2,
                                 -1, 8);
      in.gh_eligible = true;
      break;
    case Shape::kConvexVsBlob:
      in.a = data::random_convex(s * 2 + 1, 8 + static_cast<int>(s % 9) * 3, 1,
                                 1, 9);
      in.b = data::random_blob(s * 2 + 2, 24 + static_cast<int>(s % 4) * 10, 0,
                               0, 8);
      in.gh_eligible = true;
      break;
    case Shape::kSelfIntersecting:
      in.a = data::random_self_intersecting(
          s * 2 + 1, 10 + static_cast<int>(s % 6) * 4, 0, 0, 10);
      in.b = data::random_simple(s * 2 + 2, 9 + static_cast<int>(s % 5) * 4, 1,
                                 1, 8);
      break;
    case Shape::kPolygram: {
      // Coprime (points, step) pairs only: a common factor would trace a
      // degenerate multi-cycle ring instead of one polygram.
      static constexpr int kPolygrams[][2] = {{5, 2},  {7, 2}, {7, 3},
                                              {9, 2},  {9, 4}, {11, 3},
                                              {11, 4}, {11, 5}};
      const auto& pg = kPolygrams[s % 8];
      in.a = data::star_polygram(pg[0], pg[1], 0, 0, 9);
      in.b = data::random_simple(s * 2 + 2, 12 + static_cast<int>(s % 5) * 3, 1,
                                 -1, 8);
      break;
    }
    case Shape::kFieldVsBlob:
      in.a = data::polygon_field(s * 2 + 1, 6 + static_cast<int>(s % 4) * 2,
                                 20.0, 7);
      in.b = data::random_blob(s * 2 + 2, 20 + static_cast<int>(s % 4) * 8, 10,
                               10, 9);
      break;
  }
  switch (c.degen) {
    case Degenerate::kNone:
      break;
    case Degenerate::kSnapJitter:
      // Collinear/duplicate-vertex inputs restored to general position the
      // way the paper prescribes (§III-C): perturb, don't special-case.
      snap_to_grid(in.a, 0.5);
      snap_to_grid(in.b, 0.5);
      in.a = geom::cleaned(in.a);
      in.b = geom::cleaned(in.b);
      geom::jitter(in.a, 1e-6, s * 3 + 1);
      geom::jitter(in.b, 1e-6, s * 3 + 2);
      break;
    case Degenerate::kJitterTiny:
      geom::jitter(in.a, 1e-7, s * 3 + 1);
      geom::jitter(in.b, 1e-7, s * 3 + 2);
      break;
  }
  // Snapping can collapse a ring below 3 vertices; cleaned() above drops
  // those, and an input emptied entirely still goes through the engines
  // (they must agree on empty results too).
  return in;
}

/// Canonical vertex multiset of a polygon set: every coordinate pair,
/// sorted. Two runs of the same decomposition must produce the same
/// multiset bit for bit, regardless of scheduling.
std::vector<std::pair<double, double>> canonical_vertices(
    const PolygonSet& p) {
  std::vector<std::pair<double, double>> v;
  for (const auto& c : p.contours)
    for (const auto& pt : c.pts) v.emplace_back(pt.x, pt.y);
  std::sort(v.begin(), v.end());
  return v;
}

class CrossEngineFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(CrossEngineFuzz, EnginesAgree) {
  const FuzzCase c = GetParam();
  SCOPED_TRACE("repro: " + c.repro());
  const Inputs in = make_inputs(c);

  const double want = geom::boolean_area_oracle(in.a, in.b, c.op);

  // Sequential engines against the oracle.
  const double vat = geom::signed_area(seq::vatti_clip(in.a, in.b, c.op));
  EXPECT_TRUE(test::areas_match(vat, want, 1e-5))
      << "vatti=" << vat << " oracle=" << want;
  const double mar = geom::signed_area(seq::martinez_clip(in.a, in.b, c.op));
  EXPECT_TRUE(test::areas_match(mar, want, 1e-5))
      << "martinez=" << mar << " oracle=" << want;

  // Greiner–Hormann where its preconditions hold: simple single-contour
  // inputs in general position. Grid snapping can make a simple ring
  // self-intersect, which GH does not support (the paper's motivation for
  // Vatti), so the snapped mode is excluded.
  if (in.gh_eligible && c.degen != Degenerate::kSnapJitter &&
      in.a.num_contours() == 1 && in.b.num_contours() == 1) {
    // even_odd_area, not signed_area: GH does not orient holes the way the
    // sweep engines do, so its area is defined by the even-odd rule.
    const double gh = geom::even_odd_area(
        seq::greiner_hormann(in.a.contours[0], in.b.contours[0], c.op));
    EXPECT_TRUE(test::areas_match(gh, want, 1e-5))
        << "greiner_hormann=" << gh << " oracle=" << want;
  }

  // Algorithm 2 on the work-stealing scheduler, twice with different pool
  // sizes but the same decomposition: area against the oracle AND
  // bit-identical canonical vertex sets across schedules.
  static par::ThreadPool pool4(4);
  static par::ThreadPool pool2(2);
  mt::Alg2Options o;
  o.slabs = 6;  // fixed => identical slab boundaries on both pools
  // Self-intersecting inputs need the Vatti rectangle clipper (GH, the
  // default, requires simple contours — the paper's own caveat).
  o.rect_method = seq::RectClipMethod::kVatti;
  const PolygonSet out4 = mt::slab_clip(in.a, in.b, c.op, pool4, o);
  const PolygonSet out2 = mt::slab_clip(in.a, in.b, c.op, pool2, o);
  const double a2 = geom::signed_area(out4);
  EXPECT_TRUE(test::areas_match(a2, want, 1e-5))
      << "slab_clip=" << a2 << " oracle=" << want;
  EXPECT_EQ(canonical_vertices(out4), canonical_vertices(out2))
      << "slab_clip output depends on scheduling";

  // The slab-overlap contour index (kIndexed, the default above) must be a
  // pure work optimization: against the O(p·n) broadcast partition it has
  // to produce the same contours in the same order with the same bits —
  // not just the same area.
  mt::Alg2Options ob = o;
  ob.partition = mt::Alg2Partition::kBroadcast;
  const PolygonSet outb = mt::slab_clip(in.a, in.b, c.op, pool4, ob);
  ASSERT_EQ(out4.num_contours(), outb.num_contours())
      << "indexed vs broadcast contour count";
  for (std::size_t i = 0; i < out4.contours.size(); ++i) {
    const auto& ci = out4.contours[i];
    const auto& cb = outb.contours[i];
    ASSERT_EQ(ci.pts.size(), cb.pts.size()) << "contour " << i;
    EXPECT_EQ(ci.hole, cb.hole) << "contour " << i;
    for (std::size_t j = 0; j < ci.pts.size(); ++j) {
      EXPECT_EQ(ci.pts[j].x, cb.pts[j].x) << "contour " << i << " vertex " << j;
      EXPECT_EQ(ci.pts[j].y, cb.pts[j].y) << "contour " << i << " vertex " << j;
    }
  }
}

std::vector<FuzzCase> make_cases() {
  // 6 shapes x 3 degeneracy modes x 4 operators x 3 seed lanes = 216
  // deterministic cases (>= the 200 the harness promises in ctest).
  std::vector<FuzzCase> cases;
  const Shape shapes[] = {Shape::kBlobPair,         Shape::kSimplePair,
                          Shape::kConvexVsBlob,     Shape::kSelfIntersecting,
                          Shape::kPolygram,         Shape::kFieldVsBlob};
  const Degenerate degens[] = {Degenerate::kNone, Degenerate::kSnapJitter,
                               Degenerate::kJitterTiny};
  std::uint64_t seed = 424200;
  for (int lane = 0; lane < 3; ++lane)
    for (const Shape sh : shapes)
      for (const Degenerate d : degens)
        for (const BoolOp op : geom::kAllOps)
          cases.push_back({seed++, sh, d, op});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeded, CrossEngineFuzz,
                         ::testing::ValuesIn(make_cases()));

}  // namespace
}  // namespace psclip
