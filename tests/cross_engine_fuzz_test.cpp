// Seeded cross-engine differential fuzz harness.
//
// The corpus comes from tests/fuzz_cases.hpp (216 deterministic cases:
// smooth blobs, jagged stars, convex rings, self-intersecting rings, star
// polygrams, multi-contour fields, with degenerate variants restored to
// general position via geom::jitter, the paper's §III-C preprocessing).
// Every case is pushed through every clipping engine the library has:
//
//   * seq::vatti            — the GPC-equivalent scanline substrate,
//   * seq::martinez         — an independent x-directed sweep,
//   * seq::greiner_hormann  — where its preconditions hold (simple,
//                             single-contour, general-position inputs),
//   * mt::slab_clip         — Algorithm 2 on the work-stealing scheduler.
//
// Canonicalized outputs must agree: every engine's area against the
// trapezoid-sweep area oracle (which shares no code with any engine), and
// the parallel engine's canonicalized vertex set must be identical across
// different pool sizes (scheduling invariance — sweep-line clippers
// silently diverging on degenerate input is exactly the failure mode
// Foster & Overfelt document).
//
// Seeds are FIXED: a failure prints its full case descriptor and can be
// replayed with  ctest -R CrossEngineFuzz  or
// ./tests/cross_engine_fuzz_test --gtest_filter='*/<case-index>'
// (see README "Cross-engine fuzz harness").

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fuzz_cases.hpp"
#include "geom/area_oracle.hpp"
#include "mt/algorithm2.hpp"
#include "seq/greiner_hormann.hpp"
#include "seq/martinez.hpp"
#include "seq/vatti.hpp"
#include "test_support.hpp"

namespace psclip {
namespace {

using fuzz::canonical_vertices;
using fuzz::Degenerate;
using fuzz::FuzzCase;
using fuzz::Inputs;
using fuzz::make_inputs;
using geom::PolygonSet;

class CrossEngineFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(CrossEngineFuzz, EnginesAgree) {
  const FuzzCase c = GetParam();
  SCOPED_TRACE("repro: " + c.repro());
  const Inputs in = make_inputs(c);

  const double want = geom::boolean_area_oracle(in.a, in.b, c.op);

  // Sequential engines against the oracle.
  const double vat = geom::signed_area(seq::vatti_clip(in.a, in.b, c.op));
  EXPECT_TRUE(test::areas_match(vat, want, 1e-5))
      << "vatti=" << vat << " oracle=" << want;
  const double mar = geom::signed_area(seq::martinez_clip(in.a, in.b, c.op));
  EXPECT_TRUE(test::areas_match(mar, want, 1e-5))
      << "martinez=" << mar << " oracle=" << want;

  // Greiner–Hormann where its preconditions hold: simple single-contour
  // inputs in general position. Grid snapping can make a simple ring
  // self-intersect, which GH does not support (the paper's motivation for
  // Vatti), so the snapped mode is excluded.
  if (in.gh_eligible && c.degen != Degenerate::kSnapJitter &&
      in.a.num_contours() == 1 && in.b.num_contours() == 1) {
    // even_odd_area, not signed_area: GH does not orient holes the way the
    // sweep engines do, so its area is defined by the even-odd rule.
    const double gh = geom::even_odd_area(
        seq::greiner_hormann(in.a.contours[0], in.b.contours[0], c.op));
    EXPECT_TRUE(test::areas_match(gh, want, 1e-5))
        << "greiner_hormann=" << gh << " oracle=" << want;
  }

  // Algorithm 2 on the work-stealing scheduler, twice with different pool
  // sizes but the same decomposition: area against the oracle AND
  // bit-identical canonical vertex sets across schedules.
  static par::ThreadPool pool4(4);
  static par::ThreadPool pool2(2);
  mt::Alg2Options o;
  o.slabs = 6;  // fixed => identical slab boundaries on both pools
  // Self-intersecting inputs need the Vatti rectangle clipper (GH, the
  // default, requires simple contours — the paper's own caveat).
  o.rect_method = seq::RectClipMethod::kVatti;
  const PolygonSet out4 = mt::slab_clip(in.a, in.b, c.op, pool4, o);
  const PolygonSet out2 = mt::slab_clip(in.a, in.b, c.op, pool2, o);
  const double a2 = geom::signed_area(out4);
  EXPECT_TRUE(test::areas_match(a2, want, 1e-5))
      << "slab_clip=" << a2 << " oracle=" << want;
  EXPECT_EQ(canonical_vertices(out4), canonical_vertices(out2))
      << "slab_clip output depends on scheduling";

  // The slab-overlap contour index (kIndexed, the default above) must be a
  // pure work optimization: against the O(p·n) broadcast partition it has
  // to produce the same contours in the same order with the same bits —
  // not just the same area.
  mt::Alg2Options ob = o;
  ob.partition = mt::Alg2Partition::kBroadcast;
  const PolygonSet outb = mt::slab_clip(in.a, in.b, c.op, pool4, ob);
  ASSERT_EQ(out4.num_contours(), outb.num_contours())
      << "indexed vs broadcast contour count";
  for (std::size_t i = 0; i < out4.contours.size(); ++i) {
    const auto& ci = out4.contours[i];
    const auto& cb = outb.contours[i];
    ASSERT_EQ(ci.pts.size(), cb.pts.size()) << "contour " << i;
    EXPECT_EQ(ci.hole, cb.hole) << "contour " << i;
    for (std::size_t j = 0; j < ci.pts.size(); ++j) {
      EXPECT_EQ(ci.pts[j].x, cb.pts[j].x) << "contour " << i << " vertex " << j;
      EXPECT_EQ(ci.pts[j].y, cb.pts[j].y) << "contour " << i << " vertex " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeded, CrossEngineFuzz,
                         ::testing::ValuesIn(fuzz::make_cases()));

}  // namespace
}  // namespace psclip
