// End-to-end test of the psclip_cli example binary: file I/O, format
// detection, engine selection and exit codes.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#ifndef PSCLIP_CLI_PATH
#define PSCLIP_CLI_PATH ""
#endif

namespace {

std::string run(const std::string& args, int* exit_code = nullptr) {
  const std::string cmd = std::string(PSCLIP_CLI_PATH) + " " + args + " 2>&1";
  std::array<char, 4096> buf{};
  std::string out;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) return out;
  while (fgets(buf.data(), static_cast<int>(buf.size()), pipe))
    out += buf.data();
  const int rc = pclose(pipe);
  if (exit_code) *exit_code = WEXITSTATUS(rc);
  return out;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (std::string(PSCLIP_CLI_PATH).empty())
      GTEST_SKIP() << "psclip_cli not built";
    // ctest runs each discovered case as its own process of this binary;
    // per-PID names keep concurrent cases from deleting each other's
    // fixtures mid-run.
    const std::string tag = std::to_string(getpid());
    a_path_ = testing::TempDir() + "/psclip_cli_" + tag + "_a.wkt";
    b_path_ = testing::TempDir() + "/psclip_cli_" + tag + "_b.json";
    std::ofstream(a_path_)
        << "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))";
    std::ofstream(b_path_)
        << R"({"type":"Polygon","coordinates":[[[5,5],[15,5],[15,15],[5,15],[5,5]]]})";
  }
  void TearDown() override {
    std::remove(a_path_.c_str());
    std::remove(b_path_.c_str());
  }
  std::string a_path_, b_path_;
};

TEST_F(CliTest, IntersectionArea) {
  int rc = -1;
  const std::string out =
      run("intersection " + a_path_ + " " + b_path_ + " --out=area", &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NEAR(std::stod(out), 25.0, 1e-3);
}

TEST_F(CliTest, EveryEngineComputesTheSameArea) {
  for (const char* engine :
       {"auto", "vatti", "martinez", "scanbeam", "slab"}) {
    int rc = -1;
    const std::string out = run("union " + a_path_ + " " + b_path_ +
                                    " --engine=" + engine + " --out=area",
                                &rc);
    EXPECT_EQ(rc, 0) << engine;
    EXPECT_NEAR(std::stod(out), 175.0, 1e-3) << engine;
  }
}

TEST_F(CliTest, WktAndGeoJsonOutputs) {
  int rc = -1;
  const std::string wkt =
      run("difference " + a_path_ + " " + b_path_, &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(wkt.find("MULTIPOLYGON"), std::string::npos);
  const std::string gj = run("difference " + a_path_ + " " + b_path_ +
                                 " --out=geojson",
                             &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(gj.find("\"MultiPolygon\""), std::string::npos);
}

TEST_F(CliTest, BadOperatorExitsWithUsage) {
  int rc = -1;
  const std::string out = run("frobnicate " + a_path_ + " " + b_path_, &rc);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("usage:"), std::string::npos);
}

TEST_F(CliTest, MissingFileFails) {
  int rc = -1;
  run("union /nonexistent.wkt " + b_path_, &rc);
  EXPECT_EQ(rc, 1);
}

TEST_F(CliTest, MalformedInputReportsByteOffset) {
  const std::string bad = testing::TempDir() + "/psclip_cli_bad.wkt";
  std::ofstream(bad) << "POLYGON ((0 0, inf 0, 1 1))";
  int rc = -1;
  const std::string out = run("union " + bad + " " + b_path_, &rc);
  std::remove(bad.c_str());
  EXPECT_EQ(rc, 1);
  // Positioned, classified error: code name and byte offset on stderr.
  EXPECT_NE(out.find("non-finite-coordinate"), std::string::npos) << out;
  EXPECT_NE(out.find("byte 15"), std::string::npos) << out;
}

TEST_F(CliTest, SanitizeRepairsDefectiveInput) {
  // Parseable but defective: a consecutive duplicate vertex. Clipped as-is
  // without --sanitize; repaired (and reported) with it. Same area both
  // ways — sanitize only removes what contributes nothing.
  const std::string dup = testing::TempDir() + "/psclip_cli_dup.wkt";
  std::ofstream(dup) << "POLYGON ((0 0, 0 0, 10 0, 10 10, 0 10, 0 0))";
  int rc = -1;
  const std::string plain =
      run("intersection " + dup + " " + b_path_ + " --out=area", &rc);
  EXPECT_EQ(rc, 0);
  EXPECT_NEAR(std::stod(plain), 25.0, 1e-3);

  const std::string repaired = run(
      "intersection " + dup + " " + b_path_ + " --out=area --sanitize", &rc);
  std::remove(dup.c_str());
  EXPECT_EQ(rc, 0);
  EXPECT_NE(repaired.find("sanitized duplicate-vertex"), std::string::npos)
      << repaired;
  // Last line is the area (stderr repair notes precede it in merged output).
  const auto nl = repaired.find_last_not_of("\n");
  const auto line = repaired.rfind('\n', nl);
  EXPECT_NEAR(std::stod(repaired.substr(line == std::string::npos ? 0
                                                                  : line + 1)),
              25.0, 1e-3);
}

TEST_F(CliTest, TraceOutWritesLoadableChromeTrace) {
  const std::string trace = testing::TempDir() + "/psclip_cli_trace.json";
  int rc = -1;
  const std::string out =
      run("intersection " + a_path_ + " " + b_path_ +
              " --engine=slab --out=area --trace-out=" + trace,
          &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("trace written to"), std::string::npos) << out;

  std::ifstream f(trace);
  ASSERT_TRUE(f.good()) << trace;
  std::string doc((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  std::remove(trace.c_str());
  // chrome://tracing essentials plus the documented span hierarchy: the
  // facade request, the engine request/phases, per-slab spans, and the
  // parse spans recorded before clipping started.
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"psclip.clip\""), std::string::npos);
  EXPECT_NE(doc.find("\"alg2.slab_clip\""), std::string::npos);
  EXPECT_NE(doc.find("\"alg2.clip\""), std::string::npos);
  EXPECT_NE(doc.find("\"alg2.slab\""), std::string::npos);
  EXPECT_NE(doc.find("\"parse.wkt\""), std::string::npos);
  EXPECT_NE(doc.find("\"parse.geojson\""), std::string::npos);
}

TEST_F(CliTest, MetricsPrintsSnapshot) {
  int rc = -1;
  const std::string out = run("intersection " + a_path_ + " " + b_path_ +
                                  " --engine=slab --out=area --metrics",
                              &rc);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("alg2.requests"), std::string::npos) << out;
  EXPECT_NE(out.find("alg2.request_seconds"), std::string::npos) << out;
}

TEST_F(CliTest, ServeReplayServesTheFileFromConcurrentClients) {
  const std::string tag = std::to_string(getpid());
  const std::string replay =
      testing::TempDir() + "/psclip_cli_" + tag + "_replay.txt";
  std::ofstream(replay) << "# two requests over the shared layers\n"
                        << "intersection " << a_path_ << " " << b_path_
                        << "\n"
                        << "union " << a_path_ << " " << b_path_ << "\n";
  int rc = -1;
  const std::string out =
      run("--serve-replay=" + replay + " --clients=3 --engine=slab", &rc);
  EXPECT_EQ(rc, 0) << out;
  // Per-line areas from the first client (stdout)...
  EXPECT_NE(out.find("1: area=2"), std::string::npos) << out;   // ~25
  EXPECT_NE(out.find("2: area=1"), std::string::npos) << out;   // ~175
  // ...and the serving summary with cache meters (stderr).
  EXPECT_NE(out.find("served 6 requests from 3 client(s)"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("hits"), std::string::npos) << out;

  const std::string off = run(
      "--serve-replay=" + replay + " --clients=1 --no-cache", &rc);
  std::remove(replay.c_str());
  EXPECT_EQ(rc, 0) << off;
  EXPECT_NE(off.find("cache: off"), std::string::npos) << off;
}

TEST_F(CliTest, ServeReplayRejectsMalformedLines) {
  const std::string tag = std::to_string(getpid());
  const std::string replay =
      testing::TempDir() + "/psclip_cli_" + tag + "_badreplay.txt";
  std::ofstream(replay) << "frobnicate " << a_path_ << " " << b_path_ << "\n";
  int rc = -1;
  const std::string out = run("--serve-replay=" + replay, &rc);
  std::remove(replay.c_str());
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("expected '<op>"), std::string::npos) << out;
}

TEST_F(CliTest, EmptyTraceOutPathIsUsage) {
  int rc = -1;
  const std::string out =
      run("intersection " + a_path_ + " " + b_path_ + " --trace-out=", &rc);
  EXPECT_EQ(rc, 2);
  EXPECT_NE(out.find("usage:"), std::string::npos);
}

}  // namespace
