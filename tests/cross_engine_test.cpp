// Cross-engine property suite: every clipping engine in the library —
// two independent sequential algorithms and both parallel algorithms —
// must produce the same region for the same input, across sizes, shapes
// and operators. This is the strongest single invariant the repository
// checks: a bug in any one sweep shows up as a disagreement here.

#include <gtest/gtest.h>

#include "core/algorithm1.hpp"
#include "data/synthetic.hpp"
#include "geom/area_oracle.hpp"
#include "mt/algorithm2.hpp"
#include "mt/multiset.hpp"
#include "seq/martinez.hpp"
#include "seq/vatti.hpp"
#include "test_support.hpp"

namespace psclip {
namespace {

using geom::BoolOp;
using geom::PolygonSet;

struct XCase {
  std::uint64_t seed;
  int edges;
  bool blob;  // smooth blob pair vs jagged star pair
};

class CrossEngine : public ::testing::TestWithParam<XCase> {};

TEST_P(CrossEngine, AllEnginesAgreeWithOracle) {
  const XCase c = GetParam();
  PolygonSet a, b;
  if (c.blob) {
    const auto pair = data::synthetic_pair(c.seed, c.edges);
    a = pair.subject;
    b = pair.clip;
  } else {
    a = test::random_polygon(c.seed * 2 + 1, c.edges, 0, 0, 10,
                             c.seed % 3 == 0);
    b = test::random_polygon(c.seed * 2 + 2, (c.edges * 3) / 4, 1, -1, 8,
                             false);
  }
  par::ThreadPool pool(3);
  for (const BoolOp op : geom::kAllOps) {
    const double want = geom::boolean_area_oracle(a, b, op);
    const double vat = geom::signed_area(seq::vatti_clip(a, b, op));
    const double mar = geom::signed_area(seq::martinez_clip(a, b, op));
    const double a1 =
        geom::signed_area(core::scanbeam_clip(a, b, op, pool));
    mt::Alg2Options o;
    o.slabs = 3;
    const double a2 = geom::signed_area(mt::slab_clip(a, b, op, pool, o));
    EXPECT_TRUE(test::areas_match(vat, want, 1e-5))
        << "vatti " << geom::to_string(op) << " " << vat << " vs " << want;
    EXPECT_TRUE(test::areas_match(mar, want, 1e-5))
        << "martinez " << geom::to_string(op) << " " << mar << " vs "
        << want;
    EXPECT_TRUE(test::areas_match(a1, want, 1e-5))
        << "algorithm1 " << geom::to_string(op) << " " << a1 << " vs "
        << want;
    EXPECT_TRUE(test::areas_match(a2, want, 1e-5))
        << "algorithm2 " << geom::to_string(op) << " " << a2 << " vs "
        << want;
  }
}

std::vector<XCase> make_cases() {
  std::vector<XCase> cases;
  std::uint64_t seed = 77000;
  for (int rep = 0; rep < 8; ++rep) {
    cases.push_back({seed++, 10 + rep * 8, false});
    cases.push_back({seed++, 40 + rep * 30, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Shapes, CrossEngine,
                         ::testing::ValuesIn(make_cases()));

TEST(CrossEngine, MultisetAgreesWithSequentialOnLayers) {
  par::ThreadPool pool(3);
  const PolygonSet a = data::polygon_field(501, 36, 80.0, 9);
  const PolygonSet b = data::polygon_field(502, 36, 80.0, 8);
  for (const BoolOp op : geom::kAllOps) {
    const double seq_area = geom::signed_area(seq::vatti_clip(a, b, op));
    mt::MultisetOptions o;
    o.slabs = 3;
    const double par_area =
        geom::signed_area(mt::multiset_clip(a, b, op, pool, o));
    EXPECT_TRUE(test::areas_match(par_area, seq_area, 1e-5))
        << geom::to_string(op);
  }
}

}  // namespace
}  // namespace psclip
