#include "geom/wkt.hpp"

#include <gtest/gtest.h>

namespace psclip::geom {
namespace {

TEST(Wkt, WriteSingleRing) {
  const PolygonSet p = make_polygon({{0, 0}, {4, 0}, {4, 4}});
  const std::string w = to_wkt(p);
  EXPECT_NE(w.find("MULTIPOLYGON"), std::string::npos);
  EXPECT_NE(w.find("0 0"), std::string::npos);
  EXPECT_NE(w.find("4 4"), std::string::npos);
}

TEST(Wkt, EmptySet) {
  EXPECT_EQ(to_wkt(PolygonSet{}), "MULTIPOLYGON EMPTY");
  const auto parsed = from_wkt("MULTIPOLYGON EMPTY");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(Wkt, RoundTripPreservesGeometry) {
  PolygonSet p = make_polygon({{0.5, -1.25}, {4, 0}, {4.75, 4.5}, {-1, 3}});
  p.add({{10, 10}, {12, 10}, {11, 13}});
  const auto parsed = from_wkt(to_wkt(p));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->num_contours(), 2u);
  ASSERT_EQ(parsed->contours[0].size(), 4u);
  for (std::size_t c = 0; c < 2; ++c)
    for (std::size_t i = 0; i < p.contours[c].size(); ++i)
      EXPECT_EQ(parsed->contours[c][i], p.contours[c][i]);
}

TEST(Wkt, ParsePolygonKeyword) {
  const auto p = from_wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->num_contours(), 1u);
  EXPECT_EQ(p->contours[0].size(), 4u);  // closing vertex dropped
  EXPECT_DOUBLE_EQ(signed_area(*p), 16.0);
}

TEST(Wkt, ParsePolygonWithHoleRing) {
  const auto p = from_wkt(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->num_contours(), 2u);
}

TEST(Wkt, ParseCaseInsensitiveAndWhitespace) {
  const auto p = from_wkt("  multipolygon ( (( 0 0 , 1 0 , 0 1 )) )");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->num_contours(), 1u);
}

TEST(Wkt, ParseScientificNotation) {
  const auto p = from_wkt("POLYGON ((0 0, 1e2 0, 1e2 1.5e1, 0 15))");
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(signed_area(*p), 1500.0);
}

TEST(Wkt, RejectsMalformed) {
  EXPECT_FALSE(from_wkt("").has_value());
  EXPECT_FALSE(from_wkt("LINESTRING (0 0, 1 1)").has_value());
  EXPECT_FALSE(from_wkt("POLYGON 0 0, 1 1").has_value());
  EXPECT_FALSE(from_wkt("POLYGON ((0 0, 1 1)").has_value());   // unclosed
  EXPECT_FALSE(from_wkt("POLYGON ((0 0, 1 1))").has_value());  // 2 points
  EXPECT_FALSE(from_wkt("POLYGON ((a b, c d, e f))").has_value());
}

// ---- Hostile-input hardening: every rejection carries a psclip::Error ----
// with the right taxonomy code and the byte offset of the first defect, so
// a defective feed can be diagnosed without bisecting the input by hand.

TEST(Wkt, RejectsNonFiniteCoordinates) {
  // std::from_chars happily parses "inf" and "nan"; the parser must not.
  for (const char* bad :
       {"POLYGON ((0 0, inf 0, 1 1))", "POLYGON ((0 0, 1 nan, 1 1))",
        "POLYGON ((-inf 0, 1 0, 1 1))", "POLYGON ((0 0, 1 0, NaN NaN))"}) {
    Error err(ErrorCode::kParse, "");
    EXPECT_FALSE(from_wkt(bad, &err).has_value()) << bad;
  }
  Error err(ErrorCode::kParse, "");
  ASSERT_FALSE(from_wkt("POLYGON ((0 0, inf 0, 1 1))", &err).has_value());
  EXPECT_EQ(err.code(), ErrorCode::kNonFinite);
  EXPECT_EQ(err.offset(), 15u);  // points at the 'i' of "inf"
}

TEST(Wkt, RejectsOverflowingCoordinates) {
  Error err(ErrorCode::kParse, "");
  ASSERT_FALSE(from_wkt("POLYGON ((0 0, 1e999 0, 1 1))", &err).has_value());
  EXPECT_EQ(err.code(), ErrorCode::kNonFinite);
  EXPECT_NE(std::string(err.what()).find("overflow"), std::string::npos)
      << err.what();
  EXPECT_EQ(err.offset(), 15u);
}

TEST(Wkt, RejectsTruncationWithOffset) {
  const std::string doc = "POLYGON ((0 0, 4 0, 4 4";
  Error err(ErrorCode::kParse, "");
  ASSERT_FALSE(from_wkt(doc, &err).has_value());
  EXPECT_EQ(err.code(), ErrorCode::kParse);
  EXPECT_LE(err.offset(), doc.size());
  EXPECT_NE(err.offset(), Error::kNoOffset);
}

TEST(Wkt, RejectsTrailingGarbage) {
  Error err(ErrorCode::kParse, "");
  ASSERT_FALSE(
      from_wkt("POLYGON ((0 0, 4 0, 4 4)) SELECT 1", &err).has_value());
  EXPECT_EQ(err.code(), ErrorCode::kParse);
  EXPECT_EQ(err.offset(), 26u);  // first byte past the geometry
}

TEST(Wkt, RejectsUnknownTypeWithError) {
  Error err(ErrorCode::kParse, "");
  ASSERT_FALSE(from_wkt("LINESTRING (0 0, 1 1)", &err).has_value());
  EXPECT_EQ(err.code(), ErrorCode::kParse);
  EXPECT_EQ(err.offset(), 0u);
  EXPECT_NE(std::string(err.what()).find("POLYGON"), std::string::npos);
}

TEST(Wkt, ShortRingReportsRingStart) {
  Error err(ErrorCode::kParse, "");
  ASSERT_FALSE(from_wkt("POLYGON ((0 0, 1 1))", &err).has_value());
  EXPECT_EQ(err.code(), ErrorCode::kParse);
  EXPECT_NE(std::string(err.what()).find("at least 3"), std::string::npos)
      << err.what();
}

TEST(Wkt, ErrorOutParamIsOptional) {
  // Source compatibility: the error pointer defaults to nullptr.
  EXPECT_FALSE(from_wkt("POLYGON ((0 0, inf 0, 1 1))").has_value());
}

}  // namespace
}  // namespace psclip::geom
