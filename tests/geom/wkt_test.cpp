#include "geom/wkt.hpp"

#include <gtest/gtest.h>

namespace psclip::geom {
namespace {

TEST(Wkt, WriteSingleRing) {
  const PolygonSet p = make_polygon({{0, 0}, {4, 0}, {4, 4}});
  const std::string w = to_wkt(p);
  EXPECT_NE(w.find("MULTIPOLYGON"), std::string::npos);
  EXPECT_NE(w.find("0 0"), std::string::npos);
  EXPECT_NE(w.find("4 4"), std::string::npos);
}

TEST(Wkt, EmptySet) {
  EXPECT_EQ(to_wkt(PolygonSet{}), "MULTIPOLYGON EMPTY");
  const auto parsed = from_wkt("MULTIPOLYGON EMPTY");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(Wkt, RoundTripPreservesGeometry) {
  PolygonSet p = make_polygon({{0.5, -1.25}, {4, 0}, {4.75, 4.5}, {-1, 3}});
  p.add({{10, 10}, {12, 10}, {11, 13}});
  const auto parsed = from_wkt(to_wkt(p));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->num_contours(), 2u);
  ASSERT_EQ(parsed->contours[0].size(), 4u);
  for (std::size_t c = 0; c < 2; ++c)
    for (std::size_t i = 0; i < p.contours[c].size(); ++i)
      EXPECT_EQ(parsed->contours[c][i], p.contours[c][i]);
}

TEST(Wkt, ParsePolygonKeyword) {
  const auto p = from_wkt("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  ASSERT_TRUE(p.has_value());
  ASSERT_EQ(p->num_contours(), 1u);
  EXPECT_EQ(p->contours[0].size(), 4u);  // closing vertex dropped
  EXPECT_DOUBLE_EQ(signed_area(*p), 16.0);
}

TEST(Wkt, ParsePolygonWithHoleRing) {
  const auto p = from_wkt(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->num_contours(), 2u);
}

TEST(Wkt, ParseCaseInsensitiveAndWhitespace) {
  const auto p = from_wkt("  multipolygon ( (( 0 0 , 1 0 , 0 1 )) )");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->num_contours(), 1u);
}

TEST(Wkt, ParseScientificNotation) {
  const auto p = from_wkt("POLYGON ((0 0, 1e2 0, 1e2 1.5e1, 0 15))");
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(signed_area(*p), 1500.0);
}

TEST(Wkt, RejectsMalformed) {
  EXPECT_FALSE(from_wkt("").has_value());
  EXPECT_FALSE(from_wkt("LINESTRING (0 0, 1 1)").has_value());
  EXPECT_FALSE(from_wkt("POLYGON 0 0, 1 1").has_value());
  EXPECT_FALSE(from_wkt("POLYGON ((0 0, 1 1)").has_value());   // unclosed
  EXPECT_FALSE(from_wkt("POLYGON ((0 0, 1 1))").has_value());  // 2 points
  EXPECT_FALSE(from_wkt("POLYGON ((a b, c d, e f))").has_value());
}

}  // namespace
}  // namespace psclip::geom
