#include "geom/sanitize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "geom/polygon.hpp"

namespace psclip::geom {
namespace {

using Kind = ValidationIssue::Kind;

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Sanitize, CleanInputPassesThroughBitUnchanged) {
  PolygonSet p;
  p.add({{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}});
  p.add({{2.0, 2.0}, {2.0, 4.0}, {4.0, 4.0}}, /*hole=*/true);

  std::vector<ValidationIssue> issues;
  const PolygonSet out = sanitize(p, &issues);
  EXPECT_TRUE(issues.empty());
  ASSERT_EQ(out.num_contours(), p.num_contours());
  for (std::size_t i = 0; i < p.contours.size(); ++i) {
    EXPECT_EQ(out.contours[i].hole, p.contours[i].hole);
    ASSERT_EQ(out.contours[i].pts.size(), p.contours[i].pts.size());
    for (std::size_t j = 0; j < p.contours[i].pts.size(); ++j) {
      EXPECT_EQ(out.contours[i][j].x, p.contours[i][j].x);
      EXPECT_EQ(out.contours[i][j].y, p.contours[i][j].y);
    }
  }
}

TEST(Sanitize, StripsNonFiniteVertices) {
  PolygonSet p;
  p.add({{0.0, 0.0}, {kNan, 5.0}, {10.0, 0.0}, {10.0, kInf}, {10.0, 10.0},
         {0.0, 10.0}});
  std::vector<ValidationIssue> issues;
  const PolygonSet out = sanitize(p, &issues);
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_EQ(out.contours[0].pts.size(), 4u);
  for (const auto& pt : out.contours[0].pts) {
    EXPECT_TRUE(std::isfinite(pt.x));
    EXPECT_TRUE(std::isfinite(pt.y));
  }
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_EQ(issues[0].kind, Kind::kNonFiniteVertex);
  EXPECT_EQ(issues[0].vertex, 1u);
  EXPECT_EQ(issues[1].kind, Kind::kNonFiniteVertex);
  EXPECT_EQ(issues[1].vertex, 3u);
}

TEST(Sanitize, CollapsesConsecutiveDuplicates) {
  PolygonSet p;
  p.add({{0.0, 0.0}, {0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {10.0, 10.0},
         {10.0, 10.0}, {0.0, 10.0}});
  std::vector<ValidationIssue> issues;
  const PolygonSet out = sanitize(p, &issues);
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_EQ(out.contours[0].pts.size(), 4u);
  EXPECT_EQ(issues.size(), 3u);
  for (const auto& i : issues) EXPECT_EQ(i.kind, Kind::kDuplicateVertex);
}

TEST(Sanitize, DropsExplicitClosingVertex) {
  // WKT-style explicitly closed ring: the trailing copy of the first vertex
  // is the same defect as a consecutive duplicate and must go.
  PolygonSet p;
  p.add({{0.0, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}, {0.0, 0.0}});
  std::vector<ValidationIssue> issues;
  const PolygonSet out = sanitize(p, &issues);
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_EQ(out.contours[0].pts.size(), 4u);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].kind, Kind::kDuplicateVertex);
  EXPECT_EQ(issues[0].detail, "duplicates the first vertex");
}

TEST(Sanitize, DropsContoursLeftWithTooFewVertices) {
  PolygonSet p;
  // Repair leaves 2 vertices -> dropped.
  p.add({{0.0, 0.0}, {kNan, kNan}, {1.0, 1.0}});
  // Healthy contour stays.
  p.add({{20.0, 20.0}, {30.0, 20.0}, {25.0, 30.0}});
  std::vector<ValidationIssue> issues;
  const PolygonSet out = sanitize(p, &issues);
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_EQ(out.contours[0][0].x, 20.0);
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_EQ(issues[0].kind, Kind::kNonFiniteVertex);
  EXPECT_EQ(issues[1].kind, Kind::kTooFewVertices);
  EXPECT_EQ(issues[1].contour, 0u);
}

TEST(Sanitize, LeavesSelfIntersectionsAlone) {
  // Even-odd clipping handles self-intersecting input; sanitize must only
  // repair what the clippers genuinely cannot digest.
  PolygonSet p;
  p.add({{0.0, 0.0}, {10.0, 10.0}, {10.0, 0.0}, {0.0, 10.0}});  // bowtie
  std::vector<ValidationIssue> issues;
  const PolygonSet out = sanitize(p, &issues);
  EXPECT_TRUE(issues.empty());
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_EQ(out.contours[0].pts.size(), 4u);
}

TEST(Sanitize, ContourCollapsingToExactlyThreeVerticesSurvives) {
  // Repair leaves exactly 3 vertices — the minimum legal ring — so the
  // contour must be kept, not dropped by the too-few-vertices pass.
  PolygonSet p;
  p.add({{0.0, 0.0}, {0.0, 0.0}, {10.0, 0.0}, {kNan, 3.0}, {5.0, 10.0}});
  std::vector<ValidationIssue> issues;
  const PolygonSet out = sanitize(p, &issues);
  ASSERT_EQ(out.num_contours(), 1u);
  ASSERT_EQ(out.contours[0].pts.size(), 3u);
  EXPECT_EQ(out.contours[0][0].x, 0.0);
  EXPECT_EQ(out.contours[0][1].x, 10.0);
  EXPECT_EQ(out.contours[0][2].x, 5.0);
  ASSERT_EQ(issues.size(), 2u);
  for (const auto& i : issues) EXPECT_NE(i.kind, Kind::kTooFewVertices);
}

TEST(Sanitize, AllContoursDroppedYieldsEmptySet) {
  PolygonSet p;
  p.add({{0.0, 0.0}, {1.0, 1.0}});                    // too few from the start
  p.add({{kNan, kNan}, {kInf, 0.0}, {0.0, kNan}});    // fully non-finite
  p.add({{3.0, 3.0}, {3.0, 3.0}, {3.0, 3.0}, {3.0, 3.0}});  // one point
  std::vector<ValidationIssue> issues;
  const PolygonSet out = sanitize(p, &issues);
  EXPECT_EQ(out.num_contours(), 0u);
  EXPECT_TRUE(out.contours.empty());
  // Every input contour must be reported dropped.
  std::size_t dropped = 0;
  for (const auto& i : issues)
    if (i.kind == Kind::kTooFewVertices) ++dropped;
  EXPECT_EQ(dropped, 3u);
}

TEST(Sanitize, Idempotent) {
  // sanitize(sanitize(x)) == sanitize(x), bit for bit: the first pass
  // removes every defect it knows, so the second finds nothing.
  PolygonSet p;
  p.add({{0.0, 0.0}, {0.0, 0.0}, {kNan, 5.0}, {10.0, 0.0}, {10.0, 10.0},
         {0.0, 10.0}, {0.0, 0.0}});
  p.add({{1.0, 1.0}, {kInf, kInf}, {2.0, 2.0}});
  p.add({{20.0, 20.0}, {30.0, 20.0}, {25.0, 30.0}}, /*hole=*/true);
  const PolygonSet once = sanitize(p);
  std::vector<ValidationIssue> issues;
  const PolygonSet twice = sanitize(once, &issues);
  EXPECT_TRUE(issues.empty());
  ASSERT_EQ(twice.num_contours(), once.num_contours());
  for (std::size_t i = 0; i < once.contours.size(); ++i) {
    EXPECT_EQ(twice.contours[i].hole, once.contours[i].hole);
    ASSERT_EQ(twice.contours[i].pts.size(), once.contours[i].pts.size());
    for (std::size_t j = 0; j < once.contours[i].pts.size(); ++j) {
      EXPECT_EQ(twice.contours[i][j].x, once.contours[i][j].x);
      EXPECT_EQ(twice.contours[i][j].y, once.contours[i][j].y);
    }
  }
}

TEST(Sanitize, IssuesPointerIsOptional) {
  PolygonSet p;
  p.add({{0.0, 0.0}, {kNan, 0.0}, {10.0, 0.0}, {10.0, 10.0}, {0.0, 10.0}});
  const PolygonSet out = sanitize(p);  // must not dereference null
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_EQ(out.contours[0].pts.size(), 4u);
}

}  // namespace
}  // namespace psclip::geom
