#include "geom/nesting.hpp"

#include <gtest/gtest.h>

#include "seq/vatti.hpp"

namespace psclip::geom {
namespace {

PolygonSet square(double x0, double y0, double s) {
  return make_polygon({{x0, y0}, {x0 + s, y0}, {x0 + s, y0 + s}, {x0, y0 + s}});
}

TEST(Nesting, SingleShell) {
  const auto nested = nest_contours(square(0, 0, 4));
  ASSERT_EQ(nested.size(), 1u);
  EXPECT_TRUE(nested[0].holes.empty());
  EXPECT_GT(signed_area(nested[0].shell), 0.0);
}

TEST(Nesting, ShellWithHole) {
  // Clip a hole out of a square and nest the clipper output.
  const PolygonSet diff =
      seq::vatti_clip(square(0, 0, 10), square(3, 3, 2),
                      BoolOp::kDifference);
  const auto nested = nest_contours(diff);
  ASSERT_EQ(nested.size(), 1u);
  ASSERT_EQ(nested[0].holes.size(), 1u);
  EXPECT_GT(signed_area(nested[0].shell), 0.0);
  EXPECT_LT(signed_area(nested[0].holes[0]), 0.0);
}

TEST(Nesting, IslandInsideHole) {
  // Square minus ring leaves: outer shell with hole, plus an island.
  PolygonSet ring;  // annulus as two even-odd rings
  ring.contours.push_back(make_rect(2, 2, 8, 8));
  ring.contours.push_back(make_rect(4, 4, 6, 6));
  const PolygonSet diff =
      seq::vatti_clip(square(0, 0, 10), ring, BoolOp::kDifference);
  const auto nested = nest_contours(diff);
  ASSERT_EQ(nested.size(), 2u);
  // One polygon has a hole (the outer), one has none (the island).
  const int with_hole =
      static_cast<int>(!nested[0].holes.empty()) +
      static_cast<int>(!nested[1].holes.empty());
  EXPECT_EQ(with_hole, 1);
  // Total area preserved.
  double nested_area = 0.0;
  for (const auto& np : nested) {
    nested_area += signed_area(np.shell);
    for (const auto& h : np.holes) nested_area += signed_area(h);
  }
  EXPECT_NEAR(nested_area, signed_area(diff), 1e-6);
}

TEST(Nesting, DisjointShells) {
  PolygonSet two;
  two.contours.push_back(make_rect(0, 0, 1, 1));
  two.contours.push_back(make_rect(5, 5, 7, 7));
  const auto nested = nest_contours(two);
  EXPECT_EQ(nested.size(), 2u);
  for (const auto& np : nested) EXPECT_TRUE(np.holes.empty());
}

TEST(Nesting, FlattenRoundTrip) {
  const PolygonSet diff =
      seq::vatti_clip(square(0, 0, 10), square(2, 2, 3),
                      BoolOp::kDifference);
  const PolygonSet flat = flatten(nest_contours(diff));
  EXPECT_EQ(flat.num_contours(), diff.num_contours());
  EXPECT_NEAR(signed_area(flat), signed_area(diff), 1e-9);
}

TEST(Nesting, EmptyInput) {
  EXPECT_TRUE(nest_contours({}).empty());
  EXPECT_TRUE(flatten({}).empty());
}

}  // namespace
}  // namespace psclip::geom
