#include "geom/polygon.hpp"

#include <gtest/gtest.h>

namespace psclip::geom {
namespace {

Contour unit_square() { return make_rect(0, 0, 1, 1); }

TEST(Polygon, SignedAreaOrientation) {
  Contour sq = unit_square();
  EXPECT_DOUBLE_EQ(signed_area(sq), 1.0);  // make_rect is CCW
  reverse(sq);
  EXPECT_DOUBLE_EQ(signed_area(sq), -1.0);
}

TEST(Polygon, SignedAreaTriangle) {
  Contour t{{{0, 0}, {4, 0}, {0, 3}}, false};
  EXPECT_DOUBLE_EQ(signed_area(t), 6.0);
}

TEST(Polygon, DegenerateContoursHaveZeroArea) {
  EXPECT_DOUBLE_EQ(signed_area(Contour{}), 0.0);
  EXPECT_DOUBLE_EQ(signed_area(Contour{{{1, 1}}, false}), 0.0);
  EXPECT_DOUBLE_EQ(signed_area(Contour{{{1, 1}, {2, 2}}, false}), 0.0);
}

TEST(Polygon, SetAreaSumsContours) {
  PolygonSet p;
  p.contours.push_back(make_rect(0, 0, 2, 2));  // +4
  Contour hole = make_rect(0.5, 0.5, 1.5, 1.5); // -1 when reversed
  reverse(hole);
  hole.hole = true;
  p.contours.push_back(hole);
  EXPECT_DOUBLE_EQ(signed_area(p), 3.0);
  EXPECT_DOUBLE_EQ(area(p), 3.0);
  EXPECT_EQ(p.num_vertices(), 8u);
  EXPECT_EQ(p.num_contours(), 2u);
}

TEST(Polygon, Bounds) {
  PolygonSet p = make_polygon({{1, 2}, {5, -1}, {3, 7}});
  const BBox b = bounds(p);
  EXPECT_DOUBLE_EQ(b.xmin, 1.0);
  EXPECT_DOUBLE_EQ(b.xmax, 5.0);
  EXPECT_DOUBLE_EQ(b.ymin, -1.0);
  EXPECT_DOUBLE_EQ(b.ymax, 7.0);
  EXPECT_TRUE(bounds(PolygonSet{}).empty());
}

TEST(Polygon, TransformedScalesAndShifts) {
  PolygonSet p = make_polygon({{0, 0}, {1, 0}, {0, 1}});
  PolygonSet q = transformed(p, 2.0, {10, 20});
  EXPECT_EQ(q.contours[0][0], (Point{10, 20}));
  EXPECT_EQ(q.contours[0][1], (Point{12, 20}));
  EXPECT_DOUBLE_EQ(signed_area(q), 4.0 * signed_area(p));
}

TEST(Polygon, CleanedRemovesDuplicatesAndDegenerates) {
  PolygonSet p;
  p.add({{0, 0}, {0, 0}, {1, 0}, {1, 1}, {1, 1}, {0, 1}, {0, 0}});
  p.add({{5, 5}, {5, 5}, {6, 6}});  // collapses below 3 vertices
  const PolygonSet c = cleaned(p);
  ASSERT_EQ(c.num_contours(), 1u);
  EXPECT_EQ(c.contours[0].size(), 4u);
  EXPECT_DOUBLE_EQ(signed_area(c), 1.0);
}

TEST(Polygon, CleanedWithToleranceMergesNearDuplicates) {
  PolygonSet p;
  p.add({{0, 0}, {1e-9, 1e-9}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_EQ(cleaned(p, 1e-6).contours[0].size(), 4u);
  EXPECT_EQ(cleaned(p, 0.0).contours[0].size(), 5u);
}

TEST(Polygon, DescribeMentionsCounts) {
  PolygonSet p = make_polygon({{0, 0}, {1, 0}, {0, 1}});
  const std::string d = describe(p);
  EXPECT_NE(d.find("1 contours"), std::string::npos);
  EXPECT_NE(d.find("3 vertices"), std::string::npos);
}

TEST(Polygon, MakeRectIsCcwAndClosed) {
  const Contour r = make_rect(-1, -2, 3, 4);
  EXPECT_EQ(r.size(), 4u);
  EXPECT_GT(signed_area(r), 0.0);
  EXPECT_DOUBLE_EQ(signed_area(r), 4.0 * 6.0);
}

}  // namespace
}  // namespace psclip::geom
