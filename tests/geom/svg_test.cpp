#include "geom/svg.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace psclip::geom {
namespace {

TEST(Svg, DocumentStructure) {
  SvgWriter w(400);
  w.add_layer(make_polygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}}), "#88c",
              "#224");
  const std::string doc = w.str();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("fill-rule=\"evenodd\""), std::string::npos);
  EXPECT_NE(doc.find("width=\"400\""), std::string::npos);
  EXPECT_NE(doc.find("<path"), std::string::npos);
  EXPECT_NE(doc.find("Z"), std::string::npos);
}

TEST(Svg, MultipleLayersEmitMultiplePaths) {
  SvgWriter w;
  w.add_layer(make_polygon({{0, 0}, {1, 0}, {0, 1}}), "red", "black");
  w.add_layer(make_polygon({{2, 2}, {3, 2}, {2, 3}}), "blue", "black");
  const std::string doc = w.str();
  std::size_t paths = 0, pos = 0;
  while ((pos = doc.find("<path", pos)) != std::string::npos) {
    ++paths;
    pos += 5;
  }
  EXPECT_EQ(paths, 2u);
}

TEST(Svg, EmptyDocumentStillValid) {
  SvgWriter w;
  const std::string doc = w.str();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
}

TEST(Svg, SaveWritesFile) {
  SvgWriter w;
  w.add_layer(make_polygon({{0, 0}, {5, 0}, {0, 5}}), "green", "none");
  const std::string path = testing::TempDir() + "/psclip_svg_test.svg";
  ASSERT_TRUE(w.save(path));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string contents((std::istreambuf_iterator<char>(f)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, w.str());
  std::remove(path.c_str());
}

TEST(Svg, YAxisIsFlippedForScreen) {
  // The lowest data point must map to the largest screen y.
  SvgWriter w(100);
  w.add_layer(make_polygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}}), "red",
              "none");
  const std::string doc = w.str();
  // First command is the first vertex (0,0) — bottom-left in data, so its
  // screen y must be near the bottom (large).
  const auto m = doc.find("d=\"M");
  ASSERT_NE(m, std::string::npos);
  double x = 0, y = 0;
  ASSERT_EQ(std::sscanf(doc.c_str() + m + 4, "%lf %lf", &x, &y), 2);
  EXPECT_GT(y, 50.0);
}

}  // namespace
}  // namespace psclip::geom
