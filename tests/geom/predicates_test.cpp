#include "geom/predicates.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace psclip::geom {
namespace {

TEST(Orient2d, BasicTurns) {
  EXPECT_GT(orient2d({0, 0}, {1, 0}, {0, 1}), 0.0);   // left turn
  EXPECT_LT(orient2d({0, 0}, {1, 0}, {0, -1}), 0.0);  // right turn
  EXPECT_EQ(orient2d({0, 0}, {1, 1}, {2, 2}), 0.0);   // collinear
}

TEST(Orient2d, SignFunction) {
  EXPECT_EQ(orient2d_sign({0, 0}, {1, 0}, {0, 1}), 1);
  EXPECT_EQ(orient2d_sign({0, 0}, {1, 0}, {0, -1}), -1);
  EXPECT_EQ(orient2d_sign({0, 0}, {2, 0}, {5, 0}), 0);
}

TEST(Orient2d, ExactOnNearDegenerateInputs) {
  // Points on the line y = x, offset by one ulp: the naive determinant
  // underflows into rounding noise; the adaptive predicate must still
  // classify exactly.
  const double big = 1e15;
  const Point a{big, big};
  const Point b{big + 1.0, big + 1.0};
  EXPECT_EQ(orient2d_sign(a, b, {0.5, 0.5}), 0);
  EXPECT_EQ(orient2d_sign(a, b, {0.5, std::nextafter(0.5, 1.0)}), 1);
  EXPECT_EQ(orient2d_sign(a, b, {0.5, std::nextafter(0.5, 0.0)}), -1);
}

TEST(Orient2d, ConsistencyUnderPermutation) {
  // orient2d(a,b,c) = orient2d(b,c,a) = orient2d(c,a,b) in sign, and
  // flips under swaps — exercised across many near-collinear triples.
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int i = 0; i < 2000; ++i) {
    const Point a{u(rng), u(rng)};
    const Point b{u(rng), u(rng)};
    // c close to the line through a, b.
    const double t = u(rng);
    const Point on{a.x + t * (b.x - a.x), a.y + t * (b.y - a.y)};
    const Point c{on.x + u(rng) * 1e-15, on.y + u(rng) * 1e-15};
    const int s = orient2d_sign(a, b, c);
    EXPECT_EQ(orient2d_sign(b, c, a), s);
    EXPECT_EQ(orient2d_sign(c, a, b), s);
    EXPECT_EQ(orient2d_sign(b, a, c), -s);
  }
}

TEST(OnSegment, EndpointsInteriorAndBeyond) {
  const Point a{0, 0}, b{4, 2};
  EXPECT_TRUE(on_segment(a, b, a));
  EXPECT_TRUE(on_segment(a, b, b));
  EXPECT_TRUE(on_segment(a, b, {2, 1}));
  EXPECT_FALSE(on_segment(a, b, {6, 3}));    // collinear but beyond
  EXPECT_FALSE(on_segment(a, b, {-2, -1}));  // collinear but before
  EXPECT_FALSE(on_segment(a, b, {2, 1.0001}));
}

TEST(OnSegment, VerticalAndHorizontal) {
  EXPECT_TRUE(on_segment({1, 0}, {1, 5}, {1, 3}));
  EXPECT_FALSE(on_segment({1, 0}, {1, 5}, {1, 6}));
  EXPECT_TRUE(on_segment({0, 2}, {7, 2}, {3, 2}));
  EXPECT_FALSE(on_segment({0, 2}, {7, 2}, {8, 2}));
}

TEST(LeftOf, MatchesOrientation) {
  EXPECT_TRUE(left_of({0, 0}, {1, 0}, {0.5, 1}));
  EXPECT_FALSE(left_of({0, 0}, {1, 0}, {0.5, -1}));
  EXPECT_FALSE(left_of({0, 0}, {1, 0}, {0.5, 0}));  // on line: not strict
}

}  // namespace
}  // namespace psclip::geom
