#include "geom/perturb.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/area_oracle.hpp"

namespace psclip::geom {
namespace {

TEST(RemoveHorizontals, SquareBecomesHorizontalFree) {
  PolygonSet p = make_polygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  EXPECT_TRUE(has_horizontal_edges(p));
  const int moved = remove_horizontals(p);
  EXPECT_GT(moved, 0);
  EXPECT_FALSE(has_horizontal_edges(p));
}

TEST(RemoveHorizontals, AreaChangeIsTiny) {
  PolygonSet p = make_polygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  const double before = even_odd_area(p);
  remove_horizontals(p);
  EXPECT_NEAR(even_odd_area(p), before, 1e-5);
}

TEST(RemoveHorizontals, NoOpWithoutHorizontals) {
  PolygonSet p = make_polygon({{0, 0}, {10, 1}, {9, 10}, {-1, 9}});
  EXPECT_FALSE(has_horizontal_edges(p));
  EXPECT_EQ(remove_horizontals(p), 0);
}

TEST(RemoveHorizontals, StaircaseConverges) {
  // Many consecutive horizontals of alternating direction: the repeated
  // passes must still reach a horizontal-free fixpoint.
  PolygonSet p = make_polygon({{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 0},
                               {3, 0}, {3, 3}, {0, 3}});
  remove_horizontals(p);
  EXPECT_FALSE(has_horizontal_edges(p));
}

TEST(RemoveHorizontals, NearHorizontalNoiseIsRemoved) {
  // Edges with |dy| ~ 1e-15 (floating-point noise from upstream clipping)
  // are as degenerate for a sweep as exact horizontals and must be
  // perturbed away too.
  PolygonSet p = make_polygon(
      {{0, 0}, {10, 1e-15}, {10, 10}, {0, 10.0 + 1e-14}});
  remove_horizontals(p);
  const auto& c = p.contours[0];
  for (std::size_t i = 0, j = c.size() - 1; i < c.size(); j = i++) {
    const double dy = std::fabs(c[j].y - c[i].y);
    EXPECT_GT(dy, 1e-12) << "edge " << j << "->" << i;
  }
}

TEST(RemoveHorizontals, DeterministicPerContour) {
  // The same contour must perturb identically regardless of which polygon
  // set carries it (multiset dedup relies on this).
  PolygonSet lone = make_polygon({{0, 0}, {5, 0}, {5, 5}, {0, 5}});
  PolygonSet with_others = lone;
  with_others.add({{100, 100}, {101, 100}, {101, 101}});
  remove_horizontals(lone);
  remove_horizontals(with_others);
  ASSERT_EQ(lone.contours[0].size(), with_others.contours[0].size());
  for (std::size_t i = 0; i < lone.contours[0].size(); ++i)
    EXPECT_EQ(lone.contours[0][i], with_others.contours[0][i]);
}

TEST(Jitter, DeterministicInSeed) {
  PolygonSet a = make_polygon({{0, 0}, {5, 0}, {5, 5}});
  PolygonSet b = a;
  PolygonSet c = a;
  jitter(a, 1e-3, 42);
  jitter(b, 1e-3, 42);
  jitter(c, 1e-3, 43);
  EXPECT_EQ(a.contours[0][1], b.contours[0][1]);
  EXPECT_NE(a.contours[0][1], c.contours[0][1]);
}

TEST(Jitter, BoundedMagnitude) {
  PolygonSet a = make_polygon({{0, 0}, {5, 0}, {5, 5}});
  const PolygonSet orig = a;
  jitter(a, 1e-3, 7);
  for (std::size_t i = 0; i < a.contours[0].size(); ++i) {
    EXPECT_LE(std::fabs(a.contours[0][i].x - orig.contours[0][i].x), 1e-3);
    EXPECT_LE(std::fabs(a.contours[0][i].y - orig.contours[0][i].y), 1e-3);
  }
}

TEST(RemoveHorizontals, EmptyInput) {
  PolygonSet p;
  EXPECT_EQ(remove_horizontals(p), 0);
  EXPECT_FALSE(has_horizontal_edges(p));
}

}  // namespace
}  // namespace psclip::geom
