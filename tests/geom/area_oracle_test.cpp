#include "geom/area_oracle.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace psclip::geom {
namespace {

PolygonSet square(double x0, double y0, double s) {
  return make_polygon({{x0, y0}, {x0 + s, y0}, {x0 + s, y0 + s}, {x0, y0 + s}});
}

TEST(BoolOp, InResultTruthTable) {
  EXPECT_TRUE(in_result(true, true, BoolOp::kIntersection));
  EXPECT_FALSE(in_result(true, false, BoolOp::kIntersection));
  EXPECT_TRUE(in_result(true, false, BoolOp::kUnion));
  EXPECT_FALSE(in_result(false, false, BoolOp::kUnion));
  EXPECT_TRUE(in_result(true, false, BoolOp::kDifference));
  EXPECT_FALSE(in_result(true, true, BoolOp::kDifference));
  EXPECT_TRUE(in_result(false, true, BoolOp::kXor));
  EXPECT_FALSE(in_result(true, true, BoolOp::kXor));
}

TEST(BoolOp, Names) {
  EXPECT_STREQ(to_string(BoolOp::kIntersection), "INT");
  EXPECT_STREQ(to_string(BoolOp::kUnion), "UNION");
  EXPECT_STREQ(to_string(BoolOp::kDifference), "DIFF");
  EXPECT_STREQ(to_string(BoolOp::kXor), "XOR");
}

TEST(AreaOracle, OverlappingSquares) {
  const PolygonSet a = square(0, 0, 10);
  const PolygonSet b = square(5, 5, 10);
  EXPECT_NEAR(boolean_area_oracle(a, b, BoolOp::kIntersection), 25.0, 1e-9);
  EXPECT_NEAR(boolean_area_oracle(a, b, BoolOp::kUnion), 175.0, 1e-9);
  EXPECT_NEAR(boolean_area_oracle(a, b, BoolOp::kDifference), 75.0, 1e-9);
  EXPECT_NEAR(boolean_area_oracle(a, b, BoolOp::kXor), 150.0, 1e-9);
}

TEST(AreaOracle, DisjointAndContained) {
  const PolygonSet a = square(0, 0, 4);
  const PolygonSet far = square(10, 10, 2);
  EXPECT_NEAR(boolean_area_oracle(a, far, BoolOp::kIntersection), 0.0, 1e-12);
  EXPECT_NEAR(boolean_area_oracle(a, far, BoolOp::kUnion), 20.0, 1e-9);
  const PolygonSet inner = square(1, 1, 2);
  EXPECT_NEAR(boolean_area_oracle(a, inner, BoolOp::kIntersection), 4.0, 1e-9);
  EXPECT_NEAR(boolean_area_oracle(a, inner, BoolOp::kDifference), 12.0, 1e-9);
}

TEST(AreaOracle, TriangleSquareExact) {
  const PolygonSet tri = make_polygon({{0, 0}, {8, 0}, {0, 8}});
  const PolygonSet sq = square(0, 0, 6);
  // The hypotenuse x + y = 8 cuts the 6x6 square's top-right corner
  // triangle (legs of length 4, area 8): INT = 36 - 8 = 28.
  EXPECT_NEAR(boolean_area_oracle(tri, sq, BoolOp::kIntersection), 28.0, 1e-9);
  EXPECT_NEAR(boolean_area_oracle(tri, sq, BoolOp::kUnion), 40.0, 1e-9);
}

TEST(EvenOddArea, SimpleAndSelfIntersecting) {
  EXPECT_NEAR(even_odd_area(square(0, 0, 3)), 9.0, 1e-9);
  // Bowtie {0,0},{4,2},{4,0},{0,2}: lobes are triangles with combined
  // even-odd area 4 (shoelace would cancel to 0).
  const PolygonSet bow = make_polygon({{0, 0}, {4, 2}, {4, 0}, {0, 2}});
  EXPECT_NEAR(even_odd_area(bow), 4.0, 1e-9);
  EXPECT_NEAR(signed_area(bow), 0.0, 1e-12);
}

TEST(EvenOddArea, OverlapCancelsByParity) {
  PolygonSet p = square(0, 0, 4);
  p.contours.push_back(make_rect(1, 1, 3, 3));  // doubly covered: excluded
  EXPECT_NEAR(even_odd_area(p), 16.0 - 4.0, 1e-9);
}

TEST(AreaOracle, SymmetryProperties) {
  const PolygonSet a = make_polygon({{0, 0}, {7, 1}, {5, 6}, {1, 5}});
  const PolygonSet b = make_polygon({{3, 2}, {9, 3}, {8, 8}});
  const double ab_int = boolean_area_oracle(a, b, BoolOp::kIntersection);
  const double ba_int = boolean_area_oracle(b, a, BoolOp::kIntersection);
  EXPECT_NEAR(ab_int, ba_int, 1e-9);
  const double uni = boolean_area_oracle(a, b, BoolOp::kUnion);
  const double da = boolean_area_oracle(a, b, BoolOp::kDifference);
  const double db = boolean_area_oracle(b, a, BoolOp::kDifference);
  EXPECT_NEAR(uni, ab_int + da + db, 1e-9);
  EXPECT_NEAR(boolean_area_oracle(a, b, BoolOp::kXor), da + db, 1e-9);
}

TEST(AreaOracle, EmptyInputs) {
  const PolygonSet a = square(0, 0, 2);
  const PolygonSet none;
  EXPECT_NEAR(boolean_area_oracle(a, none, BoolOp::kIntersection), 0.0, 1e-12);
  EXPECT_NEAR(boolean_area_oracle(a, none, BoolOp::kUnion), 4.0, 1e-9);
  EXPECT_NEAR(boolean_area_oracle(none, a, BoolOp::kDifference), 0.0, 1e-12);
  EXPECT_NEAR(boolean_area_oracle(none, none, BoolOp::kUnion), 0.0, 1e-12);
}

}  // namespace
}  // namespace psclip::geom
