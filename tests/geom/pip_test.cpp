#include "geom/point_in_polygon.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace psclip::geom {
namespace {

PolygonSet square() { return make_polygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}}); }

TEST(PointInPolygon, SimpleSquare) {
  const PolygonSet p = square();
  EXPECT_TRUE(point_in_polygon({2, 2}, p));
  EXPECT_FALSE(point_in_polygon({5, 2}, p));
  EXPECT_FALSE(point_in_polygon({-1, 2}, p));
  EXPECT_FALSE(point_in_polygon({2, 5}, p));
}

TEST(PointInPolygon, BoundaryCountsAsInside) {
  const PolygonSet p = square();
  EXPECT_TRUE(point_in_polygon({0, 2}, p));   // on left edge
  EXPECT_TRUE(point_in_polygon({2, 0}, p));   // on bottom edge
  EXPECT_TRUE(point_in_polygon({0, 0}, p));   // vertex
  EXPECT_TRUE(point_in_polygon({4, 4}, p));   // vertex
}

TEST(PointInPolygon, EvenOddWithHoleRing) {
  PolygonSet p = square();
  p.add({{1, 1}, {3, 1}, {3, 3}, {1, 3}});  // inner ring = hole (even-odd)
  EXPECT_FALSE(point_in_polygon({2, 2}, p));  // inside both rings: parity 2
  EXPECT_TRUE(point_in_polygon({0.5, 0.5}, p));
  EXPECT_FALSE(point_in_polygon({5, 5}, p));
}

TEST(PointInPolygon, SelfIntersectingBowtie) {
  // Bowtie crossing at (2, 1): two triangular lobes are interior, the
  // region between the crossing and the vertical edges is not.
  const PolygonSet p = make_polygon({{0, 0}, {4, 2}, {4, 0}, {0, 2}});
  EXPECT_TRUE(point_in_polygon({0.5, 1.0}, p));   // left lobe
  EXPECT_TRUE(point_in_polygon({3.5, 1.0}, p));   // right lobe
  EXPECT_FALSE(point_in_polygon({2.0, 1.8}, p));  // above the crossing
  EXPECT_FALSE(point_in_polygon({2.0, 0.2}, p));  // below the crossing
}

TEST(PointInPolygon, ConcaveChevron) {
  const PolygonSet p = make_polygon({{0, 0}, {6, 0}, {6, 6}, {3, 2}, {0, 6}});
  EXPECT_TRUE(point_in_polygon({1, 1}, p));
  EXPECT_FALSE(point_in_polygon({3, 5}, p));  // inside the notch
  EXPECT_TRUE(point_in_polygon({5.5, 5}, p));
}

TEST(PointInPolygon, VertexLevelRayDoesNotDoubleCount) {
  // Query exactly at the y of a vertex: the half-open edge rule must count
  // each crossing once.
  const PolygonSet p = make_polygon({{0, 0}, {2, 2}, {4, 0}, {4, 4}, {0, 4}});
  EXPECT_TRUE(point_in_polygon({3.5, 2.0}, p));
  EXPECT_FALSE(point_in_polygon({-1.0, 2.0}, p));
  EXPECT_FALSE(point_in_polygon({5.0, 2.0}, p));
}

TEST(CrossingsLeftOf, CountsEdges) {
  const PolygonSet p = square();
  EXPECT_EQ(crossings_left_of({5, 2}, p), 2);   // both vertical edges
  EXPECT_EQ(crossings_left_of({2, 2}, p), 1);   // only the left edge
  EXPECT_EQ(crossings_left_of({-1, 2}, p), 0);
  EXPECT_EQ(crossings_left_of({2, 9}, p), 0);   // above the polygon
}

TEST(CrossingsLeftOf, ParityMatchesMembership) {
  const PolygonSet p =
      make_polygon({{0, 0}, {6, 1}, {5, 5}, {3, 2.5}, {1, 5.5}});
  for (double x = -1.0; x <= 7.0; x += 0.37) {
    for (double y = -1.0; y <= 6.5; y += 0.41) {
      const Point q{x, y};
      EXPECT_EQ(crossings_left_of(q, p) % 2 == 1, point_in_polygon(q, p))
          << "at " << x << "," << y;
    }
  }
}

TEST(PointInContour, SingleContour) {
  const Contour c = make_rect(0, 0, 2, 2);
  EXPECT_TRUE(point_in_contour({1, 1}, c));
  EXPECT_FALSE(point_in_contour({3, 1}, c));
}

}  // namespace
}  // namespace psclip::geom
