#include "geom/validate.hpp"

#include <gtest/gtest.h>

#include "seq/martinez.hpp"
#include "seq/vatti.hpp"
#include "test_support.hpp"

namespace psclip::geom {
namespace {

using Kind = ValidationIssue::Kind;

bool has(const std::vector<ValidationIssue>& issues, Kind k) {
  for (const auto& i : issues)
    if (i.kind == k) return true;
  return false;
}

TEST(Validate, CleanSquareIsValid) {
  const PolygonSet p = make_polygon({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  EXPECT_TRUE(is_valid_output(p));
  EXPECT_TRUE(validation_report(p).empty());
}

TEST(Validate, DetectsTooFewVertices) {
  PolygonSet p;
  p.add({{0, 0}, {1, 1}});
  EXPECT_TRUE(has(validate(p), Kind::kTooFewVertices));
}

TEST(Validate, DetectsDuplicateVertex) {
  PolygonSet p;
  p.add({{0, 0}, {4, 0}, {4, 0}, {4, 4}, {0, 4}});
  EXPECT_TRUE(has(validate(p), Kind::kDuplicateVertex));
}

TEST(Validate, DetectsSelfIntersection) {
  const PolygonSet bow = make_polygon({{0, 0}, {4, 2}, {4, 0}, {0, 2}});
  const auto issues = validate(bow);
  EXPECT_TRUE(has(issues, Kind::kSelfIntersection));
  EXPECT_FALSE(validation_report(bow).empty());
}

TEST(Validate, DetectsSpike) {
  PolygonSet p;
  p.add({{0, 0}, {4, 0}, {8, 0.01}, {4, 0}, {2, 3}});
  // v[1] = v[3] with the excursion to (8, 0.01) between them.
  EXPECT_TRUE(has(validate(p), Kind::kSpike));
}

TEST(Validate, DetectsHoleOrientationMismatch) {
  Contour hole = make_rect(1, 1, 2, 2);  // counter-clockwise...
  hole.hole = true;                      // ...but flagged as a hole
  PolygonSet p;
  p.contours.push_back(make_rect(0, 0, 4, 4));
  p.contours.push_back(hole);
  EXPECT_TRUE(has(validate(p), Kind::kHoleOrientation));
}

TEST(Validate, DetectsCrossContourCrossing) {
  PolygonSet p;
  p.contours.push_back(make_rect(0, 0, 4, 4));
  p.contours.push_back(Contour{{{2, -1}, {6, 2}, {2, 5}}, false});
  EXPECT_TRUE(has(validate(p), Kind::kCrossContourCrossing));
}

TEST(Validate, NestedRingsAreFine) {
  PolygonSet p;
  p.contours.push_back(make_rect(0, 0, 10, 10));
  Contour hole = make_rect(2, 2, 4, 4);
  reverse(hole);
  hole.hole = true;
  p.contours.push_back(hole);
  EXPECT_TRUE(is_valid_output(p));
}

TEST(Validate, ZeroAreaWithEpsilon) {
  PolygonSet p;
  p.add({{0, 0}, {4, 0}, {2, 1e-9}});
  EXPECT_FALSE(has(validate(p, 0.0), Kind::kZeroArea));
  EXPECT_TRUE(has(validate(p, 1e-6), Kind::kZeroArea));
}

// The quality gate the module exists for: clipper outputs validate clean
// across a random corpus, including self-intersecting inputs.
class OutputValidity : public ::testing::TestWithParam<int> {};

TEST_P(OutputValidity, VattiOutputsAreStructurallyValid) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const PolygonSet a =
      test::random_polygon(seed * 2 + 1, 14 + GetParam() * 2, 0, 0, 10,
                           GetParam() % 3 == 0);
  const PolygonSet b =
      test::random_polygon(seed * 2 + 2, 10 + GetParam(), 1, -1, 8, false);
  for (const BoolOp op : kAllOps) {
    const PolygonSet r = seq::vatti_clip(a, b, op);
    EXPECT_TRUE(is_valid_output(r))
        << to_string(op) << "\n" << validation_report(r);
  }
}

TEST_P(OutputValidity, MartinezOutputsHaveNoProperCrossings) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) + 500;
  const PolygonSet a =
      test::random_polygon(seed * 2 + 1, 12 + GetParam() * 2, 0, 0, 10);
  const PolygonSet b =
      test::random_polygon(seed * 2 + 2, 9 + GetParam(), 2, 1, 8);
  for (const BoolOp op : kAllOps) {
    const PolygonSet r = seq::martinez_clip(a, b, op);
    const auto issues = validate(r);
    // Martinez's Eulerian reconnection may trace touching rings through a
    // pinch differently, but proper crossings are never acceptable.
    EXPECT_FALSE(has(issues, Kind::kSelfIntersection)) << to_string(op);
    EXPECT_FALSE(has(issues, Kind::kCrossContourCrossing)) << to_string(op);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, OutputValidity, ::testing::Range(0, 10));

}  // namespace
}  // namespace psclip::geom
