#include "geom/geojson.hpp"

#include <gtest/gtest.h>

#include "seq/vatti.hpp"

namespace psclip::geom {
namespace {

PolygonSet square(double x0, double y0, double s) {
  return make_polygon({{x0, y0}, {x0 + s, y0}, {x0 + s, y0 + s}, {x0, y0 + s}});
}

TEST(GeoJson, WriteSimplePolygon) {
  const std::string j = to_geojson(square(0, 0, 2));
  EXPECT_NE(j.find("\"type\":\"MultiPolygon\""), std::string::npos);
  EXPECT_NE(j.find("\"coordinates\""), std::string::npos);
  EXPECT_NE(j.find("[0,0]"), std::string::npos);
  EXPECT_NE(j.find("[2,2]"), std::string::npos);
}

TEST(GeoJson, RoundTripSimple) {
  const PolygonSet p = make_polygon({{0.5, -1.25}, {4, 0}, {4.75, 4.5}});
  const auto back = from_geojson(to_geojson(p));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->num_contours(), 1u);
  EXPECT_NEAR(signed_area(*back), signed_area(p), 1e-12);
}

TEST(GeoJson, RoundTripWithHoles) {
  const PolygonSet diff = seq::vatti_clip(square(0, 0, 10), square(3, 3, 2),
                                          BoolOp::kDifference);
  const auto back = from_geojson(to_geojson(diff));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_contours(), 2u);
  int holes = 0;
  for (const auto& c : back->contours)
    if (c.hole) ++holes;
  EXPECT_EQ(holes, 1);
  EXPECT_NEAR(signed_area(*back), signed_area(diff), 1e-6);
}

TEST(GeoJson, ParsePolygonType) {
  const auto p = from_geojson(
      R"({"type":"Polygon","coordinates":[[[0,0],[4,0],[4,4],[0,4],[0,0]]]})");
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(signed_area(*p), 16.0);
}

TEST(GeoJson, ParseWithForeignMembersAndAltitude) {
  const auto p = from_geojson(
      R"({"bbox":[0,0,4,4],"type":"Polygon","crs":{"name":"x"},)"
      R"("coordinates":[[[0,0,7],[4,0,7],[0,4,7],[0,0,7]]]})");
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(signed_area(*p), 8.0);
}

TEST(GeoJson, ParseMultiPolygonWithHole) {
  const auto p = from_geojson(
      R"({"type":"MultiPolygon","coordinates":[)"
      R"([[[0,0],[10,0],[10,10],[0,10],[0,0]],[[2,2],[2,4],[4,4],[4,2],[2,2]]],)"
      R"([[[20,20],[22,20],[21,22],[20,20]]]]})");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->num_contours(), 3u);
  EXPECT_TRUE(p->contours[1].hole);
  EXPECT_FALSE(p->contours[2].hole);
}

TEST(GeoJson, EmptyMultiPolygon) {
  const auto p = from_geojson(R"({"type":"MultiPolygon","coordinates":[]})");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

TEST(GeoJson, RejectsMalformed) {
  EXPECT_FALSE(from_geojson("").has_value());
  EXPECT_FALSE(from_geojson("{}").has_value());
  EXPECT_FALSE(
      from_geojson(R"({"type":"Point","coordinates":[1,2]})").has_value());
  EXPECT_FALSE(
      from_geojson(R"({"type":"Polygon"})").has_value());
  EXPECT_FALSE(from_geojson(
                   R"({"type":"Polygon","coordinates":[[[0,0],[1,1]]]})")
                   .has_value());
}

}  // namespace
}  // namespace psclip::geom
