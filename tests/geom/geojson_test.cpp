#include "geom/geojson.hpp"

#include <gtest/gtest.h>

#include "seq/vatti.hpp"

namespace psclip::geom {
namespace {

PolygonSet square(double x0, double y0, double s) {
  return make_polygon({{x0, y0}, {x0 + s, y0}, {x0 + s, y0 + s}, {x0, y0 + s}});
}

TEST(GeoJson, WriteSimplePolygon) {
  const std::string j = to_geojson(square(0, 0, 2));
  EXPECT_NE(j.find("\"type\":\"MultiPolygon\""), std::string::npos);
  EXPECT_NE(j.find("\"coordinates\""), std::string::npos);
  EXPECT_NE(j.find("[0,0]"), std::string::npos);
  EXPECT_NE(j.find("[2,2]"), std::string::npos);
}

TEST(GeoJson, RoundTripSimple) {
  const PolygonSet p = make_polygon({{0.5, -1.25}, {4, 0}, {4.75, 4.5}});
  const auto back = from_geojson(to_geojson(p));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->num_contours(), 1u);
  EXPECT_NEAR(signed_area(*back), signed_area(p), 1e-12);
}

TEST(GeoJson, RoundTripWithHoles) {
  const PolygonSet diff = seq::vatti_clip(square(0, 0, 10), square(3, 3, 2),
                                          BoolOp::kDifference);
  const auto back = from_geojson(to_geojson(diff));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_contours(), 2u);
  int holes = 0;
  for (const auto& c : back->contours)
    if (c.hole) ++holes;
  EXPECT_EQ(holes, 1);
  EXPECT_NEAR(signed_area(*back), signed_area(diff), 1e-6);
}

TEST(GeoJson, ParsePolygonType) {
  const auto p = from_geojson(
      R"({"type":"Polygon","coordinates":[[[0,0],[4,0],[4,4],[0,4],[0,0]]]})");
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(signed_area(*p), 16.0);
}

TEST(GeoJson, ParseWithForeignMembersAndAltitude) {
  const auto p = from_geojson(
      R"({"bbox":[0,0,4,4],"type":"Polygon","crs":{"name":"x"},)"
      R"("coordinates":[[[0,0,7],[4,0,7],[0,4,7],[0,0,7]]]})");
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(signed_area(*p), 8.0);
}

TEST(GeoJson, ParseMultiPolygonWithHole) {
  const auto p = from_geojson(
      R"({"type":"MultiPolygon","coordinates":[)"
      R"([[[0,0],[10,0],[10,10],[0,10],[0,0]],[[2,2],[2,4],[4,4],[4,2],[2,2]]],)"
      R"([[[20,20],[22,20],[21,22],[20,20]]]]})");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->num_contours(), 3u);
  EXPECT_TRUE(p->contours[1].hole);
  EXPECT_FALSE(p->contours[2].hole);
}

TEST(GeoJson, EmptyMultiPolygon) {
  const auto p = from_geojson(R"({"type":"MultiPolygon","coordinates":[]})");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

TEST(GeoJson, RejectsMalformed) {
  EXPECT_FALSE(from_geojson("").has_value());
  EXPECT_FALSE(from_geojson("{}").has_value());
  EXPECT_FALSE(
      from_geojson(R"({"type":"Point","coordinates":[1,2]})").has_value());
  EXPECT_FALSE(
      from_geojson(R"({"type":"Polygon"})").has_value());
  EXPECT_FALSE(from_geojson(
                   R"({"type":"Polygon","coordinates":[[[0,0],[1,1]]]})")
                   .has_value());
}

// ---- Hostile-input hardening: positioned psclip::Error on rejection ----

TEST(GeoJson, RejectsNonFiniteCoordinates) {
  // JSON forbids inf/nan literals, but std::from_chars parses them — the
  // parser is the trust boundary and must reject them itself.
  const std::string doc =
      R"({"type":"Polygon","coordinates":[[[0,0],[inf,0],[1,1],[0,1]]]})";
  Error err(ErrorCode::kParse, "");
  ASSERT_FALSE(from_geojson(doc, &err).has_value());
  EXPECT_EQ(err.code(), ErrorCode::kNonFinite);
  EXPECT_EQ(err.offset(), doc.find("inf"));
}

TEST(GeoJson, RejectsOverflowingCoordinates) {
  const std::string doc =
      R"({"type":"Polygon","coordinates":[[[0,0],[1e999,0],[1,1],[0,1]]]})";
  Error err(ErrorCode::kParse, "");
  ASSERT_FALSE(from_geojson(doc, &err).has_value());
  EXPECT_EQ(err.code(), ErrorCode::kNonFinite);
  EXPECT_NE(std::string(err.what()).find("overflow"), std::string::npos)
      << err.what();
  EXPECT_EQ(err.offset(), doc.find("1e999"));
}

TEST(GeoJson, RejectsTruncatedDocument) {
  const std::string doc = R"({"type":"Polygon","coordinates":[[[0,0],[4,0)";
  Error err(ErrorCode::kParse, "");
  ASSERT_FALSE(from_geojson(doc, &err).has_value());
  EXPECT_EQ(err.code(), ErrorCode::kParse);
  EXPECT_NE(err.offset(), Error::kNoOffset);
  EXPECT_LE(err.offset(), doc.size());
}

TEST(GeoJson, RejectsTrailingGarbage) {
  const std::string doc =
      R"({"type":"Polygon","coordinates":[[[0,0],[4,0],[4,4]]]} extra)";
  Error err(ErrorCode::kParse, "");
  ASSERT_FALSE(from_geojson(doc, &err).has_value());
  EXPECT_EQ(err.code(), ErrorCode::kParse);
  EXPECT_EQ(err.offset(), doc.find("extra"));
}

TEST(GeoJson, RejectsMissingCoordinatesWithError) {
  Error err(ErrorCode::kNonFinite, "");
  ASSERT_FALSE(from_geojson(R"({"type":"Polygon"})", &err).has_value());
  EXPECT_EQ(err.code(), ErrorCode::kParse);
  EXPECT_NE(std::string(err.what()).find("coordinates"), std::string::npos);
}

TEST(GeoJson, RejectsUnsupportedTypeWithError) {
  Error err(ErrorCode::kNonFinite, "");
  ASSERT_FALSE(
      from_geojson(R"({"type":"Point","coordinates":[1,2]})", &err)
          .has_value());
  EXPECT_EQ(err.code(), ErrorCode::kParse);
  EXPECT_NE(std::string(err.what()).find("Point"), std::string::npos)
      << err.what();
}

}  // namespace
}  // namespace psclip::geom
