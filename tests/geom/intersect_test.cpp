#include "geom/intersect.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "geom/predicates.hpp"

namespace psclip::geom {
namespace {

TEST(SegmentIntersection, ProperCrossing) {
  const auto r = segment_intersection({0, 0}, {2, 2}, {0, 2}, {2, 0});
  ASSERT_EQ(r.relation, SegmentRelation::kProper);
  EXPECT_DOUBLE_EQ(r.point.x, 1.0);
  EXPECT_DOUBLE_EQ(r.point.y, 1.0);
}

TEST(SegmentIntersection, Disjoint) {
  EXPECT_EQ(segment_intersection({0, 0}, {1, 0}, {0, 1}, {1, 1}).relation,
            SegmentRelation::kDisjoint);
  EXPECT_EQ(segment_intersection({0, 0}, {1, 1}, {2, 2.5}, {3, 4}).relation,
            SegmentRelation::kDisjoint);
}

TEST(SegmentIntersection, EndpointTouch) {
  // Shared endpoint.
  auto r = segment_intersection({0, 0}, {1, 1}, {1, 1}, {2, 0});
  EXPECT_EQ(r.relation, SegmentRelation::kTouch);
  EXPECT_EQ(r.point, (Point{1, 1}));
  // Endpoint in the other segment's interior (T junction).
  r = segment_intersection({0, 0}, {2, 0}, {1, 0}, {1, 5});
  EXPECT_EQ(r.relation, SegmentRelation::kTouch);
  EXPECT_EQ(r.point, (Point{1, 0}));
}

TEST(SegmentIntersection, CollinearOverlap) {
  auto r = segment_intersection({0, 0}, {4, 0}, {2, 0}, {6, 0});
  ASSERT_EQ(r.relation, SegmentRelation::kOverlap);
  EXPECT_EQ(r.point, (Point{2, 0}));
  EXPECT_EQ(r.point2, (Point{4, 0}));
  // Collinear, touching at a single point.
  r = segment_intersection({0, 0}, {2, 0}, {2, 0}, {5, 0});
  EXPECT_EQ(r.relation, SegmentRelation::kTouch);
  // Collinear, disjoint.
  r = segment_intersection({0, 0}, {1, 0}, {2, 0}, {3, 0});
  EXPECT_EQ(r.relation, SegmentRelation::kDisjoint);
}

TEST(SegmentIntersection, CollinearVertical) {
  const auto r = segment_intersection({1, 0}, {1, 4}, {1, 2}, {1, 9});
  ASSERT_EQ(r.relation, SegmentRelation::kOverlap);
  EXPECT_EQ(r.point, (Point{1, 2}));
  EXPECT_EQ(r.point2, (Point{1, 4}));
}

TEST(SegmentsIntersect, AgreesWithClassification) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(-10, 10);
  for (int i = 0; i < 3000; ++i) {
    const Point a1{u(rng), u(rng)}, a2{u(rng), u(rng)};
    const Point b1{u(rng), u(rng)}, b2{u(rng), u(rng)};
    const auto r = segment_intersection(a1, a2, b1, b2);
    EXPECT_EQ(segments_intersect(a1, a2, b1, b2),
              r.relation != SegmentRelation::kDisjoint);
  }
}

TEST(LineIntersection, PointLiesOnBothLines) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> u(-5, 5);
  for (int i = 0; i < 1000; ++i) {
    const Point a1{u(rng), u(rng)}, a2{u(rng), u(rng)};
    const Point b1{u(rng), u(rng)}, b2{u(rng), u(rng)};
    if (std::fabs(cross(a2 - a1, b2 - b1)) < 1e-9) continue;  // parallel
    const Point p = line_intersection(a1, a2, b1, b2);
    // p should be (nearly) collinear with both segments' lines.
    const double d1 = std::fabs(cross(a2 - a1, p - a1)) /
                      std::hypot(a2.x - a1.x, a2.y - a1.y);
    const double d2 = std::fabs(cross(b2 - b1, p - b1)) /
                      std::hypot(b2.x - b1.x, b2.y - b1.y);
    EXPECT_LT(d1, 1e-7);
    EXPECT_LT(d2, 1e-7);
  }
}

TEST(XAtY, InterpolatesLinearly) {
  EXPECT_DOUBLE_EQ(x_at_y({0, 0}, {10, 10}, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(x_at_y({2, 1}, {2, 9}, 4.0), 2.0);  // vertical
  EXPECT_DOUBLE_EQ(x_at_y({0, 0}, {4, 2}, 2.0), 4.0);  // endpoint
}

TEST(SegmentIntersection, ProperCrossingMatchesPredicates) {
  // The reported point of a proper crossing must lie strictly inside both
  // segments' bounding boxes.
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> u(-10, 10);
  int proper = 0;
  for (int i = 0; i < 5000 && proper < 500; ++i) {
    const Point a1{u(rng), u(rng)}, a2{u(rng), u(rng)};
    const Point b1{u(rng), u(rng)}, b2{u(rng), u(rng)};
    const auto r = segment_intersection(a1, a2, b1, b2);
    if (r.relation != SegmentRelation::kProper) continue;
    ++proper;
    EXPECT_LE(std::min(a1.x, a2.x) - 1e-9, r.point.x);
    EXPECT_GE(std::max(a1.x, a2.x) + 1e-9, r.point.x);
    EXPECT_LE(std::min(b1.y, b2.y) - 1e-9, r.point.y);
    EXPECT_GE(std::max(b1.y, b2.y) + 1e-9, r.point.y);
  }
  EXPECT_GT(proper, 100);  // the sweep actually exercised the case
}

}  // namespace
}  // namespace psclip::geom
