#include "geom/point.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "geom/bbox.hpp"

namespace psclip::geom {
namespace {

TEST(Point, ArithmeticAndComparison) {
  const Point a{1.0, 2.0}, b{3.0, -4.0};
  EXPECT_EQ((a + b), (Point{4.0, -2.0}));
  EXPECT_EQ((a - b), (Point{-2.0, 6.0}));
  EXPECT_EQ((2.0 * a), (Point{2.0, 4.0}));
  EXPECT_TRUE(a == a);
  EXPECT_TRUE(a != b);
}

TEST(Point, SweepOrderIsYThenX) {
  EXPECT_LT((Point{5.0, 1.0}), (Point{0.0, 2.0}));  // lower y first
  EXPECT_LT((Point{0.0, 1.0}), (Point{5.0, 1.0}));  // tie broken by x
  EXPECT_FALSE((Point{0.0, 1.0}) < (Point{0.0, 1.0}));
}

TEST(Point, DotAndCross) {
  EXPECT_DOUBLE_EQ(dot({1, 2}, {3, 4}), 11.0);
  EXPECT_DOUBLE_EQ(cross({1, 0}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(cross({0, 1}, {1, 0}), -1.0);
  EXPECT_DOUBLE_EQ(cross({2, 3}, {4, 6}), 0.0);  // parallel
}

TEST(Point, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Point, HashDistinguishesCoordinates) {
  std::unordered_set<std::size_t> hashes;
  PointHash h;
  hashes.insert(h({0, 0}));
  hashes.insert(h({0, 1}));
  hashes.insert(h({1, 0}));
  hashes.insert(h({1, 1}));
  EXPECT_EQ(hashes.size(), 4u);
  EXPECT_EQ(h({2.5, -3.5}), h({2.5, -3.5}));
}

TEST(BBox, ExpandAndContains) {
  BBox b;
  EXPECT_TRUE(b.empty());
  b.expand(Point{1, 2});
  b.expand(Point{-3, 5});
  EXPECT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.xmin, -3.0);
  EXPECT_DOUBLE_EQ(b.xmax, 1.0);
  EXPECT_DOUBLE_EQ(b.width(), 4.0);
  EXPECT_DOUBLE_EQ(b.height(), 3.0);
  EXPECT_TRUE(b.contains({0, 3}));
  EXPECT_FALSE(b.contains({2, 3}));
}

TEST(BBox, OverlapIsClosed) {
  BBox a{0, 0, 1, 1}, b{1, 1, 2, 2}, c{1.5, 1.5, 3, 3}, d{5, 5, 6, 6};
  EXPECT_TRUE(a.overlaps(b));  // touching corners count
  EXPECT_TRUE(b.overlaps(c));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_FALSE(a.overlaps(d));
  EXPECT_TRUE(a.overlaps_y(0.5, 2.0));
  EXPECT_FALSE(a.overlaps_y(1.5, 2.0));
}

TEST(BBox, ExpandWithBox) {
  BBox a{0, 0, 1, 1};
  a.expand(BBox{-1, 2, 0.5, 3});
  EXPECT_EQ(a, (BBox{-1, 0, 1, 3}));
}

}  // namespace
}  // namespace psclip::geom
