#include "mt/slab_index.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "data/synthetic.hpp"
#include "geom/polygon.hpp"
#include "mt/algorithm2.hpp"
#include "mt/arena.hpp"
#include "seq/rect_clip.hpp"
#include "seq/vatti.hpp"
#include "test_support.hpp"

namespace psclip::mt {
namespace {

using geom::BBox;
using geom::BoolOp;
using geom::Contour;
using geom::PolygonSet;

/// O(n·p) reference: the broadcast classification every slab task used to
/// run, expressed as index entries. Closed-interval y-overlap, per-slab
/// containment — exactly what rect_clip decides from geom::bounds when the
/// slab rectangle is inflated in x beyond every contour.
std::vector<std::vector<SlabEntry>> brute_force(
    const std::vector<BBox>& boxes, const std::vector<double>& bounds) {
  std::vector<std::vector<SlabEntry>> per_slab(bounds.size() - 1);
  for (std::size_t t = 0; t + 1 < bounds.size(); ++t) {
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      const BBox& b = boxes[i];
      if (b.empty() || !b.overlaps_y(bounds[t], bounds[t + 1])) continue;
      const bool inside = b.ymin >= bounds[t] && b.ymax <= bounds[t + 1];
      per_slab[t].push_back({static_cast<std::uint32_t>(i), inside});
    }
  }
  return per_slab;
}

void expect_index_equals(const SlabContourIndex& idx,
                         const std::vector<std::vector<SlabEntry>>& want) {
  ASSERT_EQ(idx.num_slabs(), want.size());
  for (std::size_t t = 0; t < want.size(); ++t) {
    const auto got = idx.slab(t);
    ASSERT_EQ(got.size(), want[t].size()) << "slab " << t;
    for (std::size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k].contour, want[t][k].contour) << "slab " << t;
      EXPECT_EQ(got[k].inside, want[t][k].inside)
          << "slab " << t << " contour " << got[k].contour;
      if (k > 0)
        EXPECT_LT(got[k - 1].contour, got[k].contour)
            << "slab list not ascending";
    }
  }
}

TEST(SlabIndex, MatchesBruteForceOnRandomField) {
  par::ThreadPool pool(4);
  const PolygonSet field = data::polygon_field(42, 80, 100.0, 10);
  const std::vector<BBox> boxes = geom::contour_bounds(field);
  for (const std::size_t nslabs : {1u, 3u, 7u, 16u, 64u}) {
    std::vector<double> bounds;
    for (std::size_t t = 0; t <= nslabs; ++t)
      bounds.push_back(-1.0 + 102.0 * static_cast<double>(t) /
                                  static_cast<double>(nslabs));
    const SlabContourIndex idx = build_slab_index(pool, boxes, bounds);
    expect_index_equals(idx, brute_force(boxes, bounds));
    EXPECT_GE(idx.total_entries(),
              static_cast<std::int64_t>(field.num_contours()));
  }
}

TEST(SlabIndex, ContourTouchingSlabBoundaryIsInBothSlabs) {
  par::ThreadPool pool(2);
  const std::vector<double> bounds = {0.0, 10.0, 20.0};
  // ymax lands exactly on the interior boundary: closed intervals put the
  // contour in slab 0 (fully inside) *and* slab 1 (touching its bottom).
  std::vector<BBox> boxes(1);
  boxes[0].expand(geom::Point{2.0, 1.0});
  boxes[0].expand(geom::Point{5.0, 10.0});
  const SlabContourIndex idx = build_slab_index(pool, boxes, bounds);
  ASSERT_EQ(idx.num_slabs(), 2u);
  ASSERT_EQ(idx.slab(0).size(), 1u);
  ASSERT_EQ(idx.slab(1).size(), 1u);
  EXPECT_TRUE(idx.slab(0)[0].inside);
  EXPECT_FALSE(idx.slab(1)[0].inside);
  expect_index_equals(idx, brute_force(boxes, bounds));
}

TEST(SlabIndex, ZeroHeightContourOnBoundaryIsInsideBothSlabs) {
  par::ThreadPool pool(2);
  const std::vector<double> bounds = {0.0, 10.0, 20.0};
  // Degenerate horizontal contour sitting exactly on the boundary: its
  // closed y-interval [10, 10] is contained in both [0, 10] and [10, 20],
  // so it must be "fully inside" (move-not-clip) in *both* slabs — the
  // lo==hi shortcut would get this wrong and break broadcast bit-identity.
  std::vector<BBox> boxes(1);
  boxes[0].expand(geom::Point{2.0, 10.0});
  boxes[0].expand(geom::Point{7.0, 10.0});
  const SlabContourIndex idx = build_slab_index(pool, boxes, bounds);
  ASSERT_EQ(idx.slab(0).size(), 1u);
  ASSERT_EQ(idx.slab(1).size(), 1u);
  EXPECT_TRUE(idx.slab(0)[0].inside);
  EXPECT_TRUE(idx.slab(1)[0].inside);
  expect_index_equals(idx, brute_force(boxes, bounds));
}

TEST(SlabIndex, DegenerateAndOutOfRangeContours) {
  par::ThreadPool pool(2);
  const std::vector<double> bounds = {0.0, 5.0, 10.0};
  std::vector<BBox> boxes(4);
  // boxes[0]: never expanded — empty bbox, must produce no entries.
  boxes[1].expand(geom::Point{1.0, -3.0});  // entirely below bounds.front()
  boxes[1].expand(geom::Point{2.0, -1.0});
  boxes[2].expand(geom::Point{1.0, 12.0});  // entirely above bounds.back()
  boxes[2].expand(geom::Point{2.0, 14.0});
  boxes[3].expand(geom::Point{0.0, 2.0});  // ordinary, slab 0 only
  boxes[3].expand(geom::Point{9.0, 3.0});
  const SlabContourIndex idx = build_slab_index(pool, boxes, bounds);
  EXPECT_EQ(idx.total_entries(), 1);
  ASSERT_EQ(idx.slab(0).size(), 1u);
  EXPECT_EQ(idx.slab(0)[0].contour, 3u);
  EXPECT_TRUE(idx.slab(0)[0].inside);
  EXPECT_EQ(idx.slab(1).size(), 0u);
  expect_index_equals(idx, brute_force(boxes, bounds));
}

TEST(SlabIndex, EmptySlabsGetEmptyLists) {
  par::ThreadPool pool(2);
  // All contours cluster in the outermost slabs; the middle ones are empty
  // but must still be addressable with valid (empty) spans.
  std::vector<double> bounds;
  for (int t = 0; t <= 8; ++t) bounds.push_back(static_cast<double>(10 * t));
  std::vector<BBox> boxes(2);
  boxes[0].expand(geom::Point{0.0, 1.0});
  boxes[0].expand(geom::Point{5.0, 4.0});
  boxes[1].expand(geom::Point{0.0, 76.0});
  boxes[1].expand(geom::Point{5.0, 79.0});
  const SlabContourIndex idx = build_slab_index(pool, boxes, bounds);
  EXPECT_EQ(idx.slab(0).size(), 1u);
  for (std::size_t t = 1; t < 7; ++t) EXPECT_EQ(idx.slab(t).size(), 0u);
  EXPECT_EQ(idx.slab(7).size(), 1u);
  expect_index_equals(idx, brute_force(boxes, bounds));
}

TEST(SlabIndex, NoBoundsOrNoBoxes) {
  par::ThreadPool pool(2);
  std::vector<BBox> boxes(1);
  boxes[0].expand(geom::Point{0.0, 0.0});
  boxes[0].expand(geom::Point{1.0, 1.0});
  EXPECT_EQ(build_slab_index(pool, boxes, std::vector<double>{}).num_slabs(),
            0u);
  const SlabContourIndex idx =
      build_slab_index(pool, std::vector<BBox>{}, std::vector<double>{0., 1.});
  EXPECT_EQ(idx.num_slabs(), 1u);
  EXPECT_EQ(idx.total_entries(), 0);
}

TEST(RectClipSubset, FullyInsideContourIsMovedVerbatim) {
  // The move-not-clip fast path must hand the contour through untouched —
  // same vertices, same order, not a clipped/rebuilt copy.
  PolygonSet p = geom::make_polygon({{1, 1}, {4, 2}, {3, 5}});
  const Contour* ref = &p.contours[0];
  const std::uint8_t inside = 1;
  const geom::BBox rect{0.0, 0.0, 10.0, 10.0};
  seq::RectClipScratch scratch;
  const PolygonSet out = seq::rect_clip_subset(
      {&ref, 1}, {&inside, 1}, rect, seq::RectClipMethod::kGreinerHormann,
      &scratch);
  ASSERT_EQ(out.num_contours(), 1u);
  ASSERT_EQ(out.contours[0].pts.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out.contours[0].pts[i].x, p.contours[0].pts[i].x);
    EXPECT_EQ(out.contours[0].pts[i].y, p.contours[0].pts[i].y);
  }
}

TEST(RectClipSubset, MatchesRectClipOnSameSubset) {
  // Feeding rect_clip_subset the contours rect_clip would keep must yield
  // byte-identical output for every rectangle clipper backend.
  const PolygonSet field = data::polygon_field(7, 24, 50.0, 9);
  const geom::BBox rect{-1.0, 12.0, 51.0, 31.0};
  for (const auto method : {seq::RectClipMethod::kGreinerHormann,
                            seq::RectClipMethod::kVatti,
                            seq::RectClipMethod::kSutherlandHodgman}) {
    const PolygonSet want = seq::rect_clip(field, rect, method);
    std::vector<const Contour*> refs;
    std::vector<std::uint8_t> inside;
    for (const auto& c : field.contours) {
      const BBox b = geom::bounds(c);
      if (!b.overlaps(rect)) continue;
      refs.push_back(&c);
      inside.push_back(b.xmin >= rect.xmin && b.xmax <= rect.xmax &&
                               b.ymin >= rect.ymin && b.ymax <= rect.ymax
                           ? 1
                           : 0);
    }
    seq::RectClipScratch scratch;
    const PolygonSet got =
        seq::rect_clip_subset(refs, inside, rect, method, &scratch);
    ASSERT_EQ(got.num_contours(), want.num_contours())
        << seq::to_string(method);
    for (std::size_t i = 0; i < want.contours.size(); ++i) {
      ASSERT_EQ(got.contours[i].pts.size(), want.contours[i].pts.size());
      for (std::size_t j = 0; j < want.contours[i].pts.size(); ++j) {
        EXPECT_EQ(got.contours[i].pts[j].x, want.contours[i].pts[j].x);
        EXPECT_EQ(got.contours[i].pts[j].y, want.contours[i].pts[j].y);
      }
    }
  }
}

void expect_identical(const PolygonSet& a, const PolygonSet& b,
                      const char* what) {
  ASSERT_EQ(a.num_contours(), b.num_contours()) << what;
  for (std::size_t i = 0; i < a.contours.size(); ++i) {
    ASSERT_EQ(a.contours[i].pts.size(), b.contours[i].pts.size()) << what;
    EXPECT_EQ(a.contours[i].hole, b.contours[i].hole) << what;
    for (std::size_t j = 0; j < a.contours[i].pts.size(); ++j) {
      EXPECT_EQ(a.contours[i].pts[j].x, b.contours[i].pts[j].x) << what;
      EXPECT_EQ(a.contours[i].pts[j].y, b.contours[i].pts[j].y) << what;
    }
  }
}

TEST(Algorithm2Partition, IndexedMatchesBroadcastBitForBit) {
  par::ThreadPool pool(4);
  const PolygonSet a = data::polygon_field(101, 40, 60.0, 11);
  const PolygonSet b = data::polygon_field(202, 36, 60.0, 9);
  for (const unsigned slabs : {1u, 4u, 9u, 16u}) {
    for (const BoolOp op : geom::kAllOps) {
      Alg2Options oi, ob;
      oi.slabs = ob.slabs = slabs;
      oi.partition = Alg2Partition::kIndexed;
      ob.partition = Alg2Partition::kBroadcast;
      Alg2Stats si, sb;
      const PolygonSet ri = slab_clip(a, b, op, pool, oi, &si);
      const PolygonSet rb = slab_clip(a, b, op, pool, ob, &sb);
      expect_identical(ri, rb, geom::to_string(op));
      // The deterministic partition-work metric: the index must never read
      // more input than the broadcast scan, and strictly less once the
      // field is spread over several slabs.
      std::int64_t ti = 0, tb = 0;
      for (const auto& s : si.slabs) ti += s.touched_edges;
      for (const auto& s : sb.slabs) tb += s.touched_edges;
      const auto total = static_cast<std::int64_t>(
          (a.num_vertices() + b.num_vertices()) * si.slabs.size());
      EXPECT_EQ(tb, total);
      EXPECT_LE(ti, tb);
      if (slabs >= 4) EXPECT_LT(ti, tb);
    }
  }
}

TEST(Algorithm2Partition, InputEdgesReportPostIndexVattiWork) {
  // input_edges must be the bound-edge count the slab's Vatti sweep really
  // processed (post-partition, post-cleaning) — equal to what a direct
  // vatti_clip on the same slab inputs reports, and 0 for empty slabs.
  par::ThreadPool pool(2);
  const PolygonSet a = data::polygon_field(303, 20, 40.0, 8);
  const PolygonSet b = data::polygon_field(404, 18, 40.0, 8);
  Alg2Options o;
  o.slabs = 6;
  Alg2Stats st;
  slab_clip(a, b, BoolOp::kIntersection, pool, o, &st);
  std::int64_t swept = 0;
  for (const auto& s : st.slabs) {
    EXPECT_GE(s.input_edges, 0);
    swept += s.input_edges;
  }
  // Slab partitioning duplicates straddling contours, so the summed swept
  // edges are at least the edges one unpartitioned run would sweep.
  seq::VattiStats whole;
  seq::vatti_clip(a, b, BoolOp::kIntersection, &whole);
  EXPECT_GE(swept, whole.edges);
}

TEST(SlabArena, PerThreadReuseAcrossRuns) {
  SlabArena& first = worker_arena();
  SlabArena& second = worker_arena();
  EXPECT_EQ(&first, &second);  // same thread, same arena
  EXPECT_GE(worker_arena_count(), 1u);

  const std::uint64_t runs_before = first.vatti.runs;
  const PolygonSet a = test::random_polygon(11, 16, 0, 0, 5);
  const PolygonSet b = test::random_polygon(12, 14, 1, 0, 4);
  seq::VattiStats s1, s2;
  const PolygonSet r1 =
      seq::vatti_clip(a, b, BoolOp::kIntersection, &s1, &first.vatti);
  const PolygonSet r2 =
      seq::vatti_clip(a, b, BoolOp::kIntersection, &s2, &first.vatti);
  EXPECT_EQ(first.vatti.runs, runs_before + 2);
  expect_identical(r1, r2, "scratch reuse");
  const PolygonSet fresh = seq::vatti_clip(a, b, BoolOp::kIntersection);
  expect_identical(r1, fresh, "scratch vs fresh");
}

}  // namespace
}  // namespace psclip::mt
