#include "mt/algorithm2.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "geom/area_oracle.hpp"
#include "seq/vatti.hpp"
#include "test_support.hpp"

namespace psclip::mt {
namespace {

using geom::BoolOp;
using geom::PolygonSet;

PolygonSet square(double x0, double y0, double s) {
  return geom::make_polygon(
      {{x0, y0}, {x0 + s, y0}, {x0 + s, y0 + s}, {x0, y0 + s}});
}

TEST(Algorithm2, SquaresAllOpsAllSlabCounts) {
  par::ThreadPool pool(4);
  const PolygonSet a = square(0, 0, 10), b = square(5, 5, 10);
  for (unsigned slabs : {1u, 2u, 3u, 5u, 8u}) {
    Alg2Options o;
    o.slabs = slabs;
    for (const BoolOp op : geom::kAllOps) {
      const double got = geom::signed_area(slab_clip(a, b, op, pool, o));
      const double want = geom::boolean_area_oracle(a, b, op);
      EXPECT_TRUE(test::areas_match(got, want, 1e-5))
          << geom::to_string(op) << " slabs=" << slabs << " got=" << got
          << " want=" << want;
    }
  }
}

struct A2Case {
  std::uint64_t seed;
  int n1, n2;
  unsigned slabs;
  bool sx;
  seq::RectClipMethod method;
};

class Algorithm2Differential : public ::testing::TestWithParam<A2Case> {};

TEST_P(Algorithm2Differential, MatchesOracle) {
  par::ThreadPool pool(4);
  const A2Case c = GetParam();
  const PolygonSet a =
      test::random_polygon(c.seed * 2 + 1, c.n1, 0, 0, 10, c.sx);
  const PolygonSet b =
      test::random_polygon(c.seed * 2 + 2, c.n2, 1, -1, 8, false);
  Alg2Options o;
  o.slabs = c.slabs;
  o.rect_method = c.method;
  for (const BoolOp op : geom::kAllOps) {
    Alg2Stats st;
    const double got = geom::signed_area(slab_clip(a, b, op, pool, o, &st));
    const double want = geom::boolean_area_oracle(a, b, op);
    EXPECT_TRUE(test::areas_match(got, want, 1e-5))
        << geom::to_string(op) << " slabs=" << c.slabs
        << " method=" << seq::to_string(c.method) << " got=" << got
        << " want=" << want;
  }
}

std::vector<A2Case> make_cases() {
  std::vector<A2Case> cases;
  std::uint64_t seed = 3000;
  const seq::RectClipMethod methods[] = {seq::RectClipMethod::kGreinerHormann,
                                         seq::RectClipMethod::kVatti,
                                         seq::RectClipMethod::kSutherlandHodgman};
  for (int rep = 0; rep < 12; ++rep) {
    A2Case c;
    c.seed = seed++;
    c.n1 = 8 + rep * 4;
    c.n2 = 6 + rep * 3;
    c.slabs = 1 + static_cast<unsigned>(rep % 7);
    // Self-intersecting subjects only with the Vatti rectangle clipper —
    // GH and SH do not support them (that limitation is the paper's very
    // motivation for Vatti).
    c.method = methods[rep % 3];
    c.sx = rep % 4 == 0 && c.method == seq::RectClipMethod::kVatti;
    cases.push_back(c);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, Algorithm2Differential,
                         ::testing::ValuesIn(make_cases()));

TEST(Algorithm2, OversubscribeSweepMatchesSequentialVatti) {
  // The adaptive over-partitioning factor changes the slab count and the
  // scheduling, never the clipped region: every setting must reproduce the
  // sequential Vatti reference.
  par::ThreadPool pool(4);
  const PolygonSet a = test::random_polygon(911, 40, 0, 0, 10);
  const PolygonSet b = test::random_polygon(912, 34, 1, -1, 9);
  for (unsigned c : {1u, 2u, 4u, 8u}) {
    Alg2Options o;
    o.slabs = 0;  // derive: oversubscribe × pool.size()
    o.oversubscribe = c;
    for (const BoolOp op : geom::kAllOps) {
      const double want = geom::signed_area(seq::vatti_clip(a, b, op));
      Alg2Stats st;
      const double got =
          geom::signed_area(slab_clip(a, b, op, pool, o, &st));
      EXPECT_TRUE(test::areas_match(got, want, 1e-5))
          << geom::to_string(op) << " oversubscribe=" << c << " got=" << got
          << " want=" << want;
      EXPECT_LE(st.slabs.size(), static_cast<std::size_t>(c) * pool.size());
      EXPECT_EQ(st.workers.size(), pool.size() + 1u);
      std::uint64_t jobs = 0;
      for (const auto& w : st.workers) jobs += w.slab_jobs;
      EXPECT_EQ(jobs, st.slabs.size());
    }
  }
}

TEST(Algorithm2, OversubscribedOutputIsScheduleInvariant) {
  // Same decomposition on 4 workers (stealing) and on 1 worker (serial):
  // the outputs must match contour for contour, coordinate for coordinate.
  par::ThreadPool pool4(4), pool1(1);
  const PolygonSet a = test::random_polygon(921, 48, 0, 0, 10);
  const PolygonSet b = test::random_polygon(922, 40, 1, 0, 9);
  Alg2Options o;
  o.slabs = 16;  // fixed slab count => identical slab boundaries
  for (const BoolOp op : geom::kAllOps) {
    const PolygonSet out4 = slab_clip(a, b, op, pool4, o);
    const PolygonSet out1 = slab_clip(a, b, op, pool1, o);
    ASSERT_EQ(out4.num_contours(), out1.num_contours()) << geom::to_string(op);
    for (std::size_t i = 0; i < out4.contours.size(); ++i) {
      const auto& c4 = out4.contours[i];
      const auto& c1 = out1.contours[i];
      ASSERT_EQ(c4.pts.size(), c1.pts.size()) << geom::to_string(op);
      EXPECT_EQ(c4.hole, c1.hole);
      for (std::size_t j = 0; j < c4.pts.size(); ++j) {
        EXPECT_EQ(c4.pts[j].x, c1.pts[j].x);
        EXPECT_EQ(c4.pts[j].y, c1.pts[j].y);
      }
    }
  }
}

TEST(Algorithm2, StatsPhasesAndLoads) {
  par::ThreadPool pool(4);
  const PolygonSet a = test::random_polygon(71, 60, 0, 0, 10);
  const PolygonSet b = test::random_polygon(72, 50, 1, 0, 9);
  Alg2Options o;
  o.slabs = 4;
  Alg2Stats st;
  slab_clip(a, b, BoolOp::kIntersection, pool, o, &st);
  EXPECT_EQ(st.slabs.size(), 4u);
  for (const auto& s : st.slabs) {
    EXPECT_GE(s.seconds, 0.0);
    EXPECT_GE(s.input_edges, 0);
  }
  EXPECT_GE(st.phases.partition, 0.0);
  EXPECT_GE(st.phases.clip, 0.0);
  EXPECT_GE(st.phases.merge, 0.0);
  EXPECT_GT(st.phases.total(), 0.0);
  EXPECT_GE(st.load_imbalance(), 1.0);
  EXPECT_GT(st.output_contours, 0);
  // Fault isolation is on by default; a clean run records one healthy
  // degradation report per slab and nothing else.
  ASSERT_EQ(st.degradation.size(), st.slabs.size());
  for (const auto& d : st.degradation) {
    EXPECT_EQ(d.rung, Rung::kHealthy);
    EXPECT_EQ(d.attempts, 1u);
    EXPECT_TRUE(d.message.empty());
  }
  EXPECT_EQ(st.degraded_slabs(), 0);
  EXPECT_EQ(st.worst_rung(), Rung::kHealthy);
}

TEST(Algorithm2, SingleSlabEqualsSequential) {
  par::ThreadPool pool(2);
  const PolygonSet a = test::random_polygon(81, 24, 0, 0, 10);
  const PolygonSet b = test::random_polygon(82, 20, 2, 1, 8);
  Alg2Options o;
  o.slabs = 1;
  const double got = geom::signed_area(
      slab_clip(a, b, BoolOp::kDifference, pool, o));
  const double want =
      geom::boolean_area_oracle(a, b, BoolOp::kDifference);
  EXPECT_TRUE(test::areas_match(got, want, 1e-5));
}

TEST(Algorithm2, MoreSlabsThanEvents) {
  par::ThreadPool pool(2);
  const PolygonSet a = square(0, 0, 2), b = square(1, 1, 2);
  Alg2Options o;
  o.slabs = 64;  // far more slabs than distinct ordinates
  const double got =
      geom::signed_area(slab_clip(a, b, BoolOp::kIntersection, pool, o));
  EXPECT_TRUE(test::areas_match(got, 1.0, 1e-4));
}

TEST(Algorithm2, EmptyInputs) {
  par::ThreadPool pool(2);
  EXPECT_TRUE(slab_clip({}, {}, BoolOp::kUnion, pool).empty());
  const PolygonSet a = square(0, 0, 4);
  EXPECT_NEAR(geom::signed_area(slab_clip(a, {}, BoolOp::kUnion, pool)),
              16.0, 1e-4);
}

}  // namespace
}  // namespace psclip::mt
