#include "mt/algorithm2.hpp"

#include <gtest/gtest.h>

#include "geom/area_oracle.hpp"
#include "test_support.hpp"

namespace psclip::mt {
namespace {

using geom::BoolOp;
using geom::PolygonSet;

PolygonSet square(double x0, double y0, double s) {
  return geom::make_polygon(
      {{x0, y0}, {x0 + s, y0}, {x0 + s, y0 + s}, {x0, y0 + s}});
}

TEST(Algorithm2, SquaresAllOpsAllSlabCounts) {
  par::ThreadPool pool(4);
  const PolygonSet a = square(0, 0, 10), b = square(5, 5, 10);
  for (unsigned slabs : {1u, 2u, 3u, 5u, 8u}) {
    Alg2Options o;
    o.slabs = slabs;
    for (const BoolOp op : geom::kAllOps) {
      const double got = geom::signed_area(slab_clip(a, b, op, pool, o));
      const double want = geom::boolean_area_oracle(a, b, op);
      EXPECT_TRUE(test::areas_match(got, want, 1e-5))
          << geom::to_string(op) << " slabs=" << slabs << " got=" << got
          << " want=" << want;
    }
  }
}

struct A2Case {
  std::uint64_t seed;
  int n1, n2;
  unsigned slabs;
  bool sx;
  seq::RectClipMethod method;
};

class Algorithm2Differential : public ::testing::TestWithParam<A2Case> {};

TEST_P(Algorithm2Differential, MatchesOracle) {
  par::ThreadPool pool(4);
  const A2Case c = GetParam();
  const PolygonSet a =
      test::random_polygon(c.seed * 2 + 1, c.n1, 0, 0, 10, c.sx);
  const PolygonSet b =
      test::random_polygon(c.seed * 2 + 2, c.n2, 1, -1, 8, false);
  Alg2Options o;
  o.slabs = c.slabs;
  o.rect_method = c.method;
  for (const BoolOp op : geom::kAllOps) {
    Alg2Stats st;
    const double got = geom::signed_area(slab_clip(a, b, op, pool, o, &st));
    const double want = geom::boolean_area_oracle(a, b, op);
    EXPECT_TRUE(test::areas_match(got, want, 1e-5))
        << geom::to_string(op) << " slabs=" << c.slabs
        << " method=" << seq::to_string(c.method) << " got=" << got
        << " want=" << want;
  }
}

std::vector<A2Case> make_cases() {
  std::vector<A2Case> cases;
  std::uint64_t seed = 3000;
  const seq::RectClipMethod methods[] = {seq::RectClipMethod::kGreinerHormann,
                                         seq::RectClipMethod::kVatti,
                                         seq::RectClipMethod::kSutherlandHodgman};
  for (int rep = 0; rep < 12; ++rep) {
    A2Case c;
    c.seed = seed++;
    c.n1 = 8 + rep * 4;
    c.n2 = 6 + rep * 3;
    c.slabs = 1 + static_cast<unsigned>(rep % 7);
    // Self-intersecting subjects only with the Vatti rectangle clipper —
    // GH and SH do not support them (that limitation is the paper's very
    // motivation for Vatti).
    c.method = methods[rep % 3];
    c.sx = rep % 4 == 0 && c.method == seq::RectClipMethod::kVatti;
    cases.push_back(c);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, Algorithm2Differential,
                         ::testing::ValuesIn(make_cases()));

TEST(Algorithm2, StatsPhasesAndLoads) {
  par::ThreadPool pool(4);
  const PolygonSet a = test::random_polygon(71, 60, 0, 0, 10);
  const PolygonSet b = test::random_polygon(72, 50, 1, 0, 9);
  Alg2Options o;
  o.slabs = 4;
  Alg2Stats st;
  slab_clip(a, b, BoolOp::kIntersection, pool, o, &st);
  EXPECT_EQ(st.slabs.size(), 4u);
  for (const auto& s : st.slabs) {
    EXPECT_GE(s.seconds, 0.0);
    EXPECT_GE(s.input_edges, 0);
  }
  EXPECT_GE(st.phases.partition, 0.0);
  EXPECT_GE(st.phases.clip, 0.0);
  EXPECT_GE(st.phases.merge, 0.0);
  EXPECT_GT(st.phases.total(), 0.0);
  EXPECT_GE(st.load_imbalance(), 1.0);
  EXPECT_GT(st.output_contours, 0);
}

TEST(Algorithm2, SingleSlabEqualsSequential) {
  par::ThreadPool pool(2);
  const PolygonSet a = test::random_polygon(81, 24, 0, 0, 10);
  const PolygonSet b = test::random_polygon(82, 20, 2, 1, 8);
  Alg2Options o;
  o.slabs = 1;
  const double got = geom::signed_area(
      slab_clip(a, b, BoolOp::kDifference, pool, o));
  const double want =
      geom::boolean_area_oracle(a, b, BoolOp::kDifference);
  EXPECT_TRUE(test::areas_match(got, want, 1e-5));
}

TEST(Algorithm2, MoreSlabsThanEvents) {
  par::ThreadPool pool(2);
  const PolygonSet a = square(0, 0, 2), b = square(1, 1, 2);
  Alg2Options o;
  o.slabs = 64;  // far more slabs than distinct ordinates
  const double got =
      geom::signed_area(slab_clip(a, b, BoolOp::kIntersection, pool, o));
  EXPECT_TRUE(test::areas_match(got, 1.0, 1e-4));
}

TEST(Algorithm2, EmptyInputs) {
  par::ThreadPool pool(2);
  EXPECT_TRUE(slab_clip({}, {}, BoolOp::kUnion, pool).empty());
  const PolygonSet a = square(0, 0, 4);
  EXPECT_NEAR(geom::signed_area(slab_clip(a, {}, BoolOp::kUnion, pool)),
              16.0, 1e-4);
}

}  // namespace
}  // namespace psclip::mt
