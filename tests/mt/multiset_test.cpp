#include "mt/multiset.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "geom/area_oracle.hpp"
#include "test_support.hpp"

namespace psclip::mt {
namespace {

using geom::BoolOp;
using geom::PolygonSet;

struct MsCase {
  std::uint64_t seed;
  int count;
  unsigned slabs;
};

class MultisetDifferential : public ::testing::TestWithParam<MsCase> {};

TEST_P(MultisetDifferential, MatchesOracleAllOps) {
  par::ThreadPool pool(4);
  const MsCase c = GetParam();
  const PolygonSet a =
      data::polygon_field(c.seed * 2 + 1, c.count, 100.0, 8);
  const PolygonSet b =
      data::polygon_field(c.seed * 2 + 2, c.count, 100.0, 7);
  MultisetOptions o;
  o.slabs = c.slabs;
  for (const BoolOp op : geom::kAllOps) {
    Alg2Stats st;
    const double got =
        geom::signed_area(multiset_clip(a, b, op, pool, o, &st));
    const double want = geom::boolean_area_oracle(a, b, op);
    EXPECT_TRUE(test::areas_match(got, want, 1e-5))
        << geom::to_string(op) << " slabs=" << c.slabs << " got=" << got
        << " want=" << want;
  }
}

std::vector<MsCase> make_cases() {
  std::vector<MsCase> cases;
  std::uint64_t seed = 9000;
  for (int rep = 0; rep < 10; ++rep)
    cases.push_back({seed++, 20 + rep * 8, 1 + static_cast<unsigned>(rep % 8)});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Fields, MultisetDifferential,
                         ::testing::ValuesIn(make_cases()));

TEST(Multiset, DuplicateEliminationTriggers) {
  par::ThreadPool pool(4);
  // Few large polygons spanning several slabs: replication must produce
  // duplicates and the post-processing must remove them.
  PolygonSet a, b;
  for (int i = 0; i < 4; ++i) {
    auto pa = test::random_polygon(100 + i, 16, i * 25.0, 50, 12);
    auto pb = test::random_polygon(200 + i, 14, i * 25.0 + 3, 52, 12);
    a.contours.push_back(pa.contours[0]);
    b.contours.push_back(pb.contours[0]);
  }
  MultisetOptions o;
  o.slabs = 6;
  Alg2Stats st;
  const double got = geom::signed_area(
      multiset_clip(a, b, BoolOp::kIntersection, pool, o, &st));
  const double want =
      geom::boolean_area_oracle(a, b, BoolOp::kIntersection);
  EXPECT_TRUE(test::areas_match(got, want, 1e-5));
  // With 6 slabs over 4 overlapping pairs, replication must have occurred.
  EXPECT_GE(st.duplicates_removed + static_cast<std::int64_t>(st.slabs.size()),
            1);
}

TEST(Multiset, UnionOfTouchingClustersIsExact) {
  par::ThreadPool pool(4);
  // A chain of pairwise-overlapping polygons crossing all slab boundaries:
  // the block-closure assignment must keep the union exact.
  PolygonSet a, b;
  for (int i = 0; i < 10; ++i) {
    // x-extents vary with i so no two rectangles share a collinear edge
    // (exactly coincident edges are outside the general-position contract).
    a.contours.push_back(geom::make_rect(0.0 + 0.13 * i, i * 4.0,
                                         3.0 + 0.07 * i, i * 4.0 + 5.0));
    b.contours.push_back(geom::make_rect(2.0 - 0.11 * i, i * 4.0 + 2.0,
                                         5.0 + 0.05 * i, i * 4.0 + 6.0));
  }
  MultisetOptions o;
  o.slabs = 5;
  const double got =
      geom::signed_area(multiset_clip(a, b, BoolOp::kUnion, pool, o));
  const double want = geom::boolean_area_oracle(a, b, BoolOp::kUnion);
  EXPECT_TRUE(test::areas_match(got, want, 1e-4))
      << " got=" << got << " want=" << want;
}

class MultisetModes : public ::testing::TestWithParam<MultisetAssign> {};

TEST_P(MultisetModes, IntersectionExactUnderEveryAssignment) {
  par::ThreadPool pool(4);
  const PolygonSet a = data::polygon_field(301, 48, 90.0, 8);
  const PolygonSet b = data::polygon_field(302, 48, 90.0, 7);
  MultisetOptions o;
  o.slabs = 5;
  o.assign = GetParam();
  const double got = geom::signed_area(
      multiset_clip(a, b, BoolOp::kIntersection, pool, o));
  const double want =
      geom::boolean_area_oracle(a, b, BoolOp::kIntersection);
  EXPECT_TRUE(test::areas_match(got, want, 1e-5))
      << to_string(GetParam()) << " got=" << got << " want=" << want;
}

TEST_P(MultisetModes, DifferenceExactUnderExactAssignments) {
  if (GetParam() == MultisetAssign::kReplicate)
    GTEST_SKIP() << "replicate is the paper's approximate scheme for "
                    "non-intersection ops";
  par::ThreadPool pool(4);
  const PolygonSet a = data::polygon_field(311, 40, 80.0, 8);
  const PolygonSet b = data::polygon_field(312, 40, 80.0, 7);
  MultisetOptions o;
  o.slabs = 6;
  o.assign = GetParam();
  const double got = geom::signed_area(
      multiset_clip(a, b, BoolOp::kDifference, pool, o));
  const double want = geom::boolean_area_oracle(a, b, BoolOp::kDifference);
  EXPECT_TRUE(test::areas_match(got, want, 1e-5))
      << to_string(GetParam()) << " got=" << got << " want=" << want;
}

INSTANTIATE_TEST_SUITE_P(Assignments, MultisetModes,
                         ::testing::Values(MultisetAssign::kAuto,
                                           MultisetAssign::kSubjectOwner,
                                           MultisetAssign::kReplicate,
                                           MultisetAssign::kBlockClosure));

TEST(Multiset, SubjectOwnerDoesNotInflateWork) {
  // Each interacting pair must be clipped exactly once: the summed slab
  // input can exceed the input (clip replication) but outputs never need
  // dedup and total output equals the sequential output.
  par::ThreadPool pool(2);
  const PolygonSet a = data::polygon_field(321, 60, 100.0, 8);
  const PolygonSet b = data::polygon_field(322, 60, 100.0, 8);
  MultisetOptions o;
  o.slabs = 6;
  o.assign = MultisetAssign::kSubjectOwner;
  Alg2Stats st;
  multiset_clip(a, b, BoolOp::kIntersection, pool, o, &st);
  EXPECT_EQ(st.duplicates_removed, 0);
}

TEST(Multiset, AssignModeNames) {
  EXPECT_STREQ(to_string(MultisetAssign::kAuto), "auto");
  EXPECT_STREQ(to_string(MultisetAssign::kSubjectOwner), "subject-owner");
  EXPECT_STREQ(to_string(MultisetAssign::kReplicate), "replicate");
  EXPECT_STREQ(to_string(MultisetAssign::kBlockClosure), "block-closure");
}

TEST(Multiset, DisjointLayersIntersectEmpty) {
  par::ThreadPool pool(2);
  const PolygonSet a = data::polygon_field(1, 16, 50.0, 6);
  PolygonSet b = data::polygon_field(2, 16, 50.0, 6);
  b = geom::transformed(b, 1.0, {1000.0, 1000.0});
  EXPECT_TRUE(
      multiset_clip(a, b, BoolOp::kIntersection, pool).empty());
  const double uni =
      geom::signed_area(multiset_clip(a, b, BoolOp::kUnion, pool));
  EXPECT_TRUE(test::areas_match(
      uni, geom::even_odd_area(a) + geom::even_odd_area(b), 1e-5));
}

TEST(Multiset, StatsFilled) {
  par::ThreadPool pool(4);
  const PolygonSet a = data::polygon_field(11, 30, 60.0, 8);
  const PolygonSet b = data::polygon_field(12, 30, 60.0, 8);
  MultisetOptions o;
  o.slabs = 4;
  Alg2Stats st;
  multiset_clip(a, b, BoolOp::kIntersection, pool, o, &st);
  EXPECT_GE(st.slabs.size(), 1u);
  EXPECT_LE(st.slabs.size(), 4u);
  EXPECT_GE(st.phases.clip, 0.0);
  EXPECT_GE(st.load_imbalance(), 1.0);
  // Clean run under default fault isolation: every slab healthy.
  ASSERT_EQ(st.degradation.size(), st.slabs.size());
  EXPECT_EQ(st.degraded_slabs(), 0);
  EXPECT_EQ(st.worst_rung(), Rung::kHealthy);
}

TEST(Multiset, EmptyInputs) {
  par::ThreadPool pool(2);
  EXPECT_TRUE(multiset_clip({}, {}, BoolOp::kUnion, pool).empty());
  const PolygonSet a = data::polygon_field(3, 5, 20.0, 6);
  EXPECT_TRUE(test::areas_match(
      geom::signed_area(multiset_clip(a, {}, BoolOp::kUnion, pool)),
      geom::even_odd_area(a), 1e-5));
}

}  // namespace
}  // namespace psclip::mt
