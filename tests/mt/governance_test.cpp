// Request-governance semantics of the slab engines (DESIGN.md §11).
//
// Covers the deterministic contracts — the ones that need no timing and no
// fault injection:
//   * a null token governs nothing and changes nothing;
//   * setup-phase trips (a token already cancelled / past deadline at
//     entry) propagate as their precise Error even under allow_partial —
//     the partial contract covers slab tasks only;
//   * a budget too small for any slab attempt fails the request with
//     kBudgetExceeded, or — under allow_partial — returns a partial result
//     whose report names the missing slab ranges;
//   * a mid-run cancellation (delivered deterministically through a trace
//     sink that cancels on the first slab span) follows the same split;
//   * generous-but-real governance is invisible: byte-identical output,
//     no degradation, all charges released, peak recorded.
//
// The stochastic side (deadlines landing mid-sweep, stalls, hogs, budget
// races) lives in soak_test.cpp and fault_fuzz_test.cpp.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>

#include "data/synthetic.hpp"
#include "error.hpp"
#include "geom/polygon.hpp"
#include "mt/algorithm2.hpp"
#include "mt/multiset.hpp"
#include "obs/trace.hpp"
#include "parallel/cancel.hpp"
#include "parallel/thread_pool.hpp"
#include "psclip.hpp"

namespace psclip {
namespace {

bool bit_identical(const geom::PolygonSet& a, const geom::PolygonSet& b) {
  if (a.contours.size() != b.contours.size()) return false;
  for (std::size_t i = 0; i < a.contours.size(); ++i) {
    const auto& ca = a.contours[i];
    const auto& cb = b.contours[i];
    if (ca.hole != cb.hole || ca.pts.size() != cb.pts.size()) return false;
    for (std::size_t j = 0; j < ca.pts.size(); ++j)
      if (ca.pts[j].x != cb.pts[j].x || ca.pts[j].y != cb.pts[j].y)
        return false;
  }
  return true;
}

/// Run `fn`, which must throw psclip::Error; returns its code.
template <typename Fn>
ErrorCode thrown_code(Fn&& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.code();
  } catch (...) {
    ADD_FAILURE() << "threw something other than psclip::Error";
    return ErrorCode::kTaskFailure;
  }
  ADD_FAILURE() << "expected a governance Error, none thrown";
  return ErrorCode::kTaskFailure;
}

/// Sanity of a partial report against the run that produced it.
void check_partial_report(const mt::Alg2Stats& stats, unsigned nslabs,
                          ErrorCode want_cause) {
  const mt::PartialReport& p = stats.partial;
  EXPECT_TRUE(p.partial);
  EXPECT_EQ(p.cause, want_cause);
  EXPECT_FALSE(p.message.empty());
  ASSERT_FALSE(p.missing.empty());
  EXPECT_GE(p.missing_slabs(), 1u);
  EXPECT_LE(p.missing_slabs(), nslabs);
  std::size_t prev_end = 0;
  bool first = true;
  for (const auto& r : p.missing) {
    EXPECT_LE(r.first, r.last);
    EXPECT_LT(r.last, nslabs);
    EXPECT_LT(r.y_lo, r.y_hi);
    if (!first) EXPECT_GT(r.first, prev_end + 1)
        << "adjacent missing ranges must be merged";
    prev_end = r.last;
    first = false;
  }
  // Every missing slab reports the terminal governance rung, and the rung
  // is reported nowhere else.
  ASSERT_EQ(stats.degradation.size(), nslabs);
  std::size_t partial_rungs = 0;
  for (const auto& d : stats.degradation)
    if (d.rung == mt::Rung::kPartialResult) ++partial_rungs;
  EXPECT_EQ(partial_rungs, p.missing_slabs());
  EXPECT_EQ(stats.worst_rung(), mt::Rung::kPartialResult);
}

struct Fixture {
  par::ThreadPool pool{4};
  geom::PolygonSet subject, clip;
  mt::Alg2Options base;

  Fixture() {
    const auto pair = data::synthetic_pair(61, 600);
    subject = pair.subject;
    clip = pair.clip;
    base.slabs = 4;
  }
};

Fixture& fx() {
  static Fixture f;
  return f;
}

TEST(Governance, NullTokenChangesNothing) {
  auto& f = fx();
  const geom::PolygonSet want =
      mt::slab_clip(f.subject, f.clip, geom::BoolOp::kUnion, f.pool, f.base);
  mt::Alg2Options o = f.base;
  o.cancel = par::CancelToken{};  // explicit null
  mt::Alg2Stats stats;
  const geom::PolygonSet got =
      mt::slab_clip(f.subject, f.clip, geom::BoolOp::kUnion, f.pool, o, &stats);
  EXPECT_TRUE(bit_identical(got, want));
  EXPECT_FALSE(stats.partial.partial);
  EXPECT_EQ(stats.degraded_slabs(), 0);
}

TEST(Governance, PreCancelledFailsAtEntryEvenWithAllowPartial) {
  auto& f = fx();
  for (const bool allow_partial : {false, true}) {
    mt::Alg2Options o = f.base;
    o.cancel = par::CancelToken::make();
    o.cancel.cancel();
    o.allow_partial = allow_partial;
    EXPECT_EQ(thrown_code([&] {
                mt::slab_clip(f.subject, f.clip, geom::BoolOp::kUnion, f.pool,
                              o);
              }),
              ErrorCode::kCancelled)
        << "allow_partial=" << allow_partial
        << " (the partial contract covers slab tasks, not setup)";
  }
}

TEST(Governance, ExpiredDeadlineFailsPrecisely) {
  auto& f = fx();
  mt::Alg2Options o = f.base;
  o.cancel = par::CancelToken::with_deadline(par::Deadline::in_ms(-1));
  EXPECT_EQ(thrown_code([&] {
              mt::slab_clip(f.subject, f.clip, geom::BoolOp::kIntersection,
                            f.pool, o);
            }),
            ErrorCode::kDeadlineExceeded);
}

TEST(Governance, TinyBudgetFailsPrecisely) {
  auto& f = fx();
  mt::Alg2Options o = f.base;
  o.cancel = par::CancelToken::make();
  auto budget = std::make_shared<par::ResourceBudget>(1);  // 1 byte
  o.cancel.set_budget(budget);
  EXPECT_EQ(thrown_code([&] {
              mt::slab_clip(f.subject, f.clip, geom::BoolOp::kUnion, f.pool, o);
            }),
            ErrorCode::kBudgetExceeded);
  EXPECT_TRUE(budget->blown());
  EXPECT_EQ(budget->used(), 0u) << "unwind must release every charge";
}

TEST(Governance, TinyBudgetWithAllowPartialReturnsPartial) {
  auto& f = fx();
  mt::Alg2Options o = f.base;
  o.cancel = par::CancelToken::make();
  auto budget = std::make_shared<par::ResourceBudget>(1);
  o.cancel.set_budget(budget);
  o.allow_partial = true;
  mt::Alg2Stats stats;
  const geom::PolygonSet got = mt::slab_clip(
      f.subject, f.clip, geom::BoolOp::kUnion, f.pool, o, &stats);
  check_partial_report(stats, o.slabs, ErrorCode::kBudgetExceeded);
  // A 1-byte budget rejects the very first arena charge of every slab that
  // does any work at all; this workload spans all slabs.
  EXPECT_EQ(stats.partial.missing_slabs(), o.slabs);
  EXPECT_EQ(got.num_contours(), 0u);
  EXPECT_EQ(budget->used(), 0u);
}

/// Trace sink that cancels a token on the first slab span — a
/// deterministic stand-in for "the client hung up mid-run".
class CancelOnSlabSink : public obs::TraceSink {
 public:
  explicit CancelOnSlabSink(par::CancelToken t) : token_(std::move(t)) {}
  obs::SpanId begin_span(const char* name, obs::Cat, obs::SpanId) override {
    if (std::strcmp(name, "alg2.slab") == 0) token_.cancel();
    return obs::SpanId{next_.fetch_add(1, std::memory_order_relaxed)};
  }
  void end_span(obs::SpanId) override {}
  void span_arg(obs::SpanId, const char*, std::int64_t) override {}
  void add_counter(const char*, std::int64_t) override {}
  void observe(const char*, double) override {}

 private:
  par::CancelToken token_;
  std::atomic<std::uint64_t> next_{1};
};

TEST(Governance, MidRunCancelThrowsWithoutAllowPartial) {
  auto& f = fx();
  mt::Alg2Options o = f.base;
  o.cancel = par::CancelToken::make();
  CancelOnSlabSink sink(o.cancel);
  o.trace_sink = &sink;
  EXPECT_EQ(thrown_code([&] {
              mt::slab_clip(f.subject, f.clip, geom::BoolOp::kUnion, f.pool, o);
            }),
            ErrorCode::kCancelled);
}

TEST(Governance, MidRunCancelYieldsPartialWhenAllowed) {
  auto& f = fx();
  mt::Alg2Options o = f.base;
  o.cancel = par::CancelToken::make();
  CancelOnSlabSink sink(o.cancel);
  o.trace_sink = &sink;
  o.allow_partial = true;
  mt::Alg2Stats stats;
  mt::slab_clip(f.subject, f.clip, geom::BoolOp::kUnion, f.pool, o, &stats);
  check_partial_report(stats, o.slabs, ErrorCode::kCancelled);
}

TEST(Governance, GenerousGovernanceIsInvisible) {
  auto& f = fx();
  const geom::PolygonSet want =
      mt::slab_clip(f.subject, f.clip, geom::BoolOp::kXor, f.pool, f.base);
  mt::Alg2Options o = f.base;
  o.cancel = par::CancelToken::with_deadline(
      par::Deadline::in_ms(10 * 60 * 1000));
  auto budget = std::make_shared<par::ResourceBudget>(1ull << 30);  // 1 GiB
  o.cancel.set_budget(budget);
  mt::Alg2Stats stats;
  const geom::PolygonSet got =
      mt::slab_clip(f.subject, f.clip, geom::BoolOp::kXor, f.pool, o, &stats);
  EXPECT_TRUE(bit_identical(got, want));
  EXPECT_FALSE(stats.partial.partial);
  EXPECT_EQ(stats.degraded_slabs(), 0);
  EXPECT_EQ(budget->used(), 0u);
  EXPECT_FALSE(budget->blown());
  // Charging really happened: the slab arenas alone exceed one granule.
  EXPECT_GE(budget->peak(), par::gov::ScopedCharge::kGranule);
  EXPECT_LE(budget->peak(), budget->limit());
}

// ---- multiset_clip mirrors the same contracts. ----

struct MsFixture {
  par::ThreadPool pool{4};
  geom::PolygonSet a, b;
  mt::MultisetOptions base;

  MsFixture() {
    a = data::polygon_field(9001, 60, 100.0, 12);
    b = data::polygon_field(9002, 60, 100.0, 10);
    base.slabs = 4;
  }
};

MsFixture& ms() {
  static MsFixture f;
  return f;
}

TEST(GovernanceMultiset, PreCancelledFailsAtEntry) {
  auto& f = ms();
  mt::MultisetOptions o = f.base;
  o.cancel = par::CancelToken::make();
  o.cancel.cancel();
  o.allow_partial = true;  // setup trips still propagate
  EXPECT_EQ(thrown_code([&] {
              mt::multiset_clip(f.a, f.b, geom::BoolOp::kIntersection, f.pool,
                                o);
            }),
            ErrorCode::kCancelled);
}

TEST(GovernanceMultiset, TinyBudgetFailsPrecisely) {
  auto& f = ms();
  mt::MultisetOptions o = f.base;
  o.cancel = par::CancelToken::make();
  o.cancel.set_budget(std::make_shared<par::ResourceBudget>(1));
  EXPECT_EQ(thrown_code([&] {
              mt::multiset_clip(f.a, f.b, geom::BoolOp::kUnion, f.pool, o);
            }),
            ErrorCode::kBudgetExceeded);
}

TEST(GovernanceMultiset, TinyBudgetWithAllowPartialReturnsPartial) {
  auto& f = ms();
  mt::MultisetOptions o = f.base;
  o.cancel = par::CancelToken::make();
  auto budget = std::make_shared<par::ResourceBudget>(1);
  o.cancel.set_budget(budget);
  o.allow_partial = true;
  mt::Alg2Stats stats;
  mt::multiset_clip(f.a, f.b, geom::BoolOp::kUnion, f.pool, o, &stats);
  const mt::PartialReport& p = stats.partial;
  EXPECT_TRUE(p.partial);
  EXPECT_EQ(p.cause, ErrorCode::kBudgetExceeded);
  EXPECT_GE(p.missing_slabs(), 1u);
  EXPECT_EQ(stats.worst_rung(), mt::Rung::kPartialResult);
  for (const auto& r : p.missing) EXPECT_LT(r.y_lo, r.y_hi);
  EXPECT_EQ(budget->used(), 0u);
}

TEST(GovernanceMultiset, GenerousGovernanceIsInvisible) {
  auto& f = ms();
  const geom::PolygonSet want =
      mt::multiset_clip(f.a, f.b, geom::BoolOp::kIntersection, f.pool, f.base);
  mt::MultisetOptions o = f.base;
  o.cancel = par::CancelToken::with_deadline(
      par::Deadline::in_ms(10 * 60 * 1000));
  auto budget = std::make_shared<par::ResourceBudget>(1ull << 30);
  o.cancel.set_budget(budget);
  mt::Alg2Stats stats;
  const geom::PolygonSet got =
      mt::multiset_clip(f.a, f.b, geom::BoolOp::kIntersection, f.pool, o,
                        &stats);
  EXPECT_TRUE(bit_identical(got, want));
  EXPECT_FALSE(stats.partial.partial);
  EXPECT_EQ(stats.degraded_slabs(), 0);
  EXPECT_EQ(budget->used(), 0u);
  EXPECT_GE(budget->peak(), par::gov::ScopedCharge::kGranule);
}

// ---- The psclip::clip facade forwards the whole contract. ----

TEST(GovernanceFacade, GovernedMatchesUngoverned) {
  auto& f = fx();
  const geom::PolygonSet want =
      psclip::clip(f.subject, f.clip, geom::BoolOp::kUnion, Engine::kSlab);
  ClipOptions copts;
  copts.engine = Engine::kSlab;
  copts.cancel = par::CancelToken::with_deadline(
      par::Deadline::in_ms(10 * 60 * 1000));
  copts.cancel.set_budget(std::make_shared<par::ResourceBudget>(1ull << 30));
  mt::PartialReport partial;
  copts.partial = &partial;
  const geom::PolygonSet got =
      psclip::clip(f.subject, f.clip, geom::BoolOp::kUnion, copts);
  EXPECT_TRUE(bit_identical(got, want));
  EXPECT_FALSE(partial.partial);
}

TEST(GovernanceFacade, PreCancelledFailsForEveryEngine) {
  auto& f = fx();
  for (const Engine e :
       {Engine::kAuto, Engine::kVatti, Engine::kMartinez, Engine::kSlab}) {
    ClipOptions copts;
    copts.engine = e;
    copts.cancel = par::CancelToken::make();
    copts.cancel.cancel();
    EXPECT_EQ(thrown_code([&] {
                psclip::clip(f.subject, f.clip, geom::BoolOp::kUnion, copts);
              }),
              ErrorCode::kCancelled)
        << "engine " << static_cast<int>(e);
  }
}

TEST(GovernanceFacade, PartialReportReachesTheCaller) {
  auto& f = fx();
  ClipOptions copts;
  copts.engine = Engine::kSlab;
  copts.cancel = par::CancelToken::make();
  copts.cancel.set_budget(std::make_shared<par::ResourceBudget>(1));
  copts.allow_partial = true;
  mt::PartialReport partial;
  partial.partial = true;  // must be reset by the call
  copts.partial = &partial;
  psclip::clip(f.subject, f.clip, geom::BoolOp::kUnion, copts);
  EXPECT_TRUE(partial.partial);
  EXPECT_EQ(partial.cause, ErrorCode::kBudgetExceeded);
  EXPECT_GE(partial.missing_slabs(), 1u);
}

}  // namespace
}  // namespace psclip
