// Byte-identity contract for the fused slab partition.
//
// Alg2Partition::kFused (the default) assembles each slab's Vatti bound
// table directly from globally prepared contour fragments and slices the
// scanbeam schedule from one shared merged y-list, instead of
// materializing rectangle-clipped slab polygons and re-deriving the sweep
// structures per slab. That is only a legal optimization if it is
// *invisible*: against the materializing kIndexed/kBroadcast paths it must
// produce the same contours in the same order with the same bits — not
// just the same area — on every corpus case, for both sweep kernels, at
// one slab and many. The multiset clipper's fused fragment concatenation
// carries the same contract against its copy-then-rederive baseline.
//
// The corpus is the shared 216-case fuzz generator (tests/fuzz_cases.hpp);
// on top of it, handcrafted boundary-degeneracy cases exercise exactly the
// geometry the fused path special-cases: rectangle-clip pieces with edges
// stitched along slab boundary lines (the collinear-run coalescing),
// zero-height contours sitting on a boundary, and contours spanning every
// slab.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "fuzz_cases.hpp"
#include "geom/polygon.hpp"
#include "mt/algorithm2.hpp"
#include "mt/multiset.hpp"
#include "parallel/thread_pool.hpp"

namespace psclip {
namespace {

using fuzz::FuzzCase;
using fuzz::Inputs;
using fuzz::make_inputs;
using geom::BoolOp;
using geom::PolygonSet;

void expect_identical(const PolygonSet& got, const PolygonSet& want,
                      const std::string& what) {
  ASSERT_EQ(got.num_contours(), want.num_contours()) << what;
  for (std::size_t i = 0; i < got.contours.size(); ++i) {
    ASSERT_EQ(got.contours[i].pts.size(), want.contours[i].pts.size())
        << what << " contour " << i;
    EXPECT_EQ(got.contours[i].hole, want.contours[i].hole)
        << what << " contour " << i;
    for (std::size_t j = 0; j < got.contours[i].pts.size(); ++j) {
      ASSERT_EQ(got.contours[i][j].x, want.contours[i][j].x)
          << what << " contour " << i << " vertex " << j;
      ASSERT_EQ(got.contours[i][j].y, want.contours[i][j].y)
          << what << " contour " << i << " vertex " << j;
    }
  }
}

/// fused == indexed == broadcast, bit for bit, at the given slab count and
/// kernel. One slab exercises the "whole input is one slab" degenerate
/// decomposition (everything is well-contained, the shared-schedule slice
/// is the whole schedule); many slabs exercise straddling-piece prep.
void check_slab_identity(const PolygonSet& a, const PolygonSet& b, BoolOp op,
                         par::ThreadPool& pool, unsigned slabs,
                         seq::SweepKernel kernel, const std::string& what) {
  mt::Alg2Options of;
  of.slabs = slabs;
  of.partition = mt::Alg2Partition::kFused;
  of.rect_method = seq::RectClipMethod::kVatti;  // corpus has self-crossings
  of.sweep_kernel = kernel;
  mt::Alg2Options oi = of;
  oi.partition = mt::Alg2Partition::kIndexed;

  mt::Alg2Stats sf;
  const PolygonSet rf = mt::slab_clip(a, b, op, pool, of, &sf);
  const PolygonSet ri = mt::slab_clip(a, b, op, pool, oi);
  expect_identical(rf, ri, what + " fused-vs-indexed");

  // The fused run must stay on the healthy rung — falling back to the
  // materializing ladder would make this test vacuous.
  for (const auto& rep : sf.degradation)
    ASSERT_EQ(rep.rung, mt::Rung::kHealthy) << what << ": " << rep.message;
}

class FusedPartitionFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FusedPartitionFuzz, FusedMatchesIndexedBitForBit) {
  const FuzzCase c = GetParam();
  SCOPED_TRACE("repro: " + c.repro());
  const Inputs in = make_inputs(c);
  static par::ThreadPool pool(4);

  for (const seq::SweepKernel kernel :
       {seq::SweepKernel::kTuned, seq::SweepKernel::kReference}) {
    const std::string kn =
        kernel == seq::SweepKernel::kTuned ? "tuned" : "reference";
    check_slab_identity(in.a, in.b, c.op, pool, /*slabs=*/1, kernel,
                        kn + " slabs=1");
    check_slab_identity(in.a, in.b, c.op, pool, /*slabs=*/6, kernel,
                        kn + " slabs=6");
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, FusedPartitionFuzz,
                         ::testing::ValuesIn(fuzz::make_cases()));

// ---------------------------------------------------------------------------
// Boundary degeneracies
// ---------------------------------------------------------------------------

// A stack of touching rectangles: shared horizontal edges, shared
// ordinates, and slab boundaries that land exactly midway between rows —
// every rectangle-clip piece gets edges stitched along boundary lines,
// the geometry the collinear-run coalescing exists for.
TEST(FusedPartitionDegenerate, TouchingRectangleStack) {
  PolygonSet a, b;
  for (int i = 0; i < 8; ++i)
    a.add(geom::make_rect(0.0, i * 1.0, 10.0, (i + 1) * 1.0));
  b.add(geom::make_rect(-1.0, 0.5, 11.0, 7.5));
  par::ThreadPool pool(4);
  for (const BoolOp op : geom::kAllOps)
    for (const unsigned slabs : {1u, 4u, 8u})
      check_slab_identity(a, b, op, pool, slabs, seq::SweepKernel::kTuned,
                          "rect-stack op=" + std::string(geom::to_string(op)) +
                              " slabs=" + std::to_string(slabs));
}

// Zero-height contours (all vertices on one ordinate) sitting among normal
// ones: preparation collapses them to nothing on every path; the fused
// fragment append must agree with the materializing prep about that.
TEST(FusedPartitionDegenerate, ZeroHeightContours) {
  PolygonSet a = data::polygon_field(301, 12, 40.0, 8);
  a.add({{0.0, 13.0}, {5.0, 13.0}, {9.0, 13.0}});   // zero-height triangle
  a.add({{20.0, 21.0}, {26.0, 21.0}, {23.0, 21.0}});
  PolygonSet b = data::polygon_field(302, 12, 40.0, 7);
  par::ThreadPool pool(4);
  for (const BoolOp op : {BoolOp::kUnion, BoolOp::kIntersection})
    for (const unsigned slabs : {1u, 4u, 8u})
      check_slab_identity(a, b, op, pool, slabs, seq::SweepKernel::kTuned,
                          "zero-height slabs=" + std::to_string(slabs));
}

// One contour spanning every slab (the index degenerates to broadcast for
// it, and under fused it is a straddler in every slab) against a field of
// small well-contained contours riding the shared schedule.
TEST(FusedPartitionDegenerate, ContourSpanningAllSlabs) {
  PolygonSet a = data::polygon_field(303, 16, 60.0, 9);
  a.add(geom::make_rect(-5.0, -5.0, 65.0, 65.0));  // spans everything
  PolygonSet b = data::polygon_field(304, 16, 60.0, 8);
  par::ThreadPool pool(4);
  for (const seq::SweepKernel kernel :
       {seq::SweepKernel::kTuned, seq::SweepKernel::kReference})
    for (const unsigned slabs : {4u, 8u, 16u})
      check_slab_identity(a, b, BoolOp::kXor, pool, slabs, kernel,
                          "spanning slabs=" + std::to_string(slabs));
}

// ---------------------------------------------------------------------------
// Multiset fused fragment concatenation
// ---------------------------------------------------------------------------

TEST(FusedMultiset, FusedMatchesMaterializingBitForBit) {
  const PolygonSet a = data::polygon_field(601, 30, 100.0, 9);
  const PolygonSet b = data::polygon_field(602, 30, 100.0, 8);
  par::ThreadPool pool(4);
  for (const BoolOp op : geom::kAllOps) {
    for (const seq::SweepKernel kernel :
         {seq::SweepKernel::kTuned, seq::SweepKernel::kReference}) {
      mt::MultisetOptions of;
      of.slabs = 4;
      of.fused = true;
      of.sweep_kernel = kernel;
      mt::MultisetOptions om = of;
      om.fused = false;
      mt::Alg2Stats sf;
      const PolygonSet rf = mt::multiset_clip(a, b, op, pool, of, &sf);
      const PolygonSet rm = mt::multiset_clip(a, b, op, pool, om);
      expect_identical(rf, rm,
                       std::string("multiset op=") + geom::to_string(op));
      for (const auto& rep : sf.degradation)
        ASSERT_EQ(rep.rung, mt::Rung::kHealthy) << rep.message;
    }
  }
}

// Corpus lane for the multiset fused path: pair inputs are valid two-set
// inputs too (each "set" is whatever contours the generator produced).
class FusedMultisetFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FusedMultisetFuzz, FusedMatchesMaterializing) {
  const FuzzCase c = GetParam();
  SCOPED_TRACE("repro: " + c.repro());
  const Inputs in = make_inputs(c);
  static par::ThreadPool pool(4);
  mt::MultisetOptions of;
  of.slabs = 4;
  of.fused = true;
  mt::MultisetOptions om = of;
  om.fused = false;
  const PolygonSet rf = mt::multiset_clip(in.a, in.b, c.op, pool, of);
  const PolygonSet rm = mt::multiset_clip(in.a, in.b, c.op, pool, om);
  expect_identical(rf, rm, "multiset corpus");
}

// A 36-case slice keeps the multiset lane fast; the full 216 cases run
// through the slab_clip lane above, which covers the shared prep chain.
INSTANTIATE_TEST_SUITE_P(CorpusSlice, FusedMultisetFuzz,
                         ::testing::ValuesIn([] {
                           auto all = fuzz::make_cases();
                           std::vector<FuzzCase> slice;
                           for (std::size_t i = 0; i < all.size(); i += 6)
                             slice.push_back(all[i]);
                           return slice;
                         }()));

// The output-sensitivity claim itself, in deterministic units: per-slab
// touched edges under fused must not exceed the indexed partition's count
// (fused copies prepared bound edges; indexed re-reads input vertices and
// then re-derives bounds from them — the bound table never has more edges
// than vertices).
TEST(FusedPartition, TouchedEdgesAreOutputSensitive) {
  const PolygonSet a = data::polygon_field(701, 60, 120.0, 10);
  const PolygonSet b = data::polygon_field(702, 60, 120.0, 9);
  par::ThreadPool pool(4);
  for (const unsigned slabs : {4u, 8u}) {
    mt::Alg2Options of, oi;
    of.slabs = oi.slabs = slabs;
    of.partition = mt::Alg2Partition::kFused;
    oi.partition = mt::Alg2Partition::kIndexed;
    mt::Alg2Stats sf, si;
    (void)mt::slab_clip(a, b, BoolOp::kUnion, pool, of, &sf);
    (void)mt::slab_clip(a, b, BoolOp::kUnion, pool, oi, &si);
    std::int64_t tf = 0, ti = 0;
    for (const auto& s : sf.slabs) tf += s.touched_edges;
    for (const auto& s : si.slabs) ti += s.touched_edges;
    EXPECT_LE(tf, ti) << "slabs=" << slabs;
    // The fused stats carry the new counters; bound building must have
    // been charged somewhere.
    std::int64_t build = 0;
    for (const auto& s : sf.slabs) build += s.bound_build_ns;
    EXPECT_GT(build, 0) << "slabs=" << slabs;
  }
}

}  // namespace
}  // namespace psclip
