// Fault-injection matrix for the degradation ladder (requires a build with
// -DPSCLIP_FAULT_INJECTION=ON; the tests are not registered otherwise).
//
// Each case arms one deterministic fault plan — a site (rect-clip, Vatti
// sweep, arena borrow, task-group wrapper), a kind (throw, bad_alloc,
// silent output corruption), a slab key, and a fire count — then runs
// slab_clip / multiset_clip and asserts BOTH halves of the isolation
// contract:
//
//   1. recovery: the output matches the unfaulted run — byte-identical
//      when recovery happens on the kRetrySafe rung (which is broadcast
//      repartition, guaranteed bit-equal to the healthy indexed path by
//      the cross-engine fuzz harness), area-equal on the deeper rungs
//      (alternate rectangle clipper / sequential fallbacks legitimately
//      change the vertex representation);
//   2. accounting: Alg2Stats::degradation records exactly the expected
//      rung, attempt count, and cause taxonomy code for the faulted slab,
//      and kHealthy everywhere else.
//
// Rung determinism: one fault firing aborts exactly one attempt, and every
// ladder rung of slab_clip enters vatti_clip at least once, so a
// kVattiSweep plan with fire_count=k lands the slab exactly k rungs down.
// rect-clip sites are unreachable from the kSlabSequential rung onward,
// and the arena is only borrowed on the healthy rung, which pins their
// deepest reachable rungs — the matrix encodes that reachability.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "geom/polygon.hpp"
#include "mt/algorithm2.hpp"
#include "mt/multiset.hpp"
#include "mt/stats.hpp"
#include "parallel/fault.hpp"
#include "parallel/thread_pool.hpp"
#include "test_support.hpp"

namespace psclip {
namespace {

using geom::BoolOp;
using geom::PolygonSet;
using mt::Rung;
using par::fault::Kind;
using par::fault::Plan;
using par::fault::Site;

static_assert(par::fault::kEnabled,
              "fault_injection_test requires PSCLIP_FAULT_INJECTION=ON");

/// RAII disarm so a failing assertion cannot leak an armed plan into the
/// next test.
struct ArmedPlan {
  explicit ArmedPlan(const Plan& p) { par::fault::arm(p); }
  ~ArmedPlan() { par::fault::disarm(); }
};

void expect_identical(const PolygonSet& got, const PolygonSet& want,
                      const std::string& what) {
  ASSERT_EQ(got.num_contours(), want.num_contours()) << what;
  for (std::size_t i = 0; i < got.contours.size(); ++i) {
    ASSERT_EQ(got.contours[i].pts.size(), want.contours[i].pts.size())
        << what << " contour " << i;
    for (std::size_t j = 0; j < got.contours[i].pts.size(); ++j) {
      EXPECT_EQ(got.contours[i][j].x, want.contours[i][j].x)
          << what << " contour " << i << " vertex " << j;
      EXPECT_EQ(got.contours[i][j].y, want.contours[i][j].y)
          << what << " contour " << i << " vertex " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// slab_clip matrix
// ---------------------------------------------------------------------------

struct SlabMatrixCase {
  const char* name;
  Site site;
  Kind kind;
  std::uint64_t fire_count;
  Rung want_rung;      ///< rung of the faulted slab
  ErrorCode want_cause;
  bool byte_identical;  ///< deeper rungs are area-equal, not bit-equal
};

// The targeted slab. With slabs=4 on the blob pair every slab rect-clips
// straddling contours, so every rung's fault site is actually reached.
constexpr std::uint64_t kSlab = 1;

const SlabMatrixCase kSlabMatrix[] = {
    // One firing at each site -> first retry succeeds, byte-identical.
    {"vatti-throw-1", Site::kVattiSweep, Kind::kThrow, 1, Rung::kRetrySafe,
     ErrorCode::kInjected, true},
    {"vatti-badalloc-1", Site::kVattiSweep, Kind::kBadAlloc, 1,
     Rung::kRetrySafe, ErrorCode::kResource, true},
    {"vatti-corrupt-1", Site::kVattiSweep, Kind::kCorrupt, 1, Rung::kRetrySafe,
     ErrorCode::kNonFinite, true},
    {"rect-throw-1", Site::kRectClip, Kind::kThrow, 1, Rung::kRetrySafe,
     ErrorCode::kInjected, true},
    {"rect-badalloc-1", Site::kRectClip, Kind::kBadAlloc, 1, Rung::kRetrySafe,
     ErrorCode::kResource, true},
    {"rect-corrupt-1", Site::kRectClip, Kind::kCorrupt, 1, Rung::kRetrySafe,
     ErrorCode::kNonFinite, true},
    {"arena-throw-1", Site::kArena, Kind::kThrow, 1, Rung::kRetrySafe,
     ErrorCode::kInjected, true},
    {"arena-corrupt-1", Site::kArena, Kind::kCorrupt, 1, Rung::kRetrySafe,
     ErrorCode::kNonFinite, true},
    // The fused bound-construction site (entry of clip_bounds_to_slab;
    // corrupt poisons the straddling pieces, caught by the finiteness
    // check before the sweep). Like the arena it is only reachable on the
    // healthy rung — kRetrySafe is the materializing path — so even an
    // unbounded plan stops at one rung down.
    {"fusedbounds-throw-1", Site::kFusedBounds, Kind::kThrow, 1,
     Rung::kRetrySafe, ErrorCode::kInjected, true},
    {"fusedbounds-badalloc-1", Site::kFusedBounds, Kind::kBadAlloc, 1,
     Rung::kRetrySafe, ErrorCode::kResource, true},
    {"fusedbounds-corrupt-1", Site::kFusedBounds, Kind::kCorrupt, 1,
     Rung::kRetrySafe, ErrorCode::kNonFinite, true},
    {"fusedbounds-throw-many", Site::kFusedBounds, Kind::kThrow, 100,
     Rung::kRetrySafe, ErrorCode::kInjected, true},
    // Repeated firings drive the ladder exactly one rung per firing.
    {"vatti-throw-2", Site::kVattiSweep, Kind::kThrow, 2, Rung::kAltRectMethod,
     ErrorCode::kInjected, false},
    {"vatti-throw-3", Site::kVattiSweep, Kind::kThrow, 3,
     Rung::kSlabSequential, ErrorCode::kInjected, false},
    {"rect-throw-2", Site::kRectClip, Kind::kThrow, 2, Rung::kAltRectMethod,
     ErrorCode::kInjected, false},
    // kSlabSequential never calls rect_clip, so the plan goes quiet there
    // no matter how many shots remain.
    {"rect-throw-many", Site::kRectClip, Kind::kThrow, 100,
     Rung::kSlabSequential, ErrorCode::kInjected, false},
    // The arena is only borrowed on the healthy rung.
    {"arena-throw-many", Site::kArena, Kind::kThrow, 100, Rung::kRetrySafe,
     ErrorCode::kInjected, true},
    // Every rung enters vatti_clip, so an unbounded keyed plan exhausts the
    // per-slab ladder and forces the whole-input sequential fallback
    // (which runs keyless, out of the plan's reach).
    {"vatti-throw-whole-input", Site::kVattiSweep, Kind::kThrow, 100,
     Rung::kWholeInput, ErrorCode::kInjected, false},
};

class SlabFaultMatrix : public ::testing::TestWithParam<SlabMatrixCase> {};

TEST_P(SlabFaultMatrix, SingleSlabFaultIsIsolated) {
  const SlabMatrixCase c = GetParam();
  SCOPED_TRACE(c.name);
  const auto pair = data::synthetic_pair(7, 48);
  par::ThreadPool pool(4);
  mt::Alg2Options o;
  o.slabs = 4;
  o.rect_method = seq::RectClipMethod::kVatti;

  par::fault::disarm();
  mt::Alg2Stats base_stats;
  const PolygonSet want =
      mt::slab_clip(pair.subject, pair.clip, BoolOp::kIntersection, pool, o,
                    &base_stats);
  ASSERT_EQ(base_stats.degraded_slabs(), 0);
  const std::size_t nslabs = base_stats.degradation.size();
  ASSERT_GT(nslabs, kSlab);

  Plan p;
  p.site = c.site;
  p.kind = c.kind;
  p.key = kSlab;
  p.fire_count = c.fire_count;
  ArmedPlan armed(p);

  mt::Alg2Stats stats;
  const PolygonSet got =
      mt::slab_clip(pair.subject, pair.clip, BoolOp::kIntersection, pool, o,
                    &stats);
  EXPECT_GT(par::fault::fired(), 0u) << "plan never fired";

  // Accounting: the faulted slab reports exactly the expected rung and
  // cause; under the whole-input fallback every slab reports kWholeInput.
  ASSERT_EQ(stats.degradation.size(), nslabs);
  const mt::DegradationReport& rep = stats.degradation[kSlab];
  EXPECT_EQ(rep.rung, c.want_rung)
      << "got rung " << mt::to_string(rep.rung) << ": " << rep.message;
  EXPECT_EQ(rep.cause, c.want_cause) << rep.message;
  EXPECT_FALSE(rep.message.empty());
  if (c.want_rung != Rung::kWholeInput) {
    // One attempt per rung walked: a slab recovering on rung r made r
    // failed attempts plus the successful one.
    EXPECT_EQ(rep.attempts, static_cast<std::uint32_t>(c.want_rung) + 1);
    for (std::size_t t = 0; t < nslabs; ++t) {
      if (t == kSlab) continue;
      EXPECT_EQ(stats.degradation[t].rung, Rung::kHealthy)
          << "fault leaked into slab " << t << ": "
          << stats.degradation[t].message;
    }
  } else {
    for (std::size_t t = 0; t < nslabs; ++t)
      EXPECT_EQ(stats.degradation[t].rung, Rung::kWholeInput) << "slab " << t;
  }
  EXPECT_EQ(stats.worst_rung(), c.want_rung);

  // Recovery: byte-identity on the safe-retry rung, area identity beyond.
  if (c.byte_identical) {
    expect_identical(got, want, c.name);
  } else {
    EXPECT_TRUE(test::areas_match(geom::signed_area(got),
                                  geom::signed_area(want), 1e-6))
        << "faulted=" << geom::signed_area(got)
        << " unfaulted=" << geom::signed_area(want);
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, SlabFaultMatrix,
                         ::testing::ValuesIn(kSlabMatrix),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

// A fault in the TaskGroup wrapper kills the slab task before its body
// runs; the caller must recover the lost slab on the safe-retry rung with
// byte-identical output. (Sibling slabs skipped by the group's
// fail-fast flag are recovered the same way — also bit-identical.)
TEST(SlabFaultInjection, TaskGroupFaultRecoversOnCaller) {
  const auto pair = data::synthetic_pair(11, 48);
  par::ThreadPool pool(4);
  mt::Alg2Options o;
  o.slabs = 4;
  o.rect_method = seq::RectClipMethod::kVatti;

  par::fault::disarm();
  const PolygonSet want =
      mt::slab_clip(pair.subject, pair.clip, BoolOp::kUnion, pool, o);

  Plan p;
  p.site = Site::kTaskGroup;
  p.kind = Kind::kThrow;
  p.key = kSlab;  // TaskGroup keys by submission index == slab index
  p.fire_count = 1;
  ArmedPlan armed(p);

  mt::Alg2Stats stats;
  const PolygonSet got =
      mt::slab_clip(pair.subject, pair.clip, BoolOp::kUnion, pool, o, &stats);
  EXPECT_EQ(par::fault::fired(), 1u);

  ASSERT_GT(stats.degradation.size(), kSlab);
  EXPECT_EQ(stats.degradation[kSlab].rung, Rung::kRetrySafe)
      << stats.degradation[kSlab].message;
  EXPECT_EQ(stats.degradation[kSlab].cause, ErrorCode::kInjected);
  // Slabs the group skipped after the failure also land on kRetrySafe;
  // nothing may fall deeper than that.
  for (const auto& rep : stats.degradation)
    EXPECT_LE(rep.rung, Rung::kRetrySafe) << rep.message;

  expect_identical(got, want, "task-group fault");
}

// Fail-fast mode: with isolation off, the injected fault must surface to
// the caller unchanged instead of degrading.
TEST(SlabFaultInjection, IsolationOffPropagatesFault) {
  const auto pair = data::synthetic_pair(13, 40);
  par::ThreadPool pool(4);
  mt::Alg2Options o;
  o.slabs = 4;
  o.rect_method = seq::RectClipMethod::kVatti;
  o.isolate_faults = false;

  Plan p;
  p.site = Site::kVattiSweep;
  p.kind = Kind::kThrow;
  p.key = kSlab;
  p.fire_count = 1;
  ArmedPlan armed(p);

  try {
    mt::slab_clip(pair.subject, pair.clip, BoolOp::kIntersection, pool, o);
    FAIL() << "fault must propagate when isolation is off";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInjected);
  }
}

// Unkeyed unbounded plan: every slab fails on every rung AND the
// whole-input fallback itself faults — nothing can produce output, so the
// error must propagate rather than return garbage.
TEST(SlabFaultInjection, UnboundedAnyKeyFaultPropagates) {
  const auto pair = data::synthetic_pair(17, 40);
  par::ThreadPool pool(4);
  mt::Alg2Options o;
  o.slabs = 4;
  o.rect_method = seq::RectClipMethod::kVatti;

  Plan p;
  p.site = Site::kVattiSweep;
  p.kind = Kind::kThrow;
  p.key = par::fault::kAnyKey;
  p.fire_count = ~std::uint64_t{0};
  ArmedPlan armed(p);

  EXPECT_THROW(
      mt::slab_clip(pair.subject, pair.clip, BoolOp::kIntersection, pool, o),
      Error);
}

// ---------------------------------------------------------------------------
// multiset_clip matrix
// ---------------------------------------------------------------------------

struct MultisetMatrixCase {
  const char* name;
  Site site;
  Kind kind;
  std::uint64_t fire_count;
  Rung want_rung;
  ErrorCode want_cause;
  bool byte_identical;
};

const MultisetMatrixCase kMultisetMatrix[] = {
    {"vatti-throw-1", Site::kVattiSweep, Kind::kThrow, 1, Rung::kRetrySafe,
     ErrorCode::kInjected, true},
    {"vatti-badalloc-1", Site::kVattiSweep, Kind::kBadAlloc, 1,
     Rung::kRetrySafe, ErrorCode::kResource, true},
    {"vatti-corrupt-1", Site::kVattiSweep, Kind::kCorrupt, 1, Rung::kRetrySafe,
     ErrorCode::kNonFinite, true},
    {"arena-throw-1", Site::kArena, Kind::kThrow, 1, Rung::kRetrySafe,
     ErrorCode::kInjected, true},
    {"arena-corrupt-1", Site::kArena, Kind::kCorrupt, 1, Rung::kRetrySafe,
     ErrorCode::kNonFinite, true},
    // The fused fragment-concatenation site fires at the top of the fused
    // healthy rung only; kRetrySafe materializes, so the plan goes quiet
    // there even with shots left.
    {"fusedbounds-throw-1", Site::kFusedBounds, Kind::kThrow, 1,
     Rung::kRetrySafe, ErrorCode::kInjected, true},
    {"fusedbounds-throw-many", Site::kFusedBounds, Kind::kThrow, 100,
     Rung::kRetrySafe, ErrorCode::kInjected, true},
    // The multiset ladder has two per-slab rungs; an unbounded keyed plan
    // forces the keyless whole-input fallback.
    {"vatti-throw-whole-input", Site::kVattiSweep, Kind::kThrow, 100,
     Rung::kWholeInput, ErrorCode::kInjected, false},
};

class MultisetFaultMatrix
    : public ::testing::TestWithParam<MultisetMatrixCase> {};

TEST_P(MultisetFaultMatrix, SingleSlabFaultIsIsolated) {
  const MultisetMatrixCase c = GetParam();
  SCOPED_TRACE(c.name);
  const PolygonSet a = data::polygon_field(501, 24, 100.0, 8);
  const PolygonSet b = data::polygon_field(502, 24, 100.0, 7);
  par::ThreadPool pool(4);
  mt::MultisetOptions o;
  o.slabs = 4;

  par::fault::disarm();
  mt::Alg2Stats base_stats;
  const PolygonSet want = mt::multiset_clip(a, b, BoolOp::kIntersection, pool,
                                            o, &base_stats);
  ASSERT_EQ(base_stats.degraded_slabs(), 0);
  const std::size_t nslabs = base_stats.degradation.size();
  ASSERT_GT(nslabs, kSlab);

  Plan p;
  p.site = c.site;
  p.kind = c.kind;
  p.key = kSlab;
  p.fire_count = c.fire_count;
  ArmedPlan armed(p);

  mt::Alg2Stats stats;
  const PolygonSet got =
      mt::multiset_clip(a, b, BoolOp::kIntersection, pool, o, &stats);
  EXPECT_GT(par::fault::fired(), 0u) << "plan never fired";

  ASSERT_EQ(stats.degradation.size(), nslabs);
  const mt::DegradationReport& rep = stats.degradation[kSlab];
  EXPECT_EQ(rep.rung, c.want_rung)
      << "got rung " << mt::to_string(rep.rung) << ": " << rep.message;
  EXPECT_EQ(rep.cause, c.want_cause) << rep.message;
  if (c.want_rung != Rung::kWholeInput) {
    EXPECT_EQ(rep.attempts, static_cast<std::uint32_t>(c.want_rung) + 1);
    for (std::size_t t = 0; t < nslabs; ++t) {
      if (t == kSlab) continue;
      EXPECT_EQ(stats.degradation[t].rung, Rung::kHealthy)
          << "fault leaked into slab " << t;
    }
  }

  if (c.byte_identical) {
    expect_identical(got, want, c.name);
  } else {
    EXPECT_TRUE(test::areas_match(geom::signed_area(got),
                                  geom::signed_area(want), 1e-6))
        << "faulted=" << geom::signed_area(got)
        << " unfaulted=" << geom::signed_area(want);
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, MultisetFaultMatrix,
                         ::testing::ValuesIn(kMultisetMatrix),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(MultisetFaultInjection, IsolationOffPropagatesFault) {
  const PolygonSet a = data::polygon_field(511, 20, 90.0, 8);
  const PolygonSet b = data::polygon_field(512, 20, 90.0, 7);
  par::ThreadPool pool(4);
  mt::MultisetOptions o;
  o.slabs = 4;
  o.isolate_faults = false;

  Plan p;
  p.site = Site::kVattiSweep;
  p.kind = Kind::kThrow;
  p.key = kSlab;
  p.fire_count = 1;
  ArmedPlan armed(p);

  EXPECT_THROW(mt::multiset_clip(a, b, BoolOp::kIntersection, pool, o), Error);
}

}  // namespace
}  // namespace psclip
