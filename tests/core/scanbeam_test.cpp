#include "core/scanbeam.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "geom/perturb.hpp"
#include "test_support.hpp"

namespace psclip::core {
namespace {

seq::BoundTable table_for(geom::PolygonSet a, geom::PolygonSet b = {}) {
  geom::remove_horizontals(a);
  geom::remove_horizontals(b);
  return seq::build_bounds(a, b);
}

TEST(ScanbeamPartition, TriangleBasics) {
  par::ThreadPool pool(2);
  const auto bt = table_for(geom::make_polygon({{0, 0}, {4, 1}, {2, 5}}));
  const auto part = partition_scanbeams(pool, bt);
  EXPECT_EQ(part.ys.size(), 3u);  // three distinct vertex ordinates
  EXPECT_EQ(part.num_beams(), 2u);
  // Beam 0 ([y0,y1]) holds edges spanning it.
  EXPECT_EQ(part.offsets.size(), 3u);
  EXPECT_EQ(part.total_incidences(), 4);  // 2 edges in one beam, 2 in other
  EXPECT_EQ(part.k_prime(bt.num_edges()), 1);  // one edge split once
}

class PartitionRandom : public ::testing::TestWithParam<int> {};

TEST_P(PartitionRandom, SegtreeAndDirectAgree) {
  par::ThreadPool pool(4);
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const auto bt = table_for(
      test::random_polygon(seed * 2 + 1, 10 + GetParam() * 3, 0, 0, 10,
                           GetParam() % 3 == 0),
      test::random_polygon(seed * 2 + 2, 8 + GetParam() * 2, 1, 1, 8));
  const auto a = partition_scanbeams(pool, bt);
  const auto b = partition_scanbeams_direct(pool, bt);
  ASSERT_EQ(a.ys, b.ys);
  ASSERT_EQ(a.offsets, b.offsets);
  for (std::size_t beam = 0; beam < a.num_beams(); ++beam) {
    std::multiset<std::int32_t> sa(
        a.edge_ids.begin() + static_cast<std::ptrdiff_t>(a.offsets[beam]),
        a.edge_ids.begin() + static_cast<std::ptrdiff_t>(a.offsets[beam + 1]));
    std::multiset<std::int32_t> sb(
        b.edge_ids.begin() + static_cast<std::ptrdiff_t>(b.offsets[beam]),
        b.edge_ids.begin() + static_cast<std::ptrdiff_t>(b.offsets[beam + 1]));
    EXPECT_EQ(sa, sb) << "beam " << beam;
  }
}

TEST_P(PartitionRandom, EveryBeamContentIsExact) {
  par::ThreadPool pool(4);
  const auto seed = static_cast<std::uint64_t>(GetParam()) + 100;
  const auto bt =
      table_for(test::random_polygon(seed, 12 + GetParam() * 2, 0, 0, 10));
  const auto part = partition_scanbeams(pool, bt);
  for (std::size_t beam = 0; beam < part.num_beams(); ++beam) {
    const double yb = part.ys[beam], yt = part.ys[beam + 1];
    std::set<std::int32_t> got(
        part.edge_ids.begin() +
            static_cast<std::ptrdiff_t>(part.offsets[beam]),
        part.edge_ids.begin() +
            static_cast<std::ptrdiff_t>(part.offsets[beam + 1]));
    std::set<std::int32_t> want;
    for (std::size_t e = 0; e < bt.edges.size(); ++e)
      if (bt.edges[e].bot.y <= yb && bt.edges[e].top.y >= yt)
        want.insert(static_cast<std::int32_t>(e));
    EXPECT_EQ(got, want) << "beam " << beam;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, PartitionRandom, ::testing::Range(0, 10));

TEST(ScanbeamPartition, KPrimeGrowsWithSpanningEdges) {
  par::ThreadPool pool(2);
  // A tall thin triangle next to a stack of small ones: the tall edges
  // span many beams, so k' > 0 and equals total incidences - edge count.
  geom::PolygonSet p = geom::make_polygon({{0, 0}, {1, 0.05}, {0.5, 100}});
  for (int i = 0; i < 8; ++i)
    p.add({{3.0, i * 10 + 1.0}, {4.0, i * 10 + 1.2}, {3.5, i * 10 + 5.0}});
  geom::remove_horizontals(p);
  const auto bt = seq::build_bounds(p, {});
  const auto part = partition_scanbeams(pool, bt);
  EXPECT_GT(part.k_prime(bt.num_edges()), 20);
  EXPECT_EQ(part.total_incidences(),
            part.k_prime(bt.num_edges()) +
                static_cast<std::int64_t>(bt.num_edges()));
}

TEST(ScanbeamPartition, EmptyInput) {
  par::ThreadPool pool(2);
  const seq::BoundTable bt;
  const auto part = partition_scanbeams(pool, bt);
  EXPECT_EQ(part.num_beams(), 0u);
  EXPECT_EQ(part.total_incidences(), 0);
}

}  // namespace
}  // namespace psclip::core
