#include "core/merge.hpp"

#include <gtest/gtest.h>

#include "geom/point_in_polygon.hpp"

namespace psclip::core {
namespace {

using geom::Contour;
using geom::Point;

Contour ccw_rect(double x0, double y0, double x1, double y1) {
  return geom::make_rect(x0, y0, x1, y1);
}

TEST(WeldArena, TwoStackedRectsBecomeOne) {
  WeldArena arena;
  arena.add_ring(ccw_rect(0, 0, 4, 2));
  arena.add_ring(ccw_rect(0, 2, 4, 5));
  arena.weld_scanline(2.0);
  const auto out = arena.extract();
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_NEAR(geom::signed_area(out), 20.0, 1e-12);
  EXPECT_FALSE(out.contours[0].hole);
  // Virtual vertices on the weld line are packed away: 4 corners remain.
  EXPECT_EQ(out.contours[0].size(), 4u);
}

TEST(WeldArena, PartialOverlapSubdivides) {
  // Top side [0,4] welds against two bottoms [0,2] and [2,4].
  WeldArena arena;
  arena.add_ring(ccw_rect(0, 0, 4, 2));
  arena.add_ring(ccw_rect(0, 2, 2, 4));
  arena.add_ring(ccw_rect(2, 2, 4, 4));
  arena.weld_scanline(2.0);
  const auto out = arena.extract();
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_NEAR(geom::signed_area(out), 16.0, 1e-12);
}

TEST(WeldArena, MismatchedSpansLeaveBoundary) {
  // Bottom rect is wider: only the shared [1,3] stretch welds; the rest
  // of the top side remains result boundary (an L-profile).
  WeldArena arena;
  arena.add_ring(ccw_rect(0, 0, 4, 2));
  arena.add_ring(ccw_rect(1, 2, 3, 4));
  arena.weld_scanline(2.0);
  const auto out = arena.extract();
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_NEAR(geom::signed_area(out), 12.0, 1e-12);
  EXPECT_TRUE(geom::point_in_polygon({2, 3}, out));
  EXPECT_FALSE(geom::point_in_polygon({0.5, 3}, out));
}

TEST(WeldArena, HoleEmergesClockwise) {
  // A ring of four trapezoid-ish pieces around a central void, stacked as
  // two beams: welding must produce an exterior ring plus a CW hole.
  WeldArena arena;
  // Lower beam: U-shape bottom piece.
  arena.add_ring(Contour{{{0, 0}, {6, 0}, {6, 2}, {0, 2}}, false});
  // Upper beam: left wall, right wall (the void sits between them).
  arena.add_ring(Contour{{{0, 2}, {2, 2}, {2, 4}, {0, 4}}, false});
  arena.add_ring(Contour{{{4, 2}, {6, 2}, {6, 4}, {4, 4}}, false});
  // Cap beam.
  arena.add_ring(Contour{{{0, 4}, {6, 4}, {6, 6}, {0, 6}}, false});
  arena.weld_scanline(2.0);
  arena.weld_scanline(4.0);
  const auto out = arena.extract();
  ASSERT_EQ(out.num_contours(), 2u);
  double total = geom::signed_area(out);
  EXPECT_NEAR(total, 32.0, 1e-12);  // 36 minus the 2x2 void
  int holes = 0;
  for (const auto& c : out.contours)
    if (c.hole) {
      ++holes;
      EXPECT_LT(geom::signed_area(c), 0.0);
    }
  EXPECT_EQ(holes, 1);
  EXPECT_FALSE(geom::point_in_polygon({3, 3}, out));
  EXPECT_TRUE(geom::point_in_polygon({1, 1}, out));
}

TEST(WeldArena, UnweldedRingsPassThrough) {
  WeldArena arena;
  arena.add_ring(ccw_rect(0, 0, 1, 1));
  arena.add_ring(ccw_rect(5, 5, 6, 6));
  const auto out = arena.extract();
  EXPECT_EQ(out.num_contours(), 2u);
  EXPECT_NEAR(geom::signed_area(out), 2.0, 1e-12);
}

TEST(WeldArena, FlatAndTreeStrategiesAgree) {
  par::ThreadPool pool(2);
  auto build = [] {
    WeldArena a;
    for (int i = 0; i < 8; ++i)
      a.add_ring(ccw_rect(0, i, 3 + (i % 2), i + 1));
    return a;
  };
  std::vector<double> ys;
  for (int i = 0; i <= 8; ++i) ys.push_back(i);

  WeldArena flat = build();
  flat.weld_flat(pool, ys);
  WeldArena tree = build();
  const int phases = tree.weld_tree(pool, ys);
  EXPECT_GE(phases, 3);  // log2(8)
  const auto a = flat.extract();
  const auto b = tree.extract();
  EXPECT_EQ(a.num_contours(), b.num_contours());
  EXPECT_NEAR(geom::signed_area(a), geom::signed_area(b), 1e-12);
}

TEST(WeldArena, ChainOfWeldsAcrossOneLine) {
  // Three pieces over two pieces with interleaved subdivision points.
  WeldArena arena;
  arena.add_ring(ccw_rect(0, 0, 2.5, 1));
  arena.add_ring(ccw_rect(2.5, 0, 5, 1));
  arena.add_ring(ccw_rect(0, 1, 1.5, 2));
  arena.add_ring(ccw_rect(1.5, 1, 3.5, 2));
  arena.add_ring(ccw_rect(3.5, 1, 5, 2));
  arena.weld_scanline(1.0);
  const auto out = arena.extract();
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_NEAR(geom::signed_area(out), 10.0, 1e-12);
}

TEST(WeldArena, DegenerateRingsIgnored) {
  WeldArena arena;
  arena.add_ring(Contour{{{0, 0}, {1, 1}}, false});  // < 3 vertices
  EXPECT_EQ(arena.num_slots(), 0u);
  EXPECT_TRUE(arena.extract().empty());
}

TEST(MergeStrategy, Names) {
  EXPECT_STREQ(to_string(MergeStrategy::kTree), "tree");
  EXPECT_STREQ(to_string(MergeStrategy::kFlat), "flat");
}

}  // namespace
}  // namespace psclip::core
