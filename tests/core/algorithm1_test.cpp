#include "core/algorithm1.hpp"

#include <gtest/gtest.h>

#include "geom/area_oracle.hpp"
#include "geom/point_in_polygon.hpp"
#include "seq/vatti.hpp"
#include "test_support.hpp"

namespace psclip::core {
namespace {

using geom::BoolOp;
using geom::PolygonSet;

PolygonSet square(double x0, double y0, double s) {
  return geom::make_polygon(
      {{x0, y0}, {x0 + s, y0}, {x0 + s, y0 + s}, {x0, y0 + s}});
}

TEST(Algorithm1, SquaresAllOps) {
  par::ThreadPool pool(4);
  const PolygonSet a = square(0, 0, 10), b = square(5, 5, 10);
  Alg1Stats st;
  EXPECT_NEAR(geom::signed_area(scanbeam_clip(a, b, BoolOp::kIntersection,
                                              pool, &st)),
              25.0, 1e-5);
  EXPECT_NEAR(
      geom::signed_area(scanbeam_clip(a, b, BoolOp::kUnion, pool)), 175.0,
      1e-5);
  EXPECT_NEAR(
      geom::signed_area(scanbeam_clip(a, b, BoolOp::kDifference, pool)),
      75.0, 1e-5);
  EXPECT_NEAR(geom::signed_area(scanbeam_clip(a, b, BoolOp::kXor, pool)),
              150.0, 1e-5);
  EXPECT_EQ(st.intersections, 2);
  EXPECT_EQ(st.edges, 8);
  EXPECT_GT(st.scanbeams, 0);
  EXPECT_GT(st.partial_polys, 0);
  EXPECT_GT(st.merge_phases, 0);
}

TEST(Algorithm1, HoleStructureMatchesSequential) {
  par::ThreadPool pool(4);
  const PolygonSet outer = square(0, 0, 10), inner = square(3, 3, 2);
  const PolygonSet r =
      scanbeam_clip(outer, inner, BoolOp::kDifference, pool);
  EXPECT_NEAR(geom::signed_area(r), 96.0, 1e-5);
  int holes = 0;
  for (const auto& c : r.contours)
    if (c.hole) ++holes;
  EXPECT_EQ(holes, 1);
  EXPECT_FALSE(geom::point_in_polygon({4, 4}, r));
  EXPECT_TRUE(geom::point_in_polygon({1, 1}, r));
}

struct A1Case {
  std::uint64_t seed;
  int n1, n2;
  bool sx;
  MergeStrategy merge;
  bool segtree;
};

class Algorithm1Differential : public ::testing::TestWithParam<A1Case> {};

TEST_P(Algorithm1Differential, MatchesOracleAllOps) {
  par::ThreadPool pool(4);
  const A1Case c = GetParam();
  const PolygonSet a =
      test::random_polygon(c.seed * 2 + 1, c.n1, 0, 0, 10, c.sx);
  const PolygonSet b =
      test::random_polygon(c.seed * 2 + 2, c.n2, 1.5, -1, 8, false);
  Alg1Options opts;
  opts.merge = c.merge;
  opts.use_segment_tree = c.segtree;
  for (const BoolOp op : geom::kAllOps) {
    const double got =
        geom::signed_area(scanbeam_clip(a, b, op, pool, nullptr, opts));
    const double want = geom::boolean_area_oracle(a, b, op);
    EXPECT_TRUE(test::areas_match(got, want))
        << geom::to_string(op) << " got=" << got << " want=" << want;
  }
}

TEST_P(Algorithm1Differential, AgreesWithSequentialVatti) {
  par::ThreadPool pool(4);
  const A1Case c = GetParam();
  const PolygonSet a =
      test::random_polygon(c.seed * 7 + 1, c.n1, 0, 0, 10, c.sx);
  const PolygonSet b =
      test::random_polygon(c.seed * 7 + 2, c.n2, -1, 2, 9, false);
  Alg1Options opts;
  opts.merge = c.merge;
  opts.use_segment_tree = c.segtree;
  for (const BoolOp op : geom::kAllOps) {
    const PolygonSet r1 = scanbeam_clip(a, b, op, pool, nullptr, opts);
    const PolygonSet r2 = seq::vatti_clip(a, b, op);
    EXPECT_TRUE(test::areas_match(geom::signed_area(r1),
                                  geom::signed_area(r2), 1e-5))
        << geom::to_string(op);
  }
}

std::vector<A1Case> make_cases() {
  std::vector<A1Case> cases;
  std::uint64_t seed = 500;
  for (int rep = 0; rep < 10; ++rep) {
    for (int n : {6, 14, 28, 52}) {
      A1Case c;
      c.seed = seed++;
      c.n1 = n;
      c.n2 = 4 + n / 2;
      c.sx = rep % 3 == 0;
      c.merge = rep % 2 ? MergeStrategy::kFlat : MergeStrategy::kTree;
      c.segtree = rep % 2 == 0;
      cases.push_back(c);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, Algorithm1Differential,
                         ::testing::ValuesIn(make_cases()));

TEST(Algorithm1, OutputSensitivityCounters) {
  par::ThreadPool pool(4);
  // Two long thin combs crossing: k grows with the tooth count while n
  // stays moderate; the stats must reflect both.
  Alg1Stats st;
  const PolygonSet a = test::random_polygon(900, 60, 0, 0, 10);
  const PolygonSet b = test::random_polygon(901, 60, 0.5, 0.5, 10);
  scanbeam_clip(a, b, BoolOp::kIntersection, pool, &st);
  EXPECT_EQ(st.edges, 120);
  EXPECT_GT(st.intersections, 0);
  EXPECT_GT(st.k_prime, 0);
  EXPECT_GE(st.scanbeams, 100);
  EXPECT_GE(st.t_beams, 0.0);
  EXPECT_GE(st.t_sort_partition, 0.0);
  EXPECT_GE(st.t_merge, 0.0);
}

TEST(Algorithm1, SingleThreadPoolWorks) {
  par::ThreadPool pool(1);
  const PolygonSet a = square(0, 0, 10), b = square(4, 4, 10);
  EXPECT_NEAR(
      geom::signed_area(scanbeam_clip(a, b, BoolOp::kIntersection, pool)),
      36.0, 1e-5);
}

TEST(Algorithm1, EmptyInputs) {
  par::ThreadPool pool(2);
  EXPECT_TRUE(
      scanbeam_clip({}, {}, BoolOp::kUnion, pool).empty());
  const PolygonSet a = square(0, 0, 3);
  EXPECT_NEAR(geom::signed_area(scanbeam_clip(a, {}, BoolOp::kUnion, pool)),
              9.0, 1e-5);
  EXPECT_TRUE(
      scanbeam_clip(a, {}, BoolOp::kIntersection, pool).empty());
}

}  // namespace
}  // namespace psclip::core
