#include "core/beam_sweep.hpp"

#include <gtest/gtest.h>

#include "core/scanbeam.hpp"
#include "geom/area_oracle.hpp"
#include "geom/perturb.hpp"
#include "seq/vatti.hpp"
#include "test_support.hpp"

namespace psclip::core {
namespace {

using geom::BoolOp;
using geom::PolygonSet;

/// Sum of partial-polygon areas over all beams: must equal the result
/// area, because beam pieces tile the result region disjointly.
double tiled_area(const PolygonSet& a, const PolygonSet& b, BoolOp op,
                  std::int64_t* crossings = nullptr) {
  PolygonSet s = geom::cleaned(a), c = geom::cleaned(b);
  geom::remove_horizontals(s);
  geom::remove_horizontals(c);
  const auto bt = seq::build_bounds(s, c);
  par::ThreadPool pool(2);
  const auto part = partition_scanbeams(pool, bt);
  double area = 0.0;
  std::int64_t k = 0;
  for (std::size_t beam = 0; beam < part.num_beams(); ++beam) {
    const auto lo = static_cast<std::size_t>(part.offsets[beam]);
    const auto hi = static_cast<std::size_t>(part.offsets[beam + 1]);
    const BeamResult br = process_beam(
        bt, std::span<const std::int32_t>(part.edge_ids).subspan(lo, hi - lo),
        part.ys[beam], part.ys[beam + 1], op);
    k += br.intersections;
    for (const auto& ring : br.rings) {
      // Material partials CCW, in-beam hole pockets CW.
      if (ring.hole)
        EXPECT_LT(geom::signed_area(ring), 0.0);
      else
        EXPECT_GE(geom::signed_area(ring), 0.0);
      area += geom::signed_area(ring);
    }
  }
  if (crossings) *crossings = k;
  return area;
}

TEST(BeamSweep, SquaresIntersectionTilesExactly) {
  const PolygonSet a = geom::make_polygon({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  const PolygonSet b = geom::make_polygon({{5, 5}, {15, 5}, {15, 15}, {5, 15}});
  std::int64_t k = 0;
  const double area = tiled_area(a, b, BoolOp::kIntersection, &k);
  EXPECT_NEAR(area, 25.0, 1e-5);
  EXPECT_EQ(k, 2);
}

TEST(BeamSweep, AllOpsTileToOracleArea) {
  const PolygonSet a = test::random_polygon(11, 14, 0, 0, 10);
  const PolygonSet b = test::random_polygon(12, 10, 2, -1, 8, true);
  for (const BoolOp op : geom::kAllOps) {
    EXPECT_TRUE(test::areas_match(tiled_area(a, b, op),
                                  geom::boolean_area_oracle(a, b, op), 1e-5))
        << geom::to_string(op);
  }
}

TEST(BeamSweep, BeamWithFewerThanTwoEdgesIsEmpty) {
  const seq::BoundTable bt;
  const BeamResult r =
      process_beam(bt, std::span<const std::int32_t>{}, 0.0, 1.0,
                   BoolOp::kIntersection);
  EXPECT_TRUE(r.rings.empty());
  EXPECT_EQ(r.intersections, 0);
}

TEST(BeamSweep, PartialRingsLieInsideTheirBeam) {
  const PolygonSet a = test::random_polygon(21, 16, 0, 0, 10);
  const PolygonSet b = test::random_polygon(22, 12, 1, 1, 8);
  PolygonSet s = geom::cleaned(a), c = geom::cleaned(b);
  geom::remove_horizontals(s);
  geom::remove_horizontals(c);
  const auto bt = seq::build_bounds(s, c);
  par::ThreadPool pool(2);
  const auto part = partition_scanbeams(pool, bt);
  for (std::size_t beam = 0; beam < part.num_beams(); ++beam) {
    const auto lo = static_cast<std::size_t>(part.offsets[beam]);
    const auto hi = static_cast<std::size_t>(part.offsets[beam + 1]);
    const BeamResult br = process_beam(
        bt, std::span<const std::int32_t>(part.edge_ids).subspan(lo, hi - lo),
        part.ys[beam], part.ys[beam + 1], BoolOp::kUnion);
    for (const auto& ring : br.rings) {
      const geom::BBox bb = geom::bounds(ring);
      EXPECT_GE(bb.ymin, part.ys[beam] - 1e-9);
      EXPECT_LE(bb.ymax, part.ys[beam + 1] + 1e-9);
    }
  }
}

TEST(BeamSweep, CrossingCountMatchesSequentialSweep) {
  const PolygonSet a = test::random_polygon(31, 20, 0, 0, 10, true);
  const PolygonSet b = test::random_polygon(32, 15, 1, -2, 9);
  std::int64_t beams_k = 0;
  tiled_area(a, b, BoolOp::kIntersection, &beams_k);
  seq::VattiStats st;
  seq::vatti_clip(a, b, BoolOp::kIntersection, &st);
  EXPECT_EQ(beams_k, st.intersections);
}

TEST(BeamSweep, IndependenceFromOtherBeams) {
  // Processing a beam must not depend on global state: the same beam
  // processed twice yields identical rings.
  const PolygonSet a = test::random_polygon(41, 12, 0, 0, 10);
  PolygonSet s = geom::cleaned(a);
  geom::remove_horizontals(s);
  const auto bt = seq::build_bounds(s, {});
  par::ThreadPool pool(2);
  const auto part = partition_scanbeams(pool, bt);
  ASSERT_GT(part.num_beams(), 2u);
  const std::size_t beam = part.num_beams() / 2;
  const auto lo = static_cast<std::size_t>(part.offsets[beam]);
  const auto hi = static_cast<std::size_t>(part.offsets[beam + 1]);
  const auto span =
      std::span<const std::int32_t>(part.edge_ids).subspan(lo, hi - lo);
  const BeamResult r1 =
      process_beam(bt, span, part.ys[beam], part.ys[beam + 1], BoolOp::kUnion);
  const BeamResult r2 =
      process_beam(bt, span, part.ys[beam], part.ys[beam + 1], BoolOp::kUnion);
  ASSERT_EQ(r1.rings.size(), r2.rings.size());
  for (std::size_t i = 0; i < r1.rings.size(); ++i) {
    ASSERT_EQ(r1.rings[i].size(), r2.rings[i].size());
    for (std::size_t j = 0; j < r1.rings[i].size(); ++j)
      EXPECT_EQ(r1.rings[i][j], r2.rings[i][j]);
  }
}

}  // namespace
}  // namespace psclip::core
