// Property test for the merge-phase weld: random beam tilings of random
// regions, welded by both strategies, must reproduce the tiled area
// exactly and agree with the sequential clipper.

#include <gtest/gtest.h>

#include <random>

#include "core/beam_sweep.hpp"
#include "core/merge.hpp"
#include "core/scanbeam.hpp"
#include "geom/area_oracle.hpp"
#include "geom/perturb.hpp"
#include "test_support.hpp"

namespace psclip::core {
namespace {

using geom::BoolOp;
using geom::PolygonSet;

struct WCase {
  std::uint64_t seed;
  int n1, n2;
  bool sx;
  int op_index;
};

class WeldProperty : public ::testing::TestWithParam<WCase> {};

TEST_P(WeldProperty, WeldPreservesTiledAreaAndRegion) {
  const WCase c = GetParam();
  const BoolOp op = geom::kAllOps[c.op_index];
  const PolygonSet a =
      test::random_polygon(c.seed * 2 + 1, c.n1, 0, 0, 10, c.sx);
  const PolygonSet b =
      test::random_polygon(c.seed * 2 + 2, c.n2, 1, -1, 8, false);

  PolygonSet s = geom::cleaned(a), cl = geom::cleaned(b);
  geom::remove_horizontals(s);
  geom::remove_horizontals(cl);
  const seq::BoundTable bt = seq::build_bounds(s, cl);
  par::ThreadPool pool(2);
  const auto part = partition_scanbeams(pool, bt);

  WeldArena flat, tree;
  double tiled = 0.0;
  for (std::size_t beam = 0; beam < part.num_beams(); ++beam) {
    const auto lo = static_cast<std::size_t>(part.offsets[beam]);
    const auto hi = static_cast<std::size_t>(part.offsets[beam + 1]);
    const BeamResult br = process_beam(
        bt, std::span<const std::int32_t>(part.edge_ids).subspan(lo, hi - lo),
        part.ys[beam], part.ys[beam + 1], op);
    for (const auto& r : br.rings) {
      tiled += geom::signed_area(r);
      flat.add_ring(r);
      tree.add_ring(r);
    }
  }
  flat.weld_flat(pool, part.ys);
  tree.weld_tree(pool, part.ys);

  const double want = geom::boolean_area_oracle(a, b, op);
  EXPECT_TRUE(test::areas_match(tiled, want)) << "tiling broken";
  // Raw extraction (virtual vertices kept) must conserve area exactly.
  EXPECT_TRUE(test::areas_match(
      geom::signed_area(flat.extract(/*pack_virtuals=*/false)), tiled, 1e-9));
  // Packed extraction from both strategies.
  const double fa = geom::signed_area(flat.extract());
  const double ta = geom::signed_area(tree.extract());
  EXPECT_TRUE(test::areas_match(fa, want)) << "flat weld fa=" << fa;
  EXPECT_TRUE(test::areas_match(ta, want)) << "tree weld ta=" << ta;
  // Nothing left unwelded.
  EXPECT_TRUE(flat.debug_unwelded().empty());
  EXPECT_TRUE(tree.debug_unwelded().empty());
}

std::vector<WCase> make_cases() {
  std::vector<WCase> cases;
  std::uint64_t seed = 42000;
  for (int rep = 0; rep < 16; ++rep)
    cases.push_back(
        {seed++, 6 + rep * 3, 4 + rep * 2, rep % 4 == 0, rep % 4});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, WeldProperty,
                         ::testing::ValuesIn(make_cases()));

}  // namespace
}  // namespace psclip::core
