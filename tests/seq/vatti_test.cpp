#include "seq/vatti.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/area_oracle.hpp"
#include "geom/intersect.hpp"
#include "geom/perturb.hpp"
#include "geom/point_in_polygon.hpp"
#include "test_support.hpp"

namespace psclip::seq {
namespace {

using geom::BoolOp;
using geom::PolygonSet;

PolygonSet square(double x0, double y0, double s) {
  return geom::make_polygon(
      {{x0, y0}, {x0 + s, y0}, {x0 + s, y0 + s}, {x0, y0 + s}});
}

double vatti_area(const PolygonSet& a, const PolygonSet& b, BoolOp op) {
  return geom::signed_area(vatti_clip(a, b, op));
}

TEST(Vatti, OverlappingSquaresAllOps) {
  const PolygonSet a = square(0, 0, 10), b = square(5, 5, 10);
  EXPECT_NEAR(vatti_area(a, b, BoolOp::kIntersection), 25.0, 1e-5);
  EXPECT_NEAR(vatti_area(a, b, BoolOp::kUnion), 175.0, 1e-5);
  EXPECT_NEAR(vatti_area(a, b, BoolOp::kDifference), 75.0, 1e-5);
  EXPECT_NEAR(vatti_area(a, b, BoolOp::kXor), 150.0, 1e-5);
}

TEST(Vatti, DisjointSquares) {
  const PolygonSet a = square(0, 0, 4), b = square(10, 10, 3);
  EXPECT_NEAR(vatti_area(a, b, BoolOp::kIntersection), 0.0, 1e-9);
  EXPECT_NEAR(vatti_area(a, b, BoolOp::kUnion), 25.0, 1e-5);
  EXPECT_EQ(vatti_clip(a, b, BoolOp::kUnion).num_contours(), 2u);
  EXPECT_EQ(vatti_clip(a, b, BoolOp::kIntersection).num_contours(), 0u);
}

TEST(Vatti, ContainedSquareProducesHole) {
  const PolygonSet outer = square(0, 0, 10), inner = square(3, 3, 2);
  const PolygonSet diff = vatti_clip(outer, inner, BoolOp::kDifference);
  EXPECT_NEAR(geom::signed_area(diff), 96.0, 1e-5);
  ASSERT_EQ(diff.num_contours(), 2u);
  int holes = 0;
  for (const auto& c : diff.contours) {
    if (c.hole) {
      ++holes;
      EXPECT_LT(geom::signed_area(c), 0.0);  // holes are clockwise
    } else {
      EXPECT_GT(geom::signed_area(c), 0.0);
    }
  }
  EXPECT_EQ(holes, 1);
  // A point between the rings is in the result; inside the hole is not.
  EXPECT_TRUE(geom::point_in_polygon({1, 1}, diff));
  EXPECT_FALSE(geom::point_in_polygon({4, 4}, diff));
}

TEST(Vatti, EmptyInputs) {
  const PolygonSet a = square(0, 0, 4), none;
  EXPECT_TRUE(vatti_clip(a, none, BoolOp::kIntersection).empty());
  EXPECT_NEAR(vatti_area(a, none, BoolOp::kUnion), 16.0, 1e-5);
  EXPECT_NEAR(vatti_area(a, none, BoolOp::kDifference), 16.0, 1e-5);
  EXPECT_NEAR(vatti_area(none, a, BoolOp::kDifference), 0.0, 1e-9);
  EXPECT_TRUE(vatti_clip(none, none, BoolOp::kUnion).empty());
}

TEST(Vatti, SelfIntersectingBowtieEvenOdd) {
  // Bowtie lobes are interior under even-odd; intersect with a square
  // covering only the left lobe.
  const PolygonSet bow =
      geom::make_polygon({{0, 0}, {4, 2}, {4, 0}, {0, 2}});
  // Window placed in general position (the crossing point and the ring
  // vertices stay off the window boundary).
  const PolygonSet win = square(0.13, 0.07, 2.1);
  const double want =
      geom::boolean_area_oracle(bow, win, BoolOp::kIntersection);
  EXPECT_NEAR(vatti_area(bow, win, BoolOp::kIntersection), want, 1e-6);
}

TEST(Vatti, NormalizeSelfIntersectingViaEmptyClip) {
  // UNION against nothing decomposes a self-intersecting ring into simple
  // contours with the same even-odd region.
  const PolygonSet bow =
      geom::make_polygon({{0, 0}, {4, 2}, {4, 0}, {0, 2}});
  const PolygonSet norm = vatti_clip(bow, {}, BoolOp::kUnion);
  EXPECT_EQ(norm.num_contours(), 2u);  // two lobes
  EXPECT_NEAR(geom::signed_area(norm), geom::even_odd_area(bow), 1e-6);
}

TEST(Vatti, StatsAreFilled) {
  VattiStats st;
  vatti_clip(square(0, 0, 10), square(5, 5, 10), BoolOp::kIntersection, &st);
  EXPECT_EQ(st.edges, 8);
  EXPECT_EQ(st.intersections, 2);
  EXPECT_GT(st.scanbeams, 0);
  EXPECT_GT(st.output_vertices, 0);
  EXPECT_GE(st.max_aet, 2);
}

TEST(Vatti, OutputContoursAreSimple) {
  // Result rings must not self-intersect, even for self-intersecting
  // inputs (this pinned down a real bug during development).
  const PolygonSet a = test::random_polygon(48 * 4 + 1, 20, 0, 0, 10, true);
  const PolygonSet b = test::random_polygon(48 * 4 + 2, 16, 1, -1, 8, false);
  const PolygonSet r = vatti_clip(a, b, BoolOp::kXor);
  for (const auto& c : r.contours) {
    const std::size_t n = c.size();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const auto x = geom::segment_intersection(
            c[i], c[(i + 1) % n], c[j], c[(j + 1) % n]);
        EXPECT_NE(x.relation, geom::SegmentRelation::kProper)
            << "ring self-crossing at edges " << i << "," << j;
      }
    }
  }
}

TEST(Vatti, MultiContourInputs) {
  PolygonSet a = square(0, 0, 4);
  a.contours.push_back(geom::make_rect(6, 0, 10, 4));
  PolygonSet b = square(2, 1, 6);
  const double want = geom::boolean_area_oracle(a, b, BoolOp::kIntersection);
  EXPECT_NEAR(vatti_area(a, b, BoolOp::kIntersection), want, 1e-6);
}

TEST(Vatti, SharedEdgeSquaresUnion) {
  // Degenerate: squares sharing a full edge. Perturbation resolves the
  // coincidence; the union area must still be exact to perturbation order.
  const PolygonSet a = square(0, 0, 4), b = square(4, 0, 4);
  EXPECT_NEAR(vatti_area(a, b, BoolOp::kUnion), 32.0, 1e-3);
  EXPECT_NEAR(vatti_area(a, b, BoolOp::kIntersection), 0.0, 1e-3);
}

TEST(Vatti, NearIdenticalSquaresViaJitter) {
  // Exactly coincident subject/clip edges are outside the general-position
  // contract (as for GPC); the documented workflow jitters one input.
  const PolygonSet a = square(0, 0, 5);
  PolygonSet b = a;
  geom::jitter(b, 1e-7, 12345);
  EXPECT_NEAR(vatti_area(a, b, BoolOp::kIntersection), 25.0, 1e-3);
  EXPECT_NEAR(vatti_area(a, b, BoolOp::kUnion), 25.0, 1e-3);
  EXPECT_NEAR(vatti_area(a, b, BoolOp::kDifference), 0.0, 1e-3);
}

TEST(Vatti, ConcaveChevronThroughSquare) {
  const PolygonSet chevron =
      geom::make_polygon({{0, 0}, {10, 0.3}, {10, 8}, {5, 3}, {0.2, 8.4}});
  const PolygonSet win = square(2, 1, 6);
  for (const BoolOp op : geom::kAllOps) {
    const double want = geom::boolean_area_oracle(chevron, win, op);
    EXPECT_NEAR(vatti_area(chevron, win, op), want, 1e-6 * (1.0 + want))
        << geom::to_string(op);
  }
}

TEST(Vatti, VertexOnEdgeDegeneracyWithJitterRemedy) {
  // Regression: the clip vertex (9,7) lies exactly on the subject edge
  // y = x - 2 and the clip is self-intersecting — without jitter this
  // exact coincidence is outside the general-position contract, and at
  // one point it silently dropped entire result rings. The documented
  // jitter remedy must recover the exact region.
  const PolygonSet subject = geom::make_polygon(
      {{0, 0}, {10, 0.3}, {10, 8}, {5, 3}, {0.2, 8.4}});
  PolygonSet clip =
      geom::make_polygon({{2, 1}, {9, 7}, {9, 1.4}, {2, 6.5}});
  geom::jitter(clip, 1e-9, 42);
  for (const BoolOp op : geom::kAllOps) {
    const double got = vatti_area(subject, clip, op);
    const double want = geom::boolean_area_oracle(subject, clip, op);
    EXPECT_TRUE(test::areas_match(got, want, 1e-5))
        << geom::to_string(op) << " got=" << got << " want=" << want;
  }
}

TEST(Vatti, PipAgreementOnRandomCase) {
  const PolygonSet a = test::random_polygon(101, 30, 0, 0, 10, false);
  const PolygonSet b = test::random_polygon(102, 25, 2, 1, 9, true);
  for (const BoolOp op : geom::kAllOps) {
    const PolygonSet r = vatti_clip(a, b, op);
    EXPECT_GT(test::pip_agreement(a, b, op, r, 4000, 999), 0.999)
        << geom::to_string(op);
  }
}

}  // namespace
}  // namespace psclip::seq
