#include "seq/out_poly.hpp"

#include <gtest/gtest.h>

namespace psclip::seq {
namespace {

using geom::Point;

TEST(OutPolyPool, SingleTriangleLifecycle) {
  OutPolyPool pool;
  // Minimum at (0,0); edge 1 owns the front, edge 2 the back.
  const auto id = pool.create({0, 0}, false, 1, 2);
  pool.extend(id, 1, {-1, 1});  // front grows left side
  pool.extend(id, 2, {1, 1});   // back grows right side
  pool.close(id, 1, id, 2, {0, 2});
  const auto out = pool.harvest();
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_EQ(out.contours[0].size(), 4u);
  EXPECT_GT(geom::signed_area(out.contours[0]), 0.0);  // exterior: CCW
}

TEST(OutPolyPool, UnclosedPolysAreNotHarvested) {
  OutPolyPool pool;
  const auto id = pool.create({0, 0}, false, 1, 2);
  pool.extend(id, 1, {-1, 1});
  EXPECT_TRUE(pool.harvest().empty());
}

TEST(OutPolyPool, MergeTwoPartialsBackToFront) {
  OutPolyPool pool;
  const auto a = pool.create({0, 0}, false, 1, 2);
  const auto b = pool.create({4, 0}, false, 3, 4);
  pool.extend(a, 1, {-1, 2});
  pool.extend(a, 2, {1, 2});
  pool.extend(b, 3, {3, 2});
  pool.extend(b, 4, {5, 2});
  // a's back (edge 2) meets b's front (edge 3) at (2, 3).
  pool.close(a, 2, b, 3, {2, 3});
  EXPECT_EQ(pool.resolve(a), pool.resolve(b));
  // Close the surviving ring with the remaining ends.
  pool.close(pool.resolve(a), 1, pool.resolve(b), 4, {2, 5});
  const auto out = pool.harvest();
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_EQ(out.contours[0].size(), 8u);
}

TEST(OutPolyPool, MergeSamePolarityReverses) {
  // Two partials meeting front-to-front: the pool must reverse one list
  // instead of producing a corrupted chain.
  OutPolyPool pool;
  const auto a = pool.create({0, 0}, false, 1, 2);
  const auto b = pool.create({4, 0}, false, 3, 4);
  pool.extend(a, 1, {-1, 2});
  pool.extend(b, 3, {3, 2});
  pool.close(a, 1, b, 3, {1, 3});  // front meets front
  const auto merged = pool.resolve(a);
  EXPECT_EQ(merged, pool.resolve(b));
  pool.close(merged, 2, merged, 4, {2, 4});
  const auto out = pool.harvest();
  ASSERT_EQ(out.num_contours(), 1u);
  // All six points present.
  EXPECT_EQ(out.contours[0].size(), 6u);
}

TEST(OutPolyPool, HoleFlagFollowsLowestMinimum) {
  OutPolyPool pool;
  // A hole-start partial created above a regular partial: when merged,
  // the surviving ring keeps the flag of the *lower* origin.
  const auto lo = pool.create({0, 0}, false, 1, 2);
  const auto hi = pool.create({1, 5}, true, 3, 4);
  pool.close(lo, 2, hi, 3, {2, 6});
  pool.close(pool.resolve(lo), 1, pool.resolve(hi), 4, {0, 7});
  const auto out = pool.harvest();
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_FALSE(out.contours[0].hole);
  EXPECT_GT(geom::signed_area(out.contours[0]), 0.0);
}

TEST(OutPolyPool, HoleContoursComeOutClockwise) {
  OutPolyPool pool;
  const auto id = pool.create({0, 0}, true, 1, 2);
  pool.extend(id, 1, {-1, 1});
  pool.extend(id, 2, {1, 1});
  pool.close(id, 1, id, 2, {0, 2});
  const auto out = pool.harvest();
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_TRUE(out.contours[0].hole);
  EXPECT_LT(geom::signed_area(out.contours[0]), 0.0);
}

TEST(OutPolyPool, LocateEndAndExtendReassign) {
  OutPolyPool pool;
  const auto id = pool.create({0, 0}, false, 10, 20);
  const auto front = pool.locate_end(id, 10);
  const auto back = pool.locate_end(id, 20);
  EXPECT_TRUE(front.front);
  EXPECT_FALSE(back.front);
  pool.extend_reassign_end(front, {-1, 1}, 11);
  pool.extend_reassign_end(back, {1, 1}, 21);
  // Old owners are gone; new ones extend.
  pool.extend(id, 11, {-2, 2});
  pool.extend(id, 21, {2, 2});
  pool.close(id, 11, id, 21, {0, 3});
  EXPECT_EQ(pool.harvest().contours[0].size(), 6u);
}

TEST(OutPolyPool, ExtendReassignMovesOwnership) {
  OutPolyPool pool;
  const auto id = pool.create({0, 0}, false, 1, 2);
  pool.extend_reassign(id, 1, {-1, 1}, 5);  // edge 5 now owns the front
  pool.extend(id, 5, {-2, 2});
  pool.close(id, 5, id, 2, {0, 3});
  const auto out = pool.harvest();
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_EQ(out.contours[0].size(), 4u);
}

TEST(OutPolyPool, HarvestDropsDegenerateRings) {
  OutPolyPool pool;
  const auto id = pool.create({0, 0}, false, 1, 2);
  pool.close(id, 1, id, 2, {0, 0});  // single repeated point
  EXPECT_TRUE(pool.harvest().empty());
}

TEST(OutPolyPool, MinAreaFilter) {
  OutPolyPool pool;
  const auto id = pool.create({0, 0}, false, 1, 2);
  pool.extend(id, 1, {-0.001, 0.001});
  pool.extend(id, 2, {0.001, 0.001});
  pool.close(id, 1, id, 2, {0, 0.002});
  EXPECT_EQ(pool.harvest(0.0).num_contours(), 1u);
  EXPECT_EQ(pool.harvest(1.0).num_contours(), 0u);
}

}  // namespace
}  // namespace psclip::seq
