// Property-based differential suite for the Vatti clipper: hundreds of
// seeded random cases checked against the independent trapezoid-sweep
// area oracle, plus the boolean-algebra identities that must hold for any
// correct clipper.

#include <gtest/gtest.h>

#include <cmath>

#include "geom/area_oracle.hpp"
#include "seq/vatti.hpp"
#include "test_support.hpp"

namespace psclip::seq {
namespace {

using geom::BoolOp;
using geom::PolygonSet;

struct Case {
  std::uint64_t seed;
  int n1, n2;
  bool sx1, sx2;
};

class VattiDifferential : public ::testing::TestWithParam<Case> {};

TEST_P(VattiDifferential, AreaMatchesOracleAllOps) {
  const Case c = GetParam();
  const PolygonSet a =
      test::random_polygon(c.seed * 2 + 1, c.n1, 0, 0, 10, c.sx1);
  const PolygonSet b =
      test::random_polygon(c.seed * 2 + 2, c.n2, 1.5, -1, 8, c.sx2);
  for (const BoolOp op : geom::kAllOps) {
    const double got = geom::signed_area(vatti_clip(a, b, op));
    const double want = geom::boolean_area_oracle(a, b, op);
    EXPECT_TRUE(test::areas_match(got, want))
        << geom::to_string(op) << " got=" << got << " want=" << want;
  }
}

TEST_P(VattiDifferential, BooleanAlgebraIdentities) {
  const Case c = GetParam();
  const PolygonSet a =
      test::random_polygon(c.seed * 3 + 1, c.n1, 0, 0, 10, c.sx1);
  const PolygonSet b =
      test::random_polygon(c.seed * 3 + 2, c.n2, -1, 2, 8, c.sx2);
  const double ai = geom::even_odd_area(a);
  const double bi = geom::even_odd_area(b);
  const double i = geom::signed_area(vatti_clip(a, b, BoolOp::kIntersection));
  const double u = geom::signed_area(vatti_clip(a, b, BoolOp::kUnion));
  const double dab = geom::signed_area(vatti_clip(a, b, BoolOp::kDifference));
  const double dba = geom::signed_area(vatti_clip(b, a, BoolOp::kDifference));
  const double x = geom::signed_area(vatti_clip(a, b, BoolOp::kXor));
  // Inclusion–exclusion and the partition identities.
  EXPECT_TRUE(test::areas_match(i + u, ai + bi, 1e-5));
  EXPECT_TRUE(test::areas_match(dab, ai - i, 1e-5));
  EXPECT_TRUE(test::areas_match(dba, bi - i, 1e-5));
  EXPECT_TRUE(test::areas_match(x, dab + dba, 1e-5));
  EXPECT_TRUE(test::areas_match(u, i + x, 1e-5));
  // Commutativity of the symmetric operators.
  EXPECT_TRUE(test::areas_match(
      geom::signed_area(vatti_clip(b, a, BoolOp::kIntersection)), i, 1e-5));
  EXPECT_TRUE(test::areas_match(
      geom::signed_area(vatti_clip(b, a, BoolOp::kUnion)), u, 1e-5));
}

TEST_P(VattiDifferential, ResultSurvivesReclipping) {
  const Case c = GetParam();
  if (c.n1 > 30) GTEST_SKIP() << "re-clipping checked on the smaller cases";
  const PolygonSet a =
      test::random_polygon(c.seed * 5 + 1, c.n1, 0, 0, 10, c.sx1);
  const PolygonSet b =
      test::random_polygon(c.seed * 5 + 2, c.n2, 1, 1, 8, c.sx2);
  const PolygonSet r = vatti_clip(a, b, BoolOp::kIntersection);
  // Clipping the (already simple) result against a strictly enclosing box
  // must not change its region.
  const geom::BBox bb = geom::bounds(r);
  if (bb.empty()) GTEST_SKIP() << "empty intersection";
  PolygonSet box;
  box.contours.push_back(geom::make_rect(bb.xmin - 1, bb.ymin - 1,
                                         bb.xmax + 1, bb.ymax + 1));
  const double area = geom::signed_area(r);
  const double again =
      geom::signed_area(vatti_clip(r, box, BoolOp::kIntersection));
  EXPECT_TRUE(test::areas_match(again, area, 1e-4));
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  std::uint64_t seed = 1;
  for (int rep = 0; rep < 25; ++rep) {
    for (int n : {4, 8, 16, 32, 64}) {
      Case c;
      c.seed = seed++;
      c.n1 = n + rep % 3;
      c.n2 = 3 + (n / 2) + rep % 5;
      c.sx1 = rep % 3 == 0;
      c.sx2 = rep % 5 == 0;
      cases.push_back(c);
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, VattiDifferential,
                         ::testing::ValuesIn(make_cases()));

}  // namespace
}  // namespace psclip::seq
