// Direct unit tests of the shared crossing-emission machinery — the
// sector-rule replacement for Vatti's vertex classification table.

#include "seq/sweep_events.hpp"

#include <gtest/gtest.h>

#include "geom/polygon.hpp"

namespace psclip::seq {
namespace {

using geom::BoolOp;
using geom::Point;

SweepEntry entry(std::int32_t e, bool ls, bool lc, std::int32_t poly = -1) {
  SweepEntry s;
  s.e = e;
  s.left_s = ls;
  s.left_c = lc;
  s.poly = poly;
  return s;
}

TEST(EmitCrossing, SubjectClipCrossingStartsIntersectionContour) {
  // Exterior everywhere except the N wedge: a local minimum of INT opens.
  OutPolyPool pool;
  SweepEntry u = entry(1, false, false);  // subject edge, nothing left
  SweepEntry v = entry(2, true, false);   // clip edge right of u
  emit_crossing(pool, u, /*u_is_clip=*/false, v, /*v_is_clip=*/true,
                {5, 5}, BoolOp::kIntersection);
  // W=(0,0)->out, S=(1,0)->out, E=(1,1)->in? E = flags ^ both flips.
  // For this configuration E is interior, so the run {E} pairs a below
  // and an above half: a continuation needs an attached poly and there is
  // none (poly=-1), so nothing is created, but flags must still swap.
  EXPECT_EQ(u.left_s, false);
  EXPECT_EQ(u.left_c, true);  // v (clip) moved to u's left
  EXPECT_EQ(v.left_s, false);
  EXPECT_EQ(v.left_c, false);
}

TEST(EmitCrossing, UnionCrossingClosesAndOpens) {
  // XOR of two polygons crossing inside both: sectors alternate, so the
  // S wedge closes and the N wedge opens a fresh contour.
  OutPolyPool pool;
  const auto p0 = pool.create({5, 0}, false, 1, 2);  // wedge from below
  SweepEntry u = entry(1, false, false, p0);  // subject
  SweepEntry v = entry(2, true, false, p0);   // clip
  emit_crossing(pool, u, false, v, true, {5, 5}, BoolOp::kXor);
  // Post-swap: both above-halves belong to a NEW poly (the N wedge).
  EXPECT_GE(u.poly, 0);
  EXPECT_EQ(u.poly, v.poly);
  EXPECT_NE(pool.resolve(u.poly), pool.resolve(p0));
  // The old wedge p0 was closed by the crossing.
  const auto harvested = pool.harvest();
  ASSERT_EQ(harvested.num_contours(), 0u);  // triangle with <3 distinct pts
}

TEST(EmitCrossing, SelfIntersectionSwapsContinuations) {
  // Two subject edges crossing inside the clip region under INT: the
  // crossing swaps which partial each edge extends (Fig. 5's left/right
  // duplication).
  OutPolyPool pool;
  const auto pa = pool.create({0, 0}, false, 1, 99);
  const auto pb = pool.create({10, 0}, false, 98, 2);
  SweepEntry u = entry(1, true, true, pa);  // subject; inside subj+clip
  SweepEntry v = entry(2, false, true, pb); // subject edge to its right
  emit_crossing(pool, u, false, v, false, {5, 5}, BoolOp::kIntersection);
  // W = (1,1) in, S = (0,1) out, E = (1,1) in, N = (0,1) out:
  // runs {W} and {E} — two continuations that swap the polys.
  EXPECT_EQ(pool.resolve(v.poly), pool.resolve(pa));
  EXPECT_EQ(pool.resolve(u.poly), pool.resolve(pb));
}

TEST(EmitCrossing, NonContributingCrossingOnlySwapsFlags) {
  OutPolyPool pool;
  // The only contributing halves pair into a continuation whose below
  // half carries no polygon (interior supplied by other edges): nothing
  // may be emitted, but the parity flags must still swap.
  SweepEntry u = entry(1, true, true);
  SweepEntry v = entry(2, true, true);
  emit_crossing(pool, u, false, v, true, {1, 1}, BoolOp::kUnion);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(u.poly, -1);
  EXPECT_EQ(v.poly, -1);
  // v inherits u's old left flags.
  EXPECT_TRUE(v.left_s);
  EXPECT_TRUE(v.left_c);
}

TEST(EmitCrossing, HoleOpensWhenInteriorSurrounds) {
  // Union, interior all around except the N wedge: the crossing opens a
  // hole-start contour attached to both above halves.
  OutPolyPool pool;
  SweepEntry u = entry(1, true, false);  // subject edge; subject-left
  SweepEntry v = entry(2, false, true);  // clip edge; clip only after u
  // W = (1,0): in. S = (0,0): out? That's not the hole pattern; use XOR
  // construction instead: subject parity 1 and clip parity 1 around.
  u = entry(1, true, true);
  v = entry(2, true, true);
  emit_crossing(pool, u, false, v, true, {2, 2},
                BoolOp::kIntersection);
  // W=(1,1) in, S=(0,1) out? S out and E=(0,0) out and N=(1,0) out:
  // run {W} alone is bounded by va and ub -> continuation with no poly.
  // (Covered: no crash, no spurious contours.)
  EXPECT_EQ(pool.size(), 0u);
}

}  // namespace
}  // namespace psclip::seq
