// Tests for the cache-conscious sweep kernel (SweepKernel::kTuned):
//
//   * byte-identity against the reference kernel across the whole 216-case
//     fuzz corpus, for sequential vatti_clip AND for slab_clip with the
//     kernel plumbed through Alg2Options — the tuned kernel is a pure cost
//     optimization, it may not change a single bit of output;
//   * the AET invariant checker as a programmatic hook (VattiScratch::
//     validate) run over the full corpus: zero violations on correct
//     sweeps, env-independent;
//   * nearly-sorted beam detection: beams without crossings must hit the
//     fast path (sorted_beams counter), beams with crossings must not, and
//     the same split must reach the obs counter sink.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "fuzz_cases.hpp"
#include "geom/polygon.hpp"
#include "mt/algorithm2.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "seq/vatti.hpp"

namespace psclip {
namespace {

using fuzz::FuzzCase;
using fuzz::Inputs;
using fuzz::make_inputs;
using geom::PolygonSet;

/// Per-contour, per-vertex exact equality — the same lane the indexed-vs-
/// broadcast partition identity uses. EXPECT_EQ on doubles is bitwise for
/// these purposes (the corpus produces no NaNs; -0.0 == 0.0 would pass,
/// which is an acceptable notion of "identical output").
void expect_identical(const PolygonSet& a, const PolygonSet& b,
                      const char* what) {
  ASSERT_EQ(a.num_contours(), b.num_contours()) << what << ": contour count";
  for (std::size_t i = 0; i < a.contours.size(); ++i) {
    const auto& ca = a.contours[i];
    const auto& cb = b.contours[i];
    ASSERT_EQ(ca.pts.size(), cb.pts.size()) << what << ": contour " << i;
    EXPECT_EQ(ca.hole, cb.hole) << what << ": contour " << i;
    for (std::size_t j = 0; j < ca.pts.size(); ++j) {
      EXPECT_EQ(ca.pts[j].x, cb.pts[j].x)
          << what << ": contour " << i << " vertex " << j;
      EXPECT_EQ(ca.pts[j].y, cb.pts[j].y)
          << what << ": contour " << i << " vertex " << j;
    }
  }
}

class VattiKernelFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(VattiKernelFuzz, TunedMatchesReferenceExactly) {
  const FuzzCase c = GetParam();
  SCOPED_TRACE("repro: " + c.repro());
  const Inputs in = make_inputs(c);

  // Sequential engine, both kernels.
  seq::VattiStats st_tuned, st_ref;
  const PolygonSet tuned = seq::vatti_clip(in.a, in.b, c.op, &st_tuned,
                                           nullptr, seq::SweepKernel::kTuned);
  const PolygonSet ref = seq::vatti_clip(in.a, in.b, c.op, &st_ref, nullptr,
                                         seq::SweepKernel::kReference);
  expect_identical(tuned, ref, "vatti_clip");

  // The kernels walk the same beams and discover the same crossings — the
  // counters the complexity analysis cares about may not drift either.
  EXPECT_EQ(st_tuned.scanbeams, st_ref.scanbeams);
  EXPECT_EQ(st_tuned.intersections, st_ref.intersections);
  EXPECT_EQ(st_tuned.max_aet, st_ref.max_aet);
  EXPECT_EQ(st_tuned.output_vertices, st_ref.output_vertices);
  EXPECT_EQ(st_tuned.sorted_beams, st_ref.sorted_beams);

  // Algorithm 2 with the kernel selected through Alg2Options (fixed slab
  // count => fixed decomposition; Vatti rect clipper since the corpus has
  // self-intersecting inputs).
  static par::ThreadPool pool(4);
  mt::Alg2Options ot;
  ot.slabs = 6;
  ot.rect_method = seq::RectClipMethod::kVatti;
  ot.sweep_kernel = seq::SweepKernel::kTuned;
  mt::Alg2Options orf = ot;
  orf.sweep_kernel = seq::SweepKernel::kReference;
  const PolygonSet slab_tuned = mt::slab_clip(in.a, in.b, c.op, pool, ot);
  const PolygonSet slab_ref = mt::slab_clip(in.a, in.b, c.op, pool, orf);
  expect_identical(slab_tuned, slab_ref, "slab_clip");
  // And the parallel result equals the sequential one in canonical form
  // modulo slab splitting — already covered by cross_engine_fuzz; here the
  // two kernels' parallel outputs matching bit-for-bit is the contract.
}

TEST_P(VattiKernelFuzz, ValidateHookSeesNoViolations) {
  const FuzzCase c = GetParam();
  SCOPED_TRACE("repro: " + c.repro());
  const Inputs in = make_inputs(c);

  // Force the AET invariant checker on programmatically (no environment
  // variable involved) for both kernels: parity flags and x-order must hold
  // at every scanbeam of every corpus case.
  for (const seq::SweepKernel k :
       {seq::SweepKernel::kTuned, seq::SweepKernel::kReference}) {
    seq::VattiScratch scratch;
    scratch.validate = 1;
    seq::VattiStats st;
    (void)seq::vatti_clip(in.a, in.b, c.op, &st, &scratch, k);
    EXPECT_EQ(st.validate_failures, 0)
        << "kernel=" << static_cast<int>(k);
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, VattiKernelFuzz,
                         ::testing::ValuesIn(fuzz::make_cases()));

// ---------------------------------------------------------------------------

/// Minimal TraceSink capturing add_counter calls only.
class CounterSink : public obs::TraceSink {
 public:
  obs::SpanId begin_span(const char*, obs::Cat, obs::SpanId) override {
    return obs::SpanId{1};
  }
  void end_span(obs::SpanId) override {}
  void span_arg(obs::SpanId, const char*, std::int64_t) override {}
  void add_counter(const char* name, std::int64_t delta) override {
    counters_[name] += delta;
  }
  void observe(const char*, double) override {}

  [[nodiscard]] std::int64_t get(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

 private:
  std::map<std::string, std::int64_t> counters_;
};

/// Restores the previous global sink even if the test body fails.
class GlobalSinkGuard {
 public:
  explicit GlobalSinkGuard(obs::TraceSink* s) : prev_(obs::global_sink()) {
    obs::set_global_sink(s);
  }
  ~GlobalSinkGuard() { obs::set_global_sink(prev_); }

 private:
  obs::TraceSink* prev_;
};

PolygonSet triangle(double x, double y) {
  PolygonSet p;
  p.add({{x, y}, {x + 1.0, y + 0.1}, {x + 0.4, y + 1.0}});
  return p;
}

TEST(VattiSortedBeams, DisjointInputsHitFastPathEveryBeam) {
  // Two far-apart triangles: the AET never has an inversion, so every
  // scanbeam must take the sorted fast path and no crossing may be found.
  seq::VattiStats st;
  (void)seq::vatti_clip(triangle(0, 0), triangle(100, 0),
                        geom::BoolOp::kUnion, &st);
  EXPECT_GT(st.scanbeams, 0);
  EXPECT_EQ(st.sorted_beams, st.scanbeams);
  EXPECT_EQ(st.intersections, 0);
  // Structural edits (minima insertion, maxima removal) still refresh the
  // flat index.
  EXPECT_GT(st.pos_rebuilds, 0);
}

TEST(VattiSortedBeams, CrossingEdgesMissFastPathOnCrossingBeams) {
  // Two long thin crossing quads (an X): the beams containing the
  // crossings must NOT count as sorted, the rest must.
  PolygonSet a, b;
  a.add({{0.0, 0.0}, {10.0, 9.0}, {10.0, 10.0}, {0.0, 1.0}});
  b.add({{0.0, 9.0}, {10.0, 0.0}, {10.0, 1.0}, {0.0, 10.0}});
  seq::VattiStats st;
  (void)seq::vatti_clip(a, b, geom::BoolOp::kIntersection, &st);
  EXPECT_GT(st.intersections, 0);
  EXPECT_GT(st.scanbeams, st.sorted_beams)
      << "crossing beams cannot be sorted beams";
  EXPECT_GT(st.sorted_beams, 0) << "crossing-free beams must still fast-path";
}

TEST(VattiSortedBeams, CountersReachObsSink) {
  // Without a stats out-param the counters must still be emitted through
  // the process-wide sink, and match what a stats run reports.
  seq::VattiStats st;
  (void)seq::vatti_clip(triangle(0, 0), triangle(100, 0),
                        geom::BoolOp::kUnion, &st);

  CounterSink sink;
  {
    GlobalSinkGuard guard(&sink);
    (void)seq::vatti_clip(triangle(0, 0), triangle(100, 0),
                          geom::BoolOp::kUnion);
  }
  EXPECT_EQ(sink.get("vatti.scanbeams"), st.scanbeams);
  EXPECT_EQ(sink.get("vatti.sorted_beams"), st.sorted_beams);
  EXPECT_EQ(sink.get("vatti.pos_rebuilds"), st.pos_rebuilds);
}

TEST(VattiValidateHook, ForcedOffIgnoresScratchDefault) {
  // validate = 0 must run the sweep with the checker off regardless of the
  // environment; the output is unaffected either way.
  const PolygonSet a = triangle(0, 0);
  const PolygonSet b = triangle(0.3, 0.2);
  seq::VattiScratch off, on;
  off.validate = 0;
  on.validate = 1;
  seq::VattiStats st_off, st_on;
  const PolygonSet r_off =
      seq::vatti_clip(a, b, geom::BoolOp::kIntersection, &st_off, &off);
  const PolygonSet r_on =
      seq::vatti_clip(a, b, geom::BoolOp::kIntersection, &st_on, &on);
  EXPECT_EQ(st_off.validate_failures, 0);
  EXPECT_EQ(st_on.validate_failures, 0);
  expect_identical(r_off, r_on, "validate on/off");
}

}  // namespace
}  // namespace psclip
