#include "seq/martinez.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/area_oracle.hpp"
#include "seq/vatti.hpp"
#include "test_support.hpp"

namespace psclip::seq {
namespace {

using geom::BoolOp;
using geom::PolygonSet;

PolygonSet square(double x0, double y0, double s) {
  return geom::make_polygon(
      {{x0, y0}, {x0 + s, y0}, {x0 + s, y0 + s}, {x0, y0 + s}});
}

TEST(Martinez, TiltedSquaresAllOps) {
  const PolygonSet a = geom::make_polygon({{0, 0}, {10, 1}, {9, 10}, {1, 9}});
  const PolygonSet b =
      geom::make_polygon({{5, 4}, {15, 5}, {14, 14}, {4, 13}});
  for (const BoolOp op : geom::kAllOps) {
    const double got = geom::signed_area(martinez_clip(a, b, op));
    const double want = geom::boolean_area_oracle(a, b, op);
    EXPECT_TRUE(test::areas_match(got, want)) << geom::to_string(op);
  }
}

TEST(Martinez, AxisAlignedSquares) {
  // Vertical edges are perturbed internally (the x-sweep analogue of the
  // scanline clippers' horizontal-edge preprocessing).
  const PolygonSet a = square(0, 0, 10), b = square(5, 5, 10);
  EXPECT_NEAR(geom::signed_area(martinez_clip(a, b, BoolOp::kIntersection)),
              25.0, 1e-3);
  EXPECT_NEAR(geom::signed_area(martinez_clip(a, b, BoolOp::kUnion)), 175.0,
              1e-3);
}

TEST(Martinez, DisjointAndContained) {
  const PolygonSet a = square(0, 0, 4);
  EXPECT_TRUE(martinez_clip(a, square(10, 10, 2), BoolOp::kIntersection)
                  .empty());
  EXPECT_NEAR(geom::signed_area(
                  martinez_clip(a, square(1, 1, 2), BoolOp::kDifference)),
              12.0, 1e-3);
}

TEST(Martinez, HoleOrientation) {
  const PolygonSet r =
      martinez_clip(square(0, 0, 10), square(3, 3, 2), BoolOp::kDifference);
  int holes = 0;
  for (const auto& c : r.contours)
    if (c.hole) {
      ++holes;
      EXPECT_LT(geom::signed_area(c), 0.0);
    }
  EXPECT_EQ(holes, 1);
}

TEST(Martinez, EmptyInputs) {
  const PolygonSet a = square(0, 0, 3);
  EXPECT_TRUE(martinez_clip({}, {}, BoolOp::kUnion).empty());
  EXPECT_NEAR(geom::signed_area(martinez_clip(a, {}, BoolOp::kUnion)), 9.0,
              1e-3);
  EXPECT_TRUE(martinez_clip(a, {}, BoolOp::kIntersection).empty());
}

struct MCase {
  std::uint64_t seed;
  int n1, n2;
  bool sx1, sx2;
};

class MartinezDifferential : public ::testing::TestWithParam<MCase> {};

TEST_P(MartinezDifferential, MatchesOracle) {
  const MCase c = GetParam();
  const PolygonSet a =
      test::random_polygon(c.seed * 2 + 1, c.n1, 0, 0, 10, c.sx1);
  const PolygonSet b =
      test::random_polygon(c.seed * 2 + 2, c.n2, 1.5, -1, 8, c.sx2);
  for (const BoolOp op : geom::kAllOps) {
    const double got = geom::signed_area(martinez_clip(a, b, op));
    const double want = geom::boolean_area_oracle(a, b, op);
    EXPECT_TRUE(test::areas_match(got, want))
        << geom::to_string(op) << " got=" << got << " want=" << want;
  }
}

TEST_P(MartinezDifferential, AgreesWithVatti) {
  // Two completely independent algorithms (x-sweep edge selection vs
  // y-scanline AET) must produce the same region.
  const MCase c = GetParam();
  const PolygonSet a =
      test::random_polygon(c.seed * 11 + 1, c.n1, 0, 0, 10, c.sx1);
  const PolygonSet b =
      test::random_polygon(c.seed * 11 + 2, c.n2, -1, 2, 9, c.sx2);
  for (const BoolOp op : geom::kAllOps) {
    const double m = geom::signed_area(martinez_clip(a, b, op));
    const double v = geom::signed_area(vatti_clip(a, b, op));
    EXPECT_TRUE(test::areas_match(m, v, 1e-5))
        << geom::to_string(op) << " martinez=" << m << " vatti=" << v;
  }
}

std::vector<MCase> make_cases() {
  std::vector<MCase> cases;
  std::uint64_t seed = 7000;
  for (int rep = 0; rep < 15; ++rep) {
    MCase c;
    c.seed = seed++;
    c.n1 = 4 + rep * 4;
    c.n2 = 3 + rep * 3;
    c.sx1 = rep % 3 == 0;
    c.sx2 = rep % 5 == 0;
    cases.push_back(c);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, MartinezDifferential,
                         ::testing::ValuesIn(make_cases()));

TEST(Martinez, PipAgreement) {
  const PolygonSet a = test::random_polygon(888, 22, 0, 0, 10, true);
  const PolygonSet b = test::random_polygon(889, 18, 1, 1, 8, false);
  for (const BoolOp op : geom::kAllOps) {
    const PolygonSet r = martinez_clip(a, b, op);
    EXPECT_GT(test::pip_agreement(a, b, op, r, 3000, 555), 0.999)
        << geom::to_string(op);
  }
}

}  // namespace
}  // namespace psclip::seq
