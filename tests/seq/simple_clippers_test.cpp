#include <gtest/gtest.h>

#include <cmath>

#include "geom/area_oracle.hpp"
#include "seq/greiner_hormann.hpp"
#include "seq/liang_barsky.hpp"
#include "seq/rect_clip.hpp"
#include "seq/sutherland_hodgman.hpp"
#include "test_support.hpp"

namespace psclip::seq {
namespace {

using geom::BoolOp;
using geom::Contour;
using geom::Point;
using geom::PolygonSet;

// ---------------------------------------------------------------- SH ----

TEST(SutherlandHodgman, SquareClipsTriangle) {
  const Contour win = geom::make_rect(0, 0, 4, 4);
  const Contour tri{{{-2, 1}, {6, 1}, {2, 9}}, false};
  const Contour out = sutherland_hodgman(tri, win);
  PolygonSet t, w;
  t.contours.push_back(tri);
  w.contours.push_back(win);
  EXPECT_NEAR(std::fabs(geom::signed_area(out)),
              geom::boolean_area_oracle(t, w, BoolOp::kIntersection), 1e-9);
}

TEST(SutherlandHodgman, SubjectInsideWindowUnchanged) {
  const Contour win = geom::make_rect(-10, -10, 10, 10);
  const Contour tri{{{0, 0}, {2, 0}, {1, 2}}, false};
  const Contour out = sutherland_hodgman(tri, win);
  EXPECT_NEAR(geom::signed_area(out), geom::signed_area(tri), 1e-12);
}

TEST(SutherlandHodgman, DisjointYieldsEmpty) {
  const Contour win = geom::make_rect(0, 0, 1, 1);
  const Contour tri{{{5, 5}, {6, 5}, {5, 6}}, false};
  EXPECT_LT(sutherland_hodgman(tri, win).size(), 3u);
}

TEST(SutherlandHodgman, ClockwiseClipNormalized) {
  Contour win = geom::make_rect(0, 0, 4, 4);
  geom::reverse(win);  // clockwise clip ring must still work
  const Contour tri{{{-2, 1}, {6, 1}, {2, 9}}, false};
  EXPECT_GT(std::fabs(geom::signed_area(sutherland_hodgman(tri, win))), 1.0);
}

TEST(SutherlandHodgman, ClipAgainstConvexPentagon) {
  std::uint64_t seed = 77;
  const PolygonSet subject = test::random_polygon(seed, 24, 0, 0, 10);
  const Contour penta{{{-6, -6}, {6, -6}, {9, 2}, {0, 9}, {-9, 2}}, false};
  PolygonSet w;
  w.contours.push_back(penta);
  const PolygonSet out = sutherland_hodgman(subject, penta);
  EXPECT_NEAR(geom::even_odd_area(out),
              geom::boolean_area_oracle(subject, w, BoolOp::kIntersection),
              1e-6);
}

// ---------------------------------------------------------------- LB ----

TEST(LiangBarsky, SegmentFullyInside) {
  const geom::BBox r{0, 0, 10, 10};
  const auto s = liang_barsky_segment(r, {1, 1}, {9, 9});
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->first, (Point{1, 1}));
  EXPECT_EQ(s->second, (Point{9, 9}));
}

TEST(LiangBarsky, SegmentCrossingIsTrimmed) {
  const geom::BBox r{0, 0, 10, 10};
  const auto s = liang_barsky_segment(r, {-5, 5}, {15, 5});
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(s->first.x, 0.0, 1e-12);
  EXPECT_NEAR(s->second.x, 10.0, 1e-12);
}

TEST(LiangBarsky, SegmentMissing) {
  const geom::BBox r{0, 0, 10, 10};
  EXPECT_FALSE(liang_barsky_segment(r, {-5, 20}, {15, 20}).has_value());
  EXPECT_FALSE(liang_barsky_segment(r, {-5, -1}, {-1, 15}).has_value());
}

TEST(LiangBarsky, DiagonalThroughCorner) {
  const geom::BBox r{0, 0, 10, 10};
  const auto s = liang_barsky_segment(r, {-5, -5}, {15, 15});
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(s->first.x, 0.0, 1e-12);
  EXPECT_NEAR(s->second.x, 10.0, 1e-12);
}

TEST(LiangBarsky, PolygonMatchesOracle) {
  const PolygonSet subject = test::random_polygon(31, 18, 0, 0, 10);
  const geom::BBox r{-4, -3, 5, 6};
  PolygonSet rect;
  rect.contours.push_back(geom::make_rect(r.xmin, r.ymin, r.xmax, r.ymax));
  EXPECT_NEAR(
      geom::even_odd_area(liang_barsky_polygon(subject, r)),
      geom::boolean_area_oracle(subject, rect, BoolOp::kIntersection), 1e-6);
}

// ---------------------------------------------------------------- GH ----

class GhOps : public ::testing::TestWithParam<int> {};

TEST_P(GhOps, MatchesOracleOnRandomSimplePolygons) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const PolygonSet a = test::random_polygon(seed * 2 + 1, 12, 0, 0, 10);
  const PolygonSet b = test::random_polygon(seed * 2 + 2, 9, 2, 1, 8);
  for (const BoolOp op : geom::kAllOps) {
    const PolygonSet g =
        greiner_hormann(a.contours[0], b.contours[0], op);
    const double got = geom::even_odd_area(g);
    const double want = geom::boolean_area_oracle(a, b, op);
    EXPECT_TRUE(test::areas_match(got, want))
        << geom::to_string(op) << " got=" << got << " want=" << want;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GhOps, ::testing::Range(1, 31));

TEST(GreinerHormann, NoIntersectionCases) {
  const Contour outer = geom::make_rect(0, 0, 10, 10);
  const Contour inner = geom::make_rect(3, 3, 5, 5);
  const Contour far = geom::make_rect(20, 20, 22, 22);
  // Contained.
  EXPECT_NEAR(geom::even_odd_area(
                  greiner_hormann(inner, outer, BoolOp::kIntersection)),
              4.0, 1e-9);
  EXPECT_NEAR(
      geom::even_odd_area(greiner_hormann(outer, inner, BoolOp::kDifference)),
      96.0, 1e-9);
  EXPECT_NEAR(
      geom::even_odd_area(greiner_hormann(inner, outer, BoolOp::kDifference)),
      0.0, 1e-9);
  // Disjoint.
  EXPECT_NEAR(geom::even_odd_area(
                  greiner_hormann(outer, far, BoolOp::kIntersection)),
              0.0, 1e-9);
  EXPECT_NEAR(
      geom::even_odd_area(greiner_hormann(outer, far, BoolOp::kUnion)),
      104.0, 1e-9);
}

TEST(GreinerHormann, MultipleResultRings) {
  // A tall subject crossing a wide clip: intersection is one ring, XOR
  // is four.
  const Contour tall = geom::make_rect(4, 0, 6, 10);
  const Contour wide = geom::make_rect(0, 4, 10, 6);
  EXPECT_EQ(greiner_hormann(tall, wide, BoolOp::kIntersection).num_contours(),
            1u);
  EXPECT_NEAR(geom::even_odd_area(
                  greiner_hormann(tall, wide, BoolOp::kXor)),
              32.0, 1e-9);
}

// ---------------------------------------------------------- rect_clip ----

class RectClipMethods : public ::testing::TestWithParam<RectClipMethod> {};

TEST_P(RectClipMethods, MatchesOracle) {
  const PolygonSet subject = test::random_polygon(55, 30, 0, 0, 10);
  const geom::BBox r{-5, -4, 4, 3};
  PolygonSet rect;
  rect.contours.push_back(geom::make_rect(r.xmin, r.ymin, r.xmax, r.ymax));
  const PolygonSet out = rect_clip(subject, r, GetParam());
  EXPECT_NEAR(
      geom::even_odd_area(out),
      geom::boolean_area_oracle(subject, rect, BoolOp::kIntersection), 1e-5);
}

TEST_P(RectClipMethods, FastPathsInsideAndOutside) {
  PolygonSet subject;
  subject.add({{1, 1}, {2, 1}, {1.5, 2}});     // fully inside
  subject.add({{50, 50}, {51, 50}, {50, 51}}); // fully outside
  const PolygonSet out = rect_clip(subject, {0, 0, 10, 10}, GetParam());
  ASSERT_EQ(out.num_contours(), 1u);
  EXPECT_NEAR(geom::signed_area(out), 0.5, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Methods, RectClipMethods,
                         ::testing::Values(RectClipMethod::kGreinerHormann,
                                           RectClipMethod::kVatti,
                                           RectClipMethod::kSutherlandHodgman));

TEST(RectClip, MethodNames) {
  EXPECT_STREQ(to_string(RectClipMethod::kGreinerHormann), "GH");
  EXPECT_STREQ(to_string(RectClipMethod::kVatti), "Vatti");
  EXPECT_STREQ(to_string(RectClipMethod::kSutherlandHodgman), "SH");
}

}  // namespace
}  // namespace psclip::seq
