#include "seq/bounds.hpp"

#include <gtest/gtest.h>

#include "geom/perturb.hpp"
#include "test_support.hpp"

namespace psclip::seq {
namespace {

using geom::Point;
using geom::PolygonSet;

BoundTable table_for(PolygonSet s, PolygonSet c = {}) {
  geom::remove_horizontals(s);
  geom::remove_horizontals(c);
  return build_bounds(s, c);
}

TEST(Bounds, TriangleHasOneMinimumTwoBounds) {
  const BoundTable bt = table_for(geom::make_polygon({{0, 0}, {4, 1}, {2, 5}}));
  ASSERT_EQ(bt.minima.size(), 1u);
  EXPECT_EQ(bt.minima[0].pt, (Point{0, 0}));
  EXPECT_EQ(bt.edges.size(), 3u);  // every edge is in exactly one bound
}

TEST(Bounds, EdgesAscendAndChainsLink) {
  const BoundTable bt = table_for(test::random_polygon(5, 24, 0, 0, 10));
  EXPECT_EQ(bt.edges.size(), 24u);
  for (const auto& e : bt.edges) {
    EXPECT_LT(e.bot.y, e.top.y);
    if (e.next >= 0) {
      // Chains are continuous: the next edge starts where this one ends.
      EXPECT_EQ(bt.edges[static_cast<std::size_t>(e.next)].bot, e.top);
    }
  }
}

TEST(Bounds, MinimaSortedByYThenX) {
  const BoundTable bt =
      table_for(test::random_polygon(9, 30, 0, 0, 10),
                test::random_polygon(10, 20, 3, 2, 8));
  for (std::size_t i = 1; i < bt.minima.size(); ++i) {
    const auto& a = bt.minima[i - 1].pt;
    const auto& b = bt.minima[i].pt;
    EXPECT_TRUE(a.y < b.y || (a.y == b.y && a.x <= b.x));
  }
}

TEST(Bounds, LeftRightHeadsOrderedBySlope) {
  const BoundTable bt = table_for(test::random_polygon(11, 40, 0, 0, 10));
  for (const auto& lm : bt.minima) {
    const auto& l = bt.edges[static_cast<std::size_t>(lm.edge_left)];
    const auto& r = bt.edges[static_cast<std::size_t>(lm.edge_right)];
    EXPECT_EQ(l.bot, lm.pt);
    EXPECT_EQ(r.bot, lm.pt);
    EXPECT_LE(l.dxdy, r.dxdy);
  }
}

TEST(Bounds, ClipFlagDistinguishesInputs) {
  const BoundTable bt = table_for(test::random_polygon(2, 10, 0, 0, 5),
                                  test::random_polygon(3, 12, 1, 1, 5));
  std::size_t subject = 0, clip = 0;
  for (const auto& e : bt.edges) (e.is_clip ? clip : subject)++;
  EXPECT_EQ(subject, 10u);
  EXPECT_EQ(clip, 12u);
}

TEST(Bounds, EveryEdgeAppearsExactlyOnce) {
  // Total bound edges == total input vertices (each ring edge belongs to
  // exactly one ascending bound, descending ones reversed).
  for (int n : {6, 13, 27, 50}) {
    const auto p = test::random_polygon(static_cast<std::uint64_t>(n), n, 0,
                                        0, 10);
    EXPECT_EQ(table_for(p).edges.size(), static_cast<std::size_t>(n));
  }
}

TEST(Bounds, MaximaTerminateChains) {
  const BoundTable bt = table_for(test::random_polygon(21, 36, 0, 0, 10));
  // Count chain ends (-1 next): equals count of bounds == 2 * minima.
  std::size_t ends = 0;
  for (const auto& e : bt.edges)
    if (e.next < 0) ++ends;
  EXPECT_EQ(ends, 2 * bt.minima.size());
}

TEST(Bounds, ScanbeamYsSortedDistinct) {
  const BoundTable bt = table_for(test::random_polygon(33, 25, 0, 0, 10),
                                  test::random_polygon(34, 25, 2, 1, 9));
  const auto ys = scanbeam_ys(bt);
  for (std::size_t i = 1; i < ys.size(); ++i) EXPECT_LT(ys[i - 1], ys[i]);
  // All edge endpoints are scanlines.
  for (const auto& e : bt.edges) {
    EXPECT_TRUE(std::binary_search(ys.begin(), ys.end(), e.bot.y));
    EXPECT_TRUE(std::binary_search(ys.begin(), ys.end(), e.top.y));
  }
}

// The tuned sweep kernel builds the scanbeam schedule by k-way merging the
// per-bound sorted y-lists; the reference kernel sorts all endpoints. The
// byte-identity contract between the kernels starts here: the two builders
// must produce the *identical* vector (bit-for-bit, same length).
TEST(Bounds, MergedScheduleEqualsSortUnique) {
  const struct {
    PolygonSet a, b;
  } cases[] = {
      {geom::make_polygon({{0, 0}, {4, 1}, {2, 5}}), {}},
      {test::random_polygon(33, 25, 0, 0, 10),
       test::random_polygon(34, 25, 2, 1, 9)},
      {test::random_polygon(55, 64, 0, 0, 10),
       test::random_polygon(56, 41, -2, 3, 12)},
      // Shared ordinates across inputs (duplicates across bounds).
      {geom::make_polygon({{0, 0}, {6, 0.5}, {3, 4}}),
       geom::make_polygon({{1, 0}, {7, 0.5}, {4, 4}})},
      {{}, {}},  // empty table
  };
  for (std::size_t i = 0; i < std::size(cases); ++i) {
    SCOPED_TRACE("case " + std::to_string(i));
    const BoundTable bt = table_for(cases[i].a, cases[i].b);
    std::vector<double> sorted, merged;
    scanbeam_ys_into(bt, sorted);
    scanbeam_ys_merged_into(bt, merged);
    ASSERT_EQ(merged.size(), sorted.size());
    for (std::size_t j = 0; j < sorted.size(); ++j)
      EXPECT_EQ(merged[j], sorted[j]) << "y index " << j;
  }
}

// Reused buffers must be indistinguishable from fresh ones.
TEST(Bounds, MergedScheduleBufferReuse) {
  std::vector<double> ys{1.0, 2.0, 3.0, 4.0, 5.0};
  const BoundTable bt = table_for(test::random_polygon(21, 36, 0, 0, 10));
  scanbeam_ys_merged_into(bt, ys);
  EXPECT_EQ(ys, scanbeam_ys(bt));
}

TEST(Bounds, DegenerateContoursSkipped) {
  PolygonSet p;
  p.add({{0, 0}, {1, 1}});          // too small
  p.add({{0, 0}, {4, 1}, {2, 5}});  // fine
  const BoundTable bt = table_for(p);
  EXPECT_EQ(bt.edges.size(), 3u);
}

}  // namespace
}  // namespace psclip::seq
