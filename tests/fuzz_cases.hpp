#pragma once

// Shared deterministic fuzz-case generator. Every case builds a polygon
// pair from a fixed seed (smooth blobs, jagged stars, convex rings,
// self-intersecting rings, star polygrams, multi-contour fields — plus
// degenerate variants with collinear and duplicate vertices restored to
// general position via geom::jitter, the paper's §III-C preprocessing).
//
// Consumed by two harnesses: cross_engine_fuzz_test (engines must agree on
// every case) and fault_fuzz_test (every case must survive a seeded
// injected fault with byte-identical output). Keeping one generator means
// a corpus case that trips an engine bug automatically becomes a fault-
// recovery case too.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "data/synthetic.hpp"
#include "geom/bool_op.hpp"
#include "geom/perturb.hpp"
#include "geom/polygon.hpp"

namespace psclip::fuzz {

enum class Shape {
  kBlobPair,      // synthetic_pair: two large overlapping blobs
  kSimplePair,    // jagged concave stars
  kConvexVsBlob,  // convex ring against a blob
  kSelfIntersecting,  // self-intersecting subject (GH ineligible)
  kPolygram,      // star polygram subject (GH ineligible)
  kFieldVsBlob,   // multi-contour subject layer (GH ineligible: union/xor
                  // of an independent per-contour clip is not the set op)
};

enum class Degenerate {
  kNone,        // generator output as-is
  kSnapJitter,  // snap to a coarse grid (collinear runs, duplicate
                // vertices), clean, then jitter back to general position
  kJitterTiny,  // near-degenerate: vertices moved by ~1e-7
};

struct FuzzCase {
  std::uint64_t seed;
  Shape shape;
  Degenerate degen;
  geom::BoolOp op;

  [[nodiscard]] std::string repro() const {
    std::ostringstream os;
    os << "seed=" << seed << " shape=" << static_cast<int>(shape)
       << " degen=" << static_cast<int>(degen)
       << " op=" << geom::to_string(op);
    return os.str();
  }
};

/// Snap coordinates to a coarse grid. This manufactures exactly the inputs
/// sweep-line clippers dislike: collinear edge runs, duplicate vertices,
/// shared ordinates across both polygons.
inline void snap_to_grid(geom::PolygonSet& p, double cell) {
  for (auto& c : p.contours)
    for (auto& pt : c.pts) {
      pt.x = std::round(pt.x / cell) * cell;
      pt.y = std::round(pt.y / cell) * cell;
    }
}

struct Inputs {
  geom::PolygonSet a, b;
  bool gh_eligible = false;  // simple single-contour subject AND clip
};

inline Inputs make_inputs(const FuzzCase& c) {
  Inputs in;
  const std::uint64_t s = c.seed;
  switch (c.shape) {
    case Shape::kBlobPair: {
      const auto pair =
          data::synthetic_pair(s, 24 + static_cast<int>(s % 5) * 12);
      in.a = pair.subject;
      in.b = pair.clip;
      in.gh_eligible = true;
      break;
    }
    case Shape::kSimplePair:
      in.a = data::random_simple(s * 2 + 1, 10 + static_cast<int>(s % 7) * 5,
                                 0, 0, 10);
      in.b = data::random_simple(s * 2 + 2, 8 + static_cast<int>(s % 5) * 4,
                                 2, -1, 8);
      in.gh_eligible = true;
      break;
    case Shape::kConvexVsBlob:
      in.a = data::random_convex(s * 2 + 1, 8 + static_cast<int>(s % 9) * 3,
                                 1, 1, 9);
      in.b = data::random_blob(s * 2 + 2, 24 + static_cast<int>(s % 4) * 10,
                               0, 0, 8);
      in.gh_eligible = true;
      break;
    case Shape::kSelfIntersecting:
      in.a = data::random_self_intersecting(
          s * 2 + 1, 10 + static_cast<int>(s % 6) * 4, 0, 0, 10);
      in.b = data::random_simple(s * 2 + 2, 9 + static_cast<int>(s % 5) * 4,
                                 1, 1, 8);
      break;
    case Shape::kPolygram: {
      // Coprime (points, step) pairs only: a common factor would trace a
      // degenerate multi-cycle ring instead of one polygram.
      static constexpr int kPolygrams[][2] = {{5, 2},  {7, 2}, {7, 3},
                                              {9, 2},  {9, 4}, {11, 3},
                                              {11, 4}, {11, 5}};
      const auto& pg = kPolygrams[s % 8];
      in.a = data::star_polygram(pg[0], pg[1], 0, 0, 9);
      in.b = data::random_simple(s * 2 + 2, 12 + static_cast<int>(s % 5) * 3,
                                 1, -1, 8);
      break;
    }
    case Shape::kFieldVsBlob:
      in.a = data::polygon_field(s * 2 + 1, 6 + static_cast<int>(s % 4) * 2,
                                 20.0, 7);
      in.b = data::random_blob(s * 2 + 2, 20 + static_cast<int>(s % 4) * 8,
                               10, 10, 9);
      break;
  }
  switch (c.degen) {
    case Degenerate::kNone:
      break;
    case Degenerate::kSnapJitter:
      // Collinear/duplicate-vertex inputs restored to general position the
      // way the paper prescribes (§III-C): perturb, don't special-case.
      snap_to_grid(in.a, 0.5);
      snap_to_grid(in.b, 0.5);
      in.a = geom::cleaned(in.a);
      in.b = geom::cleaned(in.b);
      geom::jitter(in.a, 1e-6, s * 3 + 1);
      geom::jitter(in.b, 1e-6, s * 3 + 2);
      break;
    case Degenerate::kJitterTiny:
      geom::jitter(in.a, 1e-7, s * 3 + 1);
      geom::jitter(in.b, 1e-7, s * 3 + 2);
      break;
  }
  // Snapping can collapse a ring below 3 vertices; cleaned() above drops
  // those, and an input emptied entirely still goes through the engines
  // (they must agree on empty results too).
  return in;
}

/// Canonical vertex multiset of a polygon set: every coordinate pair,
/// sorted. Two runs of the same decomposition must produce the same
/// multiset bit for bit, regardless of scheduling.
inline std::vector<std::pair<double, double>> canonical_vertices(
    const geom::PolygonSet& p) {
  std::vector<std::pair<double, double>> v;
  for (const auto& c : p.contours)
    for (const auto& pt : c.pts) v.emplace_back(pt.x, pt.y);
  std::sort(v.begin(), v.end());
  return v;
}

inline std::vector<FuzzCase> make_cases() {
  // 6 shapes x 3 degeneracy modes x 4 operators x 3 seed lanes = 216
  // deterministic cases (>= the 200 the harness promises in ctest).
  std::vector<FuzzCase> cases;
  const Shape shapes[] = {Shape::kBlobPair,         Shape::kSimplePair,
                          Shape::kConvexVsBlob,     Shape::kSelfIntersecting,
                          Shape::kPolygram,         Shape::kFieldVsBlob};
  const Degenerate degens[] = {Degenerate::kNone, Degenerate::kSnapJitter,
                               Degenerate::kJitterTiny};
  std::uint64_t seed = 424200;
  for (int lane = 0; lane < 3; ++lane)
    for (const Shape sh : shapes)
      for (const Degenerate d : degens)
        for (const geom::BoolOp op : geom::kAllOps)
          cases.push_back({seed++, sh, d, op});
  return cases;
}

}  // namespace psclip::fuzz
