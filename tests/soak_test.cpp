// Chaos soak for request governance (requires -DPSCLIP_FAULT_INJECTION=ON;
// ctest label "soak").
//
// Every case of the 216-case fuzz corpus is re-run under a pseudo-random
// governance configuration derived from the case seed: a deadline lane
// (none / generous / tight / already-expired), a budget lane (none /
// generous / tight), an optional armed governance fault (kStall or kHog
// from fault::seeded_governance_plan), and the partial-result switch. The
// point is not to predict which condition trips — on a timeshared host
// that is unknowable — but to assert that EVERY reachable outcome keeps
// the contracts of DESIGN.md §11:
//
//   * the run terminates, and when a deadline is armed it terminates
//     within deadline + ε (ε generous enough for sanitizer builds);
//   * the outcome is exactly one of: complete success, a partial result
//     (only when allow_partial), or a precise governance Error — never a
//     mangled kTaskFailure, never a crash;
//   * a complete success is BYTE-IDENTICAL to the ungoverned reference
//     (the only recovery rung governance faults can drive is kRetrySafe,
//     which is bit-equal by construction);
//   * the budget meter balances: used() returns to zero however the run
//     ended, and peak() never exceeds the limit;
//   * after a trip, an ungoverned re-run is byte-identical to the
//     reference — aborted attempts must not poison pooled worker arenas
//     or any other cross-request state.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "error.hpp"
#include "fuzz_cases.hpp"
#include "mt/algorithm2.hpp"
#include "mt/stats.hpp"
#include "parallel/cancel.hpp"
#include "parallel/fault.hpp"
#include "parallel/thread_pool.hpp"

namespace psclip {
namespace {

using fuzz::canonical_vertices;
using fuzz::FuzzCase;
using fuzz::Inputs;
using fuzz::make_inputs;
using geom::PolygonSet;

static_assert(par::fault::kEnabled,
              "soak_test requires PSCLIP_FAULT_INJECTION=ON");

constexpr unsigned kSlabs = 6;
// Scheduling slack added to the armed deadline before the wall-clock bound
// is declared violated: checkpoints are cooperative (a stall or one slow
// scanbeam overshoots by design) and sanitizer builds on shared hosts are
// slow. What matters is the order of magnitude: a governance-free run of a
// corpus case is milliseconds, so a run that ignored its deadline for two
// whole seconds is a real containment failure, not noise.
constexpr std::int64_t kSlackMs = 2000;

struct SoakConfig {
  std::int64_t deadline_ms = -1;  // -1 = no deadline
  std::uint64_t budget_bytes = 0;  // 0 = no budget
  bool arm_fault = false;
  bool allow_partial = false;

  [[nodiscard]] std::string describe() const {
    std::string s = "deadline=";
    s += deadline_ms < 0 ? "none" : std::to_string(deadline_ms) + "ms";
    s += " budget=";
    s += budget_bytes == 0 ? "none" : std::to_string(budget_bytes) + "B";
    s += arm_fault ? " fault=armed" : " fault=none";
    s += allow_partial ? " partial=allowed" : " partial=off";
    return s;
  }
};

/// Pseudo-random lane assignment, decorrelated from the corpus seeds the
/// same way the fault planners are (SplitMix64 finalizer).
SoakConfig derive_config(std::uint64_t seed) {
  std::uint64_t z = (seed ^ 0x5ca1ab1edeadbeefull) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  SoakConfig c;
  switch (z % 4) {
    case 0: c.deadline_ms = -1; break;
    case 1: c.deadline_ms = 10'000; break;  // generous: should never trip
    case 2: c.deadline_ms = 25; break;      // tight: may trip mid-run
    case 3: c.deadline_ms = 0; break;       // expired before entry
  }
  switch ((z >> 8) % 3) {
    case 0: c.budget_bytes = 0; break;
    case 1: c.budget_bytes = 256ull << 20; break;  // generous
    case 2: c.budget_bytes = 128ull << 10; break;  // tight: 2 granules
  }
  c.arm_fault = ((z >> 16) & 1) != 0;
  c.allow_partial = ((z >> 17) & 1) != 0;
  return c;
}

class GovernanceSoak : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(GovernanceSoak, EveryOutcomeKeepsTheContract) {
  const FuzzCase c = GetParam();
  const SoakConfig cfg = derive_config(c.seed);
  const par::fault::Plan plan =
      par::fault::seeded_governance_plan(c.seed, kSlabs);
  SCOPED_TRACE("repro: " + c.repro() + " " + cfg.describe() +
               (cfg.arm_fault
                    ? " plan=" + std::string(par::fault::to_string(plan.site)) +
                          "/" + par::fault::to_string(plan.kind) +
                          " key=" + std::to_string(plan.key)
                    : ""));
  const Inputs in = make_inputs(c);

  static par::ThreadPool pool(4);
  mt::Alg2Options base;
  base.slabs = kSlabs;
  base.rect_method = seq::RectClipMethod::kVatti;

  par::fault::disarm();
  const PolygonSet want = mt::slab_clip(in.a, in.b, c.op, pool, base);

  mt::Alg2Options o = base;
  o.cancel = par::CancelToken::make();
  if (cfg.deadline_ms >= 0)
    o.cancel.set_deadline(par::Deadline::in_ms(cfg.deadline_ms));
  std::shared_ptr<par::ResourceBudget> budget;
  if (cfg.budget_bytes != 0) {
    budget = std::make_shared<par::ResourceBudget>(cfg.budget_bytes);
    o.cancel.set_budget(budget);
  }
  o.allow_partial = cfg.allow_partial;
  if (cfg.arm_fault) par::fault::arm(plan);

  enum class Outcome { kSuccess, kPartial, kGovernanceError };
  Outcome outcome = Outcome::kSuccess;
  mt::Alg2Stats stats;
  PolygonSet got;
  ErrorCode err = ErrorCode::kCancelled;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    got = mt::slab_clip(in.a, in.b, c.op, pool, o, &stats);
    if (stats.partial.partial) outcome = Outcome::kPartial;
  } catch (const Error& e) {
    outcome = Outcome::kGovernanceError;
    err = e.code();
  } catch (...) {
    par::fault::disarm();
    FAIL() << "governed run threw something other than psclip::Error";
  }
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  par::fault::disarm();

  // Termination bound: an armed deadline caps the run, cooperatively.
  if (cfg.deadline_ms >= 0)
    EXPECT_LE(elapsed_ms, cfg.deadline_ms + kSlackMs)
        << "run overshot its deadline by more than the cooperative slack";

  // The budget meter balances no matter how the run ended, and peak
  // accounting never admits more than the limit.
  if (budget) {
    EXPECT_EQ(budget->used(), 0u)
        << "charges leaked (unwind or partial path missed a release)";
    EXPECT_LE(budget->peak(), budget->limit());
  }

  switch (outcome) {
    case Outcome::kSuccess:
      // Complete success must be byte-identical: stalls produce no error,
      // hog recovery is kRetrySafe (bit-equal), governance trips never
      // complete silently.
      EXPECT_EQ(canonical_vertices(got), canonical_vertices(want));
      EXPECT_LE(stats.worst_rung(), mt::Rung::kRetrySafe);
      EXPECT_FALSE(stats.partial.partial);
      break;
    case Outcome::kPartial:
      EXPECT_TRUE(cfg.allow_partial)
          << "partial result without the partial contract";
      EXPECT_TRUE(is_governance(stats.partial.cause));
      EXPECT_GE(stats.partial.missing_slabs(), 1u);
      EXPECT_LE(stats.partial.missing_slabs(), kSlabs);
      EXPECT_EQ(stats.worst_rung(), mt::Rung::kPartialResult);
      for (const auto& r : stats.partial.missing) {
        EXPECT_LE(r.first, r.last);
        EXPECT_LT(r.last, kSlabs);
      }
      break;
    case Outcome::kGovernanceError:
      EXPECT_TRUE(is_governance(err))
          << "governed run failed with non-governance code "
          << static_cast<int>(err);
      break;
  }

  if (outcome != Outcome::kSuccess) {
    // Aborted attempts must leave no cross-request debris: pooled worker
    // arenas, scratch, scanbeam schedules all reset. An ungoverned re-run
    // must reproduce the reference bit for bit.
    const PolygonSet again = mt::slab_clip(in.a, in.b, c.op, pool, base);
    EXPECT_EQ(canonical_vertices(again), canonical_vertices(want))
        << "a governance trip polluted state shared across requests";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeded, GovernanceSoak,
                         ::testing::ValuesIn(fuzz::make_cases()));

}  // namespace
}  // namespace psclip
