// Chaos soak for request governance (requires -DPSCLIP_FAULT_INJECTION=ON;
// ctest label "soak").
//
// Every case of the 216-case fuzz corpus is re-run under a pseudo-random
// governance configuration derived from the case seed: a deadline lane
// (none / generous / tight / already-expired), a budget lane (none /
// generous / tight), an optional armed governance fault (kStall or kHog
// from fault::seeded_governance_plan), and the partial-result switch. The
// point is not to predict which condition trips — on a timeshared host
// that is unknowable — but to assert that EVERY reachable outcome keeps
// the contracts of DESIGN.md §11:
//
//   * the run terminates, and when a deadline is armed it terminates
//     within deadline + ε (ε generous enough for sanitizer builds);
//   * the outcome is exactly one of: complete success, a partial result
//     (only when allow_partial), or a precise governance Error — never a
//     mangled kTaskFailure, never a crash;
//   * a complete success is BYTE-IDENTICAL to the ungoverned reference
//     (the only recovery rung governance faults can drive is kRetrySafe,
//     which is bit-equal by construction);
//   * the budget meter balances: used() returns to zero however the run
//     ended, and peak() never exceeds the limit;
//   * after a trip, an ungoverned re-run is byte-identical to the
//     reference — aborted attempts must not poison pooled worker arenas
//     or any other cross-request state.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "error.hpp"
#include "fuzz_cases.hpp"
#include "mt/algorithm2.hpp"
#include "mt/stats.hpp"
#include "parallel/cancel.hpp"
#include "parallel/fault.hpp"
#include "parallel/thread_pool.hpp"
#include "psclip.hpp"
#include "svc/clip_service.hpp"

namespace psclip {
namespace {

using fuzz::canonical_vertices;
using fuzz::FuzzCase;
using fuzz::Inputs;
using fuzz::make_inputs;
using geom::PolygonSet;

static_assert(par::fault::kEnabled,
              "soak_test requires PSCLIP_FAULT_INJECTION=ON");

constexpr unsigned kSlabs = 6;
// Scheduling slack added to the armed deadline before the wall-clock bound
// is declared violated: checkpoints are cooperative (a stall or one slow
// scanbeam overshoots by design) and sanitizer builds on shared hosts are
// slow. What matters is the order of magnitude: a governance-free run of a
// corpus case is milliseconds, so a run that ignored its deadline for two
// whole seconds is a real containment failure, not noise.
constexpr std::int64_t kSlackMs = 2000;

struct SoakConfig {
  std::int64_t deadline_ms = -1;  // -1 = no deadline
  std::uint64_t budget_bytes = 0;  // 0 = no budget
  bool arm_fault = false;
  bool allow_partial = false;

  [[nodiscard]] std::string describe() const {
    std::string s = "deadline=";
    s += deadline_ms < 0 ? "none" : std::to_string(deadline_ms) + "ms";
    s += " budget=";
    s += budget_bytes == 0 ? "none" : std::to_string(budget_bytes) + "B";
    s += arm_fault ? " fault=armed" : " fault=none";
    s += allow_partial ? " partial=allowed" : " partial=off";
    return s;
  }
};

/// Pseudo-random lane assignment, decorrelated from the corpus seeds the
/// same way the fault planners are (SplitMix64 finalizer).
SoakConfig derive_config(std::uint64_t seed) {
  std::uint64_t z = (seed ^ 0x5ca1ab1edeadbeefull) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  SoakConfig c;
  switch (z % 4) {
    case 0: c.deadline_ms = -1; break;
    case 1: c.deadline_ms = 10'000; break;  // generous: should never trip
    case 2: c.deadline_ms = 25; break;      // tight: may trip mid-run
    case 3: c.deadline_ms = 0; break;       // expired before entry
  }
  switch ((z >> 8) % 3) {
    case 0: c.budget_bytes = 0; break;
    case 1: c.budget_bytes = 256ull << 20; break;  // generous
    case 2: c.budget_bytes = 128ull << 10; break;  // tight: 2 granules
  }
  c.arm_fault = ((z >> 16) & 1) != 0;
  c.allow_partial = ((z >> 17) & 1) != 0;
  return c;
}

class GovernanceSoak : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(GovernanceSoak, EveryOutcomeKeepsTheContract) {
  const FuzzCase c = GetParam();
  const SoakConfig cfg = derive_config(c.seed);
  const par::fault::Plan plan =
      par::fault::seeded_governance_plan(c.seed, kSlabs);
  SCOPED_TRACE("repro: " + c.repro() + " " + cfg.describe() +
               (cfg.arm_fault
                    ? " plan=" + std::string(par::fault::to_string(plan.site)) +
                          "/" + par::fault::to_string(plan.kind) +
                          " key=" + std::to_string(plan.key)
                    : ""));
  const Inputs in = make_inputs(c);

  static par::ThreadPool pool(4);
  mt::Alg2Options base;
  base.slabs = kSlabs;
  base.rect_method = seq::RectClipMethod::kVatti;

  par::fault::disarm();
  const PolygonSet want = mt::slab_clip(in.a, in.b, c.op, pool, base);

  mt::Alg2Options o = base;
  o.cancel = par::CancelToken::make();
  if (cfg.deadline_ms >= 0)
    o.cancel.set_deadline(par::Deadline::in_ms(cfg.deadline_ms));
  std::shared_ptr<par::ResourceBudget> budget;
  if (cfg.budget_bytes != 0) {
    budget = std::make_shared<par::ResourceBudget>(cfg.budget_bytes);
    o.cancel.set_budget(budget);
  }
  o.allow_partial = cfg.allow_partial;
  if (cfg.arm_fault) par::fault::arm(plan);

  enum class Outcome { kSuccess, kPartial, kGovernanceError };
  Outcome outcome = Outcome::kSuccess;
  mt::Alg2Stats stats;
  PolygonSet got;
  ErrorCode err = ErrorCode::kCancelled;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    got = mt::slab_clip(in.a, in.b, c.op, pool, o, &stats);
    if (stats.partial.partial) outcome = Outcome::kPartial;
  } catch (const Error& e) {
    outcome = Outcome::kGovernanceError;
    err = e.code();
  } catch (...) {
    par::fault::disarm();
    FAIL() << "governed run threw something other than psclip::Error";
  }
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  par::fault::disarm();

  // Termination bound: an armed deadline caps the run, cooperatively.
  if (cfg.deadline_ms >= 0)
    EXPECT_LE(elapsed_ms, cfg.deadline_ms + kSlackMs)
        << "run overshot its deadline by more than the cooperative slack";

  // The budget meter balances no matter how the run ended, and peak
  // accounting never admits more than the limit.
  if (budget) {
    EXPECT_EQ(budget->used(), 0u)
        << "charges leaked (unwind or partial path missed a release)";
    EXPECT_LE(budget->peak(), budget->limit());
  }

  switch (outcome) {
    case Outcome::kSuccess:
      // Complete success must be byte-identical: stalls produce no error,
      // hog recovery is kRetrySafe (bit-equal), governance trips never
      // complete silently.
      EXPECT_EQ(canonical_vertices(got), canonical_vertices(want));
      EXPECT_LE(stats.worst_rung(), mt::Rung::kRetrySafe);
      EXPECT_FALSE(stats.partial.partial);
      break;
    case Outcome::kPartial:
      EXPECT_TRUE(cfg.allow_partial)
          << "partial result without the partial contract";
      EXPECT_TRUE(is_governance(stats.partial.cause));
      EXPECT_GE(stats.partial.missing_slabs(), 1u);
      EXPECT_LE(stats.partial.missing_slabs(), kSlabs);
      EXPECT_EQ(stats.worst_rung(), mt::Rung::kPartialResult);
      for (const auto& r : stats.partial.missing) {
        EXPECT_LE(r.first, r.last);
        EXPECT_LT(r.last, kSlabs);
      }
      break;
    case Outcome::kGovernanceError:
      EXPECT_TRUE(is_governance(err))
          << "governed run failed with non-governance code "
          << static_cast<int>(err);
      break;
  }

  if (outcome != Outcome::kSuccess) {
    // Aborted attempts must leave no cross-request debris: pooled worker
    // arenas, scratch, scanbeam schedules all reset. An ungoverned re-run
    // must reproduce the reference bit for bit.
    const PolygonSet again = mt::slab_clip(in.a, in.b, c.op, pool, base);
    EXPECT_EQ(canonical_vertices(again), canonical_vertices(want))
        << "a governance trip polluted state shared across requests";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeded, GovernanceSoak,
                         ::testing::ValuesIn(fuzz::make_cases()));

// Multi-request lane: the single-request contracts above must survive a
// ClipService mixing concurrently-submitted governed requests on one pool,
// with the prepared-contour cache on and off and a governance fault armed
// for some rounds. Per-request isolation is the point — one request's
// deadline trip, budget blow or injected stall must never change another
// request's bytes, and every shared meter must balance at drain.
TEST(ServiceChaosSoak, ConcurrentGovernedRequestsStayIsolated) {
  // Every 8th corpus case keeps the lane's runtime sane under sanitizers
  // while still crossing every shape/degeneracy family.
  const std::vector<FuzzCase> all = fuzz::make_cases();
  std::vector<FuzzCase> cases;
  std::vector<Inputs> inputs;
  for (std::size_t i = 0; i < all.size(); i += 8) {
    cases.push_back(all[i]);
    inputs.push_back(make_inputs(all[i]));
  }

  static par::ThreadPool pool(4);
  par::fault::disarm();
  std::vector<PolygonSet> refs;
  refs.reserve(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    ClipOptions copts;
    copts.engine = Engine::kSlab;
    copts.pool = &pool;
    refs.push_back(clip(inputs[i].a, inputs[i].b, cases[i].op, copts));
  }

  for (const bool cache_on : {true, false}) {
    svc::ServiceOptions sopts;
    sopts.enable_cache = cache_on;
    sopts.max_queued = 64;
    auto cache_budget = std::make_shared<par::ResourceBudget>(8ull << 20);
    if (cache_on) sopts.cache.budget = cache_budget;
    svc::ClipService service(pool, sopts);

    constexpr unsigned kRounds = 3;
    constexpr int kClients = 3;
    for (unsigned round = 0; round < kRounds; ++round) {
      // Round 0 runs fault-free; later rounds arm one seeded governance
      // fault (kStall / kHog) any concurrent request may hit.
      const par::fault::Plan plan = par::fault::seeded_governance_plan(
          0x5e71ce + round * 131 + (cache_on ? 7 : 0), 8);
      if (round != 0) par::fault::arm(plan);

      std::atomic<int> contract_failures{0};
      std::vector<std::thread> clients;
      clients.reserve(kClients);
      for (int t = 0; t < kClients; ++t) {
        clients.emplace_back([&, t, round] {
          for (std::size_t i = t; i < cases.size();
               i += static_cast<std::size_t>(kClients)) {
            const SoakConfig cfg = derive_config(
                cases[i].seed ^ (round * 0x9e3779b9ull) ^
                (static_cast<std::uint64_t>(t) << 51));
            svc::ClipRequest req;
            req.subject = inputs[i].a;
            req.clip = inputs[i].b;
            req.op = cases[i].op;
            req.engine = Engine::kSlab;
            req.allow_partial = cfg.allow_partial;
            std::shared_ptr<par::ResourceBudget> budget;
            if (cfg.deadline_ms >= 0 || cfg.budget_bytes != 0) {
              req.cancel = par::CancelToken::make();
              if (cfg.deadline_ms >= 0)
                req.cancel.set_deadline(par::Deadline::in_ms(cfg.deadline_ms));
              if (cfg.budget_bytes != 0) {
                budget =
                    std::make_shared<par::ResourceBudget>(cfg.budget_bytes);
                req.cancel.set_budget(budget);
              }
            }
            try {
              const svc::ClipResult res = service.submit(req);
              if (res.partial.partial) {
                if (!cfg.allow_partial || !is_governance(res.partial.cause)) {
                  contract_failures.fetch_add(1, std::memory_order_relaxed);
                  ADD_FAILURE() << "bad partial: " << cases[i].repro() << " "
                                << cfg.describe();
                }
              } else if (canonical_vertices(res.output) !=
                         canonical_vertices(refs[i])) {
                contract_failures.fetch_add(1, std::memory_order_relaxed);
                ADD_FAILURE()
                    << "a concurrent governed neighbor changed this "
                       "request's bytes: "
                    << cases[i].repro() << " " << cfg.describe();
              }
            } catch (const Error& e) {
              if (!is_governance(e.code())) {
                contract_failures.fetch_add(1, std::memory_order_relaxed);
                ADD_FAILURE() << "non-governance failure "
                              << static_cast<int>(e.code()) << ": "
                              << cases[i].repro() << " " << cfg.describe();
              }
            } catch (...) {
              contract_failures.fetch_add(1, std::memory_order_relaxed);
              ADD_FAILURE() << "threw something other than psclip::Error: "
                            << cases[i].repro();
            }
            // Per-request budget meters balance however the request ended.
            if (budget && budget->used() != 0) {
              contract_failures.fetch_add(1, std::memory_order_relaxed);
              ADD_FAILURE() << "request budget leaked " << budget->used()
                            << "B: " << cases[i].repro() << " "
                            << cfg.describe();
            }
          }
        });
      }
      for (auto& th : clients) th.join();
      par::fault::disarm();
      EXPECT_EQ(contract_failures.load(), 0)
          << "round " << round << " cache=" << cache_on;
    }

    // Service meters balance at drain.
    EXPECT_EQ(service.submitted(),
              service.completed() + service.failed() + service.rejected());
    EXPECT_EQ(service.rejected(), 0u)
        << "the lane was sized to never overflow admission";
    EXPECT_EQ(service.in_flight(), 0u);
    if (cache_on) {
      ASSERT_NE(service.cache(), nullptr);
      EXPECT_FALSE(cache_budget->blown())
          << "the cache's dedicated budget must be governed by eviction";
      EXPECT_EQ(cache_budget->used(), service.cache()->resident_bytes());
    }

    // Post-soak hygiene: an ungoverned resubmission reproduces the
    // reference — tripped neighbors left no cross-request debris behind.
    svc::ClipRequest clean;
    clean.subject = inputs[0].a;
    clean.clip = inputs[0].b;
    clean.op = cases[0].op;
    clean.engine = Engine::kSlab;
    EXPECT_EQ(canonical_vertices(service.submit(clean).output),
              canonical_vertices(refs[0]))
        << "cache=" << cache_on;
  }
}

}  // namespace
}  // namespace psclip
