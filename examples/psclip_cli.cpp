// psclip_cli — clip two polygon files from the command line.
//
//   psclip_cli <op> <subject-file> <clip-file> [--engine=E] [--out=FMT]
//              [--sanitize] [--trace-out=FILE] [--metrics]
//
//   op        : intersection | union | difference | xor
//   files     : WKT (POLYGON/MULTIPOLYGON) or GeoJSON geometry, detected by
//               the first non-space character ('{' = GeoJSON)
//   --engine  : auto | vatti | martinez | scanbeam | slab   (default auto)
//   --out     : wkt | geojson | area                        (default wkt)
//   --sanitize: repair inputs before clipping (strip non-finite vertices,
//               collapse consecutive duplicates, drop degenerate contours);
//               each repair is reported on stderr. Without it, defective
//               but parseable inputs are clipped as-is.
//   --trace-out=FILE: record the run (parse, request, phase, per-slab and
//               degradation-rung spans) and write a Chrome trace_event JSON
//               file — open it at chrome://tracing or https://ui.perfetto.dev.
//   --metrics : print the counter/histogram snapshot (text) to stderr.
//
// Malformed input files are rejected with the byte offset of the first
// problem (the parsers never hand the clippers NaN/Inf coordinates).
//
// Example:
//   echo 'POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))' > a.wkt
//   echo 'POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))' > b.wkt
//   psclip_cli intersection a.wkt b.wkt --out=area

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "psclip.hpp"

namespace {

std::optional<psclip::geom::PolygonSet> load(const std::string& path,
                                             bool sanitize) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "psclip: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) {
    std::fprintf(stderr, "psclip: %s: empty file\n", path.c_str());
    return std::nullopt;
  }
  psclip::Error err(psclip::ErrorCode::kParse, "");
  auto parsed = text[first] == '{'
                    ? psclip::geom::from_geojson(text, &err)
                    : psclip::geom::from_wkt(text, &err);
  if (!parsed) {
    std::fprintf(stderr, "psclip: %s: %s\n", path.c_str(), err.what());
    return parsed;
  }
  if (sanitize) {
    std::vector<psclip::geom::ValidationIssue> repairs;
    *parsed = psclip::geom::sanitize(*parsed, &repairs);
    for (const auto& r : repairs)
      std::fprintf(stderr, "psclip: %s: sanitized %s (contour %zu, vertex %zu)\n",
                   path.c_str(), psclip::geom::to_string(r.kind), r.contour,
                   r.vertex);
  }
  return parsed;
}

std::optional<psclip::geom::BoolOp> parse_op(const std::string& s) {
  using psclip::geom::BoolOp;
  if (s == "intersection" || s == "int") return BoolOp::kIntersection;
  if (s == "union") return BoolOp::kUnion;
  if (s == "difference" || s == "diff") return BoolOp::kDifference;
  if (s == "xor") return BoolOp::kXor;
  return std::nullopt;
}

std::optional<psclip::Engine> parse_engine(const std::string& s) {
  using psclip::Engine;
  if (s == "auto") return Engine::kAuto;
  if (s == "vatti") return Engine::kVatti;
  if (s == "martinez") return Engine::kMartinez;
  if (s == "scanbeam") return Engine::kScanbeam;
  if (s == "slab") return Engine::kSlab;
  return std::nullopt;
}

int usage() {
  std::fprintf(stderr,
               "usage: psclip_cli <intersection|union|difference|xor> "
               "<subject-file> <clip-file> [--engine=auto|vatti|martinez|"
               "scanbeam|slab] [--out=wkt|geojson|area] [--sanitize] "
               "[--trace-out=FILE] [--metrics]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();

  const auto op = parse_op(argv[1]);
  if (!op) return usage();

  psclip::Engine engine = psclip::Engine::kAuto;
  std::string out_fmt = "wkt";
  std::string trace_path;
  bool sanitize = false;
  bool metrics = false;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--engine=", 0) == 0) {
      const auto e = parse_engine(arg.substr(9));
      if (!e) return usage();
      engine = *e;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_fmt = arg.substr(6);
    } else if (arg == "--sanitize") {
      sanitize = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(12);
      if (trace_path.empty()) return usage();
    } else if (arg == "--metrics") {
      metrics = true;
    } else {
      return usage();
    }
  }

  // Install the recorder before parsing so the parse spans are captured
  // too. The CLI is single-request: main exits right after the export, so
  // the recorder outliving the global registration is enough.
  psclip::obs::TraceRecorder recorder;
  if (!trace_path.empty() || metrics)
    psclip::obs::set_global_sink(&recorder);

  const auto subject = load(argv[2], sanitize);
  const auto clip_poly = load(argv[3], sanitize);
  if (!subject || !clip_poly) return 1;

  const psclip::geom::PolygonSet result =
      psclip::clip(*subject, *clip_poly, *op, engine);

  int rc = 0;
  if (out_fmt == "wkt") {
    std::printf("%s\n", psclip::geom::to_wkt(result).c_str());
  } else if (out_fmt == "geojson") {
    std::printf("%s\n", psclip::geom::to_geojson(result).c_str());
  } else if (out_fmt == "area") {
    std::printf("%.17g\n", psclip::geom::signed_area(result));
  } else {
    rc = usage();
  }

  // Quiesce before exporting: exporting walks the per-thread buffers.
  psclip::obs::set_global_sink(nullptr);
  psclip::par::default_pool().wait_idle();
  if (!trace_path.empty()) {
    if (!recorder.write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "psclip: cannot write trace to %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "psclip: trace written to %s (open in "
                         "chrome://tracing)\n",
                 trace_path.c_str());
  }
  if (metrics)
    std::fputs(recorder.metrics().snapshot().to_text().c_str(), stderr);
  return rc;
}
