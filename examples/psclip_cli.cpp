// psclip_cli — clip two polygon files from the command line.
//
//   psclip_cli <op> <subject-file> <clip-file> [--engine=E] [--out=FMT]
//              [--sanitize] [--trace-out=FILE] [--metrics]
//              [--deadline-ms=N] [--max-memory-mb=N] [--allow-partial]
//
//   op        : intersection | union | difference | xor
//   files     : WKT (POLYGON/MULTIPOLYGON) or GeoJSON geometry, detected by
//               the first non-space character ('{' = GeoJSON)
//   --engine  : auto | vatti | martinez | scanbeam | slab   (default auto)
//   --out     : wkt | geojson | area                        (default wkt)
//   --sanitize: repair inputs before clipping (strip non-finite vertices,
//               collapse consecutive duplicates, drop degenerate contours);
//               each repair is reported on stderr. Without it, defective
//               but parseable inputs are clipped as-is.
//   --trace-out=FILE: record the run (parse, request, phase, per-slab and
//               degradation-rung spans) and write a Chrome trace_event JSON
//               file — open it at chrome://tracing or https://ui.perfetto.dev.
//   --metrics : print the counter/histogram snapshot (text) to stderr.
//   --deadline-ms=N   : fail (or go partial) once the clip has run N ms.
//   --max-memory-mb=N : cap the clip's scratch+output memory at N MiB.
//   --allow-partial   : with the slab engine, emit the completed slabs when
//               the deadline/budget trips instead of failing; the missing
//               y-ranges are reported on stderr and the exit code stays 0.
//
// Malformed input files are rejected with the byte offset of the first
// problem (the parsers never hand the clippers NaN/Inf coordinates).
//
// Exit codes (scriptable failure routing — one code per ErrorCode):
//    0  success, including a --allow-partial partial result
//    1  I/O or other unclassified failure
//    2  usage error
//    3  parse error (kParse)
//    4  non-finite coordinate (kNonFinite)
//    5  resource exhaustion (kResource)
//    6  slab failure (kSlabFailure)
//    7  aggregated task failure (kTaskFailure)
//    8  injected test fault (kInjected)
//    9  cancelled (kCancelled)
//   10  deadline exceeded (kDeadlineExceeded)
//   11  memory budget exceeded (kBudgetExceeded)
//
// Example:
//   echo 'POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))' > a.wkt
//   echo 'POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))' > b.wkt
//   psclip_cli intersection a.wkt b.wkt --out=area

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "psclip.hpp"

namespace {

std::optional<psclip::geom::PolygonSet> load(const std::string& path,
                                             bool sanitize) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "psclip: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) {
    std::fprintf(stderr, "psclip: %s: empty file\n", path.c_str());
    return std::nullopt;
  }
  psclip::Error err(psclip::ErrorCode::kParse, "");
  auto parsed = text[first] == '{'
                    ? psclip::geom::from_geojson(text, &err)
                    : psclip::geom::from_wkt(text, &err);
  if (!parsed) {
    std::fprintf(stderr, "psclip: %s: %s\n", path.c_str(), err.what());
    return parsed;
  }
  if (sanitize) {
    std::vector<psclip::geom::ValidationIssue> repairs;
    *parsed = psclip::geom::sanitize(*parsed, &repairs);
    for (const auto& r : repairs)
      std::fprintf(stderr, "psclip: %s: sanitized %s (contour %zu, vertex %zu)\n",
                   path.c_str(), psclip::geom::to_string(r.kind), r.contour,
                   r.vertex);
  }
  return parsed;
}

std::optional<psclip::geom::BoolOp> parse_op(const std::string& s) {
  using psclip::geom::BoolOp;
  if (s == "intersection" || s == "int") return BoolOp::kIntersection;
  if (s == "union") return BoolOp::kUnion;
  if (s == "difference" || s == "diff") return BoolOp::kDifference;
  if (s == "xor") return BoolOp::kXor;
  return std::nullopt;
}

std::optional<psclip::Engine> parse_engine(const std::string& s) {
  using psclip::Engine;
  if (s == "auto") return Engine::kAuto;
  if (s == "vatti") return Engine::kVatti;
  if (s == "martinez") return Engine::kMartinez;
  if (s == "scanbeam") return Engine::kScanbeam;
  if (s == "slab") return Engine::kSlab;
  return std::nullopt;
}

int usage() {
  std::fprintf(stderr,
               "usage: psclip_cli <intersection|union|difference|xor> "
               "<subject-file> <clip-file> [--engine=auto|vatti|martinez|"
               "scanbeam|slab] [--out=wkt|geojson|area] [--sanitize] "
               "[--trace-out=FILE] [--metrics] [--deadline-ms=N] "
               "[--max-memory-mb=N] [--allow-partial]\n");
  return 2;
}

/// Exit code for a classified library failure (see the header comment).
int exit_code(psclip::ErrorCode c) {
  using psclip::ErrorCode;
  switch (c) {
    case ErrorCode::kParse: return 3;
    case ErrorCode::kNonFinite: return 4;
    case ErrorCode::kResource: return 5;
    case ErrorCode::kSlabFailure: return 6;
    case ErrorCode::kTaskFailure: return 7;
    case ErrorCode::kInjected: return 8;
    case ErrorCode::kCancelled: return 9;
    case ErrorCode::kDeadlineExceeded: return 10;
    case ErrorCode::kBudgetExceeded: return 11;
  }
  return 1;
}

/// Strictly positive integer flag value, or nullopt on garbage.
std::optional<long long> parse_positive(const std::string& s) {
  if (s.empty()) return std::nullopt;
  long long v = 0;
  for (const char ch : s) {
    if (ch < '0' || ch > '9') return std::nullopt;
    if (v > 922337203685477580LL) return std::nullopt;  // would overflow
    v = v * 10 + (ch - '0');
  }
  if (v <= 0) return std::nullopt;
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 4) return usage();

  const auto op = parse_op(argv[1]);
  if (!op) return usage();

  psclip::Engine engine = psclip::Engine::kAuto;
  std::string out_fmt = "wkt";
  std::string trace_path;
  bool sanitize = false;
  bool metrics = false;
  long long deadline_ms = 0;    // 0 = no deadline
  long long max_memory_mb = 0;  // 0 = no budget
  bool allow_partial = false;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--engine=", 0) == 0) {
      const auto e = parse_engine(arg.substr(9));
      if (!e) return usage();
      engine = *e;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_fmt = arg.substr(6);
    } else if (arg == "--sanitize") {
      sanitize = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(12);
      if (trace_path.empty()) return usage();
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      const auto v = parse_positive(arg.substr(14));
      if (!v) return usage();
      deadline_ms = *v;
    } else if (arg.rfind("--max-memory-mb=", 0) == 0) {
      const auto v = parse_positive(arg.substr(16));
      if (!v) return usage();
      max_memory_mb = *v;
    } else if (arg == "--allow-partial") {
      allow_partial = true;
    } else {
      return usage();
    }
  }

  // Install the recorder before parsing so the parse spans are captured
  // too. The CLI is single-request: main exits right after the export, so
  // the recorder outliving the global registration is enough.
  psclip::obs::TraceRecorder recorder;
  if (!trace_path.empty() || metrics)
    psclip::obs::set_global_sink(&recorder);

  const auto subject = load(argv[2], sanitize);
  const auto clip_poly = load(argv[3], sanitize);
  if (!subject || !clip_poly) return 1;

  // Governance: the deadline arms here, after parsing — it bounds the clip,
  // not the file I/O. A partial result exits 0 (the caller opted into it);
  // everything missing is named on stderr so the strip can be re-issued.
  psclip::ClipOptions copts;
  copts.engine = engine;
  copts.allow_partial = allow_partial;
  psclip::mt::PartialReport partial;
  copts.partial = &partial;
  if (deadline_ms > 0 || max_memory_mb > 0 || allow_partial) {
    copts.cancel = psclip::par::CancelToken::make();
    if (deadline_ms > 0)
      copts.cancel.set_deadline(psclip::par::Deadline::in_ms(deadline_ms));
    if (max_memory_mb > 0)
      copts.cancel.set_budget(std::make_shared<psclip::par::ResourceBudget>(
          static_cast<std::uint64_t>(max_memory_mb) << 20));
  }

  psclip::geom::PolygonSet result;
  try {
    result = psclip::clip(*subject, *clip_poly, *op, copts);
  } catch (const psclip::Error& e) {
    std::fprintf(stderr, "psclip: %s\n", e.what());
    return exit_code(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psclip: %s\n", e.what());
    return 1;
  }
  if (partial.partial) {
    std::fprintf(stderr,
                 "psclip: partial result (%s): %zu slab(s) missing\n",
                 psclip::to_string(partial.cause), partial.missing_slabs());
    for (const auto& r : partial.missing)
      std::fprintf(stderr, "psclip:   slabs %zu-%zu, y in [%.17g, %.17g)\n",
                   r.first, r.last, r.y_lo, r.y_hi);
  }

  int rc = 0;
  if (out_fmt == "wkt") {
    std::printf("%s\n", psclip::geom::to_wkt(result).c_str());
  } else if (out_fmt == "geojson") {
    std::printf("%s\n", psclip::geom::to_geojson(result).c_str());
  } else if (out_fmt == "area") {
    std::printf("%.17g\n", psclip::geom::signed_area(result));
  } else {
    rc = usage();
  }

  // Quiesce before exporting: exporting walks the per-thread buffers.
  psclip::obs::set_global_sink(nullptr);
  psclip::par::default_pool().wait_idle();
  if (!trace_path.empty()) {
    if (!recorder.write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "psclip: cannot write trace to %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "psclip: trace written to %s (open in "
                         "chrome://tracing)\n",
                 trace_path.c_str());
  }
  if (metrics)
    std::fputs(recorder.metrics().snapshot().to_text().c_str(), stderr);
  return rc;
}
