// psclip_cli — clip two polygon files from the command line.
//
//   psclip_cli <op> <subject-file> <clip-file> [--engine=E] [--out=FMT]
//              [--sanitize] [--trace-out=FILE] [--metrics]
//              [--deadline-ms=N] [--max-memory-mb=N] [--allow-partial]
//   psclip_cli --serve-replay=FILE [--clients=N] [--no-cache] [--engine=E]
//              [--sanitize] [--metrics]
//
//   op        : intersection | union | difference | xor
//   files     : WKT (POLYGON/MULTIPOLYGON) or GeoJSON geometry, detected by
//               the first non-space character ('{' = GeoJSON)
//   --engine  : auto | vatti | martinez | scanbeam | slab   (default auto)
//   --out     : wkt | geojson | area                        (default wkt)
//   --sanitize: repair inputs before clipping (strip non-finite vertices,
//               collapse consecutive duplicates, drop degenerate contours);
//               each repair is reported on stderr. Without it, defective
//               but parseable inputs are clipped as-is.
//   --trace-out=FILE: record the run (parse, request, phase, per-slab and
//               degradation-rung spans) and write a Chrome trace_event JSON
//               file — open it at chrome://tracing or https://ui.perfetto.dev.
//   --metrics : print the counter/histogram snapshot (text) to stderr.
//   --deadline-ms=N   : fail (or go partial) once the clip has run N ms.
//   --max-memory-mb=N : cap the clip's scratch+output memory at N MiB.
//   --allow-partial   : with the slab engine, emit the completed slabs when
//               the deadline/budget trips instead of failing; the missing
//               y-ranges are reported on stderr and the exit code stays 0.
//
// --serve-replay drives the svc::ClipService serving layer instead of one
// direct clip: FILE holds one request per line ("<op> <subject-file>
// <clip-file>"; blank lines and '#' comments skipped), --clients=N client
// threads (default 4) each replay the whole request list concurrently
// through one service, and a throughput summary (requests/sec, p50/p99
// latency, prepared-cache hit/miss/eviction meters) is printed to stderr.
// The first client's results are printed as "<line>: area=<signed area>"
// rows on stdout, and every client's results are checked byte-identical to
// a direct psclip::clip call — the serving layer's identity guarantee,
// verified on whatever workload the replay file describes. --no-cache turns
// the service's prepared-contour cache off.
//
// Malformed input files are rejected with the byte offset of the first
// problem (the parsers never hand the clippers NaN/Inf coordinates).
//
// Exit codes (scriptable failure routing — one code per ErrorCode):
//    0  success, including a --allow-partial partial result
//    1  I/O or other unclassified failure
//    2  usage error
//    3  parse error (kParse)
//    4  non-finite coordinate (kNonFinite)
//    5  resource exhaustion (kResource)
//    6  slab failure (kSlabFailure)
//    7  aggregated task failure (kTaskFailure)
//    8  injected test fault (kInjected)
//    9  cancelled (kCancelled)
//   10  deadline exceeded (kDeadlineExceeded)
//   11  memory budget exceeded (kBudgetExceeded)
//
// Example:
//   echo 'POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))' > a.wkt
//   echo 'POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))' > b.wkt
//   psclip_cli intersection a.wkt b.wkt --out=area

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "parallel/timing.hpp"
#include "psclip.hpp"
#include "svc/clip_service.hpp"

namespace {

std::optional<psclip::geom::PolygonSet> load(const std::string& path,
                                             bool sanitize) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "psclip: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) {
    std::fprintf(stderr, "psclip: %s: empty file\n", path.c_str());
    return std::nullopt;
  }
  psclip::Error err(psclip::ErrorCode::kParse, "");
  auto parsed = text[first] == '{'
                    ? psclip::geom::from_geojson(text, &err)
                    : psclip::geom::from_wkt(text, &err);
  if (!parsed) {
    std::fprintf(stderr, "psclip: %s: %s\n", path.c_str(), err.what());
    return parsed;
  }
  if (sanitize) {
    std::vector<psclip::geom::ValidationIssue> repairs;
    *parsed = psclip::geom::sanitize(*parsed, &repairs);
    for (const auto& r : repairs)
      std::fprintf(stderr, "psclip: %s: sanitized %s (contour %zu, vertex %zu)\n",
                   path.c_str(), psclip::geom::to_string(r.kind), r.contour,
                   r.vertex);
  }
  return parsed;
}

std::optional<psclip::geom::BoolOp> parse_op(const std::string& s) {
  using psclip::geom::BoolOp;
  if (s == "intersection" || s == "int") return BoolOp::kIntersection;
  if (s == "union") return BoolOp::kUnion;
  if (s == "difference" || s == "diff") return BoolOp::kDifference;
  if (s == "xor") return BoolOp::kXor;
  return std::nullopt;
}

std::optional<psclip::Engine> parse_engine(const std::string& s) {
  using psclip::Engine;
  if (s == "auto") return Engine::kAuto;
  if (s == "vatti") return Engine::kVatti;
  if (s == "martinez") return Engine::kMartinez;
  if (s == "scanbeam") return Engine::kScanbeam;
  if (s == "slab") return Engine::kSlab;
  return std::nullopt;
}

int usage() {
  std::fprintf(stderr,
               "usage: psclip_cli <intersection|union|difference|xor> "
               "<subject-file> <clip-file> [--engine=auto|vatti|martinez|"
               "scanbeam|slab] [--out=wkt|geojson|area] [--sanitize] "
               "[--trace-out=FILE] [--metrics] [--deadline-ms=N] "
               "[--max-memory-mb=N] [--allow-partial]\n"
               "   or: psclip_cli --serve-replay=FILE [--clients=N] "
               "[--no-cache] [--engine=E] [--sanitize] [--metrics]\n");
  return 2;
}

/// Exit code for a classified library failure (see the header comment).
int exit_code(psclip::ErrorCode c) {
  using psclip::ErrorCode;
  switch (c) {
    case ErrorCode::kParse: return 3;
    case ErrorCode::kNonFinite: return 4;
    case ErrorCode::kResource: return 5;
    case ErrorCode::kSlabFailure: return 6;
    case ErrorCode::kTaskFailure: return 7;
    case ErrorCode::kInjected: return 8;
    case ErrorCode::kCancelled: return 9;
    case ErrorCode::kDeadlineExceeded: return 10;
    case ErrorCode::kBudgetExceeded: return 11;
  }
  return 1;
}

/// Strictly positive integer flag value, or nullopt on garbage.
std::optional<long long> parse_positive(const std::string& s) {
  if (s.empty()) return std::nullopt;
  long long v = 0;
  for (const char ch : s) {
    if (ch < '0' || ch > '9') return std::nullopt;
    if (v > 922337203685477580LL) return std::nullopt;  // would overflow
    v = v * 10 + (ch - '0');
  }
  if (v <= 0) return std::nullopt;
  return v;
}

bool bit_identical(const psclip::geom::PolygonSet& a,
                   const psclip::geom::PolygonSet& b) {
  if (a.contours.size() != b.contours.size()) return false;
  for (std::size_t i = 0; i < a.contours.size(); ++i) {
    const auto& ca = a.contours[i];
    const auto& cb = b.contours[i];
    if (ca.hole != cb.hole || ca.pts.size() != cb.pts.size()) return false;
    for (std::size_t j = 0; j < ca.pts.size(); ++j)
      if (ca.pts[j].x != cb.pts[j].x || ca.pts[j].y != cb.pts[j].y)
        return false;
  }
  return true;
}

/// --serve-replay mode: replay a request file through svc::ClipService from
/// N concurrent clients and report throughput + cache meters.
int serve_replay(const std::string& replay_path, int argc, char** argv) {
  psclip::Engine engine = psclip::Engine::kAuto;
  bool sanitize = false, metrics = false, no_cache = false;
  long long clients = 4;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--engine=", 0) == 0) {
      const auto e = parse_engine(arg.substr(9));
      if (!e) return usage();
      engine = *e;
    } else if (arg.rfind("--clients=", 0) == 0) {
      const auto v = parse_positive(arg.substr(10));
      if (!v || *v > 256) return usage();
      clients = *v;
    } else if (arg == "--no-cache") {
      no_cache = true;
    } else if (arg == "--sanitize") {
      sanitize = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else {
      return usage();
    }
  }

  std::ifstream f(replay_path);
  if (!f) {
    std::fprintf(stderr, "psclip: cannot open %s\n", replay_path.c_str());
    return 1;
  }
  struct Item {
    psclip::geom::BoolOp op;
    const psclip::geom::PolygonSet* subject;
    const psclip::geom::PolygonSet* clip;
  };
  // Load each referenced geometry file once — the replay file is expected
  // to re-reference a few layers many times (that is what the prepared
  // cache is for).
  std::map<std::string, psclip::geom::PolygonSet> files;
  const auto file_of =
      [&](const std::string& p) -> const psclip::geom::PolygonSet* {
    const auto it = files.find(p);
    if (it != files.end()) return &it->second;
    const auto loaded = load(p, sanitize);
    if (!loaded) return nullptr;
    return &files.emplace(p, *loaded).first->second;
  };
  std::vector<Item> items;
  std::string line;
  for (std::size_t lineno = 1; std::getline(f, line); ++lineno) {
    std::istringstream ls(line);
    std::string op_word, subj_path, clip_path;
    if (!(ls >> op_word) || op_word[0] == '#') continue;
    const auto op = parse_op(op_word);
    if (!op || !(ls >> subj_path >> clip_path)) {
      std::fprintf(stderr, "psclip: %s:%zu: expected '<op> <subject-file> "
                           "<clip-file>'\n",
                   replay_path.c_str(), lineno);
      return 2;
    }
    const auto* subject = file_of(subj_path);
    const auto* clip = file_of(clip_path);
    if (!subject || !clip) return 1;
    items.push_back({*op, subject, clip});
  }
  if (items.empty()) {
    std::fprintf(stderr, "psclip: %s: no requests\n", replay_path.c_str());
    return 2;
  }

  psclip::par::ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  psclip::obs::TraceRecorder recorder;
  psclip::svc::ServiceOptions sopts;
  sopts.enable_cache = !no_cache;
  sopts.max_queued = 1024;
  if (metrics) sopts.trace_sink = &recorder;
  psclip::svc::ClipService service(pool, sopts);

  // Serial references: the identity bar every concurrent replay result is
  // held to (DESIGN.md §12).
  std::vector<psclip::geom::PolygonSet> refs;
  refs.reserve(items.size());
  for (const Item& it : items) {
    psclip::ClipOptions copts;
    copts.engine = engine;
    copts.pool = &pool;
    refs.push_back(psclip::clip(*it.subject, *it.clip, it.op, copts));
  }

  std::atomic<std::uint64_t> mismatches{0}, errors{0};
  std::vector<double> latencies(static_cast<std::size_t>(clients) *
                                items.size());
  std::vector<psclip::geom::PolygonSet> first_client(items.size());
  psclip::par::WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (long long t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < items.size(); ++i) {
        psclip::svc::ClipRequest req;
        req.subject = *items[i].subject;
        req.clip = *items[i].clip;
        req.op = items[i].op;
        req.engine = engine;
        psclip::par::WallTimer timer;
        try {
          psclip::svc::ClipResult res = service.submit(req);
          latencies[static_cast<std::size_t>(t) * items.size() + i] =
              timer.seconds();
          if (!bit_identical(res.output, refs[i]))
            mismatches.fetch_add(1, std::memory_order_relaxed);
          if (t == 0) first_client[i] = std::move(res.output);
        } catch (const psclip::Error& e) {
          errors.fetch_add(1, std::memory_order_relaxed);
          std::fprintf(stderr, "psclip: request %zu: %s\n", i + 1, e.what());
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const double elapsed = wall.seconds();

  for (std::size_t i = 0; i < items.size(); ++i)
    std::printf("%zu: area=%.17g\n", i + 1,
                psclip::geom::signed_area(first_client[i]));

  std::sort(latencies.begin(), latencies.end());
  const auto quantile = [&](double q) {
    const std::size_t k = static_cast<std::size_t>(
        q * static_cast<double>(latencies.size() - 1));
    return latencies[k] * 1e3;
  };
  const std::uint64_t total = service.completed();
  std::fprintf(stderr,
               "psclip: served %llu requests from %lld client(s) in %.3fs "
               "(%.0f req/s, p50 %.3fms, p99 %.3fms)\n",
               static_cast<unsigned long long>(total), clients, elapsed,
               elapsed > 0 ? static_cast<double>(total) / elapsed : 0.0,
               quantile(0.50), quantile(0.99));
  if (const auto* cache = service.cache())
    std::fprintf(stderr,
                 "psclip: cache: %llu hits, %llu misses, %llu evictions, "
                 "%llu bytes resident\n",
                 static_cast<unsigned long long>(cache->hits()),
                 static_cast<unsigned long long>(cache->misses()),
                 static_cast<unsigned long long>(cache->evictions()),
                 static_cast<unsigned long long>(cache->resident_bytes()));
  else
    std::fprintf(stderr, "psclip: cache: off\n");
  if (metrics)
    std::fputs(recorder.metrics().snapshot().to_text().c_str(), stderr);
  if (mismatches.load() != 0) {
    std::fprintf(stderr,
                 "psclip: FAIL: %llu result(s) diverged from the serial "
                 "reference\n",
                 static_cast<unsigned long long>(mismatches.load()));
    return 1;
  }
  return errors.load() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 &&
      std::strncmp(argv[1], "--serve-replay=", 15) == 0) {
    const std::string path = std::string(argv[1]).substr(15);
    if (path.empty()) return usage();
    return serve_replay(path, argc, argv);
  }
  if (argc < 4) return usage();

  const auto op = parse_op(argv[1]);
  if (!op) return usage();

  psclip::Engine engine = psclip::Engine::kAuto;
  std::string out_fmt = "wkt";
  std::string trace_path;
  bool sanitize = false;
  bool metrics = false;
  long long deadline_ms = 0;    // 0 = no deadline
  long long max_memory_mb = 0;  // 0 = no budget
  bool allow_partial = false;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--engine=", 0) == 0) {
      const auto e = parse_engine(arg.substr(9));
      if (!e) return usage();
      engine = *e;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_fmt = arg.substr(6);
    } else if (arg == "--sanitize") {
      sanitize = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(12);
      if (trace_path.empty()) return usage();
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      const auto v = parse_positive(arg.substr(14));
      if (!v) return usage();
      deadline_ms = *v;
    } else if (arg.rfind("--max-memory-mb=", 0) == 0) {
      const auto v = parse_positive(arg.substr(16));
      if (!v) return usage();
      max_memory_mb = *v;
    } else if (arg == "--allow-partial") {
      allow_partial = true;
    } else {
      return usage();
    }
  }

  // Install the recorder before parsing so the parse spans are captured
  // too. The CLI is single-request: main exits right after the export, so
  // the recorder outliving the global registration is enough.
  psclip::obs::TraceRecorder recorder;
  if (!trace_path.empty() || metrics)
    psclip::obs::set_global_sink(&recorder);

  const auto subject = load(argv[2], sanitize);
  const auto clip_poly = load(argv[3], sanitize);
  if (!subject || !clip_poly) return 1;

  // Governance: the deadline arms here, after parsing — it bounds the clip,
  // not the file I/O. A partial result exits 0 (the caller opted into it);
  // everything missing is named on stderr so the strip can be re-issued.
  psclip::ClipOptions copts;
  copts.engine = engine;
  copts.allow_partial = allow_partial;
  psclip::mt::PartialReport partial;
  copts.partial = &partial;
  if (deadline_ms > 0 || max_memory_mb > 0 || allow_partial) {
    copts.cancel = psclip::par::CancelToken::make();
    if (deadline_ms > 0)
      copts.cancel.set_deadline(psclip::par::Deadline::in_ms(deadline_ms));
    if (max_memory_mb > 0)
      copts.cancel.set_budget(std::make_shared<psclip::par::ResourceBudget>(
          static_cast<std::uint64_t>(max_memory_mb) << 20));
  }

  psclip::geom::PolygonSet result;
  try {
    result = psclip::clip(*subject, *clip_poly, *op, copts);
  } catch (const psclip::Error& e) {
    std::fprintf(stderr, "psclip: %s\n", e.what());
    return exit_code(e.code());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "psclip: %s\n", e.what());
    return 1;
  }
  if (partial.partial) {
    std::fprintf(stderr,
                 "psclip: partial result (%s): %zu slab(s) missing\n",
                 psclip::to_string(partial.cause), partial.missing_slabs());
    for (const auto& r : partial.missing)
      std::fprintf(stderr, "psclip:   slabs %zu-%zu, y in [%.17g, %.17g)\n",
                   r.first, r.last, r.y_lo, r.y_hi);
  }

  int rc = 0;
  if (out_fmt == "wkt") {
    std::printf("%s\n", psclip::geom::to_wkt(result).c_str());
  } else if (out_fmt == "geojson") {
    std::printf("%s\n", psclip::geom::to_geojson(result).c_str());
  } else if (out_fmt == "area") {
    std::printf("%.17g\n", psclip::geom::signed_area(result));
  } else {
    rc = usage();
  }

  // Quiesce before exporting: exporting walks the per-thread buffers.
  psclip::obs::set_global_sink(nullptr);
  psclip::par::default_pool().wait_idle();
  if (!trace_path.empty()) {
    if (!recorder.write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "psclip: cannot write trace to %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "psclip: trace written to %s (open in "
                         "chrome://tracing)\n",
                 trace_path.c_str());
  }
  if (metrics)
    std::fputs(recorder.metrics().snapshot().to_text().c_str(), stderr);
  return rc;
}
