// Viewport clipping — the computer-graphics application from the paper's
// introduction: clip a scene of polygons (stars, concave shapes,
// self-intersecting polygrams) to a rectangular viewport. Compares the
// three rectangle clippers the library provides (Sutherland–Hodgman,
// Liang–Barsky's polygon variant, Greiner–Hormann via rect_clip) against
// the general Vatti clipper, and renders before/after SVGs.
//
//   $ ./viewport_clip

#include <cstdio>

#include "data/synthetic.hpp"
#include "geom/area_oracle.hpp"
#include "geom/svg.hpp"
#include "parallel/timing.hpp"
#include "seq/liang_barsky.hpp"
#include "seq/sutherland_hodgman.hpp"
#include "seq/rect_clip.hpp"
#include "seq/vatti.hpp"

int main() {
  using namespace psclip;

  // Build a little scene: simple stars, a pentagram, a convex blob.
  geom::PolygonSet scene;
  for (int i = 0; i < 6; ++i) {
    auto p = data::random_simple(100 + i, 14, (i % 3) * 30.0,
                                 (i / 3) * 26.0, 14.0);
    scene.contours.push_back(p.contours[0]);
  }
  scene.contours.push_back(
      data::star_polygram(5, 2, 90.0, 0.0, 12.0).contours[0]);
  scene.contours.push_back(
      data::random_convex(7, 10, 90.0, 26.0, 12.0).contours[0]);

  const geom::BBox viewport{-8.0, -9.0, 84.0, 33.0};
  geom::PolygonSet vp_poly;
  vp_poly.contours.push_back(
      geom::make_rect(viewport.xmin, viewport.ymin, viewport.xmax,
                      viewport.ymax));

  std::printf("scene: %s\nviewport: [%g,%g]x[%g,%g]\n\n",
              geom::describe(scene).c_str(), viewport.xmin, viewport.xmax,
              viewport.ymin, viewport.ymax);

  // The general clipper handles the self-intersecting pentagram too.
  par::WallTimer t;
  const geom::PolygonSet vatti_out =
      seq::vatti_clip(scene, vp_poly, geom::BoolOp::kIntersection);
  std::printf("Vatti          : area %10.4f  (%6.3f ms) — handles all shapes\n",
              geom::signed_area(vatti_out), t.millis());

  // The classic viewport clippers (simple contours only).
  geom::PolygonSet simple_scene;
  for (std::size_t i = 0; i + 2 < scene.contours.size(); ++i)
    simple_scene.contours.push_back(scene.contours[i]);

  t.reset();
  const auto sh = seq::sutherland_hodgman(simple_scene, vp_poly.contours[0]);
  std::printf("Sutherland-Hodgman: area %7.4f  (%6.3f ms)\n",
              geom::even_odd_area(sh), t.millis());

  t.reset();
  const auto lb = seq::liang_barsky_polygon(simple_scene, viewport);
  std::printf("Liang-Barsky   : area %10.4f  (%6.3f ms)\n",
              geom::even_odd_area(lb), t.millis());

  t.reset();
  const auto gh = seq::rect_clip(simple_scene, viewport,
                                 seq::RectClipMethod::kGreinerHormann);
  std::printf("Greiner-Hormann: area %10.4f  (%6.3f ms)\n",
              geom::even_odd_area(gh), t.millis());

  geom::SvgWriter svg(900);
  svg.add_layer(scene, "#b0c4de", "#4a6785", 0.45);
  svg.add_layer(vp_poly, "none", "#222222", 0.0);
  svg.add_layer(vatti_out, "#2e8b57", "#1c5636", 0.85);
  if (svg.save("viewport_clip.svg"))
    std::printf("\nwrote viewport_clip.svg (clipped scene in green)\n");
  return 0;
}
