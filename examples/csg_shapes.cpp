// 2-D constructive solid geometry with chained boolean operations — the
// VLSI-CAD flavour of clipping from the paper's introduction. Builds a
// gear-like part: (disc ∪ teeth) \ axle-hole XOR a decorative star, all
// with the library's clippers, and verifies the boolean-algebra identity
// on the way.
//
//   $ ./csg_shapes

#include <cmath>
#include <cstdio>
#include <numbers>

#include "geom/area_oracle.hpp"
#include "geom/svg.hpp"
#include "seq/vatti.hpp"

namespace {

psclip::geom::PolygonSet circle(double cx, double cy, double r, int n) {
  std::vector<psclip::geom::Point> ring;
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * std::numbers::pi * i / n;
    ring.push_back({cx + r * std::cos(a), cy + r * std::sin(a)});
  }
  return psclip::geom::make_polygon(std::move(ring));
}

psclip::geom::PolygonSet tooth(double angle) {
  // A trapezoid sticking out radially at `angle`.
  const double c = std::cos(angle), s = std::sin(angle);
  auto rot = [&](double x, double y) {
    return psclip::geom::Point{x * c - y * s, x * s + y * c};
  };
  return psclip::geom::make_polygon(
      {rot(9.0, -1.6), rot(12.3, -0.9), rot(12.3, 0.9), rot(9.0, 1.6)});
}

}  // namespace

int main() {
  using namespace psclip;
  using geom::BoolOp;

  // disc ∪ teeth
  geom::PolygonSet part = circle(0, 0, 10, 48);
  for (int i = 0; i < 8; ++i) {
    const double a = 2.0 * std::numbers::pi * i / 8 + 0.19;
    part = seq::vatti_clip(part, tooth(a), BoolOp::kUnion);
  }
  std::printf("disc + 8 teeth : %s\n", geom::describe(part).c_str());

  // minus the axle hole
  const geom::PolygonSet axle = circle(0.05, -0.03, 3, 24);
  const geom::PolygonSet gear =
      seq::vatti_clip(part, axle, BoolOp::kDifference);
  std::printf("gear (w/ hole) : %s\n", geom::describe(gear).c_str());

  // Verify the inclusion–exclusion identity on this real pipeline.
  const double a_part = geom::signed_area(part);
  const double a_axle = geom::signed_area(axle);
  const double a_int =
      geom::signed_area(seq::vatti_clip(part, axle, BoolOp::kIntersection));
  const double a_uni =
      geom::signed_area(seq::vatti_clip(part, axle, BoolOp::kUnion));
  std::printf("identity check : |INT| + |UNION| - |A| - |B| = %.2e\n",
              a_int + a_uni - a_part - a_axle);

  // XOR a decorative star for good measure (self-intersecting input).
  geom::PolygonSet star;
  {
    std::vector<geom::Point> ring;
    for (int i = 0; i < 5; ++i) {
      const double a = 2.0 * std::numbers::pi * ((i * 2) % 5) / 5 + 0.31;
      ring.push_back({6.5 * std::cos(a), 6.5 * std::sin(a)});
    }
    star.add(std::move(ring));
  }
  const geom::PolygonSet decorated =
      seq::vatti_clip(gear, star, BoolOp::kXor);
  std::printf("gear xor star  : %s\n", geom::describe(decorated).c_str());

  geom::SvgWriter svg(700);
  svg.add_layer(decorated, "#5b7fa6", "#2b3d52", 0.9);
  if (svg.save("csg_shapes.svg")) std::printf("wrote csg_shapes.svg\n");
  return 0;
}
