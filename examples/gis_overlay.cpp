// GIS map overlay — the paper's motivating application (§I): intersect an
// urban-areas layer with a states/provinces layer using the
// multi-threaded Algorithm 2 for polygon sets, report per-phase timings
// and per-slab loads, and render the overlay to SVG.
//
//   $ ./gis_overlay [scale] [threads]
//
// scale defaults to 0.01 of the paper's dataset sizes (Table III);
// threads defaults to the hardware concurrency.

#include <cstdio>
#include <cstdlib>

#include "data/gis_sim.hpp"
#include "geom/geojson.hpp"
#include "geom/svg.hpp"
#include "mt/multiset.hpp"
#include "seq/vatti.hpp"

int main(int argc, char** argv) {
  using namespace psclip;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.01;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 0;

  std::printf("building simulated Table III layers at scale %g...\n", scale);
  const geom::PolygonSet urban = data::make_dataset(1, scale);
  const geom::PolygonSet states = data::make_dataset(2, scale);
  const auto su = data::measure(urban);
  const auto ss = data::measure(states);
  std::printf("  urban : %zu polys, %zu edges\n", su.polys, su.edges);
  std::printf("  states: %zu polys, %zu edges\n", ss.polys, ss.edges);

  par::ThreadPool pool(threads);
  mt::MultisetOptions opts;
  mt::Alg2Stats stats;
  const geom::PolygonSet overlay = mt::multiset_clip(
      urban, states, geom::BoolOp::kIntersection, pool, opts, &stats);

  std::printf("\nIntersect(urban, states) with %u threads:\n", pool.size());
  std::printf("  partition %.3f ms, clip %.3f ms, merge %.3f ms\n",
              stats.phases.partition * 1e3, stats.phases.clip * 1e3,
              stats.phases.merge * 1e3);
  std::printf("  %lld output polygons, %lld duplicates removed, "
              "load imbalance %.2f\n",
              static_cast<long long>(stats.output_contours),
              static_cast<long long>(stats.duplicates_removed),
              stats.load_imbalance());
  for (std::size_t i = 0; i < stats.slabs.size(); ++i)
    std::printf("  slab %zu: %.3f ms over %lld edges\n", i,
                stats.slabs[i].seconds * 1e3,
                static_cast<long long>(stats.slabs[i].input_edges));

  // Cross-check against the sequential clipper.
  const double seq_area = geom::signed_area(
      seq::vatti_clip(urban, states, geom::BoolOp::kIntersection));
  std::printf("\narea: parallel %.9f vs sequential %.9f\n",
              geom::signed_area(overlay), seq_area);

  geom::SvgWriter svg(1000);
  svg.add_layer(states, "#d8e2c8", "#7b8f63", 0.8);
  svg.add_layer(urban, "#e0b87e", "#8a6a33", 0.8);
  svg.add_layer(overlay, "#c23b22", "#7a2415", 0.95);
  if (svg.save("gis_overlay.svg"))
    std::printf("wrote gis_overlay.svg (overlay region in red)\n");

  // The overlay also exports as standard GeoJSON (shells/holes nested).
  std::FILE* gj = std::fopen("gis_overlay.geojson", "w");
  if (gj) {
    const std::string doc = geom::to_geojson(overlay);
    std::fwrite(doc.data(), 1, doc.size(), gj);
    std::fclose(gj);
    std::printf("wrote gis_overlay.geojson (%zu bytes)\n", doc.size());
  }
  return 0;
}
