// Quickstart: clip two polygons with every operator, using both the
// sequential Vatti clipper and the parallel Algorithm 1, and print the
// results as WKT.
//
//   $ ./quickstart
//
// The subject is a concave chevron, the clip a self-intersecting bowtie —
// the "arbitrary polygons" case the paper's algorithms are built for.

#include <cstdio>

#include "core/algorithm1.hpp"
#include "geom/perturb.hpp"
#include "geom/wkt.hpp"
#include "seq/vatti.hpp"

int main() {
  using namespace psclip;

  // Inputs can also be parsed from WKT:
  const auto subject = geom::from_wkt(
      "POLYGON ((0 0, 10 0.3, 10 8, 5 3, 0.2 8.4, 0 0))");
  auto clip = geom::from_wkt(
      "POLYGON ((2 1, 9 7, 9 1.4, 2 6.5, 2 1))");  // self-intersecting
  if (!subject || !clip) {
    std::fprintf(stderr, "WKT parse error\n");
    return 1;
  }

  // These hand-picked coordinates hide an *exact* coincidence: the clip
  // vertex (9,7) lies on the subject edge through (5,3) and (10,8). Like
  // GPC, the sweep assumes general position; the documented remedy for
  // data with exact vertex-on-edge contacts is a tiny deterministic
  // jitter (horizontal edges are handled automatically).
  geom::jitter(*clip, 1e-9, /*seed=*/42);

  std::printf("subject: %s\n", geom::describe(*subject).c_str());
  std::printf("clip   : %s\n\n", geom::describe(*clip).c_str());

  par::ThreadPool pool;  // hardware concurrency
  for (const geom::BoolOp op : geom::kAllOps) {
    // Sequential scanline clipper (the library's GPC equivalent)...
    seq::VattiStats st;
    const geom::PolygonSet r_seq = seq::vatti_clip(*subject, *clip, op, &st);
    // ...and the paper's parallel Algorithm 1 — identical region.
    const geom::PolygonSet r_par =
        core::scanbeam_clip(*subject, *clip, op, pool);

    std::printf("%-5s area=%.6f (parallel: %.6f)  contours=%zu  k=%lld\n",
                geom::to_string(op), geom::signed_area(r_seq),
                geom::signed_area(r_par), r_seq.num_contours(),
                static_cast<long long>(st.intersections));
    std::printf("      %s\n", geom::to_wkt(r_seq).c_str());
  }
  return 0;
}
