file(REMOVE_RECURSE
  "CMakeFiles/predicates_test.dir/geom/predicates_test.cpp.o"
  "CMakeFiles/predicates_test.dir/geom/predicates_test.cpp.o.d"
  "predicates_test"
  "predicates_test.pdb"
  "predicates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predicates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
