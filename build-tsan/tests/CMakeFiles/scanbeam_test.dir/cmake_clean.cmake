file(REMOVE_RECURSE
  "CMakeFiles/scanbeam_test.dir/core/scanbeam_test.cpp.o"
  "CMakeFiles/scanbeam_test.dir/core/scanbeam_test.cpp.o.d"
  "scanbeam_test"
  "scanbeam_test.pdb"
  "scanbeam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanbeam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
