# Empty compiler generated dependencies file for scanbeam_test.
# This may be replaced when dependencies are built.
