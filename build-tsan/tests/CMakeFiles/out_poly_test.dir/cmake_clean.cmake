file(REMOVE_RECURSE
  "CMakeFiles/out_poly_test.dir/seq/out_poly_test.cpp.o"
  "CMakeFiles/out_poly_test.dir/seq/out_poly_test.cpp.o.d"
  "out_poly_test"
  "out_poly_test.pdb"
  "out_poly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/out_poly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
