# Empty compiler generated dependencies file for out_poly_test.
# This may be replaced when dependencies are built.
